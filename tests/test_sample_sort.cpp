// Tests for the parallel sample-sort substrate, the rank rebalancer, the
// sorting-based permutation baseline (Goodrich), and the PRO conformance
// checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cgm/machine.hpp"
#include "cgm/pro.hpp"
#include "cgm/sample_sort.hpp"
#include "core/driver.hpp"
#include "core/sort_permute.hpp"
#include "rng/uniform.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "util/prefix.hpp"

namespace {

using namespace cgp;

// Run sample_sort on a machine; inputs dealt from `global`, output
// re-concatenated in processor order.
std::vector<std::uint64_t> sort_global(std::uint32_t p, const std::vector<std::uint64_t>& global,
                                       bool balanced, std::uint64_t seed) {
  cgm::machine mach(p, seed);
  std::vector<std::vector<std::uint64_t>> out(p);
  mach.run([&](cgm::context& ctx) {
    const std::uint64_t n = global.size();
    const std::uint64_t off = balanced_block_offset(n, p, ctx.id());
    const std::uint64_t len = balanced_block_size(n, p, ctx.id());
    std::vector<std::uint64_t> local(global.begin() + static_cast<std::ptrdiff_t>(off),
                                     global.begin() + static_cast<std::ptrdiff_t>(off + len));
    out[ctx.id()] = balanced ? cgm::sample_sort_balanced(ctx, std::move(local), len)
                             : cgm::sample_sort(ctx, std::move(local));
  });
  std::vector<std::uint64_t> flat;
  for (auto& o : out) flat.insert(flat.end(), o.begin(), o.end());
  return flat;
}

TEST(SampleSort, SortsAcrossProcessorCounts) {
  rng::philox4x64 e(1, 0);
  for (const std::uint32_t p : {1u, 2u, 3u, 4u, 8u, 16u}) {
    std::vector<std::uint64_t> data(997);
    for (auto& v : data) v = rng::uniform_below(e, 10000);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sort_global(p, data, false, 100 + p), expected) << "p=" << p;
  }
}

TEST(SampleSort, BalancedVariantKeepsBlockSizes) {
  rng::philox4x64 e(2, 0);
  std::vector<std::uint64_t> data(64 * 8);
  for (auto& v : data) v = rng::uniform_below(e, 1u << 30);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sort_global(8, data, true, 200), expected);
}

TEST(SampleSort, HandlesDuplicatesAndSortedInput) {
  std::vector<std::uint64_t> dups(500, 42);
  EXPECT_EQ(sort_global(4, dups, true, 300), dups);
  std::vector<std::uint64_t> sorted(500);
  std::iota(sorted.begin(), sorted.end(), 0);
  EXPECT_EQ(sort_global(4, sorted, true, 301), sorted);
  std::vector<std::uint64_t> reversed(sorted.rbegin(), sorted.rend());
  EXPECT_EQ(sort_global(4, reversed, true, 302), sorted);
}

TEST(SampleSort, TinyInputs) {
  EXPECT_EQ(sort_global(4, {}, false, 400), (std::vector<std::uint64_t>{}));
  EXPECT_EQ(sort_global(4, {5}, false, 401), (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(sort_global(3, {3, 1, 2}, true, 402), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(SampleSort, BalanceWithinTwoX) {
  // Regular sampling guarantees <= 2 n/p per processor (plus samples).
  rng::philox4x64 e(3, 0);
  const std::uint32_t p = 8;
  const std::uint64_t n = 8000;
  std::vector<std::uint64_t> data(n);
  for (auto& v : data) v = rng::uniform_below(e, 1u << 20);
  cgm::machine mach(p, 500);
  std::vector<std::uint64_t> sizes(p);
  mach.run([&](cgm::context& ctx) {
    const std::uint64_t off = balanced_block_offset(n, p, ctx.id());
    const std::uint64_t len = balanced_block_size(n, p, ctx.id());
    std::vector<std::uint64_t> local(data.begin() + static_cast<std::ptrdiff_t>(off),
                                     data.begin() + static_cast<std::ptrdiff_t>(off + len));
    sizes[ctx.id()] = cgm::sample_sort(ctx, std::move(local)).size();
  });
  for (const auto s : sizes) EXPECT_LE(s, 2 * n / p + p) << "regular-sampling balance bound";
  EXPECT_EQ(span_sum(sizes), n);
}

// --- rebalance ------------------------------------------------------------------

TEST(Rebalance, PreservesOrderAndResizes) {
  const std::uint32_t p = 4;
  cgm::machine mach(p, 600);
  std::vector<std::vector<std::uint64_t>> out(p);
  mach.run([&](cgm::context& ctx) {
    // Wildly imbalanced input: proc i holds (i+1)^2 items.
    const std::uint64_t sz = (ctx.id() + 1) * (ctx.id() + 1);  // 1+4+9+16 = 30
    std::uint64_t base = 0;
    for (std::uint32_t i = 0; i < ctx.id(); ++i) base += (i + 1) * (i + 1);
    std::vector<std::uint64_t> local(sz);
    std::iota(local.begin(), local.end(), base);
    // Targets: 30 items split (10, 10, 5, 5).
    const std::uint64_t target = ctx.id() < 2 ? 10 : 5;
    out[ctx.id()] = cgm::rebalance(ctx, local, target);
  });
  std::vector<std::uint64_t> flat;
  for (auto& o : out) flat.insert(flat.end(), o.begin(), o.end());
  std::vector<std::uint64_t> expected(30);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(flat, expected);
  EXPECT_EQ(out[0].size(), 10u);
  EXPECT_EQ(out[3].size(), 5u);
}

TEST(Rebalance, NoOpWhenAlreadyBalanced) {
  cgm::machine mach(3, 601);
  mach.run([&](cgm::context& ctx) {
    std::vector<std::uint64_t> local{ctx.id() * 10ull, ctx.id() * 10ull + 1};
    const auto out = cgm::rebalance(ctx, local, 2);
    EXPECT_EQ(out, local);
  });
}

TEST(Rebalance, EmptySourcesAndTargets) {
  cgm::machine mach(3, 602);
  mach.run([&](cgm::context& ctx) {
    // All 6 items start on proc 0; proc 2 gets everything.
    std::vector<std::uint64_t> local;
    if (ctx.id() == 0) local = {1, 2, 3, 4, 5, 6};
    const auto out = cgm::rebalance(ctx, local, ctx.id() == 2 ? 6 : 0);
    if (ctx.id() == 2) {
      EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

// --- sorting-based permutation baseline -------------------------------------------

std::vector<std::uint64_t> sort_permute_global(std::uint32_t p, std::uint64_t n,
                                               std::uint64_t seed) {
  cgm::machine mach(p, seed);
  std::vector<std::uint64_t> result(n);
  mach.run([&](cgm::context& ctx) {
    const std::uint64_t off = balanced_block_offset(n, p, ctx.id());
    const std::uint64_t len = balanced_block_size(n, p, ctx.id());
    std::vector<std::uint64_t> local(len);
    std::iota(local.begin(), local.end(), off);
    const auto permuted = core::parallel_sort_permutation(ctx, std::move(local));
    std::copy(permuted.begin(), permuted.end(),
              result.begin() + static_cast<std::ptrdiff_t>(off));
  });
  return result;
}

TEST(SortPermute, ProducesValidPermutations) {
  for (const std::uint32_t p : {1u, 2u, 4u, 8u}) {
    const auto pi = sort_permute_global(p, 256, 700 + p);
    EXPECT_TRUE(stats::is_permutation_of_iota(pi)) << "p=" << p;
  }
}

TEST(SortPermute, UniformOverS4) {
  std::vector<std::uint64_t> counts(24, 0);
  for (int rep = 0; rep < 24 * 250; ++rep) {
    const auto pi = sort_permute_global(2, 4, 0x800000 + rep);
    ASSERT_TRUE(stats::is_permutation_of_iota(pi));
    ++counts[stats::permutation_rank(pi)];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(SortPermute, CarriesTheLogFactorInWork) {
  // Goodrich's baseline does Theta(n log n) total work; Algorithm 1 does
  // Theta(n).  Compare total charged ops at fixed p while n grows: the
  // baseline's ops/item must grow, Algorithm 1's must not.
  const std::uint32_t p = 4;
  const auto ops_per_item = [&](std::uint64_t n, bool baseline) {
    cgm::machine mach(p, 900);
    const auto stats = mach.run([&](cgm::context& ctx) {
      std::vector<std::uint64_t> local(n / p, ctx.id());
      if (baseline) {
        (void)core::parallel_sort_permutation(ctx, std::move(local));
      } else {
        (void)core::parallel_random_permutation(ctx, std::move(local));
      }
    });
    return static_cast<double>(stats.total_compute()) / static_cast<double>(n);
  };
  const double base_small = ops_per_item(1 << 10, true);
  const double base_large = ops_per_item(1 << 16, true);
  const double alg1_small = ops_per_item(1 << 10, false);
  const double alg1_large = ops_per_item(1 << 16, false);
  EXPECT_GT(base_large, base_small * 1.3) << "baseline must show the log factor";
  EXPECT_LT(alg1_large, alg1_small * 1.2) << "Algorithm 1 must stay work-optimal";
}

// --- PRO conformance ------------------------------------------------------------

TEST(Pro, Algorithm1IsAdmissible) {
  const std::uint32_t p = 8;
  // Large enough that superstep latency amortizes (PRO speedup claims are
  // asymptotic in the grain); p^2 = 64 << n keeps it within grain.
  const std::uint64_t n = 1 << 20;
  cgm::machine mach(p, 901);
  cgm::run_stats stats;
  (void)core::random_permutation_global(mach, n, {}, &stats);
  const auto a = cgm::assess_pro(stats, n, p, /*seq_ops=*/n, cgm::cost_model::multicore());
  EXPECT_TRUE(a.within_grain);
  EXPECT_TRUE(a.work_optimal) << "work ratio " << a.work_ratio;
  EXPECT_TRUE(a.space_optimal) << "space ratio " << a.space_ratio;
  EXPECT_TRUE(a.admissible());
  EXPECT_GT(a.speedup, 1.0);
}

TEST(Pro, GrainViolationDetected) {
  const std::uint32_t p = 16;
  const std::uint64_t n = 64;  // p^2 = 256 > 64
  cgm::machine mach(p, 902);
  cgm::run_stats stats;
  (void)core::random_permutation_global(mach, n, {}, &stats);
  const auto a = cgm::assess_pro(stats, n, p, n, cgm::cost_model::multicore());
  EXPECT_FALSE(a.within_grain);
  EXPECT_FALSE(a.admissible());
}

TEST(Pro, LogFactorBaselineFailsWorkOptimalityAtScale) {
  const std::uint32_t p = 4;
  const std::uint64_t n = 1 << 16;
  cgm::machine mach(p, 903);
  const auto stats = mach.run([&](cgm::context& ctx) {
    std::vector<std::uint64_t> local(n / p, ctx.id());
    (void)core::parallel_sort_permutation(ctx, std::move(local));
  });
  // With a tight constant the log-n work factor must breach the bound.
  const auto a = cgm::assess_pro(stats, n, p, n, cgm::cost_model::multicore(),
                                 /*tolerance=*/8.0);
  EXPECT_FALSE(a.work_optimal) << "work ratio " << a.work_ratio;
}

}  // namespace
