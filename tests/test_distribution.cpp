// Distribution deep-dive: second-instrument checks on the parallel
// pipeline (runs structure, KS position law, serial correlation),
// cross-algorithm distributional equality (Algorithms 5 vs 6 vs
// replicated), golden determinism snapshots, and the topology cost model.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "cgm/machine.hpp"
#include "cgm/topology.hpp"
#include "core/driver.hpp"
#include "core/parallel_matrix.hpp"
#include "hyp/pmf.hpp"
#include "stats/chisq.hpp"
#include "stats/ks.hpp"
#include "stats/runs.hpp"

namespace {

using namespace cgp;

// --- second instruments on the pipeline output -----------------------------------

TEST(PipelineDistribution, RunStructureIsUniform) {
  // Ascending-runs z over many pipeline outputs: mean must be ~0 at the
  // 6-sigma level (under-mixing would push it far negative).
  cgm::machine mach(4, 0);
  double zsum = 0.0;
  const int reps = 300;
  for (int rep = 0; rep < reps; ++rep) {
    mach.reseed(0xAA000 + rep);
    const auto pi = core::random_permutation_global(mach, 512);
    zsum += stats::ascending_runs_z(pi);
  }
  EXPECT_LT(std::fabs(zsum / reps), 6.0 / std::sqrt(static_cast<double>(reps)));
}

TEST(PipelineDistribution, SerialCorrelationVanishes) {
  cgm::machine mach(4, 0);
  double csum = 0.0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    mach.reseed(0xBB000 + rep);
    const auto pi = core::random_permutation_global(mach, 1024);
    csum += stats::serial_correlation(pi);
  }
  // Each coefficient ~ N(0, 1/n); the mean of 200 of them is tighter.
  EXPECT_LT(std::fabs(csum / reps), 6.0 / std::sqrt(200.0 * 1024.0));
}

TEST(PipelineDistribution, PositionLawPassesKs) {
  // Normalized image of item 0 across runs must be Uniform[0,1).
  cgm::machine mach(4, 0);
  const std::uint64_t n = 512;
  std::vector<double> xs;
  for (int rep = 0; rep < 3000; ++rep) {
    mach.reseed(0xCC000 + rep);
    const auto pi = core::random_permutation_global(mach, n);
    xs.push_back((static_cast<double>(pi[0]) + 0.5) / static_cast<double>(n));
  }
  EXPECT_GT(stats::ks_uniform01(xs).p_value, 1e-9);
}

TEST(PipelineDistribution, MedianRunsTestPasses) {
  cgm::machine mach(8, 0xDD);
  const auto pi = core::random_permutation_global(mach, 8192);
  EXPECT_GT(stats::runs_test_median(pi).p_value, 1e-6);
}

// --- cross-algorithm equality ------------------------------------------------------

// The three matrix algorithms must induce the SAME distribution.  Compare
// their a_00 histograms against each other with a two-sample chi-square
// (both against the exact law is already tested; this is the direct
// pairwise check, sensitive to any asymmetry the marginal tests share).
std::vector<std::uint64_t> corner_histogram(core::matrix_algorithm alg, int reps,
                                            std::uint64_t seed_base) {
  const std::uint32_t p = 4;
  const std::uint64_t block = 8;
  const hyp::params law{block, block, (p - 1) * block};
  std::vector<std::uint64_t> counts(hyp::support_max(law) + 1, 0);
  for (int rep = 0; rep < reps; ++rep) {
    cgm::machine mach(p, seed_base + rep);
    core::permute_options opt;
    opt.matrix = alg;
    mach.run([&](cgm::context& ctx) {
      const auto row = core::sample_matrix_row(ctx, block, opt);
      if (ctx.id() == 0) counts[row[0]] += 1;
    });
  }
  return counts;
}

TEST(CrossAlgorithm, OptimalAndLogpAgree) {
  const auto a = corner_histogram(core::matrix_algorithm::optimal, 3000, 0x10000);
  const auto b = corner_histogram(core::matrix_algorithm::logp, 3000, 0x20000);
  // Two-sample chi-square via 2 x k contingency table.
  std::vector<std::uint64_t> table;
  for (const auto v : a) table.push_back(v);
  for (const auto v : b) table.push_back(v);
  // Drop all-zero columns by pooling: use independence test with pooling
  // handled by its expected counts (zero columns contribute nothing).
  const auto res = stats::chi_square_independence(table, 2, a.size());
  EXPECT_GT(res.p_value, 1e-9);
}

TEST(CrossAlgorithm, OptimalAndReplicatedAgree) {
  const auto a = corner_histogram(core::matrix_algorithm::optimal, 3000, 0x30000);
  const auto b = corner_histogram(core::matrix_algorithm::replicated, 3000, 0x40000);
  std::vector<std::uint64_t> table;
  for (const auto v : a) table.push_back(v);
  for (const auto v : b) table.push_back(v);
  const auto res = stats::chi_square_independence(table, 2, a.size());
  EXPECT_GT(res.p_value, 1e-9);
}

// --- golden determinism -------------------------------------------------------------

TEST(Golden, PipelineOutputIsStableAcrossRuns) {
  // Not a fixed magic vector (engine details may legitimately evolve with
  // a major version), but full bit-stability within a build: two machines,
  // same seed, byte-identical output; and a third seed differs.
  cgm::machine m1(6, 424242);
  cgm::machine m2(6, 424242);
  const auto a = core::random_permutation_global(m1, 600);
  const auto b = core::random_permutation_global(m2, 600);
  EXPECT_EQ(a, b);
  cgm::machine m3(6, 424243);
  EXPECT_NE(a, core::random_permutation_global(m3, 600));
}

TEST(Golden, DifferentProcessorCountsDifferButBothUniformShaped) {
  // p changes the draw pattern, so outputs differ -- but each is a valid
  // permutation (the law is the same; realizations differ).
  cgm::machine m4(4, 777);
  cgm::machine m8(8, 777);
  const auto a = core::random_permutation_global(m4, 512);
  const auto b = core::random_permutation_global(m8, 512);
  EXPECT_NE(a, b);
}

// --- topology cost model ------------------------------------------------------------

cgm::run_stats one_run(std::uint32_t p) {
  cgm::machine mach(p, 0x707);
  return mach.run([&](cgm::context& ctx) {
    std::vector<std::uint64_t> local(4096, ctx.id());
    (void)core::parallel_random_permutation(ctx, std::move(local));
  });
}

TEST(Topology, CrossbarIsCheapestBusIsDearest) {
  const auto stats = one_run(16);
  cgm::topology_model m;
  m.sec_per_op = 1e-9;
  m.sec_per_word = 1e-8;
  m.latency = 1e-6;
  double prev = 0.0;
  for (const auto kind : {cgm::interconnect::crossbar, cgm::interconnect::hypercube,
                          cgm::interconnect::mesh2d, cgm::interconnect::ring,
                          cgm::interconnect::bus}) {
    m.kind = kind;
    const double t = m.model_seconds(stats, 16);
    EXPECT_GE(t, prev * 0.999) << interconnect_name(kind)
                               << " must not be cheaper than its predecessor";
    prev = t;
  }
}

TEST(Topology, CrossbarMatchesPlainBspWhenEndpointLimited) {
  // With link capacity >= injection capacity, the crossbar's comm cost is
  // exactly g * h -- the plain BSP term of cost_model (no aggregate cap).
  const auto stats = one_run(8);
  cgm::topology_model topo;
  topo.kind = cgm::interconnect::crossbar;
  topo.sec_per_op = 2e-9;
  topo.sec_per_word = 3e-8;
  topo.latency = 5e-5;
  cgm::cost_model bsp{2e-9, 3e-8, 5e-5, 0};
  EXPECT_NEAR(topo.model_seconds(stats, 8), stats.model_seconds(bsp),
              1e-9 + 1e-6 * stats.model_seconds(bsp));
}

TEST(Topology, HypercubeTracksCrossbarAtTheseScales) {
  const auto stats = one_run(16);
  cgm::topology_model m;
  m.sec_per_word = 1e-8;
  m.kind = cgm::interconnect::crossbar;
  const double xbar = m.model_seconds(stats, 16);
  m.kind = cgm::interconnect::hypercube;
  const double hc = m.model_seconds(stats, 16);
  EXPECT_NEAR(hc, xbar, 1e-12 + 0.01 * xbar);  // same 1/p link load
}

TEST(Topology, BusSerializesTotalVolume) {
  const auto stats = one_run(8);
  cgm::topology_model m;
  m.kind = cgm::interconnect::bus;
  m.sec_per_op = 0.0;
  m.latency = 0.0;
  m.sec_per_word = 1.0;  // 1 s/word: cost == word count
  double expected = 0.0;
  for (const auto& s : stats.supersteps)
    expected += static_cast<double>(std::max(s.total_words, s.h_relation()));
  EXPECT_NEAR(m.model_seconds(stats, 8), expected, 1e-6);
}

TEST(Topology, NamesAreStable) {
  EXPECT_STREQ(cgm::interconnect_name(cgm::interconnect::ring), "ring");
  EXPECT_STREQ(cgm::interconnect_name(cgm::interconnect::mesh2d), "mesh2d");
}

}  // namespace
