// Cost-model tests: the arithmetic of BSP pricing, the aggregate
// bandwidth saturation term, and -- most importantly -- a regression pin
// on the headline reproduction: the Origin-2000 calibration must keep
// reproducing ALL SIX rows of the paper's Section 6 scaling table within
// 5% when Algorithm 1 runs at 1/100 scale.  If an algorithm change alters
// the pipeline's work/communication profile, this test trips before the
// bench drifts silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cgm/cost.hpp"
#include "cgm/machine.hpp"
#include "core/driver.hpp"

namespace {

using namespace cgp;

TEST(CostModel, PureBspArithmetic) {
  cgm::run_stats stats;
  stats.supersteps.push_back({/*max_compute=*/1000, /*out=*/50, /*in=*/80, /*total=*/200});
  stats.supersteps.push_back({500, 10, 10, 20});
  const cgm::cost_model m{1e-9, 1e-8, 1e-4, 0};
  // step1: 1000e-9 + 80e-8 + 1e-4 ; step2: 500e-9 + 10e-8 + 1e-4
  EXPECT_NEAR(stats.model_seconds(m), (1e-6 + 8e-7 + 1e-4) + (5e-7 + 1e-7 + 1e-4), 1e-15);
}

TEST(CostModel, AggregateBandwidthSaturates) {
  cgm::run_stats stats;
  // h = 10 words but total = 10,000 words: with 1e3 words/s aggregate the
  // saturated term (10 s) dominates g*h (1e-7 s).
  stats.supersteps.push_back({0, 10, 10, 10000});
  cgm::cost_model m{0, 1e-8, 0, 1e3};
  EXPECT_NEAR(stats.model_seconds(m), 10.0, 1e-9);
  m.agg_words_per_sec = 0;  // disabled: back to g*h
  EXPECT_NEAR(stats.model_seconds(m), 1e-7, 1e-15);
}

TEST(CostModel, HRelationIsMaxOfInAndOut) {
  cgm::superstep_record rec{0, 70, 30, 100};
  EXPECT_EQ(rec.h_relation(), 70u);
  rec.max_words_in = 90;
  EXPECT_EQ(rec.h_relation(), 90u);
}

TEST(CostModel, RunStatsAggregates) {
  cgm::run_stats stats;
  stats.per_proc.resize(3);
  stats.per_proc[0].compute_ops = 10;
  stats.per_proc[1].compute_ops = 30;
  stats.per_proc[2].compute_ops = 20;
  stats.per_proc[0].words_sent = 5;
  stats.per_proc[1].words_received = 9;
  stats.per_proc[2].rng_draws = 7;
  stats.per_proc[1].peak_memory_bytes = 1000;
  EXPECT_EQ(stats.total_compute(), 60u);
  EXPECT_EQ(stats.max_compute_per_proc(), 30u);
  EXPECT_EQ(stats.max_words_per_proc(), 9u);
  EXPECT_EQ(stats.max_rng_draws_per_proc(), 7u);
  EXPECT_EQ(stats.max_peak_memory_per_proc(), 1000u);
}

// --- the headline regression pin ---------------------------------------------------

struct paper_point {
  std::uint32_t p;
  double seconds;
};

class PaperScaling : public ::testing::TestWithParam<paper_point> {};

TEST_P(PaperScaling, OriginCalibrationReproducesSection6) {
  // 1/100 scale of the paper's 480M-item experiment.
  constexpr std::uint64_t kSim = 4'800'000;
  constexpr double kScale = 100.0;
  const auto [p, paper_seconds] = GetParam();

  double model_seconds;
  const cgm::cost_model model = cgm::cost_model::origin2000();
  if (p == 1) {
    model_seconds = model.sec_per_op * static_cast<double>(kSim) * kScale;
  } else {
    cgm::machine mach(p, 0xE1);
    cgm::run_stats stats;
    std::vector<std::uint64_t> data(kSim);
    for (std::uint64_t i = 0; i < kSim; ++i) data[i] = i;
    (void)core::permute_global(mach, data, {}, &stats);
    model_seconds = stats.model_seconds(model) * kScale;
  }
  EXPECT_NEAR(model_seconds / paper_seconds, 1.0, 0.05)
      << "p=" << p << ": model " << model_seconds << " s vs paper " << paper_seconds << " s";
}

INSTANTIATE_TEST_SUITE_P(Section6Table, PaperScaling,
                         ::testing::Values(paper_point{1, 137.0}, paper_point{3, 210.0},
                                           paper_point{6, 107.0}, paper_point{12, 72.9},
                                           paper_point{24, 60.9}, paper_point{48, 53.2}),
                         [](const auto& pinfo) {
                           return "p" + std::to_string(pinfo.param.p);
                         });

TEST(CostModel, OverheadFactorStaysInPaperBand) {
  // E5's claim as a regression: weighted total cost of Algorithm 1 over
  // the sequential reference must stay within [3, 5] under the Origin
  // calibration.
  const std::uint64_t n = 1 << 20;
  const cgm::cost_model model = cgm::cost_model::origin2000();
  for (const std::uint32_t p : {4u, 16u}) {
    cgm::machine mach(p, 0xE5);
    cgm::run_stats stats;
    std::vector<std::uint64_t> data(n);
    for (std::uint64_t i = 0; i < n; ++i) data[i] = i;
    (void)core::permute_global(mach, data, {}, &stats);
    const double factor =
        (model.sec_per_op * static_cast<double>(stats.total_compute()) +
         model.sec_per_word * static_cast<double>(stats.total_words())) /
        (model.sec_per_op * static_cast<double>(n));
    EXPECT_GE(factor, 3.0) << "p=" << p;
    EXPECT_LE(factor, 5.0) << "p=" << p;
  }
}

}  // namespace
