// Tests for the repeated-generation API: determinism under seek/replay,
// per-element uniformity, and independence between successive draws.
#include <gtest/gtest.h>

#include <vector>

#include "core/repeat.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"

namespace {

using namespace cgp;

TEST(PermutationStream, ProducesValidPermutations) {
  core::permutation_stream stream(4, 64, 42);
  for (int i = 0; i < 10; ++i) {
    const auto pi = stream.next();
    EXPECT_TRUE(stats::is_permutation_of_iota(pi));
  }
  EXPECT_EQ(stream.count(), 10u);
}

TEST(PermutationStream, SuccessiveDrawsDiffer) {
  core::permutation_stream stream(4, 128, 43);
  const auto a = stream.next();
  const auto b = stream.next();
  EXPECT_NE(a, b);
}

TEST(PermutationStream, ReplayViaSeek) {
  core::permutation_stream s1(4, 100, 44);
  std::vector<std::vector<std::uint64_t>> first;
  for (int i = 0; i < 5; ++i) first.push_back(s1.next());

  s1.seek(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s1.next(), first[i]);

  // Element k is a pure function of (seed, k): a fresh stream seeked to 3
  // reproduces element 3 directly.
  core::permutation_stream s2(4, 100, 44);
  s2.seek(3);
  EXPECT_EQ(s2.next(), first[3]);
}

TEST(PermutationStream, DifferentSeedsAreDifferentSequences) {
  core::permutation_stream s1(4, 100, 45);
  core::permutation_stream s2(4, 100, 46);
  EXPECT_NE(s1.next(), s2.next());
}

TEST(PermutationStream, EachElementUniform) {
  // Element #7 of the stream over many seeds must be uniform over S4.
  std::vector<std::uint64_t> counts(24, 0);
  for (int seed = 0; seed < 24 * 200; ++seed) {
    core::permutation_stream stream(2, 4, 0x5EED00 + seed);
    stream.seek(7);
    const auto pi = stream.next();
    ASSERT_TRUE(stats::is_permutation_of_iota(pi));
    ++counts[stats::permutation_rank(pi)];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(PermutationStream, SuccessiveDrawsIndependent) {
  // (rank of draw 0, rank of draw 1) over many seeds: chi-square
  // independence on the 24 x 24 contingency table (pooled internally).
  const int reps = 24 * 24 * 8;
  std::vector<std::uint64_t> table(24 * 24, 0);
  for (int seed = 0; seed < reps; ++seed) {
    core::permutation_stream stream(2, 4, 0xA5EED0 + seed);
    const auto r1 = stats::permutation_rank(stream.next());
    const auto r2 = stats::permutation_rank(stream.next());
    ++table[r1 * 24 + r2];
  }
  const auto res = stats::chi_square_independence(table, 24, 24);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(PermutationStream, StatsPlumbing) {
  core::permutation_stream stream(4, 256, 47);
  cgm::run_stats stats;
  (void)stream.next(&stats);
  EXPECT_EQ(stats.per_proc.size(), 4u);
  EXPECT_GT(stats.total_compute(), 0u);
}

}  // namespace
