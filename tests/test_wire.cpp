// Tests for the binary RPC front end (src/svc/wire.hpp): determinism
// over the wire -- a remote job's output is the same pure function of
// (server_seed, client_id, ordinal) a local submission gets, replayable
// against a bare context -- plus framing round-trips (empty / large
// bodies), remote streams, metrics over the wire, concurrent client
// connections, and the error surface (rejection after close, malformed
// requests).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prp/cipher.hpp"
#include "support/perm_check.hpp"
#include "svc/job.hpp"
#include "svc/wire.hpp"

namespace {

using namespace cgp;

constexpr std::uint64_t kSeed = 0x5E12B1CE0007ull;

svc::wire_server_options seeded_options() {
  svc::wire_server_options wopt;
  wopt.svc.seed = kSeed;
  return wopt;
}

// --- determinism over the wire (the acceptance bar) --------------------------

TEST(WireRpc, PermutationOverWireEqualsBareContextReplay) {
  svc::wire_server ws(seeded_options());
  ASSERT_NE(ws.port(), 0) << "ephemeral bind must resolve to a real port";
  svc::wire_client cl("127.0.0.1", ws.port());

  const std::uint64_t n = 100'000;
  std::uint64_t ordinal = 99;
  const svc::permutation pi = cl.fetch_permutation(/*client_id=*/7, n, &ordinal);
  EXPECT_EQ(ordinal, 0u);
  ASSERT_EQ(pi.size(), n);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));

  // The wire adds nothing to the randomness: replaying the job's
  // (server_seed, client_id, ordinal) triple on a bare context gives the
  // identical permutation, bit for bit.
  cgp::context ctx;
  EXPECT_EQ(pi, ctx.random_permutation(n, svc::job_seed(kSeed, 7, ordinal)));

  // Ordinals advance per client across request kinds, exactly as local
  // submissions would.
  std::uint64_t second = 99;
  const svc::permutation pi2 = cl.fetch_permutation(7, n, &second);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(pi2, ctx.random_permutation(n, svc::job_seed(kSeed, 7, 1)));
  EXPECT_NE(pi2, pi);
}

TEST(WireRpc, ShuffleRoundTripsRecordsAndReplays) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  const std::uint64_t n = 30'000;
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);

  std::uint64_t ordinal = 99;
  cl.shuffle(/*client_id=*/3, std::span<std::uint64_t>(v), &ordinal);
  EXPECT_EQ(ordinal, 0u);

  std::vector<std::uint64_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  cgp::context ctx;
  ctx.shuffle(std::span<std::uint64_t>(expected), svc::job_seed(kSeed, 3, ordinal));
  EXPECT_EQ(v, expected);
}

TEST(WireRpc, ShuffleCarriesWideRecordsBothWays) {
  // 24-byte records: the payload crosses the wire twice (request body,
  // shuffled response body) and must come back value-identical, only
  // reordered by the job's permutation.
  struct rec24 {
    std::uint64_t key;
    std::uint64_t a;
    std::uint64_t b;
    bool operator==(const rec24&) const = default;
  };
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  const std::uint64_t n = 5'000;
  std::vector<rec24> recs(n);
  for (std::uint64_t i = 0; i < n; ++i) recs[i] = {i, i * 31, ~i};
  std::vector<rec24> expected = recs;

  std::uint64_t ordinal = 99;
  cl.shuffle(/*client_id=*/5, std::span<rec24>(recs), &ordinal);

  cgp::context ctx;
  ctx.shuffle(std::span<rec24>(expected), svc::job_seed(kSeed, 5, ordinal));
  ASSERT_EQ(recs.size(), expected.size());
  EXPECT_EQ(recs, expected);
}

// --- remote streams ----------------------------------------------------------

TEST(WireRpc, RemoteStreamAssemblesTheWholePermutation) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  const std::uint64_t n = 70'001;  // odd: the last pull is a short chunk
  svc::remote_stream s = cl.open_stream(/*client_id=*/11, n);
  EXPECT_EQ(s.size(), n);

  std::vector<std::uint64_t> assembled;
  std::vector<std::uint64_t> chunk(8192);
  for (;;) {
    const std::size_t got = s.read(std::span<std::uint64_t>(chunk));
    if (got == 0) break;
    assembled.insert(assembled.end(), chunk.begin(),
                     chunk.begin() + static_cast<std::ptrdiff_t>(got));
  }
  s.close();  // idempotent
  s.close();

  ASSERT_EQ(assembled.size(), n);
  cgp::context ctx;
  EXPECT_EQ(assembled, ctx.random_permutation(n, svc::job_seed(kSeed, 11, s.ordinal())));
}

TEST(WireRpc, ShardStreamOverWireEqualsLocalCipherReplay) {
  // The wire twin of server::submit_shard: open_shard pulls the window
  // pi[lo..hi) of a cipher-backed permutation with nothing materialized
  // server-side, and the whole shard replays locally as
  // prp::cipher(job_seed(seed, client, ordinal), n).shard(k, S).
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  const std::uint64_t n = 1'000'003;  // prime domain: the cycle walk is live
  const std::uint64_t S = 3;
  std::vector<std::uint64_t> assembled;

  for (std::uint64_t k = 0; k < S; ++k) {
    svc::remote_stream s = cl.open_shard(/*client_id=*/13, n, k, S);
    const prp::shard_range r = prp::shard_bounds(n, k, S);
    EXPECT_EQ(s.size(), r.size());

    std::vector<std::uint64_t> got;
    std::vector<std::uint64_t> chunk(8192);
    while (const std::size_t m = s.read(std::span<std::uint64_t>(chunk))) {
      got.insert(got.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(m));
    }
    s.close();

    // Each shard job consumed its own ordinal (k-th submission of client
    // 13) and replays against a LOCAL cipher -- the wire added nothing.
    EXPECT_EQ(s.ordinal(), k);
    const prp::cipher local(svc::job_seed(kSeed, 13, s.ordinal()), n);
    std::vector<std::uint64_t> expected(r.size());
    local.eval_range(r.lo, std::span<std::uint64_t>(expected));
    EXPECT_EQ(got, expected) << "shard " << k;
    assembled.insert(assembled.end(), got.begin(), got.end());
  }

  // One job's shards would tile pi exactly once; shards of DIFFERENT
  // ordinals (as here) are windows of different permutations, so the
  // concatenation need not be one -- but each window is still in-range.
  ASSERT_EQ(assembled.size(), n);
  for (const std::uint64_t y : assembled) ASSERT_LT(y, n);
}

TEST(WireRpc, ShardOpenValidatesGeometry) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  // shard >= num_shards is malformed -- client-side validation throws
  // before any bytes move.
  EXPECT_THROW((void)cl.open_shard(1, 100, /*shard=*/5, /*num_shards=*/5),
               std::runtime_error);
  EXPECT_THROW((void)cl.open_shard(1, 100, /*shard=*/0, /*num_shards=*/0),
               std::runtime_error);

  // The connection stays usable.
  svc::remote_stream s = cl.open_shard(1, 100, 0, 2);
  EXPECT_EQ(s.size(), 50u);
  std::vector<std::uint64_t> out(50);
  EXPECT_EQ(s.read(std::span<std::uint64_t>(out)), 50u);
  s.close();
}

// --- concurrent connections --------------------------------------------------

TEST(WireRpc, ConcurrentClientsStayIndependentAndDeterministic) {
  svc::wire_server ws(seeded_options());

  constexpr int kClients = 4;
  constexpr std::uint64_t n = 20'000;
  std::vector<svc::permutation> got(kClients);
  std::vector<std::uint64_t> ords(kClients, 99);

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      svc::wire_client cl("127.0.0.1", ws.port());
      got[static_cast<std::size_t>(c)] = cl.fetch_permutation(
          static_cast<std::uint64_t>(c), n, &ords[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& t : threads) t.join();

  cgp::context ctx;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(ords[static_cast<std::size_t>(c)], 0u);
    EXPECT_EQ(got[static_cast<std::size_t>(c)],
              ctx.random_permutation(
                  n, svc::job_seed(kSeed, static_cast<std::uint64_t>(c), 0)))
        << "client " << c;
  }
}

// --- metrics over the wire ---------------------------------------------------

TEST(WireRpc, MetricsSnapshotTravelsAsJson) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  (void)cl.fetch_permutation(1, 1000);
  const std::string json = cl.metrics_snapshot();

  // Shape, not schema: the curated fields and the process-scope marker.
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"job_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_cache\""), std::string::npos);
  EXPECT_NE(json.find("\"scope\": \"process\""), std::string::npos);
  EXPECT_NE(json.find("\"done\": 1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- error surface -----------------------------------------------------------

TEST(WireRpc, RejectedSubmissionSurfacesAsRuntimeError) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());
  ws.service().close();  // admission now rejects everything

  try {
    (void)cl.fetch_permutation(1, 1000);
    FAIL() << "expected a rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos);
  }
}

TEST(WireRpc, MalformedShuffleGeometryIsABadRequest) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());

  // elem_bytes = 0 can't describe any record layout; the server must
  // refuse it without touching the scheduler -- and the connection stays
  // usable afterwards.
  std::uint64_t dummy[4] = {0, 1, 2, 3};
  try {
    cl.shuffle_raw(1, dummy, 4, /*elem_bytes=*/0);
    FAIL() << "expected a bad-request error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad request"), std::string::npos);
  }
  const svc::permutation pi = cl.fetch_permutation(1, 100);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

// --- telemetry over the wire -------------------------------------------------

TEST(WireRpc, TelemetryOpcodesServeBothForms) {
  obs::set_enabled(true);
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());
  (void)cl.fetch_permutation(21, 1000);

  // Form 0: the whole process's Prometheus text exposition, including the
  // per-tenant series this very request just created.
  const std::string prom = cl.telemetry(svc::wire_client::telemetry_form::prometheus);
  EXPECT_NE(prom.find("# TYPE cgp_svc_jobs_done_total counter"), std::string::npos);
  EXPECT_NE(prom.find("cgp_svc_jobs_done_by_client_total{client_id=\"21\"}"),
            std::string::npos);

  // Form 1: the sampler's JSON ring (the server owns a running sampler by
  // default; the pull itself forces a fresh sample, so the ring is never
  // empty here).
  const std::string ring = cl.telemetry(svc::wire_client::telemetry_form::json_ring);
  EXPECT_NE(ring.find("\"series\""), std::string::npos);
  EXPECT_NE(ring.find("\"samples\""), std::string::npos);
  EXPECT_NE(ring.find("\"wall_epoch_ns\""), std::string::npos);
  EXPECT_EQ(std::count(ring.begin(), ring.end(), '{'),
            std::count(ring.begin(), ring.end(), '}'));
}

TEST(WireRpc, TelemetryRingServesEmptyWhenSamplerDisabled) {
  svc::wire_server_options wopt = seeded_options();
  wopt.telemetry_period_ms = 0;  // no sampler
  svc::wire_server ws(wopt);
  EXPECT_EQ(ws.telemetry_sampler(), nullptr);
  svc::wire_client cl("127.0.0.1", ws.port());
  const std::string ring = cl.telemetry(svc::wire_client::telemetry_form::json_ring);
  EXPECT_NE(ring.find("\"series\""), std::string::npos);  // valid, just empty
}

TEST(WireRpc, SnapshotSeparatesConcurrentTenants) {
  svc::wire_server ws(seeded_options());
  // Two tenants on their own connections, concurrently.
  std::thread a([&] {
    svc::wire_client cl("127.0.0.1", ws.port());
    for (int i = 0; i < 4; ++i) (void)cl.fetch_permutation(31, 4096);
  });
  std::thread b([&] {
    svc::wire_client cl("127.0.0.1", ws.port());
    for (int i = 0; i < 3; ++i) (void)cl.fetch_permutation(32, 4096);
  });
  a.join();
  b.join();
  const std::string js = svc::wire_client("127.0.0.1", ws.port()).metrics_snapshot();
  // Each tenant's section carries its own counts and latency percentiles.
  const std::size_t t31 = js.find("\"31\"");
  const std::size_t t32 = js.find("\"32\"");
  ASSERT_NE(t31, std::string::npos);
  ASSERT_NE(t32, std::string::npos);
  EXPECT_NE(js.find("\"done\": 4", t31), std::string::npos);
  EXPECT_NE(js.find("\"done\": 3", t32), std::string::npos);
  EXPECT_NE(js.find("\"p99_ns\""), std::string::npos);
}

// --- distributed tracing over the wire ---------------------------------------

TEST(WireRpc, RemoteJobStitchesIntoOneTrace) {
  obs::set_enabled(true);
  obs::set_tracing(true);
  obs::clear_trace();
  obs::set_current_trace({});

  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());
  (void)cl.fetch_permutation(41, 50'000);

  obs::set_tracing(false);

  // One trace: the client's wire.call span minted a trace_id, the request
  // carried it, and the server's handling span, the service job, and the
  // executor all joined it.  (Client and server share this process here;
  // examples/wire_server.cpp serve/client modes pin the same stitching
  // across two real processes in CI.)
  std::uint64_t call_trace = 0;
  std::uint64_t call_span = 0;
  for (const obs::trace_event& e : obs::trace_snapshot()) {
    if (std::string(e.name) == "wire.call") {
      call_trace = e.trace_id;
      call_span = e.span_id;
    }
  }
  ASSERT_NE(call_trace, 0u) << "client span must mint a trace";

  bool server_span = false;
  bool svc_job = false;
  bool exec_span = false;
  for (const obs::trace_event& e : obs::trace_snapshot()) {
    if (e.trace_id != call_trace) continue;
    const std::string name = e.name;
    if (name == "wire.permutation") {
      server_span = true;
      // The server's handling span parents under the client's call span:
      // the context crossed the wire.
      EXPECT_EQ(e.parent_id, call_span);
    }
    if (name == "svc.job") svc_job = true;
    if (name == "fisher-yates" || name == "shuffle" || name == "split" ||
        name == "fill") {
      exec_span = true;
    }
  }
  EXPECT_TRUE(server_span) << "wire.permutation missing from the stitched trace";
  EXPECT_TRUE(svc_job) << "svc.job missing from the stitched trace";
  EXPECT_TRUE(exec_span) << "executor spans missing from the stitched trace";
}

TEST(WireRpc, UntracedClientsSendNoTraceAndNothingBreaks) {
  obs::set_enabled(true);
  obs::set_tracing(false);
  obs::set_current_trace({});
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());
  // flags stay 0 on the wire (old-client behavior); everything still works.
  const svc::permutation pi = cl.fetch_permutation(1, 10'000);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

TEST(WireRpc, ZeroLengthJobsRoundTrip) {
  svc::wire_server ws(seeded_options());
  svc::wire_client cl("127.0.0.1", ws.port());
  const svc::permutation pi = cl.fetch_permutation(1, 0);
  EXPECT_TRUE(pi.empty());
  std::vector<std::uint64_t> none;
  cl.shuffle(1, std::span<std::uint64_t>(none));  // empty body both ways
}

}  // namespace
