// Unit tests for the observability layer (src/obs/): registry thread
// safety, histogram quantile accuracy against a sorted-vector oracle,
// snapshot determinism across scheduler worker counts, and the layer's
// one hard invariant -- instrumentation NEVER changes permutation output.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "obs/metrics.hpp"
#include "obs/plan_feedback.hpp"
#include "obs/trace.hpp"
#include "rng/philox.hpp"
#include "svc/server.hpp"

namespace {

using namespace cgp;

// ---------------------------------------------------------------------------
// Registry thread safety.  The CI sanitize job runs this under
// ASan+UBSan(+thread hammering): concurrent first-use registration of the
// same names, plus concurrent mutation of every metric kind, must be free
// of races and lose no increments.

TEST(ObsRegistry, ConcurrentRegistrationAndMutation) {
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  obs::set_enabled(true);

  const std::uint64_t before = obs::get_counter("test.hammer.counter").value();
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go] {
      go.fetch_add(1);
      while (go.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        // Same names from every thread: exercises concurrent first-use
        // registration (iteration 0) and then pure hot-path mutation.
        obs::get_counter("test.hammer.counter").add();
        obs::get_gauge("test.hammer.gauge").set(t);
        obs::get_gauge("test.hammer.gauge").note_peak(t);
        obs::get_histogram("test.hammer.hist").record(static_cast<std::uint64_t>(i));
        // A few distinct names too, so registration interleaves with
        // lookups of other nodes.
        obs::get_counter("test.hammer.c" + std::to_string(i % 4)).add();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(obs::get_counter("test.hammer.counter").value() - before,
            static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t spread = 0;
  for (int k = 0; k < 4; ++k) {
    spread += obs::get_counter("test.hammer.c" + std::to_string(k)).value();
  }
  EXPECT_GE(spread, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(obs::get_gauge("test.hammer.gauge").peak(), kThreads - 1);
  EXPECT_GE(obs::get_histogram("test.hammer.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsRegistry, DisabledGateStopsMutation) {
  obs::set_enabled(true);
  obs::counter& c = obs::get_counter("test.gate.counter");
  const std::uint64_t v0 = c.value();
  obs::set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), v0);
  obs::set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), v0 + 1);
}

TEST(ObsRegistry, SnapshotJsonIsWellFormedEnough) {
  obs::set_enabled(true);
  obs::get_counter("test.snapshot.counter").add(3);
  obs::get_histogram("test.snapshot.hist").record(42);
  const std::string js = obs::snapshot_json();
  // Structural smoke check (the CI workflow json.loads()-validates the
  // full document): braces balance and the three sections are present.
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'), std::count(js.begin(), js.end(), '}'));
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"histograms\""), std::string::npos);
  EXPECT_NE(js.find("test.snapshot.counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram quantiles vs a sorted-vector oracle.  The contract
// (obs/metrics.hpp): quantile(q) returns the lower bound of the bucket
// holding the nearest-rank order statistic -- so the returned value and
// the exact order statistic always map to the SAME bucket, bounding the
// relative error by the bucket width (<= 12.5%).

TEST(ObsHistogram, QuantilesMatchSortedOracle) {
  rng::philox4x64 e(0x0B5, 1);
  for (const std::size_t n : {1u, 2u, 100u, 10'000u}) {
    obs::histogram h;
    std::vector<std::uint64_t> vals;
    vals.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Skewed spread across many octaves, like real latencies.
      const std::uint64_t v = e() % (std::uint64_t{1} << (4 + i % 40));
      vals.push_back(v);
      h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      // Nearest rank: the ceil(q*n)-th smallest, 1-based (clamped to >= 1).
      std::size_t k = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
      if (k < 1) k = 1;
      const std::uint64_t oracle = vals[k - 1];
      EXPECT_EQ(obs::histogram::bucket_of(h.quantile(q)), obs::histogram::bucket_of(oracle))
          << "n=" << n << " q=" << q << " oracle=" << oracle << " got=" << h.quantile(q);
    }
  }
}

TEST(ObsHistogram, BucketGeometry) {
  // Unit buckets are exact; beyond them every bucket's floor maps back to
  // that bucket, and bucket widths stay within 1/8 of the floor.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::histogram::bucket_of(v), v);
    EXPECT_EQ(obs::histogram::bucket_floor(v), v);
  }
  for (std::size_t b = 0; b < obs::histogram::kBuckets; ++b) {
    EXPECT_EQ(obs::histogram::bucket_of(obs::histogram::bucket_floor(b)), b) << "b=" << b;
  }
  obs::histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty histogram
}

// ---------------------------------------------------------------------------
// Snapshot determinism: the DETERMINISTIC subset of service metrics (jobs
// completed, latency observations recorded) must not depend on scheduler
// worker count.  Batch counts, cache hits, and gauge levels are
// schedule-dependent by design and deliberately not pinned.

TEST(ObsService, DeterministicCountersAcrossWorkerCounts) {
  obs::set_enabled(true);
  constexpr std::uint64_t kJobs = 24;
  auto run = [&](std::uint32_t workers) {
    const std::uint64_t done0 = obs::get_counter("svc.jobs.done").value();
    const std::uint64_t lat0 = obs::get_histogram("svc.job_latency_ns").count();
    svc::server_options so;
    so.seed = 0x0B5;
    so.scheduler_workers = workers;
    svc::server srv(so);
    std::vector<svc::future<svc::permutation>> futs;
    futs.reserve(kJobs);
    for (std::uint64_t j = 0; j < kJobs; ++j) {
      futs.push_back(srv.submit_permutation(/*client=*/j % 3, /*n=*/512));
    }
    for (auto& f : futs) (void)f.get();
    srv.close();
    EXPECT_EQ(obs::get_counter("svc.jobs.done").value() - done0, kJobs);
    EXPECT_EQ(obs::get_histogram("svc.job_latency_ns").count() - lat0, kJobs);
  };
  run(1);
  run(4);
}

TEST(ObsService, MetricsSnapshotReportsJobs) {
  obs::set_enabled(true);
  svc::server srv;
  (void)srv.submit_permutation(0, 1024).get();
  const std::string js = srv.metrics_snapshot();
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'), std::count(js.begin(), js.end(), '}'));
  for (const char* key : {"\"queue_depth\"", "\"rejected\"", "\"plan_cache\"", "\"hit_rate\"",
                          "\"job_latency\"", "\"batch_size\"", "\"metrics\""}) {
    EXPECT_NE(js.find(key), std::string::npos) << key;
  }
}

// ---------------------------------------------------------------------------
// The invariant everything above depends on: instrumentation observes and
// never perturbs.  Identical output with obs+tracing on, off, and
// mid-toggled.

TEST(ObsDeterminism, TracingNeverChangesShuffleOutput) {
  constexpr std::uint64_t kN = 200'000;  // above the cache cutoff: real splits
  constexpr std::uint64_t kSeed = 0x0B5D;
  auto draw = [&] {
    std::vector<std::uint64_t> v(kN);
    for (std::uint64_t i = 0; i < kN; ++i) v[i] = i;
    cgp::context ctx;
    (void)ctx.shuffle(std::span<std::uint64_t>(v), kSeed);
    return v;
  };

  obs::set_enabled(true);
  obs::set_tracing(false);
  const std::vector<std::uint64_t> base = draw();

  obs::set_tracing(true);
  obs::clear_trace();
  EXPECT_EQ(draw(), base);
  EXPECT_GT(obs::trace_snapshot().size(), 0u);  // tracing was really on

  obs::set_tracing(false);
  obs::set_enabled(false);
  EXPECT_EQ(draw(), base);
  obs::set_enabled(true);
  EXPECT_EQ(draw(), base);
}

// ---------------------------------------------------------------------------
// Distributed trace context: spans carry (trace_id, span_id, parent_id),
// nest via the thread-local context, and restore it on close; adopt_trace
// is the receive-side "install only if free" primitive.

TEST(ObsTrace, SpanContextNestsAndRestores) {
  obs::set_enabled(true);
  obs::set_tracing(true);
  obs::clear_trace();
  ASSERT_EQ(obs::current_trace().trace_id, 0u);
  obs::trace_context outer_ctx;
  obs::trace_context inner_ctx;
  {
    const obs::span outer("ctx.outer", "test");
    outer_ctx = obs::current_trace();
    EXPECT_NE(outer_ctx.trace_id, 0u);
    EXPECT_NE(outer_ctx.span_id, 0u);
    {
      const obs::span inner("ctx.inner", "test");
      inner_ctx = obs::current_trace();
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);  // joined, not forked
      EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);
    }
    EXPECT_EQ(obs::current_trace().span_id, outer_ctx.span_id);  // restored
  }
  EXPECT_EQ(obs::current_trace().trace_id, 0u);  // fully unwound

  // The recorded events carry the chain: inner parents under outer.
  bool found_inner = false;
  bool found_outer = false;
  for (const obs::trace_event& e : obs::trace_snapshot()) {
    if (std::string(e.name) == "ctx.inner") {
      found_inner = true;
      EXPECT_EQ(e.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(e.span_id, inner_ctx.span_id);
      EXPECT_EQ(e.parent_id, outer_ctx.span_id);
    }
    if (std::string(e.name) == "ctx.outer") {
      found_outer = true;
      EXPECT_EQ(e.parent_id, 0u);  // a root span
    }
  }
  EXPECT_TRUE(found_inner);
  EXPECT_TRUE(found_outer);
  obs::set_tracing(false);
}

TEST(ObsTrace, AdoptTraceInstallsOnlyWhenFree) {
  obs::set_current_trace({});
  obs::adopt_trace({0xABCD, 0x1234});
  EXPECT_EQ(obs::current_trace().trace_id, 0xABCDu);  // free thread adopts
  obs::adopt_trace({0xEEEE, 0x2222});
  EXPECT_EQ(obs::current_trace().trace_id, 0xABCDu);  // occupied thread keeps
  obs::set_current_trace({});
}

TEST(ObsTrace, FreshTraceIdsAreNonzeroAndDistinct) {
  const std::uint64_t a = obs::new_trace_id();
  const std::uint64_t b = obs::new_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(obs::wall_epoch_ns(), 0u);
  EXPECT_EQ(obs::wall_epoch_ns(), obs::wall_epoch_ns());  // one anchor per process
}

// ---------------------------------------------------------------------------
// Ring wraparound: recording past capacity evicts the oldest spans, the
// relative dropped count reconciles exactly, and the process-wide
// dropped-spans counter surfaces the evictions.

TEST(ObsTrace, RingWraparoundReconciles) {
  obs::set_enabled(true);
  obs::clear_trace();
  const std::uint64_t counter0 = obs::get_counter("obs.trace.dropped_spans").value();
  // Well past the 64Ki ring: the overshoot must show up as drops.
  constexpr std::uint64_t kWrite = (std::uint64_t{1} << 16) + 1000;
  for (std::uint64_t i = 0; i < kWrite; ++i) {
    obs::detail::record_event("wrap.ev", "test", i, 1, 1, i + 1, 0);
  }
  const std::vector<obs::trace_event> evs = obs::trace_snapshot();
  // Everything not dropped is in the snapshot: sizes reconcile exactly.
  EXPECT_EQ(evs.size() + obs::dropped_events(), kWrite);
  EXPECT_GE(obs::dropped_events(), 1000u);
  EXPECT_GE(obs::get_counter("obs.trace.dropped_spans").value() - counter0, 1000u);
  // Survivors are the NEWEST records (the tail of the write sequence).
  for (const obs::trace_event& e : evs) {
    EXPECT_GE(e.ts_ns, kWrite - evs.size());
  }
  obs::clear_trace();
}

// ---------------------------------------------------------------------------
// Concurrent dump-while-writing: snapshots taken while writers hammer the
// ring must never surface a torn record (fields from two different
// writers in one event) -- the seqlock + payload checksum contract.

TEST(ObsTrace, SnapshotWhileWritingSeesNoTornRecords) {
  obs::set_enabled(true);
  obs::clear_trace();
  constexpr int kWriters = 8;
  constexpr std::uint64_t kIters = 40'000;  // > ring capacity in total: real laps
  static const char* const kNames[kWriters] = {"torn.a", "torn.b", "torn.c", "torn.d",
                                               "torn.e", "torn.f", "torn.g", "torn.h"};
  std::atomic<int> go{0};
  std::atomic<int> active{kWriters};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([t, &go, &active] {
      // Writer t's records are internally consistent: every field derives
      // from k = t + 1, so any cross-writer mix is detectable.
      const std::uint64_t k = static_cast<std::uint64_t>(t) + 1;
      go.fetch_add(1);
      while (go.load() < kWriters) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kIters; ++i) {
        obs::detail::record_event(kNames[t], "torn", k * 10, k * 100, k, k * 2 + 1, k * 3);
      }
      active.fetch_sub(1);
    });
  }
  // Snapshot continuously WHILE the writers lap the ring.
  std::uint64_t checked = 0;
  while (active.load(std::memory_order_relaxed) > 0) {
    for (const obs::trace_event& e : obs::trace_snapshot()) {
      if (std::string(e.cat) != "torn") continue;
      ++checked;
      const std::uint64_t k = e.trace_id;
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, static_cast<std::uint64_t>(kWriters));
      // Every field must belong to the SAME writer k.
      EXPECT_EQ(std::string(e.name), kNames[k - 1]);
      EXPECT_EQ(e.ts_ns, k * 10);
      EXPECT_EQ(e.dur_ns, k * 100);
      EXPECT_EQ(e.span_id, k * 2 + 1);
      EXPECT_EQ(e.parent_id, k * 3);
    }
  }
  for (auto& w : writers) w.join();
  // Post-join reconciliation: snapshot + dropped accounts for everything
  // written, up to a handful of slots a lapped writer re-invalidated (the
  // seqlock discards those rather than surfacing them torn -- at most one
  // in-flight record per writer can be a casualty).
  const std::vector<obs::trace_event> evs = obs::trace_snapshot();
  const std::uint64_t total = static_cast<std::uint64_t>(kWriters) * kIters;
  EXPECT_LE(evs.size() + obs::dropped_events(), total);
  EXPECT_GE(evs.size() + obs::dropped_events() + 2 * kWriters, total);
  for (const obs::trace_event& e : evs) {
    if (std::string(e.cat) != "torn") continue;
    ++checked;
    const std::uint64_t k = e.trace_id;
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, static_cast<std::uint64_t>(kWriters));
    EXPECT_EQ(std::string(e.name), kNames[k - 1]);
    EXPECT_EQ(e.span_id, k * 2 + 1);
  }
  EXPECT_GT(checked, 0u);
  obs::clear_trace();
}

// ---------------------------------------------------------------------------
// The Chrome dump carries the cross-process stitching metadata: a
// clock_anchor record (steady->wall translation) and a trace_summary
// footer (events written + dropped spans).

TEST(ObsTrace, ChromeDumpCarriesAnchorAndSummary) {
  obs::set_enabled(true);
  obs::set_tracing(true);
  obs::clear_trace();
  {
    const obs::span sp("dump.probe", "test");
  }
  obs::set_tracing(false);
  const std::string path = "obs_dump_test.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string dump = ss.str();
  for (const char* key : {"\"clock_anchor\"", "\"wall_epoch_ns\"", "\"trace_summary\"",
                          "\"dropped_spans\"", "\"trace_id\"", "\"span_id\"",
                          "\"parent_id\"", "\"dump.probe\""}) {
    EXPECT_NE(dump.find(key), std::string::npos) << key;
  }
}

TEST(ObsDeterminism, FeedbackIsRecordedAndHarmless) {
  obs::set_enabled(true);
  obs::clear_plan_feedback();
  std::vector<std::uint64_t> v(4096);
  for (std::uint64_t i = 0; i < v.size(); ++i) v[i] = i;
  cgp::context ctx;
  (void)ctx.shuffle(std::span<std::uint64_t>(v), 7);
  bool any = false;
  for (const char* b : {"seq", "smp", "em"}) {
    if (obs::plan_feedback_for(b).jobs > 0) any = true;
  }
  EXPECT_TRUE(any);
}

}  // namespace
