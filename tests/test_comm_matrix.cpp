// Tests for the communication-matrix type: conservation laws, the exact
// generalized-hypergeometric law (log_probability), Proposition 4 merging,
// and the a-posteriori matrix of a permutation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/comm_matrix.hpp"
#include "hyp/pmf.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "stats/chisq.hpp"

namespace {

using namespace cgp;
using core::comm_matrix;

TEST(CommMatrix, SumsAndMargins) {
  comm_matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  EXPECT_EQ(a.total(), 21u);
  EXPECT_EQ(a.row_sums(), (std::vector<std::uint64_t>{6, 15}));
  EXPECT_EQ(a.col_sums(), (std::vector<std::uint64_t>{5, 7, 9}));
  EXPECT_TRUE(a.satisfies_margins(std::vector<std::uint64_t>{6, 15},
                                  std::vector<std::uint64_t>{5, 7, 9}));
  EXPECT_FALSE(a.satisfies_margins(std::vector<std::uint64_t>{7, 14},
                                   std::vector<std::uint64_t>{5, 7, 9}));
}

TEST(CommMatrix, LogProbabilityHandComputed) {
  // 2x2, margins all 1 (n = 2): two legal matrices (identity-like and
  // swap-like), each realized by exactly 1 of the 2 permutations.
  comm_matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = 1;
  EXPECT_NEAR(std::exp(a.log_probability()), 0.5, 1e-12);
  comm_matrix b(2, 2);
  b(0, 1) = 1;
  b(1, 0) = 1;
  EXPECT_NEAR(std::exp(b.log_probability()), 0.5, 1e-12);
}

TEST(CommMatrix, LogProbabilityNormalizesOver2x2Family) {
  // margins rows (2,2), cols (2,2): a00 in {0,1,2} determines the matrix
  // (paper eq. (8)); the law must be h(t=2, w=2, b=2) and sum to 1.
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 2; ++k) {
    comm_matrix a(2, 2);
    a(0, 0) = k;
    a(0, 1) = 2 - k;
    a(1, 0) = 2 - k;
    a(1, 1) = k;
    const double prob = std::exp(a.log_probability());
    EXPECT_NEAR(prob, hyp::pmf(hyp::params{2, 2, 2}, k), 1e-12) << "k=" << k;
    total += prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CommMatrix, MergeAggregatesBlocks) {
  comm_matrix a(4, 4);
  for (std::uint32_t i = 0; i < 4; ++i)
    for (std::uint32_t j = 0; j < 4; ++j) a(i, j) = i * 4 + j;
  const std::vector<std::uint32_t> bounds{0, 2, 4};
  const comm_matrix m = a.merge(bounds, bounds);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 0), 0u + 1 + 4 + 5);
  EXPECT_EQ(m(1, 1), 10u + 11 + 14 + 15);
  EXPECT_EQ(m.total(), a.total());
}

TEST(CommMatrix, MergePreservesMargins) {
  comm_matrix a(3, 3);
  std::uint64_t v = 1;
  for (std::uint32_t i = 0; i < 3; ++i)
    for (std::uint32_t j = 0; j < 3; ++j) a(i, j) = v++;
  const std::vector<std::uint32_t> rb{0, 1, 3};
  const std::vector<std::uint32_t> cb{0, 2, 3};
  const comm_matrix m = a.merge(rb, cb);
  const auto rs = a.row_sums();
  const auto cs = a.col_sums();
  EXPECT_EQ(m.row_sums(), (std::vector<std::uint64_t>{rs[0], rs[1] + rs[2]}));
  EXPECT_EQ(m.col_sums(), (std::vector<std::uint64_t>{cs[0] + cs[1], cs[2]}));
}

TEST(MatrixOfPermutation, IdentityAndReversal) {
  const std::vector<std::uint64_t> margins{2, 2};
  std::vector<std::uint64_t> ident{0, 1, 2, 3};
  const auto a = core::matrix_of_permutation(ident, margins, margins);
  EXPECT_EQ(a(0, 0), 2u);
  EXPECT_EQ(a(0, 1), 0u);
  EXPECT_EQ(a(1, 1), 2u);

  std::vector<std::uint64_t> rev{3, 2, 1, 0};
  const auto b = core::matrix_of_permutation(rev, margins, margins);
  EXPECT_EQ(b(0, 0), 0u);
  EXPECT_EQ(b(0, 1), 2u);
  EXPECT_EQ(b(1, 0), 2u);
}

TEST(MatrixOfPermutation, UnevenBlocks) {
  // 5 items, rows (2,3), cols (1,4).
  const std::vector<std::uint64_t> rm{2, 3};
  const std::vector<std::uint64_t> cm{1, 4};
  std::vector<std::uint64_t> perm{4, 0, 1, 2, 3};  // 0->4, 1->0, ...
  const auto a = core::matrix_of_permutation(perm, rm, cm);
  // Source block 0 = positions {0,1} -> targets {4,0}: one in col1, one in col0.
  EXPECT_EQ(a(0, 0), 1u);
  EXPECT_EQ(a(0, 1), 1u);
  EXPECT_EQ(a(1, 0), 0u);
  EXPECT_EQ(a(1, 1), 3u);
}

TEST(MatrixOfPermutation, EntryLawMatchesProposition3) {
  // Shuffle uniformly (Fisher-Yates is the trusted reference), build the
  // a-posteriori matrix, and chi-square entry a_00 against
  // h(t = m'_0, w = m_0, b = n - m_0).
  const std::vector<std::uint64_t> rm{6, 10};  // n = 16
  const std::vector<std::uint64_t> cm{8, 8};
  const hyp::params law{cm[0], rm[0], 10};
  const auto probs = hyp::pmf_table(law);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  rng::philox4x64 e(900, 0);
  std::vector<std::uint64_t> perm(16);
  for (int rep = 0; rep < 30000; ++rep) {
    std::iota(perm.begin(), perm.end(), 0);
    seq::fisher_yates(e, std::span<std::uint64_t>(perm));
    const auto a = core::matrix_of_permutation(perm, rm, cm);
    ++counts[a(0, 0) - hyp::support_min(law)];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(CommMatrix, EqualityAndDefault) {
  comm_matrix a(2, 2);
  comm_matrix b(2, 2);
  EXPECT_EQ(a, b);
  a(0, 0) = 1;
  EXPECT_NE(a, b);
  comm_matrix empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.total(), 0u);
}

}  // namespace
