// Tests for the SIMD keystream pass (rng/philox_batch.hpp) and the NUMA /
// hugepage placement knobs that ride with it.
//
// The load-bearing claim is lane-order independence: every kernel (scalar,
// AVX2, NEON) of philox4x64_batch writes the EXACT word sequence
// out[4i+j] = bijection(counter+i, key)[j], so the batched engine replays
// the scalar engine bit for bit and no backend's permutation can depend on
// which path ran.  The suite pins this at every layer: raw keystream,
// engine word streams, and whole-backend permutations across
// {scalar, vector} x batch sizes x {seq, smp, em, cgm}.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/backend.hpp"
#include "core/plan.hpp"
#include "em/async_shuffle.hpp"
#include "em/block_device.hpp"
#include "obs/metrics.hpp"
#include "rng/philox.hpp"
#include "rng/philox_batch.hpp"
#include "rng/stream.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/thread_pool.hpp"
#include "support/perm_check.hpp"

namespace {

using namespace cgp;

/// Restore env/detection dispatch on scope exit, whatever a test forced.
struct override_guard {
  ~override_guard() { rng::clear_simd_override(); }
};

/// All paths this host can actually run (scalar always; every supported
/// vector tier -- an AVX-512 host runs both the avx2 and avx512 kernels,
/// and the differential pins below cover each of them).
std::vector<rng::simd_path> runnable_paths() {
  std::vector<rng::simd_path> paths{rng::simd_path::scalar};
  for (const rng::simd_path p :
       {rng::simd_path::avx2, rng::simd_path::neon, rng::simd_path::avx512}) {
    if (rng::simd_path_supported(p)) paths.push_back(p);
  }
  return paths;
}

// ---------------------------------------------------------------------------
// Keystream pins

TEST(PhiloxBatch, MatchesRepeatedSingleCallBijection) {
  // philox4x64_batch vs nblocks separate bijection() calls -- the
  // ISSUE-mandated equality pin, on every runnable path and at batch sizes
  // spanning {1, 4, 8} plus remainders that exercise each kernel's tail.
  const auto key = rng::philox4x64::derive_key(0xA11CE, 7);
  for (const rng::simd_path path : runnable_paths()) {
    for (const std::uint64_t nblocks : {1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull, 9ull, 12ull,
                                        16ull, 17ull, 24ull, 33ull}) {
      rng::philox4x64::block_type counter{0x123, 0, 0, 0};
      std::vector<std::uint64_t> got(4 * nblocks);
      rng::philox4x64_batch_on(path, counter, key, nblocks, got.data());
      for (std::uint64_t i = 0; i < nblocks; ++i) {
        const auto want = rng::philox4x64::bijection(counter, key);
        for (int j = 0; j < 4; ++j) {
          ASSERT_EQ(got[4 * i + j], want[static_cast<std::size_t>(j)])
              << "path=" << rng::simd_path_name(path) << " nblocks=" << nblocks << " block=" << i
              << " word=" << j;
        }
        for (auto& w : counter) {
          if (++w != 0) break;
        }
      }
    }
  }
}

TEST(PhiloxBatch, AllPathsBitIdentical) {
  const auto key = rng::philox4x64::derive_key(42, 0);
  // A counter straddling the 64-bit word boundary exercises the 256-bit
  // carry inside every kernel's lane setup.
  const rng::philox4x64::block_type counter{~std::uint64_t{0} - 2, 5, 0, 0};
  constexpr std::uint64_t kBlocks = 16;
  std::vector<std::uint64_t> reference(4 * kBlocks);
  rng::philox4x64_batch_on(rng::simd_path::scalar, counter, key, kBlocks, reference.data());
  for (const rng::simd_path path : runnable_paths()) {
    std::vector<std::uint64_t> got(4 * kBlocks);
    rng::philox4x64_batch_on(path, counter, key, kBlocks, got.data());
    EXPECT_EQ(got, reference) << "path=" << rng::simd_path_name(path);
  }
}

TEST(PhiloxBatch, UnsupportedPathRequestFallsBackToScalar) {
  // Asking for a kernel this host cannot run must still produce the
  // keystream (via the scalar fallback), never garbage or a crash.
  const auto key = rng::philox4x64::derive_key(1, 2);
  const rng::philox4x64::block_type counter{9, 0, 0, 0};
  std::vector<std::uint64_t> reference(8), got(8);
  rng::philox4x64_batch_on(rng::simd_path::scalar, counter, key, 2, reference.data());
  for (const rng::simd_path path :
       {rng::simd_path::avx2, rng::simd_path::neon, rng::simd_path::avx512}) {
    rng::philox4x64_batch_on(path, counter, key, 2, got.data());
    EXPECT_EQ(got, reference) << "path=" << rng::simd_path_name(path);
  }
}

TEST(BatchedPhilox, ReplaysScalarEngineWordForWord) {
  override_guard guard;
  for (const rng::simd_path path : runnable_paths()) {
    rng::set_simd_override(path);
    rng::philox4x64 scalar(0x5EED, 0xF00);
    rng::batched_philox batched(0x5EED, 0xF00);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(batched(), scalar()) << "path=" << rng::simd_path_name(path) << " word=" << i;
    }
  }
}

TEST(BatchedPhilox, SeekMatchesStreamEngineAt) {
  override_guard guard;
  for (const rng::simd_path path : runnable_paths()) {
    rng::set_simd_override(path);
    for (const std::uint64_t idx : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 31ull, 32ull, 33ull,
                                    100ull, 1000ull}) {
      auto reference = rng::stream_engine_at(0xABCD, 0x11, idx);
      rng::batched_philox batched(0xABCD, 0x11, idx);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(batched(), reference())
            << "path=" << rng::simd_path_name(path) << " idx=" << idx << " word=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch control

TEST(SimdDispatch, OverrideForcesScalarAndRestores) {
  override_guard guard;
  rng::set_simd_override(rng::simd_path::scalar);
  EXPECT_EQ(rng::active_simd_path(), rng::simd_path::scalar);
  rng::clear_simd_override();
  // Without an override, the path is whatever env/detection resolved at
  // process start; it must at least be a runnable one.
  const rng::simd_path active = rng::active_simd_path();
  EXPECT_TRUE(active == rng::simd_path::scalar || active == rng::detected_simd_path());
}

TEST(SimdDispatch, UnsupportedOverrideDegradesToScalar) {
  override_guard guard;
  // Request every vector path; the ones this host cannot execute must
  // degrade to scalar rather than dispatch into an illegal instruction.
  // (Supported is a SET, not just the detected best: an AVX-512 host also
  // honours an avx2 request.)
  for (const rng::simd_path p :
       {rng::simd_path::avx2, rng::simd_path::neon, rng::simd_path::avx512}) {
    rng::set_simd_override(p);
    const rng::simd_path active = rng::active_simd_path();
    if (rng::simd_path_supported(p)) {
      EXPECT_EQ(active, p);
    } else {
      EXPECT_EQ(active, rng::simd_path::scalar);
    }
  }
}

TEST(SimdDispatch, ActivePathIsSurfacedInObsGauge) {
  override_guard guard;
  rng::set_simd_override(rng::simd_path::scalar);
  EXPECT_EQ(obs::get_gauge("rng.simd_path").value(),
            static_cast<std::int64_t>(rng::simd_path::scalar));
  rng::clear_simd_override();
  EXPECT_EQ(obs::get_gauge("rng.simd_path").value(),
            static_cast<std::int64_t>(rng::active_simd_path()));
}

TEST(SimdDispatch, PlanExplainNamesTheActivePath) {
  override_guard guard;
  rng::set_simd_override(rng::simd_path::scalar);
  core::workload w;
  w.n = 1 << 20;
  const auto plan = core::plan_permutation(w, core::machine_profile::detect());
  EXPECT_NE(plan.explain().find("rng.simd_path=scalar"), std::string::npos);
}

TEST(SimdDispatch, ProfileFingerprintReKeysAcrossPaths) {
  override_guard guard;
  const core::machine_profile prof;
  rng::set_simd_override(rng::simd_path::scalar);
  const std::uint64_t fp_scalar = prof.fingerprint();
  EXPECT_EQ(fp_scalar, prof.fingerprint()) << "fingerprint must be stable under a fixed path";
  if (rng::detected_simd_path() != rng::simd_path::scalar) {
    rng::set_simd_override(rng::detected_simd_path());
    EXPECT_NE(prof.fingerprint(), fp_scalar)
        << "moving a profile between ISAs must re-key the plan cache";
  }
}

// ---------------------------------------------------------------------------
// Lane-order independence at the backend level: the same seed must yield
// the same permutation no matter which kernel generated the keystream.

TEST(SimdBackends, PermutationsBitIdenticalAcrossPaths) {
  override_guard guard;
  const std::uint64_t n = 1 << 12;
  for (const core::backend which :
       {core::backend::sequential, core::backend::smp, core::backend::em, core::backend::cgm,
        core::backend::cgm_simulator}) {
    core::backend_options opt;
    opt.which = which;
    opt.seed = 0x51D7E57;
    rng::set_simd_override(rng::simd_path::scalar);
    const auto scalar_pi = core::random_permutation(n, opt);
    EXPECT_TRUE(stats::is_permutation_of_iota(scalar_pi))
        << core::backend_name(which);
    for (const rng::simd_path path : runnable_paths()) {
      rng::set_simd_override(path);
      const auto pi = core::random_permutation(n, opt);
      EXPECT_EQ(pi, scalar_pi) << "backend=" << core::backend_name(which)
                               << " path=" << rng::simd_path_name(path);
    }
  }
}

// ---------------------------------------------------------------------------
// Statistical quality of the batched path (S4/S5 exhaustive chi-square):
// replaying the same words in batches cannot change the law, but the pin
// keeps refactors honest.

TEST(SimdUniformity, BatchedEngineS4) {
  test_support::expect_uniform_over_sk(
      [](std::span<std::uint64_t> v, int rep) {
        rng::batched_philox e(0x54D, static_cast<std::uint64_t>(rep));
        seq::fisher_yates(e, v);
      },
      4, 24 * 250);
}

TEST(SimdUniformity, BatchedEngineS5) {
  test_support::expect_uniform_over_sk(
      [](std::span<std::uint64_t> v, int rep) {
        rng::batched_philox e(0x55D, static_cast<std::uint64_t>(rep));
        seq::fisher_yates(e, v);
      },
      5, 120 * 60);
}

// ---------------------------------------------------------------------------
// NUMA-aware pool: topology accessors are coherent and placement never
// perturbs results (chunk->worker affinity is a preference, not a
// dependency).

TEST(NumaPool, TopologyAccessorsAreCoherent) {
  smp::thread_pool pool(4);
  EXPECT_GE(pool.numa_node_count(), 1u);
  for (unsigned w = 0; w < pool.size(); ++w) {
    EXPECT_LT(pool.worker_node(w), pool.numa_node_count()) << "worker " << w;
  }
  // Contiguous grouping: node ids are non-decreasing over workers.
  for (unsigned w = 1; w < pool.size(); ++w) {
    EXPECT_LE(pool.worker_node(w - 1), pool.worker_node(w));
  }
}

TEST(NumaPool, ParallelForCoversRangeExactlyOnce) {
  smp::thread_pool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Hugepage-optional device storage: a placement knob, never a content one.

TEST(HugepageDevice, RoundTripsAndReportsMode) {
  em::block_device dev(4096, 64, /*hugepages=*/true);
  // MADV_HUGEPAGE is advisory: backed or not, the device must behave
  // identically.  (On kernels without THP the flag simply reports false.)
  std::vector<std::uint64_t> in(64), out(64);
  std::iota(in.begin(), in.end(), 1000);
  dev.write_block(3, in);
  dev.read_block(3, out);
  EXPECT_EQ(in, out);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(dev.peek(3 * 64 + i), 1000 + i);
  }
}

TEST(HugepageDevice, EmPermutationIdenticalAcrossPlacement) {
  // The em backend's output must not depend on where its buffers live.
  const std::uint64_t n = 1 << 12;
  const auto run = [&](bool hugepages) {
    em::block_device dev(n, 64, hugepages);
    for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
    smp::thread_pool pool(2);
    em::async_options opt;
    opt.memory_items = 1024;
    (void)em::async_em_shuffle(dev, n, 0xDE7, pool, opt);
    std::vector<std::uint64_t> out(n);
    for (std::uint64_t i = 0; i < n; ++i) out[i] = dev.peek(i);
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
