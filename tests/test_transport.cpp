// Tests for the comm/ transport layer and the distributed CGM engine
// behind backend::cgm: transport primitives (send/exchange ordering,
// ragged alltoallv round-trips), rank-count and transport independence of
// the distributed shuffle (loopback == threaded, p in {1, 2, 4, 8}),
// bit-agreement with backend::sequential at/below the leaf cutoff and
// with smp::engine above it, uniformity of the distributed pipeline, and
// the planner's BSP (p, g, L) cgm candidate.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cgm/distributed.hpp"
#include "comm/socket_transport.hpp"
#include "comm/transport.hpp"
#include "core/backend.hpp"
#include "core/context.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/registry.hpp"
#include "smp/engine.hpp"
#include "smp/thread_pool.hpp"
#include "support/perm_check.hpp"

namespace {

using namespace cgp;

// --- transport primitives ----------------------------------------------------

TEST(Transport, LoopbackDeliversInPostOrder) {
  comm::loopback_transport tr;
  EXPECT_EQ(tr.size(), 1u);
  tr.run([](comm::endpoint& ep) {
    EXPECT_EQ(ep.rank(), 0u);
    const std::uint64_t a = 11, b = 22;
    ep.send_span(0, 7, std::span<const std::uint64_t>(&a, 1));
    ep.send_span(0, 9, std::span<const std::uint64_t>(&b, 1));
    const auto msgs = ep.exchange();
    ASSERT_EQ(msgs.size(), 2u);
    EXPECT_EQ(msgs[0].tag, 7u);
    EXPECT_EQ(msgs[0].as<std::uint64_t>().front(), 11u);
    EXPECT_EQ(msgs[1].tag, 9u);
    // A second exchange with nothing in flight is an empty barrier.
    EXPECT_TRUE(ep.exchange().empty());
  });
}

TEST(Transport, ThreadedDeliversInSourceRankOrder) {
  comm::threaded_transport tr(4);
  tr.run([](comm::endpoint& ep) {
    // Everyone sends its rank to rank 0, twice (post order within rank).
    const std::uint64_t r = ep.rank();
    const std::uint64_t r2 = r + 100;
    ep.send_span(0, 1, std::span<const std::uint64_t>(&r, 1));
    ep.send_span(0, 1, std::span<const std::uint64_t>(&r2, 1));
    const auto msgs = ep.exchange();
    if (ep.rank() == 0) {
      ASSERT_EQ(msgs.size(), 8u);
      for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(msgs[2 * s].source, s);
        EXPECT_EQ(msgs[2 * s].as<std::uint64_t>().front(), s);
        EXPECT_EQ(msgs[2 * s + 1].as<std::uint64_t>().front(), s + 100);
      }
    } else {
      EXPECT_TRUE(msgs.empty());
    }
  });
}

// Ragged alltoallv round-trip: chunk (r -> d) holds r + d + 1 words,
// except that r == d chunks are empty; every rank checks contents and
// source order of what it got back.
void check_alltoallv_roundtrip(comm::transport& tr) {
  tr.run([](comm::endpoint& ep) {
    const std::uint32_t p = ep.size();
    const std::uint32_t r = ep.rank();
    std::vector<std::vector<std::byte>> chunks(p);
    for (std::uint32_t d = 0; d < p; ++d) {
      if (d == r) continue;  // ragged: empty diagonal
      std::vector<std::uint64_t> words(r + d + 1, 1000 * r + d);
      chunks[d].resize(words.size() * 8);
      std::memcpy(chunks[d].data(), words.data(), chunks[d].size());
    }
    const auto got = ep.alltoallv(std::span<const std::vector<std::byte>>(chunks));
    ASSERT_EQ(got.size(), p);
    for (std::uint32_t s = 0; s < p; ++s) {
      if (s == r) {
        EXPECT_TRUE(got[s].empty());
        continue;
      }
      ASSERT_EQ(got[s].size(), (s + r + 1) * 8u) << "from rank " << s;
      std::vector<std::uint64_t> words(s + r + 1);
      std::memcpy(words.data(), got[s].data(), got[s].size());
      for (const auto w : words) EXPECT_EQ(w, 1000 * s + r);
    }
  });
}

TEST(Transport, AlltoallvRaggedRoundTripLoopback) {
  comm::loopback_transport tr;
  // p = 1: the off-diagonal set is empty; the round trip must still be
  // well-formed (one empty received chunk).
  tr.run([](comm::endpoint& ep) {
    std::vector<std::vector<std::byte>> chunks(1);
    const auto got = ep.alltoallv(std::span<const std::vector<std::byte>>(chunks));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_TRUE(got[0].empty());
  });
}

TEST(Transport, AlltoallvRaggedRoundTripThreaded) {
  for (const std::uint32_t p : {2u, 4u, 8u}) {
    comm::threaded_transport tr(p);
    check_alltoallv_roundtrip(tr);
  }
}

TEST(Transport, ThreadedRunsOnExternalPool) {
  smp::thread_pool pool(4);
  comm::threaded_transport tr(4, &pool);
  check_alltoallv_roundtrip(tr);
}

// --- socket transport (comm/socket_transport.hpp) ---------------------------

TEST(SocketTransport, DeliversInSourceRankOrder) {
  // Same ordering contract as the threaded transport, but the messages
  // actually cross TCP connections and the per-destination aggregator.
  comm::socket_transport tr(4);
  tr.run([](comm::endpoint& ep) {
    const std::uint64_t r = ep.rank();
    const std::uint64_t r2 = r + 100;
    ep.send_span(0, 1, std::span<const std::uint64_t>(&r, 1));
    ep.send_span(0, 1, std::span<const std::uint64_t>(&r2, 1));
    const auto msgs = ep.exchange();
    if (ep.rank() == 0) {
      ASSERT_EQ(msgs.size(), 8u);
      for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(msgs[2 * s].source, s);
        EXPECT_EQ(msgs[2 * s].as<std::uint64_t>().front(), s);
        EXPECT_EQ(msgs[2 * s + 1].as<std::uint64_t>().front(), s + 100);
      }
    } else {
      EXPECT_TRUE(msgs.empty());
    }
    // A second exchange with nothing in flight is an empty barrier.
    EXPECT_TRUE(ep.exchange().empty());
  });
}

TEST(SocketTransport, AlltoallvRaggedRoundTrip) {
  for (const std::uint32_t p : {2u, 4u, 8u}) {
    comm::socket_transport tr(p);
    check_alltoallv_roundtrip(tr);
  }
}

TEST(SocketTransport, EmptyAndOversizedPayloadsRoundTripThroughFraming) {
  // The framing edge cases: an empty payload (empty vectors have null
  // data() -- the record must still travel, tag intact), an odd 3-byte
  // payload, and one far above the 64 KiB read chunk ((1 << 20) + 7
  // bytes).  Run at the default threshold (big payload flushes by size)
  // and at a tiny 64-byte one (EVERY record cut into its own frame, so
  // reassembly spans many frames).
  for (const std::size_t agg : {std::size_t{60} * 1024, std::size_t{64}}) {
    comm::socket_options sopt;
    sopt.aggregation_bytes = agg;
    comm::socket_transport tr(2, sopt);
    tr.run([](comm::endpoint& ep) {
      const std::uint32_t peer = 1 - ep.rank();
      ep.send(peer, 1, {});
      const std::vector<std::byte> odd(3, std::byte{0x5A});
      ep.send(peer, 2, std::span<const std::byte>(odd));
      std::vector<std::byte> big((std::size_t{1} << 20) + 7);
      for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = static_cast<std::byte>((i * 131 + ep.rank()) & 0xFF);
      }
      ep.send(peer, 3, std::span<const std::byte>(big));
      const auto msgs = ep.exchange();
      ASSERT_EQ(msgs.size(), 3u);
      EXPECT_EQ(msgs[0].source, peer);
      EXPECT_EQ(msgs[0].tag, 1u);
      EXPECT_TRUE(msgs[0].payload.empty());
      EXPECT_EQ(msgs[1].tag, 2u);
      EXPECT_EQ(msgs[1].payload, odd);
      EXPECT_EQ(msgs[2].tag, 3u);
      ASSERT_EQ(msgs[2].payload.size(), big.size());
      for (std::size_t i = 0; i < big.size(); ++i) {
        ASSERT_EQ(msgs[2].payload[i], static_cast<std::byte>((i * 131 + peer) & 0xFF))
            << "at byte " << i;
      }
    });
  }
}

TEST(SocketTransport, BulkBidirectionalTrafficAcrossSuperstepsDoesNotDeadlock) {
  // 8 MiB each way per superstep -- far beyond any socket buffer, so the
  // exchange loop must interleave reads and writes (a write-only rank
  // would deadlock against a full send buffer).  Two supersteps exercise
  // the one-step-ahead frame stash.
  comm::socket_transport tr(2);
  tr.run([](comm::endpoint& ep) {
    const std::uint32_t peer = 1 - ep.rank();
    std::vector<std::uint64_t> chunk(8192, 0);
    for (std::uint32_t step = 0; step < 2; ++step) {
      for (std::uint32_t i = 0; i < 128; ++i) {
        chunk.assign(chunk.size(), 1'000'000ull * ep.rank() + 1000 * step + i);
        ep.send_span(peer, i, std::span<const std::uint64_t>(chunk));
      }
      const auto msgs = ep.exchange();
      ASSERT_EQ(msgs.size(), 128u);
      for (std::uint32_t i = 0; i < 128; ++i) {
        EXPECT_EQ(msgs[i].tag, i);
        const auto words = msgs[i].as<std::uint64_t>();
        ASSERT_EQ(words.size(), chunk.size());
        EXPECT_EQ(words.front(), 1'000'000ull * peer + 1000 * step + i);
        EXPECT_EQ(words.back(), words.front());
      }
    }
  });
}

TEST(SocketTransport, AggregatorCoalescesSmallSendsOntoFewerFrames) {
  // The tentpole's reason to exist: with aggregation on, a burst of tiny
  // sends to one destination rides a handful of frames; with it off
  // (aggregation_bytes = 0), every send is its own frame.  Same logical
  // messages either way.
  const auto wire_with = [](std::size_t agg_bytes) {
    comm::socket_options sopt;
    sopt.aggregation_bytes = agg_bytes;
    comm::socket_transport tr(4, sopt);
    tr.run([](comm::endpoint& ep) {
      const std::uint64_t x = ep.rank();
      for (std::uint32_t step = 0; step < 2; ++step) {
        for (std::uint32_t i = 0; i < 64; ++i) {
          for (std::uint32_t d = 0; d < ep.size(); ++d) {
            if (d != ep.rank()) ep.send_span(d, i, std::span<const std::uint64_t>(&x, 1));
          }
        }
        (void)ep.exchange();
      }
    });
    return tr.wire();
  };

  const comm::wire_counters on = wire_with(60 * 1024);
  const comm::wire_counters off = wire_with(0);

  // Identical logical traffic: 64 sends x 3 peers x 4 ranks x 2 steps.
  EXPECT_EQ(on.messages, 64u * 3 * 4 * 2);
  EXPECT_EQ(off.messages, on.messages);
  // Aggregated: the whole per-peer burst (64 x 16-byte records = 1 KiB)
  // fits one FIN frame, so all flushes are sync flushes.
  EXPECT_EQ(on.frames, 3u * 4 * 2);
  EXPECT_EQ(on.flushes_size, 0u);
  EXPECT_EQ(on.flushes_sync, on.frames);
  // Frame-per-send: 64 size-cut frames + 1 FIN frame per peer per step.
  EXPECT_EQ(off.frames, (64u + 1) * 3 * 4 * 2);
  EXPECT_EQ(off.flushes_size, 64u * 3 * 4 * 2);
  // The acceptance bar (and then some): >= 4x fewer wire frames.
  EXPECT_GE(off.frames, 4 * on.frames);
  EXPECT_GT(on.wire_bytes, 0u);
  EXPECT_LT(on.wire_bytes, off.wire_bytes);
}

TEST(SocketTransportDeathTest, KilledRankAbortsTheJobLoudly) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // A rank dying mid-superstep must take the whole job down with a
  // diagnostic, not leave the surviving ranks wedged in poll() forever.
  EXPECT_DEATH(
      {
        comm::socket_transport tr(4);
        tr.run([](comm::endpoint& ep) {
          if (ep.rank() == 2) throw std::runtime_error("rank down");
          (void)ep.exchange();
        });
      },
      "uncaught exception on transport rank 2");
}

TEST(TransportDeathTest, BarrierRefusesInFlightMessages) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // barrier() used to silently discard whatever the exchange delivered;
  // now it fails the loud way.
  EXPECT_DEATH(
      {
        comm::loopback_transport tr;
        tr.run([](comm::endpoint& ep) {
          const std::uint64_t x = 1;
          ep.send_span(0, 0, std::span<const std::uint64_t>(&x, 1));
          ep.barrier();
        });
      },
      "crossed in-flight messages");
}

TEST(Transport, MachineAdaptsExplicitTransportWithIdenticalAccounting) {
  // The simulator machine is an adapter: running the same SPMD program
  // over its default transport and over an explicitly injected one must
  // give identical draws, message contents, and resource accounting.
  const auto program = [](cgm::context& ctx) {
    const std::uint64_t token = ctx.rng()();
    ctx.send_value((ctx.id() + 1) % ctx.nprocs(), 5, token);
    ctx.charge(10 + ctx.id());
    ctx.sync();
    const auto msg = ctx.take((ctx.id() + ctx.nprocs() - 1) % ctx.nprocs(), 5);
    ASSERT_TRUE(msg.has_value());
  };

  cgm::machine dflt(4, 808);
  const auto s1 = dflt.run(program);

  comm::threaded_transport tr(4);
  cgm::machine adapted(tr, 808);
  EXPECT_EQ(adapted.nprocs(), 4u);
  EXPECT_EQ(&adapted.transport(), static_cast<comm::transport*>(&tr));
  const auto s2 = adapted.run(program);

  ASSERT_EQ(s1.per_proc.size(), s2.per_proc.size());
  for (std::size_t i = 0; i < s1.per_proc.size(); ++i) {
    EXPECT_EQ(s1.per_proc[i].compute_ops, s2.per_proc[i].compute_ops);
    EXPECT_EQ(s1.per_proc[i].words_sent, s2.per_proc[i].words_sent);
    EXPECT_EQ(s1.per_proc[i].words_received, s2.per_proc[i].words_received);
    EXPECT_EQ(s1.per_proc[i].rng_draws, s2.per_proc[i].rng_draws);
    EXPECT_EQ(s1.per_proc[i].supersteps, s2.per_proc[i].supersteps);
  }
  ASSERT_EQ(s1.supersteps.size(), s2.supersteps.size());
  for (std::size_t s = 0; s < s1.supersteps.size(); ++s) {
    EXPECT_EQ(s1.supersteps[s].max_compute, s2.supersteps[s].max_compute);
    EXPECT_EQ(s1.supersteps[s].max_words_in, s2.supersteps[s].max_words_in);
    EXPECT_EQ(s1.supersteps[s].total_words, s2.supersteps[s].total_words);
  }

  // permute_global over the adapted machine is the same simulator path.
  const auto pi = core::random_permutation_global(adapted, 512);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

// --- rank-count / transport independence of the distributed engine ----------

std::vector<std::uint64_t> shuffled_iota(comm::transport& tr, std::uint64_t n,
                                         std::uint64_t seed,
                                         const cgm::distributed_options& opt) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  cgm::transport_shuffle(tr, std::span<std::uint64_t>(v), seed, opt);
  return v;
}

TEST(DistributedShuffle, IndependentOfRankCountAndTransport) {
  // n far above the (artificially small) leaf so several split levels
  // run; the permutation must not depend on p, on the transport, or on
  // the pool behind it.
  cgm::distributed_options opt;
  opt.engine.fan_out = 8;
  opt.engine.cache_items = 512;
  const std::uint64_t n = 30'000;

  smp::thread_pool pool(4);
  test_support::expect_bit_identical(
      10,
      [&](std::size_t variant) {
        switch (variant) {
          case 0: {
            comm::loopback_transport tr;
            return shuffled_iota(tr, n, 42, opt);
          }
          case 1: {
            comm::threaded_transport tr(1);
            return shuffled_iota(tr, n, 42, opt);
          }
          case 2: {
            comm::threaded_transport tr(2);
            return shuffled_iota(tr, n, 42, opt);
          }
          case 3: {
            comm::threaded_transport tr(4);
            return shuffled_iota(tr, n, 42, opt);
          }
          case 4: {
            comm::threaded_transport tr(8);
            return shuffled_iota(tr, n, 42, opt);
          }
          case 5: {
            comm::threaded_transport tr(4, &pool);
            return shuffled_iota(tr, n, 42, opt);
          }
          // The acceptance grid of ISSUE 7: the engine's output must not
          // change when ranks talk over TCP -- at any rank count or
          // aggregation threshold (framing is pure plumbing).
          case 6: {
            comm::socket_transport tr(1);
            return shuffled_iota(tr, n, 42, opt);
          }
          case 7: {
            comm::socket_transport tr(2);
            return shuffled_iota(tr, n, 42, opt);
          }
          case 8: {
            comm::socket_transport tr(4);
            return shuffled_iota(tr, n, 42, opt);
          }
          default: {
            comm::socket_options sopt;
            sopt.aggregation_bytes = 64;  // force multi-frame reassembly
            comm::socket_transport tr(4, sopt);
            return shuffled_iota(tr, n, 42, opt);
          }
        }
      },
      "distributed shuffle, p in {1,2,4,8} x {loopback,threaded,socket}");
}

TEST(DistributedShuffle, DeepDistributedLevelsStayRankIndependent) {
  // fan_out 2 with 8 ranks forces MULTIPLE distributed split levels
  // (buckets stay multi-rank for ~log2(p) levels) plus the gather path
  // for boundary-straddling small buckets.
  cgm::distributed_options opt;
  opt.engine.fan_out = 2;
  opt.engine.cache_items = 512;
  const std::uint64_t n = 30'000;
  test_support::expect_bit_identical(
      3,
      [&](std::size_t variant) {
        if (variant == 0) {
          comm::loopback_transport tr;
          return shuffled_iota(tr, n, 7, opt);
        }
        comm::threaded_transport tr(variant == 1 ? 8 : 5);  // 5: ragged blocks
        return shuffled_iota(tr, n, 7, opt);
      },
      "deep distributed recursion, p in {1, 8, 5}");
}

TEST(DistributedShuffle, MatchesSmpEngineAboveLeaf) {
  // Above the cache cutoff the distributed engine executes the exact
  // shared-memory law: same plans, same label streams, same leaf
  // engines.  smp::engine output == transport_shuffle output, any p.
  smp::engine_options eopt;
  eopt.fan_out = 8;
  eopt.cache_items = 512;
  eopt.threads = 2;
  smp::engine eng(eopt);

  const std::uint64_t n = 20'000;
  std::vector<std::uint64_t> smp_out(n);
  std::iota(smp_out.begin(), smp_out.end(), 0);
  eng.shuffle(std::span<std::uint64_t>(smp_out), 99);

  cgm::distributed_options dopt;
  dopt.engine = eopt;
  for (const std::uint32_t p : {1u, 4u}) {
    comm::threaded_transport tr(p);
    EXPECT_EQ(shuffled_iota(tr, n, 99, dopt), smp_out) << "p=" << p;
  }
}

// --- backend::cgm through the dispatch layer ---------------------------------

TEST(CgmBackend, MatchesSequentialAtAndBelowLeaf) {
  // At or below the cache cutoff the whole input is one leaf drawn from
  // philox(seed, 0) -- the sequential stream -- so backend::cgm over the
  // default loopback (p = 1) AND over threaded transports is bit-for-bit
  // backend::sequential (the em-with-memory>=n precedent).
  for (const std::uint64_t n : {2ull, 1000ull, 65536ull}) {
    test_support::expect_bit_identical(
        4,
        [&](std::size_t variant) {
          core::backend_options opt;
          opt.seed = 1234;
          switch (variant) {
            case 0:
              opt.which = core::backend::sequential;
              break;
            case 1:
              opt.which = core::backend::cgm;  // parallelism 0 -> loopback
              break;
            case 2:
              opt.which = core::backend::cgm;
              opt.parallelism = 1;
              break;
            default:
              opt.which = core::backend::cgm;
              opt.parallelism = 4;  // still one leaf: still sequential
              break;
          }
          return core::random_permutation(n, opt);
        },
        "backend::cgm == backend::sequential at/below the leaf");
  }
}

TEST(CgmBackend, ExplicitTransportAndRecordTypesDispatch) {
  // 16-byte records through an explicitly injected threaded transport
  // agree with the u64 permutation law (value-independence): gathering
  // iota-tagged records reproduces fill_random_permutation.
  struct rec16 {
    std::uint64_t key;
    std::uint64_t tag;
  };
  comm::threaded_transport tr(4);
  core::backend_options opt;
  opt.which = core::backend::cgm;
  opt.transport = &tr;
  opt.seed = 77;
  opt.cgm_engine.engine.cache_items = 256;  // force distribution at n = 5000

  const std::uint64_t n = 5000;
  std::vector<rec16> recs(n);
  for (std::uint64_t i = 0; i < n; ++i) recs[i] = {i, i ^ 0xABCDull};
  core::permutation_plan plan;
  opt.plan_out = &plan;
  auto shuffled = core::permute(std::move(recs), opt);
  EXPECT_EQ(plan.chosen, core::backend::cgm);
  EXPECT_EQ(plan.threads, 4u);

  core::backend_options fopt = opt;
  fopt.plan_out = nullptr;
  std::vector<std::uint64_t> pi(n);
  core::make_executor(core::resolve_plan(n, 8, fopt), fopt)
      ->fill_random_permutation(std::span<std::uint64_t>(pi), 77);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(shuffled[i].key, pi[i]);
    EXPECT_EQ(shuffled[i].tag, pi[i] ^ 0xABCDull);
  }
}

TEST(CgmBackend, BitIdenticalAcrossTransportsAndRankCounts) {
  // The dispatch-layer face of the acceptance grid: backend::cgm with an
  // injected socket transport draws the same permutation as the threaded
  // transport and the default loopback, at ranks {1, 2, 4}.
  const std::uint64_t n = 5000;
  core::backend_options base;
  base.which = core::backend::cgm;
  base.seed = 77;
  base.cgm_engine.engine.cache_items = 256;  // force distribution

  const auto reference = core::random_permutation(n, base);  // loopback
  for (const std::uint32_t p : {1u, 2u, 4u}) {
    comm::threaded_transport th(p);
    core::backend_options opt = base;
    opt.transport = &th;
    EXPECT_EQ(core::random_permutation(n, opt), reference) << "threaded p=" << p;

    comm::socket_transport so(p);
    opt.transport = &so;
    EXPECT_EQ(core::random_permutation(n, opt), reference) << "socket p=" << p;
  }
}

TEST(CgmBackend, UniformOverS4WithDistributedSplits) {
  // Tiny leaf (2) makes even n = 4 run the full distributed machinery
  // (matrix, label exchange, gathers) on 2 threaded ranks; the composed
  // pipeline must be exactly uniform over S4.
  comm::threaded_transport tr(2);
  cgm::distributed_options opt;
  opt.engine.fan_out = 2;
  opt.engine.cache_items = 2;
  test_support::expect_uniform_over_sk(
      [&](std::span<std::uint64_t> v, int rep) {
        cgm::transport_shuffle(tr, v, 5000 + static_cast<std::uint64_t>(rep), opt);
      },
      4, 3000);
}

TEST(CgmBackend, FixedPointLawOnDistributedRanks) {
  comm::threaded_transport tr(4);
  cgm::distributed_options opt;
  opt.engine.fan_out = 4;
  opt.engine.cache_items = 16;
  test_support::expect_fixed_point_law(
      [&](int rep) {
        std::vector<std::uint64_t> v(300);
        std::iota(v.begin(), v.end(), 0);
        cgm::transport_shuffle(tr, std::span<std::uint64_t>(v),
                               9000 + static_cast<std::uint64_t>(rep), opt);
        return v;
      },
      600);
}

// --- the planner's (p, g, L) cgm candidate -----------------------------------

core::machine_profile scale_out_profile(std::uint32_t ranks) {
  core::machine_profile prof;
  prof.threads = 8;
  prof.cache_items = 65536;
  prof.seq_ns_hit = 2.0;
  prof.seq_ns_miss = 10.0;
  prof.split_ns = 2.0;
  prof.em_ns_per_item_pass = 25.0;
  prof.comm_ranks = ranks;
  prof.comm_g_ns_per_word = 5.0;
  prof.comm_l_ns = 2.0e4;
  return prof;
}

TEST(Planner, CgmInfeasibleWithoutScaleOutProfile) {
  // detect() leaves comm_ranks at 1: the distributed candidate must be
  // listed but never feasible, so single-host plans are unchanged.
  core::workload w;
  w.n = 10'000'000;
  const auto plan = core::plan_permutation(w, scale_out_profile(1));
  EXPECT_NE(plan.chosen, core::backend::cgm);
  bool saw_cgm = false;
  for (const auto& c : plan.candidates) {
    if (c.which == core::backend::cgm) {
      saw_cgm = true;
      EXPECT_FALSE(c.feasible);
    }
  }
  EXPECT_TRUE(saw_cgm);
}

TEST(Planner, BudgetedWorkloadPicksCgmOverEmOnScaleOutProfile) {
  // 200k x 8B = 1.6 MB input under a 1 MB per-rank budget: the
  // RAM-resident candidates are infeasible, and with 8 ranks (each
  // holding ~200 KB x 3 staging) the BSP cost term beats the
  // out-of-core engine's streaming passes.
  core::workload w;
  w.n = 200'000;
  w.element_bytes = 8;
  w.memory_budget_bytes = 1 << 20;
  const auto plan = core::plan_permutation(w, scale_out_profile(8));
  EXPECT_EQ(plan.chosen, core::backend::cgm);
  EXPECT_EQ(plan.threads, 8u);
  for (const auto& c : plan.candidates) {
    if (c.which == core::backend::sequential || c.which == core::backend::smp) {
      EXPECT_FALSE(c.feasible);
    }
  }
  EXPECT_FALSE(plan.explain().empty());
}

TEST(Planner, AutomaticMatchesExplicitCgmBitForBit) {
  core::machine_profile prof = scale_out_profile(8);
  core::backend_options auto_opt;
  auto_opt.which = core::backend::automatic;
  auto_opt.memory_budget_bytes = 1 << 20;
  auto_opt.profile = &prof;
  auto_opt.seed = 31337;
  core::permutation_plan plan;
  auto_opt.plan_out = &plan;
  const auto via_auto = core::random_permutation(200'000, auto_opt);
  ASSERT_EQ(plan.chosen, core::backend::cgm);

  core::backend_options explicit_opt;
  explicit_opt.which = core::backend::cgm;
  explicit_opt.parallelism = plan.threads;
  explicit_opt.seed = 31337;
  EXPECT_EQ(via_auto, core::random_permutation(200'000, explicit_opt));
}

// --- the context facade ------------------------------------------------------

TEST(ContextFacade, ShuffleDrawsAreIndependentAndReproducible) {
  context_options copt;
  copt.which = core::backend::sequential;
  copt.seed = 606;
  cgp::context a(copt);
  std::vector<std::uint64_t> v1(500), v2(500);
  std::iota(v1.begin(), v1.end(), 0);
  std::iota(v2.begin(), v2.end(), 0);
  (void)a.shuffle(std::span<std::uint64_t>(v1));
  (void)a.shuffle(std::span<std::uint64_t>(v2));
  EXPECT_NE(v1, v2);  // draw 0 and draw 1 are independent
  EXPECT_EQ(a.draws(), 2u);

  cgp::context b(copt);  // same base seed: replays call for call
  std::vector<std::uint64_t> w1(500), w2(500);
  std::iota(w1.begin(), w1.end(), 0);
  std::iota(w2.begin(), w2.end(), 0);
  (void)b.shuffle(std::span<std::uint64_t>(w1));
  (void)b.shuffle(std::span<std::uint64_t>(w2));
  EXPECT_EQ(v1, w1);
  EXPECT_EQ(v2, w2);

  // Draw 0 equals the old free-function call with the base seed: the
  // facade is a shim-compatible superset.
  core::backend_options legacy;
  legacy.which = core::backend::sequential;
  legacy.seed = 606;
  EXPECT_EQ(v1, core::random_permutation(500, legacy));

  b.reseed(606);
  std::vector<std::uint64_t> w3(500);
  std::iota(w3.begin(), w3.end(), 0);
  (void)b.shuffle(std::span<std::uint64_t>(w3));
  EXPECT_EQ(v1, w3);
}

TEST(ContextFacade, ExplicitCgmContextUsesTransportRanks) {
  context_options copt;
  copt.which = core::backend::cgm;
  copt.parallelism = 4;
  copt.seed = 2026;
  cgp::context ctx(copt);
  EXPECT_EQ(ctx.transport().size(), 4u);

  const auto plan = ctx.plan_for(100'000, 8);
  EXPECT_EQ(plan.chosen, core::backend::cgm);
  EXPECT_EQ(plan.threads, 4u);

  const auto pi = ctx.random_permutation(100'000);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));

  // Same law as the raw engine over the registry's shared transport.
  cgm::distributed_options dopt;
  std::vector<std::uint64_t> direct(100'000);
  std::iota(direct.begin(), direct.end(), 0);
  cgm::transport_shuffle(core::shared_transport(4), std::span<std::uint64_t>(direct), 2026,
                         dopt);
  EXPECT_EQ(pi, direct);
}

}  // namespace
