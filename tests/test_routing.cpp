// Tests for the permutation-routing module: routing payloads along a given
// distributed permutation, inversion, and composition -- the h-relation
// side of the problem the paper distinguishes itself from in Section 1.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cgm/machine.hpp"
#include "core/driver.hpp"
#include "core/routing.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "stats/lehmer.hpp"
#include "util/prefix.hpp"

namespace {

using namespace cgp;

// Helper: run an SPMD body over blockwise-dealt data and collect results.
template <typename Body>
std::vector<std::uint64_t> run_blockwise(std::uint32_t p, std::uint64_t n, std::uint64_t seed,
                                         Body&& body) {
  cgm::machine mach(p, seed);
  std::vector<std::uint64_t> out(n);
  mach.run([&](cgm::context& ctx) {
    const std::uint64_t off = balanced_block_offset(n, p, ctx.id());
    const std::uint64_t len = balanced_block_size(n, p, ctx.id());
    const auto result = body(ctx, off, len);
    std::copy(result.begin(), result.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
  });
  return out;
}

// A fixed test permutation of size n, from a seeded shuffle.
std::vector<std::uint64_t> some_permutation(std::uint64_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> pi(n);
  std::iota(pi.begin(), pi.end(), 0);
  rng::philox4x64 e(seed, 0);
  seq::fisher_yates(e, std::span<std::uint64_t>(pi));
  return pi;
}

std::vector<std::uint64_t> slice(const std::vector<std::uint64_t>& v, std::uint64_t off,
                                 std::uint64_t len) {
  return {v.begin() + static_cast<std::ptrdiff_t>(off),
          v.begin() + static_cast<std::ptrdiff_t>(off + len)};
}

TEST(Routing, RouteMatchesSequentialApplication) {
  const std::uint64_t n = 101;
  for (const std::uint32_t p : {1u, 2u, 3u, 8u}) {
    const auto pi = some_permutation(n, 50 + p);
    // data[g] = g + 1000; after routing, out[pi[g]] = data[g].
    const auto routed = run_blockwise(p, n, 60 + p, [&](cgm::context& ctx, std::uint64_t off,
                                                        std::uint64_t len) {
      std::vector<std::uint64_t> data(len);
      for (std::uint64_t i = 0; i < len; ++i) data[i] = off + i + 1000;
      return core::route_by_permutation(ctx, data, slice(pi, off, len));
    });
    for (std::uint64_t g = 0; g < n; ++g) EXPECT_EQ(routed[pi[g]], g + 1000) << "p=" << p;
  }
}

TEST(Routing, IdentityPermutationIsNoOp) {
  const std::uint64_t n = 64;
  std::vector<std::uint64_t> ident(n);
  std::iota(ident.begin(), ident.end(), 0);
  const auto routed =
      run_blockwise(4, n, 70, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        std::vector<std::uint64_t> data(len);
        for (std::uint64_t i = 0; i < len; ++i) data[i] = off + i;
        return core::route_by_permutation(ctx, data, slice(ident, off, len));
      });
  EXPECT_EQ(routed, ident);
}

TEST(Routing, InverseIsCorrect) {
  const std::uint64_t n = 97;
  for (const std::uint32_t p : {1u, 2u, 5u}) {
    const auto pi = some_permutation(n, 80 + p);
    const auto inv = run_blockwise(
        p, n, 90 + p, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
          return core::invert_permutation(ctx, slice(pi, off, len));
        });
    for (std::uint64_t g = 0; g < n; ++g) EXPECT_EQ(inv[pi[g]], g);
    EXPECT_TRUE(stats::is_permutation_of_iota(inv));
  }
}

TEST(Routing, DoubleInverseIsIdentity) {
  const std::uint64_t n = 60;
  const auto pi = some_permutation(n, 100);
  const auto inv =
      run_blockwise(4, n, 101, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        return core::invert_permutation(ctx, slice(pi, off, len));
      });
  const auto inv2 =
      run_blockwise(4, n, 102, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        return core::invert_permutation(ctx, slice(inv, off, len));
      });
  EXPECT_EQ(inv2, pi);
}

TEST(Routing, ComposeMatchesSequentialComposition) {
  const std::uint64_t n = 73;
  const auto pi = some_permutation(n, 110);
  const auto sigma = some_permutation(n, 111);
  const auto composed =
      run_blockwise(4, n, 112, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        return core::compose_permutations(ctx, slice(pi, off, len), slice(sigma, off, len));
      });
  for (std::uint64_t g = 0; g < n; ++g) EXPECT_EQ(composed[g], sigma[pi[g]]);
  EXPECT_TRUE(stats::is_permutation_of_iota(composed));
}

TEST(Routing, ComposeWithInverseGivesIdentity) {
  const std::uint64_t n = 88;
  const auto pi = some_permutation(n, 120);
  const auto inv =
      run_blockwise(4, n, 121, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        return core::invert_permutation(ctx, slice(pi, off, len));
      });
  const auto composed =
      run_blockwise(4, n, 122, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        return core::compose_permutations(ctx, slice(pi, off, len), slice(inv, off, len));
      });
  for (std::uint64_t g = 0; g < n; ++g) EXPECT_EQ(composed[g], g);
}

TEST(Routing, GenerateThenRouteEqualsPermuteGlobal) {
  // The composition the module exists for: generate pi with the paper's
  // pipeline, route payloads along it -- payload order must realize pi.
  const std::uint64_t n = 128;
  const std::uint32_t p = 4;
  cgm::machine mach(p, 130);
  const auto pi = core::random_permutation_global(mach, n);
  const auto routed =
      run_blockwise(p, n, 131, [&](cgm::context& ctx, std::uint64_t off, std::uint64_t len) {
        std::vector<std::uint64_t> payload(len);
        for (std::uint64_t i = 0; i < len; ++i) payload[i] = (off + i) * 3 + 7;
        return core::route_by_permutation(ctx, payload, slice(pi, off, len));
      });
  for (std::uint64_t g = 0; g < n; ++g) EXPECT_EQ(routed[pi[g]], g * 3 + 7);
}

TEST(Routing, HRelationEqualsMatrixOfPermutation) {
  // The routing superstep's communication volume is the a-posteriori
  // communication matrix of pi (Section 2) -- cross-check total words
  // against the off-diagonal mass of that matrix.
  const std::uint64_t n = 120;
  const std::uint32_t p = 4;
  const auto pi = some_permutation(n, 140);
  cgm::machine mach(p, 141);
  const auto stats = mach.run([&](cgm::context& ctx) {
    const std::uint64_t off = balanced_block_offset(n, p, ctx.id());
    const std::uint64_t len = balanced_block_size(n, p, ctx.id());
    std::vector<std::uint64_t> data(len, ctx.id());
    (void)core::route_by_permutation(ctx, data, slice(pi, off, len));
  });
  const auto margins = balanced_blocks(n, p);
  const auto mat = core::matrix_of_permutation(pi, margins, margins);
  // Each routed item is a 2-word (pos, value) record; layout exchange adds
  // 1 word per proc pair in the all_gather.
  const std::uint64_t routed_words = stats.total_words() - p * p;
  EXPECT_EQ(routed_words, 2 * mat.total());
}

}  // namespace
