// Parameterized option sweeps: every tuning knob of the shuffles, the
// matrix samplers, and the EM geometry must preserve the invariants
// (validity, conservation, uniform shape) at every setting -- the
// "configuration space is safe" guarantee a downstream user relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "core/sample_matrix.hpp"
#include "em/shuffle.hpp"
#include "hyp/sample.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "seq/blocked_shuffle.hpp"
#include "seq/rao_sandelius.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"

namespace {

using namespace cgp;
using engine_t = rng::philox4x64;

// --- blocked shuffle option grid ----------------------------------------------------

class BlockedOptions
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*fan*/, std::size_t /*cache*/>> {
};

TEST_P(BlockedOptions, ValidAndUniformCorner) {
  const auto [fan, cache] = GetParam();
  seq::blocked_options opt;
  opt.fan_out = fan;
  opt.cache_items = cache;
  engine_t e(0x0B10 + fan, cache);

  // Validity at a non-trivial size.
  std::vector<std::uint64_t> v(1000);
  std::iota(v.begin(), v.end(), 0);
  seq::blocked_shuffle(e, std::span<std::uint64_t>(v), opt);
  ASSERT_TRUE(stats::is_permutation_of_iota(v));

  // Uniform shape on a small case: position of item 0 among 12.
  std::vector<std::uint64_t> counts(12, 0);
  std::vector<std::uint64_t> w(12);
  for (int rep = 0; rep < 6000; ++rep) {
    std::iota(w.begin(), w.end(), 0);
    seq::blocked_shuffle(e, std::span<std::uint64_t>(w), opt);
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] == 0) {
        ++counts[i];
        break;
      }
    }
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, BlockedOptions,
                         ::testing::Combine(::testing::Values(2u, 3u, 8u, 16u),
                                            ::testing::Values(std::size_t{2}, std::size_t{16},
                                                              std::size_t{256})),
                         [](const auto& pinfo) {
                           return "fan" + std::to_string(std::get<0>(pinfo.param)) + "_cache" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

// --- Rao-Sandelius option grid ------------------------------------------------------

class RsOptions
    : public ::testing::TestWithParam<std::tuple<unsigned /*bits*/, std::size_t /*cache*/>> {};

TEST_P(RsOptions, ValidAndUniformCorner) {
  const auto [bits, cache] = GetParam();
  seq::rs_options opt;
  opt.log2_fan_out = bits;
  opt.cache_items = cache;
  engine_t e(0x0C10 + bits, cache);

  std::vector<std::uint64_t> v(1000);
  std::iota(v.begin(), v.end(), 0);
  seq::rs_shuffle(e, std::span<std::uint64_t>(v), opt);
  ASSERT_TRUE(stats::is_permutation_of_iota(v));

  std::vector<std::uint64_t> counts(12, 0);
  std::vector<std::uint64_t> w(12);
  for (int rep = 0; rep < 6000; ++rep) {
    std::iota(w.begin(), w.end(), 0);
    seq::rs_shuffle(e, std::span<std::uint64_t>(w), opt);
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] == 0) {
        ++counts[i];
        break;
      }
    }
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, RsOptions,
                         ::testing::Combine(::testing::Values(1u, 3u, 6u),
                                            ::testing::Values(std::size_t{2}, std::size_t{64},
                                                              std::size_t{512})),
                         [](const auto& pinfo) {
                           return "bits" + std::to_string(std::get<0>(pinfo.param)) + "_cache" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

// --- matrix sampler policy grid -----------------------------------------------------

class MatrixPolicy : public ::testing::TestWithParam<std::tuple<int /*method*/, double /*thr*/>> {
};

TEST_P(MatrixPolicy, ConservationUnderEveryPolicy) {
  const auto [method_idx, threshold] = GetParam();
  core::matrix_options opt;
  opt.pol.how = static_cast<hyp::method>(method_idx);
  opt.pol.hin_sd_threshold = threshold;
  rng::counting_engine<engine_t> e{engine_t(0x0D10 + method_idx, 0)};

  const std::vector<std::uint64_t> rm{100, 50, 25, 25};
  const std::vector<std::uint64_t> cm{40, 60, 70, 30};
  for (int rep = 0; rep < 50; ++rep) {
    const auto a = core::sample_matrix_rowwise(e, rm, cm, opt);
    ASSERT_TRUE(a.satisfies_margins(rm, cm));
    const auto b = core::sample_matrix_recursive(e, rm, cm, opt);
    ASSERT_TRUE(b.satisfies_margins(rm, cm));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MatrixPolicy,
                         ::testing::Combine(::testing::Values(0, 1, 2),  // auto, hin, hrua
                                            ::testing::Values(0.0, 48.0, 1e9)),
                         [](const auto& pinfo) {
                           const int m = std::get<0>(pinfo.param);
                           const std::string name = m == 0 ? "auto" : (m == 1 ? "hin" : "hrua");
                           return name + "_thr" +
                                  std::to_string(static_cast<int>(std::get<1>(pinfo.param)));
                         });

// --- EM geometry grid ----------------------------------------------------------------

class EmGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*B*/, std::uint64_t /*M_blocks*/>> {
};

TEST_P(EmGeometry, ShufflePreservesMultisetAtEveryGeometry) {
  const auto [b, m_blocks] = GetParam();
  const std::uint64_t mem = static_cast<std::uint64_t>(b) * m_blocks;
  engine_t e(0x0E10 + b, m_blocks);
  const std::uint64_t n = 997;  // deliberately not a multiple of anything
  em::block_device dev(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  const auto rep = em::em_shuffle(e, dev, n, mem);
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = dev.peek(i);
  EXPECT_TRUE(stats::is_permutation_of_iota(out))
      << "B=" << b << " M=" << mem << " levels=" << rep.levels;
}

INSTANTIATE_TEST_SUITE_P(Grid, EmGeometry,
                         ::testing::Combine(::testing::Values(2u, 8u, 32u),
                                            ::testing::Values(std::uint64_t{4}, std::uint64_t{8},
                                                              std::uint64_t{32})),
                         [](const auto& pinfo) {
                           return "B" + std::to_string(std::get<0>(pinfo.param)) + "_Mblk" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

}  // namespace
