// Statistical validation of the sequential matrix samplers (Algorithms 3
// and 4): conservation laws for arbitrary margins, the exact joint law over
// all matrices for small cases, marginal entry laws (Proposition 3), the
// block-merge self-similarity (Proposition 4), and cross-validation against
// the a-posteriori matrices of genuinely uniform permutations.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/sample_matrix.hpp"
#include "hyp/pmf.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "stats/chisq.hpp"

namespace {

using namespace cgp;
using core::comm_matrix;
using core::matrix_options;
using core::split_rule;

using engine_t = rng::counting_engine<rng::philox4x64>;

// All four sampler configurations under test.
struct config {
  bool rowwise;
  split_rule split;
  bool recursive_rows;
  const char* label;
};

comm_matrix run_sampler(engine_t& e, const config& cfg, std::span<const std::uint64_t> rm,
                        std::span<const std::uint64_t> cm) {
  matrix_options opt;
  opt.split = cfg.split;
  opt.recursive_rows = cfg.recursive_rows;
  return cfg.rowwise ? core::sample_matrix_rowwise(e, rm, cm, opt)
                     : core::sample_matrix_recursive(e, rm, cm, opt);
}

class SamplerConfigs : public ::testing::TestWithParam<config> {};

TEST_P(SamplerConfigs, MarginsHoldForArbitraryShapes) {
  engine_t e{rng::philox4x64(5000, 0)};
  const std::vector<std::vector<std::uint64_t>> row_cases{
      {10}, {5, 5}, {1, 2, 3, 4}, {100, 1, 1, 100}, {7, 7, 7, 7, 7, 7, 7, 7}};
  for (const auto& rm : row_cases) {
    // Column margins: same total, different split.
    const std::uint64_t n = std::accumulate(rm.begin(), rm.end(), std::uint64_t{0});
    std::vector<std::uint64_t> cm{n / 2, n - n / 2};
    const auto a = run_sampler(e, GetParam(), rm, cm);
    EXPECT_TRUE(a.satisfies_margins(rm, cm));
    // Rectangular the other way.
    std::vector<std::uint64_t> cm3(3, n / 3);
    cm3[0] += n % 3;
    const auto b = run_sampler(e, GetParam(), rm, cm3);
    EXPECT_TRUE(b.satisfies_margins(rm, cm3));
  }
}

TEST_P(SamplerConfigs, EntryLawMatchesProposition3) {
  engine_t e{rng::philox4x64(5001, 1)};
  const std::vector<std::uint64_t> rm{6, 10};
  const std::vector<std::uint64_t> cm{8, 8};
  const hyp::params law{cm[1], rm[1], 6};  // a_11 ~ h(m'_1, m_1, n - m_1)
  const auto probs = hyp::pmf_table(law);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  for (int rep = 0; rep < 30000; ++rep) {
    const auto a = run_sampler(e, GetParam(), rm, cm);
    ++counts[a(1, 1) - hyp::support_min(law)];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label << " chi2=" << res.statistic;
}

TEST_P(SamplerConfigs, JointLawMatchesExactDistribution3x3) {
  // margins rows (2,2,2) cols (2,2,2): enumerate all feasible matrices,
  // chi-square sampled matrices against exp(log_probability).
  engine_t e{rng::philox4x64(5002, 2)};
  const std::vector<std::uint64_t> rm{2, 2, 2};
  const std::vector<std::uint64_t> cm{2, 2, 2};

  std::map<std::array<std::uint64_t, 9>, std::size_t> index;
  std::vector<double> probs;
  for (std::uint64_t a00 = 0; a00 <= 2; ++a00)
    for (std::uint64_t a01 = 0; a01 + a00 <= 2; ++a01)
      for (std::uint64_t a10 = 0; a10 + a00 <= 2; ++a10)
        for (std::uint64_t a11 = 0; a11 + a10 <= 2 && a11 + a01 <= 2; ++a11) {
          const std::uint64_t a02 = 2 - a00 - a01;
          const std::uint64_t a12 = 2 - a10 - a11;
          const std::uint64_t a20 = 2 - a00 - a10;
          const std::uint64_t a21 = 2 - a01 - a11;
          if (a02 + a12 > 2 || a20 + a21 > 2) continue;
          const std::uint64_t a22 = 2 - a20 - a21;
          if (a02 + a12 + a22 != 2) continue;
          comm_matrix m(3, 3);
          m(0, 0) = a00; m(0, 1) = a01; m(0, 2) = a02;
          m(1, 0) = a10; m(1, 1) = a11; m(1, 2) = a12;
          m(2, 0) = a20; m(2, 1) = a21; m(2, 2) = a22;
          index[{a00, a01, a02, a10, a11, a12, a20, a21, a22}] = probs.size();
          probs.push_back(std::exp(m.log_probability()));
        }
  double total = 0.0;
  for (const double p : probs) total += p;
  ASSERT_NEAR(total, 1.0, 1e-10);

  std::vector<std::uint64_t> counts(probs.size(), 0);
  for (int rep = 0; rep < 40000; ++rep) {
    const auto a = run_sampler(e, GetParam(), rm, cm);
    std::array<std::uint64_t, 9> key{};
    for (std::uint32_t i = 0; i < 3; ++i)
      for (std::uint32_t j = 0; j < 3; ++j) key[i * 3 + j] = a(i, j);
    const auto it = index.find(key);
    ASSERT_NE(it, index.end());
    ++counts[it->second];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label << " chi2=" << res.statistic;
}

TEST_P(SamplerConfigs, MergedMatrixFollowsCoarseLaw) {
  // Proposition 4: merge a sampled 4x4 into 2x2; the merged a_00 must be
  // h(merged col margin, merged row margin, rest).
  engine_t e{rng::philox4x64(5003, 3)};
  const std::vector<std::uint64_t> rm{3, 3, 3, 3};
  const std::vector<std::uint64_t> cm{3, 3, 3, 3};
  const std::vector<std::uint32_t> bounds{0, 2, 4};
  const hyp::params law{6, 6, 6};  // t = merged m'_0, w = merged m_0, b = 6
  const auto probs = hyp::pmf_table(law);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  for (int rep = 0; rep < 30000; ++rep) {
    const auto a = run_sampler(e, GetParam(), rm, cm);
    const auto m = a.merge(bounds, bounds);
    ++counts[m(0, 0) - hyp::support_min(law)];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SamplerConfigs,
    ::testing::Values(config{true, split_rule::balanced, true, "rowwise_recursive"},
                      config{true, split_rule::balanced, false, "rowwise_chain"},
                      config{false, split_rule::balanced, true, "recmat_balanced"},
                      config{false, split_rule::chain, true, "recmat_chain"}),
    [](const auto& pinfo) { return pinfo.param.label; });

// --- cross-validation against real permutations -------------------------------

TEST(CrossValidation, SampledMatricesMatchPermutationInducedMatrices) {
  // Draw matrices two ways: (a) Algorithm 3, (b) a posteriori from
  // Fisher-Yates permutations.  Chi-square *both* against the closed-form
  // law -- if either deviates, its test fails independently.
  const std::vector<std::uint64_t> rm{4, 4, 4};
  const std::vector<std::uint64_t> cm{4, 4, 4};
  const hyp::params law{4, 4, 8};
  const auto probs = hyp::pmf_table(law);

  engine_t e1{rng::philox4x64(5004, 4)};
  std::vector<std::uint64_t> counts_alg(probs.size(), 0);
  for (int rep = 0; rep < 25000; ++rep) {
    const auto a = core::sample_matrix_rowwise(e1, rm, cm);
    ++counts_alg[a(0, 0)];
  }
  EXPECT_GT(stats::chi_square_gof(counts_alg, probs).p_value, 1e-9);

  rng::philox4x64 e2(5005, 5);
  std::vector<std::uint64_t> counts_perm(probs.size(), 0);
  std::vector<std::uint64_t> perm(12);
  for (int rep = 0; rep < 25000; ++rep) {
    std::iota(perm.begin(), perm.end(), 0);
    seq::fisher_yates(e2, std::span<std::uint64_t>(perm));
    const auto a = core::matrix_of_permutation(perm, rm, cm);
    ++counts_perm[a(0, 0)];
  }
  EXPECT_GT(stats::chi_square_gof(counts_perm, probs).p_value, 1e-9);
}

// --- resource accounting -------------------------------------------------------

TEST(Cost, HypCallCountFormula) {
  EXPECT_EQ(core::matrix_hyp_call_count(2, 2), 1u);
  EXPECT_EQ(core::matrix_hyp_call_count(4, 4), 9u);
  EXPECT_EQ(core::matrix_hyp_call_count(48, 48), 47u * 47u);
}

TEST(Cost, DrawBudgetIsQuadraticInP) {
  // O(p^2) random numbers for a p x p matrix (Theorem 2's linear-cost claim
  // counts p^2 as the input size).  Verify draws <= c * p^2 over a sweep.
  for (const std::uint32_t p : {4u, 8u, 16u, 32u}) {
    engine_t e{rng::philox4x64(5006, p)};
    const std::vector<std::uint64_t> margins(p, 64);
    e.reset_count();
    (void)core::sample_matrix_recursive(e, margins, margins);
    EXPECT_LE(e.count(), 10ull * p * p) << "p=" << p;
  }
}

TEST(Degenerate, SingleRowAndSingleColumn) {
  engine_t e{rng::philox4x64(5007, 6)};
  // Single row: the matrix *is* the column margins.
  const std::vector<std::uint64_t> one_row{10};
  const std::vector<std::uint64_t> cm{3, 3, 4};
  const auto a = core::sample_matrix_rowwise(e, one_row, cm);
  EXPECT_EQ(a.row(0)[0], 3u);
  EXPECT_EQ(a.row(0)[2], 4u);
  // Single column: the matrix is the row margins.
  const std::vector<std::uint64_t> rm{2, 8};
  const std::vector<std::uint64_t> one_col{10};
  const auto b = core::sample_matrix_recursive(e, rm, one_col);
  EXPECT_EQ(b(0, 0), 2u);
  EXPECT_EQ(b(1, 0), 8u);
}

TEST(Degenerate, ZeroMarginsProduceZeroRows) {
  engine_t e{rng::philox4x64(5008, 7)};
  const std::vector<std::uint64_t> rm{0, 10, 0};
  const std::vector<std::uint64_t> cm{5, 0, 5};
  const auto a = core::sample_matrix_rowwise(e, rm, cm);
  EXPECT_TRUE(a.satisfies_margins(rm, cm));
  EXPECT_EQ(a(0, 0), 0u);
  EXPECT_EQ(a(1, 1), 0u);
  EXPECT_EQ(a(2, 2), 0u);
}

}  // namespace
