// Statistical validation of the hypergeometric samplers: every sampler is
// chi-squared against the exact pmf over a grid of parameter regimes
// (small/large draws, skewed colors, near-degenerate cases), moments are
// checked in regimes too large for exact tables, and the random-number
// budget of Section 3 ("< 1.5 on average, 10 worst case") is asserted.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "hyp/alias.hpp"
#include "hyp/hin.hpp"
#include "hyp/hrua.hpp"
#include "hyp/pmf.hpp"
#include "hyp/sample.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "stats/chisq.hpp"
#include "stats/moments.hpp"

namespace {

using namespace cgp;
using hyp::params;

using engine_t = rng::counting_engine<rng::philox4x64>;

enum class which { hin, hrua, dispatcher };

std::uint64_t draw(engine_t& e, const params& p, which w) {
  switch (w) {
    case which::hin:
      return hyp::sample_hin(e, p);
    case which::hrua:
      return hyp::sample_hrua(e, p);
    case which::dispatcher:
    default:
      return hyp::sample(e, p);
  }
}

// Chi-square one sampler against the exact pmf.
stats::gof_result gof_of(const params& p, which w, int samples, std::uint64_t seed) {
  engine_t e{rng::philox4x64(seed, 77)};
  const std::uint64_t lo = hyp::support_min(p);
  const auto probs = hyp::pmf_table(p);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t k = draw(e, p, w);
    EXPECT_GE(k, lo);
    EXPECT_LE(k, hyp::support_max(p));
    ++counts[k - lo];
  }
  return stats::chi_square_gof(counts, probs);
}

struct sampler_case {
  params p;
  const char* label;
};

class SamplerGrid : public ::testing::TestWithParam<sampler_case> {};

TEST_P(SamplerGrid, HinMatchesExactPmf) {
  const auto res = gof_of(GetParam().p, which::hin, 40000, 1001);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label << " chi2=" << res.statistic;
}

TEST_P(SamplerGrid, HruaMatchesExactPmf) {
  const auto& p = GetParam().p;
  if (hyp::degenerate(p)) GTEST_SKIP() << "HRUA requires a non-degenerate law";
  const auto res = gof_of(p, which::hrua, 40000, 1002);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label << " chi2=" << res.statistic;
}

TEST_P(SamplerGrid, DispatcherMatchesExactPmf) {
  const auto res = gof_of(GetParam().p, which::dispatcher, 40000, 1003);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label << " chi2=" << res.statistic;
}

TEST_P(SamplerGrid, AliasTableMatchesExactPmf) {
  const auto& p = GetParam().p;
  engine_t e{rng::philox4x64(1004, 78)};
  const auto table = hyp::alias_table::for_hypergeometric(p);
  const auto probs = hyp::pmf_table(p);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  const std::uint64_t lo = hyp::support_min(p);
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t k = table(e);
    ASSERT_GE(k, lo);
    ASSERT_LE(k, hyp::support_max(p));
    ++counts[k - lo];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SamplerGrid,
    ::testing::Values(
        sampler_case{{2, 3, 2}, "tiny"},                 //
        sampler_case{{5, 10, 10}, "small_balanced"},     //
        sampler_case{{1, 50, 50}, "single_draw"},        //
        sampler_case{{30, 40, 50}, "moderate"},          //
        sampler_case{{99, 50, 50}, "near_total_draw"},   //
        sampler_case{{50, 3, 200}, "few_whites"},        //
        sampler_case{{50, 200, 3}, "few_blacks"},        //
        sampler_case{{200, 1000, 1000}, "large_even"},   //
        sampler_case{{500, 300, 900}, "large_skewed"},   //
        sampler_case{{1000, 2000, 2000}, "sd_above_hin_threshold"}),
    [](const auto& pinfo) { return pinfo.param.label; });

// --- draw-count budget (paper Section 3 / experiment E3) --------------------

TEST(DrawBudget, HinUsesExactlyOneDrawPerSample) {
  engine_t e{rng::philox4x64(55, 0)};
  const params p{30, 40, 50};
  for (int i = 0; i < 1000; ++i) {
    e.reset_count();
    (void)hyp::sample_hin(e, p);
    EXPECT_EQ(e.count(), 1u);
  }
}

TEST(DrawBudget, HruaMeetsThePaperBudget) {
  // One 64-bit word per rejection iteration: the paper's Section 3 figures
  // ("< 1.5 average, 10 worst case") must hold for HRUA directly.
  engine_t e{rng::philox4x64(56, 0)};
  stats::running_moments m;
  for (const auto& p : {params{200, 1000, 1000}, params{5000, 20000, 30000},
                        params{100000, 300000, 500000}}) {
    for (int i = 0; i < 5000; ++i) {
      e.reset_count();
      (void)hyp::sample_hrua(e, p);
      m.add(static_cast<double>(e.count()));
    }
  }
  EXPECT_LT(m.mean(), 1.5);    // ~1.3 expected (1 word per iteration)
  EXPECT_LE(m.max(), 10.0);    // tail of the rejection loop
}

TEST(DrawBudget, DispatcherMeetsPaperBudgetInMatrixRegime) {
  // The regime Algorithm 3/6 actually produce: t, w, b from block splits.
  // The paper reports < 1.5 random numbers on average and <= 10 worst case.
  engine_t e{rng::philox4x64(57, 0)};
  stats::running_moments m;
  for (const auto& p : {params{64, 64, 1984}, params{512, 512, 15872}, params{32, 1024, 1024},
                        params{1024, 32, 2048}, params{100, 100, 100}}) {
    for (int i = 0; i < 5000; ++i) {
      e.reset_count();
      (void)hyp::sample(e, p);
      m.add(static_cast<double>(e.count()));
    }
  }
  EXPECT_LT(m.mean(), 1.5) << "average draws per h(.,.) call";
  EXPECT_LE(m.max(), 10.0) << "worst-case draws per h(.,.) call";
}

TEST(DrawBudget, DegenerateUsesZeroDraws) {
  engine_t e{rng::philox4x64(58, 0)};
  (void)hyp::sample(e, params{0, 10, 10});
  (void)hyp::sample(e, params{20, 10, 10});
  (void)hyp::sample(e, params{5, 0, 10});
  (void)hyp::sample(e, params{5, 10, 0});
  EXPECT_EQ(e.count(), 0u);
}

// --- moments in table-free regimes ------------------------------------------

TEST(LargeRegime, MomentsMatchTheoryAtMillions) {
  // Too large for exact chi-square tables; check mean and variance with a
  // z-test at 6 sigma (fixed seed => deterministic).
  const params p{1'000'000, 1'000'000, 47'000'000};
  engine_t e{rng::philox4x64(60, 0)};
  stats::running_moments m;
  for (int i = 0; i < 20000; ++i) m.add(static_cast<double>(hyp::sample(e, p)));
  EXPECT_LT(std::fabs(m.z_against(hyp::mean(p))), 6.0);
  const double v_ratio = m.variance() / hyp::variance(p);
  EXPECT_GT(v_ratio, 0.94);
  EXPECT_LT(v_ratio, 1.06);
}

TEST(LargeRegime, HruaAndHinAgreeInOverlapRegime) {
  // Same distribution from both samplers in a regime both handle: compare
  // their empirical means against each other at 6 sigma.
  const params p{2000, 4000, 6000};
  engine_t e1{rng::philox4x64(61, 0)};
  engine_t e2{rng::philox4x64(62, 0)};
  stats::running_moments m1;
  stats::running_moments m2;
  for (int i = 0; i < 30000; ++i) {
    m1.add(static_cast<double>(hyp::sample_hin(e1, p)));
    m2.add(static_cast<double>(hyp::sample_hrua(e2, p)));
  }
  const double pooled_se = std::sqrt(m1.sem() * m1.sem() + m2.sem() * m2.sem());
  EXPECT_LT(std::fabs(m1.mean() - m2.mean()) / pooled_se, 6.0);
}

// --- policy plumbing ---------------------------------------------------------

TEST(Policy, ForcedMethodsAreHonored) {
  // HIN uses exactly 1 draw per sample, always.  HRUA uses 1 word per
  // iteration, so over many samples its total exceeds the sample count
  // (rejections happen) while HIN's equals it exactly.
  engine_t e{rng::philox4x64(63, 0)};
  const params p{1000, 2000, 2000};
  hyp::policy pol;
  pol.how = hyp::method::hin;
  e.reset_count();
  for (int i = 0; i < 500; ++i) (void)hyp::sample(e, p, pol);
  EXPECT_EQ(e.count(), 500u);
  pol.how = hyp::method::hrua;
  e.reset_count();
  for (int i = 0; i < 500; ++i) (void)hyp::sample(e, p, pol);
  EXPECT_GT(e.count(), 500u);
}

TEST(Policy, ThresholdSwitchesSampler) {
  const params p{1000, 2000, 2000};
  const double sd = std::sqrt(hyp::variance(p));
  engine_t e{rng::philox4x64(64, 0)};
  hyp::policy pol;
  pol.hin_sd_threshold = sd + 1.0;  // HIN side: exactly 1 draw each
  e.reset_count();
  for (int i = 0; i < 500; ++i) (void)hyp::sample(e, p, pol);
  EXPECT_EQ(e.count(), 500u);
  pol.hin_sd_threshold = sd - 1.0;  // HRUA side: rejections add draws
  e.reset_count();
  for (int i = 0; i < 500; ++i) (void)hyp::sample(e, p, pol);
  EXPECT_GT(e.count(), 500u);
}

TEST(AliasTable, DegenerateSinglePoint) {
  const params p{4, 4, 0};  // forced: all whites drawn
  const auto table = hyp::alias_table::for_hypergeometric(p);
  engine_t e{rng::philox4x64(65, 0)};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table(e), 4u);
}

TEST(AliasTable, GenericWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const hyp::alias_table t(w, 100);
  engine_t e{rng::philox4x64(66, 0)};
  std::vector<std::uint64_t> counts(4, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = t(e);
    ASSERT_GE(v, 100u);
    ASSERT_LT(v, 104u);
    ++counts[v - 100];
  }
  const auto res = stats::chi_square_gof(counts, w);
  EXPECT_GT(res.p_value, 1e-9);
}

}  // namespace
