// Unit tests for the util substrate: prefix sums, balanced block
// decomposition, the 2-D span, the JSON writer's string escaping, and the
// bench table printer.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/prefix.hpp"
#include "util/span2d.hpp"
#include "util/table.hpp"

namespace {

using namespace cgp;

// Minimal JSON string unescaper -- the inverse of json_escape, used only
// here to round-trip (the library itself never parses JSON).
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        const unsigned v = static_cast<unsigned>(std::stoul(s.substr(i + 1, 4), nullptr, 16));
        out += static_cast<char>(v);
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "unknown escape \\" << s[i];
    }
  }
  return out;
}

TEST(Prefix, ExclusiveBasic) {
  const std::vector<std::uint64_t> in{3, 1, 4, 1, 5};
  std::vector<std::uint64_t> out(in.size());
  const auto total = exclusive_prefix_sum(in, out);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Prefix, ExclusiveAliasing) {
  std::vector<std::uint64_t> v{2, 2, 2};
  const auto total = exclusive_prefix_sum(v, v);
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 2, 4}));
}

TEST(Prefix, InclusiveBasic) {
  const std::vector<std::uint64_t> in{3, 1, 4};
  std::vector<std::uint64_t> out(in.size());
  const auto total = inclusive_prefix_sum(in, out);
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{3, 4, 8}));
}

TEST(Prefix, EmptySpans) {
  std::vector<std::uint64_t> empty;
  EXPECT_EQ(exclusive_prefix_sum(empty, empty), 0u);
  EXPECT_EQ(span_sum(empty), 0u);
}

TEST(BalancedBlocks, ExactDivision) {
  const auto blocks = balanced_blocks(12, 4);
  EXPECT_EQ(blocks, (std::vector<std::uint64_t>{3, 3, 3, 3}));
}

TEST(BalancedBlocks, Remainder) {
  const auto blocks = balanced_blocks(14, 4);
  EXPECT_EQ(blocks, (std::vector<std::uint64_t>{4, 4, 3, 3}));
  EXPECT_EQ(span_sum(blocks), 14u);
}

TEST(BalancedBlocks, MorepartsThanItems) {
  const auto blocks = balanced_blocks(2, 5);
  EXPECT_EQ(span_sum(blocks), 2u);
  EXPECT_EQ(blocks[0], 1u);
  EXPECT_EQ(blocks[1], 1u);
  EXPECT_EQ(blocks[2], 0u);
}

TEST(BalancedBlocks, OffsetsMatchSizes) {
  for (const std::uint64_t n : {0ull, 1ull, 7ull, 97ull, 1000ull}) {
    for (const std::uint32_t p : {1u, 2u, 3u, 7u, 16u}) {
      const auto sizes = balanced_blocks(n, p);
      std::uint64_t off = 0;
      for (std::uint32_t i = 0; i < p; ++i) {
        EXPECT_EQ(balanced_block_offset(n, p, i), off) << "n=" << n << " p=" << p << " i=" << i;
        EXPECT_EQ(balanced_block_size(n, p, i), sizes[i]);
        off += sizes[i];
      }
      EXPECT_EQ(off, n);
    }
  }
}

TEST(BalancedBlocks, OwnerInverse) {
  const std::uint64_t n = 101;
  const std::uint32_t p = 7;
  for (std::uint64_t g = 0; g < n; ++g) {
    const std::uint32_t owner = balanced_block_owner(n, p, g);
    EXPECT_LE(balanced_block_offset(n, p, owner), g);
    EXPECT_LT(g, balanced_block_offset(n, p, owner) + balanced_block_size(n, p, owner));
  }
}

TEST(Span2d, IndexingAndRows) {
  std::vector<int> buf(12, 0);
  span2d<int> v(buf.data(), 3, 4);
  v(1, 2) = 42;
  EXPECT_EQ(buf[6], 42);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  auto row1 = v.row(1);
  EXPECT_EQ(row1.size(), 4u);
  EXPECT_EQ(row1[2], 42);
  EXPECT_EQ(v.flat().size(), 12u);
}

TEST(Table, AlignsColumns) {
  table t({"p", "time"});
  t.add_row({"3", "210"});
  t.add_row({"48", "53.2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("p"), std::string::npos);
  EXPECT_NE(s.find("53.2"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(JsonEscape, RoundTripsEveryControlCharacter) {
  // Every byte 0x00..0x1F plus the two mandatory escapes must survive an
  // escape/unescape round trip and never appear raw in the escaped form.
  std::string nasty;
  for (int c = 0; c < 0x20; ++c) nasty += static_cast<char>(c);
  nasty += "\"\\plain text/";
  const std::string esc = json_escape(nasty);
  for (char c : esc) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control char leaked";
  }
  EXPECT_EQ(json_unescape(esc), nasty);
}

TEST(JsonEscape, CommonEscapesAreShortForm) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape_quoted("x"), "\"x\"");
}

TEST(JsonRecord, RendersEscapedFields) {
  json_record rec;
  rec.add("key\n", std::string("va\"l\x02")).add("n", std::uint64_t{7});
  const std::string s = rec.to_string();
  EXPECT_NE(s.find("\\n"), std::string::npos);
  EXPECT_NE(s.find("\\u0002"), std::string::npos);
  EXPECT_NE(s.find("\"n\": 7"), std::string::npos);
  for (char c : s) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(1.5, 2), "1.50");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(7), "7");
  EXPECT_EQ(fmt_count(100), "100");
  EXPECT_EQ(fmt_count(1000), "1,000");
}

}  // namespace
