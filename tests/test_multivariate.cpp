// Tests for the multivariate hypergeometric samplers: Algorithm 2 (chain)
// and the balanced recursive variant.  Both must produce (a) feasible
// vectors, (b) the exact MVH law (chi-squared over all outcomes for small
// cases), (c) correct marginals, and (d) identical distributions to each
// other.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "hyp/multivariate.hpp"
#include "hyp/pmf.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "stats/chisq.hpp"
#include "stats/moments.hpp"
#include "util/prefix.hpp"

namespace {

using namespace cgp;

using engine_t = rng::counting_engine<rng::philox4x64>;

using sampler_fn = void (*)(engine_t&, std::span<const std::uint64_t>, std::uint64_t,
                            std::span<std::uint64_t>, const hyp::policy&);

void chain(engine_t& e, std::span<const std::uint64_t> cls, std::uint64_t m,
           std::span<std::uint64_t> out, const hyp::policy& pol) {
  hyp::sample_multivariate_chain(e, cls, m, out, pol);
}
void recursive(engine_t& e, std::span<const std::uint64_t> cls, std::uint64_t m,
               std::span<std::uint64_t> out, const hyp::policy& pol) {
  hyp::sample_multivariate_recursive(e, cls, m, out, pol);
}

struct mvh_case {
  std::vector<std::uint64_t> classes;
  std::uint64_t m;
  const char* label;
};

class MvhGrid : public ::testing::TestWithParam<std::tuple<mvh_case, int>> {
 protected:
  sampler_fn fn() const { return std::get<1>(GetParam()) == 0 ? chain : recursive; }
  const mvh_case& c() const { return std::get<0>(GetParam()); }
};

TEST_P(MvhGrid, FeasibleAndConserving) {
  engine_t e{rng::philox4x64(2000, 1)};
  std::vector<std::uint64_t> alpha(c().classes.size());
  for (int rep = 0; rep < 500; ++rep) {
    fn()(e, c().classes, c().m, alpha, {});
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < alpha.size(); ++i) {
      EXPECT_LE(alpha[i], c().classes[i]);
      total += alpha[i];
    }
    EXPECT_EQ(total, c().m);
  }
}

TEST_P(MvhGrid, MarginalsAreUnivariateHypergeometric) {
  // alpha[i] ~ h(m, classes[i], n - classes[i]) (Proposition 3 in row form).
  engine_t e{rng::philox4x64(2001, 2)};
  const std::uint64_t n = span_sum(c().classes);
  std::vector<std::uint64_t> alpha(c().classes.size());
  const std::size_t watched = c().classes.size() / 2;
  const hyp::params marg{c().m, c().classes[watched], n - c().classes[watched]};
  const auto probs = hyp::pmf_table(marg);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  const std::uint64_t lo = hyp::support_min(marg);
  for (int rep = 0; rep < 20000; ++rep) {
    fn()(e, c().classes, c().m, alpha, {});
    ASSERT_GE(alpha[watched], lo);
    ++counts[alpha[watched] - lo];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << c().label;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, MvhGrid,
    ::testing::Combine(::testing::Values(mvh_case{{3, 2, 4}, 4, "tiny"},
                                         mvh_case{{10, 10, 10, 10}, 17, "even4"},
                                         mvh_case{{1, 100, 1, 100}, 50, "skewed"},
                                         mvh_case{{64, 64, 64, 64, 64, 64, 64, 64}, 256, "even8"},
                                         mvh_case{{5, 0, 7, 3}, 6, "empty_class"}),
                       ::testing::Values(0, 1)),
    [](const auto& pinfo) {
      return std::string(std::get<0>(pinfo.param).label) +
             (std::get<1>(pinfo.param) == 0 ? "_chain" : "_recursive");
    });

// --- exact joint law over all outcomes (small case) --------------------------

// Enumerate all feasible alpha for classes and m, chi-square the sampled
// joint distribution against the exact pmf.
void check_joint_law(sampler_fn fn, std::uint64_t seed) {
  const std::vector<std::uint64_t> classes{3, 2, 4};
  const std::uint64_t m = 4;

  std::vector<std::vector<std::uint64_t>> outcomes;
  for (std::uint64_t a0 = 0; a0 <= 3; ++a0)
    for (std::uint64_t a1 = 0; a1 <= 2; ++a1) {
      if (a0 + a1 > m) continue;
      const std::uint64_t a2 = m - a0 - a1;
      if (a2 > 4) continue;
      outcomes.push_back({a0, a1, a2});
    }
  std::map<std::vector<std::uint64_t>, std::size_t> index;
  std::vector<double> probs;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    index[outcomes[i]] = i;
    probs.push_back(std::exp(hyp::multivariate_log_pmf(classes, outcomes[i])));
  }
  double total = 0.0;
  for (const double p : probs) total += p;
  ASSERT_NEAR(total, 1.0, 1e-12);

  engine_t e{rng::philox4x64(seed, 3)};
  std::vector<std::uint64_t> counts(outcomes.size(), 0);
  std::vector<std::uint64_t> alpha(3);
  for (int rep = 0; rep < 60000; ++rep) {
    fn(e, classes, m, alpha, {});
    const auto it = index.find(alpha);
    ASSERT_NE(it, index.end());
    ++counts[it->second];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << "joint-law chi2 = " << res.statistic;
}

TEST(MvhJointLaw, ChainMatchesExactPmf) { check_joint_law(chain, 3001); }
TEST(MvhJointLaw, RecursiveMatchesExactPmf) { check_joint_law(recursive, 3002); }

// --- log-pmf helper ----------------------------------------------------------

TEST(MvhPmf, HandComputed) {
  // classes {2,2}, m=2: P[{1,1}] = C(2,1)C(2,1)/C(4,2) = 4/6.
  const std::vector<std::uint64_t> classes{2, 2};
  const std::vector<std::uint64_t> alpha{1, 1};
  EXPECT_NEAR(std::exp(hyp::multivariate_log_pmf(classes, alpha)), 4.0 / 6.0, 1e-12);
}

TEST(MvhPmf, InfeasibleIsMinusInfinity) {
  const std::vector<std::uint64_t> classes{2, 2};
  EXPECT_EQ(hyp::multivariate_log_pmf(classes, std::vector<std::uint64_t>{3, 0}),
            -std::numeric_limits<double>::infinity());
}

TEST(MvhPmf, MeanHelper) {
  const std::vector<std::uint64_t> classes{10, 30};
  EXPECT_DOUBLE_EQ(hyp::multivariate_mean(classes, 20, 0), 5.0);
  EXPECT_DOUBLE_EQ(hyp::multivariate_mean(classes, 20, 1), 15.0);
}

// --- edge cases ---------------------------------------------------------------

TEST(MvhEdge, DrawAllAndNothing) {
  engine_t e{rng::philox4x64(4000, 4)};
  const std::vector<std::uint64_t> classes{5, 7, 9};
  std::vector<std::uint64_t> alpha(3);
  hyp::sample_multivariate_chain(e, classes, 0, alpha);
  EXPECT_EQ(alpha, (std::vector<std::uint64_t>{0, 0, 0}));
  hyp::sample_multivariate_recursive(e, classes, 21, alpha);
  EXPECT_EQ(alpha, (std::vector<std::uint64_t>{5, 7, 9}));
}

TEST(MvhEdge, SingleClass) {
  engine_t e{rng::philox4x64(4001, 5)};
  const std::vector<std::uint64_t> classes{13};
  std::vector<std::uint64_t> alpha(1);
  hyp::sample_multivariate_recursive(e, classes, 6, alpha);
  EXPECT_EQ(alpha[0], 6u);
  EXPECT_EQ(e.count(), 0u);  // no randomness needed
}

TEST(MvhEdge, ChainAndRecursiveSameDrawBudgetOrder) {
  // Both use k-1 univariate calls; with the HIN path that is exactly k-1
  // draws for non-degenerate splits, at most k-1 in general.
  engine_t e{rng::philox4x64(4002, 6)};
  const std::vector<std::uint64_t> classes(16, 100);
  std::vector<std::uint64_t> alpha(16);
  e.reset_count();
  hyp::sample_multivariate_chain(e, classes, 800, alpha);
  EXPECT_LE(e.count(), 15u * 10u);
  EXPECT_GE(e.count(), 1u);
  e.reset_count();
  hyp::sample_multivariate_recursive(e, classes, 800, alpha);
  EXPECT_LE(e.count(), 15u * 10u);
  EXPECT_GE(e.count(), 1u);
}

TEST(MvhMoments, LargeClassesMeanCheck) {
  engine_t e{rng::philox4x64(4003, 7)};
  const std::vector<std::uint64_t> classes{100000, 200000, 300000, 400000};
  const std::uint64_t m = 250000;
  std::vector<std::uint64_t> alpha(4);
  stats::running_moments m0;
  for (int rep = 0; rep < 4000; ++rep) {
    hyp::sample_multivariate_recursive(e, classes, m, alpha);
    m0.add(static_cast<double>(alpha[0]));
  }
  EXPECT_LT(std::fabs(m0.z_against(hyp::multivariate_mean(classes, m, 0))), 6.0);
}

}  // namespace
