// Unit tests for the RNG substrate: engine determinism, stream
// independence, counting adaptor, and the bounded-uniform primitives the
// shuffles and samplers consume.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro.hpp"
#include "stats/chisq.hpp"

namespace {

using namespace cgp;

TEST(SplitMix, KnownSequenceIsDeterministic) {
  rng::splitmix64 a(42);
  rng::splitmix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  rng::splitmix64 a(1);
  rng::splitmix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Philox, DeterministicAndSeedSensitive) {
  rng::philox4x64 a(7, 0);
  rng::philox4x64 b(7, 0);
  rng::philox4x64 c(8, 0);
  bool all_equal = true;
  bool any_equal_c = false;
  for (int i = 0; i < 256; ++i) {
    const auto va = a();
    all_equal = all_equal && (va == b());
    any_equal_c = any_equal_c || (va == c());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_FALSE(any_equal_c);
}

TEST(Philox, StreamsAreDisjointPrefix) {
  rng::philox4x64 s0(123, 0);
  rng::philox4x64 s1(123, 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s0());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.count(s1())) << "stream collision at " << i;
}

TEST(Philox, BijectionChangesWithCounter) {
  const rng::philox4x64::block_type c0{0, 0, 0, 0};
  const rng::philox4x64::block_type c1{1, 0, 0, 0};
  const std::array<std::uint64_t, 2> key{0xDEADBEEF, 0xCAFE};
  EXPECT_NE(rng::philox4x64::bijection(c0, key), rng::philox4x64::bijection(c1, key));
}

TEST(Philox, DiscardBlocksSkipsExactly) {
  rng::philox4x64 a(99, 5);
  rng::philox4x64 b(99, 5);
  // Consume 3 full blocks (12 words) from a.
  for (int i = 0; i < 12; ++i) (void)a();
  b.discard_blocks(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, OutputLooksUniform64) {
  // Bucket the top byte; chi-square against uniform.
  rng::philox4x64 e(2024, 0);
  std::vector<std::uint64_t> counts(256, 0);
  for (int i = 0; i < 1 << 16; ++i) ++counts[e() >> 56];
  const auto res = stats::chi_square_uniform(counts);
  EXPECT_GT(res.p_value, 1e-9);
}

TEST(Xoshiro, DeterministicAndJumpDisjoint) {
  rng::xoshiro256ss a(5);
  rng::xoshiro256ss b(5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
  rng::xoshiro256ss c(5);
  c.jump();
  std::set<std::uint64_t> seen;
  rng::xoshiro256ss d(5);
  for (int i = 0; i < 1000; ++i) seen.insert(d());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(seen.count(c()));
}

TEST(Counting, CountsDraws) {
  rng::counting_engine<rng::philox4x64> e(rng::philox4x64(1, 2));
  EXPECT_EQ(e.count(), 0u);
  (void)e();
  (void)e();
  EXPECT_EQ(e.count(), 2u);
  e.reset_count();
  EXPECT_EQ(e.count(), 0u);
}

TEST(Counting, TransparentOutput) {
  rng::philox4x64 raw(11, 3);
  rng::counting_engine<rng::philox4x64> counted(rng::philox4x64(11, 3));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(raw(), counted());
}

TEST(UniformBelow, RespectsBound) {
  rng::philox4x64 e(3, 0);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng::uniform_below(e, bound), bound);
  }
}

TEST(UniformBelow, BoundOneIsFree) {
  rng::counting_engine<rng::philox4x64> e(rng::philox4x64(4, 0));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng::uniform_below(e, 1), 0u);
  // Bound 1 still consumes a draw (the method is branch-free on the happy
  // path); what matters is the result is always 0.
}

TEST(UniformBelow, UnbiasedSmallBound) {
  rng::philox4x64 e(17, 0);
  std::vector<std::uint64_t> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng::uniform_below(e, 7)];
  const auto res = stats::chi_square_uniform(counts);
  EXPECT_GT(res.p_value, 1e-9);
}

TEST(UniformBetween, InclusiveRange) {
  rng::philox4x64 e(5, 0);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng::uniform_between(e, 10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo = saw_lo || v == 10;
    saw_hi = saw_hi || v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(CanonicalDouble, InUnitInterval) {
  rng::philox4x64 e(6, 0);
  double mn = 1.0;
  double mx = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng::canonical_double(e);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
  }
  EXPECT_LT(mn, 0.001);
  EXPECT_GT(mx, 0.999);
}

TEST(CanonicalDouble, NonzeroVariantNeverZero) {
  rng::philox4x64 e(7, 0);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng::canonical_double_nonzero(e);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
}

TEST(Streams, ProcessorStreamsIndependent) {
  // Two processors of the same machine seed never share a prefix.
  auto s0 = rng::processor_stream(42, 0);
  auto s1 = rng::processor_stream(42, 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(s0());
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(seen.count(s1()));
}

TEST(Streams, PhaseStreamsDifferFromProcessorStreams) {
  auto proc = rng::processor_stream(42, 3);
  auto phase = rng::phase_stream(42, 3, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (proc() == phase()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
