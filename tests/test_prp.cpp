// Tests for the O(1)-memory cipher permutation backend (src/prp/):
//
//  * statistical uniformity of the cipher family over cycle-walked
//    domains -- exhaustive S4/S5 chi-square on n = 2^k, n prime, and
//    n = 2^k + 1 (the worst cycle-walk shape), the position marginal and
//    the fixed-point law at sizes past k! enumeration;
//  * pi_inverse(pi(i)) == i exhaustively for a spread of small domains
//    and sampled at n = 10^9 (where nothing could ever materialize);
//  * shard views jointly tile pi exactly once, and the batched fill path
//    equals the iterator path;
//  * bit-identity across SIMD paths, and backend plumbing: the prp
//    executor's fill/shuffle agree with the raw cipher, backend::automatic
//    with a sparse-access declaration picks prp and equals the explicit
//    choice bit for bit, the plan cache keys on accessed_fraction, and
//    plan::explain() surfaces the prp win conditions;
//  * the service surface: submit_shard windows replay against a local
//    cipher under job_seed, and prp-planned streams serve cipher content.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/context.hpp"
#include "core/executor.hpp"
#include "obs/metrics.hpp"
#include "prp/cipher.hpp"
#include "prp/shard.hpp"
#include "rng/philox_batch.hpp"
#include "support/perm_check.hpp"
#include "svc/job.hpp"
#include "svc/server.hpp"

namespace {

using namespace cgp;

constexpr std::uint64_t kSeed = 0x5970CA11ull;

std::vector<std::uint64_t> eval_all(const prp::cipher& c) {
  std::vector<std::uint64_t> out(c.domain());
  c.eval_range(0, std::span<std::uint64_t>(out));
  return out;
}

// --- uniformity of the cipher family ----------------------------------------

// Exhaustive S_k uniformity: every rep keys a FRESH cipher (a new member
// of the keyed family) and the Lehmer-rank histogram over all k! outcomes
// must be chi-square-uniform.  Three domain shapes stress the cycle walk
// differently: n = 4 = 2^2 (no walking at all), n = 5 prime (M = 8,
// 3/8 of evaluations walk), and for S5 n = 5 = 2^2 + 1 (the worst shape:
// M is the smallest power of two above n, nearly half the domain walks).
TEST(PrpCipher, ExhaustiveS4UniformityPowerOfTwoDomain) {
  test_support::expect_uniform_over_sk(
      [](std::span<std::uint64_t> v, int rep) {
        const prp::cipher c(kSeed + static_cast<std::uint64_t>(rep), v.size());
        c.eval_range(0, v);
      },
      /*k=*/4, /*reps=*/24'000);
}

TEST(PrpCipher, ExhaustiveS5UniformityCycleWalkedDomain) {
  // n = 5: prime AND 2^2 + 1 -- the heaviest cycle-walk shape.
  test_support::expect_uniform_over_sk(
      [](std::span<std::uint64_t> v, int rep) {
        const prp::cipher c(kSeed + static_cast<std::uint64_t>(rep), v.size());
        c.eval_range(0, v);
      },
      /*k=*/5, /*reps=*/120'000);
}

TEST(PrpCipher, ExhaustiveS3UniformityPrimeDomain) {
  test_support::expect_uniform_over_sk(
      [](std::span<std::uint64_t> v, int rep) {
        const prp::cipher c(kSeed + 7 + static_cast<std::uint64_t>(rep), v.size());
        c.eval_range(0, v);
      },
      /*k=*/3, /*reps=*/18'000);
}

TEST(PrpCipher, PositionMarginalUniformAtSeventeen) {
  // n = 17 = 2^4 + 1: past k! enumeration, worst walk shape; the position
  // histogram of item 0 is the single-item marginal of uniformity.
  const auto res = test_support::position_uniformity_gof(
      [](std::span<std::uint64_t> v, int rep) {
        const prp::cipher c(kSeed + 100 + static_cast<std::uint64_t>(rep), v.size());
        c.eval_range(0, v);
      },
      /*n=*/17, /*reps=*/30'000);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(PrpCipher, FixedPointLawAtHundred) {
  test_support::expect_fixed_point_law(
      [](int rep) {
        const prp::cipher c(kSeed + 200 + static_cast<std::uint64_t>(rep), 100);
        return eval_all(c);
      },
      /*reps=*/4'000);
}

// --- bijectivity + inversion -------------------------------------------------

TEST(PrpCipher, InverseRoundTripsExhaustivelyOnSmallDomains) {
  // Primes, powers of two, 2^k + 1, and ragged sizes; every i round-trips
  // both ways and eval_range emits exactly the permutation pi describes.
  for (const std::uint64_t n :
       {1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull, 9ull, 16ull, 17ull, 31ull, 64ull,
        100ull, 257ull, 1000ull, 1025ull}) {
    const prp::cipher c(kSeed, n);
    const std::vector<std::uint64_t> pi = eval_all(c);
    ASSERT_TRUE(stats::is_permutation_of_iota(pi)) << "n=" << n;
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(pi[i], c.pi(i)) << "n=" << n << " i=" << i;
      ASSERT_EQ(c.pi_inverse(pi[i]), i) << "n=" << n << " i=" << i;
      ASSERT_EQ(c.pi(c.pi_inverse(i)), i) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PrpCipher, InverseRoundTripsSampledAtBillionScale) {
  // n = 10^9: no backend could hold pi, the cipher doesn't need to.
  const std::uint64_t n = 1'000'000'000;
  const prp::cipher c(kSeed, n);
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    const std::uint64_t i = (s * 0x9E3779B97F4A7C15ull) % n;  // spread probes
    const std::uint64_t y = c.pi(i);
    ASSERT_LT(y, n);
    ASSERT_EQ(c.pi_inverse(y), i) << "i=" << i;
    seen.push_back(y);
  }
  // Injective on the probe set (pigeonhole sanity at scale).
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(PrpCipher, CycleWalkRetriesHappenAndAreCounted) {
  // n = 1025 = 2^10 + 1: M = 2048, so ~half of all evaluations must walk;
  // the per-call stats and the obs counter both see it.
  const prp::cipher c(kSeed, 1025);
  prp::eval_stats st;
  std::vector<std::uint64_t> out(1025);
  c.eval_range(0, std::span<std::uint64_t>(out), &st);
  EXPECT_EQ(st.evals, 1025u);
  EXPECT_GT(st.walk_retries, 0u);
  EXPECT_GT(obs::get_counter("prp.evals").value(), 0u);
  EXPECT_GT(obs::get_counter("prp.cycle_walk_retries").value(), 0u);
  EXPECT_EQ(obs::get_gauge("prp.rounds").value(),
            static_cast<std::int64_t>(prp::cipher::kDefaultRounds));
}

TEST(PrpCipher, EvalManyMatchesPointwiseOnArbitraryIndices) {
  const std::uint64_t n = 100'003;
  const prp::cipher c(kSeed, n);
  std::vector<std::uint64_t> in;
  for (std::uint64_t s = 0; s < 1000; ++s) in.push_back((s * 7919) % n);
  std::vector<std::uint64_t> out(in.size());
  c.eval_many(in, std::span<std::uint64_t>(out));
  for (std::size_t j = 0; j < in.size(); ++j) {
    ASSERT_EQ(out[j], c.pi(in[j])) << "j=" << j;
  }
}

TEST(PrpCipher, RoundsOptionChangesThePermutation) {
  const std::uint64_t n = 1000;
  const prp::cipher deep(kSeed, n);
  prp::cipher_options shallow_opt;
  shallow_opt.rounds = 8;
  const prp::cipher shallow(kSeed, n, shallow_opt);
  EXPECT_EQ(shallow.rounds(), 8u);
  EXPECT_EQ(deep.rounds(), prp::cipher::kDefaultRounds);
  EXPECT_NE(eval_all(deep), eval_all(shallow));
  EXPECT_TRUE(stats::is_permutation_of_iota(eval_all(shallow)));
}

// --- shard views -------------------------------------------------------------

TEST(PrpShard, ShardsJointlyTilePiExactlyOnce) {
  // Ragged split (100003 prime, 7 shards): concatenating the shard views
  // in order IS eval_range(0, n), and the union is a permutation -- every
  // value appears exactly once across all shards.
  const std::uint64_t n = 100'003;
  const std::uint64_t S = 7;
  const prp::cipher c(kSeed, n);

  std::vector<std::uint64_t> assembled;
  std::uint64_t covered = 0;
  for (std::uint64_t k = 0; k < S; ++k) {
    const prp::shard_view sv = c.shard(k, S);
    EXPECT_EQ(sv.begin_index(), covered);
    covered = sv.end_index();
    for (const std::uint64_t y : sv) assembled.push_back(y);
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(assembled, eval_all(c));
  EXPECT_TRUE(stats::is_permutation_of_iota(assembled));
}

TEST(PrpShard, BatchedFillEqualsIteratorPath) {
  const std::uint64_t n = 10'000;
  const prp::cipher c(kSeed, n);
  const prp::shard_view sv = c.shard(2, 5);

  std::vector<std::uint64_t> via_iter(sv.begin(), sv.end());
  std::vector<std::uint64_t> via_fill(sv.size());
  sv.fill(0, std::span<std::uint64_t>(via_fill));
  EXPECT_EQ(via_fill, via_iter);

  // Offset fill reads an interior window of the same sequence.
  std::vector<std::uint64_t> window(10);
  sv.fill(5, std::span<std::uint64_t>(window));
  for (std::size_t j = 0; j < window.size(); ++j) {
    EXPECT_EQ(window[j], via_iter[5 + j]);
  }
}

TEST(PrpShard, BalancedBoundsCoverEveryShape) {
  for (const std::uint64_t n : {0ull, 1ull, 6ull, 7ull, 100ull}) {
    for (const std::uint64_t S : {1ull, 2ull, 3ull, 7ull}) {
      std::uint64_t covered = 0;
      std::uint64_t max_size = 0;
      std::uint64_t min_size = ~0ull;
      for (std::uint64_t k = 0; k < S; ++k) {
        const prp::shard_range r = prp::shard_bounds(n, k, S);
        EXPECT_EQ(r.lo, covered) << "n=" << n << " S=" << S << " k=" << k;
        covered = r.hi;
        max_size = std::max(max_size, r.size());
        min_size = std::min(min_size, r.size());
      }
      EXPECT_EQ(covered, n) << "n=" << n << " S=" << S;
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " S=" << S;
    }
  }
}

// --- SIMD / determinism ------------------------------------------------------

TEST(PrpCipher, BitIdenticalAcrossSimdPaths) {
  // The key schedule draws through philox4x64_batch; forcing the scalar
  // kernel (what CGP_SIMD=off does) must not move one bit of any
  // permutation.  n = 1025 exercises the cycle walk too.
  const std::uint64_t n = 1025;
  test_support::expect_bit_identical(
      2,
      [&](std::size_t variant) {
        if (variant == 0) {
          rng::set_simd_override(rng::simd_path::scalar);
        } else {
          rng::clear_simd_override();
        }
        const prp::cipher c(kSeed, n);
        std::vector<std::uint64_t> out = eval_all(c);
        rng::clear_simd_override();
        return out;
      },
      "prp cipher across SIMD paths");
}

// --- executor + planner integration ------------------------------------------

TEST(PrpBackend, ExecutorFillMatchesRawCipherAndShuffleGathers) {
  const std::uint64_t n = 4099;  // prime, walks
  core::backend_options opt;
  opt.which = core::backend::prp;
  opt.seed = kSeed;

  // fill_random_permutation == the raw cipher's eval_range.
  const std::vector<std::uint64_t> direct = eval_all(prp::cipher(kSeed, n));
  std::vector<std::uint64_t> filled = core::random_permutation(n, opt);
  EXPECT_EQ(filled, direct);

  // Shuffling an iota span gathers through the same pi: identical output.
  std::vector<std::uint64_t> shuffled(n);
  std::iota(shuffled.begin(), shuffled.end(), 0);
  core::shuffle(std::span<std::uint64_t>(shuffled), opt);
  EXPECT_EQ(shuffled, direct);

  // And payloads follow positions: shuffling 16-byte records whose first
  // word is the index reproduces pi in that word.
  struct rec16 {
    std::uint64_t key;
    std::uint64_t tag;
  };
  std::vector<rec16> recs(n);
  for (std::uint64_t i = 0; i < n; ++i) recs[i] = {i, ~i};
  core::shuffle(std::span<rec16>(recs), opt);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(recs[i].key, direct[i]) << "i=" << i;
    ASSERT_EQ(recs[i].tag, ~direct[i]) << "i=" << i;
  }
}

TEST(PrpBackend, AutomaticWithSparseAccessPicksPrpAndAgreesBitForBit) {
  // A sparse-declared workload (0.1% of a 2^16 domain): the prp
  // candidate's cost is ~1000x under every materializing backend's, so
  // the planner must pick it -- and the output must equal the explicit
  // backend choice bit for bit (the planner can never change bytes).
  const std::uint64_t n = std::uint64_t{1} << 16;

  core::backend_options auto_opt;
  auto_opt.which = core::backend::automatic;
  auto_opt.seed = kSeed;
  auto_opt.accessed_fraction = 0.001;
  core::permutation_plan plan;
  auto_opt.plan_out = &plan;
  const std::vector<std::uint64_t> via_auto = core::random_permutation(n, auto_opt);

  EXPECT_EQ(plan.chosen, core::backend::prp) << plan.explain();
  EXPECT_EQ(plan.accessed_fraction, 0.001);

  core::backend_options explicit_opt;
  explicit_opt.which = core::backend::prp;
  explicit_opt.seed = kSeed;
  EXPECT_EQ(via_auto, core::random_permutation(n, explicit_opt));

  // Dense default: prp sits out, the plan is whatever it always was.
  core::backend_options dense_opt;
  dense_opt.which = core::backend::automatic;
  dense_opt.seed = kSeed;
  core::permutation_plan dense_plan;
  dense_opt.plan_out = &dense_plan;
  (void)core::random_permutation(n, dense_opt);
  EXPECT_NE(dense_plan.chosen, core::backend::prp);
}

TEST(PrpBackend, ExplainPrintsWinConditionsAndCandidate) {
  core::workload w;
  w.n = std::uint64_t{1} << 20;
  w.accessed_fraction = 0.01;
  const core::permutation_plan plan = core::plan_permutation(w);
  const std::string text = plan.explain();
  EXPECT_NE(text.find("prp"), std::string::npos) << text;
  EXPECT_NE(text.find("prp wins when"), std::string::npos) << text;
  EXPECT_NE(text.find("accessed_fraction"), std::string::npos) << text;

  // Dense workloads state WHY prp sits out.
  core::workload dense;
  dense.n = std::uint64_t{1} << 20;
  const std::string dense_text = core::plan_permutation(dense).explain();
  EXPECT_NE(dense_text.find("dense access"), std::string::npos) << dense_text;
}

TEST(PrpBackend, FingerprintMixesPrpRate) {
  core::machine_profile a;
  core::machine_profile b = a;
  b.prp_eval_ns = a.prp_eval_ns * 2.0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- service surface ---------------------------------------------------------

TEST(PrpService, ShardStreamReplaysAgainstLocalCipher) {
  constexpr std::uint64_t kSvcSeed = 0x5E12B1CE0009ull;
  svc::server_options sopt;
  sopt.seed = kSvcSeed;
  svc::server srv(sopt);

  const std::uint64_t n = 1'000'003;  // the cipher holds the DOMAIN
  const std::uint64_t S = 5;

  // Each shard job consumes one ordinal; shard k of job (client, ordinal)
  // replays as cipher(job_seed, n).shard(k, S) -- nothing materialized
  // server-side, so opening a shard of a 10^6 domain is instant.
  for (std::uint64_t k = 0; k < S; ++k) {
    svc::stream s = srv.submit_shard(/*client_id=*/7, n, k, S);
    const prp::shard_range r = prp::shard_bounds(n, k, S);
    EXPECT_EQ(s.size(), r.size());

    std::vector<std::uint64_t> got;
    std::vector<std::uint64_t> chunk(4096);
    while (std::size_t m = s.read(std::span<std::uint64_t>(chunk))) {
      got.insert(got.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(m));
    }

    const prp::cipher local(svc::job_seed(kSvcSeed, 7, s.ordinal()), n);
    std::vector<std::uint64_t> expected(r.size());
    local.eval_range(r.lo, std::span<std::uint64_t>(expected));
    EXPECT_EQ(got, expected) << "shard " << k;
    EXPECT_EQ(s.plan().chosen, core::backend::prp);
  }
}

TEST(PrpService, PrpPlannedStreamServesCipherContent) {
  // A server whose engine declares sparse streaming access: stream jobs
  // plan onto prp and serve cipher content with nothing materialized.
  constexpr std::uint64_t kSvcSeed = 0x5E12B1CE000Aull;
  svc::server_options sopt;
  sopt.seed = kSvcSeed;
  sopt.engine.accessed_fraction = 0.001;
  svc::server srv(sopt);

  const std::uint64_t n = std::uint64_t{1} << 18;
  svc::stream s = srv.submit_stream(/*client_id=*/3, n);
  std::vector<std::uint64_t> head(1000);
  ASSERT_EQ(s.read(std::span<std::uint64_t>(head)), head.size());
  EXPECT_EQ(s.plan().chosen, core::backend::prp);

  const prp::cipher local(svc::job_seed(kSvcSeed, 3, s.ordinal()), n);
  std::vector<std::uint64_t> expected(head.size());
  local.eval_range(0, std::span<std::uint64_t>(expected));
  EXPECT_EQ(head, expected);

  // seek + reread is exact (results are pure functions, not buffers).
  s.seek(100);
  std::vector<std::uint64_t> reread(50);
  ASSERT_EQ(s.read(std::span<std::uint64_t>(reread)), reread.size());
  for (std::size_t j = 0; j < reread.size(); ++j) {
    EXPECT_EQ(reread[j], expected[100 + j]);
  }
}

}  // namespace
