// Tests for the sequential algorithms: the Fisher-Yates reference, the
// cache-blocked shuffle (Section 6 outlook), and the related-work baselines
// -- including a *negative* test showing the iterated riffle is not uniform
// for small round counts (the paper's argument against the iterate trick).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "rng/philox.hpp"
#include "seq/baselines.hpp"
#include "seq/blocked_shuffle.hpp"
#include "seq/fisher_yates.hpp"
#include "seq/rao_sandelius.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "support/perm_check.hpp"

namespace {

using namespace cgp;

using engine_t = rng::philox4x64;

// Thread ONE engine through all reps of the shared exhaustive-uniformity
// harness (tests/support/perm_check.hpp): sequential suites key the run by
// the engine's seed, not per rep.
template <typename Shuffle>
stats::gof_result uniformity_gof(Shuffle&& shuffle, unsigned k, int reps, std::uint64_t seed) {
  engine_t e(seed, 0);
  return test_support::uniformity_gof(
      [&](std::span<std::uint64_t> v, int) { shuffle(e, v); }, k, reps);
}

TEST(FisherYates, PermutesContent) {
  engine_t e(1, 0);
  std::vector<std::uint64_t> v(1000);
  std::iota(v.begin(), v.end(), 0);
  seq::fisher_yates(e, std::span<std::uint64_t>(v));
  EXPECT_TRUE(stats::is_permutation_of_iota(v));
}

TEST(FisherYates, UniformOverS5) {
  const auto res = uniformity_gof(
      [](engine_t& e, std::span<std::uint64_t> v) { seq::fisher_yates(e, v); }, 5, 120 * 100, 2);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(FisherYates, CopyVariantUniformOverS4) {
  engine_t e(3, 0);
  std::vector<std::uint64_t> counts(24, 0);
  const std::vector<std::uint64_t> in{0, 1, 2, 3};
  std::vector<std::uint64_t> out(4);
  for (int rep = 0; rep < 24 * 400; ++rep) {
    seq::fisher_yates_copy(e, std::span<const std::uint64_t>(in), std::span<std::uint64_t>(out));
    ASSERT_TRUE(stats::is_permutation_of_iota(out));
    ++counts[stats::permutation_rank(out)];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(FisherYates, EmptyAndSingleton) {
  engine_t e(4, 0);
  std::vector<int> empty;
  seq::fisher_yates(e, std::span<int>(empty));
  std::vector<int> one{7};
  seq::fisher_yates(e, std::span<int>(one));
  EXPECT_EQ(one[0], 7);
}

TEST(RandomPermutation, ProducesValidPermutation) {
  engine_t e(5, 0);
  std::vector<std::uint64_t> pi(257);
  seq::random_permutation(e, pi);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

// --- blocked (cache-aware) shuffle ------------------------------------------

TEST(BlockedShuffle, PermutesContent) {
  engine_t e(6, 0);
  std::vector<std::uint64_t> v(10'000);
  std::iota(v.begin(), v.end(), 0);
  seq::blocked_options opt;
  opt.fan_out = 4;
  opt.cache_items = 64;  // force several recursion levels
  seq::blocked_shuffle(e, std::span<std::uint64_t>(v), opt);
  EXPECT_TRUE(stats::is_permutation_of_iota(v));
}

TEST(BlockedShuffle, UniformOverS5WithTinyBlocks) {
  seq::blocked_options opt;
  opt.fan_out = 2;
  opt.cache_items = 2;  // recursion all the way down even for k=5
  const auto res = uniformity_gof(
      [&opt](engine_t& e, std::span<std::uint64_t> v) { seq::blocked_shuffle(e, v, opt); }, 5,
      120 * 100, 7);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(BlockedShuffle, MatchesFisherYatesMoments) {
  // Mean displacement of an item under a uniform shuffle of n items is
  // ~ n/3; compare blocked vs Fisher-Yates at 3% tolerance.
  const std::size_t n = 4096;
  engine_t e1(8, 0);
  engine_t e2(9, 0);
  double disp_fy = 0.0;
  double disp_bl = 0.0;
  const int reps = 200;
  std::vector<std::uint64_t> v(n);
  for (int rep = 0; rep < reps; ++rep) {
    std::iota(v.begin(), v.end(), 0);
    seq::fisher_yates(e1, std::span<std::uint64_t>(v));
    for (std::size_t i = 0; i < n; ++i)
      disp_fy += std::abs(static_cast<double>(v[i]) - static_cast<double>(i));
    std::iota(v.begin(), v.end(), 0);
    seq::blocked_shuffle(e2, std::span<std::uint64_t>(v));
    for (std::size_t i = 0; i < n; ++i)
      disp_bl += std::abs(static_cast<double>(v[i]) - static_cast<double>(i));
  }
  EXPECT_NEAR(disp_bl / disp_fy, 1.0, 0.03);
}

// --- Rao-Sandelius shuffle ----------------------------------------------------

TEST(RaoSandelius, PermutesContent) {
  engine_t e(20, 0);
  std::vector<std::uint64_t> v(10'000);
  std::iota(v.begin(), v.end(), 0);
  seq::rs_options opt;
  opt.log2_fan_out = 2;
  opt.cache_items = 32;  // force deep recursion
  seq::rs_shuffle(e, std::span<std::uint64_t>(v), opt);
  EXPECT_TRUE(stats::is_permutation_of_iota(v));
}

TEST(RaoSandelius, UniformOverS5WithTinyLeaves) {
  seq::rs_options opt;
  opt.log2_fan_out = 1;  // binary splitting, the classical formulation
  opt.cache_items = 2;
  const auto res = uniformity_gof(
      [&opt](engine_t& e, std::span<std::uint64_t> v) { seq::rs_shuffle(e, v, opt); }, 5,
      120 * 100, 21);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(RaoSandelius, UniformOverS4WideFanOut) {
  seq::rs_options opt;
  opt.log2_fan_out = 3;  // 8 buckets for 4 items: mostly empty buckets
  opt.cache_items = 2;
  const auto res = uniformity_gof(
      [&opt](engine_t& e, std::span<std::uint64_t> v) { seq::rs_shuffle(e, v, opt); }, 4,
      24 * 400, 22);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(RaoSandelius, SingleItemPositionUniform) {
  engine_t e(23, 0);
  seq::rs_options opt;
  opt.cache_items = 8;
  opt.log2_fan_out = 2;
  const auto res = test_support::position_uniformity_gof(
      [&](std::span<std::uint64_t> v, int) { seq::rs_shuffle(e, v, opt); }, 64, 16000);
  EXPECT_GT(res.p_value, 1e-9);
}

// --- sort-based baseline -----------------------------------------------------

TEST(SortShuffle, PermutesAndUniformOverS4) {
  engine_t e(10, 0);
  std::vector<std::uint64_t> counts(24, 0);
  std::vector<std::uint64_t> v(4);
  for (int rep = 0; rep < 24 * 400; ++rep) {
    std::iota(v.begin(), v.end(), 0);
    seq::shuffle_by_sorting(e, std::span<std::uint64_t>(v));
    ASSERT_TRUE(stats::is_permutation_of_iota(v));
    ++counts[stats::permutation_rank(v)];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(SortShuffle, SurvivesForcedKeyCollisions) {
  // An engine that returns constants at first forces the collision-repair
  // path; wrap philox to emit duplicates for the first 2n draws.
  struct dup_engine {
    using result_type = std::uint64_t;
    engine_t inner{11, 0};
    int forced = 16;
    result_type operator()() {
      if (forced > 0) {
        --forced;
        return 42;  // identical keys
      }
      return inner();
    }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }
  } e;
  std::vector<std::uint64_t> v(8);
  std::iota(v.begin(), v.end(), 0);
  seq::shuffle_by_sorting(e, std::span<std::uint64_t>(v));
  EXPECT_TRUE(stats::is_permutation_of_iota(v));
}

// --- dart throwing ------------------------------------------------------------

TEST(DartThrowing, PermutesAndUniformOverS4) {
  engine_t e(12, 0);
  std::vector<std::uint64_t> counts(24, 0);
  std::vector<std::uint64_t> v(4);
  for (int rep = 0; rep < 24 * 400; ++rep) {
    std::iota(v.begin(), v.end(), 0);
    seq::dart_throwing_shuffle(e, std::span<std::uint64_t>(v));
    ASSERT_TRUE(stats::is_permutation_of_iota(v));
    ++counts[stats::permutation_rank(v)];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(DartThrowing, ExpectedDrawsModel) {
  // slack=2: E[draws/item] = 2 ln 2 ~ 1.386.
  EXPECT_NEAR(seq::dart_throwing_expected_draws_per_item(2.0), 2.0 * std::log(2.0), 1e-12);
  // Tighter tables cost more.
  EXPECT_GT(seq::dart_throwing_expected_draws_per_item(1.25),
            seq::dart_throwing_expected_draws_per_item(4.0));
}

// --- riffle rounds: the non-uniform baseline ----------------------------------

TEST(Riffle, SingleRoundPreservesContent) {
  engine_t e(13, 0);
  std::vector<std::uint64_t> v(100);
  std::iota(v.begin(), v.end(), 0);
  seq::riffle_round(e, std::span<std::uint64_t>(v));
  EXPECT_TRUE(stats::is_permutation_of_iota(v));
}

TEST(Riffle, OneRoundIsProvablyNonUniform) {
  // A single riffle of 5 cards cannot produce more than 2 descents; the
  // rank histogram must fail chi-square catastrophically.
  const auto res = uniformity_gof(
      [](engine_t& e, std::span<std::uint64_t> v) { seq::riffle_shuffle(e, v, 1); }, 5, 120 * 100,
      14);
  EXPECT_LT(res.p_value, 1e-12) << "a single riffle round must NOT look uniform";
}

TEST(Riffle, ManyRoundsApproachUniformity) {
  // ~log2(n) + safety rounds: 12 rounds on 5 cards is plenty.
  const auto res = uniformity_gof(
      [](engine_t& e, std::span<std::uint64_t> v) { seq::riffle_shuffle(e, v, 12); }, 5, 120 * 100,
      15);
  EXPECT_GT(res.p_value, 1e-9);
}

}  // namespace
