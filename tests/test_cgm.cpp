// Tests for the coarse-grained machine: superstep semantics, message
// delivery, collectives, determinism, and the resource accounting the
// paper's theorems are stated in.
#include <gtest/gtest.h>

#include <numeric>

#include "cgm/collectives.hpp"
#include "cgm/machine.hpp"

namespace {

using namespace cgp;

TEST(Machine, SingleProcessorRuns) {
  cgm::machine mach(1, 42);
  bool ran = false;
  const auto stats = mach.run([&](cgm::context& ctx) {
    EXPECT_EQ(ctx.id(), 0u);
    EXPECT_EQ(ctx.nprocs(), 1u);
    ctx.charge(10);
    ran = true;
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(stats.per_proc[0].compute_ops, 10u);
  EXPECT_EQ(stats.total_compute(), 10u);
}

TEST(Machine, PointToPointDelivery) {
  cgm::machine mach(4, 1);
  std::vector<std::uint64_t> got(4, 0);
  mach.run([&](cgm::context& ctx) {
    // Ring: i sends its id+100 to (i+1) mod p.
    const std::uint64_t payload = ctx.id() + 100;
    ctx.send_value((ctx.id() + 1) % 4, 7, payload);
    ctx.sync();
    const auto msg = ctx.take((ctx.id() + 3) % 4, 7);
    ASSERT_TRUE(msg.has_value());
    got[ctx.id()] = msg->as<std::uint64_t>().front();
  });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{103, 100, 101, 102}));
}

TEST(Machine, MessagesNotVisibleBeforeSync) {
  cgm::machine mach(2, 2);
  mach.run([&](cgm::context& ctx) {
    if (ctx.id() == 0) ctx.send_value(1u, 9, std::uint64_t{5});
    EXPECT_TRUE(ctx.inbox().empty());  // nothing delivered yet
    ctx.sync();
    if (ctx.id() == 1) {
      EXPECT_EQ(ctx.inbox().size(), 1u);
    } else {
      EXPECT_TRUE(ctx.inbox().empty());
    }
  });
}

TEST(Machine, InboxOrderedBySource) {
  cgm::machine mach(5, 3);
  mach.run([&](cgm::context& ctx) {
    ctx.send_value(0u, 1, std::uint64_t{ctx.id()});
    ctx.sync();
    if (ctx.id() == 0) {
      ASSERT_EQ(ctx.inbox().size(), 5u);
      for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ctx.inbox()[i].source, i);
    }
  });
}

TEST(Machine, TakeAllFiltersByTag) {
  cgm::machine mach(3, 4);
  mach.run([&](cgm::context& ctx) {
    ctx.send_value(0u, 1, std::uint64_t{1});
    ctx.send_value(0u, 2, std::uint64_t{2});
    ctx.sync();
    if (ctx.id() == 0) {
      auto ones = ctx.take_all(1);
      EXPECT_EQ(ones.size(), 3u);
      EXPECT_EQ(ctx.inbox().size(), 3u);  // tag-2 messages remain
      auto twos = ctx.take_all(2);
      EXPECT_EQ(twos.size(), 3u);
      EXPECT_TRUE(ctx.inbox().empty());
    }
  });
}

TEST(Machine, MultiSuperstepPingPong) {
  cgm::machine mach(2, 5);
  mach.run([&](cgm::context& ctx) {
    std::uint64_t token = ctx.id() == 0 ? 1 : 0;
    for (int round = 0; round < 8; ++round) {
      if (token != 0) ctx.send_value(1u - ctx.id(), 3, token + 1);
      ctx.sync();
      auto msg = ctx.take(1u - ctx.id(), 3);
      token = msg ? msg->as<std::uint64_t>().front() : 0;
    }
    if (ctx.id() == 0) EXPECT_EQ(token, 9u);  // 8 hops, +1 each
  });
}

TEST(Machine, RepeatedRunsAreIndependentAndReproducible) {
  // Repeated runs on ONE machine draw from fresh run-keyed streams (the
  // old behaviour replayed run 0's draws verbatim -- two permute_global
  // calls returned the same "random" permutation); a second machine with
  // the same seed replays the whole run sequence, and reseed resets it.
  cgm::machine mach(4, 77);
  auto draw_all = [](cgm::machine& m) {
    std::vector<std::uint64_t> draws(4);
    m.run([&](cgm::context& ctx) { draws[ctx.id()] = ctx.rng()(); });
    return draws;
  };
  const auto a = draw_all(mach);
  const auto b = draw_all(mach);
  EXPECT_NE(a, b);  // independent across runs

  cgm::machine replay(4, 77);
  EXPECT_EQ(a, draw_all(replay));  // reproducible run for run
  EXPECT_EQ(b, draw_all(replay));

  mach.reseed(77);
  EXPECT_EQ(a, draw_all(mach));  // reseed resets the run ordinal
  mach.reseed(78);
  EXPECT_NE(a, draw_all(mach));  // different seed, different streams
}

TEST(Machine, StreamOffsetReproducesLaterRuns) {
  cgm::machine mach(2, 123);
  auto draw_all = [](cgm::machine& m) {
    std::vector<std::uint64_t> draws(2);
    m.run([&](cgm::context& ctx) { draws[ctx.id()] = ctx.rng()(); });
    return draws;
  };
  std::vector<std::vector<std::uint64_t>> runs;
  for (int i = 0; i < 3; ++i) runs.push_back(draw_all(mach));

  // A fresh machine offset to run 2 reproduces the third run without
  // replaying the first two.
  cgm::machine skip(2, 123);
  skip.set_stream_offset(2);
  EXPECT_EQ(runs[2], draw_all(skip));
}

TEST(Machine, RngStreamsDifferAcrossProcessors) {
  cgm::machine mach(8, 11);
  std::vector<std::uint64_t> first(8);
  mach.run([&](cgm::context& ctx) { first[ctx.id()] = ctx.rng()(); });
  std::sort(first.begin(), first.end());
  EXPECT_EQ(std::adjacent_find(first.begin(), first.end()), first.end());
}

// --- accounting ---------------------------------------------------------------

TEST(Accounting, WordsCountedOnBothEnds) {
  cgm::machine mach(2, 6);
  const auto stats = mach.run([&](cgm::context& ctx) {
    if (ctx.id() == 0) {
      const std::vector<std::uint64_t> payload(10, 1);
      ctx.send(1u, 1, std::span<const std::uint64_t>(payload));
    }
    ctx.sync();
  });
  EXPECT_EQ(stats.per_proc[0].words_sent, 10u);
  EXPECT_EQ(stats.per_proc[1].words_received, 10u);
  EXPECT_EQ(stats.per_proc[0].messages_sent, 1u);
  EXPECT_EQ(stats.total_words(), 10u);
}

TEST(Accounting, SuperstepRecordsMaxima) {
  cgm::machine mach(3, 7);
  const auto stats = mach.run([&](cgm::context& ctx) {
    ctx.charge(ctx.id() * 100);  // proc 2 charges 200
    ctx.sync();
    ctx.charge(5);
  });
  ASSERT_GE(stats.supersteps.size(), 2u);
  EXPECT_EQ(stats.supersteps[0].max_compute, 200u);
  EXPECT_EQ(stats.supersteps.back().max_compute, 5u);
}

TEST(Accounting, HRelationIsMaxInOut) {
  cgm::machine mach(3, 8);
  const auto stats = mach.run([&](cgm::context& ctx) {
    // All procs send 4 words to proc 0: fan-in 12 at proc 0, fan-out 4.
    const std::vector<std::uint64_t> payload(4, 0);
    ctx.send(0u, 1, std::span<const std::uint64_t>(payload));
    ctx.sync();
  });
  EXPECT_EQ(stats.supersteps[0].max_words_out, 4u);
  EXPECT_EQ(stats.supersteps[0].max_words_in, 12u);
  EXPECT_EQ(stats.supersteps[0].h_relation(), 12u);
}

TEST(Accounting, ModelSecondsComposes) {
  cgm::machine mach(2, 9);
  const auto stats = mach.run([&](cgm::context& ctx) {
    ctx.charge(1000);
    ctx.send_value(1u - ctx.id(), 1, std::uint64_t{0});
    ctx.sync();
  });
  const cgm::cost_model m{1e-9, 1e-8, 1e-4};
  // One recorded superstep: 1000 ops, h = 1 word, + latency; the tail has
  // no compute.
  EXPECT_NEAR(stats.model_seconds(m), 1000 * 1e-9 + 1 * 1e-8 + 1e-4, 1e-12);
}

TEST(Accounting, RngDrawsCounted) {
  cgm::machine mach(2, 10);
  const auto stats = mach.run([&](cgm::context& ctx) {
    for (int i = 0; i < 5 + static_cast<int>(ctx.id()); ++i) (void)ctx.rng()();
  });
  EXPECT_EQ(stats.per_proc[0].rng_draws, 5u);
  EXPECT_EQ(stats.per_proc[1].rng_draws, 6u);
}

TEST(Accounting, PeakMemoryTracksMessagesAndNotes) {
  cgm::machine mach(2, 11);
  const auto stats = mach.run([&](cgm::context& ctx) {
    ctx.note_memory(1000);
    if (ctx.id() == 0) {
      const std::vector<std::uint64_t> payload(16, 0);  // 128 bytes
      ctx.send(1u, 1, std::span<const std::uint64_t>(payload));
    }
    ctx.sync();
  });
  EXPECT_GE(stats.per_proc[0].peak_memory_bytes, 1000u);
  EXPECT_GE(stats.per_proc[1].peak_memory_bytes, 128u);
}

// --- collectives ----------------------------------------------------------------

TEST(Collectives, AllToAllV) {
  cgm::machine mach(4, 20);
  mach.run([&](cgm::context& ctx) {
    std::vector<std::vector<std::uint64_t>> chunks(4);
    for (std::uint32_t d = 0; d < 4; ++d)
      chunks[d] = std::vector<std::uint64_t>(d + 1, ctx.id());  // d+1 copies of my id
    const auto got = cgm::all_to_all_v(ctx, std::span<const std::vector<std::uint64_t>>(chunks));
    ASSERT_EQ(got.size(), 4u);
    for (std::uint32_t s = 0; s < 4; ++s) {
      ASSERT_EQ(got[s].size(), ctx.id() + 1) << "chunk size from " << s;
      for (const auto v : got[s]) EXPECT_EQ(v, s);
    }
  });
}

TEST(Collectives, BroadcastAndValue) {
  cgm::machine mach(5, 21);
  mach.run([&](cgm::context& ctx) {
    std::vector<std::uint64_t> data;
    if (ctx.id() == 2) data = {10, 20, 30};
    const auto got = cgm::broadcast(ctx, 2u, std::span<const std::uint64_t>(data));
    EXPECT_EQ(got, (std::vector<std::uint64_t>{10, 20, 30}));
    const auto v = cgm::broadcast_value(ctx, 2u, std::uint64_t{ctx.id() == 2 ? 99u : 0u});
    EXPECT_EQ(v, 99u);
  });
}

TEST(Collectives, GatherScatterRoundTrip) {
  cgm::machine mach(3, 22);
  mach.run([&](cgm::context& ctx) {
    const std::vector<std::uint64_t> mine(ctx.id() + 1, ctx.id());
    const auto gathered = cgm::gather(ctx, 0u, std::span<const std::uint64_t>(mine));
    std::vector<std::vector<std::uint64_t>> chunks;
    if (ctx.id() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      for (std::uint32_t s = 0; s < 3; ++s) EXPECT_EQ(gathered[s].size(), s + 1);
      chunks = gathered;  // send everything back where it came from
    } else {
      chunks.resize(3);
    }
    const auto back =
        cgm::scatter(ctx, 0u, std::span<const std::vector<std::uint64_t>>(chunks));
    EXPECT_EQ(back, mine);
  });
}

TEST(Collectives, AllGather) {
  cgm::machine mach(4, 23);
  mach.run([&](cgm::context& ctx) {
    const std::uint64_t mine[1] = {ctx.id() * 7ull};
    const auto all = cgm::all_gather(ctx, std::span<const std::uint64_t>(mine, 1));
    ASSERT_EQ(all.size(), 4u);
    for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(all[s].front(), s * 7ull);
  });
}

TEST(Collectives, ReduceAndScan) {
  cgm::machine mach(6, 24);
  mach.run([&](cgm::context& ctx) {
    const auto total = cgm::all_reduce_sum(ctx, ctx.id() + 1);  // 1+2+...+6
    EXPECT_EQ(total, 21u);
    const auto below = cgm::exclusive_scan_sum(ctx, ctx.id() + 1);
    // prefix of (1, 2, ..., id)
    EXPECT_EQ(below, ctx.id() * (ctx.id() + 1) / 2);
  });
}

TEST(Collectives, EmptyChunksAreFine) {
  cgm::machine mach(3, 25);
  mach.run([&](cgm::context& ctx) {
    std::vector<std::vector<std::uint64_t>> chunks(3);  // all empty
    const auto got = cgm::all_to_all_v(ctx, std::span<const std::vector<std::uint64_t>>(chunks));
    for (const auto& g : got) EXPECT_TRUE(g.empty());
  });
}

TEST(Machine, ManyProcessorsSmoke) {
  // 64 virtual processors on however few cores the host has.
  cgm::machine mach(64, 26);
  const auto stats = mach.run([&](cgm::context& ctx) {
    const auto total = cgm::all_reduce_sum(ctx, 1);
    EXPECT_EQ(total, 64u);
  });
  EXPECT_EQ(stats.per_proc.size(), 64u);
}

}  // namespace
