// Tests for the plan/executor core: planner regime boundaries
// (tiny -> sequential, RAM-resident mid -> smp, over-budget -> em),
// bit-for-bit agreement of backend::automatic with the explicitly
// selected backend, the streaming apply layer's bulk I/O and O(M)
// residency contract, the process-wide engine registry, and the native
// permutation_stream mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/apply.hpp"
#include "core/backend.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/registry.hpp"
#include "core/repeat.hpp"
#include "em/block_device.hpp"
#include "stats/lehmer.hpp"

namespace {

using namespace cgp;

// A fixed synthetic profile: 8 threads, cache-resident Fisher-Yates at
// 2 ns/item degrading to 10 ns/item past 32 MiB, cheap streaming splits.
// Pinning the profile makes the regime assertions machine-independent.
core::machine_profile test_profile() {
  core::machine_profile prof;
  prof.threads = 8;
  prof.cache_items = 65536;
  prof.hit_bytes = std::uint64_t{1} << 18;
  prof.miss_bytes = std::uint64_t{1} << 25;
  prof.seq_ns_hit = 2.0;
  prof.seq_ns_miss = 10.0;
  prof.split_ns = 2.0;
  prof.level_overhead_ns = 3.0e4;
  prof.dispatch_overhead_ns = 5.0e4;
  prof.em_ns_per_item_pass = 25.0;
  return prof;
}

// --- planner regimes ---------------------------------------------------------

TEST(Planner, TinyInputsChooseSequential) {
  for (const std::uint64_t n : {2ull, 100ull, 1000ull, 65536ull}) {
    core::workload w;
    w.n = n;
    const auto plan = core::plan_permutation(w, test_profile());
    EXPECT_EQ(plan.chosen, core::backend::sequential) << "n=" << n;
    EXPECT_EQ(plan.threads, 1u);
  }
}

TEST(Planner, RamResidentMidSizesChooseSmp) {
  for (const std::uint64_t n : {1'000'000ull, 10'000'000ull, 100'000'000ull}) {
    core::workload w;
    w.n = n;
    const auto plan = core::plan_permutation(w, test_profile());
    EXPECT_EQ(plan.chosen, core::backend::smp) << "n=" << n;
    EXPECT_EQ(plan.threads, 8u);
    EXPECT_GE(plan.split_levels, 1u);
  }
}

TEST(Planner, BudgetBelowInputForcesEm) {
  core::workload w;
  w.n = 1'000'000;
  w.element_bytes = 8;
  w.memory_budget_bytes = w.n * 8 / 4;  // a quarter of the input
  const auto plan = core::plan_permutation(w, test_profile());
  EXPECT_EQ(plan.chosen, core::backend::em);
  // The RAM candidates must be marked infeasible, not merely slower.
  for (const auto& c : plan.candidates) {
    if (c.which != core::backend::em) {
      EXPECT_FALSE(c.feasible);
    }
  }
  // Geometry respects the budget and the engine's M >= 4B contract.
  EXPECT_LE(plan.em_memory_items * 8, w.memory_budget_bytes);
  EXPECT_GE(plan.em_memory_items, 4ull * plan.em_block_items);
  EXPECT_GE(plan.em_fan_out, 2u);
  EXPECT_EQ(plan.em_fan_out & (plan.em_fan_out - 1), 0u) << "fan-out must be a power of two";
  EXPECT_GE(plan.em_levels, 1u);
}

TEST(Planner, RepetitionsAmortizeDispatchOverhead) {
  // Just past the leaf cutoff the one-shot smp estimate carries the full
  // dispatch overhead; a repeated workload amortizes it away, so the
  // repeated prediction must be strictly cheaper (and never flips to a
  // slower backend).
  core::workload once;
  once.n = 200'000;
  core::workload often = once;
  often.repetitions = 10'000;
  const auto prof = test_profile();
  const auto p1 = core::plan_permutation(once, prof);
  const auto pn = core::plan_permutation(often, prof);
  ASSERT_EQ(p1.chosen, core::backend::smp);
  ASSERT_EQ(pn.chosen, core::backend::smp);
  EXPECT_LT(pn.predicted_seconds, p1.predicted_seconds);
}

TEST(Planner, ExplainNamesTheChoiceAndEveryCandidate) {
  core::workload w;
  w.n = 1'000'000;
  const auto plan = core::plan_permutation(w, test_profile());
  const std::string text = plan.explain();
  EXPECT_NE(text.find("backend=smp"), std::string::npos) << text;
  EXPECT_NE(text.find("seq:"), std::string::npos);
  EXPECT_NE(text.find("smp:"), std::string::npos);
  EXPECT_NE(text.find("em:"), std::string::npos);
  EXPECT_NE(text.find("<- chosen"), std::string::npos);
  EXPECT_FALSE(plan.phases.empty());
}

// --- automatic == explicit, bit for bit --------------------------------------

TEST(BackendAutomatic, MatchesSequentialAtTinyN) {
  const auto prof = test_profile();
  core::backend_options auto_opt;
  auto_opt.which = core::backend::automatic;
  auto_opt.profile = &prof;
  auto_opt.seed = 41;
  core::permutation_plan plan;
  auto_opt.plan_out = &plan;

  core::backend_options seq_opt;
  seq_opt.which = core::backend::sequential;
  seq_opt.seed = 41;

  const auto via_auto = core::random_permutation(4096, auto_opt);
  EXPECT_EQ(plan.chosen, core::backend::sequential);
  EXPECT_EQ(via_auto, core::random_permutation(4096, seq_opt));

  std::vector<std::uint32_t> payload(4096);
  std::iota(payload.begin(), payload.end(), 7u);
  EXPECT_EQ(core::permute(payload, auto_opt), core::permute(payload, seq_opt));
}

TEST(BackendAutomatic, MatchesSmpAtMidN) {
  const auto prof = test_profile();
  core::backend_options auto_opt;
  auto_opt.which = core::backend::automatic;
  auto_opt.profile = &prof;
  auto_opt.seed = 42;
  core::permutation_plan plan;
  auto_opt.plan_out = &plan;

  core::backend_options smp_opt;
  smp_opt.which = core::backend::smp;
  smp_opt.seed = 42;

  const auto via_auto = core::random_permutation(1'000'000, auto_opt);
  EXPECT_EQ(plan.chosen, core::backend::smp);
  EXPECT_EQ(via_auto, core::random_permutation(1'000'000, smp_opt));
}

TEST(BackendAutomatic, MatchesEmUnderBudget) {
  const auto prof = test_profile();
  core::backend_options auto_opt;
  auto_opt.which = core::backend::automatic;
  auto_opt.profile = &prof;
  auto_opt.seed = 43;
  auto_opt.memory_budget_bytes = 64 * 1024;  // << n * 8
  core::permutation_plan plan;
  auto_opt.plan_out = &plan;

  const auto via_auto = core::random_permutation(100'000, auto_opt);
  ASSERT_EQ(plan.chosen, core::backend::em);
  EXPECT_TRUE(stats::is_permutation_of_iota(via_auto));

  // Explicit em with the plan's geometry must reproduce it bit for bit.
  core::backend_options em_opt;
  em_opt.which = core::backend::em;
  em_opt.seed = 43;
  em_opt.em_engine.memory_items = plan.em_memory_items;
  em_opt.em_block_items = plan.em_block_items;
  EXPECT_EQ(via_auto, core::random_permutation(100'000, em_opt));
}

TEST(BackendAutomatic, PlanOutPopulatedForExplicitBackends) {
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.em_engine.memory_items = 512;
  opt.em_block_items = 32;
  core::permutation_plan plan;
  opt.plan_out = &plan;
  (void)core::random_permutation(10'000, opt);
  EXPECT_EQ(plan.chosen, core::backend::em);
  EXPECT_EQ(plan.em_memory_items, 512u);
  EXPECT_EQ(plan.em_block_items, 32u);
}

TEST(BackendAutomatic, BackendNameCoversAuto) {
  EXPECT_STREQ(core::backend_name(core::backend::automatic), "auto");
}

// --- streaming apply layer ---------------------------------------------------

TEST(ApplyStreamed, FillIotaUsesBulkAccountedWrites) {
  em::block_device dev(10'000, 64);
  core::fill_iota_streamed(dev, 10'000, 1024);
  for (std::uint64_t i = 0; i < 10'000; ++i) ASSERT_EQ(dev.peek(i), i);
  const auto st = dev.stats();
  EXPECT_GE(st.block_writes, 10'000 / 64);  // every word moved is accounted
  EXPECT_LE(st.transfers(), 2 * (10'000 / 64 + 2 * (10'000 / 1024 + 1)));
}

TEST(ApplyStreamed, PackedRoundTripPreservesNarrowRecords) {
  std::vector<std::uint16_t> src(5000);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::uint16_t>(i * 13);
  em::block_device dev(src.size(), 32);
  core::write_packed_streamed(dev, std::span<const std::uint16_t>(src), 256);
  std::vector<std::uint16_t> dst(src.size());
  core::read_packed_streamed(dev, std::span<std::uint16_t>(dst), 256);
  EXPECT_EQ(src, dst);
  EXPECT_GT(dev.stats().block_reads, 0u);
  EXPECT_GT(dev.stats().block_writes, 0u);
}

TEST(ApplyStreamed, GatherAppliesDevicePermutation) {
  // pi on the device: reverse permutation; gather must produce src reversed.
  const std::uint64_t n = 3000;
  em::block_device pi_dev(n, 16);
  std::vector<std::uint64_t> rev(n);
  for (std::uint64_t i = 0; i < n; ++i) rev[i] = n - 1 - i;
  pi_dev.write_items(0, rev);
  std::vector<double> src(n);
  for (std::uint64_t i = 0; i < n; ++i) src[i] = 0.5 * static_cast<double>(i);
  std::vector<double> dst(n);
  core::gather_streamed(pi_dev, std::span<const double>(src), std::span<double>(dst), 128);
  for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(dst[i], src[n - 1 - i]);
}

TEST(EmApply, PayloadShuffleEqualsGatherThroughIndexPermutation) {
  // The packed path's correctness argument: shuffling the payload on the
  // device is the same map as gathering through the index permutation the
  // same seed produces.
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.seed = 777;
  opt.em_block_items = 32;
  opt.em_engine.memory_items = 512;  // n >> M

  std::vector<std::uint64_t> payload(20'000);
  for (std::uint64_t i = 0; i < payload.size(); ++i) payload[i] = i * 3 + 1;
  const auto shuffled = core::permute(payload, opt);

  const auto pi = core::random_permutation(payload.size(), opt);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    ASSERT_EQ(shuffled[i], payload[static_cast<std::size_t>(pi[i])]) << "i=" << i;
  }
}

TEST(EmApply, WideRecordsGatherStreamedOffDevice) {
  struct wide {
    std::uint64_t key;
    std::uint64_t tag;
    std::uint64_t extra;
  };
  static_assert(sizeof(wide) == 24);
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.seed = 778;
  opt.em_block_items = 32;
  opt.em_engine.memory_items = 512;

  std::vector<wide> payload(10'000);
  for (std::uint64_t i = 0; i < payload.size(); ++i) payload[i] = {i, i * 7, ~i};
  const auto shuffled = core::permute(payload, opt);

  const auto pi = core::random_permutation(payload.size(), opt);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    const wide& expect = payload[static_cast<std::size_t>(pi[i])];
    ASSERT_EQ(shuffled[i].key, expect.key);
    ASSERT_EQ(shuffled[i].tag, expect.tag);
    ASSERT_EQ(shuffled[i].extra, expect.extra);
  }
}

TEST(EmApply, ReportCountsSetupAndReadbackTransfers) {
  // The old poke/peek path moved the identity on and the result off the
  // device with ZERO accounted transfers; the streaming layer must count
  // at least one write per block of fill and one read per block of
  // readback on top of the engine's own traffic.
  const std::uint64_t n = 20'000;
  const std::uint32_t b = 32;
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.seed = 779;
  opt.em_block_items = b;
  opt.em_engine.memory_items = 512;
  em::async_report report;
  opt.em_report_out = &report;
  (void)core::random_permutation(n, opt);
  EXPECT_GE(report.block_transfers, 2ull * (n / b)) << "fill + readback must be visible";
  EXPECT_GT(report.async_reads, 0u);
  EXPECT_GE(report.levels, 1u);
}

// --- engine registry ---------------------------------------------------------

TEST(Registry, SameConfigurationSharesOneEngine) {
  smp::engine_options opt;
  opt.threads = 2;
  smp::engine& a = core::shared_engine(opt);
  smp::engine& b = core::shared_engine(opt);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.threads(), 2u);
}

TEST(Registry, DistinctConfigurationsGetDistinctEngines) {
  smp::engine_options two;
  two.threads = 2;
  smp::engine_options three;
  three.threads = 3;
  EXPECT_NE(&core::shared_engine(two), &core::shared_engine(three));
}

TEST(Registry, SharedPoolIsTheSharedEnginesPool) {
  smp::engine_options opt;
  opt.threads = 2;
  EXPECT_EQ(&core::shared_pool(2), &core::shared_engine(opt).pool());
}

TEST(Registry, RepeatedDispatchDoesNotGrowTheRegistry) {
  core::backend_options opt;
  opt.which = core::backend::smp;
  opt.parallelism = 2;
  (void)core::random_permutation(100, opt);
  const std::size_t count = core::registered_engine_count();
  for (int i = 0; i < 5; ++i) (void)core::random_permutation(100, opt);
  EXPECT_EQ(core::registered_engine_count(), count);
}

// --- native permutation_stream mode ------------------------------------------

TEST(PermutationStreamNative, ValidDeterministicAndSeekable) {
  core::backend_options base;
  base.which = core::backend::smp;
  base.parallelism = 2;
  base.seed = 99;
  core::permutation_stream s1(base, 500);
  std::vector<std::vector<std::uint64_t>> first;
  for (int i = 0; i < 4; ++i) {
    first.push_back(s1.next());
    EXPECT_TRUE(stats::is_permutation_of_iota(first.back()));
  }
  EXPECT_NE(first[0], first[1]);

  core::permutation_stream s2(base, 500);
  s2.seek(2);
  EXPECT_EQ(s2.next(), first[2]);
}

TEST(PermutationStreamNative, AutomaticBackendDrawsThroughThePlanner) {
  const auto prof = test_profile();
  core::backend_options base;
  base.which = core::backend::automatic;
  base.profile = &prof;
  base.seed = 100;
  base.repetitions = 1000;
  core::permutation_stream stream(base, 256);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(stats::is_permutation_of_iota(stream.next()));
  }
  EXPECT_EQ(stream.count(), 3u);
}

}  // namespace
