// tests/support/perm_check.hpp
//
// Shared statistical test support for the permutation engines.  Every
// backend test suite (test_seq, test_smp, test_em, test_em_async) makes the
// same three kinds of claims; this header is the single implementation:
//
//  * exhaustive S_k uniformity -- run the full pipeline thousands of times
//    on k <= 5 items and chi-square the Lehmer-rank histogram over all k!
//    outcomes (the strongest empirical check of Theorem 1's uniformity);
//  * positional / moment checks at sizes where k! is unenumerable --
//    single-item position histograms, fixed-point and derangement moments
//    (#fixed points is asymptotically Poisson(1), P[derangement] -> 1/e);
//  * bit-reproducibility matrices -- a family of configurations (thread
//    counts, buffer depths, device geometries) that must all produce the
//    identical permutation for the same seed.
//
// Shuffle callbacks receive (span, rep) so both styles of suite fit: suites
// that thread one engine through all reps capture it and ignore `rep`;
// suites that re-key per rep derive a seed from `rep`.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "stats/moments.hpp"

namespace cgp::test_support {

/// Run `shuffle(span, rep)` `reps` times on iota(k) and chi-square the
/// Lehmer-rank histogram over all k! outcomes.  Every rep asserts the
/// output is a permutation.
template <typename ShuffleFn>
[[nodiscard]] stats::gof_result uniformity_gof(ShuffleFn&& shuffle, unsigned k, int reps) {
  const std::uint64_t cells = stats::factorial(k);
  std::vector<std::uint64_t> counts(cells, 0);
  std::vector<std::uint64_t> v(k);
  for (int rep = 0; rep < reps; ++rep) {
    std::iota(v.begin(), v.end(), 0);
    shuffle(std::span<std::uint64_t>(v), rep);
    EXPECT_TRUE(stats::is_permutation_of_iota(v));
    ++counts[stats::permutation_rank(v)];
  }
  return stats::chi_square_uniform(counts);
}

/// Assert exhaustive S_k uniformity at the suite-wide significance floor
/// (1e-9: catches real bias by orders of magnitude, never flakes).
template <typename ShuffleFn>
void expect_uniform_over_sk(ShuffleFn&& shuffle, unsigned k, int reps) {
  const auto res = uniformity_gof(std::forward<ShuffleFn>(shuffle), k, reps);
  EXPECT_GT(res.p_value, 1e-9) << "S" << k << " chi2=" << res.statistic;
}

/// Track which position item 0 of n lands in across reps and chi-square the
/// position histogram -- the single-item marginal of uniformity, usable at
/// sizes where k! is unenumerable.
template <typename ShuffleFn>
[[nodiscard]] stats::gof_result position_uniformity_gof(ShuffleFn&& shuffle, std::size_t n,
                                                        int reps) {
  std::vector<std::uint64_t> counts(n, 0);
  std::vector<std::uint64_t> v(n);
  for (int rep = 0; rep < reps; ++rep) {
    std::iota(v.begin(), v.end(), 0);
    shuffle(std::span<std::uint64_t>(v), rep);
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i] == 0) {
        ++counts[i];
        break;
      }
    }
  }
  return stats::chi_square_uniform(counts);
}

/// Fixed-point / derangement moments of a permutation sampler.
struct fixed_point_moments {
  double mean_fixed_points = 0.0;   ///< should be ~1 (Poisson(1) limit)
  double z_mean = 0.0;              ///< z-score of the mean against 1
  double derangement_fraction = 0.0;  ///< should be ~1/e
};

/// Sample `perm(rep)` -> pi `reps` times and accumulate fixed-point
/// statistics.  `n` must match the sampler's output size and be large
/// enough (>= ~20) for the Poisson(1) limit to hold to test accuracy.
template <typename PermFn>
[[nodiscard]] fixed_point_moments fixed_point_check(PermFn&& perm, int reps) {
  stats::running_moments fixed;
  std::uint64_t derangements = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::vector<std::uint64_t> pi = perm(rep);
    EXPECT_TRUE(stats::is_permutation_of_iota(pi));
    const std::uint64_t f = stats::count_fixed_points(pi);
    fixed.add(static_cast<double>(f));
    if (f == 0) ++derangements;
  }
  fixed_point_moments out;
  out.mean_fixed_points = fixed.mean();
  out.z_mean = fixed.z_against(1.0);
  out.derangement_fraction =
      static_cast<double>(derangements) / static_cast<double>(fixed.count());
  return out;
}

/// Assert the Poisson(1) fixed-point law: mean #fixed points within 5
/// standard errors of 1, derangement fraction within `tol` of 1/e.
template <typename PermFn>
void expect_fixed_point_law(PermFn&& perm, int reps, double tol = 0.05) {
  const auto m = fixed_point_check(std::forward<PermFn>(perm), reps);
  EXPECT_LT(std::abs(m.z_mean), 5.0) << "mean fixed points = " << m.mean_fixed_points;
  EXPECT_NEAR(m.derangement_fraction, 1.0 / std::exp(1.0), tol);
}

/// Bit-reproducibility matrix: `run(i)` for i in [0, variants) must produce
/// the identical permutation of iota (the variants differ in thread count,
/// buffer depth, device geometry, ... -- never in the seed).
template <typename VariantFn>
void expect_bit_identical(std::size_t variants, VariantFn&& run, const char* what) {
  std::vector<std::uint64_t> reference;
  for (std::size_t i = 0; i < variants; ++i) {
    std::vector<std::uint64_t> out = run(i);
    ASSERT_TRUE(stats::is_permutation_of_iota(out)) << what << ": variant " << i;
    if (i == 0) {
      reference = std::move(out);
    } else {
      ASSERT_EQ(out, reference) << what << ": variant " << i << " changed the permutation";
    }
  }
}

}  // namespace cgp::test_support
