// Tests for the auxiliary modules: exact 128-bit hypergeometric
// probabilities (the float oracle's oracle), Sattolo's cyclic shuffle, and
// the run-structure randomness tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "hyp/exact.hpp"
#include "hyp/pmf.hpp"
#include "rng/philox.hpp"
#include "seq/baselines.hpp"
#include "seq/fisher_yates.hpp"
#include "seq/sattolo.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "stats/runs.hpp"

namespace {

using namespace cgp;

// --- exact binomials / pmf -----------------------------------------------------

TEST(Exact, ChooseKnownValues) {
  EXPECT_EQ(static_cast<std::uint64_t>(hyp::choose_exact(5, 2)), 10u);
  EXPECT_EQ(static_cast<std::uint64_t>(hyp::choose_exact(52, 5)), 2598960u);
  EXPECT_EQ(static_cast<std::uint64_t>(hyp::choose_exact(10, 0)), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(hyp::choose_exact(10, 10)), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(hyp::choose_exact(3, 7)), 0u);
}

TEST(Exact, ChoosePascalIdentity) {
  for (std::uint64_t n = 1; n <= 40; ++n)
    for (std::uint64_t k = 1; k <= n; ++k)
      EXPECT_EQ(hyp::choose_exact(n, k),
                hyp::choose_exact(n - 1, k - 1) + hyp::choose_exact(n - 1, k));
}

TEST(Exact, Choose128FitsAndIsSymmetric) {
  // C(128, 64) ~ 2.4e37 < 2^128 ~ 3.4e38.
  const auto big = hyp::choose_exact(128, 64);
  EXPECT_GT(static_cast<double>(big), 2e37);
  EXPECT_EQ(hyp::choose_exact(128, 64), hyp::choose_exact(128, 64));
  EXPECT_EQ(hyp::choose_exact(100, 30), hyp::choose_exact(100, 70));
}

TEST(Exact, PmfSumsToExactlyOne) {
  const hyp::params p{20, 30, 40};
  hyp::u128 num = 0;
  const hyp::u128 den = hyp::choose_exact(70, 20);
  for (std::uint64_t k = hyp::support_min(p); k <= hyp::support_max(p); ++k)
    num += hyp::ways_exact(p, k);
  EXPECT_TRUE(num == den) << "sum of ways must equal C(n, t) exactly";
}

TEST(Exact, FloatPmfAgreesWithExactOracle) {
  // The lgamma-based pmf must match the exact rational to ~1e-12 relative
  // across full supports of several parameter sets.
  for (const auto& p : {hyp::params{10, 20, 30}, hyp::params{25, 60, 60},
                        hyp::params{64, 64, 64}, hyp::params{7, 3, 100}}) {
    for (std::uint64_t k = hyp::support_min(p); k <= hyp::support_max(p); ++k) {
      const double exact = hyp::pmf_exact(p, k).to_double();
      const double approx = hyp::pmf(p, k);
      EXPECT_NEAR(approx, exact, 1e-11 * exact + 1e-300)
          << "t=" << p.t << " w=" << p.w << " b=" << p.b << " k=" << k;
    }
  }
}

TEST(Exact, CdfAgreesWithExactPartialSums) {
  const hyp::params p{30, 50, 40};
  double exact_acc = 0.0;
  for (std::uint64_t k = hyp::support_min(p); k <= hyp::support_max(p); ++k) {
    exact_acc += hyp::pmf_exact(p, k).to_double();
    EXPECT_NEAR(hyp::cdf(p, k), exact_acc, 1e-11);
  }
}

// --- Sattolo ----------------------------------------------------------------------

TEST(Sattolo, AlwaysSingleCycle) {
  rng::philox4x64 e(1, 0);
  for (const std::size_t n : {2u, 3u, 5u, 17u, 100u}) {
    std::vector<std::uint64_t> v(n);
    seq::random_cyclic_permutation(e, v);
    EXPECT_TRUE(stats::is_permutation_of_iota(v));
    EXPECT_EQ(stats::count_cycles(v), 1u) << "n=" << n;
    EXPECT_EQ(stats::count_fixed_points(v), 0u);
  }
}

TEST(Sattolo, UniformOverCyclicS4) {
  // 4 items: (4-1)! = 6 cyclic permutations; chi-square over them.
  rng::philox4x64 e(2, 0);
  std::map<std::uint64_t, std::uint64_t> hist;
  std::vector<std::uint64_t> v(4);
  for (int rep = 0; rep < 6000; ++rep) {
    seq::random_cyclic_permutation(e, v);
    ++hist[stats::permutation_rank(v)];
  }
  ASSERT_EQ(hist.size(), 6u) << "exactly the 6 4-cycles must appear";
  std::vector<std::uint64_t> counts;
  for (const auto& [rank, c] : hist) counts.push_back(c);
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(Sattolo, IsNotUniformOverAllPermutations) {
  // Negative control: as a sample of ALL 4! permutations, Sattolo output
  // must fail chi-square catastrophically (18 of 24 cells are empty).
  rng::philox4x64 e(3, 0);
  std::vector<std::uint64_t> counts(24, 0);
  std::vector<std::uint64_t> v(4);
  for (int rep = 0; rep < 6000; ++rep) {
    seq::random_cyclic_permutation(e, v);
    ++counts[stats::permutation_rank(v)];
  }
  EXPECT_LT(stats::chi_square_uniform(counts).p_value, 1e-12);
}

TEST(Sattolo, TrivialSizes) {
  rng::philox4x64 e(4, 0);
  std::vector<std::uint64_t> empty;
  seq::sattolo(e, std::span<std::uint64_t>(empty));
  std::vector<std::uint64_t> one{0};
  seq::sattolo(e, std::span<std::uint64_t>(one));
  EXPECT_EQ(one[0], 0u);
}

// --- runs tests -----------------------------------------------------------------

TEST(Runs, AscendingRunsHandCases) {
  EXPECT_EQ(stats::ascending_runs(std::vector<std::uint64_t>{}), 0u);
  EXPECT_EQ(stats::ascending_runs(std::vector<std::uint64_t>{5}), 1u);
  EXPECT_EQ(stats::ascending_runs(std::vector<std::uint64_t>{1, 2, 3}), 1u);
  EXPECT_EQ(stats::ascending_runs(std::vector<std::uint64_t>{3, 2, 1}), 3u);
  EXPECT_EQ(stats::ascending_runs(std::vector<std::uint64_t>{1, 3, 2, 4}), 2u);
}

TEST(Runs, UniformShuffleHasExpectedRunCount) {
  rng::philox4x64 e(5, 0);
  const std::size_t n = 4096;
  std::vector<std::uint64_t> v(n);
  double zsum = 0.0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    std::iota(v.begin(), v.end(), 0);
    seq::fisher_yates(e, std::span<std::uint64_t>(v));
    zsum += stats::ascending_runs_z(v);
  }
  // Mean of reps z-scores ~ N(0, 1/reps).
  EXPECT_LT(std::fabs(zsum / reps), 6.0 / std::sqrt(static_cast<double>(reps)));
}

TEST(Runs, SortedInputFailsEverything) {
  std::vector<std::uint64_t> v(1024);
  std::iota(v.begin(), v.end(), 0);
  EXPECT_EQ(stats::ascending_runs(v), 1u);
  EXPECT_LT(stats::ascending_runs_z(v), -30.0);
  const auto rt = stats::runs_test_median(v);
  EXPECT_LT(rt.p_value, 1e-12);
  EXPECT_GT(stats::serial_correlation(v), 0.9);
}

TEST(Runs, UnderIteratedRifflePassesChiSquareCellsButFailsRunsTest) {
  // The complementary-instrument argument: bin a 2-round riffle's values
  // into 16 coarse position buckets for one tracked item and chi-square it
  // -- often unremarkable -- but the run structure gives it away
  // immediately.
  rng::philox4x64 e(6, 0);
  const std::size_t n = 4096;
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  seq::riffle_shuffle(e, std::span<std::uint64_t>(v), 2);
  const double z = stats::ascending_runs_z(v);
  EXPECT_LT(z, -20.0) << "2 riffle rounds leave ~4x fewer runs than uniform";
}

TEST(Runs, MedianRunsTestAcceptsUniform) {
  rng::philox4x64 e(7, 0);
  std::vector<std::uint64_t> v(4096);
  std::iota(v.begin(), v.end(), 0);
  seq::fisher_yates(e, std::span<std::uint64_t>(v));
  EXPECT_GT(stats::runs_test_median(v).p_value, 1e-6);
}

TEST(Runs, SerialCorrelationNearZeroForUniform) {
  rng::philox4x64 e(8, 0);
  std::vector<std::uint64_t> v(8192);
  std::iota(v.begin(), v.end(), 0);
  seq::fisher_yates(e, std::span<std::uint64_t>(v));
  EXPECT_LT(std::fabs(stats::serial_correlation(v)), 6.0 / std::sqrt(8192.0));
}

TEST(Runs, ExtremeSequencesHitBothTails) {
  // Strictly descending: every adjacent pair is a descent -> n runs, the
  // maximum; z must be far in the upper tail (and serial correlation is
  // +1: descending is still perfectly linearly dependent).
  std::vector<std::uint64_t> desc(512);
  for (std::size_t i = 0; i < desc.size(); ++i) desc[i] = desc.size() - i;
  EXPECT_EQ(stats::ascending_runs(desc), desc.size());
  EXPECT_GT(stats::ascending_runs_z(desc), 30.0);
  EXPECT_GT(stats::serial_correlation(desc), 0.9);

  // High-low interleave (n/2, 0, n/2+1, 1, ...): run count is ~n/2 (null-
  // like!) but the lag-1 correlation is strongly negative -- the reason
  // the suite carries several complementary instruments.
  std::vector<std::uint64_t> zigzag;
  for (std::uint64_t i = 0; i < 256; ++i) {
    zigzag.push_back(256 + i);
    zigzag.push_back(i);
  }
  EXPECT_LT(stats::serial_correlation(zigzag), -0.5);
  EXPECT_LT(stats::runs_test_median(zigzag).p_value, 1e-12);
}

}  // namespace
