// Tests for the parallel matrix samplers (Algorithms 5 and 6) and the
// replicated baseline: margin correctness over processor-count sweeps, the
// exact entry law (they must draw from the same distribution as the
// sequential samplers), and the per-processor resource bounds of
// Propositions 8 and 9 / Theorem 2.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cgm/machine.hpp"
#include "core/comm_matrix.hpp"
#include "core/parallel_matrix.hpp"
#include "hyp/pmf.hpp"
#include "stats/chisq.hpp"
#include "util/prefix.hpp"

namespace {

using namespace cgp;
using core::matrix_options;

enum class alg { logp, optimal, replicated };

// Run one parallel sampling and return the full matrix (rows collected in
// the shared result buffer; disjoint writes are race-free).
core::comm_matrix sample_full(std::uint32_t p, std::uint64_t block, alg which,
                              std::uint64_t seed) {
  cgm::machine mach(p, seed);
  core::comm_matrix a(p, p);
  mach.run([&](cgm::context& ctx) {
    std::vector<std::uint64_t> row;
    switch (which) {
      case alg::logp:
        row = core::sample_matrix_logp(ctx, block);
        break;
      case alg::optimal:
        row = core::sample_matrix_optimal(ctx, block);
        break;
      case alg::replicated: {
        const std::vector<std::uint64_t> margins(p, block);
        row = core::sample_matrix_replicated(ctx, margins, margins);
        break;
      }
    }
    ASSERT_EQ(row.size(), p);
    std::copy(row.begin(), row.end(), a.row(ctx.id()).begin());
  });
  return a;
}

class ParallelAlg : public ::testing::TestWithParam<alg> {};

TEST_P(ParallelAlg, MarginsHoldAcrossProcessorCounts) {
  for (const std::uint32_t p : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 12u, 16u, 33u}) {
    const std::uint64_t block = 32;
    const auto a = sample_full(p, block, GetParam(), 9000 + p);
    const std::vector<std::uint64_t> margins(p, block);
    EXPECT_TRUE(a.satisfies_margins(margins, margins)) << "p=" << p;
  }
}

TEST_P(ParallelAlg, EntryLawMatchesProposition3) {
  // p=4, M=8: a_21 ~ h(t=8, w=8, b=24).  4000 machine runs.
  const std::uint32_t p = 4;
  const std::uint64_t block = 8;
  const hyp::params law{block, block, (p - 1) * block};
  const auto probs = hyp::pmf_table(law);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  for (int rep = 0; rep < 4000; ++rep) {
    const auto a = sample_full(p, block, GetParam(), 31000 + rep);
    ++counts[a(2, 1)];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST_P(ParallelAlg, MergedHalvesFollowCoarseLaw) {
  // Proposition 4 applied to the parallel output: merge p=4 into 2x2 and
  // check the law of the merged corner.
  const std::uint32_t p = 4;
  const std::uint64_t block = 8;
  const std::vector<std::uint32_t> bounds{0, 2, 4};
  const hyp::params law{2 * block, 2 * block, 2 * block};
  const auto probs = hyp::pmf_table(law);
  std::vector<std::uint64_t> counts(probs.size(), 0);
  for (int rep = 0; rep < 4000; ++rep) {
    const auto a = sample_full(p, block, GetParam(), 57000 + rep);
    const auto m = a.merge(bounds, bounds);
    ++counts[m(0, 0)];
  }
  const auto res = stats::chi_square_gof(counts, probs);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

INSTANTIATE_TEST_SUITE_P(Algs, ParallelAlg,
                         ::testing::Values(alg::logp, alg::optimal, alg::replicated),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case alg::logp: return "algorithm5_logp";
                             case alg::optimal: return "algorithm6_optimal";
                             default: return "replicated";
                           }
                         });

// --- resource bounds (Propositions 8, 9) --------------------------------------

struct resources {
  std::uint64_t max_words;
  std::uint64_t max_hyp;
  std::uint64_t total_words;
  std::uint64_t supersteps;
};

resources measure(std::uint32_t p, alg which) {
  cgm::machine mach(p, 123);
  const auto stats = mach.run([&](cgm::context& ctx) {
    switch (which) {
      case alg::logp:
        (void)core::sample_matrix_logp(ctx, 1024);
        break;
      case alg::optimal:
        (void)core::sample_matrix_optimal(ctx, 1024);
        break;
      case alg::replicated: {
        const std::vector<std::uint64_t> margins(ctx.nprocs(), 1024);
        (void)core::sample_matrix_replicated(ctx, margins, margins);
        break;
      }
    }
  });
  resources r{};
  r.max_words = stats.max_words_per_proc();
  r.max_hyp = 0;
  for (const auto& ps : stats.per_proc) r.max_hyp = std::max(r.max_hyp, ps.hyp_calls);
  r.total_words = stats.total_words();
  r.supersteps = stats.per_proc.front().supersteps;
  return r;
}

TEST(ResourceBounds, Algorithm6CommunicationIsLinearPerProcessor) {
  // Theta(p) words per processor: doubling p should roughly double the
  // per-processor maximum, NOT quadruple it.
  const auto r64 = measure(64, alg::optimal);
  const auto r256 = measure(256, alg::optimal);
  const double growth = static_cast<double>(r256.max_words) / static_cast<double>(r64.max_words);
  EXPECT_LT(growth, 4.0 * 1.6) << "expected ~4x for 4x processors (Theta(p) per proc)";
  EXPECT_GT(growth, 4.0 / 1.6);
  EXPECT_LE(r256.max_words, 40u * 256u) << "absolute Theta(p) bound with generous constant";
}

TEST(ResourceBounds, Algorithm5CarriesTheLogFactor) {
  // Alg 5's head sends a length-p vector every level: Theta(p log p) per
  // processor vs Alg 6's Theta(p).  The *growth rate* separates them even
  // at moderate p (measured: Alg 5 is exactly p log2 p; Alg 6 stays below
  // 6p at every p):
  const auto r5_small = measure(64, alg::logp);
  const auto r5_large = measure(1024, alg::logp);
  const auto r6_small = measure(64, alg::optimal);
  const auto r6_large = measure(1024, alg::optimal);
  const double growth5 =
      static_cast<double>(r5_large.max_words) / static_cast<double>(r5_small.max_words);
  const double growth6 =
      static_cast<double>(r6_large.max_words) / static_cast<double>(r6_small.max_words);
  // 16x processors: Theta(p) grows ~16x, Theta(p log p) grows ~16*10/6 ~ 27x.
  EXPECT_GT(growth5, 1.2 * growth6);
  // And at p = 1024 the absolute gap is visible too.
  EXPECT_GT(static_cast<double>(r5_large.max_words), 1.5 * static_cast<double>(r6_large.max_words));
  EXPECT_LE(r6_large.max_words, 8u * 1024u) << "Alg 6 must stay Theta(p) per processor";
}

TEST(ResourceBounds, HypCallsPerProcessor) {
  // Alg 6: Theta(p) calls per processor; Alg 5: Theta(p log p).
  const std::uint32_t p = 256;
  const auto r5 = measure(p, alg::logp);
  const auto r6 = measure(p, alg::optimal);
  EXPECT_LE(r6.max_hyp, 20u * p);
  EXPECT_GT(r5.max_hyp, r6.max_hyp);
}

TEST(ResourceBounds, SuperstepCountIsLogarithmic) {
  const auto r16 = measure(16, alg::optimal);
  const auto r256 = measure(256, alg::optimal);
  // levels + redistribution + tail: ~log2(p) + O(1).
  EXPECT_LE(r16.supersteps, 8u);
  EXPECT_LE(r256.supersteps, 12u);
}

TEST(ResourceBounds, ReplicatedDoesQuadraticLocalWorkButNoCommunication) {
  const auto r = measure(64, alg::replicated);
  EXPECT_EQ(r.total_words, 0u);
}

// --- determinism ---------------------------------------------------------------

TEST(Determinism, SameSeedSameMatrix) {
  const auto a = sample_full(8, 16, alg::optimal, 777);
  const auto b = sample_full(8, 16, alg::optimal, 777);
  EXPECT_EQ(a, b);
  const auto c = sample_full(8, 16, alg::optimal, 778);
  EXPECT_NE(a, c);
}

TEST(Determinism, ReplicatedRowsAssembleConsistentMatrix) {
  // Every processor samples the same matrix; the assembled rows must form a
  // matrix satisfying the margins (verified inside sample_full).
  const auto a = sample_full(6, 10, alg::replicated, 779);
  const std::vector<std::uint64_t> margins(6, 10);
  EXPECT_TRUE(a.satisfies_margins(margins, margins));
}

TEST(EdgeCases, SingleProcessor) {
  const auto a = sample_full(1, 42, alg::optimal, 780);
  EXPECT_EQ(a(0, 0), 42u);
  const auto b = sample_full(1, 42, alg::logp, 781);
  EXPECT_EQ(b(0, 0), 42u);
}

TEST(EdgeCases, BlockSizeOne) {
  // n = p: every processor holds exactly one item; rows are unit vectors.
  const auto a = sample_full(8, 1, alg::optimal, 782);
  const std::vector<std::uint64_t> margins(8, 1);
  EXPECT_TRUE(a.satisfies_margins(margins, margins));
}

TEST(EdgeCases, BlockSizeZero) {
  // Degenerate but legal: the all-zero matrix.
  const auto a = sample_full(4, 0, alg::optimal, 783);
  EXPECT_EQ(a.total(), 0u);
}

}  // namespace
