// Tests for the external-memory substrate and the EM shuffle: device and
// buffer-pool semantics, exact uniformity of the external shuffle on tiny
// devices, content preservation at scale, and the I/O complexity
// separation between the scan-based shuffle and the naive baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "em/block_device.hpp"
#include "em/shuffle.hpp"
#include "rng/philox.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "support/perm_check.hpp"

namespace {

using namespace cgp;

// --- block device ---------------------------------------------------------------

TEST(BlockDevice, ReadWriteRoundTrip) {
  em::block_device dev(100, 8);
  EXPECT_EQ(dev.block_count(), 13u);  // ceil(100/8)
  std::vector<std::uint64_t> blk(8);
  std::iota(blk.begin(), blk.end(), 40);
  dev.write_block(5, blk);
  std::vector<std::uint64_t> got(8);
  dev.read_block(5, got);
  EXPECT_EQ(got, blk);
  EXPECT_EQ(dev.stats().block_reads, 1u);
  EXPECT_EQ(dev.stats().block_writes, 1u);
}

TEST(BlockDevice, PokePeekBypassAccounting) {
  em::block_device dev(16, 4);
  dev.poke(7, 99);
  EXPECT_EQ(dev.peek(7), 99u);
  EXPECT_EQ(dev.stats().transfers(), 0u);
}

TEST(BufferPool, CachesAndEvictsLru) {
  em::block_device dev(64, 4);  // 16 blocks
  for (std::uint64_t i = 0; i < 64; ++i) dev.poke(i, i);
  em::buffer_pool pool(dev, 2);

  EXPECT_EQ(pool.read_item(0), 0u);   // miss: block 0
  EXPECT_EQ(pool.read_item(1), 1u);   // hit
  EXPECT_EQ(pool.read_item(4), 4u);   // miss: block 1
  EXPECT_EQ(pool.read_item(2), 2u);   // hit (block 0 still resident)
  EXPECT_EQ(pool.read_item(8), 8u);   // miss: evicts LRU = block 1
  EXPECT_EQ(pool.read_item(5), 5u);   // miss again (block 1 was evicted)
  EXPECT_EQ(pool.stats().cache_hits, 2u);
  EXPECT_EQ(pool.stats().block_reads, 4u);
}

TEST(BufferPool, WriteBackOnEvictionAndFlush) {
  em::block_device dev(16, 4);
  {
    em::buffer_pool pool(dev, 1);
    pool.write_item(0, 111);
    pool.write_item(5, 222);  // evicts dirty block 0 -> write-back
    EXPECT_EQ(dev.peek(0), 111u);
    EXPECT_EQ(dev.peek(5), 0u);  // block 1 still dirty in pool
  }  // destructor flushes
  EXPECT_EQ(dev.peek(5), 222u);
}

TEST(BufferPool, SequentialScanCostsOneReadPerBlock) {
  em::block_device dev(256, 8);
  em::buffer_pool pool(dev, 4);
  for (std::uint64_t i = 0; i < 256; ++i) (void)pool.read_item(i);
  EXPECT_EQ(pool.stats().block_reads, 32u);  // 256/8
  EXPECT_EQ(pool.stats().cache_hits, 256u - 32u);
}

// --- EM shuffle: correctness -------------------------------------------------------

TEST(EmShuffle, PreservesMultiset) {
  rng::philox4x64 e(1, 0);
  const std::uint64_t n = 1000;
  em::block_device dev(n, 16);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  const auto rep = em::em_shuffle(e, dev, n, /*memory_items=*/128);
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = dev.peek(i);
  EXPECT_TRUE(stats::is_permutation_of_iota(out));
  EXPECT_GE(rep.levels, 1u) << "must have actually recursed";
}

TEST(EmShuffle, InMemoryCaseIsOnePass) {
  rng::philox4x64 e(2, 0);
  const std::uint64_t n = 64;
  em::block_device dev(n, 8);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  const auto rep = em::em_shuffle(e, dev, n, /*memory_items=*/n);
  EXPECT_EQ(rep.levels, 0u);
  EXPECT_EQ(rep.block_transfers, 16u);  // 8 reads + 8 writes
}

// Adapt the device-resident shuffle to the span-based support harness:
// load the span onto a fresh device, shuffle, read it back.
template <typename Engine>
void em_shuffle_span(Engine& e, std::span<std::uint64_t> v, std::uint32_t block_items,
                     std::uint64_t memory_items) {
  em::block_device dev(v.size(), block_items);
  for (std::uint64_t i = 0; i < v.size(); ++i) dev.poke(i, v[i]);
  (void)em::em_shuffle(e, dev, v.size(), memory_items);
  for (std::uint64_t i = 0; i < v.size(); ++i) v[i] = dev.peek(i);
}

TEST(EmShuffle, ExhaustiveUniformityOverS5OnTinyDevice) {
  // 5 items, 2-item blocks, memory of 8 items: forces real scatter levels;
  // chi-square over all 120 outcomes (shared harness).
  rng::philox4x64 e(3, 0);
  test_support::expect_uniform_over_sk(
      [&](std::span<std::uint64_t> v, int) { em_shuffle_span(e, v, 2, 8); }, 5, 120 * 100);
}

TEST(EmShuffle, SingleItemPositionUniformAtDepth) {
  // Track where item 0 of 64 lands under aggressive recursion.
  rng::philox4x64 e(4, 0);
  const auto res = test_support::position_uniformity_gof(
      [&](std::span<std::uint64_t> v, int) { em_shuffle_span(e, v, 4, 16); }, 64, 16000);
  EXPECT_GT(res.p_value, 1e-9);
}

TEST(NaiveEmShuffle, PreservesMultisetAndShuffles) {
  rng::philox4x64 e(5, 0);
  const std::uint64_t n = 512;
  em::block_device dev(n, 8);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  (void)em::naive_em_fisher_yates(e, dev, n, /*frames=*/4);
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = dev.peek(i);
  EXPECT_TRUE(stats::is_permutation_of_iota(out));
  EXPECT_NE(out.front(), 0u);  // astronomically unlikely to be untouched
}

// --- EM shuffle: I/O complexity -----------------------------------------------------

TEST(EmIo, ScanShuffleIsLinearInBlocksPerLevel) {
  // transfers / (n/B) must stay ~constant per level: measure at two sizes
  // with the same (M, B) and compare against the level count.
  rng::philox4x64 e(6, 0);
  const std::uint32_t b = 16;
  const std::uint64_t mem = 256;

  const auto run = [&](std::uint64_t n) {
    em::block_device dev(n, b);
    for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
    return em::em_shuffle(e, dev, n, mem);
  };
  const auto r1 = run(4096);
  const auto r2 = run(16384);
  const double per_block_1 = static_cast<double>(r1.block_transfers) / (4096.0 / b);
  const double per_block_2 = static_cast<double>(r2.block_transfers) / (16384.0 / b);
  // One extra level costs ~5 transfers per block; levels grow by
  // log_K(16384/4096) = log_8(4) < 1 extra level here.
  EXPECT_LT(per_block_2, per_block_1 + 7.0);
  EXPECT_GE(r2.levels, r1.levels);
}

TEST(EmIo, NaiveBaselinePaysPerItemOnceColdAndScanWinsBig) {
  // The I/O-model gap grows with B; at B = 64 the separation is decisive
  // (at tiny B the scan's per-level constant eats most of the win).
  rng::philox4x64 e(7, 0);
  const std::uint64_t n = 8192;
  const std::uint32_t b = 64;
  const std::uint64_t mem = 16ull * b;  // 16 frames

  em::block_device dev1(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev1.poke(i, i);
  const auto naive = em::naive_em_fisher_yates(e, dev1, n, 16);

  em::block_device dev2(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev2.poke(i, i);
  const auto scan = em::em_shuffle(e, dev2, n, mem);

  // Naive: ~one transfer per item (n >> M).  Scan: ~6 per block per level.
  EXPECT_GT(naive.block_transfers, n / 2) << "cold pool must miss on most swaps";
  EXPECT_LT(scan.block_transfers, naive.block_transfers / 4)
      << "the coarse-grained shuffle must win by far";
}

TEST(EmIo, RngBudgetIsOnePerItemPlusLabels) {
  // Scan shuffle: labels are packed many-per-word, plus 1 draw/item in the
  // leaves => total well under 2n.
  rng::philox4x64 e(8, 0);
  const std::uint64_t n = 4096;
  em::block_device dev(n, 16);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  const auto rep = em::em_shuffle(e, dev, n, 256);
  EXPECT_LT(rep.rng_words, 2 * n);
}

}  // namespace
