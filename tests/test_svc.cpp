// Tests for the concurrent permutation service (src/svc/):
//
//   * service determinism / interleaving invariance: N client threads x M
//     request shapes submitted in randomized order produce bit-identical
//     output to serial context::shuffle with the same (client_id,
//     ordinal) seed keying, under scheduler worker counts {1, 2, 4} and
//     with batching on and off;
//   * whole, in-place, and chunked (stream) delivery, including the
//     device-backed stream of an out-of-core-planned job;
//   * admission control: a full bounded queue rejects (or blocks, per
//     policy) instead of growing without bound -- pinned at the scheduler
//     level with gated synthetic tasks and at the server level under a
//     flood (both also run under ASan in CI's sanitize job);
//   * batching mechanics (one pool dispatch per tick's batch) and the
//     plan cache on the server's dispatch path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "core/registry.hpp"
#include "stats/lehmer.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/stream.hpp"

namespace {

using namespace cgp;

constexpr std::uint64_t kSeed = 0x5E12B1CE0001ull;

std::vector<std::uint64_t> iota_vec(std::uint64_t n) {
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// ---------------------------------------------------------------------------
// Seed keying

TEST(JobSeed, PureAndCollisionFreeOverSmallGrid) {
  EXPECT_EQ(svc::job_seed(kSeed, 3, 7), svc::job_seed(kSeed, 3, 7));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t c = 0; c < 16; ++c) {
    for (std::uint64_t k = 0; k < 16; ++k) seeds.push_back(svc::job_seed(kSeed, c, k));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Distinct server seeds decorrelate the whole grid.
  EXPECT_NE(svc::job_seed(kSeed, 0, 0), svc::job_seed(kSeed + 1, 0, 0));
}

// ---------------------------------------------------------------------------
// Determinism / interleaving invariance (the service's acceptance bar)

TEST(ServiceDeterminism, InterleavingWorkersAndBatchingInvariant) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  const std::vector<std::uint64_t> shapes = {1000, 30000, 100000};  // spans the cache cutoff

  // Serial reference: a bare context with the server's configuration,
  // driven by the same (client, ordinal) seed keying.
  cgp::context ctx;
  std::vector<std::vector<std::vector<std::uint64_t>>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    expected[c].resize(kPerClient);
    for (int k = 0; k < kPerClient; ++k) {
      auto v = iota_vec(shapes[static_cast<std::size_t>(k) % shapes.size()]);
      ctx.shuffle(std::span<std::uint64_t>(v),
                  svc::job_seed(kSeed, static_cast<std::uint64_t>(c),
                                static_cast<std::uint64_t>(k)));
      expected[c][k] = std::move(v);
    }
  }

  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    for (const bool batching : {false, true}) {
      svc::server_options so;
      so.seed = kSeed;
      so.scheduler_workers = workers;
      so.batching = batching;
      svc::server srv(so);

      std::vector<std::vector<std::vector<std::uint64_t>>> buf(kClients);
      std::vector<std::vector<svc::future<void>>> futs(kClients);
      for (int c = 0; c < kClients; ++c) {
        buf[c].resize(kPerClient);
        futs[c].resize(kPerClient);
        for (int k = 0; k < kPerClient; ++k) {
          buf[c][k] = iota_vec(shapes[static_cast<std::size_t>(k) % shapes.size()]);
        }
      }

      // Each client submits ITS jobs in order from its own thread; the
      // cross-client interleaving is randomized with per-thread jitter.
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          std::mt19937 jitter(static_cast<unsigned>(c + 131 * workers + (batching ? 7 : 0)));
          for (int k = 0; k < kPerClient; ++k) {
            for (unsigned y = jitter() % 4; y > 0; --y) std::this_thread::yield();
            futs[c][k] = srv.submit_shuffle(static_cast<std::uint64_t>(c),
                                            std::span<std::uint64_t>(buf[c][k]));
          }
        });
      }
      for (auto& t : clients) t.join();

      for (int c = 0; c < kClients; ++c) {
        for (int k = 0; k < kPerClient; ++k) {
          ASSERT_NO_THROW(futs[c][k].get());
          EXPECT_EQ(buf[c][k], expected[c][k])
              << "client " << c << " ordinal " << k << " workers " << workers
              << " batching " << batching;
        }
      }
      const svc::server_stats st = srv.stats();
      EXPECT_EQ(st.done, static_cast<std::uint64_t>(kClients * kPerClient));
      EXPECT_EQ(st.failed, 0u);
      EXPECT_EQ(st.rejected, 0u);
    }
  }
}

TEST(ServiceDeterminism, PermutationJobMatchesContextRandomPermutation) {
  svc::server_options so;
  so.seed = kSeed;
  svc::server srv(so);
  cgp::context ctx;

  for (const std::uint64_t n : {500ull, 200000ull}) {
    auto fut = srv.submit_permutation(/*client=*/9, n);
    const svc::permutation got = fut.get();
    ASSERT_TRUE(stats::is_permutation_of_iota(got));
    EXPECT_EQ(got, ctx.random_permutation(n, fut.seed()));
  }
}

// ---------------------------------------------------------------------------
// Delivery shapes

TEST(ServiceStream, ChunksReassembleTheWholePermutationAtAnyChunkSize) {
  svc::server_options so;
  so.seed = kSeed;
  so.stream_chunk_items = 4096;
  svc::server srv(so);
  cgp::context ctx;

  const std::uint64_t n = 100000;
  svc::stream s = srv.submit_stream(/*client=*/1, n);
  EXPECT_EQ(s.size(), n);
  EXPECT_EQ(s.chunk_items(), 4096u);

  std::vector<std::uint64_t> assembled;
  assembled.reserve(n);
  while (auto chunk = s.next_chunk()) {
    assembled.insert(assembled.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(s.consumed(), n);
  EXPECT_EQ(assembled, ctx.random_permutation(n, s.seed()));

  // Chunk boundaries are invisible: re-read with a pathological chunk
  // size and compare.
  s.seek(0);
  std::vector<std::uint64_t> reread;
  std::vector<std::uint64_t> tiny(977);
  while (std::size_t got = s.read(std::span<std::uint64_t>(tiny))) {
    reread.insert(reread.end(), tiny.begin(), tiny.begin() + static_cast<std::ptrdiff_t>(got));
  }
  EXPECT_EQ(reread, assembled);
}

TEST(ServiceStream, OutOfCorePlannedStreamStaysOnDeviceAndMatchesContext) {
  // A budget far below n * 8 forces the planner out of core; the stream
  // then keeps the permutation on the em device and serves accounted
  // range reads.
  svc::server_options so;
  so.seed = kSeed;
  so.memory_budget_bytes = 100 * 1024;
  svc::server srv(so);

  const std::uint64_t n = 50000;
  svc::stream s = srv.submit_stream(/*client=*/2, n);

  std::vector<std::uint64_t> assembled;
  while (auto chunk = s.next_chunk()) {
    assembled.insert(assembled.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(s.plan().chosen, core::backend::em);
  ASSERT_TRUE(stats::is_permutation_of_iota(assembled));

  cgp::context_options co;
  co.memory_budget_bytes = so.memory_budget_bytes;
  cgp::context ctx(co);
  EXPECT_EQ(assembled, ctx.random_permutation(n, s.seed()));
}

TEST(ServiceFutures, DefaultInvalidAndWholeDeliveryMovesOut) {
  svc::future<svc::permutation> empty;
  EXPECT_FALSE(empty.valid());

  svc::server srv;
  auto fut = srv.submit_permutation(0, 1000);
  EXPECT_TRUE(fut.valid());
  EXPECT_EQ(fut.wait(), svc::job_status::done);
  const svc::permutation pi = fut.get();
  EXPECT_EQ(pi.size(), 1000u);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

// ---------------------------------------------------------------------------
// Admission control / backpressure

// Scheduler-level pin with gated tasks: fully deterministic.
TEST(Backpressure, RejectPolicyBoundsTheQueueAndRefusesOverflow) {
  std::mutex gate_m;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> ran{0};

  const auto gated = [&] {
    std::unique_lock<std::mutex> lock(gate_m);
    gate_cv.wait(lock, [&] { return gate_open; });
    ran.fetch_add(1);
  };
  const auto counted = [&] { ran.fetch_add(1); };

  svc::scheduler_options so;
  so.workers = 1;
  so.queue_capacity = 2;
  so.policy = svc::admission::reject;
  svc::scheduler sched(core::shared_pool(1), so);

  // The worker takes the gated task and blocks inside it; the queue is
  // then exactly the bounded buffer.
  ASSERT_TRUE(sched.submit({false, gated}));
  while (sched.stats().submitted == 0) std::this_thread::yield();
  // Give the worker a moment to pop the gate task off the queue.
  while (true) {
    const auto st = sched.stats();
    if (st.submitted == 1 && st.max_queue_depth >= 1) break;
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    if (sched.submit({true, counted})) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_LE(accepted, 2 + 1);  // capacity, +1 if the worker popped early
  EXPECT_GE(rejected, 7);

  {
    const std::lock_guard<std::mutex> lock(gate_m);
    gate_open = true;
  }
  gate_cv.notify_all();
  sched.close();

  EXPECT_EQ(ran.load(), 1 + accepted);  // every admitted task ran, none leaked
  const auto st = sched.stats();
  EXPECT_LE(st.max_queue_depth, so.queue_capacity);
  EXPECT_GE(st.rejected, static_cast<std::uint64_t>(rejected));
}

TEST(Backpressure, BlockPolicyStallsTheSubmitterInsteadOfGrowing) {
  std::mutex gate_m;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> ran{0};

  const auto gated = [&] {
    std::unique_lock<std::mutex> lock(gate_m);
    gate_cv.wait(lock, [&] { return gate_open; });
    ran.fetch_add(1);
  };
  const auto counted = [&] { ran.fetch_add(1); };

  svc::scheduler_options so;
  so.workers = 1;
  so.queue_capacity = 2;
  so.policy = svc::admission::block;
  svc::scheduler sched(core::shared_pool(1), so);

  ASSERT_TRUE(sched.submit({false, gated}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Flood from a helper thread: it must BLOCK (not fail, not grow the
  // queue past capacity) until the gate opens.
  constexpr int kFlood = 8;
  std::atomic<int> accepted{0};
  std::thread flooder([&] {
    for (int i = 0; i < kFlood; ++i) {
      if (sched.submit({true, counted})) accepted.fetch_add(1);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The flooder cannot have pushed more than capacity (+1 in flight).
  EXPECT_LE(accepted.load(), static_cast<int>(so.queue_capacity) + 1);

  {
    const std::lock_guard<std::mutex> lock(gate_m);
    gate_open = true;
  }
  gate_cv.notify_all();
  flooder.join();
  sched.close();

  EXPECT_EQ(accepted.load(), kFlood);  // block policy never drops work
  EXPECT_EQ(ran.load(), 1 + kFlood);
  const auto st = sched.stats();
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_LE(st.max_queue_depth, so.queue_capacity);
}

// Server-level flood: rejected futures surface the status, accepted jobs
// all complete, queue memory stays bounded.
TEST(Backpressure, ServerRejectsOverflowAndCompletesTheRest) {
  svc::server_options so;
  so.seed = kSeed;
  so.queue_capacity = 4;
  so.policy = svc::admission::reject;
  svc::server srv(so);

  constexpr int kFlood = 64;
  const std::uint64_t n = 200000;
  std::vector<std::vector<std::uint64_t>> bufs(kFlood);
  std::vector<svc::future<void>> futs(kFlood);
  for (int i = 0; i < kFlood; ++i) {
    bufs[i] = iota_vec(n);
    futs[i] = srv.submit_shuffle(/*client=*/0, std::span<std::uint64_t>(bufs[i]));
  }
  srv.close();

  int done = 0;
  int rejected = 0;
  for (int i = 0; i < kFlood; ++i) {
    const svc::job_status st = futs[i].wait();
    if (st == svc::job_status::done) {
      ++done;
      EXPECT_TRUE(stats::is_permutation_of_iota(bufs[i]));
    } else {
      ASSERT_EQ(st, svc::job_status::rejected);
      ++rejected;
      EXPECT_THROW(futs[i].get(), std::runtime_error);
      EXPECT_EQ(bufs[i], iota_vec(n));  // rejected job never touched the buffer
    }
  }
  EXPECT_EQ(done + rejected, kFlood);
  EXPECT_GT(rejected, 0) << "flood never filled the queue -- raise kFlood";
  const auto st = srv.stats();
  EXPECT_EQ(st.done, static_cast<std::uint64_t>(done));
  EXPECT_EQ(st.rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_LE(st.sched.max_queue_depth, so.queue_capacity);

  // Rejected submissions still consumed their ordinals: the LAST future's
  // ordinal equals kFlood - 1 regardless of how many were dropped.
  EXPECT_EQ(futs[kFlood - 1].ordinal(), static_cast<std::uint64_t>(kFlood - 1));
  // And accepted jobs replay against a bare context by (client, ordinal).
  cgp::context ctx;
  for (int i = 0; i < kFlood; ++i) {
    if (futs[i].status() != svc::job_status::done) continue;
    auto v = iota_vec(n);
    ctx.shuffle(std::span<std::uint64_t>(v), svc::job_seed(kSeed, 0, futs[i].ordinal()));
    EXPECT_EQ(bufs[i], v);
    break;  // one replay suffices
  }
}

TEST(AdmissionAfterClose, SubmissionsAreRejected) {
  svc::server srv;
  srv.close();
  auto fut = srv.submit_permutation(0, 100);
  EXPECT_EQ(fut.status(), svc::job_status::rejected);
}

// ---------------------------------------------------------------------------
// Batching mechanics + plan cache

TEST(Batching, QueuedSmallJobsRideOneDispatch) {
  std::mutex gate_m;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> ran{0};

  svc::scheduler_options so;
  so.workers = 1;
  so.queue_capacity = 64;
  so.batching = true;
  svc::scheduler sched(core::shared_pool(1), so);

  ASSERT_TRUE(sched.submit({false, [&] {
                              std::unique_lock<std::mutex> lock(gate_m);
                              gate_cv.wait(lock, [&] { return gate_open; });
                            }}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sched.submit({true, [&] { ran.fetch_add(1); }}));
  }
  {
    const std::lock_guard<std::mutex> lock(gate_m);
    gate_open = true;
  }
  gate_cv.notify_all();
  sched.close();

  EXPECT_EQ(ran.load(), 10);
  const auto st = sched.stats();
  EXPECT_GE(st.batches, 1u);
  EXPECT_GE(st.batched_jobs, 2u);
}

TEST(Batching, HeadLargeJobIsNotStarvedBySmallJobsBehindIt) {
  std::mutex gate_m;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::mutex order_m;
  std::vector<int> order;

  svc::scheduler_options so;
  so.workers = 1;
  so.queue_capacity = 64;
  so.batching = true;
  svc::scheduler sched(core::shared_pool(1), so);

  // Occupy the worker, then queue a LARGE job with small jobs behind it.
  ASSERT_TRUE(sched.submit({true, [&] {
                              std::unique_lock<std::mutex> lock(gate_m);
                              gate_cv.wait(lock, [&] { return gate_open; });
                            }}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(sched.submit({false, [&] {
                              const std::lock_guard<std::mutex> lock(order_m);
                              order.push_back(-1);  // the large job
                            }}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sched.submit({true, [&, i] {
                                const std::lock_guard<std::mutex> lock(order_m);
                                order.push_back(i);
                              }}));
  }
  {
    const std::lock_guard<std::mutex> lock(gate_m);
    gate_open = true;
  }
  gate_cv.notify_all();
  sched.close();

  // The tick always services the queue head: the large job ran FIRST,
  // before any batch of the small jobs submitted behind it.
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order.front(), -1);
}

// ---------------------------------------------------------------------------
// Metrics scoping + counter reconciliation (the ISSUE 7 bugfix sweep)

TEST(MetricsScoping, TwoServersDoNotPolluteEachOthersSnapshots) {
  // metrics_snapshot() used to read the PROCESS-wIDE registry histograms,
  // so any server's snapshot showed every server's jobs.  The curated
  // sections are per-instance now: an idle server reports zeros no matter
  // how busy its neighbours are.
  svc::server_options so;
  so.seed = kSeed;
  svc::server busy(so);
  svc::server idle(so);

  for (int i = 0; i < 5; ++i) (void)busy.submit_permutation(0, 2000).get();

  EXPECT_EQ(busy.job_latency_histogram().count(), 5u);
  EXPECT_EQ(idle.job_latency_histogram().count(), 0u);
  EXPECT_EQ(idle.batch_size_histogram().count(), 0u);

  const std::string ij = idle.metrics_snapshot();
  EXPECT_NE(ij.find("\"done\": 0"), std::string::npos);
  EXPECT_NE(ij.find("\"job_latency\": {\"count\": 0"), std::string::npos);
  EXPECT_NE(ij.find("\"batch_size\": {\"count\": 0"), std::string::npos);
  // The deliberately process-wide sections say so.
  EXPECT_NE(ij.find("\"plan_cache\": {\"scope\": \"process\""), std::string::npos);

  // And the scoping is symmetric: the idle server's first job lands in
  // ITS histogram only.
  (void)idle.submit_permutation(1, 2000).get();
  EXPECT_EQ(idle.job_latency_histogram().count(), 1u);
  EXPECT_EQ(busy.job_latency_histogram().count(), 5u);
  const std::string bj = busy.metrics_snapshot();
  EXPECT_NE(bj.find("\"done\": 5"), std::string::npos);
  EXPECT_NE(bj.find("\"job_latency\": {\"count\": 5"), std::string::npos);
}

TEST(CounterReconciliation, EveryOutcomeIsCountedExactlyOnce) {
  // Flood a tiny queue so the submission burst splits into accepted and
  // rejected, then reconcile every ledger: admissions vs terminal
  // outcomes vs handle statuses vs the latency histogram.  A job counted
  // twice (or a rejected job leaking into submitted/done) breaks one of
  // these equalities.
  svc::server_options so;
  so.seed = kSeed;
  so.scheduler_workers = 2;
  so.queue_capacity = 4;
  so.policy = svc::admission::reject;
  svc::server srv(so);

  constexpr int kJobs = 64;
  std::vector<svc::future<svc::permutation>> futs;
  futs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futs.push_back(srv.submit_permutation(0, 20'000));
  std::uint64_t done = 0, rejected = 0, failed = 0;
  for (auto& f : futs) {
    switch (f.wait()) {
      case svc::job_status::done: ++done; break;
      case svc::job_status::rejected: ++rejected; break;
      case svc::job_status::failed: ++failed; break;
      default: FAIL() << "non-terminal status after wait()";
    }
  }
  srv.close();

  const svc::server_stats st = srv.stats();
  // Admission splits the burst exactly in two...
  EXPECT_EQ(st.sched.submitted + st.rejected, static_cast<std::uint64_t>(kJobs));
  // ...every admitted job reached exactly one terminal status...
  EXPECT_EQ(st.sched.submitted, st.done + st.failed);
  // ...the handles saw the same ledger the counters recorded...
  EXPECT_EQ(st.done, done);
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.failed, failed);
  // ...and the latency histogram recorded each done job exactly once.
  EXPECT_EQ(srv.job_latency_histogram().count(), st.done);
  EXPECT_GT(done, 0u);
  EXPECT_GT(rejected, 0u) << "queue never filled -- raise kJobs";
}

TEST(PlanCache, RepeatedRequestShapesHitTheCache) {
  svc::server_options so;
  so.seed = kSeed;
  svc::server srv(so);

  // Prime the shape (and let the job finish) so the later lookups cannot
  // race each other into parallel misses.
  (void)srv.submit_permutation(0, 30000).get();
  const std::size_t hits0 = core::plan_cache_hits();
  std::vector<svc::future<svc::permutation>> futs;
  for (int i = 0; i < 7; ++i) futs.push_back(srv.submit_permutation(0, 30000));
  for (auto& f : futs) (void)f.get();
  EXPECT_GE(core::plan_cache_hits(), hits0 + 7);
}

}  // namespace
