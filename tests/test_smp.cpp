// Tests for the native shared-memory execution engine (src/smp/): the
// thread pool substrate, the parallel hypergeometric split, exhaustive
// uniformity of the engine over S4/S5, bit-reproducibility across thread
// counts, and the core/backend.hpp dispatch layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/backend.hpp"
#include "core/driver.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/engine.hpp"
#include "smp/parallel_split.hpp"
#include "smp/thread_pool.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "support/perm_check.hpp"

namespace {

using namespace cgp;

// --- thread pool -------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsFutureValue) {
  smp::thread_pool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto f = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  smp::thread_pool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  smp::thread_pool pool(4);
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  smp::thread_pool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  smp::thread_pool pool(1);  // a single worker: waiting inside it would hang
  auto f = pool.submit([&]() {
    std::atomic<std::size_t> covered{0};
    pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) { covered += hi - lo; });
    return covered.load();
  });
  EXPECT_EQ(f.get(), 100u);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  smp::thread_pool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10, [](std::size_t, std::size_t) { throw std::invalid_argument("x"); }),
      std::invalid_argument);
}

// --- parallel split ----------------------------------------------------------

TEST(ParallelSplit, PreservesContentAndReturnsConsistentOffsets) {
  smp::thread_pool pool(3);
  constexpr std::size_t n = 10'000;
  std::vector<std::uint64_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  std::vector<std::uint64_t> scratch(n);
  smp::split_options opt;
  opt.fan_out = 16;
  const auto off = smp::parallel_split(&pool, std::span<std::uint64_t>(v),
                                       std::span<std::uint64_t>(scratch), /*seed=*/7,
                                       /*node=*/1, opt);
  ASSERT_EQ(off.size(), 17u);
  EXPECT_EQ(off.front(), 0u);
  EXPECT_EQ(off.back(), n);
  for (std::size_t j = 0; j + 1 < off.size(); ++j) EXPECT_LE(off[j], off[j + 1]);
  EXPECT_TRUE(stats::is_permutation_of_iota(v));  // multiset preserved
}

TEST(ParallelSplit, SequentialAndPooledExecutionsAreBitIdentical) {
  constexpr std::size_t n = 4'096;
  std::vector<std::uint64_t> a(n);
  std::iota(a.begin(), a.end(), 0);
  std::vector<std::uint64_t> b = a;
  std::vector<std::uint64_t> scratch(n);
  smp::split_options opt;
  opt.fan_out = 8;
  const auto off_seq = smp::parallel_split<std::uint64_t>(nullptr, a, scratch, 11, 1, opt);
  smp::thread_pool pool(4);
  const auto off_par = smp::parallel_split<std::uint64_t>(&pool, b, scratch, 11, 1, opt);
  EXPECT_EQ(off_seq, off_par);
  EXPECT_EQ(a, b);
}

// --- engine: correctness and uniformity --------------------------------------

TEST(SmpEngine, PermutesContentWithDeepRecursion) {
  smp::engine_options opt;
  opt.threads = 4;
  opt.fan_out = 4;
  opt.cache_items = 64;  // force several recursion levels at n = 200k
  smp::engine eng(opt);
  auto pi = eng.random_permutation(200'000, /*seed=*/1);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

TEST(SmpEngine, SmallInputFallsBackToLeafShuffle) {
  smp::engine eng;  // default cache_items far above n
  auto pi = eng.random_permutation(100, 3);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
  std::vector<int> one{9};
  eng.shuffle(std::span<int>(one), 4);
  EXPECT_EQ(one[0], 9);
  std::vector<int> empty;
  eng.shuffle(std::span<int>(empty), 5);
}

// Shared exhaustive-uniformity harness (tests/support/perm_check.hpp) with
// every rep on a distinct seed: independent runs of the whole parallel
// pipeline.
stats::gof_result engine_uniformity_gof(const smp::engine_options& opt, unsigned k, int reps,
                                        std::uint64_t seed0) {
  smp::engine eng(opt);
  return test_support::uniformity_gof(
      [&](std::span<std::uint64_t> v, int rep) {
        eng.shuffle(v, seed0 + static_cast<std::uint64_t>(rep));
      },
      k, reps);
}

TEST(SmpEngine, UniformOverS5WithBinaryRecursion) {
  smp::engine_options opt;
  opt.threads = 2;
  opt.fan_out = 2;     // binary splits
  opt.cache_items = 2; // recursion all the way down even for k = 5
  const auto res = engine_uniformity_gof(opt, 5, 120 * 100, 1000);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(SmpEngine, UniformOverS4WideFanOut) {
  smp::engine_options opt;
  opt.threads = 2;
  opt.fan_out = 8;  // clamped to n = 4 buckets of one item each
  opt.cache_items = 2;
  const auto res = engine_uniformity_gof(opt, 4, 24 * 400, 2000);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(SmpEngine, SingleItemPositionUniformInLargeShuffle) {
  smp::engine_options opt;
  opt.threads = 2;
  opt.fan_out = 4;
  opt.cache_items = 8;
  smp::engine eng(opt);
  const auto res = test_support::position_uniformity_gof(
      [&](std::span<std::uint64_t> v, int rep) {
        eng.shuffle(v, 3000 + static_cast<std::uint64_t>(rep));
      },
      64, 16'000);
  EXPECT_GT(res.p_value, 1e-9);
}

// --- engine: reproducibility -------------------------------------------------

TEST(SmpEngine, BitReproducibleAcrossThreadCounts) {
  constexpr std::uint64_t n = 50'000;
  constexpr std::uint64_t seed = 0xDEC0DEull;
  const unsigned threads[] = {1u, 2u, 4u, 8u};
  test_support::expect_bit_identical(
      std::size(threads),
      [&](std::size_t i) {
        smp::engine_options opt;
        opt.fan_out = 8;
        opt.cache_items = 64;  // deep recursion so every code path is exercised
        opt.threads = threads[i];
        smp::engine eng(opt);
        return eng.random_permutation(n, seed);
      },
      "smp thread count");
}

TEST(SmpEngine, RepeatedCallsWithSameSeedAgree) {
  smp::engine_options opt;
  opt.threads = 4;
  opt.fan_out = 4;
  opt.cache_items = 256;
  smp::engine eng(opt);
  EXPECT_EQ(eng.random_permutation(10'000, 5), eng.random_permutation(10'000, 5));
}

TEST(SmpEngine, DifferentSeedsProduceDifferentPermutations) {
  smp::engine eng;
  EXPECT_NE(eng.random_permutation(1'000, 1), eng.random_permutation(1'000, 2));
}

// --- backend dispatch --------------------------------------------------------

TEST(Backend, SmpDispatchMatchesDirectEngineOnSameSeed) {
  core::backend_options opt;
  opt.which = core::backend::smp;
  opt.parallelism = 2;
  opt.seed = 77;
  opt.smp_engine.fan_out = 8;
  opt.smp_engine.cache_items = 128;
  const auto via_dispatch = core::random_permutation(20'000, opt);

  smp::engine_options eopt = opt.smp_engine;
  eopt.threads = 2;
  smp::engine eng(eopt);
  EXPECT_EQ(via_dispatch, eng.random_permutation(20'000, 77));
}

TEST(Backend, SmpDispatchReusesProvidedEngine) {
  smp::engine_options eopt;
  eopt.threads = 2;
  eopt.cache_items = 64;
  smp::engine eng(eopt);
  core::backend_options opt;
  opt.which = core::backend::smp;
  opt.engine = &eng;
  opt.seed = 123;
  EXPECT_EQ(core::random_permutation(5'000, opt), eng.random_permutation(5'000, 123));
}

TEST(Backend, CgmDispatchMatchesPermuteGlobalOnSameSeed) {
  core::backend_options opt;
  opt.which = core::backend::cgm_simulator;
  opt.parallelism = 4;
  opt.seed = 99;
  const auto via_dispatch = core::random_permutation(4'000, opt);

  cgm::machine mach(4, 99);
  const auto direct = core::random_permutation_global(mach, 4'000);
  EXPECT_EQ(via_dispatch, direct);
}

TEST(Backend, SequentialDispatchMatchesFisherYates) {
  core::backend_options opt;
  opt.which = core::backend::sequential;
  opt.seed = 1234;
  const auto via_dispatch = core::random_permutation(1'000, opt);

  rng::philox4x64 e(1234, 0);
  std::vector<std::uint64_t> direct(1'000);
  seq::random_permutation(e, direct);
  EXPECT_EQ(via_dispatch, direct);
}

TEST(Backend, AllBackendsProduceValidPermutations) {
  for (const auto b : {core::backend::cgm_simulator, core::backend::smp, core::backend::em,
                       core::backend::cgm, core::backend::sequential}) {
    core::backend_options opt;
    opt.which = b;
    opt.parallelism = 2;
    opt.em_block_items = 64;  // keep the device tiny for n = 997
    opt.em_engine.memory_items = 256;  // force the out-of-core path
    const auto pi = core::random_permutation(997, opt);  // prime: general-margins CGM path
    EXPECT_TRUE(stats::is_permutation_of_iota(pi)) << core::backend_name(b);
  }
}

TEST(Backend, NamesAreStable) {
  EXPECT_STREQ(core::backend_name(core::backend::cgm_simulator), "cgm_sim");
  EXPECT_STREQ(core::backend_name(core::backend::cgm), "cgm");
  EXPECT_STREQ(core::backend_name(core::backend::smp), "smp");
  EXPECT_STREQ(core::backend_name(core::backend::em), "em");
  EXPECT_STREQ(core::backend_name(core::backend::sequential), "seq");
}

}  // namespace
