// Unit tests for the per-tenant telemetry pipeline (PR 10): bounded
// labeled metric families, histogram exemplars, the Prometheus text
// exposition, the background time-series sampler, the service's
// per-tenant snapshot section -- and the invariant underneath all of it:
// telemetry observes and never perturbs permutation output.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "svc/server.hpp"

namespace {

using namespace cgp;

// ---------------------------------------------------------------------------
// Labeled counter families: per-label isolation, bounded cardinality, and
// the overflow slot that makes with() total.

TEST(TelemetryFamilies, CounterFamilyIsolatesLabels) {
  obs::set_enabled(true);
  obs::counter_family fam;
  fam.with(7).add(3);
  fam.with(42).add(1);
  fam.with(7).add(2);
  const auto vals = fam.values();
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0], (std::pair<std::uint64_t, std::uint64_t>{7, 5}));  // sorted by label
  EXPECT_EQ(vals[1], (std::pair<std::uint64_t, std::uint64_t>{42, 1}));
  EXPECT_EQ(fam.overflow().value(), 0u);
}

TEST(TelemetryFamilies, CounterFamilyBoundsCardinality) {
  obs::set_enabled(true);
  obs::counter_family fam;
  // Claim every slot, then one more label: it must land on overflow, and
  // with() must never fail.
  for (std::uint64_t l = 0; l < obs::counter_family::kSlots; ++l) fam.with(l).add();
  EXPECT_EQ(fam.values().size(), obs::counter_family::kSlots);
  fam.with(1'000'000).add(9);
  EXPECT_EQ(fam.values().size(), obs::counter_family::kSlots);  // no 65th slot
  EXPECT_EQ(fam.overflow().value(), 9u);
  // The unusable label (would collide with the empty-slot encoding).
  fam.with(std::uint64_t(-1)).add(1);
  EXPECT_EQ(fam.overflow().value(), 10u);
}

TEST(TelemetryFamilies, CounterFamilyConcurrentClaims) {
  obs::set_enabled(true);
  obs::counter_family fam;
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fam] {
      // Every thread hits the SAME labels: first-use claims race, then
      // it is pure relaxed adds.  No increment may be lost.
      for (int i = 0; i < kIters; ++i) fam.with(static_cast<std::uint64_t>(i % 4)).add();
    });
  }
  for (auto& th : threads) th.join();
  const auto vals = fam.values();
  ASSERT_EQ(vals.size(), 4u);
  for (const auto& [label, v] : vals) {
    EXPECT_EQ(v, static_cast<std::uint64_t>(kThreads) * kIters / 4) << "label " << label;
  }
}

TEST(TelemetryFamilies, HistogramFamilyRecordsPerLabel) {
  obs::set_enabled(true);
  obs::histogram_family fam;
  fam.with(1).record(100);
  fam.with(1).record(200);
  fam.with(5).record(1'000'000);
  const auto entries = fam.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 1u);
  EXPECT_EQ(entries[0].second->count(), 2u);
  EXPECT_EQ(entries[1].first, 5u);
  EXPECT_EQ(entries[1].second->max(), 1'000'000u);
}

TEST(TelemetryFamilies, DisabledGateRoutesToOverflowHarmlessly) {
  obs::set_enabled(true);
  obs::counter_family fam;
  fam.with(3).add();
  obs::set_enabled(false);
  fam.with(3).add(100);  // no-op: disabled adds don't count anywhere
  obs::set_enabled(true);
  const auto vals = fam.values();
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0].second, 1u);
  EXPECT_EQ(fam.overflow().value(), 0u);
}

TEST(TelemetryFamilies, RegistryFamiliesAreStableAndSnapshot) {
  obs::set_enabled(true);
  obs::counter_family& f1 = obs::get_counter_family("test.telemetry.by_client");
  obs::counter_family& f2 = obs::get_counter_family("test.telemetry.by_client");
  EXPECT_EQ(&f1, &f2);  // address-stable, like every registry metric
  f1.with(11).add(4);
  obs::get_histogram_family("test.telemetry.lat.by_client").with(11).record(500);

  bool found_cf = false;
  bool found_hf = false;
  for (const obs::family_snapshot& f : obs::family_snapshots()) {
    if (f.name == "test.telemetry.by_client") {
      found_cf = true;
      EXPECT_FALSE(f.histograms);
      ASSERT_GE(f.entries.size(), 1u);
      EXPECT_EQ(f.entries[0].label, 11u);
      EXPECT_EQ(f.entries[0].stats.count, 4u);
    }
    if (f.name == "test.telemetry.lat.by_client") {
      found_hf = true;
      EXPECT_TRUE(f.histograms);
    }
  }
  EXPECT_TRUE(found_cf);
  EXPECT_TRUE(found_hf);

  const std::string js = obs::snapshot_json();
  EXPECT_NE(js.find("\"counter_families\""), std::string::npos);
  EXPECT_NE(js.find("\"histogram_families\""), std::string::npos);
  EXPECT_NE(js.find("test.telemetry.by_client"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram exemplars: a traced observation leaves its trace_id in the
// bucket it landed in, and quantile_exemplar links the p99 to it.

TEST(TelemetryExemplars, QuantileExemplarFindsTheOutlierTrace) {
  obs::set_enabled(true);
  obs::histogram h;
  for (int i = 0; i < 200; ++i) h.record(10);  // untraced bulk
  h.record(1'000'000, /*trace_id=*/0xDEADBEEF);  // the traced tail outlier
  EXPECT_EQ(h.exemplar(obs::histogram::bucket_of(1'000'000)), 0xDEADBEEFu);
  EXPECT_EQ(h.exemplar(obs::histogram::bucket_of(10)), 0u);
  // p99 sits in the bulk bucket (no exemplar); the search walks up to the
  // nearest exemplar-bearing bucket -- the outlier's.
  EXPECT_EQ(h.quantile_exemplar(0.99), 0xDEADBEEFu);
  EXPECT_EQ(obs::histogram().quantile_exemplar(0.99), 0u);  // empty: none
}

// ---------------------------------------------------------------------------
// Prometheus text exposition: names sanitize to the cgp_ namespace,
// counters render as _total, histograms as summaries, families with
// client_id labels.  (CI parses the full document with a python
// validator; these pin the shape.)

TEST(TelemetryExposition, NamesSanitize) {
  EXPECT_EQ(obs::prometheus_name("svc.jobs.done"), "cgp_svc_jobs_done");
  EXPECT_EQ(obs::prometheus_name("svc.job_latency_ns"), "cgp_svc_job_latency_ns");
  EXPECT_EQ(obs::prometheus_name("weird-name:x"), "cgp_weird_name_x");
}

TEST(TelemetryExposition, ExpositionCarriesAllKinds) {
  obs::set_enabled(true);
  obs::get_counter("test.expo.counter").add(5);
  obs::get_gauge("test.expo.gauge").set(7);
  obs::get_histogram("test.expo.hist").record(1000);
  obs::get_counter_family("test.expo.by_client").with(3).add(2);
  obs::get_histogram_family("test.expo.lat.by_client").with(3).record(2000);

  const std::string text = obs::prometheus_exposition();
  for (const char* needle : {
           "# TYPE cgp_test_expo_counter_total counter",
           "cgp_test_expo_counter_total 5",
           "# TYPE cgp_test_expo_gauge gauge",
           "cgp_test_expo_gauge 7",
           "# TYPE cgp_test_expo_hist summary",
           "cgp_test_expo_hist{quantile=\"0.99\"}",
           "cgp_test_expo_hist_count 1",
           "cgp_test_expo_by_client_total{client_id=\"3\"} 2",
           "cgp_test_expo_lat_by_client{client_id=\"3\",quantile=\"0.5\"}",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // Exposition-format sanity: every non-comment line is "name[{labels}] value".
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_EQ(line.rfind("cgp_", 0), 0u) << line;
    EXPECT_NO_THROW((void)std::stoll(line.substr(sp + 1))) << line;
  }
}

// ---------------------------------------------------------------------------
// The time-series sampler: fixed ring, stable series indices, JSON
// document with samples oldest-first plus deltas/rates.

TEST(TelemetrySampler, SampleNowFillsTheRing) {
  obs::set_enabled(true);
  obs::counter& c = obs::get_counter("test.sampler.counter");
  obs::sampler s(obs::sampler_options{/*period_ms=*/1000, /*slots=*/4});
  c.add(10);
  s.sample_now();
  c.add(5);
  s.sample_now();
  EXPECT_EQ(s.samples_taken(), 2u);
  const std::string js = s.ring_json();
  for (const char* key : {"\"period_ms\"", "\"slots\"", "\"samples_taken\"",
                          "\"wall_epoch_ns\"", "\"series\"", "\"samples\"", "\"deltas\"",
                          "\"rates_per_s\"", "test.sampler.counter"}) {
    EXPECT_NE(js.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'), std::count(js.begin(), js.end(), '}'));
}

TEST(TelemetrySampler, RingKeepsOnlyTheNewestSlots) {
  obs::set_enabled(true);
  obs::sampler s(obs::sampler_options{/*period_ms=*/1000, /*slots=*/3});
  for (int i = 0; i < 10; ++i) s.sample_now();
  EXPECT_EQ(s.samples_taken(), 10u);
  const std::string js = s.ring_json();
  // 3 ring slots -> exactly 3 "t_ms" sample entries (deltas have dt_ms).
  std::size_t count = 0;
  for (std::size_t p = js.find("\"t_ms\""); p != std::string::npos;
       p = js.find("\"t_ms\"", p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u + 2u);  // 3 samples + 2 deltas between them
}

TEST(TelemetrySampler, BackgroundThreadSamples) {
  obs::set_enabled(true);
  obs::sampler s(obs::sampler_options{/*period_ms=*/5, /*slots=*/64});
  EXPECT_FALSE(s.running());
  s.start();
  EXPECT_TRUE(s.running());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (s.samples_taken() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_GE(s.samples_taken(), 3u);
}

// ---------------------------------------------------------------------------
// The service's per-tenant section: concurrent clients get separate
// latency percentiles in metrics_snapshot(), backed by the per-instance
// families (two servers never pollute each other).

TEST(TelemetryService, SnapshotReportsPerTenantLatencies) {
  obs::set_enabled(true);
  svc::server srv;
  std::vector<svc::future<svc::permutation>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(srv.submit_permutation(/*client=*/3, 2048));
    futs.push_back(srv.submit_permutation(/*client=*/9, 2048));
  }
  for (auto& f : futs) EXPECT_EQ(f.wait(), svc::job_status::done);

  const auto entries = srv.tenant_latency_histograms().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 3u);
  EXPECT_EQ(entries[0].second->count(), 6u);
  EXPECT_EQ(entries[1].first, 9u);
  EXPECT_EQ(entries[1].second->count(), 6u);

  const std::string js = srv.metrics_snapshot();
  EXPECT_NE(js.find("\"tenants\""), std::string::npos);
  for (const char* key : {"\"3\"", "\"9\"", "\"p50_ns\"", "\"p99_ns\"",
                          "\"p99_exemplar_trace_id\"", "\"submitted\"", "\"done\""}) {
    EXPECT_NE(js.find(key), std::string::npos) << key;
  }
  EXPECT_NE(js.find("\"trace\""), std::string::npos);
  EXPECT_NE(js.find("\"dropped_spans\""), std::string::npos);

  // Per-INSTANCE scoping: a second server sees none of the first's tenants.
  svc::server other;
  EXPECT_TRUE(other.tenant_latency_histograms().entries().empty());
}

// ---------------------------------------------------------------------------
// The invariant: the whole telemetry pipeline observes and never
// perturbs.  Identical shuffle output with the sampler off, on, and
// toggled mid-run.

TEST(TelemetryDeterminism, SamplerNeverChangesShuffleOutput) {
  constexpr std::uint64_t kN = 150'000;
  constexpr std::uint64_t kSeed = 0x7E1E;
  auto draw = [&] {
    std::vector<std::uint64_t> v(kN);
    for (std::uint64_t i = 0; i < kN; ++i) v[i] = i;
    cgp::context ctx;
    (void)ctx.shuffle(std::span<std::uint64_t>(v), kSeed);
    return v;
  };

  obs::set_enabled(true);
  const std::vector<std::uint64_t> base = draw();

  obs::sampler s(obs::sampler_options{/*period_ms=*/1, /*slots=*/32});
  s.start();
  EXPECT_EQ(draw(), base);  // sampler hammering the registry mid-shuffle

  std::vector<std::uint64_t> toggled;
  std::thread worker([&] { toggled = draw(); });
  s.stop();
  s.start();  // toggled mid-run
  worker.join();
  s.stop();
  EXPECT_EQ(toggled, base);
  EXPECT_GE(s.samples_taken(), 1u);
}

}  // namespace
