// Tests for the out-of-core permutation engine (em/async_shuffle.hpp) and
// the async device substrate it runs on: queue semantics, item-range RMW
// atomicity, exhaustive S5 uniformity of the async path, the
// bit-reproducibility matrix across buffer depths x worker counts (and
// device geometries under the fixed spill policy), the
// O((n/B) log_K(n/M)) transfer bound, and the core::backend::em dispatch
// including the designed em == sequential agreement at M >= n.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/backend.hpp"
#include "em/async_shuffle.hpp"
#include "em/block_device.hpp"
#include "em/shuffle.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/thread_pool.hpp"
#include "support/perm_check.hpp"

namespace {

using namespace cgp;

// --- item-range device access -----------------------------------------------

TEST(BlockDeviceItems, ReadItemsCountsOneReadPerCoveredBlock) {
  em::block_device dev(64, 8);
  for (std::uint64_t i = 0; i < 64; ++i) dev.poke(i, 100 + i);
  std::vector<std::uint64_t> out(20);
  dev.read_items(6, out);  // items 6..25 cover blocks 0..3
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(out[i], 106 + i);
  EXPECT_EQ(dev.stats().block_reads, 4u);
  EXPECT_EQ(dev.stats().block_writes, 0u);
}

TEST(BlockDeviceItems, WriteItemsBlindWritesFullBlocksAndMergesEdges) {
  em::block_device dev(64, 8);
  for (std::uint64_t i = 0; i < 64; ++i) dev.poke(i, i);
  std::vector<std::uint64_t> in(12, 777);
  dev.write_items(6, in);  // items 6..17: partial block 0, full block 1, partial block 2
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(dev.peek(i), (i >= 6 && i < 18) ? 777u : i) << "item " << i;
  }
  // 2 partial RMWs (1 read + 1 write each) + 1 blind full-block write.
  EXPECT_EQ(dev.stats().block_reads, 2u);
  EXPECT_EQ(dev.stats().block_writes, 3u);
}

// --- async queue -------------------------------------------------------------

TEST(AsyncIoQueue, ReadFutureDeliversBlockContents) {
  em::block_device dev(32, 4);
  for (std::uint64_t i = 0; i < 32; ++i) dev.poke(i, i * 3);
  em::async_io_queue q(dev, 2);
  auto fut = q.read_block(2);
  const std::vector<std::uint64_t> blk = fut.get();
  ASSERT_EQ(blk.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(blk[i], (8 + i) * 3);
  q.drain();
  EXPECT_EQ(q.stats().reads_enqueued, 1u);
}

TEST(AsyncIoQueue, WritesLandAfterDrainAndRespectDepth) {
  em::block_device dev(64, 8);
  em::async_io_queue q(dev, 2);
  for (std::uint64_t w = 0; w < 6; ++w) {
    q.write_items(w * 8, std::vector<std::uint64_t>(8, w + 1));
  }
  q.drain();
  for (std::uint64_t i = 0; i < 48; ++i) EXPECT_EQ(dev.peek(i), i / 8 + 1);
  const auto st = q.stats();
  EXPECT_EQ(st.writes_enqueued, 6u);
  EXPECT_LE(st.max_in_flight, 2u) << "backpressure must bound the queue at its depth";
}

// --- async engine: correctness and uniformity --------------------------------

// Run the async engine over a span: load onto a fresh device, shuffle with
// a per-rep seed, read back.
void async_shuffle_span(std::span<std::uint64_t> v, std::uint64_t seed, smp::thread_pool& pool,
                        std::uint32_t block_items, const em::async_options& opt) {
  em::block_device dev(v.size(), block_items);
  for (std::uint64_t i = 0; i < v.size(); ++i) dev.poke(i, v[i]);
  (void)em::async_em_shuffle(dev, v.size(), seed, pool, opt);
  for (std::uint64_t i = 0; i < v.size(); ++i) v[i] = dev.peek(i);
}

TEST(AsyncEmShuffle, PreservesMultisetWithDeepRecursion) {
  em::block_device dev(4096, 16);
  for (std::uint64_t i = 0; i < 4096; ++i) dev.poke(i, i);
  smp::thread_pool pool(4);
  em::async_options opt;
  opt.memory_items = 128;
  const auto rep = em::async_em_shuffle(dev, 4096, 11, pool, opt);
  std::vector<std::uint64_t> out(4096);
  for (std::uint64_t i = 0; i < 4096; ++i) out[i] = dev.peek(i);
  EXPECT_TRUE(stats::is_permutation_of_iota(out));
  EXPECT_GE(rep.levels, 2u) << "must have recursed";
  EXPECT_GT(rep.async_reads, 0u);
  EXPECT_GT(rep.async_writes, 0u);
}

TEST(AsyncEmShuffle, ExhaustiveUniformityOverS5OnTinyDevice) {
  // 5 items, 2-item blocks, fixed fan-out 2, leaf cutoff 2: recursion all
  // the way down, every rep on a distinct seed.
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = 8;
  opt.policy = em::spill_policy::fixed_fan_out;
  opt.fan_out = 2;
  opt.leaf_items = 2;
  test_support::expect_uniform_over_sk(
      [&](std::span<std::uint64_t> v, int rep) {
        async_shuffle_span(v, 1000 + static_cast<std::uint64_t>(rep), pool, 2, opt);
      },
      5, 120 * 100);
}

TEST(AsyncEmShuffle, SingleItemPositionUniformAtDepth) {
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = 16;
  const auto res = test_support::position_uniformity_gof(
      [&](std::span<std::uint64_t> v, int rep) {
        async_shuffle_span(v, 5000 + static_cast<std::uint64_t>(rep), pool, 4, opt);
      },
      64, 16000);
  EXPECT_GT(res.p_value, 1e-9);
}

TEST(AsyncEmShuffle, FixedPointLawAtModerateSize) {
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = 64;
  test_support::expect_fixed_point_law(
      [&](int rep) {
        std::vector<std::uint64_t> v(256);
        std::iota(v.begin(), v.end(), 0);
        async_shuffle_span(v, 9000 + static_cast<std::uint64_t>(rep), pool, 8, opt);
        return v;
      },
      4000);
}

// --- async engine: reproducibility matrix ------------------------------------

TEST(AsyncEmShuffle, BitIdenticalAcrossBufferDepthsAndWorkerCounts) {
  // The tentpole claim: (buffer depth x worker count) is a 3x3 matrix of
  // configurations that must all produce the identical permutation.
  constexpr std::uint64_t n = 6000;
  constexpr std::uint64_t seed = 0xA570;
  struct cfg {
    std::uint32_t depth;
    unsigned workers;
  };
  std::vector<cfg> cfgs;
  for (const std::uint32_t d : {1u, 2u, 4u}) {
    for (const unsigned w : {1u, 2u, 4u}) cfgs.push_back({d, w});
  }
  test_support::expect_bit_identical(
      cfgs.size(),
      [&](std::size_t i) {
        em::block_device dev(n, 16);
        for (std::uint64_t j = 0; j < n; ++j) dev.poke(j, j);
        smp::thread_pool pool(cfgs[i].workers);
        em::async_options opt;
        opt.memory_items = 256;
        opt.buffer_depth = cfgs[i].depth;
        const auto rep = em::async_em_shuffle(dev, n, seed, pool, opt);
        EXPECT_LE(rep.max_in_flight, cfgs[i].depth * pool.size());
        std::vector<std::uint64_t> out(n);
        for (std::uint64_t j = 0; j < n; ++j) out[j] = dev.peek(j);
        return out;
      },
      "async em (buffer depth, workers)");
}

TEST(AsyncEmShuffle, FixedSpillPolicyIsGeometryIndependent) {
  // Under fixed_fan_out the permutation is a function of (seed, n, fan_out,
  // leaf_items) only: runs with different memory sizes M and block sizes B
  // must agree bit for bit.
  constexpr std::uint64_t n = 5000;
  struct geom {
    std::uint64_t m;
    std::uint32_t b;
  };
  const geom geoms[] = {{512, 16}, {1024, 32}, {2048, 8}, {4096, 64}};
  test_support::expect_bit_identical(
      std::size(geoms),
      [&](std::size_t i) {
        em::block_device dev(n, geoms[i].b);
        for (std::uint64_t j = 0; j < n; ++j) dev.poke(j, j);
        smp::thread_pool pool(2);
        em::async_options opt;
        opt.memory_items = geoms[i].m;
        opt.policy = em::spill_policy::fixed_fan_out;
        opt.fan_out = 8;
        opt.leaf_items = 128;
        (void)em::async_em_shuffle(dev, n, 0xF1D0, pool, opt);
        std::vector<std::uint64_t> out(n);
        for (std::uint64_t j = 0; j < n; ++j) out[j] = dev.peek(j);
        return out;
      },
      "async em (M, B) geometry");
}

TEST(AsyncEmShuffle, RepeatedRunsWithSameSeedAgree) {
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = 128;
  std::vector<std::uint64_t> a(2000);
  std::vector<std::uint64_t> b(2000);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  async_shuffle_span(a, 77, pool, 16, opt);
  async_shuffle_span(b, 77, pool, 16, opt);
  EXPECT_EQ(a, b);
  std::iota(b.begin(), b.end(), 0);
  async_shuffle_span(b, 78, pool, 16, opt);
  EXPECT_NE(a, b);
}

// --- async engine: I/O complexity --------------------------------------------

TEST(AsyncEmIo, TransfersAreLinearInBlocksTimesLevels) {
  // block_transfers = O((n/B) log_K(n/M)): each distribution level plus the
  // final leaf pass streams the data a constant number of times -- one read
  // and ~one write per block, plus boundary RMWs.  Assert the per-(block x
  // pass) constant and the level count itself.
  const std::uint64_t n = 16384;
  const std::uint32_t b = 16;
  const std::uint64_t mem = 256;  // K = 14 -> fan 8
  em::block_device dev(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = mem;
  const auto rep = em::async_em_shuffle(dev, n, 3, pool, opt);

  // levels <= ceil(log_K(n/M)) + 1 with K = 8: log_8(16384/256) = 2, plus
  // at most one extra level when multinomial jitter pushes a bucket just
  // over the cutoff.
  EXPECT_LE(rep.levels, 3u);
  EXPECT_GE(rep.levels, 1u);
  const double blocks = static_cast<double>(n) / b;
  const double passes = static_cast<double>(rep.levels) + 1.0;  // + leaf pass
  EXPECT_LT(static_cast<double>(rep.block_transfers), 4.0 * blocks * passes)
      << "more than 4 transfers per block per pass";
  // And below one transfer per item (the naive baseline pays ~1.8n once
  // n >> M; the separation proper is asserted against it directly below).
  EXPECT_LT(rep.block_transfers, n);
}

TEST(AsyncEmIo, BeatsNaiveAndSyncScanOnTransfers) {
  const std::uint64_t n = 32768;
  const std::uint32_t b = 64;
  const std::uint64_t mem = 16ull * b;  // n >> M
  rng::philox4x64 e(7, 0);

  em::block_device dev1(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev1.poke(i, i);
  const auto naive = em::naive_em_fisher_yates(e, dev1, n, 16);

  em::block_device dev2(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev2.poke(i, i);
  const auto scan = em::em_shuffle(e, dev2, n, mem);

  em::block_device dev3(n, b);
  for (std::uint64_t i = 0; i < n; ++i) dev3.poke(i, i);
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = mem;
  const auto async = em::async_em_shuffle(dev3, n, 7, pool, opt);

  EXPECT_LT(async.block_transfers, naive.block_transfers / 8)
      << "async engine must beat the naive baseline by far at n >> M";
  EXPECT_LT(async.block_transfers, scan.block_transfers)
      << "dropping the label device must also beat the synchronous scan";
}

TEST(AsyncEmIo, RngBudgetIsTwoLabelWordsPerItemPerLevelPlusLeaves) {
  // Labels are drawn twice per level (count pass + scatter pass, one word
  // per item each) and leaves draw ~1 word per item: total <= (2 levels + 2) n.
  const std::uint64_t n = 8192;
  em::block_device dev(n, 16);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  smp::thread_pool pool(2);
  em::async_options opt;
  opt.memory_items = 256;
  const auto rep = em::async_em_shuffle(dev, n, 5, pool, opt);
  EXPECT_LE(rep.rng_words, (2ull * rep.levels + 2) * n);
}

// --- backend dispatch ---------------------------------------------------------

TEST(BackendEm, AgreesWithSequentialWhenMemoryCoversInput) {
  // Designed contract: with M >= n the em backend is a single in-memory
  // Fisher-Yates from philox(seed, 0) -- the sequential backend's stream.
  core::backend_options em_opt;
  em_opt.which = core::backend::em;
  em_opt.seed = 424242;
  em_opt.em_block_items = 64;
  em_opt.em_engine.memory_items = 1u << 16;  // >= n

  core::backend_options seq_opt;
  seq_opt.which = core::backend::sequential;
  seq_opt.seed = 424242;

  EXPECT_EQ(core::random_permutation(3000, em_opt), core::random_permutation(3000, seq_opt));

  // The agreement extends to arbitrary payloads through the index gather.
  std::vector<std::uint32_t> payload(1000);
  for (std::uint32_t i = 0; i < 1000; ++i) payload[i] = i * 7 + 3;
  EXPECT_EQ(core::permute(payload, em_opt), core::permute(payload, seq_opt));
}

TEST(BackendEm, OutOfCoreDispatchProducesValidPermutationAndReport) {
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.parallelism = 2;
  opt.seed = 31337;
  opt.em_block_items = 32;
  opt.em_engine.memory_items = 512;  // n >> M: the real out-of-core path
  em::async_report report;
  opt.em_report_out = &report;
  const auto pi = core::random_permutation(20'000, opt);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
  EXPECT_GE(report.levels, 1u);
  EXPECT_GT(report.block_transfers, 0u);
  EXPECT_GT(report.async_reads, 0u);
}

TEST(BackendEm, DispatchMatchesDirectEngineOnSameSeed) {
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.parallelism = 2;
  opt.seed = 99;
  opt.em_block_items = 16;
  opt.em_engine.memory_items = 256;
  const auto via_dispatch = core::random_permutation(5000, opt);

  em::block_device dev(5000, 16);
  for (std::uint64_t i = 0; i < 5000; ++i) dev.poke(i, i);
  smp::thread_pool pool(2);
  (void)em::async_em_shuffle(dev, 5000, 99, pool, opt.em_engine);
  std::vector<std::uint64_t> direct(5000);
  for (std::uint64_t i = 0; i < 5000; ++i) direct[i] = dev.peek(i);
  EXPECT_EQ(via_dispatch, direct);
}

// --- wide-record apply layer: record sizes that do not divide B --------------

// A 24-byte record occupies 3 device words, and 3 does not divide the
// default block of 4096 items: records straddle block boundaries, and
// every streamed slice of write_records_streamed starts and ends
// mid-block, exercising write_items' partial-block read-modify-write
// merge on both edges (the path the old poke/peek dispatch never hit).
struct rec24 {
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t c;
};
static_assert(sizeof(rec24) == 24);

TEST(BackendEmApply, WideRecordRoundTripStraddlingBlocks) {
  // Identity check of the streaming record apply alone: write 24-byte
  // records at 3 words apiece onto a B = 4096 device in M-item slices,
  // then gather them back through an identity pi -- every byte must
  // survive the partial-block merges.
  const std::uint64_t n = 11'000;  // 33'000 words: not a multiple of 4096
  const std::uint64_t m = 1u << 14;
  std::vector<rec24> recs(n);
  for (std::uint64_t i = 0; i < n; ++i) recs[i] = {i, i * 1315423911ull, ~i};

  em::block_device payload(n * 3, 4096);
  core::write_records_streamed(payload, reinterpret_cast<const unsigned char*>(recs.data()),
                               n, 24, m);
  em::block_device pi_dev(n, 4096);
  core::fill_iota_streamed(pi_dev, n, m);

  std::vector<rec24> out(n);
  core::gather_records_streamed(pi_dev, payload, reinterpret_cast<unsigned char*>(out.data()),
                                n, 24, m);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i].a, recs[i].a) << "record " << i;
    ASSERT_EQ(out[i].b, recs[i].b) << "record " << i;
    ASSERT_EQ(out[i].c, recs[i].c) << "record " << i;
  }
}

TEST(BackendEmApply, WideRecordShuffleMatchesIndexGatherOnB4096) {
  // The dispatch-level contract for 24-byte records on the default
  // B = 4096 geometry, with n > M so the real multi-level out-of-core
  // engine runs: shuffle(data) == gather(data, fill_random_permutation)
  // under the same seed (value-independence), and the payload survives
  // bit for bit.
  const std::uint64_t n = 50'000;
  core::backend_options opt;
  opt.which = core::backend::em;
  opt.parallelism = 2;
  opt.seed = 24242424;
  opt.em_block_items = 4096;
  opt.em_engine.memory_items = 4 * 4096;  // M < n: forces distribution levels
  em::async_report report;
  opt.em_report_out = &report;

  std::vector<rec24> recs(n);
  for (std::uint64_t i = 0; i < n; ++i) recs[i] = {i, i ^ 0xDEADBEEFull, i + 7};
  const auto shuffled = core::permute(recs, opt);
  EXPECT_GE(report.levels, 1u);

  core::backend_options fopt = opt;
  fopt.em_report_out = nullptr;
  std::vector<std::uint64_t> pi(n);
  core::make_executor(core::resolve_plan(n, 24, fopt), fopt)
      ->fill_random_permutation(std::span<std::uint64_t>(pi), opt.seed);
  ASSERT_TRUE(stats::is_permutation_of_iota(pi));
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(shuffled[i].a, recs[pi[i]].a) << "record " << i;
    ASSERT_EQ(shuffled[i].b, recs[pi[i]].b) << "record " << i;
    ASSERT_EQ(shuffled[i].c, recs[pi[i]].c) << "record " << i;
  }
}

}  // namespace
