// Tests for the process-wide registry (core/registry.hpp): first-touch
// exactly-once construction under concurrency (the hammer tests -- many
// client threads racing shared_engine / shared_transport / shared_pool on
// the same and different configurations must produce one instance per
// configuration), the shared machine-profile cache and its explicit
// recalibration, and the plan cache (hit accounting, answer equality with
// plan_permutation, fingerprint invalidation).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "comm/transport.hpp"
#include "core/plan.hpp"
#include "core/registry.hpp"
#include "smp/engine.hpp"

namespace {

using namespace cgp;

// Engine configurations unlikely to be touched by any other test in this
// binary, so the registered-count delta below is exact.
smp::engine_options hammer_config(unsigned which) {
  smp::engine_options opt;
  opt.threads = 1 + which % 3;
  opt.fan_out = which % 2 == 0 ? 32 : 64;
  opt.cache_items = 12345 + 1000 * which;
  return opt;
}

TEST(RegistryHammer, ConcurrentSharedEngineCreatesExactlyOnePerConfig) {
  constexpr unsigned kThreads = 16;
  constexpr unsigned kConfigs = 3;
  constexpr unsigned kRounds = 50;

  const std::size_t before = core::registered_engine_count();

  // Every thread hammers every config repeatedly, all released together.
  std::atomic<unsigned> start{0};
  std::vector<std::vector<const smp::engine*>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &start, &seen] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      for (unsigned r = 0; r < kRounds; ++r) {
        for (unsigned c = 0; c < kConfigs; ++c) {
          seen[t].push_back(&core::shared_engine(hammer_config(c)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Exactly one engine per distinct configuration, identical across every
  // thread and round.
  std::set<const smp::engine*> distinct;
  for (const auto& v : seen) distinct.insert(v.begin(), v.end());
  EXPECT_EQ(distinct.size(), kConfigs);
  EXPECT_EQ(core::registered_engine_count(), before + kConfigs);

  // And the instance handed out later is still the same one.
  for (unsigned c = 0; c < kConfigs; ++c) {
    EXPECT_TRUE(distinct.count(&core::shared_engine(hammer_config(c))) == 1);
  }
}

TEST(RegistryHammer, ConcurrentSharedTransportCreatesExactlyOnePerRankCount) {
  constexpr unsigned kThreads = 12;
  std::atomic<unsigned> start{0};
  std::vector<std::vector<const comm::transport*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &start, &seen] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      for (unsigned r = 0; r < 20; ++r) {
        for (const std::uint32_t ranks : {1u, 2u, 3u}) {
          seen[t].push_back(&core::shared_transport(ranks));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<const comm::transport*> distinct;
  for (const auto& v : seen) distinct.insert(v.begin(), v.end());
  EXPECT_EQ(distinct.size(), 3u);
  // Rank counts are preserved: 0 normalizes to 1 and shares its instance.
  EXPECT_EQ(&core::shared_transport(0), &core::shared_transport(1));
}

TEST(RegistryHammer, ConcurrentSharedPoolIsOneInstance) {
  constexpr unsigned kThreads = 8;
  std::atomic<unsigned> start{0};
  std::vector<const smp::thread_pool*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &start, &seen] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      seen[t] = &core::shared_pool(2);
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST(SharedProfile, CachedAndStableAcrossCalls) {
  const core::machine_profile a = core::shared_profile();
  const core::machine_profile b = core::shared_profile();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // The cache serves the detected defaults until someone recalibrates.
  EXPECT_EQ(a.threads, core::machine_profile::detect().threads);
}

TEST(SharedProfile, ConcurrentFirstTouchAgrees) {
  constexpr unsigned kThreads = 8;
  std::atomic<unsigned> start{0};
  std::vector<std::uint64_t> fp(kThreads, 0);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &start, &fp] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      fp[t] = core::shared_profile().fingerprint();
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(fp[t], fp[0]);
}

TEST(ProfileFingerprint, SensitiveToEveryCalibratedField) {
  const core::machine_profile base;
  auto perturbed = [&](auto mutate) {
    core::machine_profile p = base;
    mutate(p);
    return p.fingerprint();
  };
  const std::uint64_t fp = base.fingerprint();
  EXPECT_EQ(fp, core::machine_profile{}.fingerprint());  // deterministic
  EXPECT_NE(fp, perturbed([](auto& p) { p.threads += 1; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.cache_items *= 2; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.seq_ns_hit += 1e-9; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.seq_ns_miss += 1e-9; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.split_ns += 1e-9; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.em_ns_per_item_pass += 1e-9; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.comm_ranks = 4; }));
  EXPECT_NE(fp, perturbed([](auto& p) { p.comm_g_ns_per_word += 1e-9; }));
}

TEST(PlanCache, HitsSkipRecomputationAndAnswersMatch) {
  core::machine_profile prof;  // default-detected shape, any fixed profile works
  prof.threads = 4;
  core::workload w;
  w.n = 123457;
  w.element_bytes = 8;

  const std::size_t lookups0 = core::plan_cache_lookups();
  const std::size_t hits0 = core::plan_cache_hits();

  const core::permutation_plan direct = core::plan_permutation(w, prof);
  const core::permutation_plan first = core::cached_plan(w, prof);
  const core::permutation_plan second = core::cached_plan(w, prof);

  EXPECT_EQ(core::plan_cache_lookups(), lookups0 + 2);
  EXPECT_GE(core::plan_cache_hits(), hits0 + 1);

  // The cache never changes the answer.
  for (const auto* p : {&first, &second}) {
    EXPECT_EQ(p->chosen, direct.chosen);
    EXPECT_EQ(p->threads, direct.threads);
    EXPECT_EQ(p->split_levels, direct.split_levels);
    EXPECT_EQ(p->em_memory_items, direct.em_memory_items);
    EXPECT_EQ(p->em_block_items, direct.em_block_items);
    EXPECT_DOUBLE_EQ(p->predicted_seconds, direct.predicted_seconds);
  }
}

TEST(PlanCache, ProfileFingerprintInvalidates) {
  core::machine_profile prof;
  prof.threads = 4;
  core::workload w;
  w.n = 987653;

  (void)core::cached_plan(w, prof);
  const std::size_t hits_before = core::plan_cache_hits();

  // Same workload, recalibrated (different) profile: must MISS -- a
  // cached plan for the old machine model would be stale.
  core::machine_profile moved = prof;
  moved.seq_ns_miss *= 2.0;
  ASSERT_NE(moved.fingerprint(), prof.fingerprint());
  (void)core::cached_plan(w, moved);
  // The old key still hits.
  (void)core::cached_plan(w, prof);
  EXPECT_GE(core::plan_cache_hits(), hits_before + 1);
}

TEST(PlanCache, ConcurrentMissesOnOneShapeAgree) {
  constexpr unsigned kThreads = 8;
  core::machine_profile prof;
  prof.threads = 3;
  core::workload w;
  w.n = 5555557;  // a shape no other test uses

  std::atomic<unsigned> start{0};
  std::vector<core::permutation_plan> plans(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &start, &plans, &w, &prof] {
      start.fetch_add(1);
      while (start.load() < kThreads) std::this_thread::yield();
      plans[t] = core::cached_plan(w, prof);
    });
  }
  for (auto& th : threads) th.join();
  for (unsigned t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[t].chosen, plans[0].chosen);
    EXPECT_DOUBLE_EQ(plans[t].predicted_seconds, plans[0].predicted_seconds);
  }
}

}  // namespace
