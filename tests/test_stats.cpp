// Unit tests for the statistics toolkit itself -- the instrument must be
// trusted before it is used to certify uniformity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/philox.hpp"
#include "rng/uniform.hpp"
#include "stats/chisq.hpp"
#include "stats/gamma.hpp"
#include "stats/ks.hpp"
#include "stats/lehmer.hpp"
#include "stats/moments.hpp"

namespace {

using namespace cgp;

// --- incomplete gamma -----------------------------------------------------

TEST(Gamma, KnownValues) {
  // P(1, x) = 1 - exp(-x)
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(stats::gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
    EXPECT_NEAR(stats::gamma_q(1.0, x), std::exp(-x), 1e-12);
  }
}

TEST(Gamma, ComplementarityAndMonotonicity) {
  double prev = 0.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double p = stats::gamma_p(3.5, x);
    EXPECT_NEAR(p + stats::gamma_q(3.5, x), 1.0, 1e-12);
    EXPECT_GE(p + 1e-15, prev);
    prev = p;
  }
}

TEST(Gamma, Chi2SurvivalKnownQuantiles) {
  // Chi-square df=1: P[X >= 3.841] ~ 0.05; df=10: P[X >= 18.307] ~ 0.05.
  EXPECT_NEAR(stats::chi2_sf(3.841, 1), 0.05, 5e-4);
  EXPECT_NEAR(stats::chi2_sf(18.307, 10), 0.05, 5e-4);
  // Median of chi-square df=2 is 2 ln 2.
  EXPECT_NEAR(stats::chi2_sf(2.0 * std::log(2.0), 2), 0.5, 1e-10);
}

// --- chi-square GOF --------------------------------------------------------

TEST(ChiSquare, UniformDataPasses) {
  rng::philox4x64 e(100, 0);
  std::vector<std::uint64_t> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng::uniform_below(e, 50)];
  const auto res = stats::chi_square_uniform(counts);
  EXPECT_GT(res.p_value, 1e-6);
  EXPECT_EQ(res.pooled_cells, 50u);
}

TEST(ChiSquare, BiasedDataFails) {
  rng::philox4x64 e(101, 0);
  std::vector<std::uint64_t> counts(50, 0);
  for (int i = 0; i < 50000; ++i) {
    // 10% of the mass diverted to cell 0.
    const auto v = rng::uniform_below(e, 55);
    ++counts[v >= 50 ? 0 : v];
  }
  const auto res = stats::chi_square_uniform(counts);
  EXPECT_LT(res.p_value, 1e-12);
}

TEST(ChiSquare, PoolsSparseTail) {
  // Geometric-ish expected probabilities: tiny tail cells must be pooled.
  std::vector<double> probs{0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125, 0.0078125};
  std::vector<std::uint64_t> obs{50, 25, 12, 6, 4, 2, 1, 0};
  const auto res = stats::chi_square_gof(obs, probs, 5.0);
  EXPECT_LT(res.pooled_cells, obs.size());
  EXPECT_GT(res.p_value, 1e-6);
}

TEST(ChiSquare, MatchesHandComputedStatistic) {
  // obs = {8, 12}, expected = {10, 10}: chi2 = 4+4 / 10 = 0.8, df = 1.
  std::vector<std::uint64_t> obs{8, 12};
  std::vector<double> probs{0.5, 0.5};
  const auto res = stats::chi_square_gof(obs, probs, 1.0);
  EXPECT_NEAR(res.statistic, 0.8, 1e-12);
  EXPECT_NEAR(res.dof, 1.0, 0.0);
  EXPECT_NEAR(res.p_value, stats::chi2_sf(0.8, 1), 1e-12);
}

TEST(ChiSquare, IndependenceDetectsCoupling) {
  // Independent table passes...
  std::vector<std::uint64_t> indep{100, 100, 100, 100};
  EXPECT_GT(stats::chi_square_independence(indep, 2, 2).p_value, 0.9);
  // ...diagonal-heavy table fails.
  std::vector<std::uint64_t> coupled{200, 10, 10, 200};
  EXPECT_LT(stats::chi_square_independence(coupled, 2, 2).p_value, 1e-12);
}

// --- Kolmogorov-Smirnov ----------------------------------------------------

TEST(KS, UniformSamplesPass) {
  rng::philox4x64 e(200, 0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng::canonical_double(e);
  EXPECT_GT(stats::ks_uniform01(xs).p_value, 1e-6);
}

TEST(KS, SquaredSamplesFail) {
  rng::philox4x64 e(201, 0);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    const double u = rng::canonical_double(e);
    x = u * u;  // decidedly not uniform
  }
  EXPECT_LT(stats::ks_uniform01(xs).p_value, 1e-12);
}

TEST(KS, KolmogorovSfEndpoints) {
  EXPECT_DOUBLE_EQ(stats::kolmogorov_sf(0.0), 1.0);
  EXPECT_LT(stats::kolmogorov_sf(3.0), 1e-6);
  EXPECT_NEAR(stats::kolmogorov_sf(0.82757), 0.5, 2e-3);  // median of K
}

// --- Lehmer code ------------------------------------------------------------

TEST(Lehmer, FactorialTable) {
  EXPECT_EQ(stats::factorial(0), 1u);
  EXPECT_EQ(stats::factorial(1), 1u);
  EXPECT_EQ(stats::factorial(5), 120u);
  EXPECT_EQ(stats::factorial(20), 2432902008176640000ull);
}

TEST(Lehmer, RankUnrankRoundTripAllOfS4) {
  std::vector<std::uint64_t> perm(4);
  for (std::uint64_t r = 0; r < 24; ++r) {
    stats::permutation_unrank(r, perm);
    EXPECT_TRUE(stats::is_permutation_of_iota(perm));
    EXPECT_EQ(stats::permutation_rank(perm), r);
  }
}

TEST(Lehmer, LexicographicOrder) {
  std::vector<std::uint64_t> a(3);
  std::vector<std::uint64_t> b(3);
  stats::permutation_unrank(0, a);
  EXPECT_EQ(a, (std::vector<std::uint64_t>{0, 1, 2}));
  stats::permutation_unrank(5, b);
  EXPECT_EQ(b, (std::vector<std::uint64_t>{2, 1, 0}));
}

TEST(Lehmer, DetectsNonPermutations) {
  EXPECT_FALSE(stats::is_permutation_of_iota(std::vector<std::uint64_t>{0, 0, 2}));
  EXPECT_FALSE(stats::is_permutation_of_iota(std::vector<std::uint64_t>{0, 3, 1}));
  EXPECT_TRUE(stats::is_permutation_of_iota(std::vector<std::uint64_t>{2, 0, 1}));
}

TEST(PermStats, FixedPointsCyclesInversions) {
  const std::vector<std::uint64_t> id{0, 1, 2, 3};
  EXPECT_EQ(stats::count_fixed_points(id), 4u);
  EXPECT_EQ(stats::count_cycles(id), 4u);
  EXPECT_EQ(stats::count_inversions(id), 0u);

  const std::vector<std::uint64_t> rev{3, 2, 1, 0};
  EXPECT_EQ(stats::count_fixed_points(rev), 0u);
  EXPECT_EQ(stats::count_cycles(rev), 2u);  // (03)(12)
  EXPECT_EQ(stats::count_inversions(rev), 6u);

  const std::vector<std::uint64_t> cyc{1, 2, 3, 0};
  EXPECT_EQ(stats::count_cycles(cyc), 1u);
}

// --- moments -----------------------------------------------------------------

TEST(Moments, MatchesClosedForm) {
  stats::running_moments m;
  for (int i = 1; i <= 5; ++i) m.add(i);
  EXPECT_EQ(m.count(), 5u);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
}

TEST(Moments, ZAgainstTrueMeanIsSmall) {
  rng::philox4x64 e(300, 0);
  stats::running_moments m;
  for (int i = 0; i < 100000; ++i) m.add(rng::canonical_double(e));
  EXPECT_LT(std::fabs(m.z_against(0.5)), 6.0);
}

}  // namespace
