// Integration tests for Algorithm 1 -- the full parallel random
// permutation: validity, *exhaustive uniformity* (chi-square over all n!
// outcomes of the complete parallel pipeline), distributional invariants
// (fixed points, cycles, inversions), general margins, and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "cgm/machine.hpp"
#include "core/driver.hpp"
#include "core/permute.hpp"
#include "stats/chisq.hpp"
#include "stats/lehmer.hpp"
#include "stats/moments.hpp"

namespace {

using namespace cgp;
using core::matrix_algorithm;
using core::permute_options;

class PermuteAlg : public ::testing::TestWithParam<matrix_algorithm> {
 protected:
  permute_options opts() const {
    permute_options o;
    o.matrix = GetParam();
    return o;
  }
};

TEST_P(PermuteAlg, OutputIsAPermutation) {
  cgm::machine mach(4, 100);
  const auto pi = core::random_permutation_global(mach, 256, opts());
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

TEST_P(PermuteAlg, WorksAcrossProcessorCounts) {
  for (const std::uint32_t p : {1u, 2u, 3u, 5u, 8u, 16u}) {
    cgm::machine mach(p, 200 + p);
    const auto pi = core::random_permutation_global(mach, 16 * p, opts());
    EXPECT_TRUE(stats::is_permutation_of_iota(pi)) << "p=" << p;
  }
}

TEST_P(PermuteAlg, ExhaustiveUniformityOverS4) {
  // The strongest empirical check of Theorem 1: run the whole parallel
  // pipeline (2 processors, 2 items each) thousands of times and chi-square
  // the histogram over all 4! = 24 permutations.
  cgm::machine mach(2, 0);
  std::vector<std::uint64_t> counts(24, 0);
  const int reps = 24 * 250;
  for (int rep = 0; rep < reps; ++rep) {
    mach.reseed(0xABC000 + rep);
    const auto pi = core::random_permutation_global(mach, 4, opts());
    ASSERT_TRUE(stats::is_permutation_of_iota(pi));
    ++counts[stats::permutation_rank(pi)];
  }
  const auto res = stats::chi_square_uniform(counts);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic << " dof=" << res.dof;
}

INSTANTIATE_TEST_SUITE_P(Algs, PermuteAlg,
                         ::testing::Values(matrix_algorithm::optimal, matrix_algorithm::logp,
                                           matrix_algorithm::replicated),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case matrix_algorithm::optimal: return "optimal";
                             case matrix_algorithm::logp: return "logp";
                             default: return "replicated";
                           }
                         });

TEST(Permute, ExhaustiveUniformityThreeProcsS6) {
  // 3 processors x 2 items: 6! = 720 cells, pooled chi-square.
  cgm::machine mach(3, 0);
  std::vector<std::uint64_t> counts(720, 0);
  const int reps = 720 * 30;
  for (int rep = 0; rep < reps; ++rep) {
    mach.reseed(0xDEF000 + rep);
    const auto pi = core::random_permutation_global(mach, 6);
    ++counts[stats::permutation_rank(pi)];
  }
  const auto res = stats::chi_square_uniform(counts);
  EXPECT_GT(res.p_value, 1e-9) << "chi2=" << res.statistic;
}

TEST(Permute, FixedPointCountMatchesTheory) {
  // Uniform permutations have E[fixed points] = 1, Var = 1 (n >= 2).
  cgm::machine mach(4, 0);
  stats::running_moments m;
  for (int rep = 0; rep < 3000; ++rep) {
    mach.reseed(0x111000 + rep);
    const auto pi = core::random_permutation_global(mach, 64);
    m.add(static_cast<double>(stats::count_fixed_points(pi)));
  }
  EXPECT_LT(std::fabs(m.z_against(1.0)), 6.0);
  EXPECT_NEAR(m.variance(), 1.0, 0.15);
}

TEST(Permute, CycleCountMatchesHarmonicNumber) {
  // E[#cycles] = H_n = sum 1/k.
  const std::uint64_t n = 48;
  double hn = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) hn += 1.0 / static_cast<double>(k);
  cgm::machine mach(4, 0);
  stats::running_moments m;
  for (int rep = 0; rep < 3000; ++rep) {
    mach.reseed(0x222000 + rep);
    const auto pi = core::random_permutation_global(mach, n);
    m.add(static_cast<double>(stats::count_cycles(pi)));
  }
  EXPECT_LT(std::fabs(m.z_against(hn)), 6.0);
}

TEST(Permute, InversionCountMatchesTheory) {
  // E[inversions] = n(n-1)/4.
  const std::uint64_t n = 64;
  cgm::machine mach(8, 0);
  stats::running_moments m;
  for (int rep = 0; rep < 2000; ++rep) {
    mach.reseed(0x333000 + rep);
    const auto pi = core::random_permutation_global(mach, n);
    m.add(static_cast<double>(stats::count_inversions(pi)));
  }
  EXPECT_LT(std::fabs(m.z_against(static_cast<double>(n * (n - 1)) / 4.0)), 6.0);
}

TEST(Permute, PositionLawOfSingleItemIsUniform) {
  // Item 0's image must be uniform over all n positions.
  const std::uint64_t n = 32;
  cgm::machine mach(4, 0);
  std::vector<std::uint64_t> counts(n, 0);
  for (int rep = 0; rep < 16000; ++rep) {
    mach.reseed(0x444000 + rep);
    const auto pi = core::random_permutation_global(mach, n);
    ++counts[pi[0]];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(Permute, PermutesArbitraryPayloadTypes) {
  cgm::machine mach(4, 500);
  std::vector<double> data(128);
  std::iota(data.begin(), data.end(), 0.5);
  const auto shuffled = core::permute_global(mach, data);
  ASSERT_EQ(shuffled.size(), data.size());
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, data);
  EXPECT_NE(shuffled, data);  // astronomically unlikely to be identity
}

TEST(Permute, UnevenSizesUseGeneralPipeline) {
  // n not divisible by p exercises parallel_random_permutation_general.
  cgm::machine mach(4, 501);
  const auto pi = core::random_permutation_global(mach, 103);
  EXPECT_TRUE(stats::is_permutation_of_iota(pi));
}

TEST(Permute, GeneralPipelineUniformOverS4) {
  // 3 processors, blocks (2,1,1): exhaustive chi-square over 4! cells.
  cgm::machine mach(3, 0);
  std::vector<std::uint64_t> counts(24, 0);
  for (int rep = 0; rep < 24 * 250; ++rep) {
    mach.reseed(0x555000 + rep);
    const auto pi = core::random_permutation_global(mach, 4);
    ASSERT_TRUE(stats::is_permutation_of_iota(pi));
    ++counts[stats::permutation_rank(pi)];
  }
  EXPECT_GT(stats::chi_square_uniform(counts).p_value, 1e-9);
}

TEST(Permute, DeterministicForFixedSeedAndIndependentAcrossCalls) {
  // Repeated calls on ONE machine are independent draws (the pre-fix
  // dispatch re-keyed every run identically and returned the same
  // permutation twice); a machine with the same seed replays the run
  // sequence call for call, and reseed resets the sequence.
  cgm::machine mach(4, 600);
  const auto a = core::random_permutation_global(mach, 128);
  const auto b = core::random_permutation_global(mach, 128);
  EXPECT_NE(a, b);

  cgm::machine replay(4, 600);
  EXPECT_EQ(a, core::random_permutation_global(replay, 128));
  EXPECT_EQ(b, core::random_permutation_global(replay, 128));

  mach.reseed(600);
  EXPECT_EQ(a, core::random_permutation_global(mach, 128));
  mach.reseed(601);
  EXPECT_NE(a, core::random_permutation_global(mach, 128));
}

TEST(Permute, StatsReportTheFourResources) {
  cgm::machine mach(8, 700);
  cgm::run_stats stats;
  const std::uint64_t n = 1024;
  (void)core::random_permutation_global(mach, n, {}, &stats);
  const std::uint64_t m = n / 8;
  // Work: two shuffles + matrix + assembly, all O(m + p) per processor.
  EXPECT_LE(stats.max_compute_per_proc(), 20 * (m + 8));
  EXPECT_GE(stats.max_compute_per_proc(), 2 * m);
  // Bandwidth: each processor exchanges its block once (plus O(p) control).
  EXPECT_LE(stats.max_words_per_proc(), 6 * m + 60 * 8);
  // Random numbers: 2 draws per item locally + O(p) for the matrix.
  EXPECT_LE(stats.max_rng_draws_per_proc(), 6 * m + 60 * 8);
  EXPECT_GE(stats.total_rng_draws(), 2 * n);  // at least the two shuffles
  // Supersteps: constant + log p for the matrix phase.
  EXPECT_LE(stats.per_proc.front().supersteps, 10u);
}

TEST(Permute, BalanceNoProcessorOverloaded) {
  // The balance criterion: per-processor peaks within a small factor of
  // the average (Proposition 1).
  cgm::machine mach(8, 701);
  cgm::run_stats stats;
  (void)core::random_permutation_global(mach, 4096, {}, &stats);
  const std::uint64_t avg = stats.total_compute() / 8;
  for (const auto& ps : stats.per_proc) {
    EXPECT_LE(ps.compute_ops, 3 * avg);
    EXPECT_GE(ps.compute_ops, avg / 3);
  }
}

TEST(Permute, EmptyAndTinyInputs) {
  cgm::machine mach(2, 702);
  const auto zero = core::random_permutation_global(mach, 0);
  EXPECT_TRUE(zero.empty());
  const auto two = core::random_permutation_global(mach, 2);
  EXPECT_TRUE(stats::is_permutation_of_iota(two));
}

}  // namespace
