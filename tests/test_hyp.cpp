// Unit tests for the exact hypergeometric probability machinery (paper
// Section 3, eq. (4)): pmf identities, cdf, mode, moments, support.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "hyp/pmf.hpp"

namespace {

using namespace cgp;
using hyp::params;

TEST(HypPmf, SupportBounds) {
  // t <= b: support starts at 0; t > b: at t - b.
  EXPECT_EQ(hyp::support_min(params{5, 10, 10}), 0u);
  EXPECT_EQ(hyp::support_min(params{15, 10, 10}), 5u);
  EXPECT_EQ(hyp::support_max(params{5, 10, 10}), 5u);
  EXPECT_EQ(hyp::support_max(params{15, 10, 10}), 10u);
}

TEST(HypPmf, DegenerateCases) {
  EXPECT_TRUE(hyp::degenerate(params{0, 5, 5}));    // draw nothing
  EXPECT_TRUE(hyp::degenerate(params{10, 5, 5}));   // draw everything
  EXPECT_TRUE(hyp::degenerate(params{3, 0, 7}));    // no whites
  EXPECT_TRUE(hyp::degenerate(params{3, 7, 0}));    // no blacks
  EXPECT_FALSE(hyp::degenerate(params{3, 7, 4}));
}

TEST(HypPmf, HandComputedSmallCase) {
  // h(2, 3, 2): P[k] = C(3,k) C(2,2-k) / C(5,2), k in {0,1,2}.
  const params p{2, 3, 2};
  EXPECT_NEAR(hyp::pmf(p, 0), 1.0 / 10, 1e-14);
  EXPECT_NEAR(hyp::pmf(p, 1), 6.0 / 10, 1e-14);
  EXPECT_NEAR(hyp::pmf(p, 2), 3.0 / 10, 1e-14);
}

TEST(HypPmf, SumsToOneAcrossRegimes) {
  for (const auto& p :
       {params{5, 10, 10}, params{50, 100, 37}, params{1000, 5000, 3000},
        params{7, 3, 100}, params{99, 50, 50}}) {
    const auto table = hyp::pmf_table(p);
    const double sum = std::accumulate(table.begin(), table.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "t=" << p.t << " w=" << p.w << " b=" << p.b;
  }
}

TEST(HypPmf, TableMatchesDirectPmf) {
  const params p{40, 60, 80};
  const auto table = hyp::pmf_table(p);
  const std::uint64_t lo = hyp::support_min(p);
  for (std::uint64_t k = lo; k <= hyp::support_max(p); ++k)
    EXPECT_NEAR(table[k - lo], hyp::pmf(p, k), 1e-12);
}

TEST(HypPmf, OutOfSupportIsZero) {
  const params p{15, 10, 10};
  EXPECT_EQ(hyp::pmf(p, 4), 0.0);   // below support (min is 5)
  EXPECT_EQ(hyp::pmf(p, 11), 0.0);  // above support (max is 10)
  EXPECT_EQ(hyp::log_pmf(p, 4), -std::numeric_limits<double>::infinity());
}

TEST(HypPmf, StepRatioConsistent) {
  const params p{30, 40, 50};
  for (std::uint64_t k = hyp::support_min(p); k < hyp::support_max(p); ++k) {
    const double ratio = hyp::pmf(p, k + 1) / hyp::pmf(p, k);
    EXPECT_NEAR(ratio, hyp::pmf_step_up(p, k), 1e-9 * ratio + 1e-12);
  }
}

TEST(HypPmf, ModeIsArgmax) {
  for (const auto& p : {params{5, 10, 10}, params{50, 100, 37}, params{17, 3, 100},
                        params{99, 50, 50}, params{1, 1, 1}}) {
    const std::uint64_t md = hyp::mode(p);
    const double pm = hyp::pmf(p, md);
    if (md > hyp::support_min(p)) EXPECT_LE(hyp::pmf(p, md - 1), pm * (1 + 1e-12));
    if (md < hyp::support_max(p)) EXPECT_LE(hyp::pmf(p, md + 1), pm * (1 + 1e-12));
  }
}

TEST(HypPmf, MeanVarianceClosedForm) {
  const params p{20, 30, 70};
  // mean = t w / n = 20*30/100 = 6
  EXPECT_DOUBLE_EQ(hyp::mean(p), 6.0);
  // var = t (w/n)(b/n)(n-t)/(n-1) = 20*0.3*0.7*80/99
  EXPECT_NEAR(hyp::variance(p), 20.0 * 0.3 * 0.7 * 80.0 / 99.0, 1e-12);
}

TEST(HypPmf, MomentsMatchPmfTable) {
  const params p{25, 40, 60};
  const auto table = hyp::pmf_table(p);
  const std::uint64_t lo = hyp::support_min(p);
  double mean = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) mean += table[i] * static_cast<double>(lo + i);
  EXPECT_NEAR(mean, hyp::mean(p), 1e-9);
  double var = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const double d = static_cast<double>(lo + i) - mean;
    var += table[i] * d * d;
  }
  EXPECT_NEAR(var, hyp::variance(p), 1e-8 * var + 1e-10);
}

TEST(HypCdf, EndpointsAndMonotonicity) {
  const params p{30, 50, 50};
  EXPECT_EQ(hyp::cdf(p, hyp::support_max(p)), 1.0);
  if (hyp::support_min(p) > 0) EXPECT_EQ(hyp::cdf(p, hyp::support_min(p) - 1), 0.0);
  double prev = 0.0;
  for (std::uint64_t k = hyp::support_min(p); k <= hyp::support_max(p); ++k) {
    const double c = hyp::cdf(p, k);
    EXPECT_GE(c + 1e-15, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(HypCdf, MatchesPmfPartialSums) {
  const params p{12, 20, 15};
  double acc = 0.0;
  for (std::uint64_t k = hyp::support_min(p); k <= hyp::support_max(p); ++k) {
    acc += hyp::pmf(p, k);
    EXPECT_NEAR(hyp::cdf(p, k), acc, 1e-12);
  }
}

TEST(HypPmf, SymmetryWhiteBlack) {
  // Drawing t and counting whites vs. counting blacks: P_{w,b}(k) =
  // P_{b,w}(t-k).
  const params p{10, 14, 25};
  const params q{10, 25, 14};
  for (std::uint64_t k = 0; k <= 10; ++k)
    EXPECT_NEAR(hyp::pmf(p, k), hyp::pmf(q, 10 - k), 1e-13);
}

TEST(HypPmf, SymmetrySampleComplement) {
  // Drawing t vs. drawing n-t: P_t(k) = P_{n-t}(w-k).
  const params p{10, 14, 25};   // n = 39
  const params q{29, 14, 25};
  for (std::uint64_t k = 0; k <= 10; ++k)
    EXPECT_NEAR(hyp::pmf(p, k), hyp::pmf(q, 14 - k), 1e-13);
}

TEST(HypPmf, LargeParametersStaySane) {
  // Regime of the paper's experiments: n ~ 5e8, blocks ~ 1e7.
  const params p{10'000'000, 10'000'000, 470'000'000};
  const std::uint64_t md = hyp::mode(p);
  EXPECT_GT(hyp::pmf(p, md), 0.0);
  EXPECT_LT(hyp::pmf(p, md), 1.0);
  EXPECT_NEAR(hyp::mean(p), 10e6 * 10e6 / 480e6, 1.0);
  EXPECT_EQ(hyp::cdf(p, hyp::support_max(p)), 1.0);
}

TEST(LogChoose, MatchesExactSmall) {
  EXPECT_NEAR(hyp::log_choose(10, 3), std::log(120.0), 1e-12);
  EXPECT_NEAR(hyp::log_choose(52, 5), std::log(2598960.0), 1e-10);
  EXPECT_DOUBLE_EQ(hyp::log_choose(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(hyp::log_choose(7, 7), 0.0);
}

}  // namespace
