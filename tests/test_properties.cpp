// Property-based sweeps: randomized-but-seeded parameter generation drives
// invariant checks across hundreds of configurations of every layer --
// support bounds of the samplers, conservation laws of the matrices,
// permutation validity of every shuffle, and the self-similarity property
// (Proposition 4) under random block merges.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cgm/machine.hpp"
#include "core/driver.hpp"
#include "core/sample_matrix.hpp"
#include "hyp/pmf.hpp"
#include "hyp/sample.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "rng/uniform.hpp"
#include "seq/baselines.hpp"
#include "seq/blocked_shuffle.hpp"
#include "seq/fisher_yates.hpp"
#include "seq/rao_sandelius.hpp"
#include "stats/lehmer.hpp"
#include "util/prefix.hpp"

namespace {

using namespace cgp;
using engine_t = rng::counting_engine<rng::philox4x64>;

// --- hypergeometric sampler properties over a random parameter cloud ---------

class HypProperty : public ::testing::TestWithParam<int> {};

TEST_P(HypProperty, SampleAlwaysInSupportAndBudgeted) {
  const int salt = GetParam();
  rng::philox4x64 gen(0xA0 + salt, 0);
  engine_t e{rng::philox4x64(0xB0 + salt, 1)};
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t w = rng::uniform_below(gen, 1u << (4 + salt % 12));
    const std::uint64_t b = rng::uniform_below(gen, 1u << (4 + (salt * 7) % 12));
    const std::uint64_t t = rng::uniform_below(gen, w + b + 1);
    const hyp::params p{t, w, b};
    e.reset_count();
    const std::uint64_t k = hyp::sample(e, p);
    ASSERT_GE(k, hyp::support_min(p)) << "t=" << t << " w=" << w << " b=" << b;
    ASSERT_LE(k, hyp::support_max(p));
    ASSERT_LE(e.count(), 64u) << "runaway rejection loop";
  }
}

TEST_P(HypProperty, CdfPmfConsistencyRandomParams) {
  const int salt = GetParam();
  rng::philox4x64 gen(0xC0 + salt, 0);
  for (int iter = 0; iter < 20; ++iter) {
    const std::uint64_t w = 1 + rng::uniform_below(gen, 200);
    const std::uint64_t b = 1 + rng::uniform_below(gen, 200);
    const std::uint64_t t = rng::uniform_below(gen, w + b + 1);
    const hyp::params p{t, w, b};
    const auto table = hyp::pmf_table(p);
    const double sum = std::accumulate(table.begin(), table.end(), 0.0);
    ASSERT_NEAR(sum, 1.0, 1e-9);
    // cdf at a random point equals the partial sum.
    const std::uint64_t lo = hyp::support_min(p);
    const std::uint64_t k = lo + rng::uniform_below(gen, table.size());
    double part = 0.0;
    for (std::uint64_t i = lo; i <= k; ++i) part += table[i - lo];
    ASSERT_NEAR(hyp::cdf(p, k), part, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Salts, HypProperty, ::testing::Range(0, 12));

// --- matrix sampling properties ------------------------------------------------

class MatrixProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatrixProperty, RandomMarginsAlwaysConserved) {
  const int salt = GetParam();
  rng::philox4x64 gen(0xD00 + salt, 0);
  engine_t e{rng::philox4x64(0xE00 + salt, 1)};
  for (int iter = 0; iter < 12; ++iter) {
    const auto p = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 12));
    const auto pc = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 12));
    // Random margins with equal totals: distribute n into p and pc buckets.
    const std::uint64_t n = rng::uniform_below(gen, 500);
    std::vector<std::uint64_t> rm(p, 0);
    std::vector<std::uint64_t> cm(pc, 0);
    for (std::uint64_t x = 0; x < n; ++x) ++rm[rng::uniform_below(gen, p)];
    for (std::uint64_t x = 0; x < n; ++x) ++cm[rng::uniform_below(gen, pc)];

    const auto a = core::sample_matrix_rowwise(e, rm, cm);
    ASSERT_TRUE(a.satisfies_margins(rm, cm));
    const auto b = core::sample_matrix_recursive(e, rm, cm);
    ASSERT_TRUE(b.satisfies_margins(rm, cm));
  }
}

TEST_P(MatrixProperty, MergeConservesUnderRandomBounds) {
  const int salt = GetParam();
  rng::philox4x64 gen(0xF00 + salt, 0);
  engine_t e{rng::philox4x64(0x1000 + salt, 1)};
  const std::uint32_t p = 8;
  const std::vector<std::uint64_t> margins(p, 16);
  const auto a = core::sample_matrix_recursive(e, margins, margins);

  // Random strictly increasing bounds 0 = b0 < ... < bq = p.
  std::vector<std::uint32_t> bounds{0};
  for (std::uint32_t i = 1; i < p; ++i)
    if (rng::uniform_below(gen, 2) == 1) bounds.push_back(i);
  bounds.push_back(p);

  const auto m = a.merge(bounds, bounds);
  ASSERT_EQ(m.total(), a.total());
  // Merged margins are sums of the fine margins.
  const auto rs = m.row_sums();
  for (std::size_t g = 0; g + 1 < bounds.size(); ++g)
    ASSERT_EQ(rs[g], static_cast<std::uint64_t>(bounds[g + 1] - bounds[g]) * 16);
}

INSTANTIATE_TEST_SUITE_P(Salts, MatrixProperty, ::testing::Range(0, 10));

// --- every shuffle yields a permutation, across sizes --------------------------

class ShuffleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShuffleProperty, AllShufflesPreserveMultiset) {
  const std::size_t n = GetParam();
  engine_t e{rng::philox4x64(0x2000 + n, 0)};
  std::vector<std::uint64_t> v(n);

  const auto check = [&](auto&& shuffle, const char* name) {
    std::iota(v.begin(), v.end(), 0);
    shuffle(std::span<std::uint64_t>(v));
    ASSERT_TRUE(stats::is_permutation_of_iota(v)) << name << " n=" << n;
  };

  check([&](std::span<std::uint64_t> s) { seq::fisher_yates(e, s); }, "fisher_yates");
  check([&](std::span<std::uint64_t> s) { seq::blocked_shuffle(e, s); }, "blocked");
  check([&](std::span<std::uint64_t> s) { seq::rs_shuffle(e, s); }, "rao_sandelius");
  check([&](std::span<std::uint64_t> s) { seq::shuffle_by_sorting(e, s); }, "sort");
  check([&](std::span<std::uint64_t> s) { seq::dart_throwing_shuffle(e, s); }, "dart");
  check([&](std::span<std::uint64_t> s) { seq::riffle_shuffle(e, s, 7); }, "riffle");
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShuffleProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 17, 64, 100, 1000, 4096));

// --- the parallel pipeline under random (p, n) ---------------------------------

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, RandomShapesYieldValidPermutations) {
  const int salt = GetParam();
  rng::philox4x64 gen(0x3000 + salt, 0);
  for (int iter = 0; iter < 6; ++iter) {
    const auto p = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 10));
    const std::uint64_t n = rng::uniform_below(gen, 300);
    cgm::machine mach(p, 0x4000 + salt * 100 + iter);
    const auto pi = core::random_permutation_global(mach, n);
    ASSERT_TRUE(stats::is_permutation_of_iota(pi)) << "p=" << p << " n=" << n;
  }
}

TEST_P(PipelineProperty, ResourceBoundsHoldForRandomShapes) {
  // Theorem 1: O(m + p) of everything, per processor.  Generous constants;
  // the point is the *shape* (no quadratic blowup anywhere).
  const int salt = GetParam();
  rng::philox4x64 gen(0x5000 + salt, 0);
  const auto p = static_cast<std::uint32_t>(2 + rng::uniform_below(gen, 8));
  const std::uint64_t m = 64 + rng::uniform_below(gen, 512);
  cgm::machine mach(p, 0x6000 + salt);
  cgm::run_stats stats;
  (void)core::random_permutation_global(mach, m * p, {}, &stats);
  const std::uint64_t budget = 30 * (m + 40 * p);
  EXPECT_LE(stats.max_compute_per_proc(), budget);
  EXPECT_LE(stats.max_words_per_proc(), budget);
  EXPECT_LE(stats.max_rng_draws_per_proc(), budget);
}

INSTANTIATE_TEST_SUITE_P(Salts, PipelineProperty, ::testing::Range(0, 8));

// --- prefix/block helpers under random inputs -----------------------------------

class PrefixProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrefixProperty, OwnerOffsetSizeAgree) {
  const int salt = GetParam();
  rng::philox4x64 gen(0x7000 + salt, 0);
  for (int iter = 0; iter < 40; ++iter) {
    const std::uint64_t n = rng::uniform_below(gen, 10000);
    const auto p = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 64));
    const auto sizes = balanced_blocks(n, p);
    ASSERT_EQ(span_sum(sizes), n);
    // Sizes differ by at most one.
    const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
    ASSERT_LE(*mx - *mn, 1u);
    if (n == 0) continue;
    const std::uint64_t g = rng::uniform_below(gen, n);
    const std::uint32_t owner = balanced_block_owner(n, p, g);
    ASSERT_LT(owner, p);
    ASSERT_LE(balanced_block_offset(n, p, owner), g);
    ASSERT_LT(g, balanced_block_offset(n, p, owner) + sizes[owner]);
  }
}

INSTANTIATE_TEST_SUITE_P(Salts, PrefixProperty, ::testing::Range(0, 6));

}  // namespace
