#include "obs/exposition.hpp"

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cgp::obs {

namespace {

void append_line(std::string& out, const std::string& name, const std::string& labels,
                 std::uint64_t v) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

void append_line(std::string& out, const std::string& name, const std::string& labels,
                 std::int64_t v) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

std::string quantile_label(const char* q, const std::string& extra) {
  std::string l = "{";
  if (!extra.empty()) l += extra + ",";
  l += std::string("quantile=\"") + q + "\"}";
  return l;
}

// One summary block: quantiles + _sum + _count, optionally labeled.
void append_summary(std::string& out, const std::string& name, const std::string& extra,
                    std::uint64_t p50, std::uint64_t p90, std::uint64_t p99,
                    std::uint64_t sum, std::uint64_t count, std::uint64_t p99_exemplar) {
  append_line(out, name, quantile_label("0.5", extra), p50);
  append_line(out, name, quantile_label("0.9", extra), p90);
  append_line(out, name, quantile_label("0.99", extra), p99);
  const std::string plain = extra.empty() ? "" : "{" + extra + "}";
  append_line(out, name + "_sum", plain, sum);
  append_line(out, name + "_count", plain, count);
  if (p99_exemplar != 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "# exemplar %s trace_id=0x%016llx\n", name.c_str(),
                  static_cast<unsigned long long>(p99_exemplar));
    out += buf;
  }
}

std::string client_label(std::uint64_t id) {
  return "client_id=\"" + std::to_string(id) + "\"";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "cgp_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') ? c : '_';
  }
  return out;
}

std::string prometheus_exposition() {
  std::string out;
  out.reserve(1 << 14);
  for (const metric_snapshot& s : snapshot()) {
    const std::string name = prometheus_name(s.name);
    switch (s.which) {
      case metric_snapshot::kind::counter:
        out += "# TYPE " + name + "_total counter\n";
        append_line(out, name + "_total", "", s.count);
        break;
      case metric_snapshot::kind::gauge:
        out += "# TYPE " + name + " gauge\n";
        append_line(out, name, "", s.level);
        out += "# TYPE " + name + "_peak gauge\n";
        append_line(out, name + "_peak", "", s.peak);
        break;
      case metric_snapshot::kind::histogram:
        out += "# TYPE " + name + " summary\n";
        append_summary(out, name, "", s.p50, s.p90, s.p99, s.sum, s.count, s.p99_exemplar);
        break;
      case metric_snapshot::kind::counter_family:
      case metric_snapshot::kind::histogram_family:
        break;  // snapshot() never returns these
    }
  }
  for (const family_snapshot& f : family_snapshots()) {
    const std::string name = prometheus_name(f.name);
    if (!f.histograms) {
      out += "# TYPE " + name + "_total counter\n";
      for (const auto& e : f.entries) {
        append_line(out, name + "_total", "{" + client_label(e.label) + "}", e.stats.count);
      }
      if (f.overflow_count != 0) {
        append_line(out, name + "_total", "{client_id=\"overflow\"}", f.overflow_count);
      }
    } else {
      out += "# TYPE " + name + " summary\n";
      for (const auto& e : f.entries) {
        append_summary(out, name, client_label(e.label), e.stats.p50, e.stats.p90,
                       e.stats.p99, e.stats.sum, e.stats.count, e.stats.p99_exemplar);
      }
      if (f.overflow_count != 0) {
        append_line(out, name + "_count", "{client_id=\"overflow\"}", f.overflow_count);
      }
    }
  }
  return out;
}

}  // namespace cgp::obs
