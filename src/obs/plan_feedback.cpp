#include "obs/plan_feedback.hpp"

#include <deque>
#include <mutex>

#include "obs/metrics.hpp"

namespace cgp::obs {

namespace {

thread_local phase_collector* t_collector = nullptr;

struct feedback_log {
  std::mutex mutex;
  std::deque<plan_feedback_record> records;
};

feedback_log& log_instance() {
  static feedback_log log;
  return log;
}

void add_phase(std::vector<phase_time>& phases, const std::string& label, double seconds) {
  for (auto& p : phases) {
    if (p.label == label) {
      p.seconds += seconds;
      return;
    }
  }
  phases.push_back({label, seconds});
}

}  // namespace

phase_collector::phase_collector() noexcept : prev_(t_collector) { t_collector = this; }

phase_collector::~phase_collector() { t_collector = prev_; }

void phase_collector::add(const char* label, double seconds) {
  for (auto& p : phases_) {
    if (p.label == label) {
      p.seconds += seconds;
      return;
    }
  }
  phases_.push_back({label, seconds});
}

bool phase_collector_active() noexcept { return t_collector != nullptr; }

void note_phase(const char* label, double seconds) noexcept {
  if (t_collector != nullptr) t_collector->add(label, seconds);
}

void record_plan_feedback(plan_feedback_record rec) {
  if (!enabled()) return;
  feedback_log& log = log_instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  if (log.records.size() >= kFeedbackLogCapacity) log.records.pop_front();
  log.records.push_back(std::move(rec));
}

std::vector<plan_feedback_record> plan_feedback_log() {
  feedback_log& log = log_instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  return {log.records.begin(), log.records.end()};
}

backend_feedback plan_feedback_for(std::string_view backend) {
  backend_feedback out;
  feedback_log& log = log_instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  for (const auto& rec : log.records) {
    if (rec.backend != backend) continue;
    ++out.jobs;
    out.predicted_seconds += rec.predicted_seconds;
    out.measured_seconds += rec.measured_seconds;
    for (const auto& p : rec.predicted_phases) add_phase(out.predicted_phases, p.label, p.seconds);
    for (const auto& p : rec.measured_phases) add_phase(out.measured_phases, p.label, p.seconds);
  }
  return out;
}

void clear_plan_feedback() {
  feedback_log& log = log_instance();
  const std::lock_guard<std::mutex> lock(log.mutex);
  log.records.clear();
}

}  // namespace cgp::obs
