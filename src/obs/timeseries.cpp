#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace cgp::obs {

sampler::sampler(sampler_options opt) : opt_(opt) {
  if (opt_.period_ms == 0) opt_.period_ms = 1;
  if (opt_.slots == 0) opt_.slots = 1;
  ring_.resize(opt_.slots);
}

sampler::~sampler() { stop(); }

void sampler::start() {
  const std::lock_guard<std::mutex> lock(m_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void sampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  const std::lock_guard<std::mutex> lock(m_);
  running_ = false;
}

bool sampler::running() const noexcept {
  const std::lock_guard<std::mutex> lock(m_);
  return running_;
}

void sampler::loop() {
  std::unique_lock<std::mutex> lock(m_);
  while (!stop_requested_) {
    take_sample_locked();
    cv_.wait_for(lock, std::chrono::milliseconds(opt_.period_ms),
                 [this] { return stop_requested_; });
  }
}

void sampler::sample_now() {
  const std::lock_guard<std::mutex> lock(m_);
  take_sample_locked();
}

void sampler::take_sample_locked() {
  const std::vector<metric_snapshot> snap = snapshot();
  sample_slot& slot = ring_[static_cast<std::size_t>(taken_ % opt_.slots)];
  slot.t_ms = detail::trace_now_ns() / 1000000u;
  // Grow the series map for names seen for the first time; the registry
  // only ever gains metrics, so after warm-up this loop allocates nothing.
  if (slot.values.size() < series_.size()) slot.values.resize(series_.size());
  std::fill(slot.values.begin(), slot.values.end(), std::int64_t{0});
  for (const metric_snapshot& s : snap) {
    std::size_t idx = series_.size();
    for (std::size_t i = 0; i < series_.size(); ++i) {
      if (series_[i] == s.name) {
        idx = i;
        break;
      }
    }
    if (idx == series_.size()) {
      series_.push_back(s.name);
      for (sample_slot& sl : ring_) sl.values.resize(series_.size(), 0);
    }
    std::int64_t v = 0;
    switch (s.which) {
      case metric_snapshot::kind::counter:
      case metric_snapshot::kind::histogram:
        v = static_cast<std::int64_t>(s.count);
        break;
      case metric_snapshot::kind::gauge:
        v = s.level;
        break;
      case metric_snapshot::kind::counter_family:
      case metric_snapshot::kind::histogram_family:
        break;  // not in snapshot(); families are served whole via snapshot_json
    }
    slot.values[idx] = v;
  }
  ++taken_;
}

std::uint64_t sampler::samples_taken() const noexcept {
  const std::lock_guard<std::mutex> lock(m_);
  return taken_;
}

std::string sampler::ring_json() const {
  const std::lock_guard<std::mutex> lock(m_);
  std::string out = "{\"period_ms\": " + std::to_string(opt_.period_ms) +
                    ", \"slots\": " + std::to_string(opt_.slots) +
                    ", \"samples_taken\": " + std::to_string(taken_) +
                    ", \"wall_epoch_ns\": \"" + std::to_string(wall_epoch_ns()) + "\"";
  out += ", \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_escape_quoted(series_[i]);
  }
  out += "]";
  const std::uint64_t held = std::min<std::uint64_t>(taken_, opt_.slots);
  const std::uint64_t first = taken_ - held;  // oldest sample index still held
  out += ", \"samples\": [";
  for (std::uint64_t k = first; k < taken_; ++k) {
    const sample_slot& s = ring_[static_cast<std::size_t>(k % opt_.slots)];
    if (k != first) out += ", ";
    out += "{\"t_ms\": " + std::to_string(s.t_ms) + ", \"values\": [";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(s.values[i]);
    }
    out += "]}";
  }
  out += "]";
  out += ", \"deltas\": [";
  bool first_delta = true;
  for (std::uint64_t k = first + 1; k < taken_; ++k) {
    const sample_slot& cur = ring_[static_cast<std::size_t>(k % opt_.slots)];
    const sample_slot& prev = ring_[static_cast<std::size_t>((k - 1) % opt_.slots)];
    if (!first_delta) out += ", ";
    first_delta = false;
    const std::uint64_t dt_ms = cur.t_ms > prev.t_ms ? cur.t_ms - prev.t_ms : 0;
    out += "{\"t_ms\": " + std::to_string(cur.t_ms) +
           ", \"dt_ms\": " + std::to_string(dt_ms) + ", \"values\": [";
    const std::size_t n = std::min(cur.values.size(), prev.values.size());
    std::string rates;
    for (std::size_t i = 0; i < cur.values.size(); ++i) {
      if (i != 0) {
        out += ", ";
        rates += ", ";
      }
      const std::int64_t d = i < n ? cur.values[i] - prev.values[i] : cur.values[i];
      out += std::to_string(d);
      const double rate = dt_ms == 0 ? 0.0
                                     : static_cast<double>(d) * 1000.0 /
                                           static_cast<double>(dt_ms);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", rate);
      rates += buf;
    }
    out += "], \"rates_per_s\": [" + rates + "]}";
  }
  out += "]}";
  return out;
}

}  // namespace cgp::obs
