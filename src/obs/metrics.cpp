#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <memory>
#include <mutex>
#include <utility>

#include "util/json.hpp"

namespace cgp::obs {

namespace {

// -1 = not yet resolved from the environment.
std::atomic<int> g_enabled{-1};

int resolve_enabled_slow() noexcept {
  // First touch: the environment decides the default.  A racing
  // set_enabled() wins -- both stores write a definite value.
  const int v = std::getenv("CGP_OBS_OFF") == nullptr ? 1 : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

// One registered metric.  The name and kind are fixed at insertion; the
// payload lives in-node so the reference survives later registrations
// (std::list keeps node addresses stable, like core/registry.hpp).
// Families sit behind unique_ptrs: they are big (64 slots) and rare, so
// only nodes of a family kind pay for one.
struct metric_node {
  metric_node(std::string n, metric_snapshot::kind k) : name(std::move(n)), which(k) {
    if (k == metric_snapshot::kind::counter_family) cf = std::make_unique<counter_family>();
    if (k == metric_snapshot::kind::histogram_family) {
      hf = std::make_unique<histogram_family>();
    }
  }
  std::string name;
  metric_snapshot::kind which;
  counter c;
  gauge g;
  histogram h;
  std::unique_ptr<counter_family> cf;
  std::unique_ptr<histogram_family> hf;
};

struct metric_registry {
  std::mutex mutex;
  std::list<metric_node> nodes;
};

metric_registry& instance() {
  static metric_registry reg;
  return reg;
}

metric_node& node_for(std::string_view name, metric_snapshot::kind kind) {
  metric_registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& n : reg.nodes) {
    if (n.name == name) {
      if (n.which != kind) {
        std::fprintf(stderr, "cgmperm: obs metric '%.*s' registered with two kinds\n",
                     static_cast<int>(name.size()), name.data());
        std::abort();
      }
      return n;
    }
  }
  return reg.nodes.emplace_back(std::string(name), kind);
}

}  // namespace

bool enabled() noexcept {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return resolve_enabled_slow() != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the k-th smallest observation, k = ceil(q * total) >= 1.
  const auto k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= k) return bucket_floor(b);
  }
  // Concurrent records can leave count_ ahead of the bucket sums; answer
  // with the highest occupied bucket.
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (counts_[b].load(std::memory_order_relaxed) != 0) return bucket_floor(b);
  }
  return 0;
}

std::uint64_t histogram::quantile_exemplar(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::size_t qb = kBuckets;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= k) {
      qb = b;
      break;
    }
  }
  if (qb == kBuckets) {
    for (std::size_t b = kBuckets; b-- > 0;) {
      if (counts_[b].load(std::memory_order_relaxed) != 0) {
        qb = b;
        break;
      }
    }
    if (qb == kBuckets) return 0;
  }
  for (std::size_t b = qb; b < kBuckets; ++b) {
    const std::uint64_t e = exemplars_[b].load(std::memory_order_relaxed);
    if (e != 0) return e;
  }
  for (std::size_t b = qb; b-- > 0;) {
    const std::uint64_t e = exemplars_[b].load(std::memory_order_relaxed);
    if (e != 0) return e;
  }
  return 0;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> counter_family::values() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const family_slot& s : slots_) {
    const std::uint64_t k = s.key.load(std::memory_order_acquire);
    if (k != 0) out.emplace_back(k - 1, s.c.value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

histogram_family::~histogram_family() {
  for (family_slot& s : slots_) delete s.h.load(std::memory_order_relaxed);
}

histogram& histogram_family::with(std::uint64_t label) {
  if (!enabled() || label == std::uint64_t(-1)) return overflow_;
  std::size_t i = static_cast<std::size_t>(rng::mix64(label)) & (kSlots - 1);
  const std::uint64_t want = label + 1;
  for (std::size_t probes = 0; probes < kSlots; ++probes, i = (i + 1) & (kSlots - 1)) {
    std::uint64_t k = slots_[i].key.load(std::memory_order_acquire);
    if (k == 0) {
      std::uint64_t expected = 0;
      if (slots_[i].key.compare_exchange_strong(expected, want,
                                                std::memory_order_acq_rel)) {
        k = want;
      } else {
        k = expected;
      }
    }
    if (k == want) {
      histogram* p = slots_[i].h.load(std::memory_order_acquire);
      if (p == nullptr) {
        auto fresh = std::make_unique<histogram>();
        histogram* expected = nullptr;
        if (slots_[i].h.compare_exchange_strong(expected, fresh.get(),
                                                std::memory_order_acq_rel)) {
          p = fresh.release();
        } else {
          p = expected;  // lost the install race; `fresh` is freed
        }
      }
      return *p;
    }
  }
  return overflow_;
}

std::vector<std::pair<std::uint64_t, const histogram*>> histogram_family::entries() const {
  std::vector<std::pair<std::uint64_t, const histogram*>> out;
  for (const family_slot& s : slots_) {
    const std::uint64_t k = s.key.load(std::memory_order_acquire);
    const histogram* p = s.h.load(std::memory_order_acquire);
    if (k != 0 && p != nullptr) out.emplace_back(k - 1, p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

counter& get_counter(std::string_view name) {
  return node_for(name, metric_snapshot::kind::counter).c;
}

gauge& get_gauge(std::string_view name) {
  return node_for(name, metric_snapshot::kind::gauge).g;
}

histogram& get_histogram(std::string_view name) {
  return node_for(name, metric_snapshot::kind::histogram).h;
}

counter_family& get_counter_family(std::string_view name) {
  return *node_for(name, metric_snapshot::kind::counter_family).cf;
}

histogram_family& get_histogram_family(std::string_view name) {
  return *node_for(name, metric_snapshot::kind::histogram_family).hf;
}

std::vector<metric_snapshot> snapshot() {
  metric_registry& reg = instance();
  std::vector<metric_snapshot> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    out.reserve(reg.nodes.size());
    for (const auto& n : reg.nodes) {
      metric_snapshot s;
      s.name = n.name;
      s.which = n.which;
      switch (n.which) {
        case metric_snapshot::kind::counter:
          s.count = n.c.value();
          break;
        case metric_snapshot::kind::gauge:
          s.level = n.g.value();
          s.peak = n.g.peak();
          break;
        case metric_snapshot::kind::histogram:
          s.count = n.h.count();
          s.sum = n.h.sum();
          s.max = n.h.max();
          s.p50 = n.h.quantile(0.50);
          s.p90 = n.h.quantile(0.90);
          s.p99 = n.h.quantile(0.99);
          s.p99_exemplar = n.h.quantile_exemplar(0.99);
          break;
        case metric_snapshot::kind::counter_family:
        case metric_snapshot::kind::histogram_family:
          continue;  // different shape; family_snapshots() covers these
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const metric_snapshot& a, const metric_snapshot& b) { return a.name < b.name; });
  return out;
}

std::vector<family_snapshot> family_snapshots() {
  metric_registry& reg = instance();
  std::vector<family_snapshot> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& n : reg.nodes) {
      if (n.which == metric_snapshot::kind::counter_family) {
        family_snapshot f;
        f.name = n.name;
        f.histograms = false;
        for (const auto& [label, v] : n.cf->values()) {
          family_snapshot::entry e;
          e.label = label;
          e.stats.which = metric_snapshot::kind::counter;
          e.stats.count = v;
          f.entries.push_back(std::move(e));
        }
        f.overflow_count = n.cf->overflow().value();
        out.push_back(std::move(f));
      } else if (n.which == metric_snapshot::kind::histogram_family) {
        family_snapshot f;
        f.name = n.name;
        f.histograms = true;
        for (const auto& [label, h] : n.hf->entries()) {
          family_snapshot::entry e;
          e.label = label;
          e.stats.which = metric_snapshot::kind::histogram;
          e.stats.count = h->count();
          e.stats.sum = h->sum();
          e.stats.max = h->max();
          e.stats.p50 = h->quantile(0.50);
          e.stats.p90 = h->quantile(0.90);
          e.stats.p99 = h->quantile(0.99);
          e.stats.p99_exemplar = h->quantile_exemplar(0.99);
          f.entries.push_back(std::move(e));
        }
        f.overflow_count = n.hf->overflow().count();
        out.push_back(std::move(f));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const family_snapshot& a, const family_snapshot& b) { return a.name < b.name; });
  return out;
}

std::string snapshot_json() {
  const std::vector<metric_snapshot> snap = snapshot();
  std::string counters = "{";
  std::string gauges = "{";
  std::string hists = "{";
  for (const auto& s : snap) {
    switch (s.which) {
      case metric_snapshot::kind::counter: {
        if (counters.size() > 1) counters += ", ";
        counters += json_escape_quoted(s.name) + ": " + std::to_string(s.count);
        break;
      }
      case metric_snapshot::kind::gauge: {
        if (gauges.size() > 1) gauges += ", ";
        gauges += json_escape_quoted(s.name) + ": {\"value\": " + std::to_string(s.level) +
                  ", \"peak\": " + std::to_string(s.peak) + "}";
        break;
      }
      case metric_snapshot::kind::histogram: {
        if (hists.size() > 1) hists += ", ";
        hists += json_escape_quoted(s.name) + ": {\"count\": " + std::to_string(s.count) +
                 ", \"sum\": " + std::to_string(s.sum) + ", \"max\": " + std::to_string(s.max) +
                 ", \"p50\": " + std::to_string(s.p50) + ", \"p90\": " + std::to_string(s.p90) +
                 ", \"p99\": " + std::to_string(s.p99) +
                 ", \"p99_exemplar_trace_id\": \"" + std::to_string(s.p99_exemplar) + "\"}";
        break;
      }
      case metric_snapshot::kind::counter_family:
      case metric_snapshot::kind::histogram_family:
        break;  // rendered below from family_snapshots()
    }
  }
  counters += "}";
  gauges += "}";
  hists += "}";
  std::string cfams = "{";
  std::string hfams = "{";
  for (const family_snapshot& f : family_snapshots()) {
    std::string body = "{";
    for (const auto& e : f.entries) {
      if (body.size() > 1) body += ", ";
      if (f.histograms) {
        body += "\"" + std::to_string(e.label) + "\": {\"count\": " +
                std::to_string(e.stats.count) + ", \"sum\": " + std::to_string(e.stats.sum) +
                ", \"max\": " + std::to_string(e.stats.max) +
                ", \"p50\": " + std::to_string(e.stats.p50) +
                ", \"p90\": " + std::to_string(e.stats.p90) +
                ", \"p99\": " + std::to_string(e.stats.p99) +
                ", \"p99_exemplar_trace_id\": \"" + std::to_string(e.stats.p99_exemplar) +
                "\"}";
      } else {
        body += "\"" + std::to_string(e.label) + "\": " + std::to_string(e.stats.count);
      }
    }
    if (body.size() > 1) body += ", ";
    body += "\"overflow\": " + std::to_string(f.overflow_count) + "}";
    std::string& section = f.histograms ? hfams : cfams;
    if (section.size() > 1) section += ", ";
    section += json_escape_quoted(f.name) + ": " + body;
  }
  cfams += "}";
  hfams += "}";
  return "{\"counters\": " + counters + ", \"gauges\": " + gauges +
         ", \"histograms\": " + hists + ", \"counter_families\": " + cfams +
         ", \"histogram_families\": " + hfams + "}";
}

}  // namespace cgp::obs
