#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <mutex>

#include "util/json.hpp"

namespace cgp::obs {

namespace {

// -1 = not yet resolved from the environment.
std::atomic<int> g_enabled{-1};

int resolve_enabled_slow() noexcept {
  // First touch: the environment decides the default.  A racing
  // set_enabled() wins -- both stores write a definite value.
  const int v = std::getenv("CGP_OBS_OFF") == nullptr ? 1 : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

// One registered metric.  The name and kind are fixed at insertion; the
// payload lives in-node so the reference survives later registrations
// (std::list keeps node addresses stable, like core/registry.hpp).
struct metric_node {
  metric_node(std::string n, metric_snapshot::kind k) : name(std::move(n)), which(k) {}
  std::string name;
  metric_snapshot::kind which;
  counter c;
  gauge g;
  histogram h;
};

struct metric_registry {
  std::mutex mutex;
  std::list<metric_node> nodes;
};

metric_registry& instance() {
  static metric_registry reg;
  return reg;
}

metric_node& node_for(std::string_view name, metric_snapshot::kind kind) {
  metric_registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& n : reg.nodes) {
    if (n.name == name) {
      if (n.which != kind) {
        std::fprintf(stderr, "cgmperm: obs metric '%.*s' registered with two kinds\n",
                     static_cast<int>(name.size()), name.data());
        std::abort();
      }
      return n;
    }
  }
  return reg.nodes.emplace_back(std::string(name), kind);
}

}  // namespace

bool enabled() noexcept {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return resolve_enabled_slow() != 0;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank: the k-th smallest observation, k = ceil(q * total) >= 1.
  const auto k = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= k) return bucket_floor(b);
  }
  // Concurrent records can leave count_ ahead of the bucket sums; answer
  // with the highest occupied bucket.
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (counts_[b].load(std::memory_order_relaxed) != 0) return bucket_floor(b);
  }
  return 0;
}

counter& get_counter(std::string_view name) {
  return node_for(name, metric_snapshot::kind::counter).c;
}

gauge& get_gauge(std::string_view name) {
  return node_for(name, metric_snapshot::kind::gauge).g;
}

histogram& get_histogram(std::string_view name) {
  return node_for(name, metric_snapshot::kind::histogram).h;
}

std::vector<metric_snapshot> snapshot() {
  metric_registry& reg = instance();
  std::vector<metric_snapshot> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    out.reserve(reg.nodes.size());
    for (const auto& n : reg.nodes) {
      metric_snapshot s;
      s.name = n.name;
      s.which = n.which;
      switch (n.which) {
        case metric_snapshot::kind::counter:
          s.count = n.c.value();
          break;
        case metric_snapshot::kind::gauge:
          s.level = n.g.value();
          s.peak = n.g.peak();
          break;
        case metric_snapshot::kind::histogram:
          s.count = n.h.count();
          s.sum = n.h.sum();
          s.max = n.h.max();
          s.p50 = n.h.quantile(0.50);
          s.p90 = n.h.quantile(0.90);
          s.p99 = n.h.quantile(0.99);
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const metric_snapshot& a, const metric_snapshot& b) { return a.name < b.name; });
  return out;
}

std::string snapshot_json() {
  const std::vector<metric_snapshot> snap = snapshot();
  std::string counters = "{";
  std::string gauges = "{";
  std::string hists = "{";
  for (const auto& s : snap) {
    switch (s.which) {
      case metric_snapshot::kind::counter: {
        if (counters.size() > 1) counters += ", ";
        counters += json_escape_quoted(s.name) + ": " + std::to_string(s.count);
        break;
      }
      case metric_snapshot::kind::gauge: {
        if (gauges.size() > 1) gauges += ", ";
        gauges += json_escape_quoted(s.name) + ": {\"value\": " + std::to_string(s.level) +
                  ", \"peak\": " + std::to_string(s.peak) + "}";
        break;
      }
      case metric_snapshot::kind::histogram: {
        if (hists.size() > 1) hists += ", ";
        hists += json_escape_quoted(s.name) + ": {\"count\": " + std::to_string(s.count) +
                 ", \"sum\": " + std::to_string(s.sum) + ", \"max\": " + std::to_string(s.max) +
                 ", \"p50\": " + std::to_string(s.p50) + ", \"p90\": " + std::to_string(s.p90) +
                 ", \"p99\": " + std::to_string(s.p99) + "}";
        break;
      }
    }
  }
  counters += "}";
  gauges += "}";
  hists += "}";
  return "{\"counters\": " + counters + ", \"gauges\": " + gauges +
         ", \"histograms\": " + hists + "}";
}

}  // namespace cgp::obs
