// obs/metrics.hpp
//
// The process-wide metrics registry of the observability layer (src/obs/):
// named counters, gauges, and fixed-bucket histograms that every subsystem
// (core planner, smp/em engines, comm transports, svc service) records
// into from its hot paths.  Design constraints, in order:
//
//   1. *Never perturb output.*  Metrics only observe; nothing downstream
//      of a counter can change a permutation.  The bit-reproducibility
//      suites run with instrumentation on and off (tests/test_obs.cpp).
//   2. *Cheap enough to leave on.*  Every mutation is one relaxed atomic
//      RMW on a cache line owned by the metric (registration -- the only
//      mutex -- happens once per name; hot callers cache the reference in
//      a function-local static).  The `CGP_OBS_OFF` env var (or
//      set_enabled(false)) reduces mutations to a single relaxed load.
//      Per-ITEM work is never instrumented -- only per-call / per-level /
//      per-block quantities -- so the smp hot path stays within the < 3%
//      overhead budget bench/e18_obs_overhead.cpp guards.
//   3. *Lifetime = process.*  References returned by the registry stay
//      valid until exit, like core/registry.hpp's engines.  Counters are
//      monotone; consumers diff snapshots rather than resetting.
//
// Naming scheme (DESIGN.md section 8): dotted lowercase `layer.noun` /
// `layer.noun.verb`, e.g. `core.plan_cache.hits`, `em.io.reads`,
// `comm.bytes_sent`, `svc.jobs.done`.  Histogram values are unit-suffixed
// (`svc.job_latency_ns`).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cgp::obs {

/// Global recording gate: true unless the CGP_OBS_OFF environment variable
/// is set (checked once) or set_enabled(false) was called.  A disabled
/// registry still hands out metric references; mutations become a single
/// relaxed load and snapshots simply stop advancing.
[[nodiscard]] bool enabled() noexcept;

/// Programmatic override of the gate (benches toggle it to measure the
/// instrumentation's own cost; tests pin that the gate never changes
/// permutation output).
void set_enabled(bool on) noexcept;

/// Monotone event count.
class counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depths, in-flight operations).
class gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d) noexcept { add(-d); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// Raise the separately tracked high-water mark to at least `v` (the
  /// current value does not move).
  void note_peak(std::int64_t v) noexcept {
    if (!enabled()) return;
    std::int64_t cur = peak_.load(std::memory_order_relaxed);
    while (v > cur && !peak_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Fixed-bucket log-scale histogram of non-negative values (latencies in
/// ns, batch sizes, ...).  Bucketing: values below 16 get exact unit
/// buckets; above, each power of two splits into 8 sub-buckets, so any
/// recorded value lands in a bucket whose width is at most 1/8 of its
/// lower bound (<= 12.5% relative quantile error by construction --
/// tests/test_obs.cpp pins this against a sorted-vector oracle).  All
/// state is atomic; record() is two relaxed RMWs plus two CAS peaks.
/// Usable standalone (a bench-local histogram) or through the registry.
class histogram {
 public:
  static constexpr std::size_t kUnitBuckets = 16;   // values 0..15, exact
  static constexpr std::size_t kSubBuckets = 8;     // per power of two
  static constexpr std::size_t kBuckets =
      kUnitBuckets + (64 - 4) * kSubBuckets;        // up to 2^64 - 1

  /// The bucket `v` lands in.
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < kUnitBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= 4
    const auto sub = static_cast<std::size_t>((v >> (msb - 3)) & (kSubBuckets - 1));
    return kUnitBuckets + static_cast<std::size_t>(msb - 4) * kSubBuckets + sub;
  }

  /// Inclusive lower bound of bucket `b` (the smallest value mapping to it).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::size_t b) noexcept {
    if (b < kUnitBuckets) return b;
    const std::size_t rel = b - kUnitBuckets;
    const int msb = static_cast<int>(rel / kSubBuckets) + 4;
    const std::uint64_t sub = rel % kSubBuckets;
    return (std::uint64_t{1} << msb) + (sub << (msb - 3));
  }

  void record(std::uint64_t v) noexcept {
    if (!enabled()) return;
    counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  /// Nearest-rank quantile, q in [0, 1]: the lower bound of the bucket
  /// holding the ceil(q * count)-th smallest recorded value (so the answer
  /// is a value that maps into the same bucket as the exact order
  /// statistic).  0 when empty.  A concurrent record() can skew the rank
  /// by the in-flight observation -- acceptable for monitoring readout.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Registry lookups: the metric named `name`, created on first use, alive
/// (and address-stable) until process exit.  A name is one kind only --
/// asking for an existing name with a different kind aborts (naming bug).
/// Hot paths cache the reference:
///
///   static obs::counter& c = obs::get_counter("em.io.reads");
[[nodiscard]] counter& get_counter(std::string_view name);
[[nodiscard]] gauge& get_gauge(std::string_view name);
[[nodiscard]] histogram& get_histogram(std::string_view name);

/// One metric's state in a snapshot.
struct metric_snapshot {
  std::string name;
  enum class kind : std::uint8_t { counter, gauge, histogram } which = kind::counter;
  std::uint64_t count = 0;   ///< counter value / histogram count
  std::int64_t level = 0;    ///< gauge value
  std::int64_t peak = 0;     ///< gauge high-water mark
  std::uint64_t sum = 0, max = 0, p50 = 0, p90 = 0, p99 = 0;  ///< histogram
};

/// Point-in-time snapshot of every registered metric, sorted by name.
[[nodiscard]] std::vector<metric_snapshot> snapshot();

/// The snapshot rendered as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}, ...}}.
[[nodiscard]] std::string snapshot_json();

}  // namespace cgp::obs
