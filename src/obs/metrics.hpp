// obs/metrics.hpp
//
// The process-wide metrics registry of the observability layer (src/obs/):
// named counters, gauges, and fixed-bucket histograms that every subsystem
// (core planner, smp/em engines, comm transports, svc service) records
// into from its hot paths.  Design constraints, in order:
//
//   1. *Never perturb output.*  Metrics only observe; nothing downstream
//      of a counter can change a permutation.  The bit-reproducibility
//      suites run with instrumentation on and off (tests/test_obs.cpp).
//   2. *Cheap enough to leave on.*  Every mutation is one relaxed atomic
//      RMW on a cache line owned by the metric (registration -- the only
//      mutex -- happens once per name; hot callers cache the reference in
//      a function-local static).  The `CGP_OBS_OFF` env var (or
//      set_enabled(false)) reduces mutations to a single relaxed load.
//      Per-ITEM work is never instrumented -- only per-call / per-level /
//      per-block quantities -- so the smp hot path stays within the < 3%
//      overhead budget bench/e18_obs_overhead.cpp guards.
//   3. *Lifetime = process.*  References returned by the registry stay
//      valid until exit, like core/registry.hpp's engines.  Counters are
//      monotone; consumers diff snapshots rather than resetting.
//
// Naming scheme (DESIGN.md section 8): dotted lowercase `layer.noun` /
// `layer.noun.verb`, e.g. `core.plan_cache.hits`, `em.io.reads`,
// `comm.bytes_sent`, `svc.jobs.done`.  Histogram values are unit-suffixed
// (`svc.job_latency_ns`).  Labeled families append `.by_client` (e.g.
// `svc.jobs.done.by_client`); the label is always a numeric id, never a
// string, which is what keeps cardinality bounded by construction.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rng/splitmix64.hpp"

namespace cgp::obs {

/// Global recording gate: true unless the CGP_OBS_OFF environment variable
/// is set (checked once) or set_enabled(false) was called.  A disabled
/// registry still hands out metric references; mutations become a single
/// relaxed load and snapshots simply stop advancing.
[[nodiscard]] bool enabled() noexcept;

/// Programmatic override of the gate (benches toggle it to measure the
/// instrumentation's own cost; tests pin that the gate never changes
/// permutation output).
void set_enabled(bool on) noexcept;

/// Monotone event count.
class counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depths, in-flight operations).
class gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::int64_t d) noexcept { add(-d); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// Raise the separately tracked high-water mark to at least `v` (the
  /// current value does not move).
  void note_peak(std::int64_t v) noexcept {
    if (!enabled()) return;
    std::int64_t cur = peak_.load(std::memory_order_relaxed);
    while (v > cur && !peak_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Fixed-bucket log-scale histogram of non-negative values (latencies in
/// ns, batch sizes, ...).  Bucketing: values below 16 get exact unit
/// buckets; above, each power of two splits into 8 sub-buckets, so any
/// recorded value lands in a bucket whose width is at most 1/8 of its
/// lower bound (<= 12.5% relative quantile error by construction --
/// tests/test_obs.cpp pins this against a sorted-vector oracle).  All
/// state is atomic; record() is two relaxed RMWs plus two CAS peaks.
/// Usable standalone (a bench-local histogram) or through the registry.
class histogram {
 public:
  static constexpr std::size_t kUnitBuckets = 16;   // values 0..15, exact
  static constexpr std::size_t kSubBuckets = 8;     // per power of two
  static constexpr std::size_t kBuckets =
      kUnitBuckets + (64 - 4) * kSubBuckets;        // up to 2^64 - 1

  /// The bucket `v` lands in.
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < kUnitBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);  // >= 4
    const auto sub = static_cast<std::size_t>((v >> (msb - 3)) & (kSubBuckets - 1));
    return kUnitBuckets + static_cast<std::size_t>(msb - 4) * kSubBuckets + sub;
  }

  /// Inclusive lower bound of bucket `b` (the smallest value mapping to it).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::size_t b) noexcept {
    if (b < kUnitBuckets) return b;
    const std::size_t rel = b - kUnitBuckets;
    const int msb = static_cast<int>(rel / kSubBuckets) + 4;
    const std::uint64_t sub = rel % kSubBuckets;
    return (std::uint64_t{1} << msb) + (sub << (msb - 3));
  }

  /// Record `v`; when `trace_id` is nonzero it is retained as the bucket's
  /// exemplar (last writer wins), linking e.g. a p99 latency outlier
  /// directly to its distributed trace.
  void record(std::uint64_t v, std::uint64_t trace_id = 0) noexcept {
    if (!enabled()) return;
    const std::size_t b = bucket_of(v);
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
    }
    if (trace_id != 0) exemplars_[b].store(trace_id, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  /// Nearest-rank quantile, q in [0, 1]: the lower bound of the bucket
  /// holding the ceil(q * count)-th smallest recorded value (so the answer
  /// is a value that maps into the same bucket as the exact order
  /// statistic).  0 when empty.  A concurrent record() can skew the rank
  /// by the in-flight observation -- acceptable for monitoring readout.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  /// The exemplar trace_id stored in bucket `b` (0 when none was recorded).
  [[nodiscard]] std::uint64_t exemplar(std::size_t b) const noexcept {
    return b < kBuckets ? exemplars_[b].load(std::memory_order_relaxed) : 0;
  }

  /// The exemplar nearest the q-quantile: the quantile's own bucket if it
  /// holds one, else the closest exemplar-bearing bucket above it (tail
  /// outliers live above the quantile).  0 when no traced value landed
  /// there.
  [[nodiscard]] std::uint64_t quantile_exemplar(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplars_{};
};

/// A bounded family of counters keyed by a numeric label (client_id,
/// rank, ...): per-tenant metrics without per-tenant registration churn.
/// Slots are claimed lock-free on first use (open addressing over a fixed
/// array, one CAS); after the claim, a hit is the same single relaxed RMW
/// as a plain counter.  When all kSlots labels are taken -- or the
/// registry is disabled -- hits land on the shared overflow counter, so
/// with() never fails and cardinality is bounded by construction.
class counter_family {
 public:
  static constexpr std::size_t kSlots = 64;  ///< distinct labels per family

  /// The counter for `label`.  Hot callers cache the reference per tenant
  /// where possible; an uncached call costs one mix + a short probe.
  [[nodiscard]] counter& with(std::uint64_t label) noexcept {
    // Disabled: skip the probe entirely (adds on the result are no-ops
    // anyway).  UINT64_MAX would collide with the empty-slot encoding.
    if (!enabled() || label == std::uint64_t(-1)) return overflow_;
    std::size_t i = static_cast<std::size_t>(rng::mix64(label)) & (kSlots - 1);
    const std::uint64_t want = label + 1;  // key 0 means "empty"
    for (std::size_t probes = 0; probes < kSlots; ++probes, i = (i + 1) & (kSlots - 1)) {
      const std::uint64_t k = slots_[i].key.load(std::memory_order_acquire);
      if (k == want) return slots_[i].c;
      if (k == 0) {
        std::uint64_t expected = 0;
        if (slots_[i].key.compare_exchange_strong(expected, want,
                                                  std::memory_order_acq_rel)) {
          return slots_[i].c;
        }
        if (expected == want) return slots_[i].c;
      }
    }
    return overflow_;
  }

  /// (label, value) pairs for every claimed slot, sorted by label.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> values() const;

  /// Hits that could not get a dedicated slot (or arrived while disabled).
  [[nodiscard]] const counter& overflow() const noexcept { return overflow_; }

 private:
  struct family_slot {
    std::atomic<std::uint64_t> key{0};  ///< label + 1; 0 = empty
    counter c;
  };
  std::array<family_slot, kSlots> slots_{};
  counter overflow_;
};

/// counter_family's shape for histograms (per-tenant latency
/// distributions).  Slot payloads are heap-allocated on first claim (a
/// histogram is several KB; 64 eager copies per family would be wasteful),
/// installed with one CAS, and never freed before process exit.
class histogram_family {
 public:
  static constexpr std::size_t kSlots = counter_family::kSlots;

  histogram_family() = default;
  histogram_family(const histogram_family&) = delete;
  histogram_family& operator=(const histogram_family&) = delete;
  ~histogram_family();

  /// The histogram for `label` (the shared overflow histogram when the
  /// family is full, the label unusable, or the registry disabled).
  [[nodiscard]] histogram& with(std::uint64_t label);

  /// (label, histogram) pairs for every claimed slot, sorted by label.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, const histogram*>> entries() const;

  [[nodiscard]] const histogram& overflow() const noexcept { return overflow_; }

 private:
  struct family_slot {
    std::atomic<std::uint64_t> key{0};  ///< label + 1; 0 = empty
    std::atomic<histogram*> h{nullptr};
  };
  std::array<family_slot, kSlots> slots_{};
  histogram overflow_;
};

/// Registry lookups: the metric named `name`, created on first use, alive
/// (and address-stable) until process exit.  A name is one kind only --
/// asking for an existing name with a different kind aborts (naming bug).
/// Hot paths cache the reference:
///
///   static obs::counter& c = obs::get_counter("em.io.reads");
[[nodiscard]] counter& get_counter(std::string_view name);
[[nodiscard]] gauge& get_gauge(std::string_view name);
[[nodiscard]] histogram& get_histogram(std::string_view name);
[[nodiscard]] counter_family& get_counter_family(std::string_view name);
[[nodiscard]] histogram_family& get_histogram_family(std::string_view name);

/// One metric's state in a snapshot.
struct metric_snapshot {
  std::string name;
  enum class kind : std::uint8_t {
    counter,
    gauge,
    histogram,
    counter_family,
    histogram_family
  } which = kind::counter;
  std::uint64_t count = 0;   ///< counter value / histogram count
  std::int64_t level = 0;    ///< gauge value
  std::int64_t peak = 0;     ///< gauge high-water mark
  std::uint64_t sum = 0, max = 0, p50 = 0, p90 = 0, p99 = 0;  ///< histogram
  std::uint64_t p99_exemplar = 0;  ///< trace_id nearest the p99 bucket (0 = none)
};

/// One labeled family's state: per-label scalar stats plus the overflow
/// slot.  For counter families only `stats.count` is meaningful; for
/// histogram families the full histogram summary (and exemplar) is filled.
struct family_snapshot {
  std::string name;
  bool histograms = false;
  struct entry {
    std::uint64_t label = 0;
    metric_snapshot stats;  ///< name empty; which mirrors the family kind
  };
  std::vector<entry> entries;     ///< sorted by label
  std::uint64_t overflow_count = 0;  ///< hits routed to the overflow slot
};

/// Point-in-time snapshot of every registered scalar metric, sorted by
/// name.  Families are excluded (their per-label fan-out is a different
/// shape); see family_snapshots().
[[nodiscard]] std::vector<metric_snapshot> snapshot();

/// Point-in-time snapshot of every registered labeled family, sorted by
/// name.
[[nodiscard]] std::vector<family_snapshot> family_snapshots();

/// The snapshot rendered as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}, ...},
///  "counter_families": {name: {label: v, ...}, ...},
///  "histogram_families": {name: {label: {...}, ...}, ...}}.
[[nodiscard]] std::string snapshot_json();

}  // namespace cgp::obs
