// obs/exposition.hpp
//
// Renders the metrics registry in Prometheus text exposition format
// (version 0.0.4), the lingua franca any scrape-based monitoring stack
// can ingest.  Served remotely through svc::wire opcode `telemetry`
// (form 0); also writable to disk by examples/benches for CI validation.
//
// Mapping rules:
//   - names: dotted registry names are sanitized ([^a-zA-Z0-9_] -> '_')
//     and prefixed `cgp_`, e.g. `svc.jobs.done` -> `cgp_svc_jobs_done`.
//   - counters  -> `<name>_total` with `# TYPE ... counter`.
//   - gauges    -> `<name>` plus `<name>_peak` (both TYPE gauge).
//   - histograms -> Prometheus *summaries*: `<name>{quantile="0.5|0.9|
//     0.99"}`, `<name>_sum`, `<name>_count` (the registry's log-scale
//     buckets answer quantiles directly; re-exporting 496 cumulative
//     buckets would bloat every scrape for no extra fidelity).  A bucket
//     exemplar near p99, when present, rides along as a comment line
//     (`# exemplar <name> trace_id=0x...`) -- comments are valid
//     exposition and keep the trace link greppable.
//   - labeled families -> the same rules with a `client_id="<label>"`
//     label per entry plus `client_id="overflow"` for the shared
//     overflow slot.
#pragma once

#include <string>

namespace cgp::obs {

/// The whole registry (scalars + families) as Prometheus text exposition.
[[nodiscard]] std::string prometheus_exposition();

/// `cgp_` + `name` with every character outside [a-zA-Z0-9_] replaced by
/// '_': a valid Prometheus metric name for any registry name.
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace cgp::obs
