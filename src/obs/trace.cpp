#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace cgp::obs {

namespace {

// Ring capacity.  64Ki events x 40 bytes/slot = 2.5 MiB, allocated lazily
// on first record (the ring lives in a function-local static).
constexpr std::uint64_t kRingCapacity = std::uint64_t{1} << 16;

// One ring slot.  All fields are atomics so concurrent write/read is
// data-race-free (sanitizer-clean); `seq` is the validity stamp: a reader
// accepts the slot only when seq == claim_index + 1 before AND after
// reading the payload.
struct slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint64_t> seq{0};
};

struct ring_buffer {
  std::vector<slot> slots{kRingCapacity};
  std::atomic<std::uint64_t> head{0};  ///< next claim index (monotone)
  std::atomic<std::uint64_t> base{0};  ///< logical start (moved by clear)
};

ring_buffer& ring() {
  static ring_buffer r;
  return r;
}

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// -1 = not yet resolved from the environment.
std::atomic<int> g_tracing{-1};

std::string& trace_dump_path() {
  static std::string path;
  return path;
}

void dump_trace_at_exit() {
  const std::string& path = trace_dump_path();
  if (!path.empty()) write_chrome_trace(path);
}

int resolve_tracing_slow() noexcept {
  const char* env = std::getenv("CGP_TRACE");
  int v = 0;
  if (env != nullptr && env[0] != '\0') {
    trace_dump_path() = env;
    // Construct the ring (and the clock epoch) BEFORE registering the
    // dump: exit runs atexit handlers and function-local-static
    // destructors in one reverse sequence, so anything the handler reads
    // must be constructed earlier than the registration.
    (void)ring();
    (void)detail::trace_now_ns();
    std::atexit(&dump_trace_at_exit);
    v = 1;
  }
  int expected = -1;
  g_tracing.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_tracing.load(std::memory_order_relaxed);
}

}  // namespace

bool tracing() noexcept {
  const int v = g_tracing.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return resolve_tracing_slow() != 0;
}

void set_tracing(bool on) noexcept {
  // Resolve the environment first so a later tracing() call cannot
  // overwrite the explicit choice (and CGP_TRACE still registers its dump).
  static_cast<void>(tracing());
  g_tracing.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

std::uint64_t trace_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch).count());
}

void record_event(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns) noexcept {
  ring_buffer& r = ring();
  const std::uint64_t idx = r.head.fetch_add(1, std::memory_order_relaxed);
  slot& s = r.slots[idx & (kRingCapacity - 1)];
  s.seq.store(0, std::memory_order_release);  // invalidate while writing
  s.name.store(name, std::memory_order_relaxed);
  s.cat.store(cat, std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.tid.store(this_thread_id(), std::memory_order_relaxed);
  s.seq.store(idx + 1, std::memory_order_release);
}

}  // namespace detail

std::vector<trace_event> trace_snapshot() {
  ring_buffer& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t base = r.base.load(std::memory_order_acquire);
  const std::uint64_t lo =
      std::max(base, head > kRingCapacity ? head - kRingCapacity : 0);
  std::vector<trace_event> out;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t idx = lo; idx < head; ++idx) {
    const slot& s = r.slots[idx & (kRingCapacity - 1)];
    if (s.seq.load(std::memory_order_acquire) != idx + 1) continue;  // in flight / overwritten
    trace_event e;
    e.name = s.name.load(std::memory_order_relaxed);
    e.cat = s.cat.load(std::memory_order_relaxed);
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) == idx + 1 && e.name != nullptr) {
      out.push_back(e);
    }
  }
  return out;
}

std::uint64_t dropped_events() noexcept {
  ring_buffer& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  const std::uint64_t base = r.base.load(std::memory_order_relaxed);
  const std::uint64_t recorded = head > base ? head - base : 0;
  return recorded > kRingCapacity ? recorded - kRingCapacity : 0;
}

void clear_trace() {
  ring_buffer& r = ring();
  r.base.store(r.head.load(std::memory_order_acquire), std::memory_order_release);
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<trace_event> events = trace_snapshot();
  std::vector<json_record> records;
  records.reserve(events.size());
  for (const trace_event& e : events) {
    json_record rec;
    rec.add("name", e.name)
        .add("cat", e.cat == nullptr ? "misc" : e.cat)
        .add("ph", "X")
        .add("ts", static_cast<double>(e.ts_ns) / 1000.0)
        .add("dur", static_cast<double>(e.dur_ns) / 1000.0)
        .add("pid", 1)
        .add("tid", e.tid);
    records.push_back(std::move(rec));
  }
  return write_json_records(path, records);
}

}  // namespace cgp::obs
