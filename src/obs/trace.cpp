#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rng/splitmix64.hpp"
#include "util/json.hpp"

namespace cgp::obs {

namespace {

// Ring capacity.  64Ki events x 80 bytes/slot = 5 MiB, allocated lazily
// on first record (the ring lives in a function-local static).
constexpr std::uint64_t kRingCapacity = std::uint64_t{1} << 16;

// One ring slot.  All fields are atomics so concurrent write/read is
// data-race-free (sanitizer-clean); `seq` is the validity stamp: a reader
// accepts the slot only when seq == claim_index + 1 before AND after
// reading the payload.  `sig` is a payload checksum closing the remaining
// seqlock hole: if a writer stalls for a full ring lap, a reader could see
// matching seq values around a torn payload -- the checksum (which mixes
// the claim index) then disagrees and the record is discarded instead of
// surfacing torn.
struct slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_id{0};
  std::atomic<std::uint64_t> sig{0};
  std::atomic<std::uint64_t> seq{0};
};

std::uint64_t slot_sig(std::uint64_t idx, const char* name, const char* cat,
                       std::uint64_t ts_ns, std::uint64_t dur_ns, std::uint32_t tid,
                       std::uint64_t trace_id, std::uint64_t span_id,
                       std::uint64_t parent_id) noexcept {
  std::uint64_t h = rng::mix64(idx ^ 0x9E3779B97F4A7C15ull);
  h = rng::mix64(h ^ reinterpret_cast<std::uintptr_t>(name));
  h = rng::mix64(h ^ reinterpret_cast<std::uintptr_t>(cat));
  h = rng::mix64(h ^ ts_ns);
  h = rng::mix64(h ^ dur_ns);
  h = rng::mix64(h ^ tid);
  h = rng::mix64(h ^ trace_id);
  h = rng::mix64(h ^ span_id);
  return rng::mix64(h ^ parent_id);
}

struct ring_buffer {
  std::vector<slot> slots{kRingCapacity};
  std::atomic<std::uint64_t> head{0};  ///< next claim index (monotone)
  std::atomic<std::uint64_t> base{0};  ///< logical start (moved by clear)
};

ring_buffer& ring() {
  static ring_buffer r;
  return r;
}

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// The two trace epochs, captured together so one is a translation of the
// other: span timestamps count from the steady epoch (immune to wall-clock
// steps mid-run); the wall reading anchors them on the cross-process
// timeline.
struct trace_epochs {
  std::chrono::steady_clock::time_point steady;
  std::uint64_t wall_ns;
};

const trace_epochs& epochs() noexcept {
  static const trace_epochs e = [] {
    trace_epochs p;
    p.steady = std::chrono::steady_clock::now();
    p.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return p;
  }();
  return e;
}

// Process-salted id sequence: base mixes the wall clock and pid so two
// processes tracing the same distributed job never mint colliding ids.
std::uint64_t next_id() noexcept {
  static const std::uint64_t salt =
      rng::mix64(epochs().wall_ns ^ (static_cast<std::uint64_t>(::getpid()) << 32));
  static std::atomic<std::uint64_t> seq{0};
  const std::uint64_t id =
      rng::mix64(salt + seq.fetch_add(1, std::memory_order_relaxed));
  return id != 0 ? id : 1;
}

thread_local trace_context t_trace{};

// -1 = not yet resolved from the environment.
std::atomic<int> g_tracing{-1};

std::string& trace_dump_path() {
  static std::string path;
  return path;
}

void dump_trace_at_exit() {
  const std::string& path = trace_dump_path();
  if (!path.empty()) write_chrome_trace(path);
}

int resolve_tracing_slow() noexcept {
  const char* env = std::getenv("CGP_TRACE");
  int v = 0;
  if (env != nullptr && env[0] != '\0') {
    trace_dump_path() = env;
    // Construct the ring, the clock epochs, AND the metrics registry (the
    // dump footer reads the dropped-spans counter) BEFORE registering the
    // dump: exit runs atexit handlers and function-local-static
    // destructors in one reverse sequence, so anything the handler reads
    // must be constructed earlier than the registration.
    (void)ring();
    (void)epochs();
    (void)get_counter("obs.trace.dropped_spans");
    std::atexit(&dump_trace_at_exit);
    v = 1;
  }
  int expected = -1;
  g_tracing.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_tracing.load(std::memory_order_relaxed);
}

std::string hex_id(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

bool tracing() noexcept {
  const int v = g_tracing.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return resolve_tracing_slow() != 0;
}

void set_tracing(bool on) noexcept {
  // Resolve the environment first so a later tracing() call cannot
  // overwrite the explicit choice (and CGP_TRACE still registers its dump).
  static_cast<void>(tracing());
  g_tracing.store(on ? 1 : 0, std::memory_order_relaxed);
}

trace_context current_trace() noexcept { return t_trace; }

void set_current_trace(trace_context ctx) noexcept { t_trace = ctx; }

void adopt_trace(trace_context ctx) noexcept {
  if (t_trace.trace_id == 0) t_trace = ctx;
}

std::uint64_t new_trace_id() noexcept { return next_id(); }

std::uint64_t wall_epoch_ns() noexcept { return epochs().wall_ns; }

namespace detail {

std::uint64_t trace_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epochs().steady)
          .count());
}

std::uint64_t next_span_id() noexcept { return next_id(); }

void record_event(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns, std::uint64_t trace_id,
                  std::uint64_t span_id, std::uint64_t parent_id) noexcept {
  ring_buffer& r = ring();
  const std::uint64_t idx = r.head.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kRingCapacity) {
    // This claim reuses a slot: the span that lived there is evicted.
    static counter& dropped = get_counter("obs.trace.dropped_spans");
    dropped.add();
  }
  slot& s = r.slots[idx & (kRingCapacity - 1)];
  const std::uint32_t tid = this_thread_id();
  s.seq.store(0, std::memory_order_release);  // invalidate while writing
  s.name.store(name, std::memory_order_relaxed);
  s.cat.store(cat, std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.tid.store(tid, std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.span_id.store(span_id, std::memory_order_relaxed);
  s.parent_id.store(parent_id, std::memory_order_relaxed);
  s.sig.store(slot_sig(idx, name, cat, ts_ns, dur_ns, tid, trace_id, span_id, parent_id),
              std::memory_order_relaxed);
  s.seq.store(idx + 1, std::memory_order_release);
}

}  // namespace detail

std::vector<trace_event> trace_snapshot() {
  ring_buffer& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  const std::uint64_t base = r.base.load(std::memory_order_acquire);
  const std::uint64_t lo =
      std::max(base, head > kRingCapacity ? head - kRingCapacity : 0);
  std::vector<trace_event> out;
  out.reserve(static_cast<std::size_t>(head - lo));
  for (std::uint64_t idx = lo; idx < head; ++idx) {
    const slot& s = r.slots[idx & (kRingCapacity - 1)];
    if (s.seq.load(std::memory_order_acquire) != idx + 1) continue;  // in flight / overwritten
    trace_event e;
    e.name = s.name.load(std::memory_order_relaxed);
    e.cat = s.cat.load(std::memory_order_relaxed);
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    e.tid = s.tid.load(std::memory_order_relaxed);
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.span_id = s.span_id.load(std::memory_order_relaxed);
    e.parent_id = s.parent_id.load(std::memory_order_relaxed);
    const std::uint64_t sig = s.sig.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) == idx + 1 && e.name != nullptr &&
        sig == slot_sig(idx, e.name, e.cat, e.ts_ns, e.dur_ns, e.tid, e.trace_id,
                        e.span_id, e.parent_id)) {
      out.push_back(e);
    }
  }
  return out;
}

std::uint64_t dropped_events() noexcept {
  ring_buffer& r = ring();
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  const std::uint64_t base = r.base.load(std::memory_order_relaxed);
  const std::uint64_t recorded = head > base ? head - base : 0;
  return recorded > kRingCapacity ? recorded - kRingCapacity : 0;
}

void clear_trace() {
  ring_buffer& r = ring();
  r.base.store(r.head.load(std::memory_order_acquire), std::memory_order_release);
}

bool write_chrome_trace(const std::string& path) {
  const std::vector<trace_event> events = trace_snapshot();
  const auto pid = static_cast<std::uint64_t>(::getpid());
  std::vector<json_record> records;
  records.reserve(events.size() + 2);
  {
    // Header: the steady->wall translation for this process, so dumps from
    // different machines/processes can be merged onto one timeline.
    json_record anchor;
    anchor.add("name", "clock_anchor")
        .add("cat", "meta")
        .add("ph", "M")
        .add("ts", 0.0)
        .add("dur", 0.0)
        .add("pid", pid)
        .add("tid", std::uint32_t{0})
        .add_raw_json("args", "{\"wall_epoch_ns\": \"" +
                                  std::to_string(wall_epoch_ns()) +
                                  "\", \"pid\": " + std::to_string(pid) + "}");
    records.push_back(std::move(anchor));
  }
  for (const trace_event& e : events) {
    json_record rec;
    rec.add("name", e.name)
        .add("cat", e.cat == nullptr ? "misc" : e.cat)
        .add("ph", "X")
        .add("ts", static_cast<double>(e.ts_ns) / 1000.0)
        .add("dur", static_cast<double>(e.dur_ns) / 1000.0)
        .add("pid", pid)
        .add("tid", e.tid)
        .add_raw_json("args", "{\"trace_id\": \"" + hex_id(e.trace_id) +
                                  "\", \"span_id\": \"" + hex_id(e.span_id) +
                                  "\", \"parent_id\": \"" + hex_id(e.parent_id) + "\"}");
    records.push_back(std::move(rec));
  }
  {
    // Footer: how complete this dump is.
    json_record footer;
    footer.add("name", "trace_summary")
        .add("cat", "meta")
        .add("ph", "M")
        .add("ts", 0.0)
        .add("dur", 0.0)
        .add("pid", pid)
        .add("tid", std::uint32_t{0})
        .add_raw_json("args",
                      "{\"events_written\": " + std::to_string(events.size()) +
                          ", \"dropped_spans\": " +
                          std::to_string(get_counter("obs.trace.dropped_spans").value()) +
                          "}");
    records.push_back(std::move(footer));
  }
  return write_json_records(path, records);
}

}  // namespace cgp::obs
