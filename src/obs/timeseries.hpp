// obs/timeseries.hpp
//
// A background time-series sampler over the metrics registry: every
// period it snapshots each scalar metric's primary value (counter count,
// gauge level, histogram count) into a fixed-size ring of samples, so a
// remote observer can pull recent history -- deltas and rates, not just
// a one-shot total -- through svc::wire opcode `telemetry` (form 1).
//
// Design constraints mirror the rest of obs/:
//   - *No allocation in steady state.*  Series get a stable index on
//     first sight and every ring slot holds a values vector sized to the
//     series set; once the set stops growing (registration is
//     process-lifetime, so it does), sampling reuses fully-constructed
//     slots and performs zero allocations.
//   - *Never perturb output.*  The sampler only reads the registry; the
//     bit-reproducibility suites run with it on, off, and toggled
//     mid-run (tests/test_telemetry.cpp).
//   - Sampling cost is one registry snapshot per period -- O(metrics)
//     under the registry mutex, amortized to nothing at the default
//     period (>= tens of ms).
//
// Timestamps are obs::detail::trace_now_ns() millis, i.e. the same
// steady epoch span timestamps use, so samples and traces line up and
// the wall anchor (obs::wall_epoch_ns) places both on the shared
// timeline.
#pragma once

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

namespace cgp::obs {

struct sampler_options {
  std::uint32_t period_ms = 250;  ///< sampling period
  std::size_t slots = 120;        ///< ring depth (120 x 250ms = 30s of history)
};

/// Background registry sampler with a fixed ring of samples.  start() is
/// idempotent; the destructor stops the thread.  sample_now() takes one
/// synchronous sample (tests, and pull-triggered refresh) and is safe
/// with or without the thread running.
class sampler {
 public:
  explicit sampler(sampler_options opt = {});
  sampler(const sampler&) = delete;
  sampler& operator=(const sampler&) = delete;
  ~sampler();

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept;

  /// Take one sample immediately (synchronously, on the calling thread).
  void sample_now();

  /// Samples taken since construction (monotone; the ring holds the last
  /// min(taken, slots) of them).
  [[nodiscard]] std::uint64_t samples_taken() const noexcept;

  /// The ring as one JSON object:
  /// {"period_ms": P, "slots": S, "samples_taken": N, "wall_epoch_ns": "..",
  ///  "series": ["svc.jobs.done", ...],
  ///  "samples": [{"t_ms": T, "values": [..]}, ...],            // oldest first
  ///  "deltas":  [{"t_ms": T, "dt_ms": D, "values": [..],
  ///               "rates_per_s": [..]}, ...]}                  // sample[i]-sample[i-1]
  [[nodiscard]] std::string ring_json() const;

 private:
  void loop();
  void take_sample_locked();  ///< caller holds m_

  struct sample_slot {
    std::uint64_t t_ms = 0;
    std::vector<std::int64_t> values;  ///< indexed by series id
  };

  sampler_options opt_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::vector<std::string> series_;  ///< stable index -> registry name
  std::vector<sample_slot> ring_;    ///< ring_[ i % slots ]
  std::uint64_t taken_ = 0;
};

}  // namespace cgp::obs
