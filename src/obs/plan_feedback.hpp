// obs/plan_feedback.hpp
//
// First half of the ROADMAP-5 feedback loop: a bounded process-wide log of
// (plan, measured phase times) per executed job, so plan::explain() can
// print predicted-vs-measured deltas and flag mispredictions.  The obs
// layer stays below core in the dependency order -- records hold plain
// strings and doubles, never core types; core/backend.hpp converts its
// permutation_plan into a record at the dispatch choke points.
//
// Measured phase times come from obs::span via a thread-local
// phase_collector: the dispatcher installs a collector, runs the
// executor, and every span that finishes on that thread while it is
// installed adds {label, seconds} to it.  Labels aggregate (a span
// repeated per recursion level sums into one phase).  Worker threads
// spawned by an engine have no collector, so a backend's measured phases
// are what its *calling* thread observes: "fisher-yates" for sequential,
// "fill"/"shuffle"/"readback" for em, an overall "execute" everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cgp::obs {

/// One named phase with a duration in seconds.
struct phase_time {
  std::string label;
  double seconds = 0.0;
};

/// One executed job: the plan's prediction next to what was measured.
struct plan_feedback_record {
  std::string backend;        ///< plan backend name ("sequential", "smp", ...)
  std::uint64_t n = 0;        ///< permutation size
  std::uint32_t elem_bytes = 0;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;              ///< wall time of the whole job
  std::vector<phase_time> predicted_phases;   ///< from the plan's estimates
  std::vector<phase_time> measured_phases;    ///< from the phase collector
};

/// RAII scope that captures {label, seconds} from every obs::span finishing
/// on this thread.  Nesting replaces the outer collector until the inner
/// one is destroyed (the inner job owns its phases).
class phase_collector {
 public:
  phase_collector() noexcept;
  ~phase_collector();
  phase_collector(const phase_collector&) = delete;
  phase_collector& operator=(const phase_collector&) = delete;

  /// Phases seen so far, label-aggregated, in first-seen order.
  [[nodiscard]] const std::vector<phase_time>& phases() const noexcept { return phases_; }

 private:
  friend void note_phase(const char* label, double seconds) noexcept;
  void add(const char* label, double seconds);
  std::vector<phase_time> phases_;
  phase_collector* prev_;
};

/// Does the calling thread have a phase_collector installed?
[[nodiscard]] bool phase_collector_active() noexcept;

/// Add `seconds` to phase `label` of the calling thread's innermost
/// collector; no-op without one.  Called by obs::span on destruction.
void note_phase(const char* label, double seconds) noexcept;

/// Append `rec` to the process-wide feedback log (bounded: the oldest
/// records fall off beyond kLogCapacity).  No-op when obs is disabled.
inline constexpr std::size_t kFeedbackLogCapacity = 1024;
void record_plan_feedback(plan_feedback_record rec);

/// Everything currently in the log, oldest first.
[[nodiscard]] std::vector<plan_feedback_record> plan_feedback_log();

/// Label-aggregated view of the log restricted to one backend, the shape
/// plan::explain() consumes.
struct backend_feedback {
  std::uint64_t jobs = 0;                   ///< records aggregated
  double predicted_seconds = 0.0;           ///< summed over records
  double measured_seconds = 0.0;            ///< summed over records
  std::vector<phase_time> predicted_phases; ///< summed by label
  std::vector<phase_time> measured_phases;  ///< summed by label
};
[[nodiscard]] backend_feedback plan_feedback_for(std::string_view backend);

/// Forget all recorded feedback (tests).
void clear_plan_feedback();

}  // namespace cgp::obs
