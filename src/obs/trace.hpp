// obs/trace.hpp
//
// The tracing half of the observability layer: RAII phase spans recorded
// into a bounded lock-free ring buffer, exportable as Chrome trace_event
// JSON ("JSON Array Format" -- load the file in chrome://tracing or
// https://ui.perfetto.dev).  Span taxonomy (DESIGN.md section 8):
//
//   cat "plan"     -- planner work: "resolve", "calibrate"
//   cat "exec"     -- executor phases: "execute", "fisher-yates", "fill",
//                     "shuffle", "readback"
//   cat "split"    -- smp/cgm recursion: "split", "leaf"
//   cat "scatter"  -- em distribution levels: "scatter-level"
//   cat "io"       -- em block device work: "io-wait"
//   cat "exchange" -- comm/cgm supersteps: "exchange"
//   cat "batch"    -- svc scheduling: "job", "batch"
//
// Tracing is off by default; it turns on when the CGP_TRACE environment
// variable names an output file (the trace is dumped there at process
// exit, from ANY binary linking the library -- no per-binary code) or when
// set_tracing(true) is called.  A disarmed span is two relaxed loads and
// no clock read.  Span names must have static storage duration (string
// literals): slots store the pointer, not a copy, so recording stays
// wait-free.
//
// Spans also feed the plan-feedback loop: when the current thread has a
// phase_collector installed (obs/plan_feedback.hpp), a finished span
// reports {name, seconds} to it even with tracing off.  That is how
// measured phase times reach plan::explain() without the executors knowing
// about plans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/plan_feedback.hpp"

namespace cgp::obs {

/// Is span recording into the ring buffer active?
[[nodiscard]] bool tracing() noexcept;

/// Turn ring-buffer recording on or off programmatically (overrides the
/// CGP_TRACE default; does not change where/if the exit dump goes).
void set_tracing(bool on) noexcept;

/// One completed span, as read back from the ring.
struct trace_event {
  const char* name = nullptr;  ///< static-storage span name
  const char* cat = nullptr;   ///< static-storage category
  std::uint64_t ts_ns = 0;     ///< start, ns since process trace epoch
  std::uint64_t dur_ns = 0;    ///< duration in ns
  std::uint32_t tid = 0;       ///< small per-thread id (registration order)
};

namespace detail {
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;
void record_event(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns) noexcept;
}  // namespace detail

/// RAII phase span.  `name` and `cat` must be string literals (or
/// otherwise outlive the process trace).  Construction arms the span only
/// when tracing is on or the calling thread is collecting phase times;
/// disarmed construction and destruction never read the clock.
class span {
 public:
  span(const char* name, const char* cat) noexcept : name_(name), cat_(cat) {
    if (tracing() || phase_collector_active()) {
      start_ns_ = detail::trace_now_ns();
      armed_ = true;
    }
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  ~span() {
    if (!armed_) return;
    const std::uint64_t end_ns = detail::trace_now_ns();
    const std::uint64_t dur = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    if (tracing()) detail::record_event(name_, cat_, start_ns_, dur);
    note_phase(name_, static_cast<double>(dur) * 1e-9);
  }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

/// Completed spans currently held in the ring, oldest first.  Events that
/// were overwritten (ring capacity exceeded) are gone; dropped_events()
/// counts them.
[[nodiscard]] std::vector<trace_event> trace_snapshot();

/// Spans evicted by ring wrap-around since the last clear.
[[nodiscard]] std::uint64_t dropped_events() noexcept;

/// Forget all recorded spans (tests; also resets the dropped count).
void clear_trace();

/// Write the ring contents as a Chrome trace_event JSON array to `path`.
/// Returns false (and prints to stderr) on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace cgp::obs
