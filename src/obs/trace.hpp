// obs/trace.hpp
//
// The tracing half of the observability layer: RAII phase spans recorded
// into a bounded lock-free ring buffer, exportable as Chrome trace_event
// JSON ("JSON Array Format" -- load the file in chrome://tracing or
// https://ui.perfetto.dev).  Span taxonomy (DESIGN.md section 8):
//
//   cat "plan"     -- planner work: "resolve", "calibrate"
//   cat "exec"     -- executor phases: "execute", "fisher-yates", "fill",
//                     "shuffle", "readback"
//   cat "split"    -- smp/cgm recursion: "split", "leaf"
//   cat "scatter"  -- em distribution levels: "scatter-level"
//   cat "io"       -- em block device work: "io-wait"
//   cat "exchange" -- comm/cgm supersteps: "exchange"
//   cat "batch"    -- svc scheduling: "job", "batch"
//   cat "svc"      -- service job execution: "svc.job"
//   cat "wire"     -- RPC round trips: "wire.call", "wire.<opcode>"
//
// Tracing is off by default; it turns on when the CGP_TRACE environment
// variable names an output file (the trace is dumped there at process
// exit, from ANY binary linking the library -- no per-binary code) or when
// set_tracing(true) is called.  A disarmed span is two relaxed loads and
// no clock read.  Span names must have static storage duration (string
// literals): slots store the pointer, not a copy, so recording stays
// wait-free.
//
// DISTRIBUTED TRACE CONTEXT.  Every armed span carries a
// (trace_id, span_id, parent_id) triple.  A thread-local trace_context
// holds the innermost open span; a new armed span joins its trace (or
// starts a fresh one when the thread has none) and parents under it.
// The context crosses process boundaries: svc::wire attaches it to
// request frames and comm::socket_transport to exchange frames (both as
// an optional 24-byte extension gated on a flags bit, so old peers keep
// working), and the receiving side installs it with trace_scope /
// adopt_trace.  Dumps from different processes can then be concatenated
// into one stitched trace: ids are process-salted so they never collide,
// and every dump carries a wall-clock anchor record mapping its private
// steady-clock epoch to the shared wall clock (see wall_epoch_ns()).
//
// Spans also feed the plan-feedback loop: when the current thread has a
// phase_collector installed (obs/plan_feedback.hpp), a finished span
// reports {name, seconds} to it even with tracing off.  That is how
// measured phase times reach plan::explain() without the executors knowing
// about plans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/plan_feedback.hpp"

namespace cgp::obs {

/// Is span recording into the ring buffer active?
[[nodiscard]] bool tracing() noexcept;

/// Turn ring-buffer recording on or off programmatically (overrides the
/// CGP_TRACE default; does not change where/if the exit dump goes).
void set_tracing(bool on) noexcept;

/// The propagatable part of a trace: which trace this thread is inside
/// (trace_id) and the innermost open span (span_id, the parent of any span
/// opened next).  trace_id == 0 means "no trace"; ids are never 0 once a
/// trace starts.  Exactly the triple that crosses the wire.
struct trace_context {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// The calling thread's current trace context ({0, 0} when none).
[[nodiscard]] trace_context current_trace() noexcept;

/// Replace the calling thread's trace context (prefer trace_scope).
void set_current_trace(trace_context ctx) noexcept;

/// Install `ctx` only if the calling thread has no trace yet -- the
/// receive-side primitive: a deserialized remote context must not clobber
/// a trace the thread is already inside.
void adopt_trace(trace_context ctx) noexcept;

/// A fresh process-salted nonzero trace id (wall clock ^ pid seeded, so
/// ids from concurrently tracing processes do not collide).
[[nodiscard]] std::uint64_t new_trace_id() noexcept;

/// Wall-clock nanoseconds since the Unix epoch at the process trace epoch
/// (the steady-clock zero all span timestamps count from).  Dump consumers
/// add this to a span's ts to place it on the shared wall-clock timeline;
/// every Chrome dump embeds it as a "clock_anchor" metadata record.
[[nodiscard]] std::uint64_t wall_epoch_ns() noexcept;

/// RAII guard that installs a trace context on this thread and restores
/// the previous one on destruction.  Used wherever a unit of work executes
/// on a thread that did not create it: scheduler workers picking up a job,
/// transport rank threads, wire request handlers.
class trace_scope {
 public:
  explicit trace_scope(trace_context ctx) noexcept : prev_(current_trace()) {
    set_current_trace(ctx);
  }
  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;
  ~trace_scope() { set_current_trace(prev_); }

 private:
  trace_context prev_;
};

/// One completed span, as read back from the ring.
struct trace_event {
  const char* name = nullptr;   ///< static-storage span name
  const char* cat = nullptr;    ///< static-storage category
  std::uint64_t ts_ns = 0;      ///< start, ns since process trace epoch
  std::uint64_t dur_ns = 0;     ///< duration in ns
  std::uint32_t tid = 0;        ///< small per-thread id (registration order)
  std::uint64_t trace_id = 0;   ///< trace this span belongs to
  std::uint64_t span_id = 0;    ///< this span's id (unique in-process)
  std::uint64_t parent_id = 0;  ///< enclosing span's id, 0 for a root
};

namespace detail {
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;
[[nodiscard]] std::uint64_t next_span_id() noexcept;
void record_event(const char* name, const char* cat, std::uint64_t ts_ns,
                  std::uint64_t dur_ns, std::uint64_t trace_id,
                  std::uint64_t span_id, std::uint64_t parent_id) noexcept;
}  // namespace detail

/// RAII phase span.  `name` and `cat` must be string literals (or
/// otherwise outlive the process trace).  Construction arms the span only
/// when tracing is on or the calling thread is collecting phase times;
/// disarmed construction and destruction never read the clock and leave
/// the thread's trace context untouched.  An armed span joins the thread's
/// current trace (starting a new one if there is none), becomes the
/// current context for its lifetime, and restores the previous context on
/// destruction.
class span {
 public:
  span(const char* name, const char* cat) noexcept : name_(name), cat_(cat) {
    if (tracing() || phase_collector_active()) {
      start_ns_ = detail::trace_now_ns();
      armed_ = true;
      prev_ = current_trace();
      trace_id_ = prev_.trace_id != 0 ? prev_.trace_id : new_trace_id();
      span_id_ = detail::next_span_id();
      set_current_trace({trace_id_, span_id_});
    }
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  ~span() {
    if (!armed_) return;
    set_current_trace(prev_);
    const std::uint64_t end_ns = detail::trace_now_ns();
    const std::uint64_t dur = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
    if (tracing()) {
      detail::record_event(name_, cat_, start_ns_, dur, trace_id_, span_id_,
                           prev_.span_id);
    }
    note_phase(name_, static_cast<double>(dur) * 1e-9);
  }

  /// This span's ids while it is open (0s when disarmed) -- lets a caller
  /// attach the exact context to an outgoing frame.
  [[nodiscard]] trace_context context() const noexcept {
    return {trace_id_, span_id_};
  }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  trace_context prev_{};
  bool armed_ = false;
};

/// Completed spans currently held in the ring, oldest first.  Events that
/// were overwritten (ring capacity exceeded) are gone; dropped_events()
/// counts them.
[[nodiscard]] std::vector<trace_event> trace_snapshot();

/// Spans evicted by ring wrap-around since the last clear.  The monotone
/// process-lifetime eviction count (never reset) is also kept in the
/// registry counter `obs.trace.dropped_spans` and surfaced in
/// svc metrics_snapshot() and the trace dump footer.
[[nodiscard]] std::uint64_t dropped_events() noexcept;

/// Forget all recorded spans (tests; also resets the dropped count).
void clear_trace();

/// Write the ring contents as a Chrome trace_event JSON array to `path`.
/// The dump contains, besides one "ph":"X" record per span (with
/// args.trace_id / span_id / parent_id as hex strings), two "ph":"M"
/// metadata records: a "clock_anchor" header carrying wall_epoch_ns and
/// the pid, and a "trace_summary" footer carrying events_written and
/// dropped_spans.  Records use the real pid, so dumps from multiple
/// processes merge cleanly.  Returns false (and prints to stderr) on I/O
/// failure.
bool write_chrome_trace(const std::string& path);

}  // namespace cgp::obs
