// rng/stream.hpp
//
// Deterministic derivation of per-processor random streams.  The
// coarse-grained machine hands every virtual processor `i` the engine
// `processor_stream(seed, i)`; because Philox streams are keyed rather than
// split by jumping, the stream a processor sees is independent of p and of
// thread scheduling.  This is what makes the parallel uniformity tests
// (chi-square over all n! outcomes of the *parallel* pipeline) reproducible.
#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"

namespace cgp::rng {

/// Engine for virtual processor `proc` of a machine seeded with `seed`.
[[nodiscard]] inline philox4x64 processor_stream(std::uint64_t seed, std::uint32_t proc) noexcept {
  return philox4x64(seed, /*stream=*/0x70726F63ull /*'proc'*/ ^ proc);
}

/// Engine for a named algorithm phase (e.g. the matrix-sampling phase uses a
/// stream distinct from the shuffle phases even on the same processor, so
/// that changing the draw count of one phase cannot perturb another --
/// useful for differential testing of algorithm variants).
[[nodiscard]] inline philox4x64 phase_stream(std::uint64_t seed, std::uint32_t proc,
                                             std::uint32_t phase) noexcept {
  return philox4x64(seed, mix64((std::uint64_t{proc} << 32) | phase));
}

/// Stream id for a node of a recursion tree addressed as (level, bucket
/// ordinal within the level, role salt).  The out-of-core engine keys every
/// draw by (seed, level, bucket, index) through this, which is what makes
/// its output independent of buffer depth, worker count, and -- under a
/// fixed spill policy -- of the (M, B) device geometry: the tree address of
/// a draw never mentions any of them.
[[nodiscard]] constexpr std::uint64_t nested_stream(std::uint64_t level, std::uint64_t bucket,
                                                    std::uint64_t salt) noexcept {
  return mix64(mix64(level ^ salt) + bucket);
}

/// Engine for virtual processor `proc` on the `run`-th collective
/// executed by a machine seeded with `seed`.  Run 0 keeps the historical
/// `processor_stream` keying (so single-run behaviour and reseed-per-rep
/// test loops are bit-unchanged); later runs derive fresh streams through
/// `nested_stream`, which is what makes repeated collective calls on ONE
/// machine (core::permute_global, cgm::sample_sort drivers, ...)
/// independent yet reproducible -- the old code re-keyed every run
/// identically, silently returning the same "random" permutation twice.
[[nodiscard]] inline philox4x64 processor_run_stream(std::uint64_t seed, std::uint32_t proc,
                                                     std::uint64_t run) noexcept {
  if (run == 0) return processor_stream(seed, proc);
  return philox4x64(seed, nested_stream(run, proc, 0x72756Eull /*'run'*/));
}

/// The (seed, stream) engine positioned so the next draw returns word
/// `word_index` of the stream's output sequence.  O(1) via counter
/// arithmetic: this is what lets concurrent workers draw disjoint index
/// ranges of ONE logical stream without any hand-off -- worker w jumps
/// straight to its first index.
[[nodiscard]] inline philox4x64 stream_engine_at(std::uint64_t seed, std::uint64_t stream,
                                                 std::uint64_t word_index) noexcept {
  philox4x64 e(seed, stream);
  e.discard_blocks(word_index / 4);
  for (unsigned i = 0; i < word_index % 4; ++i) (void)e();
  return e;
}

}  // namespace cgp::rng
