// rng/stream.hpp
//
// Deterministic derivation of per-processor random streams.  The
// coarse-grained machine hands every virtual processor `i` the engine
// `processor_stream(seed, i)`; because Philox streams are keyed rather than
// split by jumping, the stream a processor sees is independent of p and of
// thread scheduling.  This is what makes the parallel uniformity tests
// (chi-square over all n! outcomes of the *parallel* pipeline) reproducible.
#pragma once

#include <cstdint>

#include "rng/philox.hpp"
#include "rng/splitmix64.hpp"

namespace cgp::rng {

/// Engine for virtual processor `proc` of a machine seeded with `seed`.
[[nodiscard]] inline philox4x64 processor_stream(std::uint64_t seed, std::uint32_t proc) noexcept {
  return philox4x64(seed, /*stream=*/0x70726F63ull /*'proc'*/ ^ proc);
}

/// Engine for a named algorithm phase (e.g. the matrix-sampling phase uses a
/// stream distinct from the shuffle phases even on the same processor, so
/// that changing the draw count of one phase cannot perturb another --
/// useful for differential testing of algorithm variants).
[[nodiscard]] inline philox4x64 phase_stream(std::uint64_t seed, std::uint32_t proc,
                                             std::uint32_t phase) noexcept {
  return philox4x64(seed, mix64((std::uint64_t{proc} << 32) | phase));
}

}  // namespace cgp::rng
