// rng/philox_batch.cpp
//
// The keystream kernels behind philox4x64_batch and their runtime
// dispatch.  Three implementations of one contract (out[4i+j] =
// bijection(counter + i, key)[j]):
//
//   * scalar -- the reference: the bijection's rounds inlined with four
//     independent blocks interleaved (a single block's 10 rounds are a
//     pure multiply-latency chain; four chains run the multiplier at
//     throughput).  Every other kernel is differential-tested against the
//     one-block-at-a-time philox4x64::bijection, which this loop replays
//     exactly.
//   * avx2 -- 4 blocks per 256-bit vector (one block per 64-bit lane),
//     two vector groups interleaved per call so the 10-round dependency
//     chain of one group hides under the other's.  AVX2 has no 64x64->128
//     multiply, so mulhilo is built from four 32x32->64 partial products
//     (_mm256_mul_epu32) -- the standard decomposition.  Compiled with a
//     per-function target attribute, so the file builds without -mavx2
//     and the binary runs on non-AVX2 hosts (dispatch never calls it
//     there).
//   * avx512 -- the same shape at 8 blocks per 512-bit vector, two groups
//     in flight.  The multiply emulation is the port bottleneck of the
//     64x64 cipher, so doubling lanes per instruction is what clears the
//     2x label-draw gate on AVX-512 hosts; detection prefers this tier,
//     CGP_SIMD=avx2 narrows back for comparison.
//   * neon -- aarch64: 2 blocks per 128-bit vector, two pairs in flight;
//     the same 32-bit partial-product mulhilo via vmull_u32.  (A scalar
//     mul/umulh pair is competitive on many ARM cores; the vector path
//     still wins on the wide ones, and the portable fallback is one env
//     var away.)
//
// Lane order cannot leak into output by construction: lanes are assigned
// consecutive counters and stored back in counter order, and no round
// mixes data ACROSS lanes -- the Philox bijection is applied to each
// block independently, exactly as the scalar loop applies it.
#include "rng/philox_batch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

#include "obs/metrics.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CGP_HAVE_AVX2_KERNEL 1
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define CGP_HAVE_NEON_KERNEL 1
#endif

namespace cgp::rng {

namespace {

using block = philox4x64::block_type;
using key_t2 = std::array<std::uint64_t, 2>;

/// 256-bit counter + 1 (the scalar engine's increment, shared by all
/// kernels when they step to the next block).
inline void increment(block& c) noexcept {
  for (auto& word : c) {
    if (++word != 0) break;
  }
}

struct hilo {
  std::uint64_t hi;
  std::uint64_t lo;
};

inline hilo mulhilo(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  return {static_cast<std::uint64_t>(prod >> 64), static_cast<std::uint64_t>(prod)};
}

/// One Philox round on one block -- the same arithmetic as
/// philox4x64::bijection's round (the equality tests pin it), inlined here
/// so the interleaved loop below stays call-free.
inline void round1(block& x, std::uint64_t k0, std::uint64_t k1) noexcept {
  const hilo p0 = mulhilo(philox_constants::mul0, x[0]);
  const hilo p1 = mulhilo(philox_constants::mul1, x[2]);
  x = {p1.hi ^ x[1] ^ k0, p1.lo, p0.hi ^ x[3] ^ k1, p0.lo};
}

void batch_scalar(block counter, const key_t2& key, std::uint64_t nblocks,
                  std::uint64_t* out) noexcept {
  // Four independent blocks in flight: a single block's 10 rounds are a
  // pure latency chain (each round waits on two multiplies of the previous
  // one), which leaves the multiplier mostly idle.  Interleaving four
  // independent chains runs it at throughput instead -- the same trick the
  // vector kernels use, done in scalar registers.  Output is bit-identical
  // to the one-at-a-time loop because each block's rounds are untouched.
  while (nblocks >= 4) {
    block b0 = counter;
    increment(counter);
    block b1 = counter;
    increment(counter);
    block b2 = counter;
    increment(counter);
    block b3 = counter;
    increment(counter);
    std::uint64_t k0 = key[0];
    std::uint64_t k1 = key[1];
    for (int r = 0; r < 10; ++r) {
      round1(b0, k0, k1);
      round1(b1, k0, k1);
      round1(b2, k0, k1);
      round1(b3, k0, k1);
      k0 += philox_constants::weyl0;
      k1 += philox_constants::weyl1;
    }
    std::memcpy(out, b0.data(), sizeof(b0));
    std::memcpy(out + 4, b1.data(), sizeof(b1));
    std::memcpy(out + 8, b2.data(), sizeof(b2));
    std::memcpy(out + 12, b3.data(), sizeof(b3));
    out += 16;
    nblocks -= 4;
  }
  for (; nblocks > 0; --nblocks) {
    const block b = philox4x64::bijection(counter, key);
    std::memcpy(out, b.data(), sizeof(b));
    out += 4;
    increment(counter);
  }
}

#if defined(CGP_HAVE_AVX2_KERNEL)

// mulhilo(constant a, per-lane b) on 4 64-bit lanes from 32x32->64 partial
// products: a*b = al*bl + 2^32 (al*bh + ah*bl) + 2^64 ah*bh.  `mid`
// accumulates the three 32-bit-aligned middle terms (sum < 3 * 2^32, no
// overflow); its carry feeds the high word.
__attribute__((target("avx2"), always_inline)) inline void mulhilo4(
    __m256i a, __m256i a_hi, __m256i b, __m256i mask32, __m256i* hi, __m256i* lo) noexcept {
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i albl = _mm256_mul_epu32(a, b);       // low 32 of each lane
  const __m256i albh = _mm256_mul_epu32(a, b_hi);
  const __m256i ahbl = _mm256_mul_epu32(a_hi, b);
  const __m256i ahbh = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(albl, 32), _mm256_and_si256(albh, mask32)),
      _mm256_and_si256(ahbl, mask32));
  *lo = _mm256_or_si256(_mm256_slli_epi64(mid, 32), _mm256_and_si256(albl, mask32));
  *hi = _mm256_add_epi64(
      _mm256_add_epi64(ahbh, _mm256_srli_epi64(albh, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(ahbl, 32), _mm256_srli_epi64(mid, 32)));
}

struct avx2_group {
  __m256i x0, x1, x2, x3;
};

__attribute__((target("avx2"), always_inline)) inline void round4(
    avx2_group& g, __m256i k0, __m256i k1, __m256i m0, __m256i m0h, __m256i m1, __m256i m1h,
    __m256i mask32) noexcept {
  __m256i p0hi, p0lo, p1hi, p1lo;
  mulhilo4(m0, m0h, g.x0, mask32, &p0hi, &p0lo);
  mulhilo4(m1, m1h, g.x2, mask32, &p1hi, &p1lo);
  const __m256i nx0 = _mm256_xor_si256(_mm256_xor_si256(p1hi, g.x1), k0);
  const __m256i nx2 = _mm256_xor_si256(_mm256_xor_si256(p0hi, g.x3), k1);
  g.x0 = nx0;
  g.x1 = p1lo;
  g.x2 = nx2;
  g.x3 = p0lo;
}

/// Load 4 consecutive counters as one lane-per-block group (counter word w
/// of block l lands in lane l of vector xw), advancing `ctr` past them.
/// The common case (no 64-bit carry inside the group) is pure vector
/// arithmetic; the carry edge falls back to building the lanes one by one.
__attribute__((target("avx2"), always_inline)) inline avx2_group load4(block& ctr) noexcept {
  avx2_group g;
  if (ctr[0] < std::numeric_limits<std::uint64_t>::max() - 4) {
    g.x0 = _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(ctr[0])),
                            _mm256_set_epi64x(3, 2, 1, 0));
    g.x1 = _mm256_set1_epi64x(static_cast<long long>(ctr[1]));
    g.x2 = _mm256_set1_epi64x(static_cast<long long>(ctr[2]));
    g.x3 = _mm256_set1_epi64x(static_cast<long long>(ctr[3]));
    ctr[0] += 4;
    return g;
  }
  alignas(32) std::uint64_t lane[4][4];
  for (int l = 0; l < 4; ++l) {
    lane[l][0] = ctr[0];
    lane[l][1] = ctr[1];
    lane[l][2] = ctr[2];
    lane[l][3] = ctr[3];
    increment(ctr);
  }
  g.x0 = _mm256_set_epi64x(static_cast<long long>(lane[3][0]), static_cast<long long>(lane[2][0]),
                           static_cast<long long>(lane[1][0]), static_cast<long long>(lane[0][0]));
  g.x1 = _mm256_set_epi64x(static_cast<long long>(lane[3][1]), static_cast<long long>(lane[2][1]),
                           static_cast<long long>(lane[1][1]), static_cast<long long>(lane[0][1]));
  g.x2 = _mm256_set_epi64x(static_cast<long long>(lane[3][2]), static_cast<long long>(lane[2][2]),
                           static_cast<long long>(lane[1][2]), static_cast<long long>(lane[0][2]));
  g.x3 = _mm256_set_epi64x(static_cast<long long>(lane[3][3]), static_cast<long long>(lane[2][3]),
                           static_cast<long long>(lane[1][3]), static_cast<long long>(lane[0][3]));
  return g;
}

/// Store a group back in counter order (out[4l + w] = lane l of vector xw)
/// via an in-register 4x4 transpose -- four vector stores, never bouncing
/// words through a scalar temp (a store-forwarding stall per word, which
/// is what made the first cut of this kernel SLOWER than scalar).
__attribute__((target("avx2"), always_inline)) inline void store4(const avx2_group& g,
                                                                  std::uint64_t* out) noexcept {
  const __m256i t0 = _mm256_unpacklo_epi64(g.x0, g.x1);  // b0w0 b0w1 | b2w0 b2w1
  const __m256i t1 = _mm256_unpackhi_epi64(g.x0, g.x1);  // b1w0 b1w1 | b3w0 b3w1
  const __m256i t2 = _mm256_unpacklo_epi64(g.x2, g.x3);  // b0w2 b0w3 | b2w2 b2w3
  const __m256i t3 = _mm256_unpackhi_epi64(g.x2, g.x3);  // b1w2 b1w3 | b3w2 b3w3
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0),
                      _mm256_permute2x128_si256(t0, t2, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                      _mm256_permute2x128_si256(t1, t3, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8),
                      _mm256_permute2x128_si256(t0, t2, 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 12),
                      _mm256_permute2x128_si256(t1, t3, 0x31));
}

__attribute__((target("avx2"))) void batch_avx2(block counter, const key_t2& key,
                                                std::uint64_t nblocks,
                                                std::uint64_t* out) noexcept {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i m0 = _mm256_set1_epi64x(static_cast<long long>(philox_constants::mul0));
  const __m256i m0h = _mm256_set1_epi64x(static_cast<long long>(philox_constants::mul0 >> 32));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(philox_constants::mul1));
  const __m256i m1h = _mm256_set1_epi64x(static_cast<long long>(philox_constants::mul1 >> 32));
  const __m256i w0 = _mm256_set1_epi64x(static_cast<long long>(philox_constants::weyl0));
  const __m256i w1 = _mm256_set1_epi64x(static_cast<long long>(philox_constants::weyl1));

  // Two groups (8 blocks) in flight: group B's rounds fill the multiply
  // latency of group A's, roughly doubling throughput over one group.
  while (nblocks >= 8) {
    avx2_group a = load4(counter);
    avx2_group b = load4(counter);
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));
    for (int r = 0; r < 10; ++r) {
      round4(a, k0, k1, m0, m0h, m1, m1h, mask32);
      round4(b, k0, k1, m0, m0h, m1, m1h, mask32);
      k0 = _mm256_add_epi64(k0, w0);
      k1 = _mm256_add_epi64(k1, w1);
    }
    store4(a, out);
    store4(b, out + 16);
    out += 32;
    nblocks -= 8;
  }
  while (nblocks >= 4) {
    avx2_group a = load4(counter);
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));
    for (int r = 0; r < 10; ++r) {
      round4(a, k0, k1, m0, m0h, m1, m1h, mask32);
      k0 = _mm256_add_epi64(k0, w0);
      k1 = _mm256_add_epi64(k1, w1);
    }
    store4(a, out);
    out += 16;
    nblocks -= 4;
  }
  if (nblocks > 0) batch_scalar(counter, key, nblocks, out);
}

// ---- AVX-512: 8 blocks per vector, two groups in flight ------------------
//
// Same partial-product mulhilo as the AVX2 kernel, twice the lanes per
// instruction -- on 64x64 Philox the multiply emulation is the port
// bottleneck, so halving the instructions per word is what finally clears
// the 2x gate (AVX2 alone plateaus around 1.3-1.6x over the interleaved
// scalar loop).  Needs AVX512F + DQ (mask-free 64-bit lane ops).

// GCC 12's -Wmaybe-uninitialized fires inside avx512fintrin.h: the
// unmasked _mm512_mul_epu32 / _mm512_srli_epi64 wrappers pass
// _mm512_undefined_epi32() (deliberately uninitialized, fully overwritten
// by the builtin) as the masked-out source.  False positive; silence it
// for the kernel so -Werror builds stay clean.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx512dq"), always_inline)) inline void mulhilo8(
    __m512i a, __m512i a_hi, __m512i b, __m512i mask32, __m512i* hi, __m512i* lo) noexcept {
  const __m512i b_hi = _mm512_srli_epi64(b, 32);
  const __m512i albl = _mm512_mul_epu32(a, b);
  const __m512i albh = _mm512_mul_epu32(a, b_hi);
  const __m512i ahbl = _mm512_mul_epu32(a_hi, b);
  const __m512i ahbh = _mm512_mul_epu32(a_hi, b_hi);
  const __m512i mid = _mm512_add_epi64(
      _mm512_add_epi64(_mm512_srli_epi64(albl, 32), _mm512_and_si512(albh, mask32)),
      _mm512_and_si512(ahbl, mask32));
  // ternlog 0xF8 = A | (B & C): fuses the or+and of the low-word blend.
  *lo = _mm512_ternarylogic_epi64(_mm512_slli_epi64(mid, 32), albl, mask32, 0xF8);
  *hi = _mm512_add_epi64(
      _mm512_add_epi64(ahbh, _mm512_srli_epi64(albh, 32)),
      _mm512_add_epi64(_mm512_srli_epi64(ahbl, 32), _mm512_srli_epi64(mid, 32)));
}

struct avx512_group {
  __m512i x0, x1, x2, x3;
};

__attribute__((target("avx512f,avx512dq"), always_inline)) inline void round8(
    avx512_group& g, __m512i k0, __m512i k1, __m512i m0, __m512i m0h, __m512i m1, __m512i m1h,
    __m512i mask32) noexcept {
  __m512i p0hi, p0lo, p1hi, p1lo;
  mulhilo8(m0, m0h, g.x0, mask32, &p0hi, &p0lo);
  mulhilo8(m1, m1h, g.x2, mask32, &p1hi, &p1lo);
  // vpternlogq 0x96 = three-way XOR in one uop: every 512-bit ALU op on
  // this kernel contends for ports 0/5, so each fused xor is a cycle back.
  const __m512i nx0 = _mm512_ternarylogic_epi64(p1hi, g.x1, k0, 0x96);
  const __m512i nx2 = _mm512_ternarylogic_epi64(p0hi, g.x3, k1, 0x96);
  g.x0 = nx0;
  g.x1 = p1lo;
  g.x2 = nx2;
  g.x3 = p0lo;
}

/// Load 8 consecutive counters lane-per-block, advancing `ctr`.  Vector
/// fast path when no 64-bit carry falls inside the group.
__attribute__((target("avx512f,avx512dq"), always_inline)) inline avx512_group load8(
    block& ctr) noexcept {
  avx512_group g;
  if (ctr[0] < std::numeric_limits<std::uint64_t>::max() - 8) {
    g.x0 = _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(ctr[0])),
                            _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0));
    g.x1 = _mm512_set1_epi64(static_cast<long long>(ctr[1]));
    g.x2 = _mm512_set1_epi64(static_cast<long long>(ctr[2]));
    g.x3 = _mm512_set1_epi64(static_cast<long long>(ctr[3]));
    ctr[0] += 8;
    return g;
  }
  alignas(64) std::uint64_t lane[4][8];
  for (int l = 0; l < 8; ++l) {
    lane[0][l] = ctr[0];
    lane[1][l] = ctr[1];
    lane[2][l] = ctr[2];
    lane[3][l] = ctr[3];
    increment(ctr);
  }
  g.x0 = _mm512_load_si512(lane[0]);
  g.x1 = _mm512_load_si512(lane[1]);
  g.x2 = _mm512_load_si512(lane[2]);
  g.x3 = _mm512_load_si512(lane[3]);
  return g;
}

/// Store a group back in counter order (out[4l + w] = lane l of vector xw)
/// via an in-register 8x4 transpose: unpack word pairs, gather each block's
/// 4 words with permutex2var, then pair up blocks with shuffle_i64x2.
__attribute__((target("avx512f,avx512dq"), always_inline)) inline void store8(
    const avx512_group& g, std::uint64_t* out) noexcept {
  const __m512i t0 = _mm512_unpacklo_epi64(g.x0, g.x1);  // b0w0 b0w1 | b2.. | b4.. | b6..
  const __m512i t1 = _mm512_unpackhi_epi64(g.x0, g.x1);  // b1w0 b1w1 | b3.. | b5.. | b7..
  const __m512i t2 = _mm512_unpacklo_epi64(g.x2, g.x3);  // b0w2 b0w3 | b2.. | b4.. | b6..
  const __m512i t3 = _mm512_unpackhi_epi64(g.x2, g.x3);  // b1w2 b1w3 | b3.. | b5.. | b7..
  const __m512i lo_idx = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);   // blocks {0,2} / {1,3}
  const __m512i hi_idx = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4); // blocks {4,6} / {5,7}
  const __m512i m02 = _mm512_permutex2var_epi64(t0, lo_idx, t2);
  const __m512i m13 = _mm512_permutex2var_epi64(t1, lo_idx, t3);
  const __m512i m46 = _mm512_permutex2var_epi64(t0, hi_idx, t2);
  const __m512i m57 = _mm512_permutex2var_epi64(t1, hi_idx, t3);
  _mm512_storeu_si512(out + 0, _mm512_shuffle_i64x2(m02, m13, 0x44));   // blocks 0,1
  _mm512_storeu_si512(out + 8, _mm512_shuffle_i64x2(m02, m13, 0xEE));   // blocks 2,3
  _mm512_storeu_si512(out + 16, _mm512_shuffle_i64x2(m46, m57, 0x44));  // blocks 4,5
  _mm512_storeu_si512(out + 24, _mm512_shuffle_i64x2(m46, m57, 0xEE));  // blocks 6,7
}

__attribute__((target("avx512f,avx512dq"))) void batch_avx512(block counter, const key_t2& key,
                                                              std::uint64_t nblocks,
                                                              std::uint64_t* out) noexcept {
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFll);
  const __m512i m0 = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul0));
  const __m512i m0h = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul0 >> 32));
  const __m512i m1 = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul1));
  const __m512i m1h = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul1 >> 32));
  const __m512i w0 = _mm512_set1_epi64(static_cast<long long>(philox_constants::weyl0));
  const __m512i w1 = _mm512_set1_epi64(static_cast<long long>(philox_constants::weyl1));

  // Two groups (16 blocks) in flight, same interleave rationale as the
  // AVX2 kernel; 32 zmm registers hold both groups without spills.
  while (nblocks >= 16) {
    avx512_group a = load8(counter);
    avx512_group b = load8(counter);
    __m512i k0 = _mm512_set1_epi64(static_cast<long long>(key[0]));
    __m512i k1 = _mm512_set1_epi64(static_cast<long long>(key[1]));
    for (int r = 0; r < 10; ++r) {
      round8(a, k0, k1, m0, m0h, m1, m1h, mask32);
      round8(b, k0, k1, m0, m0h, m1, m1h, mask32);
      k0 = _mm512_add_epi64(k0, w0);
      k1 = _mm512_add_epi64(k1, w1);
    }
    store8(a, out);
    store8(b, out + 32);
    out += 64;
    nblocks -= 16;
  }
  while (nblocks >= 8) {
    avx512_group a = load8(counter);
    __m512i k0 = _mm512_set1_epi64(static_cast<long long>(key[0]));
    __m512i k1 = _mm512_set1_epi64(static_cast<long long>(key[1]));
    for (int r = 0; r < 10; ++r) {
      round8(a, k0, k1, m0, m0h, m1, m1h, mask32);
      k0 = _mm512_add_epi64(k0, w0);
      k1 = _mm512_add_epi64(k1, w1);
    }
    store8(a, out);
    out += 32;
    nblocks -= 8;
  }
  if (nblocks > 0) batch_avx2(counter, key, nblocks, out);
}

// ---- AVX-512 + IFMA variant of the same kernel ---------------------------
//
// vpmadd52{lo,hi}uq multiply the low 52 bits of each 64-bit lane and
// accumulate the low/high 52 bits of the 104-bit product.  Splitting
// a = a1*2^52 + a0 and b = b1*2^52 + b0 (a1, b1 < 2^12 because the inputs
// are 64-bit) gives the exact 128-bit product from three 52-bit columns:
//
//   s0 = lo52(a0*b0)
//   s1 = hi52(a0*b0) + lo52(a0*b1) + lo52(a1*b0)      (column weight 2^52)
//   s2 = hi52(a0*b1) + hi52(a1*b0) +     a1*b1        (column weight 2^104;
//                                                      a1*b1 < 2^24 is exact)
//   lo64 = s0 | (s1 << 52)       -- disjoint bits, no carry possible
//   hi64 = (s1 >> 12) + (s2 << 40)
//
// That is 13 port-0/5 uops per mulhilo against 18 for the 32-bit
// partial-product version, and the multiplier limbs ignore bits 63:52 of
// their operands, so `a` needs only one shift (no masking).  On the
// port-bound round loop this is a straight ~20% uop cut.  The output is
// the same bijection bit for bit -- the differential tests cover whichever
// variant dispatches on the host.
__attribute__((target("avx512f,avx512dq,avx512ifma"), always_inline)) inline void mulhilo8_ifma(
    __m512i b0, __m512i b1, __m512i a, __m512i zero, __m512i* hi, __m512i* lo) noexcept {
  const __m512i a1 = _mm512_srli_epi64(a, 52);
  const __m512i s0 = _mm512_madd52lo_epu64(zero, a, b0);
  const __m512i s1 = _mm512_madd52lo_epu64(
      _mm512_madd52lo_epu64(_mm512_madd52hi_epu64(zero, a, b0), a, b1), a1, b0);
  const __m512i s2 = _mm512_madd52hi_epu64(
      _mm512_madd52hi_epu64(_mm512_madd52lo_epu64(zero, a1, b1), a, b1), a1, b0);
  *lo = _mm512_or_si512(s0, _mm512_slli_epi64(s1, 52));
  *hi = _mm512_add_epi64(_mm512_srli_epi64(s1, 12), _mm512_slli_epi64(s2, 40));
}

__attribute__((target("avx512f,avx512dq,avx512ifma"), always_inline)) inline void round8_ifma(
    avx512_group& g, __m512i k0, __m512i k1, __m512i m0b0, __m512i m0b1, __m512i m1b0,
    __m512i m1b1, __m512i zero) noexcept {
  __m512i p0hi, p0lo, p1hi, p1lo;
  mulhilo8_ifma(m0b0, m0b1, g.x0, zero, &p0hi, &p0lo);
  mulhilo8_ifma(m1b0, m1b1, g.x2, zero, &p1hi, &p1lo);
  const __m512i nx0 = _mm512_ternarylogic_epi64(p1hi, g.x1, k0, 0x96);
  const __m512i nx2 = _mm512_ternarylogic_epi64(p0hi, g.x3, k1, 0x96);
  g.x0 = nx0;
  g.x1 = p1lo;
  g.x2 = nx2;
  g.x3 = p0lo;
}

__attribute__((target("avx512f,avx512dq,avx512ifma"))) void batch_avx512_ifma(
    block counter, const key_t2& key, std::uint64_t nblocks, std::uint64_t* out) noexcept {
  constexpr std::uint64_t kMask52 = (std::uint64_t{1} << 52) - 1;
  const __m512i zero = _mm512_setzero_si512();
  const __m512i m0b0 = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul0 & kMask52));
  const __m512i m0b1 = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul0 >> 52));
  const __m512i m1b0 = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul1 & kMask52));
  const __m512i m1b1 = _mm512_set1_epi64(static_cast<long long>(philox_constants::mul1 >> 52));
  const __m512i w0 = _mm512_set1_epi64(static_cast<long long>(philox_constants::weyl0));
  const __m512i w1 = _mm512_set1_epi64(static_cast<long long>(philox_constants::weyl1));

  while (nblocks >= 16) {
    avx512_group a = load8(counter);
    avx512_group b = load8(counter);
    __m512i k0 = _mm512_set1_epi64(static_cast<long long>(key[0]));
    __m512i k1 = _mm512_set1_epi64(static_cast<long long>(key[1]));
    for (int r = 0; r < 10; ++r) {
      round8_ifma(a, k0, k1, m0b0, m0b1, m1b0, m1b1, zero);
      round8_ifma(b, k0, k1, m0b0, m0b1, m1b0, m1b1, zero);
      k0 = _mm512_add_epi64(k0, w0);
      k1 = _mm512_add_epi64(k1, w1);
    }
    store8(a, out);
    store8(b, out + 32);
    out += 64;
    nblocks -= 16;
  }
  while (nblocks >= 8) {
    avx512_group a = load8(counter);
    __m512i k0 = _mm512_set1_epi64(static_cast<long long>(key[0]));
    __m512i k1 = _mm512_set1_epi64(static_cast<long long>(key[1]));
    for (int r = 0; r < 10; ++r) {
      round8_ifma(a, k0, k1, m0b0, m0b1, m1b0, m1b1, zero);
      k0 = _mm512_add_epi64(k0, w0);
      k1 = _mm512_add_epi64(k1, w1);
    }
    store8(a, out);
    out += 32;
    nblocks -= 8;
  }
  if (nblocks > 0) batch_avx2(counter, key, nblocks, out);
}

/// Whether the avx512 path may take the IFMA round function.  One probe,
/// cached; both variants compute the identical bijection.
bool avx512_use_ifma() noexcept {
  static const bool v = __builtin_cpu_supports("avx512ifma") != 0;
  return v;
}

#pragma GCC diagnostic pop

#endif  // CGP_HAVE_AVX2_KERNEL

#if defined(CGP_HAVE_NEON_KERNEL)

struct neon_pair {
  uint64x2_t x0, x1, x2, x3;
};

// mulhilo(constant a, per-lane b) on 2 64-bit lanes -- the same 32-bit
// partial-product decomposition as the AVX2 kernel, via vmull_u32.
inline void mulhilo2(uint32x2_t a_lo, uint32x2_t a_hi, uint64x2_t b, uint64x2_t mask32,
                     uint64x2_t* hi, uint64x2_t* lo) noexcept {
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t albl = vmull_u32(a_lo, b_lo);
  const uint64x2_t albh = vmull_u32(a_lo, b_hi);
  const uint64x2_t ahbl = vmull_u32(a_hi, b_lo);
  const uint64x2_t ahbh = vmull_u32(a_hi, b_hi);
  const uint64x2_t mid = vaddq_u64(
      vaddq_u64(vshrq_n_u64(albl, 32), vandq_u64(albh, mask32)), vandq_u64(ahbl, mask32));
  *lo = vorrq_u64(vshlq_n_u64(mid, 32), vandq_u64(albl, mask32));
  *hi = vaddq_u64(vaddq_u64(ahbh, vshrq_n_u64(albh, 32)),
                  vaddq_u64(vshrq_n_u64(ahbl, 32), vshrq_n_u64(mid, 32)));
}

inline void round2(neon_pair& g, uint64x2_t k0, uint64x2_t k1, uint32x2_t m0lo, uint32x2_t m0hi,
                   uint32x2_t m1lo, uint32x2_t m1hi, uint64x2_t mask32) noexcept {
  uint64x2_t p0hi, p0lo, p1hi, p1lo;
  mulhilo2(m0lo, m0hi, g.x0, mask32, &p0hi, &p0lo);
  mulhilo2(m1lo, m1hi, g.x2, mask32, &p1hi, &p1lo);
  const uint64x2_t nx0 = veorq_u64(veorq_u64(p1hi, g.x1), k0);
  const uint64x2_t nx2 = veorq_u64(veorq_u64(p0hi, g.x3), k1);
  g.x0 = nx0;
  g.x1 = p1lo;
  g.x2 = nx2;
  g.x3 = p0lo;
}

inline neon_pair load2(block& ctr) noexcept {
  neon_pair g;
  if (ctr[0] < std::numeric_limits<std::uint64_t>::max() - 2) {
    // Common case: no 64-bit carry inside the pair -- pure vector setup.
    const std::uint64_t step[2] = {0, 1};
    g.x0 = vaddq_u64(vdupq_n_u64(ctr[0]), vld1q_u64(step));
    g.x1 = vdupq_n_u64(ctr[1]);
    g.x2 = vdupq_n_u64(ctr[2]);
    g.x3 = vdupq_n_u64(ctr[3]);
    ctr[0] += 2;
    return g;
  }
  std::uint64_t lane[2][4];
  for (int l = 0; l < 2; ++l) {
    for (int w = 0; w < 4; ++w) lane[l][w] = ctr[w];
    increment(ctr);
  }
  const std::uint64_t t0[2] = {lane[0][0], lane[1][0]};
  const std::uint64_t t1[2] = {lane[0][1], lane[1][1]};
  const std::uint64_t t2[2] = {lane[0][2], lane[1][2]};
  const std::uint64_t t3[2] = {lane[0][3], lane[1][3]};
  g.x0 = vld1q_u64(t0);
  g.x1 = vld1q_u64(t1);
  g.x2 = vld1q_u64(t2);
  g.x3 = vld1q_u64(t3);
  return g;
}

/// Store a pair back in counter order via in-register zips (four vector
/// stores, no scalar bounce -- see the AVX2 store4 note).
inline void store2(const neon_pair& g, std::uint64_t* out) noexcept {
  vst1q_u64(out + 0, vzip1q_u64(g.x0, g.x1));  // b0w0 b0w1
  vst1q_u64(out + 2, vzip1q_u64(g.x2, g.x3));  // b0w2 b0w3
  vst1q_u64(out + 4, vzip2q_u64(g.x0, g.x1));  // b1w0 b1w1
  vst1q_u64(out + 6, vzip2q_u64(g.x2, g.x3));  // b1w2 b1w3
}

void batch_neon(block counter, const key_t2& key, std::uint64_t nblocks,
                std::uint64_t* out) noexcept {
  const uint64x2_t mask32 = vdupq_n_u64(0xFFFFFFFFull);
  const uint32x2_t m0lo = vdup_n_u32(static_cast<std::uint32_t>(philox_constants::mul0));
  const uint32x2_t m0hi = vdup_n_u32(static_cast<std::uint32_t>(philox_constants::mul0 >> 32));
  const uint32x2_t m1lo = vdup_n_u32(static_cast<std::uint32_t>(philox_constants::mul1));
  const uint32x2_t m1hi = vdup_n_u32(static_cast<std::uint32_t>(philox_constants::mul1 >> 32));
  const uint64x2_t w0 = vdupq_n_u64(philox_constants::weyl0);
  const uint64x2_t w1 = vdupq_n_u64(philox_constants::weyl1);

  while (nblocks >= 4) {
    neon_pair a = load2(counter);
    neon_pair b = load2(counter);
    uint64x2_t k0 = vdupq_n_u64(key[0]);
    uint64x2_t k1 = vdupq_n_u64(key[1]);
    for (int r = 0; r < 10; ++r) {
      round2(a, k0, k1, m0lo, m0hi, m1lo, m1hi, mask32);
      round2(b, k0, k1, m0lo, m0hi, m1lo, m1hi, mask32);
      k0 = vaddq_u64(k0, w0);
      k1 = vaddq_u64(k1, w1);
    }
    store2(a, out);
    store2(b, out + 8);
    out += 16;
    nblocks -= 4;
  }
  while (nblocks >= 2) {
    neon_pair a = load2(counter);
    uint64x2_t k0 = vdupq_n_u64(key[0]);
    uint64x2_t k1 = vdupq_n_u64(key[1]);
    for (int r = 0; r < 10; ++r) {
      round2(a, k0, k1, m0lo, m0hi, m1lo, m1hi, mask32);
      k0 = vaddq_u64(k0, w0);
      k1 = vaddq_u64(k1, w1);
    }
    store2(a, out);
    out += 8;
    nblocks -= 2;
  }
  if (nblocks > 0) batch_scalar(counter, key, nblocks, out);
}

#endif  // CGP_HAVE_NEON_KERNEL

/// Mirror the resolved path into the obs gauge (value = the enum), so
/// metrics snapshots record which kernel the process ran.
void publish_path(simd_path p) {
  obs::get_gauge("rng.simd_path").set(static_cast<std::int64_t>(p));
}

/// -1 = no programmatic override; otherwise the forced simd_path value.
std::atomic<int> g_override{-1};

simd_path resolve_env_path() {
  const char* env = std::getenv("CGP_SIMD");
  simd_path chosen = detected_simd_path();
  if (env != nullptr) {
    const std::string_view v(env);
    if (v == "off" || v == "0" || v == "scalar") {
      chosen = simd_path::scalar;
    } else if (v == "avx512") {
      chosen = simd_path_supported(simd_path::avx512) ? simd_path::avx512 : simd_path::scalar;
    } else if (v == "avx2") {
      chosen = simd_path_supported(simd_path::avx2) ? simd_path::avx2 : simd_path::scalar;
    } else if (v == "neon") {
      chosen = simd_path_supported(simd_path::neon) ? simd_path::neon : simd_path::scalar;
    }
    // anything else ("on", "1", "auto", typos) keeps hardware detection
  }
  publish_path(chosen);
  return chosen;
}

}  // namespace

simd_path detected_simd_path() noexcept {
#if defined(CGP_HAVE_AVX2_KERNEL)
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq")) {
    return simd_path::avx512;
  }
  return __builtin_cpu_supports("avx2") ? simd_path::avx2 : simd_path::scalar;
#elif defined(CGP_HAVE_NEON_KERNEL)
  return simd_path::neon;
#else
  return simd_path::scalar;
#endif
}

bool simd_path_supported(simd_path p) noexcept {
  switch (p) {
    case simd_path::scalar:
      return true;
#if defined(CGP_HAVE_AVX2_KERNEL)
    case simd_path::avx2:
      // An AVX-512 host runs the avx2 kernel too (CGP_SIMD=avx2 is how its
      // owner benchmarks the narrower tier).
      return __builtin_cpu_supports("avx2");
    case simd_path::avx512:
      return detected_simd_path() == simd_path::avx512;
#endif
#if defined(CGP_HAVE_NEON_KERNEL)
    case simd_path::neon:
      return true;
#endif
    default:
      return false;
  }
}

simd_path active_simd_path() noexcept {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<simd_path>(o);
  static const simd_path env_path = resolve_env_path();
  return env_path;
}

void set_simd_override(simd_path p) noexcept {
  if (!simd_path_supported(p)) p = simd_path::scalar;
  g_override.store(static_cast<int>(p), std::memory_order_relaxed);
  publish_path(p);
}

void clear_simd_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
  publish_path(active_simd_path());
}

void philox4x64_batch_on(simd_path path, const philox4x64::block_type& counter,
                         const std::array<std::uint64_t, 2>& key, std::uint64_t nblocks,
                         std::uint64_t* out) noexcept {
  if (nblocks == 0) return;
  switch (path) {
#if defined(CGP_HAVE_AVX2_KERNEL)
    case simd_path::avx512:
      if (simd_path_supported(simd_path::avx512)) {
        if (avx512_use_ifma()) {
          batch_avx512_ifma(counter, key, nblocks, out);
        } else {
          batch_avx512(counter, key, nblocks, out);
        }
        return;
      }
      break;
    case simd_path::avx2:
      if (simd_path_supported(simd_path::avx2)) {
        batch_avx2(counter, key, nblocks, out);
        return;
      }
      break;
#endif
#if defined(CGP_HAVE_NEON_KERNEL)
    case simd_path::neon:
      batch_neon(counter, key, nblocks, out);
      return;
#endif
    default:
      break;
  }
  batch_scalar(counter, key, nblocks, out);
}

void philox4x64_batch(const philox4x64::block_type& counter,
                      const std::array<std::uint64_t, 2>& key, std::uint64_t nblocks,
                      std::uint64_t* out) noexcept {
  philox4x64_batch_on(active_simd_path(), counter, key, nblocks, out);
}

}  // namespace cgp::rng
