// rng/counting.hpp
//
// A transparent adaptor that counts how many 64-bit words an algorithm draws
// from its engine.  "Random numbers" is one of the four resources Theorem 1
// budgets at O(m) per processor, and Section 3 reports the measured budget of
// the hypergeometric sampler (< 1.5 average, 10 worst case per sample);
// experiment E3 and several property tests reproduce those numbers with this
// adaptor.
#pragma once

#include <cstdint>
#include <utility>

#include "rng/engine.hpp"

namespace cgp::rng {

template <random_engine64 Engine>
class counting_engine {
 public:
  using result_type = std::uint64_t;

  counting_engine() = default;
  explicit counting_engine(Engine engine) noexcept : engine_(std::move(engine)) {}

  result_type operator()() noexcept(noexcept(std::declval<Engine&>()())) {
    ++count_;
    return engine_();
  }

  static constexpr result_type min() noexcept { return Engine::min(); }
  static constexpr result_type max() noexcept { return Engine::max(); }

  /// Number of 64-bit words drawn since construction / last reset.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  void reset_count() noexcept { count_ = 0; }

  [[nodiscard]] Engine& base() noexcept { return engine_; }
  [[nodiscard]] const Engine& base() const noexcept { return engine_; }

 private:
  Engine engine_{};
  std::uint64_t count_ = 0;
};

}  // namespace cgp::rng
