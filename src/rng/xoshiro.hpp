// rng/xoshiro.hpp
//
// xoshiro256** (Blackman & Vigna): the fast sequential engine used for the
// local Fisher-Yates shuffles, where per-draw speed dominates and counter
// semantics are not needed.  Equipped with the canonical jump() so it can
// also provide deterministic parallel substreams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "rng/splitmix64.hpp"

namespace cgp::rng {

class xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  constexpr explicit xoshiro256ss(std::uint64_t seed = 0x2545F4914F6CDD1Dull) noexcept {
    // Expand the seed through splitmix64, as the authors recommend.
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Jump ahead 2^128 steps (canonical polynomial), giving 2^128
  /// non-overlapping substreams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
                                                    0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t poly : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (poly & (std::uint64_t{1} << b)) {
          for (std::size_t w = 0; w < 4; ++w) acc[w] ^= state_[w];
        }
        (void)(*this)();
      }
    }
    state_ = acc;
  }

  friend constexpr bool operator==(const xoshiro256ss&, const xoshiro256ss&) noexcept = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cgp::rng
