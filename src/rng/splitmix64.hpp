// rng/splitmix64.hpp
//
// Sebastiano Vigna's splitmix64: a tiny, very fast 64-bit generator whose
// main role here is *seeding* -- expanding one user seed into the state
// words of the serious engines, and hashing (seed, stream-id) pairs into
// independent per-processor streams.
#pragma once

#include <cstdint>
#include <limits>

namespace cgp::rng {

/// One splitmix64 step: advances `state` by the golden-gamma Weyl constant
/// and returns a finalized (avalanched) output word.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Stateless mix of a single word (used to hash stream ids).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// splitmix64 as a standard uniform random bit generator.
class splitmix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit splitmix64(std::uint64_t seed = 0x853C49E6748FEA9Bull) noexcept
      : state_(seed) {}

  constexpr result_type operator()() noexcept { return splitmix64_next(state_); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  friend constexpr bool operator==(const splitmix64&, const splitmix64&) noexcept = default;

 private:
  std::uint64_t state_;
};

}  // namespace cgp::rng
