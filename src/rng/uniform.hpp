// rng/uniform.hpp
//
// Bounded uniform integers (Lemire's multiply-shift rejection method) and
// uniform doubles in [0,1).  These are the only primitives the shuffles and
// the hypergeometric samplers consume, so their draw counts are easy to
// reason about: `uniform_below` uses 1 draw except with probability < 2^-32
// for any bound below 2^32; `canonical_double` always uses exactly 1 draw.
#pragma once

#include <cstdint>

#include "rng/engine.hpp"
#include "util/assert.hpp"

namespace cgp::rng {

/// Uniform integer in [0, bound).  `bound` must be positive.
/// Unbiased (Lemire 2019): multiply-shift with a rejection zone of size
/// (2^64 mod bound) / 2^64 -- for the block sizes this library deals in
/// (bound <= 2^40 or so) a retry is vanishingly rare, so the expected number
/// of engine draws is 1 + bound/2^64.
template <random_engine64 Engine>
[[nodiscard]] std::uint64_t uniform_below(Engine& engine, std::uint64_t bound) {
  CGP_EXPECTS(bound > 0);
  using u128 = unsigned __int128;
  std::uint64_t x = engine();
  u128 m = static_cast<u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    // threshold = 2^64 mod bound, computed without 128-bit division
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = engine();
      m = static_cast<u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in [lo, hi] inclusive.
template <random_engine64 Engine>
[[nodiscard]] std::uint64_t uniform_between(Engine& engine, std::uint64_t lo, std::uint64_t hi) {
  CGP_EXPECTS(lo <= hi);
  return lo + uniform_below(engine, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of precision; exactly one draw.
template <random_engine64 Engine>
[[nodiscard]] double canonical_double(Engine& engine) {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1]: never returns zero, so it is safe as a log()
/// argument inside rejection samplers.
template <random_engine64 Engine>
[[nodiscard]] double canonical_double_nonzero(Engine& engine) {
  return (static_cast<double>(engine() >> 11) + 1.0) * 0x1.0p-53;
}

/// Two 32-bit-granularity uniforms from ONE 64-bit draw: `first` in (0, 1]
/// (nonzero, log-safe), `second` in [0, 1).  Rejection samplers of the
/// Stadlober/Zechner school consumed one "random number" per iteration this
/// way; the 2^-32 quantization is orders of magnitude below the resolution
/// of any statistical test this library can run (and of the samplers'
/// analytic error terms).  This is what lets the hypergeometric sampler
/// meet the paper's "< 1.5 random numbers per sample" budget (experiment
/// E3).
struct uniform_pair {
  double first;
  double second;
};
template <random_engine64 Engine>
[[nodiscard]] uniform_pair canonical_pair(Engine& engine) {
  const std::uint64_t word = engine();
  return {(static_cast<double>(word >> 32) + 1.0) * 0x1.0p-32,
          static_cast<double>(word & 0xFFFF'FFFFull) * 0x1.0p-32};
}

}  // namespace cgp::rng
