#include "rng/philox.hpp"

#include "rng/splitmix64.hpp"

namespace cgp::rng {

namespace {

// Round constants from Salmon et al., "Parallel random numbers: as easy as
// 1, 2, 3" -- the shared definitions in rng/philox.hpp (philox_constants),
// also consumed by the SIMD batch kernels.
constexpr std::uint64_t kMul0 = philox_constants::mul0;
constexpr std::uint64_t kMul1 = philox_constants::mul1;
constexpr std::uint64_t kWeyl0 = philox_constants::weyl0;
constexpr std::uint64_t kWeyl1 = philox_constants::weyl1;

struct hilo {
  std::uint64_t hi;
  std::uint64_t lo;
};

inline hilo mulhilo(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  return {static_cast<std::uint64_t>(prod >> 64), static_cast<std::uint64_t>(prod)};
}

inline void round_once(philox4x64::block_type& x, std::array<std::uint64_t, 2>& k) noexcept {
  const hilo p0 = mulhilo(kMul0, x[0]);
  const hilo p1 = mulhilo(kMul1, x[2]);
  x = {p1.hi ^ x[1] ^ k[0], p1.lo, p0.hi ^ x[3] ^ k[1], p0.lo};
  k[0] += kWeyl0;
  k[1] += kWeyl1;
}

}  // namespace

philox4x64::philox4x64(std::uint64_t seed, std::uint64_t stream) noexcept
    : key_(derive_key(seed, stream)) {}

std::array<std::uint64_t, 2> philox4x64::derive_key(std::uint64_t seed,
                                                    std::uint64_t stream) noexcept {
  // Hash (seed, stream) into the 128-bit key so that adjacent stream ids do
  // not yield adjacent keys; Philox's security margin does not require this,
  // but it keeps user-visible streams free of low-entropy key structure.
  std::uint64_t s = seed;
  const std::uint64_t k0 = splitmix64_next(s) ^ mix64(stream);
  const std::uint64_t k1 = splitmix64_next(s) + mix64(~stream);
  return {k0, k1};
}

void philox4x64::discard_blocks(std::uint64_t n_blocks) noexcept {
  std::uint64_t carry = n_blocks;
  for (auto& word : counter_) {
    const std::uint64_t before = word;
    word += carry;
    carry = (word < before) ? 1u : 0u;
    if (carry == 0) break;
  }
  subindex_ = 4;  // invalidate buffered block
}

philox4x64::block_type philox4x64::bijection(block_type counter,
                                             std::array<std::uint64_t, 2> key) noexcept {
  for (int r = 0; r < 10; ++r) round_once(counter, key);
  return counter;
}

}  // namespace cgp::rng
