#include "rng/philox.hpp"

#include "rng/splitmix64.hpp"

namespace cgp::rng {

namespace {

// Round constants from Salmon et al., "Parallel random numbers: as easy as
// 1, 2, 3" (Random123 reference implementation).
constexpr std::uint64_t kMul0 = 0xD2E7470EE14C6C93ull;
constexpr std::uint64_t kMul1 = 0xCA5A826395121157ull;
constexpr std::uint64_t kWeyl0 = 0x9E3779B97F4A7C15ull;  // golden ratio
constexpr std::uint64_t kWeyl1 = 0xBB67AE8584CAA73Bull;  // sqrt(3) - 1

struct hilo {
  std::uint64_t hi;
  std::uint64_t lo;
};

inline hilo mulhilo(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  return {static_cast<std::uint64_t>(prod >> 64), static_cast<std::uint64_t>(prod)};
}

inline void round_once(philox4x64::block_type& x, std::array<std::uint64_t, 2>& k) noexcept {
  const hilo p0 = mulhilo(kMul0, x[0]);
  const hilo p1 = mulhilo(kMul1, x[2]);
  x = {p1.hi ^ x[1] ^ k[0], p1.lo, p0.hi ^ x[3] ^ k[1], p0.lo};
  k[0] += kWeyl0;
  k[1] += kWeyl1;
}

}  // namespace

philox4x64::philox4x64(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Hash (seed, stream) into the 128-bit key so that adjacent stream ids do
  // not yield adjacent keys; Philox's security margin does not require this,
  // but it keeps user-visible streams free of low-entropy key structure.
  std::uint64_t s = seed;
  key_[0] = splitmix64_next(s) ^ mix64(stream);
  key_[1] = splitmix64_next(s) + mix64(~stream);
}

void philox4x64::discard_blocks(std::uint64_t n_blocks) noexcept {
  std::uint64_t carry = n_blocks;
  for (auto& word : counter_) {
    const std::uint64_t before = word;
    word += carry;
    carry = (word < before) ? 1u : 0u;
    if (carry == 0) break;
  }
  subindex_ = 4;  // invalidate buffered block
}

philox4x64::block_type philox4x64::bijection(block_type counter,
                                             std::array<std::uint64_t, 2> key) noexcept {
  for (int r = 0; r < 10; ++r) round_once(counter, key);
  return counter;
}

}  // namespace cgp::rng
