// rng/philox.hpp
//
// Philox-4x64-10, the counter-based generator of Salmon et al. (SC'11),
// implemented from the published round structure.  Counter-based generation
// is what makes the *parallel* algorithms of the paper reproducible: every
// virtual processor of the coarse-grained machine gets its own key-derived
// stream, and the sequence a processor draws is independent of scheduling,
// so a run with p processors is bit-reproducible across thread interleavings
// (a property the tests rely on heavily).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace cgp::rng {

/// Counter-based engine: 256-bit counter, 128-bit key, 10 rounds.
/// Satisfies `random_engine64`; `operator()` returns one 64-bit word and
/// internally steps through the 4 words of each block before incrementing
/// the counter.
class philox4x64 {
 public:
  using result_type = std::uint64_t;
  using block_type = std::array<std::uint64_t, 4>;

  /// Construct from a (seed, stream) pair.  Distinct streams with the same
  /// seed produce statistically independent sequences (key-space
  /// separation), which is how `cgm::machine` hands each virtual processor
  /// its own generator.
  explicit philox4x64(std::uint64_t seed = 0, std::uint64_t stream = 0) noexcept;

  result_type operator()() noexcept {
    if (subindex_ == 4) {
      buffer_ = bijection(counter_, key_);
      increment_counter();
      subindex_ = 0;
    }
    return buffer_[subindex_++];
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Skip ahead `n_blocks * 4` output words in O(1) (counter arithmetic).
  void discard_blocks(std::uint64_t n_blocks) noexcept;

  /// The raw keyed bijection (10 Philox rounds), exposed for test vectors.
  [[nodiscard]] static block_type bijection(block_type counter,
                                            std::array<std::uint64_t, 2> key) noexcept;

  friend bool operator==(const philox4x64&, const philox4x64&) noexcept = default;

 private:
  void increment_counter() noexcept {
    for (auto& word : counter_) {
      if (++word != 0) break;  // propagate carry
    }
  }

  block_type counter_{};
  std::array<std::uint64_t, 2> key_{};
  block_type buffer_{};
  unsigned subindex_ = 4;  // forces generation on first call
};

}  // namespace cgp::rng
