// rng/philox.hpp
//
// Philox-4x64-10, the counter-based generator of Salmon et al. (SC'11),
// implemented from the published round structure.  Counter-based generation
// is what makes the *parallel* algorithms of the paper reproducible: every
// virtual processor of the coarse-grained machine gets its own key-derived
// stream, and the sequence a processor draws is independent of scheduling,
// so a run with p processors is bit-reproducible across thread interleavings
// (a property the tests rely on heavily).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace cgp::rng {

/// The published Philox-4x64 round constants (Salmon et al., Random123
/// reference implementation).  One definition shared by the scalar engine
/// below and the SIMD batch kernels (rng/philox_batch.cpp), so the two can
/// never drift apart; the keystream-equality tests pin the agreement.
struct philox_constants {
  static constexpr std::uint64_t mul0 = 0xD2E7470EE14C6C93ull;
  static constexpr std::uint64_t mul1 = 0xCA5A826395121157ull;
  static constexpr std::uint64_t weyl0 = 0x9E3779B97F4A7C15ull;  // golden ratio
  static constexpr std::uint64_t weyl1 = 0xBB67AE8584CAA73Bull;  // sqrt(3) - 1
};

/// Counter-based engine: 256-bit counter, 128-bit key, 10 rounds.
/// Satisfies `random_engine64`; `operator()` returns one 64-bit word and
/// internally steps through the 4 words of each block before incrementing
/// the counter.
class philox4x64 {
 public:
  using result_type = std::uint64_t;
  using block_type = std::array<std::uint64_t, 4>;

  /// Construct from a (seed, stream) pair.  Distinct streams with the same
  /// seed produce statistically independent sequences (key-space
  /// separation), which is how `cgm::machine` hands each virtual processor
  /// its own generator.
  explicit philox4x64(std::uint64_t seed = 0, std::uint64_t stream = 0) noexcept;

  result_type operator()() noexcept {
    if (subindex_ == 4) {
      buffer_ = bijection(counter_, key_);
      increment_counter();
      subindex_ = 0;
    }
    return buffer_[subindex_++];
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Skip ahead `n_blocks * 4` output words in O(1) (counter arithmetic).
  void discard_blocks(std::uint64_t n_blocks) noexcept;

  /// The raw keyed bijection (10 Philox rounds), exposed for test vectors.
  [[nodiscard]] static block_type bijection(block_type counter,
                                            std::array<std::uint64_t, 2> key) noexcept;

  /// The 128-bit key the (seed, stream) constructor installs -- exposed so
  /// the batched keystream generators (rng/philox_batch.hpp) key themselves
  /// exactly like the scalar engine and stay bit-identical to it.
  [[nodiscard]] static std::array<std::uint64_t, 2> derive_key(std::uint64_t seed,
                                                               std::uint64_t stream) noexcept;

  friend bool operator==(const philox4x64&, const philox4x64&) noexcept = default;

 private:
  void increment_counter() noexcept {
    for (auto& word : counter_) {
      if (++word != 0) break;  // propagate carry
    }
  }

  block_type counter_{};
  std::array<std::uint64_t, 2> key_{};
  block_type buffer_{};
  unsigned subindex_ = 4;  // forces generation on first call
};

}  // namespace cgp::rng
