// rng/engine.hpp
//
// The engine concept every sampler in this library is generic over: a
// uniform random bit generator producing full 64-bit words.  All our
// distributions consume whole 64-bit draws, which makes "number of random
// numbers used" (the resource the paper's Theorem 1 budgets, and the metric
// of experiment E3) a well-defined count: one draw = one 64-bit word.
#pragma once

#include <concepts>
#include <cstdint>
#include <random>

namespace cgp::rng {

template <typename E>
concept random_engine64 =
    std::uniform_random_bit_generator<E> && std::same_as<typename E::result_type, std::uint64_t>;

}  // namespace cgp::rng
