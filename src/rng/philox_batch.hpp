// rng/philox_batch.hpp
//
// Batched Philox-4x64 keystream generation with runtime SIMD dispatch --
// the raw-speed pass of ROADMAP item 3.  The scalar engine (rng/philox.hpp)
// produces one 4-word block per bijection call; the hot label loops of the
// split kernels draw one word per ITEM, so keystream arithmetic is a large
// share of their per-item cost.  `philox4x64_batch` generates many counter
// blocks per round trip -- 8 per AVX-512 vector pass (one block per 64-bit
// lane), 4 per AVX2 pass, interleaved pairs on NEON/aarch64, and a
// four-block-interleaved scalar loop everywhere else -- selected by runtime
// CPU detection so one binary serves all hosts.
//
// THE DETERMINISM CONTRACT, which everything above relies on: for any
// (counter, key, nblocks), every path writes the exact word sequence
//
//   out[4*i + j] == philox4x64::bijection(counter + i, key)[j]
//
// i.e. lane order NEVER leaks into output.  Philox keying is counter-based,
// so "which lane computed block i" is not an input to any word; the vector
// kernels just evaluate the same bijection at 4-8 consecutive counters at
// once and store the blocks back in counter order.  Consequently the
// batched engine below replays the scalar engine's stream bit for bit, and
// every backend that switched its label draws onto it (smp split chunks,
// the em index-keyed counting/scatter passes, the cgm recursion replay)
// kept its output unchanged -- pinned by tests/test_simd.cpp across
// {scalar, vector} x batch sizes x backends.
//
// Runtime control: the `CGP_SIMD` environment variable ("off" / "0" /
// "scalar" forces the portable path; "avx512" / "avx2" / "neon" request a
// specific vector path, honoured only when the CPU supports it) mirrors
// `CGP_OBS_OFF`; `set_simd_override` is the programmatic equivalent the
// differential tests flip mid-process.  The active path is surfaced in
// `plan::explain()` and as the obs gauge `rng.simd_path`.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "rng/philox.hpp"

namespace cgp::rng {

/// Which keystream kernel `philox4x64_batch` runs.
enum class simd_path : std::uint8_t {
  scalar = 0,  ///< portable 4-block-interleaved loop (the reference everywhere)
  avx2 = 1,    ///< x86: 4 blocks per 256-bit vector pass, 2 passes in flight
  neon = 2,    ///< aarch64: 2 blocks per 128-bit vector pass, 2 pairs in flight
  avx512 = 3,  ///< x86: 8 blocks per 512-bit vector pass, 2 passes in flight
};

[[nodiscard]] constexpr const char* simd_path_name(simd_path p) noexcept {
  switch (p) {
    case simd_path::scalar: return "scalar";
    case simd_path::avx2: return "avx2";
    case simd_path::neon: return "neon";
    case simd_path::avx512: return "avx512";
  }
  return "?";
}

/// What the hardware supports best (pure detection, no overrides).
[[nodiscard]] simd_path detected_simd_path() noexcept;

/// Whether this host can execute `p` at all.  A superset of "p ==
/// detected": an AVX-512 host also runs the avx2 kernel, and every host
/// runs scalar.  Requests outside this set degrade to scalar.
[[nodiscard]] bool simd_path_supported(simd_path p) noexcept;

/// The path `philox4x64_batch` dispatches to: detection, narrowed by the
/// `CGP_SIMD` environment variable (read once) and by `set_simd_override`
/// (read every call -- a relaxed atomic load, cheap against a batch of
/// blocks).  Also mirrored into the obs gauge `rng.simd_path` (value =
/// the enum) whenever it resolves or changes.
[[nodiscard]] simd_path active_simd_path() noexcept;

/// Force the dispatch path for this process (tests compare scalar vs
/// vector output in one binary).  Requests the hardware cannot honour fall
/// back to scalar.  `clear_simd_override()` restores env/detection.
void set_simd_override(simd_path p) noexcept;
void clear_simd_override() noexcept;

/// Fill out[0 .. 4*nblocks) with the keystream blocks at counters
/// `counter, counter + 1, ..., counter + nblocks - 1` (256-bit counter
/// arithmetic): out[4*i + j] = bijection(counter + i, key)[j].  Runs on
/// `active_simd_path()`.
void philox4x64_batch(const philox4x64::block_type& counter,
                      const std::array<std::uint64_t, 2>& key, std::uint64_t nblocks,
                      std::uint64_t* out) noexcept;

/// Same, on an explicitly chosen path (the differential tests and the
/// bench drive each kernel directly).  Paths the hardware cannot run fall
/// back to scalar.
void philox4x64_batch_on(simd_path path, const philox4x64::block_type& counter,
                         const std::array<std::uint64_t, 2>& key, std::uint64_t nblocks,
                         std::uint64_t* out) noexcept;

/// Drop-in `random_engine64` over the IDENTICAL word sequence of
/// `philox4x64(seed, stream)`, refilled `kBatchBlocks` counter blocks at a
/// time through `philox4x64_batch`.  This is how the hot loops batch their
/// label draws without perturbing one bit of output: same keying, same
/// words, same order -- only the generation width changes.  Also replaces
/// `stream_engine_at` in the index-keyed em label path: the third
/// constructor argument positions the stream at an arbitrary word index in
/// O(1) counter arithmetic.
class batched_philox {
 public:
  using result_type = std::uint64_t;

  /// Blocks generated per refill: 128 words (1 KiB of buffer, still L1).
  /// 32 is two full iterations of the widest kernel (two 8-wide AVX-512
  /// groups in flight each) and four of the AVX2 kernel, which breaks the
  /// 10-round latency chain AND amortises the per-call dispatch + key
  /// broadcast over enough words to stay under the bench e2 gate; larger
  /// batches measure no faster and waste buffer locality on short streams.
  static constexpr std::uint64_t kBatchBlocks = 32;

  explicit batched_philox(std::uint64_t seed = 0, std::uint64_t stream = 0,
                          std::uint64_t word_index = 0) noexcept
      : key_(philox4x64::derive_key(seed, stream)) {
    seek(word_index);
  }

  result_type operator()() noexcept {
    if (at_ == filled_) refill();
    return buf_[at_++];
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Reposition so the next draw returns word `word_index` of the stream
  /// (counting from construction-time zero), like rng::stream_engine_at.
  void seek(std::uint64_t word_index) noexcept {
    counter_ = {word_index / 4, 0, 0, 0};
    at_ = filled_ = 0;
    const auto sub = static_cast<unsigned>(word_index % 4);
    if (sub != 0) {
      refill();
      at_ = sub;
    }
  }

 private:
  void refill() noexcept {
    philox4x64_batch(counter_, key_, kBatchBlocks, buf_.data());
    std::uint64_t carry = kBatchBlocks;
    for (auto& word : counter_) {
      const std::uint64_t before = word;
      word += carry;
      carry = (word < before) ? 1u : 0u;
      if (carry == 0) break;
    }
    at_ = 0;
    filled_ = 4 * kBatchBlocks;
  }

  alignas(64) std::array<std::uint64_t, 4 * kBatchBlocks> buf_{};
  philox4x64::block_type counter_{};
  std::array<std::uint64_t, 2> key_{};
  unsigned at_ = 0;
  unsigned filled_ = 0;
};

}  // namespace cgp::rng
