// smp/parallel_split.hpp
//
// One level of the recursive hypergeometric split, executed with real
// threads: the paper's Algorithm 1 restated for shared memory.  The input
// span is viewed as K contiguous source chunks and redistributed into K
// contiguous target buckets in three phases:
//
//   1. *matrix*  -- sample the K x K communication matrix A from the exact
//      permutation-induced law (core/sample_matrix.hpp, Algorithm 3) with
//      both margins balanced; O(K^2) work, sequential (K is tiny);
//   2. *scatter* -- in parallel over source chunks: materialize row c of A
//      as a byte array of bucket labels (a_{c,j} copies of label j),
//      Fisher-Yates that *label* array -- its random accesses live in a
//      1-byte-per-item, cache-resident buffer instead of the item data --
//      then stream the chunk's items to precomputed column-prefix offsets
//      (the shared-memory analogue of the all-to-all h-relation: one
//      streaming write pass, no message buffers);
//   3. *copy back* -- in parallel over target buckets.
//
// Uniformity is Algorithm 1's own argument (Propositions 1, 2): a uniformly
// shuffled label multiset makes "which items realize row c of A" a uniform
// choice (this is seq/blocked_shuffle.hpp's without-replacement assignment,
// just batched), the matrix law makes every A correctly likely, and the
// caller recursively permutes each bucket, so every global permutation is
// equally likely.
//
// Determinism: every random stream is keyed by (seed, recursion node, role,
// chunk index) -- never by the executing thread -- so the result is
// bit-identical for any thread-pool size (see smp/thread_pool.hpp's
// determinism contract).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/sample_matrix.hpp"
#include "rng/philox.hpp"
#include "rng/philox_batch.hpp"
#include "rng/splitmix64.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/thread_pool.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::smp {

/// Tuning for one split level.
struct split_options {
  std::uint32_t fan_out = 16;           ///< K: source chunks / target buckets (2..256)
  core::matrix_options sampling{};      ///< matrix sampler knobs
};

namespace detail {

// Distinct stream roles inside one recursion node.
inline constexpr std::uint64_t kMatrixSalt = 0x6D61'7472'6978ull;  // 'matrix'
inline constexpr std::uint64_t kChunkSalt = 0x6368'756E'6Bull;     // 'chunk'
inline constexpr std::uint64_t kLeafSalt = 0x6C65'6166ull;         // 'leaf'

/// Philox stream id for (recursion node, role, index): a double mix64 keeps
/// distinct (node, role, index) triples on distinct streams for all
/// practical tree shapes (the same hashing idea as rng::phase_stream).
[[nodiscard]] constexpr std::uint64_t node_stream(std::uint64_t node, std::uint64_t salt,
                                                  std::uint64_t index) noexcept {
  return rng::mix64(rng::mix64(node ^ salt) + index);
}

/// The engine for (seed, node, role, index).
[[nodiscard]] inline rng::philox4x64 node_engine(std::uint64_t seed, std::uint64_t node,
                                                 std::uint64_t salt,
                                                 std::uint64_t index = 0) noexcept {
  return rng::philox4x64(seed, node_stream(node, salt, index));
}

}  // namespace detail

/// Everything deterministic about one split level of `n` items at
/// recursion `node`: the clamped fan-out k, the balanced chunk/bucket
/// margins, the sampled communication matrix, the bucket offsets, and the
/// column-prefix scatter offsets.  Replicable by ANY party that knows
/// (n, seed, node, options) -- which is what lets the distributed CGM
/// engine (cgm/distributed.hpp) reproduce the shared-memory engine's data
/// movement bit for bit across ranks without exchanging a single plan
/// byte.
struct split_plan {
  std::uint32_t k = 0;
  std::vector<std::uint64_t> margins;     ///< chunk c size == bucket c capacity
  core::comm_matrix a;                    ///< the k x k communication matrix
  std::vector<std::uint64_t> bucket_off;  ///< k+1 bucket start offsets
  std::vector<std::uint64_t> dest;        ///< dest[c*k+j]: chunk c's cursor start for bucket j
};

/// Sample the split plan for `n` items at `node` (phase 1 of the split).
[[nodiscard]] inline split_plan make_split_plan(std::uint64_t n, std::uint64_t seed,
                                                std::uint64_t node,
                                                const split_options& opt = {}) {
  CGP_EXPECTS(opt.fan_out >= 2 && opt.fan_out <= 256);  // labels are bytes
  split_plan plan;
  plan.k = static_cast<std::uint32_t>(std::min<std::uint64_t>(opt.fan_out, n));
  CGP_EXPECTS(plan.k >= 2);
  const std::uint32_t k = plan.k;

  // Balanced margins on both sides: chunk c holds m_c = n/K +- 1 items and
  // bucket j is filled with exactly m'_j = n/K +- 1 items (the PRO block
  // distribution, util/prefix.hpp).
  plan.margins = balanced_blocks(n, k);

  // The communication matrix, from one dedicated stream.
  auto matrix_engine = detail::node_engine(seed, node, detail::kMatrixSalt);
  plan.a = core::sample_matrix_rowwise(matrix_engine, plan.margins, plan.margins, opt.sampling);

  // Column-prefix scatter offsets: chunk c's segment for bucket j lands at
  //   dest(c, j) = bucket_offset(j) + sum_{c' < c} a(c', j).
  plan.bucket_off.assign(k + 1, 0);
  inclusive_prefix_sum(plan.margins, std::span<std::uint64_t>(plan.bucket_off).subspan(1));
  plan.dest.resize(static_cast<std::size_t>(k) * k);
  for (std::uint32_t j = 0; j < k; ++j) {
    std::uint64_t at = plan.bucket_off[j];
    for (std::uint32_t c = 0; c < k; ++c) {
      plan.dest[static_cast<std::size_t>(c) * k + j] = at;
      at += plan.a(c, j);
    }
    CGP_ASSERT(at == plan.bucket_off[j + 1]);
  }
  return plan;
}

/// Fill `label` with the shuffled bucket-label sequence of chunk `c`
/// under `plan` -- exactly the labels phase 2 of `parallel_split`
/// consumes: a_{c,j} copies of label j, Fisher-Yates'd on the chunk's
/// dedicated stream.  Item i of chunk c goes to bucket label[i]; its
/// in-bucket slot is the running count of earlier same-label items plus
/// plan.dest[c*k + label[i]].  Out-parameter form so hot loops can reuse
/// one buffer across chunks.
inline void split_chunk_labels_into(const split_plan& plan, std::uint64_t seed,
                                    std::uint64_t node, std::uint32_t c,
                                    std::vector<std::uint8_t>& label) {
  CGP_EXPECTS(c < plan.k);
  label.resize(static_cast<std::size_t>(plan.margins[c]));
  std::size_t at = 0;
  for (std::uint32_t j = 0; j < plan.k; ++j) {
    const auto count = static_cast<std::size_t>(plan.a(c, j));
    std::fill_n(label.begin() + static_cast<std::ptrdiff_t>(at), count,
                static_cast<std::uint8_t>(j));
    at += count;
  }
  CGP_ASSERT(at == label.size());
  // Batched keystream on the chunk's dedicated stream: rng::batched_philox
  // replays philox4x64(seed, stream) word for word (same derive_key keying,
  // same word order), only generating kBatchBlocks counter blocks per
  // refill through the SIMD kernels -- so this Fisher-Yates consumes the
  // identical draw sequence as the scalar engine did and the shuffled label
  // array (hence every backend's output) is bit-unchanged.
  rng::batched_philox engine(seed, detail::node_stream(node, detail::kChunkSalt, c));
  seq::fisher_yates(engine, std::span<std::uint8_t>(label));
}

/// Returning convenience over split_chunk_labels_into (replay paths that
/// need one chunk at a time, e.g. the distributed engine).
[[nodiscard]] inline std::vector<std::uint8_t> split_chunk_labels(const split_plan& plan,
                                                                  std::uint64_t seed,
                                                                  std::uint64_t node,
                                                                  std::uint32_t c) {
  std::vector<std::uint8_t> label;
  split_chunk_labels_into(plan, seed, node, c, label);
  return label;
}

/// Split `data` into fan_out contiguous buckets, uniformly: after the call,
/// bucket j occupies data[off[j] .. off[j+1]) where `off` is the returned
/// offset vector (size K+1), the multiset of items is preserved, and --
/// provided the caller afterwards permutes each bucket uniformly and
/// independently -- the composition is an exactly uniform permutation of
/// `data`.  `scratch` must have the same extent as `data`; it is used as the
/// scatter target and holds no defined content afterwards.  `pool`, if
/// non-null, parallelizes phases 2 and 3; passing nullptr runs sequentially
/// with bit-identical results.
template <typename T>
[[nodiscard]] std::vector<std::uint64_t> parallel_split(thread_pool* pool, std::span<T> data,
                                                        std::span<T> scratch, std::uint64_t seed,
                                                        std::uint64_t node,
                                                        const split_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(scratch.size() >= data.size());
  const std::uint64_t n = data.size();

  // Phase 1: the deterministic split plan (margins, matrix, offsets).
  const split_plan plan = make_split_plan(n, seed, node, opt);
  const std::uint32_t k = plan.k;

  // Phase 2: per-chunk label shuffle + streaming scatter (parallel over
  // chunks; cursors start at the precomputed offsets, so chunks write
  // disjoint scratch ranges and need no synchronization).
  const auto split_chunks = [&](std::size_t chunk_lo, std::size_t chunk_hi) {
    std::vector<std::uint8_t> label;  // reused across this worker's chunks
    std::vector<std::uint64_t> cursor(k);
    for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
      const std::uint64_t off = balanced_block_offset(n, k, static_cast<std::uint32_t>(c));
      const std::uint64_t len = plan.margins[c];
      const std::span<const T> chunk = data.subspan(static_cast<std::size_t>(off),
                                                    static_cast<std::size_t>(len));
      for (std::uint32_t j = 0; j < k; ++j) cursor[j] = plan.dest[c * k + j];
      split_chunk_labels_into(plan, seed, node, static_cast<std::uint32_t>(c), label);
      // Scatter with software prefetch: the write targets jump between K
      // bucket cursors, which defeats the hardware streamers once K x
      // (active pages) exceeds what they track.  The labels are already
      // materialized, so the destination of iteration i+dist is known now
      // -- prefetch its cache line (write intent, low temporal locality).
      constexpr std::size_t kPrefetchDist = 8;
      const std::size_t sz = chunk.size();
      for (std::size_t i = 0; i < sz; ++i) {
        if (i + kPrefetchDist < sz) {
          __builtin_prefetch(&scratch[static_cast<std::size_t>(cursor[label[i + kPrefetchDist]])],
                             1, 1);
        }
        scratch[static_cast<std::size_t>(cursor[label[i]]++)] = chunk[i];
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, k, split_chunks);
  } else {
    split_chunks(0, k);
  }

  // Phase 3: copy the bucketed order back so the split is in place.
  const auto copy_back = [&](std::size_t bucket_lo, std::size_t bucket_hi) {
    const auto lo = static_cast<std::size_t>(plan.bucket_off[bucket_lo]);
    const auto hi = static_cast<std::size_t>(plan.bucket_off[bucket_hi]);
    std::copy_n(scratch.begin() + static_cast<std::ptrdiff_t>(lo), hi - lo,
                data.begin() + static_cast<std::ptrdiff_t>(lo));
  };
  if (pool != nullptr) {
    pool->parallel_for(0, k, copy_back);
  } else {
    copy_back(0, k);
  }

  return plan.bucket_off;
}

}  // namespace cgp::smp
