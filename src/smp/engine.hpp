// smp/engine.hpp
//
// The native shared-memory permutation engine: the paper's Section 6
// outlook ("the recursive splitting strategy is a good candidate for real
// parallel machines") executed with real threads instead of virtual
// processors.
//
//   * while a range is larger than the cache cutoff, split it into fan_out
//     buckets with the exact hypergeometric split (smp/parallel_split.hpp);
//   * once a bucket fits in cache, finish it with seq::fisher_yates.
//
// This mirrors seq/rao_sandelius.hpp's recursion shape -- and inherits its
// uniformity argument with the multinomial bucket law replaced by the
// paper's exact communication-matrix law -- but the top split and the
// per-bucket recursions run concurrently on a thread pool.  Only the
// top-level split is parallelized *internally*; below it, each bucket is one
// sequential task, which keeps every worker streaming over a private
// cache-sized region (samplesort structure: split in parallel, recurse
// per bucket, finish in cache).
//
// Bit-reproducibility: the recursion tree, the bucket sizes, and every
// Philox stream depend only on (seed, options), never on the thread count
// or the schedule, so engines with 1 and 64 threads produce the identical
// permutation for the same seed (tests/test_smp.cpp checks this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/parallel_split.hpp"
#include "smp/thread_pool.hpp"
#include "util/assert.hpp"

namespace cgp::smp {

/// Engine configuration.
struct engine_options {
  std::uint32_t threads = 0;  ///< worker threads; 0 = hardware concurrency
  std::uint32_t fan_out = 16; ///< K buckets per split level (2..256)
  std::size_t cache_items = std::size_t{1} << 16;  ///< Fisher-Yates at/below
  core::matrix_options sampling{};  ///< hypergeometric sampler knobs
};

/// Root of the shuffle recursion tree shared by the shared-memory and
/// distributed engines.
inline constexpr std::uint64_t kShuffleRoot = 1;

/// Child j of recursion node `node` under fan-out K; node ids stay well
/// below 2^64 for any input that fits in memory (depth <= log_K(n)
/// levels).  Shared with the distributed CGM engine, which walks the
/// identical tree across ranks.
[[nodiscard]] constexpr std::uint64_t split_child_node(std::uint64_t node, std::uint64_t j,
                                                       std::uint32_t fan_out) noexcept {
  return node * fan_out + 1 + j;
}

/// The recursive subtree below `node`: split while above the cache
/// cutoff, Fisher-Yates once a bucket fits.  Every random stream is keyed
/// by (seed, node descendant, role) -- never by the executing thread --
/// so the output is a pure function of (seed, node, opt) regardless of
/// `pool` and `top`.  `top` fans the first split level and the per-bucket
/// recursions out over `pool` (pass false / nullptr to run sequentially,
/// e.g. inside an already-parallel bucket task or on a transport rank).
/// This is the one recursion both the shared-memory engine and the
/// distributed CGM engine (cgm/distributed.hpp) execute.
template <typename T>
void shuffle_subtree(std::span<T> data, std::span<T> scratch, std::uint64_t seed,
                     std::uint64_t node, const engine_options& opt, thread_pool* pool,
                     bool top) {
  if (data.size() <= opt.cache_items || data.size() < 2) {
    // Span only at the tree top: a per-leaf span would put one ring event
    // (and two clock reads) on every cache-sized bucket of the hot path.
    std::optional<obs::span> leaf_sp;
    if (top) leaf_sp.emplace("leaf", "split");
    auto e = detail::node_engine(seed, node, detail::kLeafSalt);
    seq::fisher_yates(e, data);
    return;
  }
  split_options sopt;
  sopt.fan_out = opt.fan_out;
  sopt.sampling = opt.sampling;
  // Only the top split fans its phases out over the pool; deeper splits
  // run inside a single bucket task.
  std::optional<obs::span> split_sp;
  if (top) split_sp.emplace("split", "split");
  const std::vector<std::uint64_t> off =
      parallel_split(top ? pool : nullptr, data, scratch, seed, node, sopt);
  split_sp.reset();
  const auto buckets = static_cast<std::size_t>(off.size() - 1);

  const auto recurse_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const auto b_lo = static_cast<std::size_t>(off[j]);
      const auto b_len = static_cast<std::size_t>(off[j + 1] - off[j]);
      // Bucket j recurses on its own slice of data *and* scratch: slices
      // are disjoint, so bucket tasks never touch shared state.
      shuffle_subtree(data.subspan(b_lo, b_len), scratch.subspan(b_lo, b_len), seed,
                      split_child_node(node, j, opt.fan_out), opt, nullptr, false);
    }
  };
  if (top && pool != nullptr) {
    pool->parallel_for(0, buckets, recurse_range);
  } else {
    recurse_range(0, buckets);
  }
}

class engine {
 public:
  explicit engine(engine_options opt = {}) : opt_(opt), pool_(opt.threads) {
    CGP_EXPECTS(opt_.fan_out >= 2 && opt_.fan_out <= 256);
    CGP_EXPECTS(opt_.cache_items >= 2);
  }

  [[nodiscard]] const engine_options& options() const noexcept { return opt_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }
  [[nodiscard]] thread_pool& pool() noexcept { return pool_; }

  /// Uniformly permute `data` in place.  Deterministic in (seed, options):
  /// independent of the thread count and of scheduling.
  template <typename T>
  void shuffle(std::span<T> data, std::uint64_t seed) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data.size() < 2) return;
    if (data.size() <= opt_.cache_items) {
      auto e = detail::node_engine(seed, kShuffleRoot, detail::kLeafSalt);
      seq::fisher_yates(e, data);
      return;
    }
    // Default-initialized scratch (not a value-initialized vector): the
    // allocating thread must NOT touch the pages, so under the first-touch
    // policy each page faults in on whichever NUMA node's worker first
    // scatters into it -- and stays local to that worker's bucket range
    // for the rest of the recursion (T is trivially copyable, so skipping
    // the zero-fill is well-defined for the write-before-read scatter).
    std::unique_ptr<T[]> scratch(new T[data.size()]);
    shuffle_subtree(data, std::span<T>(scratch.get(), data.size()), seed, kShuffleRoot, opt_,
                    &pool_, /*top=*/true);
  }

  /// Uniformly permute a vector (convenience; same contract as `shuffle`).
  template <typename T>
  [[nodiscard]] std::vector<T> permute(std::vector<T> data, std::uint64_t seed) {
    shuffle(std::span<T>(data), seed);
    return data;
  }

  /// Sample pi uniform over S_n (pi[i] = image of i).
  [[nodiscard]] std::vector<std::uint64_t> random_permutation(std::uint64_t n,
                                                              std::uint64_t seed) {
    std::vector<std::uint64_t> pi(n);
    for (std::uint64_t i = 0; i < n; ++i) pi[i] = i;
    shuffle(std::span<std::uint64_t>(pi), seed);
    return pi;
  }

 private:

  engine_options opt_;
  thread_pool pool_;
};

}  // namespace cgp::smp
