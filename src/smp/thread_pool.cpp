// smp/thread_pool.cpp
#include "smp/thread_pool.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::smp {

namespace {

// Which pool (if any) owns the current thread; used to detect nested
// parallel_for calls from worker threads.
thread_local const void* t_owning_pool = nullptr;

bool numa_disabled_by_env() {
  const char* env = std::getenv("CGP_NUMA");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "off" || v == "0";
}

/// The CPUs of each NUMA node, from sysfs ("0-3,8-11" range lists in
/// /sys/devices/system/node/node<N>/cpulist).  Empty on non-Linux hosts,
/// detection failure, or CGP_NUMA=off -- all of which mean "treat the
/// machine as one node and pin nothing".
std::vector<std::vector<int>> detect_node_cpus() {
  std::vector<std::vector<int>> nodes;
#if defined(__linux__)
  if (numa_disabled_by_env()) return nodes;
  for (int n = 0;; ++n) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(n) + "/cpulist");
    if (!f.is_open()) break;
    std::string list;
    std::getline(f, list);
    std::vector<int> cpus;
    std::size_t at = 0;
    while (at < list.size()) {
      std::size_t used = 0;
      int lo = std::stoi(list.substr(at), &used);
      at += used;
      int hi = lo;
      if (at < list.size() && list[at] == '-') {
        ++at;
        hi = std::stoi(list.substr(at), &used);
        at += used;
      }
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      if (at < list.size() && list[at] == ',') ++at;
    }
    if (!cpus.empty()) nodes.push_back(std::move(cpus));
  }
  if (nodes.size() < 2) nodes.clear();  // single node: nothing to place
#endif
  return nodes;
}

void pin_to_cpus([[maybe_unused]] const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  // Best effort: a failed setaffinity (restricted cpuset, cgroup limits)
  // leaves the worker unpinned, which is always correct.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#endif
}

}  // namespace

struct thread_pool::state {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;                 // submit() tasks, any worker
  std::vector<std::deque<std::function<void()>>> local;    // parallel_for chunks, worker-affine
  bool stop = false;
  std::vector<std::thread> workers;
  std::vector<std::vector<int>> node_cpus;  // empty = no NUMA placement
  std::vector<unsigned> worker_node;        // worker -> node group (all 0 when unplaced)

  [[nodiscard]] bool any_work() const {
    if (!queue.empty()) return true;
    for (const auto& q : local) {
      if (!q.empty()) return true;
    }
    return false;
  }
};

thread_pool::thread_pool(unsigned threads) : state_(std::make_unique<state>()) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  state_->node_cpus = detect_node_cpus();
  const auto nodes = static_cast<unsigned>(state_->node_cpus.size());
  state_->worker_node.resize(threads, 0);
  if (nodes >= 2) {
    // Contiguous groups: workers [i*threads/nodes, (i+1)*threads/nodes)
    // serve node i, mirroring how balanced_block_offset partitions index
    // ranges -- so a parallel_for's chunk c (run by worker c % threads)
    // maps to a stable node.
    for (unsigned i = 0; i < threads; ++i) {
      state_->worker_node[i] = static_cast<unsigned>(
          static_cast<std::uint64_t>(i) * nodes / threads);
    }
  }
  state_->local.resize(threads);
  state_->workers.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    state_->workers.emplace_back([this, i]() { worker_loop(i); });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->cv.notify_all();
  for (auto& w : state_->workers) w.join();
}

unsigned thread_pool::size() const noexcept {
  return static_cast<unsigned>(state_->workers.size());
}

bool thread_pool::on_worker_thread() const noexcept { return t_owning_pool == this; }

unsigned thread_pool::numa_node_count() const noexcept {
  return state_->node_cpus.empty() ? 1 : static_cast<unsigned>(state_->node_cpus.size());
}

unsigned thread_pool::worker_node(unsigned worker) const noexcept {
  return worker < state_->worker_node.size() ? state_->worker_node[worker] : 0;
}

void thread_pool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    CGP_EXPECTS(!state_->stop);
    state_->queue.push_back(std::move(task));
  }
  state_->cv.notify_one();
}

void thread_pool::post_local(unsigned worker, std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    CGP_EXPECTS(!state_->stop);
    state_->local[worker].push_back(std::move(task));
  }
  state_->cv.notify_all();  // the home worker may not be the one woken by _one
}

void thread_pool::worker_loop(unsigned index) {
  t_owning_pool = this;
  if (!state_->node_cpus.empty()) {
    pin_to_cpus(state_->node_cpus[state_->worker_node[index]]);
  }
  const auto nworkers = static_cast<unsigned>(state_->local.size());
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [this]() { return state_->stop || state_->any_work(); });
      if (!state_->any_work()) return;  // stop requested and drained
      // Preference order: own affine chunks first (placement), then the
      // shared submit() queue, then steal another worker's chunks from the
      // BACK of its queue (the task its home worker would reach last).
      if (!state_->local[index].empty()) {
        task = std::move(state_->local[index].front());
        state_->local[index].pop_front();
      } else if (!state_->queue.empty()) {
        task = std::move(state_->queue.front());
        state_->queue.pop_front();
      } else {
        for (unsigned step = 1; step < nworkers; ++step) {
          auto& victim = state_->local[(index + step) % nworkers];
          if (!victim.empty()) {
            task = std::move(victim.back());
            victim.pop_back();
            break;
          }
        }
      }
    }
    CGP_ASSERT(task != nullptr);
    task();
  }
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    body(begin, end);
    return;
  }
  const auto n = static_cast<std::uint64_t>(end - begin);
  const auto parts = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(n, static_cast<std::uint64_t>(size())));
  std::vector<std::future<void>> futures;
  futures.reserve(parts);
  for (std::uint32_t part = 0; part < parts; ++part) {
    const std::size_t lo = begin + static_cast<std::size_t>(balanced_block_offset(n, parts, part));
    const std::size_t hi = lo + static_cast<std::size_t>(balanced_block_size(n, parts, part));
    // Chunk `part` is posted to worker `part % size()`'s affine queue:
    // identical partitions across passes land on identical workers (and
    // nodes), which is what keeps first-touch pages local.  The partition
    // itself -- and hence the output -- never depends on who runs what.
    auto task = std::make_shared<std::packaged_task<void()>>([&body, lo, hi]() { body(lo, hi); });
    futures.push_back(task->get_future());
    post_local(part % size(), [task]() { (*task)(); });
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cgp::smp
