// smp/thread_pool.cpp
#include "smp/thread_pool.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::smp {

namespace {

// Which pool (if any) owns the current thread; used to detect nested
// parallel_for calls from worker threads.
thread_local const void* t_owning_pool = nullptr;

}  // namespace

struct thread_pool::state {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stop = false;
  std::vector<std::thread> workers;
};

thread_pool::thread_pool(unsigned threads) : state_(std::make_unique<state>()) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  state_->workers.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    state_->workers.emplace_back([this, i]() { worker_loop(i); });
  }
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->cv.notify_all();
  for (auto& w : state_->workers) w.join();
}

unsigned thread_pool::size() const noexcept {
  return static_cast<unsigned>(state_->workers.size());
}

bool thread_pool::on_worker_thread() const noexcept { return t_owning_pool == this; }

void thread_pool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    CGP_EXPECTS(!state_->stop);
    state_->queue.push_back(std::move(task));
  }
  state_->cv.notify_one();
}

void thread_pool::worker_loop(unsigned /*index*/) {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      state_->cv.wait(lock, [this]() { return state_->stop || !state_->queue.empty(); });
      if (state_->queue.empty()) return;  // stop requested and drained
      task = std::move(state_->queue.front());
      state_->queue.pop_front();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end,
                               const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    body(begin, end);
    return;
  }
  const auto n = static_cast<std::uint64_t>(end - begin);
  const auto parts = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(n, static_cast<std::uint64_t>(size())));
  std::vector<std::future<void>> futures;
  futures.reserve(parts);
  for (std::uint32_t part = 0; part < parts; ++part) {
    const std::size_t lo = begin + static_cast<std::size_t>(balanced_block_offset(n, parts, part));
    const std::size_t hi = lo + static_cast<std::size_t>(balanced_block_size(n, parts, part));
    futures.push_back(submit([&body, lo, hi]() { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cgp::smp
