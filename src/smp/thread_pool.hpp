// smp/thread_pool.hpp
//
// A fixed-size worker pool: the execution substrate of the native
// shared-memory permutation engine (smp/engine.hpp).  Contrast with
// cgm::machine: the virtual machine *counts* the paper's model quantities on
// p simulated processors, while this pool simply runs p real threads as fast
// as the hardware allows -- no cost accounting, no message copies, no
// superstep barriers.
//
// Determinism contract: the pool never touches randomness.  Callers that
// need bit-reproducible output (the SMP engine does) must derive every
// random stream from (seed, task index), never from the executing thread, so
// the result is independent of the pool size and of scheduling.
//
// NUMA awareness: on Linux hosts with more than one NUMA node, workers are
// pinned in contiguous groups to the nodes (worker i serves node
// i * nodes / size()), and `parallel_for` posts chunk `part` to the local
// queue of worker `part % size()` -- so across the repeated passes of a
// recursive split, chunk c is always executed by the same worker, on the
// same node, and the pages c's first pass faulted in (first-touch policy)
// stay node-local for every later pass.  Idle workers steal from other
// queues, so placement is a preference, never a stall; stealing can move a
// chunk off its home node but cannot change any output (see the
// determinism contract above).  Single-node hosts and non-Linux builds
// skip pinning entirely; `CGP_NUMA=off` (or `0`) disables it explicitly.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace cgp::smp {

class thread_pool {
 public:
  /// Start `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit thread_pool(unsigned threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] unsigned size() const noexcept;

  /// True iff the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Number of NUMA node groups the workers are pinned across (1 on
  /// single-node hosts, non-Linux builds, or under CGP_NUMA=off).
  [[nodiscard]] unsigned numa_node_count() const noexcept;

  /// The node group worker `worker` is pinned to (0 when unpinned).
  [[nodiscard]] unsigned worker_node(unsigned worker) const noexcept;

  /// Enqueue `fn` for execution on a worker; the future carries its result
  /// (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Run `body(lo, hi)` over a balanced static partition of [begin, end)
  /// into size() contiguous chunks, one per worker, and wait for all of
  /// them.  The partition depends only on size(), not on scheduling.
  /// Called from a worker thread of this pool (nested parallelism), the body
  /// runs inline as body(begin, end) -- a fixed pool cannot wait for itself
  /// without risking deadlock.  The first exception thrown by any chunk is
  /// rethrown to the caller after all chunks finish.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void post(std::function<void()> task);
  void post_local(unsigned worker, std::function<void()> task);
  void worker_loop(unsigned index);

  struct state;
  std::unique_ptr<state> state_;
};

}  // namespace cgp::smp
