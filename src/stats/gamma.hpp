// stats/gamma.hpp
//
// Regularized incomplete gamma functions, implemented from the classical
// series / continued-fraction pair (Abramowitz & Stegun 6.5, Lentz's
// algorithm for the continued fraction).  They exist here solely to turn
// chi-square statistics into p-values without any external dependency.
#pragma once

namespace cgp::stats {

/// Lower regularized incomplete gamma P(a, x) = gamma(a,x) / Gamma(a),
/// for a > 0, x >= 0.  Accuracy ~1e-12 relative over the tested range.
[[nodiscard]] double gamma_p(double a, double x) noexcept;

/// Upper regularized incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x) noexcept;

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom evaluated at `x`: P[Chi2_dof >= x] = Q(dof/2, x/2).
[[nodiscard]] double chi2_sf(double x, double dof) noexcept;

}  // namespace cgp::stats
