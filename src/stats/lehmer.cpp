#include "stats/lehmer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cgp::stats {

std::uint64_t factorial(unsigned n) noexcept {
  CGP_ASSERT(n <= 20);
  std::uint64_t f = 1;
  for (unsigned i = 2; i <= n; ++i) f *= i;
  return f;
}

std::uint64_t permutation_rank(std::span<const std::uint64_t> perm) {
  const std::size_t k = perm.size();
  CGP_EXPECTS(k <= 20);
  // O(k^2) Lehmer code; k <= 20 so this is trivial.
  std::uint64_t rank = 0;
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t smaller_right = 0;
    for (std::size_t j = i + 1; j < k; ++j)
      if (perm[j] < perm[i]) ++smaller_right;
    rank += smaller_right * factorial(static_cast<unsigned>(k - 1 - i));
  }
  return rank;
}

void permutation_unrank(std::uint64_t rank, std::span<std::uint64_t> out) {
  const std::size_t k = out.size();
  CGP_EXPECTS(k <= 20);
  std::vector<std::uint64_t> pool(k);
  for (std::size_t i = 0; i < k; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint64_t f = factorial(static_cast<unsigned>(k - 1 - i));
    const std::uint64_t idx = rank / f;
    rank %= f;
    CGP_ASSERT(idx < pool.size());
    out[i] = pool[idx];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

bool is_permutation_of_iota(std::span<const std::uint64_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const std::uint64_t v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

std::uint64_t count_fixed_points(std::span<const std::uint64_t> perm) noexcept {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] == i) ++c;
  return c;
}

std::uint64_t count_cycles(std::span<const std::uint64_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  std::uint64_t cycles = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (seen[i]) continue;
    ++cycles;
    std::size_t j = i;
    while (!seen[j]) {
      seen[j] = true;
      CGP_ASSERT(perm[j] < perm.size());
      j = static_cast<std::size_t>(perm[j]);
    }
  }
  return cycles;
}

namespace {

std::uint64_t merge_count(std::vector<std::uint64_t>& v, std::vector<std::uint64_t>& tmp,
                          std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::uint64_t inv = merge_count(v, tmp, lo, mid) + merge_count(v, tmp, mid, hi);
  std::size_t a = lo;
  std::size_t b = mid;
  std::size_t o = lo;
  while (a < mid && b < hi) {
    if (v[a] <= v[b]) {
      tmp[o++] = v[a++];
    } else {
      inv += mid - a;
      tmp[o++] = v[b++];
    }
  }
  while (a < mid) tmp[o++] = v[a++];
  while (b < hi) tmp[o++] = v[b++];
  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
            tmp.begin() + static_cast<std::ptrdiff_t>(hi),
            v.begin() + static_cast<std::ptrdiff_t>(lo));
  return inv;
}

}  // namespace

std::uint64_t count_inversions(std::span<const std::uint64_t> perm) {
  std::vector<std::uint64_t> v(perm.begin(), perm.end());
  std::vector<std::uint64_t> tmp(v.size());
  return merge_count(v, tmp, 0, v.size());
}

}  // namespace cgp::stats
