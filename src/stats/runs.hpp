// stats/runs.hpp
//
// Run-based randomness tests for shuffled sequences: the number of maximal
// ascending runs, the Wald-Wolfowitz runs test on above/below-median
// indicators, and lag-1 serial correlation.  These see *sequential
// structure* that binned chi-square tests miss (e.g. the long runs left by
// an under-iterated riffle or by naive block-granularity shuffles), so the
// suite uses them as a second, independent family of uniformity checks.
#pragma once

#include <cstdint>
#include <span>

namespace cgp::stats {

/// Number of maximal strictly-ascending runs in `v` (0 for empty input).
/// For a uniform permutation of n items: mean (n+1)/2, variance ~ n/12.
[[nodiscard]] std::uint64_t ascending_runs(std::span<const std::uint64_t> v) noexcept;

struct runs_test_result {
  std::uint64_t runs = 0;  ///< observed runs of the binary sequence
  double z = 0.0;          ///< normal z-score under H0 (exchangeable)
  double p_value = 1.0;    ///< two-sided
};

/// Wald-Wolfowitz runs test on the indicator "v[i] >= median": counts the
/// maximal blocks of equal indicator values and compares with the null
/// mean 2 n1 n0 / n + 1.  Sensitive to clustering of large/small values,
/// the signature of blockwise or under-mixed shuffles.
[[nodiscard]] runs_test_result runs_test_median(std::span<const std::uint64_t> v);

/// Lag-1 serial correlation coefficient of v (values treated as doubles);
/// ~ N(0, 1/n) for exchangeable sequences.
[[nodiscard]] double serial_correlation(std::span<const std::uint64_t> v) noexcept;

/// Ascending-runs z-score against the uniform-permutation null:
/// (runs - (n+1)/2) / sqrt((n+1)/12) -- a cheap one-number summary used by
/// property tests.  (Exact null variance of ascending runs is
/// (n+1)/12 for large n.)
[[nodiscard]] double ascending_runs_z(std::span<const std::uint64_t> v) noexcept;

}  // namespace cgp::stats
