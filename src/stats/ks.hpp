// stats/ks.hpp
//
// One-sample Kolmogorov-Smirnov test against the continuous uniform law on
// [0,1).  Used to check the position distribution of individual items under
// repeated shuffling (a sharper per-item view than binned chi-square).
#pragma once

#include <span>

namespace cgp::stats {

struct ks_result {
  double statistic = 0.0;  ///< sup-norm distance D_n
  double p_value = 1.0;    ///< asymptotic Kolmogorov p-value
};

/// KS test of `samples` (values in [0,1], any order; the test sorts a copy)
/// against Uniform[0,1].
[[nodiscard]] ks_result ks_uniform01(std::span<const double> samples);

/// Asymptotic Kolmogorov survival function:
/// P[sqrt(n) D_n >= x] ~ 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2).
[[nodiscard]] double kolmogorov_sf(double x) noexcept;

}  // namespace cgp::stats
