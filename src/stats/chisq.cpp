#include "stats/chisq.hpp"

#include <cmath>

#include "stats/gamma.hpp"
#include "util/assert.hpp"

namespace cgp::stats {

gof_result chi_square_gof(std::span<const std::uint64_t> observed, std::span<const double> probs,
                          double min_expected) {
  CGP_EXPECTS(observed.size() == probs.size());
  CGP_EXPECTS(!observed.empty());

  std::uint64_t n = 0;
  double mass = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    n += observed[i];
    CGP_EXPECTS(probs[i] >= 0.0);
    mass += probs[i];
  }
  CGP_EXPECTS(n > 0);
  CGP_EXPECTS(mass > 0.0);
  const double scale = static_cast<double>(n) / mass;

  // Greedy pooling: accumulate consecutive cells until the pooled expected
  // count reaches the threshold; a trailing underweight pool is merged into
  // the previous one.
  gof_result res;
  double chi = 0.0;
  std::size_t cells = 0;
  double pool_obs = 0.0;
  double pool_exp = 0.0;
  double last_obs = 0.0;  // most recently closed pool (for trailing merge)
  double last_exp = 0.0;
  bool have_last = false;

  const auto close_pool = [&] {
    if (have_last) {
      chi += (last_obs - last_exp) * (last_obs - last_exp) / last_exp;
      ++cells;
    }
    last_obs = pool_obs;
    last_exp = pool_exp;
    have_last = true;
    pool_obs = 0.0;
    pool_exp = 0.0;
  };

  for (std::size_t i = 0; i < observed.size(); ++i) {
    pool_obs += static_cast<double>(observed[i]);
    pool_exp += probs[i] * scale;
    if (pool_exp >= min_expected) close_pool();
  }
  // Merge any trailing fragment into the last closed pool.
  if (pool_exp > 0.0) {
    if (have_last) {
      last_obs += pool_obs;
      last_exp += pool_exp;
    } else {
      last_obs = pool_obs;
      last_exp = pool_exp;
      have_last = true;
    }
  }
  if (have_last && last_exp > 0.0) {
    chi += (last_obs - last_exp) * (last_obs - last_exp) / last_exp;
    ++cells;
  }

  res.statistic = chi;
  res.pooled_cells = cells;
  res.dof = cells > 1 ? static_cast<double>(cells - 1) : 1.0;
  res.p_value = cells > 1 ? chi2_sf(chi, res.dof) : 1.0;
  return res;
}

gof_result chi_square_uniform(std::span<const std::uint64_t> observed) {
  std::vector<double> probs(observed.size(), 1.0);
  return chi_square_gof(observed, probs);
}

gof_result chi_square_independence(std::span<const std::uint64_t> counts, std::size_t rows,
                                   std::size_t cols) {
  CGP_EXPECTS(counts.size() == rows * cols);
  CGP_EXPECTS(rows >= 2 && cols >= 2);

  std::vector<double> row_sum(rows, 0.0);
  std::vector<double> col_sum(cols, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      const auto v = static_cast<double>(counts[i * cols + j]);
      row_sum[i] += v;
      col_sum[j] += v;
      total += v;
    }
  CGP_EXPECTS(total > 0.0);

  double chi = 0.0;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      const double expected = row_sum[i] * col_sum[j] / total;
      if (expected <= 0.0) continue;
      const double d = static_cast<double>(counts[i * cols + j]) - expected;
      chi += d * d / expected;
    }

  gof_result res;
  res.statistic = chi;
  res.dof = static_cast<double>((rows - 1) * (cols - 1));
  res.pooled_cells = rows * cols;
  res.p_value = chi2_sf(chi, res.dof);
  return res;
}

}  // namespace cgp::stats
