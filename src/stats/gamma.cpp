#include "stats/gamma.hpp"

#include <cmath>
#include <limits>

namespace cgp::stats {

namespace {

// Series expansion of P(a,x): converges quickly for x < a + 1.
double gamma_p_series(double a, double x) noexcept {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 1000; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a,x) (modified Lentz): converges for x > a + 1.
double gamma_q_cf(double a, double x) noexcept {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) noexcept {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) noexcept {
  if (!(a > 0.0) || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi2_sf(double x, double dof) noexcept { return gamma_q(dof / 2.0, x / 2.0); }

}  // namespace cgp::stats
