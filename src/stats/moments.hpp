// stats/moments.hpp
//
// Welford's online mean/variance accumulator, plus min/max tracking.  The
// benches and property tests use it to compare empirical sampler moments
// against the closed-form hypergeometric mean/variance, and to report the
// "average / worst case random numbers per sample" figures of Section 3.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace cgp::stats {

class running_moments {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// z-score of a hypothesized mean against the empirical one.
  [[nodiscard]] double z_against(double hypothesized_mean) const noexcept {
    const double se = sem();
    return se > 0.0 ? (mean_ - hypothesized_mean) / se : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace cgp::stats
