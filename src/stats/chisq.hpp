// stats/chisq.hpp
//
// Chi-square goodness-of-fit testing against fully specified discrete
// distributions.  This is the instrument behind every uniformity claim the
// test-suite makes: permutations (all n! cells for small n), matrix entries
// against the exact hypergeometric pmf (Proposition 3), whole matrices
// against the generalized distribution of Section 3, and sampler validation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cgp::stats {

/// Result of a goodness-of-fit test.
struct gof_result {
  double statistic = 0.0;  ///< chi-square statistic after pooling
  double dof = 0.0;        ///< degrees of freedom after pooling
  double p_value = 1.0;    ///< P[Chi2_dof >= statistic]
  std::size_t pooled_cells = 0;  ///< number of cells after tail pooling
};

/// Pearson chi-square of observed counts vs. expected probabilities.
///
/// `probs` need not be normalized; they are scaled to sum(observed).
/// Cells with expected count below `min_expected` are pooled greedily (in
/// index order) into their successor so the asymptotic chi-square
/// approximation stays valid; the classical rule of thumb is 5.
[[nodiscard]] gof_result chi_square_gof(std::span<const std::uint64_t> observed,
                                        std::span<const double> probs,
                                        double min_expected = 5.0);

/// Equiprobable-cell convenience: observed counts vs. a uniform law.
[[nodiscard]] gof_result chi_square_uniform(std::span<const std::uint64_t> observed);

/// Two-way contingency-table independence statistic (rows x cols counts);
/// used by the independence checks on shuffled outputs.
[[nodiscard]] gof_result chi_square_independence(std::span<const std::uint64_t> counts,
                                                 std::size_t rows, std::size_t cols);

}  // namespace cgp::stats
