#include "stats/runs.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace cgp::stats {

namespace {

// Two-sided normal p-value from a z-score via the complementary error
// function.
double two_sided_p(double z) noexcept { return std::erfc(std::fabs(z) / std::sqrt(2.0)); }

}  // namespace

std::uint64_t ascending_runs(std::span<const std::uint64_t> v) noexcept {
  if (v.empty()) return 0;
  std::uint64_t runs = 1;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] < v[i - 1]) ++runs;
  return runs;
}

runs_test_result runs_test_median(std::span<const std::uint64_t> v) {
  runs_test_result res;
  if (v.size() < 2) return res;

  // Median via nth_element on a copy.
  std::vector<std::uint64_t> sorted(v.begin(), v.end());
  const std::size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                   sorted.end());
  const std::uint64_t median = sorted[mid];

  std::uint64_t n1 = 0;  // >= median
  std::uint64_t runs = 0;
  bool prev = false;
  bool first = true;
  for (const std::uint64_t x : v) {
    const bool above = x >= median;
    if (above) ++n1;
    if (first || above != prev) ++runs;
    prev = above;
    first = false;
  }
  const auto n = static_cast<double>(v.size());
  const auto a = static_cast<double>(n1);
  const double b = n - a;
  res.runs = runs;
  if (a == 0.0 || b == 0.0) return res;  // degenerate: all on one side

  const double mean = 2.0 * a * b / n + 1.0;
  const double var = (mean - 1.0) * (mean - 2.0) / (n - 1.0);
  if (var <= 0.0) return res;
  res.z = (static_cast<double>(runs) - mean) / std::sqrt(var);
  res.p_value = two_sided_p(res.z);
  return res;
}

double serial_correlation(std::span<const std::uint64_t> v) noexcept {
  if (v.size() < 3) return 0.0;
  const std::size_t n = v.size();
  double mean = 0.0;
  for (const std::uint64_t x : v) mean += static_cast<double>(x);
  mean /= static_cast<double>(n);

  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(v[i]) - mean;
    den += d * d;
    if (i + 1 < n) num += d * (static_cast<double>(v[i + 1]) - mean);
  }
  return den > 0.0 ? num / den : 0.0;
}

double ascending_runs_z(std::span<const std::uint64_t> v) noexcept {
  if (v.size() < 2) return 0.0;
  const auto n = static_cast<double>(v.size());
  const double mean = (n + 1.0) / 2.0;
  const double var = (n + 1.0) / 12.0;
  return (static_cast<double>(ascending_runs(v)) - mean) / std::sqrt(var);
}

}  // namespace cgp::stats
