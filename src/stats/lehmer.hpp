// stats/lehmer.hpp
//
// Ranking and unranking of permutations via the Lehmer code (factorial
// number system).  The uniformity tests enumerate all n! permutations for
// small n, run the full parallel pipeline many times, and chi-square the
// observed rank histogram -- this is the strongest possible empirical check
// of the paper's Theorem 1 uniformity claim.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cgp::stats {

/// n! for n <= 20 (fits in uint64).
[[nodiscard]] std::uint64_t factorial(unsigned n) noexcept;

/// Rank of a permutation of {0..k-1} in lexicographic order, 0-based.
/// `perm` must be a permutation of 0..k-1 with k <= 20.
[[nodiscard]] std::uint64_t permutation_rank(std::span<const std::uint64_t> perm);

/// Inverse of `permutation_rank`: write the `rank`-th lexicographic
/// permutation of {0..k-1} into `out`.
void permutation_unrank(std::uint64_t rank, std::span<std::uint64_t> out);

/// True iff `perm` is a permutation of {0..k-1}.  O(k) time / O(k) space.
[[nodiscard]] bool is_permutation_of_iota(std::span<const std::uint64_t> perm);

/// Number of fixed points (perm[i] == i); the count is Poisson(1)-ish for
/// uniform permutations and is used by the card-shuffling example and the
/// derangement statistics tests.
[[nodiscard]] std::uint64_t count_fixed_points(std::span<const std::uint64_t> perm) noexcept;

/// Number of cycles of the permutation; for a uniform permutation its mean
/// is the harmonic number H_n (tested as a distributional invariant).
[[nodiscard]] std::uint64_t count_cycles(std::span<const std::uint64_t> perm);

/// Number of inversions (pairs i<j with perm[i]>perm[j]), counted in
/// O(k log k) by merge counting; mean k(k-1)/4 for uniform permutations.
[[nodiscard]] std::uint64_t count_inversions(std::span<const std::uint64_t> perm);

}  // namespace cgp::stats
