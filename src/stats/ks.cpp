#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace cgp::stats {

double kolmogorov_sf(double x) noexcept {
  if (x <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-18) break;
  }
  const double sf = 2.0 * sum;
  return std::clamp(sf, 0.0, 1.0);
}

ks_result ks_uniform01(std::span<const double> samples) {
  CGP_EXPECTS(!samples.empty());
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = sorted[i];  // uniform cdf is the identity
    const double upper = (static_cast<double>(i) + 1.0) / n - cdf;
    const double lower = cdf - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }

  ks_result res;
  res.statistic = d;
  // Small-sample correction of Stephens before the asymptotic tail.
  const double sqrt_n = std::sqrt(n);
  res.p_value = kolmogorov_sf((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return res;
}

}  // namespace cgp::stats
