#include "cgm/machine.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "rng/stream.hpp"

namespace cgp::cgm {

namespace {
constexpr std::uint64_t words_of_bytes(std::size_t bytes) noexcept {
  return (bytes + 7) / 8;  // h-relations are counted in 8-byte words
}
}  // namespace

void context::send_bytes(std::uint32_t dest, std::uint32_t tag,
                         std::span<const std::byte> bytes) {
  CGP_EXPECTS(dest < nprocs_);
  CGP_EXPECTS(endpoint_ != nullptr);
  inflight_bytes_ += bytes.size();
  if (inflight_bytes_ > peak_memory_) peak_memory_ = inflight_bytes_;
  const std::uint64_t words = words_of_bytes(bytes.size());
  words_sent_ += words;
  step_words_out_ += words;
  ++messages_sent_;
  {
    static obs::counter& messages = obs::get_counter("cgm.messages");
    static obs::counter& traffic = obs::get_counter("cgm.bytes_sent");
    messages.add();
    traffic.add(bytes.size());
  }
  endpoint_->send(dest, tag, bytes);
}

void context::sync() {
  CGP_EXPECTS(endpoint_ != nullptr);
  std::vector<message> fresh = endpoint_->exchange();

  // Close out this superstep's accounting: what this processor computed
  // and sent before the barrier, and what the barrier delivered to it.
  step_delta rec;
  rec.ops = step_ops_;
  rec.words_out = step_words_out_;
  for (const auto& msg : fresh) {
    rec.words_in += words_of_bytes(msg.payload.size());
    if (msg.source != id_) {
      // Received payloads now live in this processor's memory (self
      // messages were already counted when staged).
      inflight_bytes_ += msg.payload.size();
      if (inflight_bytes_ > peak_memory_) peak_memory_ = inflight_bytes_;
    }
  }
  words_received_ += rec.words_in;
  step_log_.push_back(rec);
  step_ops_ = 0;
  step_words_out_ = 0;
  ++supersteps_;
  {
    static obs::counter& steps = obs::get_counter("cgm.supersteps");
    steps.add();
  }
  inbox_ = std::move(fresh);
}

std::uint64_t context::shared_seed() const noexcept {
  CGP_ASSERT(machine_ != nullptr);
  return machine_->seed();
}

std::optional<message> context::take(std::uint32_t source, std::uint32_t tag) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (it->source == source && it->tag == tag) {
      message out = std::move(*it);
      inbox_.erase(it);
      inflight_bytes_ -= std::min<std::uint64_t>(inflight_bytes_, out.payload.size());
      return out;
    }
  }
  return std::nullopt;
}

std::vector<message> context::take_all(std::uint32_t tag) {
  std::vector<message> out;
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->tag == tag) {
      inflight_bytes_ -= std::min<std::uint64_t>(inflight_bytes_, it->payload.size());
      out.push_back(std::move(*it));
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

machine::machine(std::uint32_t nprocs, std::uint64_t seed) : nprocs_(nprocs), seed_(seed) {
  CGP_EXPECTS(nprocs >= 1);
  if (nprocs == 1) {
    owned_transport_ = std::make_unique<comm::loopback_transport>();
  } else {
    owned_transport_ = std::make_unique<comm::threaded_transport>(nprocs);
  }
  transport_ = owned_transport_.get();
  contexts_.reserve(nprocs);
  for (std::uint32_t i = 0; i < nprocs; ++i)
    contexts_.emplace_back(std::unique_ptr<context>(new context()));
}

machine::machine(comm::transport& transport, std::uint64_t seed)
    : nprocs_(transport.size()), seed_(seed), transport_(&transport) {
  CGP_EXPECTS(nprocs_ >= 1);
  contexts_.reserve(nprocs_);
  for (std::uint32_t i = 0; i < nprocs_; ++i)
    contexts_.emplace_back(std::unique_ptr<context>(new context()));
}

machine::~machine() = default;

run_stats machine::run(const std::function<void(context&)>& program) {
  // Fresh per-run state: contexts, streams, accounting.  The run ordinal
  // keys each processor's stream (rng::processor_run_stream) so repeated
  // runs on one machine draw independently.
  const std::uint64_t ordinal = runs_;
  for (std::uint32_t i = 0; i < nprocs_; ++i) {
    auto& ctx = *contexts_[i];
    ctx.id_ = i;
    ctx.nprocs_ = nprocs_;
    ctx.machine_ = this;
    ctx.endpoint_ = nullptr;
    ctx.engine_ = context::engine_type(rng::processor_run_stream(seed_, i, ordinal));
    ctx.compute_ops_ = ctx.hyp_calls_ = ctx.words_sent_ = ctx.words_received_ = 0;
    ctx.messages_sent_ = ctx.peak_memory_ = ctx.inflight_bytes_ = ctx.supersteps_ = 0;
    ctx.step_ops_ = ctx.step_words_out_ = 0;
    ctx.extra_rng_draws_ = 0;
    ctx.step_log_.clear();
    ctx.inbox_.clear();
  }

  const comm::wire_counters wire_before = transport_->wire();
  transport_->run([this, &program](comm::endpoint& ep) {
    context& ctx = *contexts_[ep.rank()];
    ctx.endpoint_ = &ep;
    program(ctx);
    ctx.endpoint_ = nullptr;
  });
  ++runs_;

  // Zip the per-processor superstep logs into the global records: the BSP
  // discipline guarantees every processor logged the same number of
  // barriers, so step s of every log describes the same superstep.
  std::size_t steps = 0;
  for (const auto& ctx : contexts_) steps = std::max(steps, ctx->step_log_.size());
  std::vector<superstep_record> records(steps);
  for (const auto& ctx : contexts_) {
    CGP_ASSERT(ctx->step_log_.size() == steps && "BSP discipline: unbalanced sync() counts");
    for (std::size_t s = 0; s < steps; ++s) {
      const auto& d = ctx->step_log_[s];
      auto& rec = records[s];
      rec.max_compute = std::max(rec.max_compute, d.ops);
      rec.max_words_out = std::max(rec.max_words_out, d.words_out);
      rec.max_words_in = std::max(rec.max_words_in, d.words_in);
      rec.total_words += d.words_in;
    }
  }

  // Tail segment after the last sync() (compute-only by construction:
  // sends without a following sync are a program bug and stay undelivered).
  superstep_record tail;
  bool tail_used = false;
  for (const auto& ctx : contexts_) {
    if (ctx->step_ops_ > 0) {
      tail.max_compute = std::max(tail.max_compute, ctx->step_ops_);
      tail_used = true;
    }
  }
  if (tail_used) records.push_back(tail);

  run_stats stats;
  stats.per_proc.resize(nprocs_);
  for (std::uint32_t i = 0; i < nprocs_; ++i) {
    auto& ctx = *contexts_[i];
    auto& ps = stats.per_proc[i];
    ps.compute_ops = ctx.compute_ops_;
    ps.words_sent = ctx.words_sent_;
    ps.words_received = ctx.words_received_;
    ps.messages_sent = ctx.messages_sent_;
    ps.rng_draws = ctx.engine_.count() + ctx.extra_rng_draws_;
    ps.hyp_calls = ctx.hyp_calls_;
    ps.peak_memory_bytes = ctx.peak_memory_;
    ps.supersteps = ctx.supersteps_;
  }
  stats.supersteps = std::move(records);
  // Wire-level totals attributable to this run (transports without a
  // physical wire diff to zeros).
  stats.wire = transport_->wire();
  stats.wire -= wire_before;
  return stats;
}

}  // namespace cgp::cgm
