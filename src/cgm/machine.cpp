#include "cgm/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "rng/stream.hpp"

namespace cgp::cgm {

namespace {
constexpr std::uint64_t words_of_bytes(std::size_t bytes) noexcept {
  return (bytes + 7) / 8;  // h-relations are counted in 8-byte words
}
}  // namespace

void context::send_bytes(std::uint32_t dest, std::uint32_t tag,
                         std::span<const std::byte> bytes) {
  CGP_EXPECTS(dest < nprocs_);
  message msg;
  msg.source = dest;  // holds the *destination* while staged; fixed on routing
  msg.tag = tag;
  msg.payload.assign(bytes.begin(), bytes.end());
  inflight_bytes_ += msg.payload.size();
  if (inflight_bytes_ > peak_memory_) peak_memory_ = inflight_bytes_;
  const std::uint64_t words = words_of_bytes(msg.payload.size());
  words_sent_ += words;
  step_words_out_ += words;
  ++messages_sent_;
  outbox_.push_back(std::move(msg));
}

void context::sync() {
  CGP_EXPECTS(machine_ != nullptr);
  machine_->barrier_wait();
}

std::uint64_t context::shared_seed() const noexcept {
  CGP_ASSERT(machine_ != nullptr);
  return machine_->seed();
}

std::optional<message> context::take(std::uint32_t source, std::uint32_t tag) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (it->source == source && it->tag == tag) {
      message out = std::move(*it);
      inbox_.erase(it);
      inflight_bytes_ -= std::min<std::uint64_t>(inflight_bytes_, out.payload.size());
      return out;
    }
  }
  return std::nullopt;
}

std::vector<message> context::take_all(std::uint32_t tag) {
  std::vector<message> out;
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->tag == tag) {
      inflight_bytes_ -= std::min<std::uint64_t>(inflight_bytes_, it->payload.size());
      out.push_back(std::move(*it));
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

machine::machine(std::uint32_t nprocs, std::uint64_t seed) : nprocs_(nprocs), seed_(seed) {
  CGP_EXPECTS(nprocs >= 1);
  contexts_.reserve(nprocs);
  for (std::uint32_t i = 0; i < nprocs; ++i)
    contexts_.emplace_back(std::unique_ptr<context>(new context()));
}

machine::~machine() = default;

void machine::barrier_wait() { barrier_->arrive_and_wait(); }

void machine::route_and_record() {
  // Runs inside the barrier's completion step: every virtual processor is
  // parked, so touching all contexts is race-free.  Routing in processor
  // order makes delivery order deterministic.
  superstep_record rec;
  for (auto& src : contexts_) {
    for (auto& staged : src->outbox_) {
      const std::uint32_t dest = staged.source;
      message delivered;
      delivered.source = src->id_;
      delivered.tag = staged.tag;
      delivered.payload = std::move(staged.payload);
      const std::uint64_t words = words_of_bytes(delivered.payload.size());
      auto& dst = *contexts_[dest];
      dst.words_received_ += words;
      dst.step_words_in_ += words;
      rec.total_words += words;
      if (&dst != src.get()) {
        dst.inflight_bytes_ += delivered.payload.size();
        if (dst.inflight_bytes_ > dst.peak_memory_) dst.peak_memory_ = dst.inflight_bytes_;
      }
      dst.pending_.push_back(std::move(delivered));
    }
    src->outbox_.clear();
  }
  for (auto& ctx : contexts_) {
    rec.max_compute = std::max(rec.max_compute, ctx->step_ops_);
    rec.max_words_out = std::max(rec.max_words_out, ctx->step_words_out_);
    rec.max_words_in = std::max(rec.max_words_in, ctx->step_words_in_);
    ctx->step_ops_ = 0;
    ctx->step_words_out_ = 0;
    ctx->step_words_in_ = 0;
    ctx->inbox_ = std::move(ctx->pending_);
    ctx->pending_.clear();
    ++ctx->supersteps_;
  }
  records_.push_back(rec);
}

run_stats machine::run(const std::function<void(context&)>& program) {
  // Fresh per-run state: contexts, streams, accounting.
  for (std::uint32_t i = 0; i < nprocs_; ++i) {
    auto& ctx = *contexts_[i];
    ctx.id_ = i;
    ctx.nprocs_ = nprocs_;
    ctx.machine_ = this;
    ctx.engine_ = context::engine_type(rng::processor_stream(seed_, i));
    ctx.compute_ops_ = ctx.hyp_calls_ = ctx.words_sent_ = ctx.words_received_ = 0;
    ctx.messages_sent_ = ctx.peak_memory_ = ctx.inflight_bytes_ = ctx.supersteps_ = 0;
    ctx.step_ops_ = ctx.step_words_out_ = ctx.step_words_in_ = 0;
    ctx.extra_rng_draws_ = 0;
    ctx.outbox_.clear();
    ctx.pending_.clear();
    ctx.inbox_.clear();
  }
  records_.clear();
  barrier_ = std::make_unique<std::barrier<std::function<void()>>>(
      static_cast<std::ptrdiff_t>(nprocs_), std::function<void()>([this] { route_and_record(); }));

  std::vector<std::thread> threads;
  threads.reserve(nprocs_);
  for (std::uint32_t i = 0; i < nprocs_; ++i) {
    threads.emplace_back([this, i, &program] {
      try {
        program(*contexts_[i]);
      } catch (const std::exception& e) {
        // A throwing SPMD program would deadlock the barrier, exactly like
        // a crashed rank wedges an MPI job; fail fast and loudly instead.
        std::fprintf(stderr, "cgmperm: uncaught exception on virtual processor %u: %s\n", i,
                     e.what());
        std::abort();
      } catch (...) {
        std::fprintf(stderr, "cgmperm: uncaught exception on virtual processor %u\n", i);
        std::abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Tail segment after the last sync() (compute-only by construction:
  // sends without a following sync are a program bug and stay undelivered).
  superstep_record tail;
  bool tail_used = false;
  for (auto& ctx : contexts_) {
    if (ctx->step_ops_ > 0) {
      tail.max_compute = std::max(tail.max_compute, ctx->step_ops_);
      tail_used = true;
    }
  }
  if (tail_used) records_.push_back(tail);

  run_stats stats;
  stats.per_proc.resize(nprocs_);
  for (std::uint32_t i = 0; i < nprocs_; ++i) {
    auto& ctx = *contexts_[i];
    auto& ps = stats.per_proc[i];
    ps.compute_ops = ctx.compute_ops_;
    ps.words_sent = ctx.words_sent_;
    ps.words_received = ctx.words_received_;
    ps.messages_sent = ctx.messages_sent_;
    ps.rng_draws = ctx.engine_.count() + ctx.extra_rng_draws_;
    ps.hyp_calls = ctx.hyp_calls_;
    ps.peak_memory_bytes = ctx.peak_memory_;
    ps.supersteps = ctx.supersteps_;
  }
  stats.supersteps = records_;
  return stats;
}

}  // namespace cgp::cgm
