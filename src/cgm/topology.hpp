// cgm/topology.hpp
//
// Interconnect-aware cost evaluation.  PRO assumes "the coarse grained
// communication cost only depends on p and the bandwidth of the considered
// point-to-point interconnection network" -- this module makes that
// dependence explicit so the same measured run can be priced on different
// networks.  Each topology is reduced to a standard congestion model: a
// superstep moving `total` words with h-relation `h` costs
//
//     T_comm = g * max( h ,  total * mean_route_length / usable_links )
//
// i.e. the larger of the end-point bottleneck and the bisection/links
// bottleneck.  The constants per topology are the classical ones:
//
//   crossbar   route 1,        p links    (ideal: pure BSP h-relation)
//   hypercube  route log2(p)/2, p*log2(p)/2 links
//   mesh2d     route ~sqrt(p)/2, 2p links
//   ring       route p/4,       p links
//   bus        route 1,         1 link    (shared medium: total words)
//
// Bench e13 re-prices the paper's scaling experiment on all five; tests
// check the dominance ordering and the crossbar == BSP reduction.
#pragma once

#include <cmath>
#include <cstdint>

#include "cgm/cost.hpp"

namespace cgp::cgm {

enum class interconnect : std::uint8_t { crossbar, hypercube, mesh2d, ring, bus };

[[nodiscard]] constexpr const char* interconnect_name(interconnect k) noexcept {
  switch (k) {
    case interconnect::crossbar: return "crossbar";
    case interconnect::hypercube: return "hypercube";
    case interconnect::mesh2d: return "mesh2d";
    case interconnect::ring: return "ring";
    case interconnect::bus: return "bus";
  }
  return "?";
}

/// Cost parameters of a topology-aware machine.
struct topology_model {
  interconnect kind = interconnect::crossbar;
  double sec_per_op = 2.5e-9;    ///< c
  double sec_per_word = 8.0e-8;  ///< g of one link
  double latency = 1.0e-4;       ///< L per superstep

  /// Congestion multiplier: mean route length / usable links, times p to
  /// normalize against the per-processor h-relation scale.
  [[nodiscard]] double link_load_factor(std::uint32_t p) const noexcept {
    const double dp = p;
    const double lg = dp > 1 ? std::log2(dp) : 1.0;
    switch (kind) {
      case interconnect::crossbar:
        return 1.0 / dp;  // total/p: injection-limited only
      case interconnect::hypercube:
        return (lg / 2.0) / (dp * lg / 2.0);  // = 1/p
      case interconnect::mesh2d:
        return (std::sqrt(dp) / 2.0) / (2.0 * dp);
      case interconnect::ring:
        return (dp / 4.0) / dp;
      case interconnect::bus:
        return 1.0;
    }
    return 1.0;
  }

  /// Seconds for one superstep's communication.
  [[nodiscard]] double comm_seconds(const superstep_record& s, std::uint32_t p) const noexcept {
    const double endpoint = static_cast<double>(s.h_relation());
    const double links = static_cast<double>(s.total_words) * link_load_factor(p);
    return sec_per_word * (endpoint > links ? endpoint : links);
  }

  /// Whole-run model time on this network.
  [[nodiscard]] double model_seconds(const run_stats& stats, std::uint32_t p) const noexcept {
    double t = 0.0;
    for (const auto& s : stats.supersteps)
      t += sec_per_op * static_cast<double>(s.max_compute) + comm_seconds(s, p) + latency;
    return t;
  }
};

}  // namespace cgp::cgm
