// cgm/collectives.hpp
//
// The collective operations coarse-grained algorithms are written in, built
// on the machine's point-to-point superstep primitive.  Each collective
// costs exactly one superstep (they are "one h-relation" operations in BSP
// terms); the all-to-all is the communication phase of Algorithm 1.
//
// All payload types must be trivially copyable -- the machine moves raw
// bytes, like a real interconnect.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "cgm/machine.hpp"
#include "util/assert.hpp"

namespace cgp::cgm {

/// Reserved tag block for collectives (user code should tag below 0xC011).
inline constexpr std::uint32_t kTagAllToAll = 0xC011'0001;
inline constexpr std::uint32_t kTagBroadcast = 0xC011'0002;
inline constexpr std::uint32_t kTagGather = 0xC011'0003;
inline constexpr std::uint32_t kTagScatter = 0xC011'0004;
inline constexpr std::uint32_t kTagAllGather = 0xC011'0005;
inline constexpr std::uint32_t kTagReduce = 0xC011'0006;
inline constexpr std::uint32_t kTagScan = 0xC011'0007;

/// Personalized all-to-all ("v" variant): `chunks[d]` goes to processor d;
/// returns the p received chunks indexed by source.  One superstep.
template <typename T>
[[nodiscard]] std::vector<std::vector<T>> all_to_all_v(context& ctx,
                                                       std::span<const std::vector<T>> chunks) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(chunks.size() == ctx.nprocs());
  for (std::uint32_t d = 0; d < ctx.nprocs(); ++d)
    ctx.send(d, kTagAllToAll, std::span<const T>(chunks[d]));
  ctx.sync();
  std::vector<std::vector<T>> received(ctx.nprocs());
  for (auto& msg : ctx.take_all(kTagAllToAll)) received[msg.source] = msg.template as<T>();
  return received;
}

/// Broadcast `data` (significant at `root`) to all processors.
template <typename T>
[[nodiscard]] std::vector<T> broadcast(context& ctx, std::uint32_t root,
                                       std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(root < ctx.nprocs());
  if (ctx.id() == root)
    for (std::uint32_t d = 0; d < ctx.nprocs(); ++d) ctx.send(d, kTagBroadcast, data);
  ctx.sync();
  auto msg = ctx.take(root, kTagBroadcast);
  CGP_ENSURES(msg.has_value());
  return msg->template as<T>();
}

/// Broadcast a single value.
template <typename T>
[[nodiscard]] T broadcast_value(context& ctx, std::uint32_t root, const T& value) {
  return broadcast(ctx, root, std::span<const T>(&value, 1)).front();
}

/// Gather every processor's `data` at `root`; result (at root only) is the
/// concatenation in processor order, plus the per-source slice sizes.
template <typename T>
[[nodiscard]] std::vector<std::vector<T>> gather(context& ctx, std::uint32_t root,
                                                 std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(root < ctx.nprocs());
  ctx.send(root, kTagGather, data);
  ctx.sync();
  std::vector<std::vector<T>> out;
  if (ctx.id() == root) {
    out.resize(ctx.nprocs());
    for (auto& msg : ctx.take_all(kTagGather)) out[msg.source] = msg.template as<T>();
  }
  return out;
}

/// Scatter `chunks` (significant at root; chunks[d] for processor d) and
/// return this processor's chunk.
template <typename T>
[[nodiscard]] std::vector<T> scatter(context& ctx, std::uint32_t root,
                                     std::span<const std::vector<T>> chunks) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(root < ctx.nprocs());
  if (ctx.id() == root) {
    CGP_EXPECTS(chunks.size() == ctx.nprocs());
    for (std::uint32_t d = 0; d < ctx.nprocs(); ++d)
      ctx.send(d, kTagScatter, std::span<const T>(chunks[d]));
  }
  ctx.sync();
  auto msg = ctx.take(root, kTagScatter);
  CGP_ENSURES(msg.has_value());
  return msg->template as<T>();
}

/// All-gather: every processor receives every processor's `data`.
template <typename T>
[[nodiscard]] std::vector<std::vector<T>> all_gather(context& ctx, std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (std::uint32_t d = 0; d < ctx.nprocs(); ++d) ctx.send(d, kTagAllGather, data);
  ctx.sync();
  std::vector<std::vector<T>> out(ctx.nprocs());
  for (auto& msg : ctx.take_all(kTagAllGather)) out[msg.source] = msg.template as<T>();
  return out;
}

/// Sum-reduction to every processor (u64).
[[nodiscard]] inline std::uint64_t all_reduce_sum(context& ctx, std::uint64_t value) {
  for (std::uint32_t d = 0; d < ctx.nprocs(); ++d) ctx.send_value(d, kTagReduce, value);
  ctx.sync();
  std::uint64_t total = 0;
  for (auto& msg : ctx.take_all(kTagReduce)) total += msg.as<std::uint64_t>().front();
  return total;
}

/// Exclusive prefix sum across processors: processor i receives
/// sum_{k<i} value_k.  (Coarse-grained: one all-gather superstep, O(p)
/// local work -- optimal at PRO granularity since p <= sqrt(n).)
[[nodiscard]] inline std::uint64_t exclusive_scan_sum(context& ctx, std::uint64_t value) {
  for (std::uint32_t d = 0; d < ctx.nprocs(); ++d) ctx.send_value(d, kTagScan, value);
  ctx.sync();
  std::uint64_t below = 0;
  for (auto& msg : ctx.take_all(kTagScan))
    if (msg.source < ctx.id()) below += msg.as<std::uint64_t>().front();
  ctx.charge(ctx.nprocs());
  return below;
}

}  // namespace cgp::cgm
