// cgm/distributed.hpp
//
// The distributed CGM permutation engine: the paper's recursive
// splitting strategy executed over a pluggable comm::transport instead of
// shared memory -- the real coarse-grained engine behind `backend::cgm`,
// as opposed to the model-counting simulator behind
// `backend::cgm_simulator`.
//
// The global array lives distributed over the p ranks in balanced
// contiguous blocks.  The engine walks the SAME recursion tree as the
// shared-memory engine (smp::shuffle_subtree): split a range into K
// buckets under the exact communication-matrix law, recurse per bucket,
// Fisher-Yates once a bucket fits the cache cutoff.  Ranges are handled
// by ownership:
//
//   * a range inside one rank's block recurses locally -- zero
//     communication (this is where almost all work happens: after the top
//     split levels, buckets localize);
//   * a large range spanning several ranks runs a *distributed split
//     level*: every rank replicates the split plan
//     (smp::make_split_plan -- O(K^2) work, zero bytes exchanged),
//     replays the label streams of the chunks overlapping its block, and
//     routes each of its items straight to the rank owning the item's
//     destination slot.  One alltoallv-shaped superstep per level, total
//     volume = one h-relation of Algorithm 1;
//   * a small multi-rank range (at most ~one block) is gathered to its
//     lead rank, finished there with the ordinary local recursion, and
//     scattered back -- two supersteps, O(block) volume.
//
// RANK-COUNT INDEPENDENCE: every random stream is keyed by
// (seed, recursion node, role) exactly as in the shared-memory engine --
// never by rank or by p -- and which of the three execution paths handles
// a range never changes the permutation it applies.  The output is a pure
// function of (seed, n, engine options): bit-identical across p in
// {1, 2, 4, 8, ...}, across transports (loopback == threaded), and equal
// to smp::engine's output whenever n exceeds the cache cutoff.
//
// DEGENERACY AT THE LEAF (the em precedent): an input at or below the
// cache cutoff is a single leaf and is Fisher-Yates'd from philox(seed, 0)
// -- the very stream `backend::sequential` uses -- so in that regime
// `backend::cgm` is bit-for-bit `backend::sequential`, for every rank
// count and transport.  (The shared-memory engine keys its root leaf by
// node instead; that root case is the one deliberate divergence.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "comm/transport.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/engine.hpp"
#include "smp/parallel_split.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::cgm {

/// Configuration of the distributed engine.  The embedded engine options
/// define the permutation law (fan_out, cache_items, sampling -- shared
/// verbatim with smp::engine; `threads` is ignored: each rank computes
/// sequentially, parallelism comes from the ranks).
struct distributed_options {
  smp::engine_options engine{};
  /// Multi-rank ranges at or below this many items are gathered to their
  /// lead rank instead of split over the wire; 0 = auto
  /// (max(cache_items, ceil(n/p)) -- at most ~one block of staging).
  /// Affects only the communication pattern, never the output.
  std::uint64_t gather_items = 0;
};

namespace detail_dist {

inline constexpr std::uint32_t kTagMove = 0xD157'0001;
inline constexpr std::uint32_t kTagRootGather = 0xD157'0002;
inline constexpr std::uint32_t kTagRootScatter = 0xD157'0003;
inline constexpr std::uint32_t kTagGatherBase = 0xD158'0000;   // + node ordinal
inline constexpr std::uint32_t kTagScatterBase = 0xD159'0000;  // + node ordinal

/// An item in flight: its destination slot in the global index space plus
/// its payload.  (A production transport would ship per-destination runs
/// instead of (pos, value) pairs; the simulator-grade transports keep the
/// wire format simple.)
template <typename T>
struct routed {
  std::uint64_t pos = 0;
  T value{};
};

/// A range of the global index space at a node of the recursion tree.
struct dist_node {
  std::uint64_t lo = 0;
  std::uint64_t len = 0;
  std::uint64_t node = 0;
};

}  // namespace detail_dist

/// SPMD collective: uniformly permute the distributed global array of `n`
/// items, of which this rank holds the balanced contiguous block
/// `block` == [balanced_block_offset(n, p, rank), +balanced_block_size).
/// Every rank of the endpoint's transport must call it with the same
/// (n, seed, opt).  See the header comment for the law; the permutation
/// is independent of the rank count and of the transport.
template <typename T>
void distributed_shuffle(comm::endpoint& ep, std::span<T> block, std::uint64_t n,
                         std::uint64_t seed, const distributed_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  namespace dd = detail_dist;
  const std::uint32_t p = ep.size();
  const std::uint32_t r = ep.rank();
  const std::uint64_t my_lo = balanced_block_offset(n, p, r);
  const std::uint64_t my_len = balanced_block_size(n, p, r);
  CGP_EXPECTS(block.size() == my_len);
  if (n < 2) return;

  const std::uint64_t leaf = std::max<std::uint64_t>(opt.engine.cache_items, 2);
  const auto owner = [&](std::uint64_t g) { return balanced_block_owner(n, p, g); };

  // --- root leaf: the whole input fits the cache cutoff -----------------
  // One Fisher-Yates from philox(seed, 0), the sequential backend's
  // stream: backend::cgm == backend::sequential in this regime, by
  // design (compare em with memory >= n).
  if (n <= leaf) {
    if (p == 1) {
      rng::philox4x64 e(seed, 0);
      seq::fisher_yates(e, block);
      return;
    }
    const std::uint32_t lead = owner(0);
    if (my_len > 0) ep.send_span(lead, dd::kTagRootGather, std::span<const T>(block));
    std::vector<comm::message> msgs = ep.exchange();
    if (r == lead) {
      std::vector<T> all(static_cast<std::size_t>(n));
      for (const auto& msg : msgs) {
        CGP_ASSERT(msg.tag == dd::kTagRootGather);
        const std::uint64_t src_lo = balanced_block_offset(n, p, msg.source);
        CGP_ASSERT(msg.payload.size() == balanced_block_size(n, p, msg.source) * sizeof(T));
        std::memcpy(all.data() + src_lo, msg.payload.data(), msg.payload.size());
      }
      rng::philox4x64 e(seed, 0);
      seq::fisher_yates(e, std::span<T>(all));
      for (std::uint32_t o = 0; o < p; ++o) {
        const std::uint64_t o_lo = balanced_block_offset(n, p, o);
        const std::uint64_t o_len = balanced_block_size(n, p, o);
        if (o_len == 0) continue;
        ep.send_span(o, dd::kTagRootScatter,
                     std::span<const T>(all.data() + o_lo, static_cast<std::size_t>(o_len)));
      }
    }
    msgs = ep.exchange();
    for (const auto& msg : msgs) {
      CGP_ASSERT(msg.tag == dd::kTagRootScatter && msg.source == lead);
      CGP_ASSERT(msg.payload.size() == my_len * sizeof(T));
      if (my_len > 0) std::memcpy(block.data(), msg.payload.data(), msg.payload.size());
    }
    return;
  }

  const std::uint64_t gather_cut =
      opt.gather_items != 0 ? opt.gather_items
                            : std::max<std::uint64_t>(leaf, (n + p - 1) / p);

  std::vector<T> scratch(block.size());
  smp::split_options sopt;
  sopt.fan_out = opt.engine.fan_out;
  sopt.sampling = opt.engine.sampling;

  std::vector<dd::dist_node> level = {{0, n, smp::kShuffleRoot}};
  while (!level.empty()) {
    // ---- one distributed split level over every node in `level` --------
    // The plans are replicated knowledge: every rank samples the same
    // matrices from the same node-keyed streams.
    std::vector<smp::split_plan> plans;
    plans.reserve(level.size());
    for (const auto& nd : level) plans.push_back(smp::make_split_plan(nd.len, seed, nd.node, sopt));

    // Stage every owned item of every node range to the rank owning its
    // destination slot.  Label streams are replayed per overlapping chunk
    // (cursor state needs the chunk's full prefix, so boundary chunks
    // replay from their start -- O(len/K) extra work at worst).
    std::vector<std::vector<dd::routed<T>>> out(p);
    std::vector<std::uint8_t> labels;  // reused across chunks and nodes
    for (std::size_t ni = 0; ni < level.size(); ++ni) {
      const auto& nd = level[ni];
      const auto& plan = plans[ni];
      const std::uint64_t a = std::max(nd.lo, my_lo);
      const std::uint64_t b = std::min(nd.lo + nd.len, my_lo + my_len);
      if (a >= b) continue;
      std::vector<std::uint64_t> cursor(plan.k);
      for (std::uint32_t c = 0; c < plan.k; ++c) {
        const std::uint64_t c_lo = nd.lo + balanced_block_offset(nd.len, plan.k, c);
        const std::uint64_t c_len = plan.margins[c];
        if (c_lo + c_len <= a) continue;
        if (c_lo >= b) break;
        smp::split_chunk_labels_into(plan, seed, nd.node, c, labels);
        for (std::uint32_t j = 0; j < plan.k; ++j)
          cursor[j] = plan.dest[static_cast<std::size_t>(c) * plan.k + j];
        for (std::uint64_t i = 0; i < c_len; ++i) {
          const std::uint64_t slot = cursor[labels[static_cast<std::size_t>(i)]]++;
          const std::uint64_t g = c_lo + i;  // current position of the item
          if (g < a || g >= b) continue;     // replay only: not my item
          dd::routed<T> rec{};
          rec.pos = nd.lo + slot;
          rec.value = block[static_cast<std::size_t>(g - my_lo)];
          out[owner(rec.pos)].push_back(rec);
        }
      }
    }
    for (std::uint32_t d = 0; d < p; ++d) {
      ep.send_span(d, dd::kTagMove, std::span<const dd::routed<T>>(out[d]));
    }
    for (const auto& msg : ep.exchange()) {
      CGP_ASSERT(msg.tag == dd::kTagMove);
      const std::vector<dd::routed<T>> recs = msg.template as<dd::routed<T>>();
      for (const auto& rec : recs) {
        CGP_ASSERT(rec.pos >= my_lo && rec.pos < my_lo + my_len);
        block[static_cast<std::size_t>(rec.pos - my_lo)] = rec.value;
      }
    }

    // ---- classify the children ----------------------------------------
    std::vector<dd::dist_node> next;
    std::vector<dd::dist_node> gathered;
    for (std::size_t ni = 0; ni < level.size(); ++ni) {
      const auto& nd = level[ni];
      const auto& plan = plans[ni];
      for (std::uint32_t j = 0; j < plan.k; ++j) {
        const dd::dist_node ch{nd.lo + plan.bucket_off[j], plan.margins[j],
                               smp::split_child_node(nd.node, j, opt.engine.fan_out)};
        if (ch.len < 2) continue;  // a 1-item leaf is the identity
        if (owner(ch.lo) == owner(ch.lo + ch.len - 1)) {
          // Single-rank child: its owner finishes the subtree locally.
          if (owner(ch.lo) == r) {
            smp::shuffle_subtree(
                block.subspan(static_cast<std::size_t>(ch.lo - my_lo),
                              static_cast<std::size_t>(ch.len)),
                std::span<T>(scratch).subspan(static_cast<std::size_t>(ch.lo - my_lo),
                                              static_cast<std::size_t>(ch.len)),
                seed, ch.node, opt.engine, nullptr, false);
          }
        } else if (ch.len <= gather_cut) {
          gathered.push_back(ch);
        } else {
          next.push_back(ch);
        }
      }
    }

    // ---- gather batch: small multi-rank children ----------------------
    // Two supersteps for the whole batch.  `gathered` is replicated, so
    // every rank agrees on whether these barriers happen and on the tag
    // of each child (its ordinal in the batch).
    if (!gathered.empty()) {
      for (std::size_t gi = 0; gi < gathered.size(); ++gi) {
        const auto& g = gathered[gi];
        const std::uint64_t a = std::max(g.lo, my_lo);
        const std::uint64_t b = std::min(g.lo + g.len, my_lo + my_len);
        if (a < b) {
          ep.send_span(owner(g.lo),
                       dd::kTagGatherBase + static_cast<std::uint32_t>(gi),
                       std::span<const T>(block.data() + (a - my_lo),
                                          static_cast<std::size_t>(b - a)));
        }
      }
      std::vector<comm::message> msgs = ep.exchange();
      for (std::size_t gi = 0; gi < gathered.size(); ++gi) {
        const auto& g = gathered[gi];
        if (owner(g.lo) != r) continue;
        std::vector<T> buf(static_cast<std::size_t>(g.len));
        for (const auto& msg : msgs) {
          if (msg.tag != dd::kTagGatherBase + static_cast<std::uint32_t>(gi)) continue;
          const std::uint64_t src_lo = balanced_block_offset(n, p, msg.source);
          const std::uint64_t src_len = balanced_block_size(n, p, msg.source);
          const std::uint64_t a = std::max(g.lo, src_lo);
          CGP_ASSERT(msg.payload.size() ==
                     (std::min(g.lo + g.len, src_lo + src_len) - a) * sizeof(T));
          std::memcpy(buf.data() + (a - g.lo), msg.payload.data(), msg.payload.size());
        }
        std::vector<T> scr(buf.size());
        smp::shuffle_subtree(std::span<T>(buf), std::span<T>(scr), seed, g.node, opt.engine,
                             nullptr, false);
        for (std::uint32_t o = owner(g.lo); o <= owner(g.lo + g.len - 1); ++o) {
          const std::uint64_t o_lo = balanced_block_offset(n, p, o);
          const std::uint64_t o_len = balanced_block_size(n, p, o);
          const std::uint64_t a = std::max(g.lo, o_lo);
          const std::uint64_t b = std::min(g.lo + g.len, o_lo + o_len);
          if (a >= b) continue;
          ep.send_span(o, dd::kTagScatterBase + static_cast<std::uint32_t>(gi),
                       std::span<const T>(buf.data() + (a - g.lo),
                                          static_cast<std::size_t>(b - a)));
        }
      }
      msgs = ep.exchange();
      for (std::size_t gi = 0; gi < gathered.size(); ++gi) {
        const auto& g = gathered[gi];
        const std::uint64_t a = std::max(g.lo, my_lo);
        const std::uint64_t b = std::min(g.lo + g.len, my_lo + my_len);
        if (a >= b) continue;
        for (const auto& msg : msgs) {
          if (msg.tag != dd::kTagScatterBase + static_cast<std::uint32_t>(gi)) continue;
          CGP_ASSERT(msg.source == owner(g.lo));
          CGP_ASSERT(msg.payload.size() == (b - a) * sizeof(T));
          std::memcpy(block.data() + (a - my_lo), msg.payload.data(), msg.payload.size());
        }
      }
    }

    level = std::move(next);
  }
}

/// Whole-array driver over a transport: every rank shuffles its balanced
/// block view of `data` in place (the in-process transports share the
/// caller's memory, so this is zero-copy up to the engine's own staging).
/// Output is a pure function of (seed, data.size(), opt.engine) -- see
/// distributed_shuffle.
template <typename T>
void transport_shuffle(comm::transport& tr, std::span<T> data, std::uint64_t seed,
                       const distributed_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t n = data.size();
  if (n < 2) return;
  const std::uint32_t p = tr.size();
  tr.run([&](comm::endpoint& ep) {
    const std::uint64_t lo = balanced_block_offset(n, p, ep.rank());
    const std::uint64_t len = balanced_block_size(n, p, ep.rank());
    distributed_shuffle(ep, data.subspan(static_cast<std::size_t>(lo),
                                         static_cast<std::size_t>(len)),
                        n, seed, opt);
  });
}

}  // namespace cgp::cgm
