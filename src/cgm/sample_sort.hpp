// cgm/sample_sort.hpp
//
// Parallel sorting by regular sampling (Shi & Schaeffer 1992) on the
// coarse-grained machine, plus exact rank rebalancing.  This is the
// substrate the sorting-based permutation of Goodrich [1997] runs on (the
// related-work baseline the paper's work-optimality argument targets), and
// a classic CGM/PRO algorithm in its own right: one local sort, one
// all-gather of p^2 samples, one all-to-all, one local merge -- O((n/p)
// log n) time per processor and O(1) supersteps at PRO granularity
// (p <= sqrt(n) keeps the p^2 sample set within a block).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "cgm/collectives.hpp"
#include "cgm/machine.hpp"
#include "util/assert.hpp"

namespace cgp::cgm {

namespace detail {

inline std::uint64_t log2_ceil(std::uint64_t v) noexcept {
  return v <= 1 ? 1 : std::bit_width(v - 1);
}

}  // namespace detail

/// Exact rank rebalancing: the concatenation-in-processor-order of all
/// `local` vectors is preserved, but re-cut so this processor ends up with
/// exactly `target_size` items.  Requires sum(local sizes) ==
/// sum(target_size) over processors.  One superstep, O(local + target)
/// work; each processor exchanges only with the processors whose rank
/// ranges overlap its own (contiguous, so at most O(p) messages of total
/// volume = data moved).
template <typename T>
[[nodiscard]] std::vector<T> rebalance(context& ctx, const std::vector<T>& local,
                                       std::uint64_t target_size) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr std::uint32_t kTagRebal = 0x5EBA'0001;
  const std::uint32_t p = ctx.nprocs();

  // Global offsets of my current slice and of every target block.
  const std::uint64_t sizes[2] = {local.size(), target_size};
  const auto all = all_gather(ctx, std::span<const std::uint64_t>(sizes, 2));
  std::uint64_t my_off = 0;
  std::vector<std::uint64_t> target_off(p + 1, 0);
  std::uint64_t total_src = 0;
  for (std::uint32_t i = 0; i < p; ++i) {
    if (i < ctx.id()) my_off += all[i][0];
    total_src += all[i][0];
    target_off[i + 1] = target_off[i] + all[i][1];
  }
  CGP_EXPECTS(total_src == target_off[p]);
  ctx.charge(p);

  // Send each overlapping slice to its target owner.
  const std::uint64_t my_end = my_off + local.size();
  for (std::uint32_t t = 0; t < p && !local.empty(); ++t) {
    const std::uint64_t lo = std::max<std::uint64_t>(my_off, target_off[t]);
    const std::uint64_t hi = std::min<std::uint64_t>(my_end, target_off[t + 1]);
    if (lo >= hi) continue;
    ctx.send(t, kTagRebal,
             std::span<const T>(local.data() + (lo - my_off), static_cast<std::size_t>(hi - lo)));
  }
  ctx.sync();

  // Messages arrive ordered by source id == ordered by global rank.
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(target_size));
  for (const auto& msg : ctx.take_all(kTagRebal)) {
    const auto chunk = msg.template as<T>();
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  ctx.charge(out.size());
  CGP_ENSURES(out.size() == target_size);
  return out;
}

/// Parallel sort by regular sampling.  Returns this processor's slice of
/// the globally sorted sequence (slice sizes may differ from the input
/// sizes by up to ~2x; follow with `rebalance` for exact blocks).
/// `less` must be a strict weak ordering, identical on every processor.
template <typename T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> sample_sort(context& ctx, std::vector<T> local, Less less = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint32_t p = ctx.nprocs();

  // (1) local sort.
  std::sort(local.begin(), local.end(), less);
  ctx.charge(local.size() * detail::log2_ceil(local.size() + 1));
  if (p == 1) return local;

  // (2) regular samples: p per processor, evenly spaced.
  std::vector<T> samples;
  samples.reserve(p);
  if (!local.empty()) {
    for (std::uint32_t i = 0; i < p; ++i) {
      const std::size_t pos = static_cast<std::size_t>(
          (static_cast<std::uint64_t>(i) * local.size() + local.size() / 2) / p);
      samples.push_back(local[std::min(pos, local.size() - 1)]);
    }
  }

  // (3) everyone receives everyone's samples and derives identical
  // splitters (deterministic: same data, same code).
  const auto gathered = all_gather(ctx, std::span<const T>(samples));
  std::vector<T> pool;
  for (const auto& g : gathered) pool.insert(pool.end(), g.begin(), g.end());
  std::sort(pool.begin(), pool.end(), less);
  ctx.charge(pool.size() * detail::log2_ceil(pool.size() + 1));
  std::vector<T> splitters;
  splitters.reserve(p - 1);
  for (std::uint32_t j = 1; j < p && !pool.empty(); ++j)
    splitters.push_back(pool[std::min(pool.size() - 1,
                                      static_cast<std::size_t>(
                                          static_cast<std::uint64_t>(j) * pool.size() / p))]);

  // (4) partition the (sorted) local block by the splitters and exchange.
  std::vector<std::vector<T>> buckets(p);
  {
    std::size_t begin = 0;
    for (std::uint32_t j = 0; j < p; ++j) {
      const std::size_t end =
          (j + 1 < p && j < splitters.size())
              ? static_cast<std::size_t>(
                    std::upper_bound(local.begin() + static_cast<std::ptrdiff_t>(begin),
                                     local.end(), splitters[j], less) -
                    local.begin())
              : local.size();
      buckets[j].assign(local.begin() + static_cast<std::ptrdiff_t>(begin),
                        local.begin() + static_cast<std::ptrdiff_t>(end));
      begin = end;
    }
  }
  ctx.charge(local.size());
  const auto received = all_to_all_v(ctx, std::span<const std::vector<T>>(buckets));

  // (5) merge the p sorted runs (simple binary merge cascade via sort of
  // runs would be O(m log m); do an explicit k-way merge by repeated
  // two-way merges, O(m log p)).
  std::vector<std::vector<T>> runs;
  runs.reserve(p);
  for (const auto& r : received)
    if (!r.empty()) runs.push_back(r);
  while (runs.size() > 1) {
    std::vector<std::vector<T>> next;
    next.reserve((runs.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
      std::vector<T> merged(runs[i].size() + runs[i + 1].size());
      std::merge(runs[i].begin(), runs[i].end(), runs[i + 1].begin(), runs[i + 1].end(),
                 merged.begin(), less);
      ctx.charge(merged.size());
      next.push_back(std::move(merged));
    }
    if (runs.size() % 2 == 1) next.push_back(std::move(runs.back()));
    runs = std::move(next);
  }
  return runs.empty() ? std::vector<T>{} : std::move(runs.front());
}

/// Convenience: sample_sort followed by rebalance back to `target_size`.
template <typename T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> sample_sort_balanced(context& ctx, std::vector<T> local,
                                                  std::uint64_t target_size, Less less = {}) {
  auto sorted = sample_sort(ctx, std::move(local), less);
  return rebalance(ctx, sorted, target_size);
}

}  // namespace cgp::cgm
