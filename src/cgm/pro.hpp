// cgm/pro.hpp
//
// Conformance checking against the PRO model (Gebremedhin, Guerin Lassous,
// Gustedt & Telle 2002), the framework the paper states Theorem 1 in.  PRO
// admits an algorithm only if, relative to a fixed reference sequential
// algorithm, it is simultaneously
//
//   * work-optimal  -- total cost (compute + communication) is O(T_seq),
//   * space-optimal -- every processor uses O(n/p) memory,
//   * within grain  -- p <= sqrt(n) (coarseness; guarantees linear
//                      speedup relative to the reference),
//
// all measurable on a `run_stats`.  The assessment is used by the tests
// (Theorem 1 conformance) and printed by the benches.
#pragma once

#include <cmath>
#include <cstdint>

#include "cgm/cost.hpp"

namespace cgp::cgm {

/// PRO conformance of one run against a reference sequential cost.
struct pro_assessment {
  double work_ratio = 0.0;    ///< weighted total cost / sequential cost
  double speedup = 0.0;       ///< T_seq / T_par under the model
  double efficiency = 0.0;    ///< speedup / p
  double space_ratio = 0.0;   ///< max per-proc memory words / (n/p)
  bool within_grain = false;  ///< p <= sqrt(n)
  bool work_optimal = false;  ///< work_ratio <= tolerance
  bool space_optimal = false; ///< space_ratio <= tolerance

  [[nodiscard]] bool admissible() const noexcept {
    return within_grain && work_optimal && space_optimal;
  }
};

/// Assess a run of a parallel algorithm on `n` items over `p` processors
/// against a reference sequential algorithm costing `seq_ops` charged
/// operations.  `tolerance` bounds the constants allowed by the O(.)
/// (PRO itself only demands asymptotic constants; callers pick what
/// "constant" means for their test).
[[nodiscard]] inline pro_assessment assess_pro(const run_stats& stats, std::uint64_t n,
                                               std::uint32_t p, std::uint64_t seq_ops,
                                               const cost_model& model,
                                               double tolerance = 8.0) {
  pro_assessment a;
  const double seq_cost = model.sec_per_op * static_cast<double>(seq_ops);
  const double total_cost =
      model.sec_per_op * static_cast<double>(stats.total_compute()) +
      model.sec_per_word * static_cast<double>(stats.total_words());
  a.work_ratio = seq_cost > 0 ? total_cost / seq_cost : 0.0;

  const double par_time = stats.model_seconds(model);
  a.speedup = par_time > 0 ? seq_cost / par_time : 0.0;
  a.efficiency = p > 0 ? a.speedup / p : 0.0;

  const double block_words = static_cast<double>(n) / p;
  a.space_ratio = block_words > 0
                      ? static_cast<double>(stats.max_peak_memory_per_proc()) / 8.0 / block_words
                      : 0.0;

  a.within_grain = static_cast<double>(p) * p <= static_cast<double>(n);
  a.work_optimal = a.work_ratio <= tolerance;
  a.space_optimal = a.space_ratio <= tolerance;
  return a;
}

}  // namespace cgp::cgm
