// cgm/machine.hpp
//
// The coarse-grained parallel machine: our stand-in for SSCRAP (Essaidi,
// Guerin Lassous & Gustedt 2002), the environment the paper's experiments
// ran in.  `machine` executes an SPMD program on `p` *virtual processors*
// (std::thread each) under BSP superstep semantics:
//
//   * between two `sync()` calls a processor computes locally and enqueues
//     point-to-point messages;
//   * `sync()` is a global barrier; all messages posted in the superstep
//     are delivered, atomically and deterministically (routed in processor
//     order), becoming visible after the barrier.
//
// Substitution note (see DESIGN.md): the physical host may have a single
// core -- the paper's machine quantities (per-processor work, h-relations,
// random numbers, memory) are *counted exactly* per virtual processor and
// converted to predicted wall-clock through `cost_model`, so every claim of
// Theorems 1 and 2 is measurable regardless of physical parallelism.
// Because each virtual processor draws from its own counter-based Philox
// stream, runs are bit-reproducible for any thread schedule.
#pragma once

#include <barrier>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "cgm/cost.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "util/assert.hpp"

namespace cgp::cgm {

/// A delivered point-to-point message.
struct message {
  std::uint32_t source = 0;
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;

  /// Reinterpret the payload as a vector of trivially copyable T.
  template <typename T>
  [[nodiscard]] std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CGP_EXPECTS(payload.size() % sizeof(T) == 0);
    std::vector<T> out(payload.size() / sizeof(T));
    // Empty messages are legal (empty vectors have null data()); memcpy's
    // pointer arguments must not be null even for size 0.
    if (!payload.empty()) std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }
};

class machine;

/// Per-processor handle an SPMD program receives: identity, the processor's
/// private random stream, messaging, and cost charging.
class context {
 public:
  using engine_type = rng::counting_engine<rng::philox4x64>;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }

  /// This processor's private random stream (draws are counted into the
  /// run's `proc_stats::rng_draws`).
  [[nodiscard]] engine_type& rng() noexcept { return engine_; }

  /// The machine-wide seed: lets SPMD code derive *shared* deterministic
  /// streams (every processor drawing the identical sequence), used by the
  /// replicated matrix-sampling variant.
  [[nodiscard]] std::uint64_t shared_seed() const noexcept;

  /// Account random draws made outside `rng()` (e.g. from a shared stream).
  void charge_rng_draws(std::uint64_t draws) noexcept { extra_rng_draws_ += draws; }

  /// Charge `ops` units of local computation (1 unit ~ one per-item step of
  /// the reference sequential algorithm).
  void charge(std::uint64_t ops) noexcept {
    compute_ops_ += ops;
    step_ops_ += ops;
  }

  /// Record one call into the hypergeometric sampler (Theorem 2 counts
  /// these explicitly).
  void charge_hyp_call(std::uint64_t calls = 1) noexcept { hyp_calls_ += calls; }

  /// Tell the accountant this processor currently holds `bytes` of user
  /// data; the per-processor peak is reported in `proc_stats`.
  void note_memory(std::uint64_t bytes) noexcept {
    const std::uint64_t total = bytes + inflight_bytes_;
    if (total > peak_memory_) peak_memory_ = total;
  }

  /// Post a message delivered after the next `sync()`.
  void send_bytes(std::uint32_t dest, std::uint32_t tag, std::span<const std::byte> bytes);

  /// Typed convenience: send a span of trivially copyable values.
  template <typename T>
  void send(std::uint32_t dest, std::uint32_t tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(values.data()),
                                          values.size_bytes()));
  }

  /// Send a single value.
  template <typename T>
  void send_value(std::uint32_t dest, std::uint32_t tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Superstep barrier: deliver all posted messages, then continue.
  void sync();

  /// Messages delivered by the last `sync()`, ordered by (source, post
  /// order).  The vector is invalidated by the next `sync()`.
  [[nodiscard]] const std::vector<message>& inbox() const noexcept { return inbox_; }

  /// Remove and return the first inbox message matching (source, tag);
  /// nullopt if absent.
  [[nodiscard]] std::optional<message> take(std::uint32_t source, std::uint32_t tag);

  /// Remove and return all inbox messages with the given tag, in source
  /// order.
  [[nodiscard]] std::vector<message> take_all(std::uint32_t tag);

  context(const context&) = delete;
  context& operator=(const context&) = delete;

 private:
  friend class machine;
  context() = default;

  std::uint32_t id_ = 0;
  std::uint32_t nprocs_ = 1;
  engine_type engine_{};
  machine* machine_ = nullptr;

  // Accumulated totals.
  std::uint64_t compute_ops_ = 0;
  std::uint64_t hyp_calls_ = 0;
  std::uint64_t words_sent_ = 0;
  std::uint64_t words_received_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t peak_memory_ = 0;
  std::uint64_t inflight_bytes_ = 0;  // queued message payloads
  std::uint64_t supersteps_ = 0;
  std::uint64_t extra_rng_draws_ = 0;

  // Per-superstep deltas (reset by the barrier's completion step).
  std::uint64_t step_ops_ = 0;
  std::uint64_t step_words_out_ = 0;
  std::uint64_t step_words_in_ = 0;

  std::vector<message> outbox_;   // staged sends (message.source = dest here)
  std::vector<message> pending_;  // routed by the barrier completion
  std::vector<message> inbox_;    // visible to the program after sync()
};

/// The virtual machine.  Construct with the processor count and a seed;
/// `run` executes the SPMD program once and returns the measured stats.
class machine {
 public:
  explicit machine(std::uint32_t nprocs, std::uint64_t seed = 0xC0A2537E5EEDull);
  ~machine();

  machine(const machine&) = delete;
  machine& operator=(const machine&) = delete;

  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Change the seed for subsequent runs (tests re-run the same program
  /// under many seeds to collect statistics).
  void reseed(std::uint64_t seed) noexcept { seed_ = seed; }

  /// Execute `program(ctx)` on every virtual processor (one std::thread
  /// each), wait for completion, and return the resource accounting.
  /// Programs must reach the same number of `sync()` calls on every
  /// processor (BSP discipline); violations deadlock by construction, as on
  /// a real machine.
  run_stats run(const std::function<void(context&)>& program);

 private:
  friend class context;
  void barrier_wait();           // arrive at the superstep barrier
  void route_and_record();       // completion step: deliver messages

  std::uint32_t nprocs_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<context>> contexts_;
  std::unique_ptr<std::barrier<std::function<void()>>> barrier_;
  std::vector<superstep_record> records_;
};

}  // namespace cgp::cgm
