// cgm/machine.hpp
//
// The coarse-grained parallel machine: our stand-in for SSCRAP (Essaidi,
// Guerin Lassous & Gustedt 2002), the environment the paper's experiments
// ran in.  `machine` executes an SPMD program on `p` *virtual processors*
// under BSP superstep semantics:
//
//   * between two `sync()` calls a processor computes locally and enqueues
//     point-to-point messages;
//   * `sync()` is a global barrier; all messages posted in the superstep
//     are delivered, atomically and deterministically (routed in processor
//     order), becoming visible after the barrier.
//
// Since the transport redesign, the machine is a thin ADAPTER over
// comm::transport: the transport moves the bytes (by default the
// in-process mailbox transports of comm/transport.hpp -- loopback at
// p = 1, thread-pool ranks otherwise -- i.e. the old simulator machinery
// is now just one pluggable transport), while the machine layers the
// paper's exact resource accounting on top: per-processor work,
// h-relations, random draws, and peak memory are counted per virtual
// processor and converted to predicted wall-clock through `cost_model`,
// so every claim of Theorems 1 and 2 is measurable regardless of physical
// parallelism (see the substitution note in DESIGN.md).
//
// Randomness: each virtual processor draws from its own counter-based
// Philox stream keyed by (seed, run ordinal, processor) through
// rng::processor_run_stream, so (a) runs are bit-reproducible for any
// thread schedule, and (b) REPEATED collective calls on one machine draw
// from fresh streams instead of silently replaying the first run's
// permutation (`reseed` and `set_stream_offset` reset / relocate the run
// ordinal).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cgm/cost.hpp"
#include "comm/transport.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "util/assert.hpp"

namespace cgp::cgm {

/// A delivered point-to-point message (now the transport's wire unit).
using message = comm::message;

class machine;

/// Per-processor handle an SPMD program receives: identity, the processor's
/// private random stream, messaging, and cost charging.
class context {
 public:
  using engine_type = rng::counting_engine<rng::philox4x64>;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }

  /// This processor's private random stream (draws are counted into the
  /// run's `proc_stats::rng_draws`).
  [[nodiscard]] engine_type& rng() noexcept { return engine_; }

  /// The machine-wide seed: lets SPMD code derive *shared* deterministic
  /// streams (every processor drawing the identical sequence), used by the
  /// replicated matrix-sampling variant.
  [[nodiscard]] std::uint64_t shared_seed() const noexcept;

  /// Account random draws made outside `rng()` (e.g. from a shared stream).
  void charge_rng_draws(std::uint64_t draws) noexcept { extra_rng_draws_ += draws; }

  /// Charge `ops` units of local computation (1 unit ~ one per-item step of
  /// the reference sequential algorithm).
  void charge(std::uint64_t ops) noexcept {
    compute_ops_ += ops;
    step_ops_ += ops;
  }

  /// Record one call into the hypergeometric sampler (Theorem 2 counts
  /// these explicitly).
  void charge_hyp_call(std::uint64_t calls = 1) noexcept { hyp_calls_ += calls; }

  /// Tell the accountant this processor currently holds `bytes` of user
  /// data; the per-processor peak is reported in `proc_stats`.
  void note_memory(std::uint64_t bytes) noexcept {
    const std::uint64_t total = bytes + inflight_bytes_;
    if (total > peak_memory_) peak_memory_ = total;
  }

  /// Post a message delivered after the next `sync()`.
  void send_bytes(std::uint32_t dest, std::uint32_t tag, std::span<const std::byte> bytes);

  /// Typed convenience: send a span of trivially copyable values.
  template <typename T>
  void send(std::uint32_t dest, std::uint32_t tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(values.data()),
                                          values.size_bytes()));
  }

  /// Send a single value.
  template <typename T>
  void send_value(std::uint32_t dest, std::uint32_t tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Superstep barrier: deliver all posted messages, then continue.
  void sync();

  /// Messages delivered by the last `sync()`, ordered by (source, post
  /// order).  The vector is invalidated by the next `sync()`.
  [[nodiscard]] const std::vector<message>& inbox() const noexcept { return inbox_; }

  /// Remove and return the first inbox message matching (source, tag);
  /// nullopt if absent.
  [[nodiscard]] std::optional<message> take(std::uint32_t source, std::uint32_t tag);

  /// Remove and return all inbox messages with the given tag, in source
  /// order.
  [[nodiscard]] std::vector<message> take_all(std::uint32_t tag);

  /// The raw transport endpoint (for code that talks to the transport
  /// directly, e.g. the distributed engine run under accounting).
  [[nodiscard]] comm::endpoint& transport() noexcept {
    CGP_ASSERT(endpoint_ != nullptr);
    return *endpoint_;
  }

  context(const context&) = delete;
  context& operator=(const context&) = delete;

 private:
  friend class machine;
  context() = default;

  std::uint32_t id_ = 0;
  std::uint32_t nprocs_ = 1;
  engine_type engine_{};
  machine* machine_ = nullptr;
  comm::endpoint* endpoint_ = nullptr;

  // Accumulated totals.
  std::uint64_t compute_ops_ = 0;
  std::uint64_t hyp_calls_ = 0;
  std::uint64_t words_sent_ = 0;
  std::uint64_t words_received_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t peak_memory_ = 0;
  std::uint64_t inflight_bytes_ = 0;  // queued message payloads
  std::uint64_t supersteps_ = 0;
  std::uint64_t extra_rng_draws_ = 0;

  // Per-superstep deltas (closed out by each sync()).
  std::uint64_t step_ops_ = 0;
  std::uint64_t step_words_out_ = 0;

  /// This processor's per-superstep log; the machine zips the logs of all
  /// processors into the run's `superstep_record`s after the program ends
  /// (transport-independent: no global completion hook needed).
  struct step_delta {
    std::uint64_t ops = 0;
    std::uint64_t words_out = 0;
    std::uint64_t words_in = 0;
  };
  std::vector<step_delta> step_log_;

  std::vector<message> inbox_;  // visible to the program after sync()
};

/// The virtual machine: resource accounting over a pluggable transport.
/// Construct with the processor count and a seed (the machine then owns a
/// default in-process transport: loopback at p = 1, threaded otherwise),
/// or adopt any comm::transport; `run` executes the SPMD program once and
/// returns the measured stats.
class machine {
 public:
  explicit machine(std::uint32_t nprocs, std::uint64_t seed = 0xC0A2537E5EEDull);

  /// Adapt an existing transport (not owned; must outlive the machine).
  explicit machine(comm::transport& transport, std::uint64_t seed = 0xC0A2537E5EEDull);

  ~machine();

  machine(const machine&) = delete;
  machine& operator=(const machine&) = delete;

  [[nodiscard]] std::uint32_t nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The transport this machine runs on.
  [[nodiscard]] comm::transport& transport() noexcept { return *transport_; }

  /// Change the seed for subsequent runs (tests re-run the same program
  /// under many seeds to collect statistics).  Resets the run ordinal, so
  /// the first run after a reseed uses the same keying a fresh machine
  /// would.
  void reseed(std::uint64_t seed) noexcept {
    seed_ = seed;
    runs_ = 0;
  }

  /// Place subsequent runs at run ordinal `offset`, `offset + 1`, ...:
  /// the caller-provided stream offset that makes a machine reproduce the
  /// k-th collective of another machine without replaying the first k.
  void set_stream_offset(std::uint64_t offset) noexcept { runs_ = offset; }

  /// Ordinal the next `run` will use (== completed runs since the last
  /// reseed, plus any stream offset).
  [[nodiscard]] std::uint64_t stream_offset() const noexcept { return runs_; }

  /// Execute `program(ctx)` on every virtual processor, wait for
  /// completion, and return the resource accounting.  Programs must reach
  /// the same number of `sync()` calls on every processor (BSP
  /// discipline); violations deadlock by construction, as on a real
  /// machine.
  run_stats run(const std::function<void(context&)>& program);

 private:
  friend class context;

  std::uint32_t nprocs_;
  std::uint64_t seed_;
  std::uint64_t runs_ = 0;  // ordinal of the next run (stream offset base)
  comm::transport* transport_ = nullptr;
  std::unique_ptr<comm::transport> owned_transport_;
  std::vector<std::unique_ptr<context>> contexts_;
};

}  // namespace cgp::cgm
