// cgm/cost.hpp
//
// The cost side of the PRO/BSP substrate.  The paper states all of its
// results in model quantities -- per-processor work, communicated words,
// random numbers, memory -- and its Section 6 wall-clock numbers come from
// a machine we do not have (a 400 MHz SGI Origin).  We therefore *measure*
// the model quantities exactly on the virtual machine and convert them to
// predicted seconds through a calibratable (c, g, L) triple:
//
//     T = sum over supersteps s of [ c * max_i w_i(s) + g * max_i h_i(s) + L ]
//
// where w_i(s) is processor i's charged compute in superstep s and h_i(s)
// its h-relation (max of words sent / received).  EXPERIMENTS.md documents
// the calibration that reproduces the paper's scaling table.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/transport.hpp"

namespace cgp::cgm {

/// Machine parameters for converting counted operations into seconds.
/// The communication term of a superstep is
///     max( g * h,  total_words / aggregate_bandwidth )
/// -- the per-link h-relation cost of BSP, saturated by the interconnect's
/// aggregate capacity (what makes the paper's Origin scaling flatten
/// between p = 24 and p = 48).  Set `agg_words_per_sec` to 0 to disable the
/// saturation term (pure BSP).
struct cost_model {
  double sec_per_op = 2.5e-9;    ///< c: seconds per charged compute op
  double sec_per_word = 8.0e-8;  ///< g: seconds per 8-byte word in an h-relation
  double latency = 1.0e-4;       ///< L: barrier/synchronization cost per superstep
  double agg_words_per_sec = 0;  ///< aggregate interconnect capacity (0 = unlimited)

  /// Calibration against the paper's Section 6 measurements on the 400 MHz
  /// SGI Origin (480 M items): c fitted from the 137 s sequential run
  /// (~114 cycles/item at 400 MHz, consistent with the intro's 60..100
  /// cycles on lighter-weight CPUs), g from the p = 3 run, the aggregate
  /// bandwidth from the p = 48 run.  Reproduces all five reported times
  /// within ~3% (see bench/e1_scaling and EXPERIMENTS.md).
  [[nodiscard]] static cost_model origin2000() noexcept {
    return cost_model{2.854e-7, 7.425e-7, 5.0e-4, 10.1e6};
  }

  /// A modern commodity multicore (used by the examples).
  [[nodiscard]] static cost_model multicore() noexcept {
    return cost_model{4.0e-10, 1.0e-9, 2.0e-6, 0};
  }
};

/// Aggregated maxima of one superstep.
struct superstep_record {
  std::uint64_t max_compute = 0;     ///< max_i charged ops
  std::uint64_t max_words_out = 0;   ///< max_i words sent
  std::uint64_t max_words_in = 0;    ///< max_i words received
  std::uint64_t total_words = 0;     ///< sum of all words sent

  [[nodiscard]] std::uint64_t h_relation() const noexcept {
    return max_words_out > max_words_in ? max_words_out : max_words_in;
  }
};

/// Per-processor resource totals over a whole run -- exactly the four
/// resources of Theorem 1 (computation, bandwidth, random numbers, memory)
/// plus bookkeeping.
struct proc_stats {
  std::uint64_t compute_ops = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t rng_draws = 0;
  std::uint64_t hyp_calls = 0;       ///< calls to the hypergeometric sampler
  std::uint64_t peak_memory_bytes = 0;
  std::uint64_t supersteps = 0;
};

/// Whole-run summary produced by `machine::run`.
struct run_stats {
  std::vector<proc_stats> per_proc;        // size p
  std::vector<superstep_record> supersteps;
  /// What the run put on the physical wire (frames, bytes, aggregation
  /// flushes) when the transport has one; all zero for the in-process
  /// transports, whose word counts above are the only movement.
  comm::wire_counters wire{};

  /// BSP-model execution time under `m`.
  [[nodiscard]] double model_seconds(const cost_model& m) const noexcept {
    double t = 0.0;
    for (const auto& s : supersteps) {
      double comm = m.sec_per_word * static_cast<double>(s.h_relation());
      if (m.agg_words_per_sec > 0) {
        const double saturated = static_cast<double>(s.total_words) / m.agg_words_per_sec;
        comm = comm > saturated ? comm : saturated;
      }
      t += m.sec_per_op * static_cast<double>(s.max_compute) + comm + m.latency;
    }
    return t;
  }

  /// Totals across processors (for work-optimality checks).
  [[nodiscard]] std::uint64_t total_compute() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t += p.compute_ops;
    return t;
  }
  [[nodiscard]] std::uint64_t total_words() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t += p.words_sent;
    return t;
  }
  [[nodiscard]] std::uint64_t total_rng_draws() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t += p.rng_draws;
    return t;
  }
  [[nodiscard]] std::uint64_t total_hyp_calls() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t += p.hyp_calls;
    return t;
  }
  [[nodiscard]] std::uint64_t max_compute_per_proc() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t = p.compute_ops > t ? p.compute_ops : t;
    return t;
  }
  [[nodiscard]] std::uint64_t max_words_per_proc() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) {
      const std::uint64_t w = p.words_sent > p.words_received ? p.words_sent : p.words_received;
      t = w > t ? w : t;
    }
    return t;
  }
  [[nodiscard]] std::uint64_t max_rng_draws_per_proc() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t = p.rng_draws > t ? p.rng_draws : t;
    return t;
  }
  [[nodiscard]] std::uint64_t max_peak_memory_per_proc() const noexcept {
    std::uint64_t t = 0;
    for (const auto& p : per_proc) t = p.peak_memory_bytes > t ? p.peak_memory_bytes : t;
    return t;
  }
};

}  // namespace cgp::cgm
