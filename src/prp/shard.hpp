// prp/shard.hpp
//
// Lazy sharded views over a prp::cipher: shard k of S is the image under
// pi of the contiguous preimage range shard_bounds(n, k, S), so the S
// views jointly enumerate pi(0..n) EXACTLY once -- the ML-epoch workload
// from the ROADMAP (millions of clients, each iterating its private slice
// of one shared permutation) with nothing materialized anywhere: a view
// is a pointer to the cipher plus two integers.
//
// Replay discipline: shards of one permutation share the cipher's
// (seed, n); clients that must be mutually independent key their ciphers
// with distinct seeds derived through rng::nested_stream -- the service
// does exactly that with svc::job_seed(server_seed, client_id, ordinal),
// so a remote shard stream is bit-replayable against a local
// prp::cipher(job_seed, n).shard(k, S).
//
// Iteration is forward, O(rounds) per element, O(1) memory; `fill` is the
// batched path (cipher::eval_range) for consumers that want chunk-at-a-
// time throughput -- ~3x faster per element than the iterator.
#pragma once

#include <cstdint>
#include <iterator>
#include <span>

#include "prp/cipher.hpp"
#include "util/assert.hpp"

namespace cgp::prp {

/// One shard's lazy window onto the permutation.  Borrows the cipher:
/// the view (and its iterators) must not outlive it.  Copyable, O(1).
class shard_view {
 public:
  /// Forward iterator producing pi(begin_index()), pi(begin_index()+1), ...
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint64_t;
    using difference_type = std::int64_t;
    using pointer = const std::uint64_t*;
    using reference = std::uint64_t;

    iterator() = default;
    iterator(const cipher* c, std::uint64_t pos) noexcept : c_(c), pos_(pos) {}

    [[nodiscard]] std::uint64_t operator*() const noexcept { return c_->pi(pos_); }
    iterator& operator++() noexcept {
      ++pos_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator old = *this;
      ++pos_;
      return old;
    }
    [[nodiscard]] bool operator==(const iterator& o) const noexcept {
      return pos_ == o.pos_;
    }
    [[nodiscard]] bool operator!=(const iterator& o) const noexcept {
      return pos_ != o.pos_;
    }

   private:
    const cipher* c_ = nullptr;
    std::uint64_t pos_ = 0;
  };

  shard_view(const cipher& c, std::uint64_t shard, std::uint64_t num_shards) noexcept
      : c_(&c), range_(shard_bounds(c.domain(), shard, num_shards)) {
    CGP_EXPECTS(num_shards > 0 && shard < num_shards);
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return range_.size(); }
  [[nodiscard]] bool empty() const noexcept { return range_.size() == 0; }

  /// The preimage range this shard covers: pi is applied to
  /// [begin_index(), end_index()), and the S shards' ranges tile [0, n).
  [[nodiscard]] std::uint64_t begin_index() const noexcept { return range_.lo; }
  [[nodiscard]] std::uint64_t end_index() const noexcept { return range_.hi; }

  [[nodiscard]] iterator begin() const noexcept { return {c_, range_.lo}; }
  [[nodiscard]] iterator end() const noexcept { return {c_, range_.hi}; }

  /// Batched read: out[j] = pi(begin_index() + offset + j).  The chunked
  /// consumption path (same engine as svc::stream's cipher branch).
  void fill(std::uint64_t offset, std::span<std::uint64_t> out,
            eval_stats* stats = nullptr) const {
    CGP_EXPECTS(offset + out.size() <= size());
    c_->eval_range(range_.lo + offset, out, stats);
  }

 private:
  const cipher* c_;
  shard_range range_;
};

inline shard_view cipher::shard(std::uint64_t k, std::uint64_t num_shards) const {
  return {*this, k, num_shards};
}

}  // namespace cgp::prp
