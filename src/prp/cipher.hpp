// prp/cipher.hpp
//
// The O(1)-memory permutation backend's core: a keyed pseudorandom
// permutation (PRP) over an arbitrary domain [0, n) that evaluates both
// directions point-wise --
//
//   pi(i)          the image of i          O(rounds) time, O(1) memory
//   pi_inverse(i)  the preimage of i       same cost, same storage
//
// -- with NOTHING materialized: the entire permutation is (seed, n) plus
// ~2 * rounds words of key schedule.  This is the logical endpoint of the
// paper's resource-bound story (memory/IO/communication traded for
// compute): zero memory, pure arithmetic, so a permutation of 10^12
// elements costs exactly as much to "hold" as one of 10^2, and any shard
// or single position of it is addressable without generating the rest.
//
// Construction: a swap-or-not network (Hoang-Morris-Rogaway) over
// Z_M, M = bit_ceil(n), cycle-walked down to [0, n).
//
//  * Each round r has a key K_r uniform in Z_M and a tweak word T_r.  The
//    round maps x to its "partner" x' = (K_r - x) mod M iff a pseudorandom
//    decision bit for the (unordered) pair {x, x'} says so:
//
//      bit = mix64(max(x, x') ^ T_r) & 1
//
//    The decision is keyed by max(x, x'), which is symmetric in the pair,
//    so every round is an involution -- the inverse cipher is the SAME
//    rounds applied in reverse order.  Unlike a (balanced) Feistel network
//    -- whose rounds are always even permutations, visibly biasing tiny
//    domains -- swap-or-not rounds are products of disjoint transpositions
//    and generate all of S_M, which is what lets the S4/S5 chi-square
//    harness pass on exhaustive rank histograms (tests/test_prp.cpp).
//
//  * Cycle-walking handles non-power-of-two n: evaluate the cipher over
//    Z_M and re-encrypt until the value lands below n.  Because the
//    cipher is a bijection on Z_M, walking traverses one cycle and must
//    hit [0, n); with M < 2n the expected number of extra encryptions per
//    evaluation is below 1 (geometric with p = n/M > 1/2), and the walked
//    projection of a uniform permutation of Z_M is exactly a uniform
//    permutation of [0, n).
//
// Keying: the round material is drawn in ONE batched keystream call
// through rng::philox4x64_batch (PR 8's SIMD engine) from the key
// philox4x64::derive_key(seed, nested_stream('prp', n, 0)) -- the same
// seed-derivation discipline every other backend uses, with the domain
// folded into the stream so ciphers of different n are independent.  The
// permutation is a pure function of (seed, n, rounds): bit-identical
// across SIMD paths (the batch contract), hosts, and callers.
//
// Observability: the batch entry points (eval_many / eval_range) count
// prp.evals and prp.cycle_walk_retries per CALL (never per item), and
// construction mirrors the round count into the prp.rounds gauge.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/splitmix64.hpp"
#include "util/assert.hpp"

namespace cgp::prp {

/// Per-call evaluation accounting (also mirrored into the prp.* obs
/// counters by the batch entry points).
struct eval_stats {
  std::uint64_t evals = 0;         ///< pi evaluations completed
  std::uint64_t walk_retries = 0;  ///< extra encryptions spent cycle-walking
};

/// Cipher knobs.  The round count is the quality/speed dial: every round is
/// ~10 ALU ops per element, and the default is far past where the
/// statistical harness stops distinguishing the family from uniform.
struct cipher_options {
  /// Swap-or-not rounds; 0 picks cipher::kDefaultRounds.  Changing it
  /// changes the permutation (it is part of the function, and the planner
  /// fingerprint mixes the default so recalibration re-keys cached plans).
  std::uint32_t rounds = 0;
};

/// Partition of [0, n) into `num_shards` contiguous index ranges that
/// jointly tile the domain exactly once (balanced: sizes differ by at
/// most one).  Shared by prp::shard_view, svc::server::submit_shard, and
/// the wire client, so all three always agree on shard geometry.
struct shard_range {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  ///< exclusive
  [[nodiscard]] constexpr std::uint64_t size() const noexcept { return hi - lo; }
};

[[nodiscard]] constexpr shard_range shard_bounds(std::uint64_t n, std::uint64_t shard,
                                                 std::uint64_t num_shards) noexcept {
  const std::uint64_t base = n / num_shards;
  const std::uint64_t extra = n % num_shards;
  const std::uint64_t lo = shard * base + (shard < extra ? shard : extra);
  return {lo, lo + base + (shard < extra ? 1 : 0)};
}

class shard_view;  // prp/shard.hpp

/// The keyed permutation itself.  Immutable after construction and
/// const-thread-safe: any number of threads (or shard views) may evaluate
/// concurrently.
class cipher {
 public:
  /// Default swap-or-not depth.  24 rounds of pair-keyed decisions mix
  /// tiny domains to statistical uniformity (exhaustive S4/S5 chi-square
  /// at p > 1e-9) with double-digit headroom, and cost ~250 ALU ops per
  /// evaluation on large ones.  Mixed into machine_profile::fingerprint()
  /// so a build that changes it re-keys every cached plan.
  static constexpr std::uint32_t kDefaultRounds = 24;

  /// Stream salt of the key derivation: the cipher draws its key schedule
  /// from philox4x64(seed, nested_stream(kKeySalt, n, 0)).
  static constexpr std::uint64_t kKeySalt = 0x707270ull;  // 'prp'

  cipher(std::uint64_t seed, std::uint64_t n, cipher_options opt = {});

  [[nodiscard]] std::uint64_t domain() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t rounds() const noexcept { return rounds_; }

  /// The image of i under the permutation; i must be in [0, domain()).
  [[nodiscard]] std::uint64_t pi(std::uint64_t i) const noexcept {
    std::uint64_t x = encrypt(i);
    while (x >= n_) x = encrypt(x);  // cycle-walk: E[extra] < 1 since M < 2n
    return x;
  }

  /// The preimage: pi_inverse(pi(i)) == i for every i in [0, domain()).
  [[nodiscard]] std::uint64_t pi_inverse(std::uint64_t i) const noexcept {
    std::uint64_t x = decrypt(i);
    while (x >= n_) x = decrypt(x);
    return x;
  }

  /// Batched evaluation: out[j] = pi(in[j]).  Processes lane blocks round
  /// by round (independent elements, so the round loop runs with full
  /// instruction-level parallelism instead of one serial dependency chain
  /// per element), then finishes stragglers' cycle walks scalar.  Counts
  /// into `stats` (if given) and the prp.* obs counters, once per call.
  void eval_many(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                 eval_stats* stats = nullptr) const;

  /// Batched evaluation of the consecutive range: out[j] = pi(first + j).
  /// The shard/stream read path: O(out.size()) work, O(1) extra memory.
  void eval_range(std::uint64_t first, std::span<std::uint64_t> out,
                  eval_stats* stats = nullptr) const;

  /// Lazy view over this cipher's shard `k` of `num_shards` (contiguous
  /// preimage range; all shards jointly tile pi exactly once).  The view
  /// borrows the cipher -- keep it alive.  Defined in prp/shard.hpp.
  [[nodiscard]] shard_view shard(std::uint64_t k, std::uint64_t num_shards) const;

 private:
  /// One forward pass of all rounds over Z_M (no cycle walk).
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t x) const noexcept {
    for (std::uint32_t r = 0; r < rounds_; ++r) {
      const std::uint64_t partner = (round_key_[r] - x) & mask_;
      const std::uint64_t hi = x > partner ? x : partner;
      x = (rng::mix64(hi ^ round_tweak_[r]) & 1) != 0 ? partner : x;
    }
    return x;
  }

  /// Rounds are involutions, so the inverse is the same rounds reversed.
  [[nodiscard]] std::uint64_t decrypt(std::uint64_t x) const noexcept {
    for (std::uint32_t r = rounds_; r-- > 0;) {
      const std::uint64_t partner = (round_key_[r] - x) & mask_;
      const std::uint64_t hi = x > partner ? x : partner;
      x = (rng::mix64(hi ^ round_tweak_[r]) & 1) != 0 ? partner : x;
    }
    return x;
  }

  std::uint64_t n_ = 0;
  std::uint64_t mask_ = 0;  ///< M - 1, M = bit_ceil(n): power-of-two walk domain
  std::uint32_t rounds_ = kDefaultRounds;
  std::vector<std::uint64_t> round_key_;    ///< K_r, masked into Z_M
  std::vector<std::uint64_t> round_tweak_;  ///< T_r, full 64-bit decision tweaks
};

}  // namespace cgp::prp
