// prp/cipher.cpp — key schedule + batched evaluation of the swap-or-not PRP.
#include "prp/cipher.hpp"

#include <array>

#include "obs/metrics.hpp"
#include "rng/philox.hpp"
#include "rng/philox_batch.hpp"
#include "rng/stream.hpp"

namespace cgp::prp {
namespace {

obs::counter& evals_counter() {
  static obs::counter& c = obs::get_counter("prp.evals");
  return c;
}

obs::counter& retries_counter() {
  static obs::counter& c = obs::get_counter("prp.cycle_walk_retries");
  return c;
}

/// Elements a batch pass keeps in flight.  64 lanes of 8 bytes is one
/// 512-byte working set (L1-resident) and enough independent chains to
/// hide the mix64 latency of each round on any of the SIMD hosts the
/// keystream engine targets.
constexpr std::size_t kLanes = 64;

}  // namespace

cipher::cipher(std::uint64_t seed, std::uint64_t n, cipher_options opt)
    : n_(n),
      mask_(n > 1 ? std::bit_ceil(n) - 1 : 0),
      rounds_(opt.rounds != 0 ? opt.rounds : kDefaultRounds) {
  // The whole key schedule -- 2 words per round -- comes out of ONE
  // batched keystream call: the same philox4x64_batch engine the label
  // loops ride, keyed by (seed, nested_stream('prp', n, 0)) so ciphers of
  // different domains under one seed are independent streams.
  const auto key = rng::philox4x64::derive_key(
      seed, rng::nested_stream(kKeySalt, n_, 0));
  const std::uint64_t words = 2ull * rounds_;
  const std::uint64_t nblocks = (words + 3) / 4;
  std::vector<std::uint64_t> ks(4 * nblocks);
  rng::philox4x64_batch({0, 0, 0, 0}, key, nblocks, ks.data());

  round_key_.resize(rounds_);
  round_tweak_.resize(rounds_);
  for (std::uint32_t r = 0; r < rounds_; ++r) {
    round_key_[r] = ks[2ull * r] & mask_;
    round_tweak_[r] = ks[2ull * r + 1];
  }

  static obs::gauge& rounds_gauge = obs::get_gauge("prp.rounds");
  rounds_gauge.set(static_cast<std::int64_t>(rounds_));
}

void cipher::eval_many(std::span<const std::uint64_t> in, std::span<std::uint64_t> out,
                       eval_stats* stats) const {
  CGP_EXPECTS(out.size() >= in.size());
  std::uint64_t retries = 0;
  std::size_t done = 0;
  std::array<std::uint64_t, kLanes> lane;
  while (done < in.size()) {
    const std::size_t take = std::min(kLanes, in.size() - done);
    for (std::size_t j = 0; j < take; ++j) lane[j] = in[done + j];
    // Rounds outer, lanes inner: `take` independent dependency chains per
    // round keeps the ALUs fed where the scalar path would serialize on
    // one chain of rounds_ mix64 latencies.
    for (std::uint32_t r = 0; r < rounds_; ++r) {
      const std::uint64_t k = round_key_[r];
      const std::uint64_t t = round_tweak_[r];
      for (std::size_t j = 0; j < take; ++j) {
        const std::uint64_t x = lane[j];
        const std::uint64_t partner = (k - x) & mask_;
        const std::uint64_t hi = x > partner ? x : partner;
        lane[j] = (rng::mix64(hi ^ t) & 1) != 0 ? partner : x;
      }
    }
    // Cycle-walk the stragglers scalar: with M < 2n fewer than half the
    // lanes need any extra pass, so re-batching them buys nothing.
    for (std::size_t j = 0; j < take; ++j) {
      std::uint64_t x = lane[j];
      while (x >= n_) {
        x = encrypt(x);
        ++retries;
      }
      out[done + j] = x;
    }
    done += take;
  }
  if (stats != nullptr) {
    stats->evals += in.size();
    stats->walk_retries += retries;
  }
  evals_counter().add(in.size());
  if (retries != 0) retries_counter().add(retries);
}

void cipher::eval_range(std::uint64_t first, std::span<std::uint64_t> out,
                        eval_stats* stats) const {
  CGP_EXPECTS(first + out.size() >= first);  // no wraparound
  CGP_EXPECTS(out.empty() || first + out.size() <= n_);
  std::uint64_t retries = 0;
  std::size_t done = 0;
  std::array<std::uint64_t, kLanes> lane;
  while (done < out.size()) {
    const std::size_t take = std::min(kLanes, out.size() - done);
    for (std::size_t j = 0; j < take; ++j) lane[j] = first + done + j;
    for (std::uint32_t r = 0; r < rounds_; ++r) {
      const std::uint64_t k = round_key_[r];
      const std::uint64_t t = round_tweak_[r];
      for (std::size_t j = 0; j < take; ++j) {
        const std::uint64_t x = lane[j];
        const std::uint64_t partner = (k - x) & mask_;
        const std::uint64_t hi = x > partner ? x : partner;
        lane[j] = (rng::mix64(hi ^ t) & 1) != 0 ? partner : x;
      }
    }
    for (std::size_t j = 0; j < take; ++j) {
      std::uint64_t x = lane[j];
      while (x >= n_) {
        x = encrypt(x);
        ++retries;
      }
      out[done + j] = x;
    }
    done += take;
  }
  if (stats != nullptr) {
    stats->evals += out.size();
    stats->walk_retries += retries;
  }
  evals_counter().add(out.size());
  if (retries != 0) retries_counter().add(retries);
}

}  // namespace cgp::prp
