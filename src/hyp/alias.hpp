// hyp/alias.hpp
//
// Walker/Vose alias tables for *repeated* sampling from one fixed
// hypergeometric (or any finite discrete) distribution: O(support) setup,
// then O(1) and exactly two random numbers per sample.  The matrix samplers
// draw from a fresh parameter triple every call, so the dispatcher never
// uses this; it exists for workloads that resample a fixed distribution
// (e.g. the statistical tests, and the E7 sampler ablation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hyp/pmf.hpp"
#include "rng/engine.hpp"
#include "rng/uniform.hpp"
#include "util/assert.hpp"

namespace cgp::hyp {

/// Alias table over a dense pmf on {offset, offset+1, ..., offset+K-1}.
class alias_table {
 public:
  /// Build from (not necessarily normalized) non-negative weights.
  explicit alias_table(std::span<const double> weights, std::uint64_t offset = 0);

  /// Build the table of h(t,w,b) over its exact support.
  [[nodiscard]] static alias_table for_hypergeometric(const params& p);

  /// Sample one value; two engine draws (bucket index + threshold).
  template <rng::random_engine64 Engine>
  [[nodiscard]] std::uint64_t operator()(Engine& engine) const {
    const auto i =
        static_cast<std::size_t>(rng::uniform_below(engine, prob_.size()));
    const double u = rng::canonical_double(engine);
    return offset_ + (u < prob_[i] ? i : alias_[i]);
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::vector<double> prob_;        // acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;  // overflow target per bucket
  std::uint64_t offset_ = 0;
};

inline alias_table::alias_table(std::span<const double> weights, std::uint64_t offset)
    : prob_(weights.size()), alias_(weights.size()), offset_(offset) {
  CGP_EXPECTS(!weights.empty());
  const std::size_t k = weights.size();
  double total = 0.0;
  for (const double w : weights) {
    CGP_EXPECTS(w >= 0.0);
    total += w;
  }
  CGP_EXPECTS(total > 0.0);

  // Scaled weights; Vose's two-worklist construction.
  std::vector<double> scaled(k);
  for (std::size_t i = 0; i < k; ++i) scaled[i] = weights[i] * static_cast<double>(k) / total;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t g = large.back();
    prob_[s] = scaled[s];
    alias_[s] = g;
    scaled[g] = (scaled[g] + scaled[s]) - 1.0;
    if (scaled[g] < 1.0) {
      large.pop_back();
      small.push_back(g);
    }
  }
  // Leftovers (either list) have weight 1 up to rounding.
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

inline alias_table alias_table::for_hypergeometric(const params& p) {
  return alias_table(pmf_table(p), support_min(p));
}

}  // namespace cgp::hyp
