// hyp/pmf.hpp
//
// Exact probability machinery for the hypergeometric distribution h(t, w, b)
// of the paper's Section 3: draw `t` balls without replacement from an urn
// of `w` white and `b` black balls; h(t,w,b) is the law of the number of
// white balls drawn,
//
//     P[X = k] = C(w,k) C(b,t-k) / C(w+b,t)          (paper eq. (4)).
//
// Every sampler in this library is validated against these functions, and
// the statistical test-suite uses them to run exact chi-square tests.
#pragma once

#include <cstdint>
#include <vector>

namespace cgp::hyp {

/// Parameter triple of h(t, w, b).  Legal iff t <= w + b.
struct params {
  std::uint64_t t;  ///< number of balls drawn
  std::uint64_t w;  ///< white balls in the urn
  std::uint64_t b;  ///< black balls in the urn

  friend constexpr bool operator==(const params&, const params&) noexcept = default;
};

/// Smallest value in the support: max(0, t - b).
[[nodiscard]] constexpr std::uint64_t support_min(const params& p) noexcept {
  return p.t > p.b ? p.t - p.b : 0;
}

/// Largest value in the support: min(t, w).
[[nodiscard]] constexpr std::uint64_t support_max(const params& p) noexcept {
  return p.t < p.w ? p.t : p.w;
}

/// True iff the support of h(t,w,b) is a single point (degenerate draw).
[[nodiscard]] constexpr bool degenerate(const params& p) noexcept {
  return support_min(p) == support_max(p);
}

/// Mode of the distribution: floor((t+1)(w+1) / (w+b+2)), clamped to the
/// support.
[[nodiscard]] std::uint64_t mode(const params& p) noexcept;

/// Mean t*w/(w+b).
[[nodiscard]] double mean(const params& p) noexcept;

/// Variance t * (w/(w+b)) * (b/(w+b)) * (w+b-t)/(w+b-1).
[[nodiscard]] double variance(const params& p) noexcept;

/// log C(n, k); requires k <= n.
[[nodiscard]] double log_choose(std::uint64_t n, std::uint64_t k) noexcept;

/// log P[X = k]; returns -infinity outside the support.
[[nodiscard]] double log_pmf(const params& p, std::uint64_t k) noexcept;

/// P[X = k].
[[nodiscard]] double pmf(const params& p, std::uint64_t k) noexcept;

/// P[X <= k], computed by compensated summation of the pmf recurrence from
/// the nearer tail (O(support size), exact to ~1e-14 relative).
[[nodiscard]] double cdf(const params& p, std::uint64_t k) noexcept;

/// The entire pmf over the support as a dense vector indexed by
/// (k - support_min); sums to 1 within floating-point error.  Intended for
/// chi-square tests and small-parameter exact computations.
[[nodiscard]] std::vector<double> pmf_table(const params& p);

/// Ratio P[X = k+1] / P[X = k] = (w-k)(t-k) / ((k+1)(b-t+k+1)).
[[nodiscard]] double pmf_step_up(const params& p, std::uint64_t k) noexcept;

}  // namespace cgp::hyp
