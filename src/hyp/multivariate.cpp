#include "hyp/multivariate.hpp"

#include <limits>

namespace cgp::hyp {

double multivariate_log_pmf(std::span<const std::uint64_t> class_sizes,
                            std::span<const std::uint64_t> alpha) noexcept {
  if (class_sizes.size() != alpha.size()) return -std::numeric_limits<double>::infinity();
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < class_sizes.size(); ++i) {
    if (alpha[i] > class_sizes[i]) return -std::numeric_limits<double>::infinity();
    acc += log_choose(class_sizes[i], alpha[i]);
    n += class_sizes[i];
    m += alpha[i];
  }
  return acc - log_choose(n, m);
}

double multivariate_mean(std::span<const std::uint64_t> class_sizes, std::uint64_t m,
                         std::size_t i) noexcept {
  const std::uint64_t n = span_sum(class_sizes);
  if (n == 0) return 0.0;
  return static_cast<double>(m) * static_cast<double>(class_sizes[i]) / static_cast<double>(n);
}

}  // namespace cgp::hyp
