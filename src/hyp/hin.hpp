// hyp/hin.hpp
//
// HIN: hypergeometric sampling by mode-centered inversion (sequential
// search).  Uses *exactly one* random number per sample -- the floor of the
// paper's "random numbers per call to h(.,.)" budget -- at O(sd) expected
// arithmetic, so it is the right tool whenever the standard deviation is
// small.  The dispatcher (hyp/sample.hpp) switches to the ratio-of-uniforms
// sampler when sd grows past a threshold.
#pragma once

#include <cstdint>

#include "hyp/pmf.hpp"
#include "rng/engine.hpp"
#include "rng/uniform.hpp"

namespace cgp::hyp {

/// Draw one variate of h(t,w,b) by inverting a single uniform against the
/// pmf, starting at the mode and expanding outwards with the exact ratio
/// recurrence.  Expected number of recurrence steps is E|X - mode| ~ 0.8 sd.
template <rng::random_engine64 Engine>
[[nodiscard]] std::uint64_t sample_hin(Engine& engine, const params& p) {
  const std::uint64_t lo = support_min(p);
  const std::uint64_t hi = support_max(p);
  if (lo == hi) return lo;

  const std::uint64_t md = mode(p);
  const double pm = pmf(p, md);
  double u = rng::canonical_double(engine);
  u -= pm;
  if (u <= 0.0) return md;

  double p_up = pm;
  double p_down = pm;
  std::uint64_t up = md;
  std::uint64_t down = md;
  for (;;) {
    bool moved = false;
    if (up < hi) {
      p_up *= pmf_step_up(p, up);
      ++up;
      u -= p_up;
      if (u <= 0.0) return up;
      moved = true;
    }
    if (down > lo) {
      p_down /= pmf_step_up(p, down - 1);
      --down;
      u -= p_down;
      if (u <= 0.0) return down;
      moved = true;
    }
    if (!moved) {
      // The uniform fell into the ~1e-15 sliver left by floating-point
      // truncation of the total mass; attribute it to the mode.
      return md;
    }
  }
}

}  // namespace cgp::hyp
