#include "hyp/pmf.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace cgp::hyp {

std::uint64_t mode(const params& p) noexcept {
  // Classical closed form; derived from pmf_step_up(k) >= 1.
  const double raw = (static_cast<double>(p.t) + 1.0) * (static_cast<double>(p.w) + 1.0) /
                     (static_cast<double>(p.w) + static_cast<double>(p.b) + 2.0);
  auto m = static_cast<std::uint64_t>(raw);
  const std::uint64_t lo = support_min(p);
  const std::uint64_t hi = support_max(p);
  if (m < lo) m = lo;
  if (m > hi) m = hi;
  // Floating-point roundoff can put us one off; fix up with the exact ratio.
  while (m < hi && pmf_step_up(p, m) >= 1.0) ++m;
  while (m > lo && pmf_step_up(p, m - 1) < 1.0) --m;
  return m;
}

double mean(const params& p) noexcept {
  const double n = static_cast<double>(p.w) + static_cast<double>(p.b);
  if (n == 0.0) return 0.0;
  return static_cast<double>(p.t) * static_cast<double>(p.w) / n;
}

double variance(const params& p) noexcept {
  const double n = static_cast<double>(p.w) + static_cast<double>(p.b);
  if (n <= 1.0) return 0.0;
  const double fw = static_cast<double>(p.w) / n;
  const double fb = static_cast<double>(p.b) / n;
  return static_cast<double>(p.t) * fw * fb * (n - static_cast<double>(p.t)) / (n - 1.0);
}

double log_choose(std::uint64_t n, std::uint64_t k) noexcept {
  CGP_ASSERT_DBG(k <= n);
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double log_pmf(const params& p, std::uint64_t k) noexcept {
  if (k < support_min(p) || k > support_max(p))
    return -std::numeric_limits<double>::infinity();
  return log_choose(p.w, k) + log_choose(p.b, p.t - k) - log_choose(p.w + p.b, p.t);
}

double pmf(const params& p, std::uint64_t k) noexcept { return std::exp(log_pmf(p, k)); }

double pmf_step_up(const params& p, std::uint64_t k) noexcept {
  // P(k+1)/P(k); caller must keep k within [support_min, support_max).
  const double num = static_cast<double>(p.w - k) * static_cast<double>(p.t - k);
  const double den =
      (static_cast<double>(k) + 1.0) * (static_cast<double>(p.b) - static_cast<double>(p.t) +
                                        static_cast<double>(k) + 1.0);
  return num / den;
}

double cdf(const params& p, std::uint64_t k) noexcept {
  const std::uint64_t lo = support_min(p);
  const std::uint64_t hi = support_max(p);
  if (k >= hi) return 1.0;
  if (k < lo) return 0.0;

  // Sum from the lower tail if k is nearer to it, otherwise sum the upper
  // tail and take the complement; keeps the work proportional to the
  // shorter side and the relative error of small results tight.
  const bool lower = (k - lo) <= (hi - k);
  double sum = 0.0;
  double comp = 0.0;  // Kahan compensation
  const auto add = [&](double term) {
    const double y = term - comp;
    const double t2 = sum + y;
    comp = (t2 - sum) - y;
    sum = t2;
  };

  if (lower) {
    double term = pmf(p, lo);
    add(term);
    for (std::uint64_t i = lo; i < k; ++i) {
      term *= pmf_step_up(p, i);
      add(term);
    }
    return sum < 1.0 ? sum : 1.0;
  }
  double term = pmf(p, hi);
  add(term);
  for (std::uint64_t i = hi; i > k + 1; --i) {
    term /= pmf_step_up(p, i - 1);
    add(term);
  }
  const double r = 1.0 - sum;
  return r > 0.0 ? r : 0.0;
}

std::vector<double> pmf_table(const params& p) {
  const std::uint64_t lo = support_min(p);
  const std::uint64_t hi = support_max(p);
  std::vector<double> out(hi - lo + 1);
  // Start at the mode (the largest value) and use the exact ratio recurrence
  // outwards, which is far more accurate than exponentiating lgamma at every
  // point of a long support.
  const std::uint64_t md = mode(p);
  out[md - lo] = pmf(p, md);
  for (std::uint64_t k = md; k > lo; --k)
    out[k - 1 - lo] = out[k - lo] / pmf_step_up(p, k - 1);
  for (std::uint64_t k = md; k < hi; ++k)
    out[k + 1 - lo] = out[k - lo] * pmf_step_up(p, k);
  return out;
}

}  // namespace cgp::hyp
