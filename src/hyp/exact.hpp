// hyp/exact.hpp
//
// Exact rational hypergeometric probabilities for small parameters, in
// 128-bit integer arithmetic.  The floating-point pmf (hyp/pmf.hpp) runs
// through lgamma and accumulates ~1e-13 relative error; for the statistical
// machinery that is ample, but the *test-suite* wants an independent,
// error-free oracle to validate the float path against.  C(n, k) fits in
// unsigned __int128 up to n = 128, which covers every exhaustively tested
// configuration.
#pragma once

#include <cstdint>
#include <numeric>

#include "hyp/pmf.hpp"
#include "util/assert.hpp"

namespace cgp::hyp {

using u128 = unsigned __int128;

/// Exact binomial coefficient C(n, k); requires the result to fit in 128
/// bits (guaranteed for n <= 128).  Each step divides out gcd factors
/// BEFORE multiplying so the intermediate never exceeds ~128x the final
/// value's reduced form -- without this, C(128, 64)'s last step would
/// overflow even though the result fits.
[[nodiscard]] constexpr u128 choose_exact(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  u128 result = 1;
  // Invariant: after step i, result == C(n - k + i, i) exactly.
  for (std::uint64_t i = 1; i <= k; ++i) {
    std::uint64_t mult = n - k + i;
    std::uint64_t divisor = i;
    const std::uint64_t g = std::gcd(mult, divisor);
    mult /= g;
    divisor /= g;
    // divisor is now coprime to mult, so it must divide the accumulated
    // result (C(n-k+i, i) is integral).
    CGP_ASSERT_DBG(divisor == 0 || result % divisor == 0);
    result /= divisor;
    result *= mult;
  }
  return result;
}

/// Exact probability of h(t,w,b) at k, as a reduced-by-construction pair
/// (numerator, denominator): C(w,k) * C(b,t-k) / C(w+b,t).
struct exact_prob {
  u128 num;
  u128 den;

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num) / static_cast<double>(den);
  }
};

/// Exact pmf value.  Requires w + b <= 128 so all binomials fit.
[[nodiscard]] constexpr exact_prob pmf_exact(const params& p, std::uint64_t k) noexcept {
  CGP_ASSERT_DBG(p.w + p.b <= 128);
  if (k < support_min(p) || k > support_max(p)) return {0, 1};
  return {choose_exact(p.w, k) * choose_exact(p.b, p.t - k), choose_exact(p.w + p.b, p.t)};
}

/// Exact number of permutations of n items whose communication matrix has
/// entry pattern... exposed piece: the count C(w,k)C(b,t-k) itself, used by
/// the matrix-law tests to cross-check comm_matrix::log_probability.
[[nodiscard]] constexpr u128 ways_exact(const params& p, std::uint64_t k) noexcept {
  if (k < support_min(p) || k > support_max(p)) return 0;
  return choose_exact(p.w, k) * choose_exact(p.b, p.t - k);
}

}  // namespace cgp::hyp
