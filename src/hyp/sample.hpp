// hyp/sample.hpp
//
// The library-wide entry point for drawing h(t, w, b) variates: handles the
// degenerate cases, then dispatches between the one-draw inversion sampler
// (HIN) and the constant-cost ratio-of-uniforms sampler (HRUA) on the
// distribution's standard deviation.  The threshold trades HIN's O(sd)
// arithmetic against HRUA's lgamma-heavy constant cost and is exposed for
// the E7 ablation bench.
#pragma once

#include <cmath>
#include <cstdint>

#include "hyp/hin.hpp"
#include "hyp/hrua.hpp"
#include "hyp/pmf.hpp"
#include "rng/engine.hpp"
#include "util/assert.hpp"

namespace cgp::hyp {

/// Which sampling algorithm to use.
enum class method : std::uint8_t {
  automatic,  ///< HIN below the sd threshold, HRUA above (default)
  hin,        ///< mode-centered inversion, exactly 1 random number
  hrua,       ///< ratio-of-uniforms rejection, ~1.3 random numbers
};

/// Tuning knobs for `sample`.
struct policy {
  method how = method::automatic;
  /// Standard-deviation crossover for `automatic`; calibrated by bench
  /// e3/e7 on this machine (HIN's linear scan beats HRUA's lgammas up to a
  /// few dozen steps).
  double hin_sd_threshold = 48.0;
};

/// Draw one hypergeometric variate X ~ h(t, w, b); requires t <= w + b.
template <rng::random_engine64 Engine>
[[nodiscard]] std::uint64_t sample(Engine& engine, const params& p, const policy& pol = {}) {
  CGP_EXPECTS(p.t <= p.w + p.b);
  const std::uint64_t lo = support_min(p);
  if (lo == support_max(p)) return lo;  // degenerate: no randomness needed

  switch (pol.how) {
    case method::hin:
      return sample_hin(engine, p);
    case method::hrua:
      return sample_hrua(engine, p);
    case method::automatic:
    default: {
      const double sd = std::sqrt(variance(p));
      if (sd <= pol.hin_sd_threshold) return sample_hin(engine, p);
      return sample_hrua(engine, p);
    }
  }
}

}  // namespace cgp::hyp
