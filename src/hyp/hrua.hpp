// hyp/hrua.hpp
//
// HRUA: hypergeometric sampling by the ratio-of-uniforms rejection method of
// Stadlober's group (the method behind the sampler of Zechner [1994], which
// the paper cites for its "< 1.5 random numbers on average" measurement).
// Constant expected cost regardless of parameters: ~1.3 iterations, each
// consuming ONE 64-bit random word (split into the two 32-bit-granularity
// uniforms of the ratio pair, as the samplers of that school did), with a
// fast squeeze that avoids most log() evaluations.
//
// Structure follows the published HRUA* algorithm (Stadlober 1990, with the
// Frohne support-transformations): sample the *smaller symmetric problem*
// (m = min(t, n-t) draws, counting the rarer color), then map back.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "hyp/pmf.hpp"
#include "rng/engine.hpp"
#include "rng/uniform.hpp"
#include "util/assert.hpp"

namespace cgp::hyp {

namespace detail {
// 2*sqrt(2/e) and 3 - 2*sqrt(3/e): the classical ratio-of-uniforms hat
// constants for log-concave discrete distributions.
inline constexpr double kRouD1 = 1.7155277699214135;
inline constexpr double kRouD2 = 0.8989161620588988;

inline double log_fact(double x) noexcept { return std::lgamma(x + 1.0); }
}  // namespace detail

/// Draw one variate of h(t,w,b) by ratio-of-uniforms rejection.
/// Requires a non-degenerate distribution (support_min < support_max).
template <rng::random_engine64 Engine>
[[nodiscard]] std::uint64_t sample_hrua(Engine& engine, const params& p) {
  CGP_EXPECTS(!degenerate(p));
  using detail::log_fact;

  const double good = static_cast<double>(p.w);
  const double bad = static_cast<double>(p.b);
  const double popsize = good + bad;
  const double sample = static_cast<double>(p.t);

  const double mingoodbad = std::min(good, bad);
  const double maxgoodbad = std::max(good, bad);
  const double m = std::min(sample, popsize - sample);

  const double d4 = mingoodbad / popsize;
  const double d5 = 1.0 - d4;
  const double d6 = m * d4 + 0.5;
  const double d7 = std::sqrt((popsize - m) * sample * d4 * d5 / (popsize - 1.0) + 0.5);
  const double d8 = detail::kRouD1 * d7 + detail::kRouD2;
  const double d9 = std::floor((m + 1.0) * (mingoodbad + 1.0) / (popsize + 2.0));  // mode
  const double d10 = log_fact(d9) + log_fact(mingoodbad - d9) + log_fact(m - d9) +
                     log_fact(maxgoodbad - m + d9);
  // Tail cutoff 16 standard deviations out: the mass beyond is < 1e-16 and
  // its omission is below double resolution.
  const double d11 = std::min(std::min(m, mingoodbad) + 1.0, std::floor(d6 + 16.0 * d7));

  double z;
  for (;;) {
    // One 64-bit word per iteration, split into the two uniforms of the
    // ratio-of-uniforms pair (see rng::canonical_pair) -- this is the
    // paper's "< 1.5 random numbers per h(.,.) sample" operating point.
    const auto [x, y] = rng::canonical_pair(engine);
    const double wv = d6 + d8 * (y - 0.5) / x;

    if (wv < 0.0 || wv >= d11) continue;  // outside the truncated support

    z = std::floor(wv);
    const double t_log = d10 - (log_fact(z) + log_fact(mingoodbad - z) + log_fact(m - z) +
                                log_fact(maxgoodbad - m + z));

    if (x * (4.0 - x) - 3.0 <= t_log) break;  // squeeze acceptance
    if (x * (x - t_log) >= 1.0) continue;     // squeeze rejection
    if (2.0 * std::log(x) <= t_log) break;    // full acceptance test
  }

  // Map the symmetric sub-problem's count (of the rarer color among the
  // smaller draw) back to "white balls among t draws".
  if (good > bad) z = m - z;                    // counted black; flip color
  if (m < sample) z = good - z;                 // sampled the complement draw
  return static_cast<std::uint64_t>(z);
}

}  // namespace cgp::hyp
