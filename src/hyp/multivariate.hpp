// hyp/multivariate.hpp
//
// The multivariate hypergeometric distribution and its samplers -- the
// paper's Algorithm 2 (sequential conditional chain) plus the balanced
// recursive variant Section 4 recommends ("we may split the input ... more
// or less evenly. In practice this may speed up this particular part of the
// computation quite efficiently").
//
// Semantics: an urn holds `n = sum(class_sizes)` balls partitioned into
// classes; `m` balls are drawn without replacement; `alpha[i]` is the number
// drawn from class `i`.  In the paper this is exactly one *row split* of the
// communication matrix (Proposition 6).
#pragma once

#include <cstdint>
#include <span>

#include "hyp/pmf.hpp"
#include "hyp/sample.hpp"
#include "rng/engine.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::hyp {

/// log P[alpha] = sum_i log C(class_sizes[i], alpha[i]) - log C(n, m)
/// where m = sum(alpha).  Returns -inf if alpha is infeasible.
[[nodiscard]] double multivariate_log_pmf(std::span<const std::uint64_t> class_sizes,
                                          std::span<const std::uint64_t> alpha) noexcept;

/// Mean vector entry: m * class_sizes[i] / n.
[[nodiscard]] double multivariate_mean(std::span<const std::uint64_t> class_sizes,
                                       std::uint64_t m, std::size_t i) noexcept;

/// Algorithm 2 of the paper: sample (alpha_i) ~ MVH(m; class_sizes) with a
/// left-to-right chain of univariate hypergeometric draws.
/// `alpha.size()` must equal `class_sizes.size()`; requires m <= n.
/// Uses exactly `k-1` univariate h(.,.) calls for k classes (the last class
/// is forced).
template <rng::random_engine64 Engine>
void sample_multivariate_chain(Engine& engine, std::span<const std::uint64_t> class_sizes,
                               std::uint64_t m, std::span<std::uint64_t> alpha,
                               const policy& pol = {}) {
  CGP_EXPECTS(alpha.size() == class_sizes.size());
  CGP_EXPECTS(!class_sizes.empty());
  std::uint64_t n = span_sum(class_sizes);
  CGP_EXPECTS(m <= n);

  std::uint64_t remaining = m;
  for (std::size_t i = 0; i + 1 < class_sizes.size(); ++i) {
    // Of the `remaining` marked draws, how many land in class i versus in
    // the classes to its right (paper: `toRight ~ h(m, n - m'_i, m'_i)`)?
    const std::uint64_t wi = class_sizes[i];
    const std::uint64_t ai = sample(engine, params{remaining, wi, n - wi}, pol);
    alpha[i] = ai;
    remaining -= ai;
    n -= wi;
  }
  CGP_ENSURES(remaining <= class_sizes.back());
  alpha[class_sizes.size() - 1] = remaining;
}

/// Balanced recursive variant of Algorithm 2 (the RecMat splitting idea of
/// Algorithm 4 applied to one row): split the class range in half, draw how
/// many of the m marks fall left vs. right with a single h(.,.) call, and
/// recurse.  Same distribution and same number of h(.,.) calls as the
/// chain, but the *parameters* of the calls shrink geometrically, which
/// makes the inversion sampler's O(sd) scans cheaper (bench e10).
template <rng::random_engine64 Engine>
void sample_multivariate_recursive(Engine& engine, std::span<const std::uint64_t> class_sizes,
                                   std::uint64_t m, std::span<std::uint64_t> alpha,
                                   const policy& pol = {}) {
  CGP_EXPECTS(alpha.size() == class_sizes.size());
  CGP_EXPECTS(!class_sizes.empty());
  const std::uint64_t n = span_sum(class_sizes);
  CGP_EXPECTS(m <= n);

  if (class_sizes.size() == 1) {
    alpha[0] = m;
    return;
  }
  const std::size_t half = class_sizes.size() / 2;
  const std::uint64_t n_left = span_sum(class_sizes.first(half));
  // Marks falling into the left half ~ h(t=m, w=n_left, b=n-n_left).
  const std::uint64_t m_left = sample(engine, params{m, n_left, n - n_left}, pol);
  sample_multivariate_recursive(engine, class_sizes.first(half), m_left, alpha.first(half), pol);
  sample_multivariate_recursive(engine, class_sizes.subspan(half), m - m_left,
                                alpha.subspan(half), pol);
}

}  // namespace cgp::hyp
