#include "seq/baselines.hpp"

#include <cmath>

namespace cgp::seq {

double dart_throwing_expected_draws_per_item(double slack) noexcept {
  // Item k+1 of n sees k/(slack*n) occupancy; expected retries for the last
  // item are 1/(1 - 1/slack).  Averaging the geometric expectation over the
  // fill fraction x in [0, 1/slack]:
  //   E[draws/item] = slack * ln(slack / (slack - 1)).
  return slack * std::log(slack / (slack - 1.0));
}

}  // namespace cgp::seq
