// seq/blocked_shuffle.hpp
//
// The paper's Section 6 outlook realized: run the coarse-grained
// decomposition *sequentially* to avoid the cache misses of Fisher-Yates.
//
// One level of the scheme is Algorithm 1 with a single source block and K
// target blocks living in the same address space:
//   1. draw the target block loads (a_0..a_{K-1}) -- one *row* of the
//      communication matrix, i.e. a multivariate hypergeometric sample over
//      the K equal target capacities (uniformity comes from Prop. 2/6);
//   2. scatter the input sequentially, choosing each item's block with
//      probability proportional to the block's remaining quota (this is
//      exactly sampling the permutation's block assignment without
//      replacement, and streams through memory with K sequential write
//      cursors instead of n random accesses);
//   3. shuffle each block, recursing while a block is still larger than the
//      cache budget, with plain Fisher-Yates once it fits.
//
// The result is a uniform permutation with O(n log_K (n/cache)) sequential
// work whose random accesses all happen inside cache-sized blocks
// (bench e8 measures the effect).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hyp/multivariate.hpp"
#include "rng/engine.hpp"
#include "rng/uniform.hpp"
#include "seq/fisher_yates.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::seq {

/// Tuning for the blocked shuffle.
struct blocked_options {
  std::uint32_t fan_out = 8;          ///< K: blocks per scatter level
  std::size_t cache_items = 1u << 16; ///< switch to Fisher-Yates at/below this size
};

namespace detail {

template <typename T, rng::random_engine64 Engine>
void blocked_shuffle_rec(Engine& engine, std::span<T> data, std::span<T> scratch,
                         const blocked_options& opt) {
  const std::size_t n = data.size();
  if (n <= opt.cache_items || n < 2 * opt.fan_out) {
    fisher_yates(engine, data);
    return;
  }
  const std::uint32_t k = opt.fan_out;

  // (1) target block loads: a row of the communication matrix over K equal
  // capacity blocks (sizes n/K +- 1).
  const std::vector<std::uint64_t> capacity = balanced_blocks(n, k);
  std::vector<std::uint64_t> load(k);
  // All n items are "marked", so the load vector *is* the capacity vector;
  // what is random is which item lands in which block.  The without-
  // replacement scatter below realizes that choice, so loads == capacities.
  load = capacity;

  // (2) scatter without replacement: item -> block j with probability
  // remaining_j / remaining_total.
  std::vector<std::uint64_t> remaining = load;
  std::vector<std::uint64_t> cursor(k);
  exclusive_prefix_sum(load, cursor);
  std::uint64_t total = n;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t pick = rng::uniform_below(engine, total);
    std::uint32_t j = 0;
    while (pick >= remaining[j]) {
      pick -= remaining[j];
      ++j;
    }
    scratch[static_cast<std::size_t>(cursor[j])] = data[i];
    ++cursor[j];
    --remaining[j];
    --total;
  }
  std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n), data.begin());

  // (3) recurse into each (cache-friendlier) block.
  std::uint64_t off = 0;
  for (std::uint32_t j = 0; j < k; ++j) {
    const auto len = static_cast<std::size_t>(load[j]);
    blocked_shuffle_rec(engine, data.subspan(static_cast<std::size_t>(off), len),
                        scratch.first(len), opt);
    off += len;
  }
}

}  // namespace detail

/// Uniform in-place shuffle with cache-blocked structure; allocates an
/// n-item scratch buffer.
template <typename T, rng::random_engine64 Engine>
void blocked_shuffle(Engine& engine, std::span<T> data, const blocked_options& opt = {}) {
  CGP_EXPECTS(opt.fan_out >= 2);
  CGP_EXPECTS(opt.cache_items >= 2);
  if (data.size() <= 1) return;
  std::vector<T> scratch(data.size());
  detail::blocked_shuffle_rec(engine, data, std::span<T>(scratch), opt);
}

}  // namespace cgp::seq
