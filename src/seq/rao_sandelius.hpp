// seq/rao_sandelius.hpp
//
// The Rao-Sandelius shuffle (Rao 1961, Sandelius 1962): the second
// realization of the paper's Section 6 outlook, and the classical
// cache/external-friendly exact shuffle.
//
//   1. assign every item an INDEPENDENT uniform bucket in {0..K-1}
//      (one cheap draw -- log2 K bits -- per item, streaming writes);
//   2. recursively shuffle each bucket, Fisher-Yates once it fits in
//      cache;
//   3. concatenate.
//
// Uniformity: conditioned on the (multinomially distributed) bucket sizes,
// every assignment of items to buckets is exchangeable, and the recursion
// makes each bucket's internal order uniform -- inductively every
// interleaving is equally likely (this is the standard Rao-Sandelius
// argument; tests/test_seq.cpp verifies it exhaustively over S5).
//
// Contrast with seq/blocked_shuffle.hpp: that variant realizes the paper's
// communication-matrix structure exactly (fixed target block sizes, one
// without-replacement draw per item, O(K) bucket scan); this one trades
// fixed block sizes for O(1) bucket selection and is the faster choice on
// real hardware.  Both are exactly uniform.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/engine.hpp"
#include "rng/uniform.hpp"
#include "seq/fisher_yates.hpp"
#include "util/assert.hpp"

namespace cgp::seq {

/// Tuning for the Rao-Sandelius shuffle.
struct rs_options {
  unsigned log2_fan_out = 4;           ///< K = 2^this buckets per level
  std::size_t cache_items = 1u << 17;  ///< Fisher-Yates at/below this size
};

namespace detail {

template <typename T, rng::random_engine64 Engine>
void rs_shuffle_rec(Engine& engine, std::span<T> data, std::vector<T>& scratch,
                    const rs_options& opt) {
  const std::size_t n = data.size();
  if (n <= opt.cache_items || n < 2) {
    fisher_yates(engine, data);
    return;
  }
  const unsigned bits = opt.log2_fan_out;
  const std::size_t k = std::size_t{1} << bits;
  const std::uint64_t mask = k - 1;
  const unsigned per_word = 64 / bits;

  // Pass 1: independent uniform bucket labels, batched from 64-bit words;
  // count bucket sizes.  Labels go into the low bits of scratch so pass 2
  // needs no second RNG stream.
  std::vector<std::size_t> count(k, 0);
  std::vector<std::uint8_t> label(n);
  {
    std::uint64_t word = 0;
    unsigned left = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (left == 0) {
        word = engine();
        left = per_word;
      }
      const auto j = static_cast<std::uint8_t>(word & mask);
      word >>= bits;
      --left;
      label[i] = j;
      ++count[j];
    }
  }

  // Pass 2: scatter by cursor (streaming write per bucket).
  std::vector<std::size_t> cursor(k, 0);
  {
    std::size_t acc = 0;
    for (std::size_t j = 0; j < k; ++j) {
      cursor[j] = acc;
      acc += count[j];
    }
  }
  if (scratch.size() < n) scratch.resize(n);
  for (std::size_t i = 0; i < n; ++i) scratch[cursor[label[i]]++] = data[i];
  std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n), data.begin());

  // Recurse per bucket.
  std::size_t off = 0;
  for (std::size_t j = 0; j < k; ++j) {
    rs_shuffle_rec(engine, data.subspan(off, count[j]), scratch, opt);
    off += count[j];
  }
}

}  // namespace detail

/// Uniform in-place shuffle with Rao-Sandelius recursive scattering;
/// allocates one n-item scratch buffer plus one byte per item for labels.
template <typename T, rng::random_engine64 Engine>
void rs_shuffle(Engine& engine, std::span<T> data, const rs_options& opt = {}) {
  CGP_EXPECTS(opt.log2_fan_out >= 1 && opt.log2_fan_out <= 8);
  CGP_EXPECTS(opt.cache_items >= 2);
  if (data.size() <= 1) return;
  std::vector<T> scratch;
  detail::rs_shuffle_rec(engine, data, scratch, opt);
}

}  // namespace cgp::seq
