// seq/sattolo.hpp
//
// Sattolo's algorithm: the one-line sibling of Fisher-Yates that samples
// uniformly from the (n-1)! cyclic permutations (single n-cycles) instead
// of all n! permutations.  Included for API completeness -- shuffling
// applications occasionally need "everyone moves" guarantees (e.g. gift
// exchanges, round-robin schedules) -- and because it makes a sharp
// *negative* control for the test-suite: a correct uniformity test must
// reject Sattolo output as a sample of all permutations, and accept it as
// a sample of cyclic ones.
#pragma once

#include <span>
#include <utility>

#include "rng/engine.hpp"
#include "rng/uniform.hpp"

namespace cgp::seq {

/// In-place uniform random *cyclic* permutation of `data` (single n-cycle
/// for n >= 2; identity for n <= 1).  Exactly n-1 bounded-uniform draws.
template <typename T, rng::random_engine64 Engine>
void sattolo(Engine& engine, std::span<T> data) {
  for (std::size_t i = data.size(); i > 1; --i) {
    // The only difference from Fisher-Yates: j < i-1, never i-1 itself.
    const auto j = static_cast<std::size_t>(rng::uniform_below(engine, i - 1));
    using std::swap;
    swap(data[i - 1], data[j]);
  }
}

/// Sample a uniform cyclic permutation of {0..n-1} into `out`.
template <rng::random_engine64 Engine>
void random_cyclic_permutation(Engine& engine, std::span<std::uint64_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  sattolo(engine, out);
}

}  // namespace cgp::seq
