// seq/fisher_yates.hpp
//
// The Fisher-Yates (Knuth) shuffle: the *reference sequential algorithm* of
// the PRO model against which the paper defines work-optimality.  Exactly
// n-1 bounded-uniform draws and n-1 swaps; the unpredictable memory access
// pattern is what makes it memory-bound on large inputs (the paper's intro
// measures 60..100 cycles/item, 33..80% of it waiting on memory), which
// motivates both the parallel algorithm and the blocked sequential variant
// (seq/blocked_shuffle.hpp).
#pragma once

#include <span>
#include <utility>

#include "rng/engine.hpp"
#include "rng/uniform.hpp"

namespace cgp::seq {

/// In-place uniform shuffle of `data`.
template <typename T, rng::random_engine64 Engine>
void fisher_yates(Engine& engine, std::span<T> data) {
  // Classic backwards variant: positions [i..n) are final after step i.
  for (std::size_t i = data.size(); i > 1; --i) {
    const std::uint64_t j = rng::uniform_below(engine, i);
    using std::swap;
    swap(data[i - 1], data[static_cast<std::size_t>(j)]);
  }
}

/// Sample a uniform permutation of {0..n-1} into `out` (out[i] = pi(i)).
template <rng::random_engine64 Engine>
void random_permutation(Engine& engine, std::span<std::uint64_t> out) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  fisher_yates(engine, out);
}

/// "Inside-out" variant: writes a shuffled copy of `in` into `out` in one
/// pass (out must have the same length and not alias in).  Useful when the
/// source must stay intact, and as a second implementation for differential
/// testing of the primary shuffle.
template <typename T, rng::random_engine64 Engine>
void fisher_yates_copy(Engine& engine, std::span<const T> in, std::span<T> out) {
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng::uniform_below(engine, i + 1));
    if (j != i) out[i] = out[j];
    out[j] = in[i];
  }
}

}  // namespace cgp::seq
