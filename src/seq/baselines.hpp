// seq/baselines.hpp
//
// The alternative permutation methods the paper's related-work section
// measures itself against (Section 1, and Guerin Lassous & Thierry [2000]):
//
//  * sort-random-keys  -- Goodrich [1997]'s BSP approach reduced to its
//    sequential core: tag every item with a random key and sort.  Uniform,
//    but Theta(n log n) work, i.e. *not* work-optimal (bench e9 shows the
//    log-factor).
//  * dart throwing     -- throw items into a table of c*n slots, retrying
//    occupied slots, then compact.  Uniform and expected O(n) work, but
//    needs c*n extra memory, has unbounded worst case, and is even more
//    cache-hostile than Fisher-Yates.
//  * riffle rounds     -- iterate a balanced-but-NON-uniform round (a GSR
//    riffle: binomial cut + random interleave).  Each round is linear;
//    Theta(log n) rounds are needed before the distribution is close to
//    uniform, i.e. the "iterate" trick costs a log factor AND any fixed
//    round count is provably non-uniform (the statistical tests demonstrate
//    the bias for small round counts).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "hyp/sample.hpp"
#include "rng/engine.hpp"
#include "rng/uniform.hpp"
#include "util/assert.hpp"

namespace cgp::seq {

/// Tag-and-sort shuffle (Goodrich-style).  Uniform; Theta(n log n).
/// Key collisions (probability ~ n^2 / 2^65) are resolved by re-drawing
/// keys within equal ranges, preserving exact uniformity.
template <typename T, rng::random_engine64 Engine>
void shuffle_by_sorting(Engine& engine, std::span<T> data) {
  struct keyed {
    std::uint64_t key;
    T value;
  };
  std::vector<keyed> tagged(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) tagged[i] = {engine(), data[i]};

  const auto by_key = [](const keyed& a, const keyed& b) { return a.key < b.key; };
  std::sort(tagged.begin(), tagged.end(), by_key);

  // Re-randomize any collision runs until all keys are distinct; each pass
  // is a fresh uniform draw, so conditional on distinctness the order is
  // exactly uniform.
  for (;;) {
    bool collision = false;
    for (std::size_t i = 0; i + 1 < tagged.size(); ++i) {
      if (tagged[i].key == tagged[i + 1].key) {
        collision = true;
        std::size_t j = i + 1;
        while (j < tagged.size() && tagged[j].key == tagged[i].key) ++j;
        for (std::size_t k = i; k < j; ++k) tagged[k].key = engine();
        std::sort(tagged.begin() + static_cast<std::ptrdiff_t>(i),
                  tagged.begin() + static_cast<std::ptrdiff_t>(j), by_key);
      }
    }
    if (!collision) break;
    std::sort(tagged.begin(), tagged.end(), by_key);
  }

  for (std::size_t i = 0; i < data.size(); ++i) data[i] = tagged[i].value;
}

/// Dart-throwing shuffle: place each item into a uniformly chosen *empty*
/// slot of a table with `slack * n` slots (slack >= 1.5), then compact.
/// Uniform (each item takes a uniform empty slot, so every interleaving is
/// equally likely); expected draws per item 1/(1 - 1/slack) at the end.
template <typename T, rng::random_engine64 Engine>
void dart_throwing_shuffle(Engine& engine, std::span<T> data, double slack = 2.0) {
  CGP_EXPECTS(slack >= 1.25);
  if (data.size() <= 1) return;
  const auto slots = static_cast<std::size_t>(static_cast<double>(data.size()) * slack) + 1;
  constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);
  std::vector<std::size_t> table(slots, kEmpty);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (;;) {
      const auto s = static_cast<std::size_t>(rng::uniform_below(engine, slots));
      if (table[s] == kEmpty) {
        table[s] = i;
        break;
      }
    }
  }
  std::vector<T> out;
  out.reserve(data.size());
  for (const std::size_t idx : table)
    if (idx != kEmpty) out.push_back(data[idx]);
  std::copy(out.begin(), out.end(), data.begin());
}

/// One Gilbert-Shannon-Reeds riffle round: cut the deck at a Binomial(n,1/2)
/// position (sampled as h(n/2-ish) via the hypergeometric machinery's
/// uniform primitives) and interleave the halves with probabilities
/// proportional to remaining sizes.  Balanced and linear, but NOT uniform.
template <typename T, rng::random_engine64 Engine>
void riffle_round(Engine& engine, std::span<T> data) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  // Binomial(n, 1/2) cut via counting bits of random words (exact).
  std::size_t cut = 0;
  {
    std::size_t remaining = n;
    while (remaining >= 64) {
      cut += static_cast<std::size_t>(__builtin_popcountll(engine()));
      remaining -= 64;
    }
    if (remaining > 0) {
      const std::uint64_t word = engine() & ((remaining == 64) ? ~0ull : ((1ull << remaining) - 1));
      cut += static_cast<std::size_t>(__builtin_popcountll(word));
    }
  }
  std::vector<T> left(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<T> right(data.begin() + static_cast<std::ptrdiff_t>(cut), data.end());
  std::size_t a = 0;
  std::size_t b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pick =
        rng::uniform_below(engine, (left.size() - a) + (right.size() - b));
    if (pick < left.size() - a) {
      data[i] = left[a++];
    } else {
      data[i] = right[b++];
    }
  }
}

/// Iterated riffle: `rounds` GSR rounds.  With rounds = Theta(log n) the
/// result approaches uniformity (total work Theta(n log n)); with any fixed
/// rounds it is measurably biased -- both facts are exercised by tests and
/// bench e9.
template <typename T, rng::random_engine64 Engine>
void riffle_shuffle(Engine& engine, std::span<T> data, unsigned rounds) {
  for (unsigned r = 0; r < rounds; ++r) riffle_round(engine, data);
}

/// Expected random draws per item for dart throwing with the given slack
/// (harmonic integral; used by bench e9's model column).
[[nodiscard]] double dart_throwing_expected_draws_per_item(double slack) noexcept;

}  // namespace cgp::seq
