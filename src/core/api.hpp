// core/api.hpp
//
// Umbrella header: the public API of cgmperm, curated.
//
// The one object most callers need is the context facade:
//
//   #include "core/api.hpp"
//
//   cgp::context ctx;                         // planner-driven defaults
//   std::vector<std::uint64_t> v = ...;
//   auto plan = ctx.shuffle(std::span<std::uint64_t>(v));
//
// Everything else is exported in layers, facade first:
//
//   facade      cgp::context (core/context.hpp) -- owns profile,
//               transport, registry access, seed discipline
//   dispatch    core::shuffle / permute / random_permutation
//               (core/backend.hpp) -- compatibility shims over the same
//               plan/executor core
//   planning    core::plan_permutation, machine_profile (core/plan.hpp)
//   execution   core::executor and the per-backend executors
//               (core/executor.hpp), engine registry (core/registry.hpp)
//   transport   comm::transport / loopback / threaded (comm/transport.hpp)
//   engines     smp::engine, em::async_em_shuffle, cgm::distributed_shuffle,
//               seq::* reference shuffles
//   simulator   cgm::machine + Algorithm 1 (model-faithful accounting)
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#pragma once

// NOTE: the multi-tenant service layer (src/svc/) sits ABOVE this
// umbrella -- include "svc/server.hpp" explicitly to use it.  Exporting
// it from here would invert the layering (core must not depend on what
// is built on top of it).

// --- the facade ----------------------------------------------------------
#include "core/context.hpp"      // IWYU pragma: export

// --- dispatch + plan/executor core (compatibility entry points) ----------
#include "core/apply.hpp"        // IWYU pragma: export
#include "core/backend.hpp"      // IWYU pragma: export
#include "core/executor.hpp"     // IWYU pragma: export
#include "core/plan.hpp"         // IWYU pragma: export
#include "core/registry.hpp"     // IWYU pragma: export

// --- the transport layer -------------------------------------------------
#include "comm/transport.hpp"    // IWYU pragma: export

// --- engines -------------------------------------------------------------
#include "cgm/distributed.hpp"   // IWYU pragma: export
#include "em/async_shuffle.hpp"  // IWYU pragma: export
#include "em/block_device.hpp"   // IWYU pragma: export
#include "em/shuffle.hpp"        // IWYU pragma: export
#include "prp/cipher.hpp"        // IWYU pragma: export
#include "prp/shard.hpp"         // IWYU pragma: export
#include "seq/blocked_shuffle.hpp"  // IWYU pragma: export
#include "seq/fisher_yates.hpp"  // IWYU pragma: export
#include "seq/rao_sandelius.hpp"  // IWYU pragma: export
#include "smp/engine.hpp"        // IWYU pragma: export
#include "smp/parallel_split.hpp"  // IWYU pragma: export
#include "smp/thread_pool.hpp"   // IWYU pragma: export

// --- the model-faithful simulator world ----------------------------------
#include "cgm/collectives.hpp"   // IWYU pragma: export
#include "cgm/cost.hpp"          // IWYU pragma: export
#include "cgm/machine.hpp"       // IWYU pragma: export
#include "cgm/pro.hpp"           // IWYU pragma: export
#include "cgm/sample_sort.hpp"   // IWYU pragma: export
#include "core/comm_matrix.hpp"  // IWYU pragma: export
#include "core/driver.hpp"       // IWYU pragma: export
#include "core/parallel_matrix.hpp"  // IWYU pragma: export
#include "core/permute.hpp"      // IWYU pragma: export
#include "core/repeat.hpp"       // IWYU pragma: export
#include "core/routing.hpp"      // IWYU pragma: export
#include "core/sample_matrix.hpp"  // IWYU pragma: export
#include "core/sort_permute.hpp"  // IWYU pragma: export

// --- samplers ------------------------------------------------------------
#include "hyp/multivariate.hpp"  // IWYU pragma: export
#include "hyp/sample.hpp"        // IWYU pragma: export
