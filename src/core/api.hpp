// core/api.hpp
//
// Umbrella header: the public API of cgmperm.
//
//   #include "core/api.hpp"
//
//   cgp::cgm::machine mach(/*p=*/8);
//   std::vector<std::uint64_t> v = ...;
//   auto shuffled = cgp::core::permute_global(mach, v);
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#pragma once

#include "cgm/collectives.hpp"   // IWYU pragma: export
#include "core/apply.hpp"        // IWYU pragma: export
#include "core/backend.hpp"      // IWYU pragma: export
#include "core/executor.hpp"     // IWYU pragma: export
#include "core/plan.hpp"         // IWYU pragma: export
#include "core/registry.hpp"     // IWYU pragma: export
#include "cgm/cost.hpp"          // IWYU pragma: export
#include "cgm/pro.hpp"           // IWYU pragma: export
#include "cgm/sample_sort.hpp"   // IWYU pragma: export
#include "cgm/machine.hpp"       // IWYU pragma: export
#include "core/comm_matrix.hpp"  // IWYU pragma: export
#include "core/driver.hpp"       // IWYU pragma: export
#include "core/parallel_matrix.hpp"  // IWYU pragma: export
#include "core/permute.hpp"      // IWYU pragma: export
#include "core/repeat.hpp"       // IWYU pragma: export
#include "core/routing.hpp"      // IWYU pragma: export
#include "core/sample_matrix.hpp"  // IWYU pragma: export
#include "core/sort_permute.hpp"  // IWYU pragma: export
#include "em/async_shuffle.hpp"  // IWYU pragma: export
#include "em/block_device.hpp"   // IWYU pragma: export
#include "em/shuffle.hpp"        // IWYU pragma: export
#include "hyp/multivariate.hpp"  // IWYU pragma: export
#include "hyp/sample.hpp"        // IWYU pragma: export
#include "seq/blocked_shuffle.hpp"  // IWYU pragma: export
#include "seq/fisher_yates.hpp"  // IWYU pragma: export
#include "seq/rao_sandelius.hpp"  // IWYU pragma: export
#include "smp/engine.hpp"        // IWYU pragma: export
#include "smp/parallel_split.hpp"  // IWYU pragma: export
#include "smp/thread_pool.hpp"   // IWYU pragma: export
