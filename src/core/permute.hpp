// core/permute.hpp
//
// Algorithm 1 of the paper -- the headline result: a uniform random
// permutation of n = p*M items distributed over p processors, with O(M + p)
// memory, time, random numbers and bandwidth per processor (Theorem 1).
//
//   1. every source processor shuffles its block locally (Fisher-Yates);
//   2. the processors cooperatively sample a random communication matrix A
//      from the exact permutation-induced distribution (Problem 2;
//      Algorithm 5, Algorithm 6, or replicated sequential sampling);
//   3. one all-to-all superstep routes a_{i,j} items from P_i to P'_j;
//   4. every target processor shuffles what it received.
//
// The two local shuffles make every permutation *realizing* A equally
// likely; the matrix law makes every A correctly likely; together the
// result is exactly uniform over all n! permutations (Propositions 1, 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cgm/collectives.hpp"
#include "cgm/machine.hpp"
#include "core/parallel_matrix.hpp"
#include "core/sample_matrix.hpp"
#include "seq/fisher_yates.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::core {

/// Which algorithm samples the communication matrix.
enum class matrix_algorithm : std::uint8_t {
  optimal,     ///< Algorithm 6: Theta(p) per processor (the paper's result)
  logp,        ///< Algorithm 5: Theta(p log p) per processor
  replicated,  ///< shared-stream sequential sampling: Theta(p^2) per processor
};

/// Options for the parallel permutation.
struct permute_options {
  matrix_algorithm matrix = matrix_algorithm::optimal;
  matrix_options sampling{};  ///< sequential sampling knobs (split rule, policy)
};

/// Sample this processor's row of the communication matrix for equal block
/// size `block` using the selected algorithm.
[[nodiscard]] inline std::vector<std::uint64_t> sample_matrix_row(cgm::context& ctx,
                                                                  std::uint64_t block,
                                                                  const permute_options& opt) {
  switch (opt.matrix) {
    case matrix_algorithm::logp:
      return sample_matrix_logp(ctx, block, opt.sampling);
    case matrix_algorithm::replicated: {
      const std::vector<std::uint64_t> margins(ctx.nprocs(), block);
      return sample_matrix_replicated(ctx, margins, margins, opt.sampling);
    }
    case matrix_algorithm::optimal:
    default:
      return sample_matrix_optimal(ctx, block, opt.sampling);
  }
}

/// Algorithm 1 (SPMD body; equal blocks).  `local` is this processor's
/// block B_id of M items; returns the processor's block of the globally
/// uniformly permuted vector (also M items).  Collective: every processor
/// of the machine must call it with the same options and block size.
template <typename T>
[[nodiscard]] std::vector<T> parallel_random_permutation(cgm::context& ctx, std::vector<T> local,
                                                         const permute_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint32_t p = ctx.nprocs();
  const std::uint64_t block = local.size();
  ctx.note_memory(local.size() * sizeof(T));

  // (1) local pre-shuffle: makes "which a_ij items go to P_j" a uniform
  // choice without any further randomness.
  seq::fisher_yates(ctx.rng(), std::span<T>(local));
  ctx.charge(block);

  // (2) the communication matrix row a_{id, *}.
  const std::vector<std::uint64_t> row = sample_matrix_row(ctx, block, opt);
  CGP_ASSERT(row.size() == p);
  CGP_ASSERT(span_sum(row) == block);

  // (3) all-to-all: consecutive segments of the shuffled block, sized by
  // the row.  (Proposition 1: row/column sums keep this balanced.)
  std::vector<std::vector<T>> chunks(p);
  {
    std::uint64_t off = 0;
    for (std::uint32_t d = 0; d < p; ++d) {
      const auto len = static_cast<std::size_t>(row[d]);
      chunks[d].assign(local.begin() + static_cast<std::ptrdiff_t>(off),
                       local.begin() + static_cast<std::ptrdiff_t>(off + len));
      off += len;
    }
    CGP_ASSERT(off == block);
  }
  const std::vector<std::vector<T>> received =
      cgm::all_to_all_v(ctx, std::span<const std::vector<T>>(chunks));

  // (4) concatenate in source order and post-shuffle: mixes the received
  // segments uniformly.
  std::vector<T> result;
  result.reserve(block);
  for (const auto& seg : received) result.insert(result.end(), seg.begin(), seg.end());
  CGP_ASSERT(result.size() == block);
  ctx.note_memory(2 * result.size() * sizeof(T));
  seq::fisher_yates(ctx.rng(), std::span<T>(result));
  ctx.charge(block);

  return result;
}

/// General-margins variant (Problem 1 with arbitrary source/target blocks
/// m_i, m'_j).  The matrix is sampled with the replicated algorithm (the
/// parallel samplers cover the symmetric case the paper focuses on).
/// `target_size` is this processor's m'_id.
template <typename T>
[[nodiscard]] std::vector<T> parallel_random_permutation_general(cgm::context& ctx,
                                                                 std::vector<T> local,
                                                                 std::uint64_t target_size,
                                                                 const matrix_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint32_t p = ctx.nprocs();

  // Collect both margin vectors (O(p) words per processor: within budget).
  const std::uint64_t sizes[2] = {local.size(), target_size};
  const auto all_sizes = cgm::all_gather(ctx, std::span<const std::uint64_t>(sizes, 2));
  std::vector<std::uint64_t> row_margins(p);
  std::vector<std::uint64_t> col_margins(p);
  for (std::uint32_t i = 0; i < p; ++i) {
    row_margins[i] = all_sizes[i][0];
    col_margins[i] = all_sizes[i][1];
  }
  CGP_ASSERT(span_sum(row_margins) == span_sum(col_margins));

  seq::fisher_yates(ctx.rng(), std::span<T>(local));
  ctx.charge(local.size());

  const std::vector<std::uint64_t> row = sample_matrix_replicated(ctx, row_margins, col_margins, opt);

  std::vector<std::vector<T>> chunks(p);
  std::uint64_t off = 0;
  for (std::uint32_t d = 0; d < p; ++d) {
    const auto len = static_cast<std::size_t>(row[d]);
    chunks[d].assign(local.begin() + static_cast<std::ptrdiff_t>(off),
                     local.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
  }
  CGP_ASSERT(off == local.size());
  const auto received = cgm::all_to_all_v(ctx, std::span<const std::vector<T>>(chunks));

  std::vector<T> result;
  result.reserve(target_size);
  for (const auto& seg : received) result.insert(result.end(), seg.begin(), seg.end());
  CGP_ASSERT(result.size() == target_size);
  seq::fisher_yates(ctx.rng(), std::span<T>(result));
  ctx.charge(result.size());
  return result;
}

}  // namespace cgp::core
