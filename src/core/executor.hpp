// core/executor.hpp
//
// The executor half of the plan/executor core: a type-erased, span-based
// execution interface that every backend (sequential, smp, em, cgm,
// cgm_simulator) implements uniformly, replacing the old enum switch in
// core/backend.hpp.  Two entry points:
//
//   * `shuffle_raw` / `shuffle<T>` -- uniformly permute n records of
//     elem_bytes each IN PLACE.  The smp hot path runs straight on the
//     caller's span with zero extra allocation or copying; record types
//     are reconstituted from (pointer, elem_bytes) through fixed-size
//     byte-array instantiations.
//   * `fill_random_permutation` -- write a uniform permutation of
//     {0..n-1} into the caller's span.  The sequential and smp executors
//     iota the span and shuffle it in place (no copy-in/copy-out round
//     trip); the em executor streams it off the device with one bulk
//     read_items call straight into caller memory.
//
// Value-independence is what makes the type erasure exact: every engine
// moves records by POSITION (RNG-keyed labels, swaps, offsets), never by
// value, so permuting records as byte arrays of the same size -- or
// gathering through the index permutation the same engine would produce
// -- yields bit-for-bit the result of permuting the typed records
// directly.
//
// Executors are cheap per-call shells; the expensive state (thread
// pools) comes from the process-wide registry (core/registry.hpp) unless
// the caller hands in an engine explicitly.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

#include "cgm/distributed.hpp"
#include "cgm/machine.hpp"
#include "comm/transport.hpp"
#include "core/apply.hpp"
#include "core/driver.hpp"
#include "core/plan.hpp"
#include "core/registry.hpp"
#include "em/async_shuffle.hpp"
#include "em/block_device.hpp"
#include "obs/trace.hpp"
#include "prp/cipher.hpp"
#include "rng/philox.hpp"
#include "rng/uniform.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/engine.hpp"
#include "util/assert.hpp"

namespace cgp::core {

/// Options for the backend-dispatched entry points (core/backend.hpp).
struct backend_options {
  backend which = backend::smp;
  /// Degree of parallelism: virtual processors (cgm_simulator), transport
  /// ranks (cgm), or worker threads (smp, em); 0 picks a default (4
  /// virtual processors / 1 rank / hardware concurrency).  Ignored by
  /// `sequential` and by `automatic` (the planner chooses).
  std::uint32_t parallelism = 0;
  std::uint64_t seed = 0xC0A2537E5EEDull;  ///< same default as cgm::machine
  permute_options cgm{};                   ///< CGM *simulator* pipeline knobs
  smp::engine_options smp_engine{};        ///< SMP engine knobs (threads is
                                           ///< overridden by `parallelism`)
  /// Transport the distributed cgm backend runs on; nullptr = the
  /// registry's shared transport for the resolved rank count (the
  /// loopback transport at one rank).  When set, it decides the rank
  /// count and `parallelism` is ignored for the cgm backend.
  comm::transport* transport = nullptr;
  /// Distributed cgm engine knobs (fan_out / cache_items / sampling
  /// define the permutation law, shared verbatim with the smp engine).
  cgm::distributed_options cgm_engine{};
  /// Reuse an existing SMP engine (and its thread pool) instead of the
  /// registry's shared one; when set, `parallelism` and `smp_engine` are
  /// ignored for the smp backend, and the em backend runs its computation
  /// on the engine's pool.
  smp::engine* engine = nullptr;
  /// Resource accounting of the run (cgm_simulator only).
  cgm::run_stats* stats_out = nullptr;
  /// Out-of-core engine knobs (em only): M, buffer depth, spill policy.
  em::async_options em_engine{};
  /// Items per simulated device block, the B of the I/O model (em only).
  /// em_engine.memory_items must stay >= 4 * em_block_items.
  std::uint32_t em_block_items = 4096;
  /// Transfer accounting of the run (em only); now includes the payload /
  /// identity streaming onto and off the device, which the old poke/peek
  /// path silently omitted.
  em::async_report* em_report_out = nullptr;
  /// Cipher knobs of the prp backend (round count; the permutation is a
  /// function of them).
  prp::cipher_options prp_engine{};

  // --- planner inputs (backend::automatic) ------------------------------
  /// RAM budget in bytes; 0 = unconstrained.  Below n * sizeof(T) the
  /// planner is forced out of core.
  std::uint64_t memory_budget_bytes = 0;
  /// Expected draws of this shape (amortizes dispatch overhead in the
  /// planner's smp estimate).
  std::uint64_t repetitions = 1;
  /// Fraction of the output the caller will actually read, in (0, 1];
  /// 1.0 = dense (the default).  Declaring < 1.0 lets the planner offer
  /// the O(1)-memory prp backend, which pays only for positions read
  /// (see workload::accessed_fraction for the law caveat).
  double accessed_fraction = 1.0;
  /// Machine profile for the planner; nullptr = machine_profile::detect().
  /// Point at a machine_profile::calibrate() result for measured costs.
  const machine_profile* profile = nullptr;
  /// If set, receives the resolved plan (also for explicit backends).
  permutation_plan* plan_out = nullptr;
};

namespace detail {

template <std::size_t N>
using record = std::array<unsigned char, N>;

/// Reconstitute a typed span from (pointer, elem_bytes) for the common
/// record sizes; `fallback()` handles the rest.  Viewing a trivially
/// copyable T through same-sized unsigned-char arrays is the standard
/// type-erasure idiom: every element access is an unsigned char glvalue
/// (which may alias anything), and the engines only ever swap/copy whole
/// records.  Strictly, pointer arithmetic on the punned array type is
/// outside the letter of the aliasing rules; it is universally supported
/// (allocator/storage-reuse code depends on it) and the alternative --
/// memcpy through typed temporaries -- would forfeit the zero-copy span
/// contract.
template <typename F, typename G>
void with_record_span(void* data, std::uint64_t n, std::uint32_t elem_bytes, F&& f,
                      G&& fallback) {
  const auto span_of = [&](auto tag) {
    using R = decltype(tag);
    return std::span<R>(static_cast<R*>(data), static_cast<std::size_t>(n));
  };
  switch (elem_bytes) {
    case 1: f(span_of(record<1>{})); return;
    case 2: f(span_of(record<2>{})); return;
    case 4: f(span_of(record<4>{})); return;
    case 8: f(span_of(record<8>{})); return;
    case 12: f(span_of(record<12>{})); return;
    case 16: f(span_of(record<16>{})); return;
    case 24: f(span_of(record<24>{})); return;
    case 32: f(span_of(record<32>{})); return;
    default: fallback(); return;
  }
}

/// Like with_record_span but only for records that pack into one device
/// word (<= 8 bytes), for the em packed streaming path.
template <typename F, typename G>
void with_word_record_span(void* data, std::uint64_t n, std::uint32_t elem_bytes, F&& f,
                           G&& fallback) {
  const auto span_of = [&](auto tag) {
    using R = decltype(tag);
    return std::span<R>(static_cast<R*>(data), static_cast<std::size_t>(n));
  };
  switch (elem_bytes) {
    case 1: f(span_of(record<1>{})); return;
    case 2: f(span_of(record<2>{})); return;
    case 3: f(span_of(record<3>{})); return;
    case 4: f(span_of(record<4>{})); return;
    case 5: f(span_of(record<5>{})); return;
    case 6: f(span_of(record<6>{})); return;
    case 7: f(span_of(record<7>{})); return;
    case 8: f(span_of(record<8>{})); return;
    default: fallback(); return;
  }
}

/// Fisher-Yates on raw records of arbitrary size: the identical draw
/// sequence as seq::fisher_yates (one uniform_below per step, consumed
/// whether or not the swap is trivial), so it extends the sequential
/// backend's bit-exact behaviour to record sizes outside the instantiated
/// set.
template <rng::random_engine64 Engine>
void fisher_yates_raw(Engine& engine, unsigned char* base, std::uint64_t n,
                      std::uint32_t elem_bytes) {
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng::uniform_below(engine, i);
    if (j != i - 1) {
      unsigned char* a = base + (i - 1) * elem_bytes;
      unsigned char* b = base + j * elem_bytes;
      std::swap_ranges(a, a + elem_bytes, b);
    }
  }
}

/// In-place in-RAM gather through an index permutation: data[i] becomes
/// data[pi[i]], staging one full payload copy.  Shared by the smp and cgm
/// fallbacks for record sizes outside the instantiated set -- exact
/// because those engines move records by position, never by value.
inline void gather_in_ram(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                          std::span<const std::uint64_t> pi) {
  auto* base = static_cast<unsigned char*>(data);
  const std::vector<unsigned char> tmp(base, base + n * elem_bytes);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::memcpy(base + i * elem_bytes, tmp.data() + pi[i] * elem_bytes, elem_bytes);
  }
}

}  // namespace detail

/// Type-erased execution interface all backends implement.
class executor {
 public:
  virtual ~executor() = default;

  [[nodiscard]] virtual backend kind() const noexcept = 0;

  /// Uniformly permute `n` records of `elem_bytes` bytes each, in place.
  virtual void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                           std::uint64_t seed) = 0;

  /// Write a uniform permutation of {0..out.size()-1} into `out` in place.
  virtual void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) = 0;

  /// Typed convenience over shuffle_raw (zero-copy: runs on the span).
  template <typename T>
  void shuffle(std::span<T> data, std::uint64_t seed) {
    static_assert(std::is_trivially_copyable_v<T>);
    shuffle_raw(data.data(), data.size(), static_cast<std::uint32_t>(sizeof(T)), seed);
  }
};

/// seq::fisher_yates on the stream philox(seed, 0).
class sequential_executor final : public executor {
 public:
  [[nodiscard]] backend kind() const noexcept override { return backend::sequential; }

  void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                   std::uint64_t seed) override {
    const obs::span sp("fisher-yates", "exec");
    rng::philox4x64 e(seed, 0);
    detail::with_record_span(
        data, n, elem_bytes, [&](auto span) { seq::fisher_yates(e, span); },
        [&] { detail::fisher_yates_raw(e, static_cast<unsigned char*>(data), n, elem_bytes); });
  }

  void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) override {
    const obs::span sp("fisher-yates", "exec");
    std::iota(out.begin(), out.end(), 0);
    rng::philox4x64 e(seed, 0);
    seq::fisher_yates(e, out);
  }
};

/// The native shared-memory engine (borrowed from the registry or the
/// caller); bit-reproducible in (seed, engine options), thread-count
/// independent.
class smp_executor final : public executor {
 public:
  explicit smp_executor(smp::engine& eng) : eng_(eng) {}

  [[nodiscard]] backend kind() const noexcept override { return backend::smp; }

  void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                   std::uint64_t seed) override {
    detail::with_record_span(
        data, n, elem_bytes, [&](auto span) { eng_.shuffle(span, seed); },
        [&] {
          // Record sizes outside the instantiated set: gather through the
          // engine's index permutation -- identical output, one extra pass.
          detail::gather_in_ram(data, n, elem_bytes, eng_.random_permutation(n, seed));
        });
  }

  void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) override {
    std::iota(out.begin(), out.end(), 0);
    eng_.shuffle(out, seed);
  }

 private:
  smp::engine& eng_;
};

/// The model-faithful virtual machine; counts resources into `stats_out`.
class cgm_simulator_executor final : public executor {
 public:
  cgm_simulator_executor(std::uint32_t procs, permute_options opt, cgm::run_stats* stats_out)
      : procs_(procs), opt_(opt), stats_out_(stats_out) {}

  [[nodiscard]] backend kind() const noexcept override { return backend::cgm_simulator; }

  void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                   std::uint64_t seed) override {
    detail::with_record_span(
        data, n, elem_bytes,
        [&](auto span) {
          using R = typename decltype(span)::value_type;
          std::vector<R> v(span.begin(), span.end());
          cgm::machine mach(procs_, seed);
          v = permute_global(mach, v, opt_, stats_out_);
          std::copy(v.begin(), v.end(), span.begin());
        },
        [&] {
          cgm::machine mach(procs_, seed);
          detail::gather_in_ram(data, n, elem_bytes,
                                random_permutation_global(mach, n, opt_, stats_out_));
        });
  }

  void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) override {
    std::iota(out.begin(), out.end(), 0);
    shuffle_raw(out.data(), out.size(), sizeof(std::uint64_t), seed);
  }

 private:
  std::uint32_t procs_;
  permute_options opt_;
  cgm::run_stats* stats_out_;
};

/// The distributed CGM engine over a pluggable transport
/// (cgm/distributed.hpp): the real coarse-grained backend.  Output is a
/// pure function of (seed, n, engine options) -- independent of the rank
/// count and the transport -- and inputs at or below the cache cutoff
/// reproduce `backend::sequential` bit for bit (they are one leaf on
/// philox(seed, 0)).
class cgm_executor final : public executor {
 public:
  cgm_executor(comm::transport& transport, cgm::distributed_options opt)
      : transport_(transport), opt_(opt) {}

  [[nodiscard]] backend kind() const noexcept override { return backend::cgm; }

  void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                   std::uint64_t seed) override {
    if (n < 2) return;
    detail::with_record_span(
        data, n, elem_bytes,
        [&](auto span) { cgm::transport_shuffle(transport_, span, seed, opt_); },
        [&] {
          // Record sizes outside the instantiated set: gather through the
          // index permutation the same engine produces over the same
          // transport -- identical output by value-independence.
          std::vector<std::uint64_t> pi(n);
          std::iota(pi.begin(), pi.end(), 0);
          cgm::transport_shuffle(transport_, std::span<std::uint64_t>(pi), seed, opt_);
          detail::gather_in_ram(data, n, elem_bytes, pi);
        });
  }

  void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) override {
    std::iota(out.begin(), out.end(), 0);
    cgm::transport_shuffle(transport_, out, seed, opt_);
  }

 private:
  comm::transport& transport_;
  cgm::distributed_options opt_;
};

/// The O(1)-memory cipher backend (src/prp/): pi is EVALUATED, never
/// stored.  `fill_random_permutation` writes eval_range(0, out) of a
/// prp::cipher keyed by (seed, n) -- the same (seed, n) contract as every
/// other backend, bit-reproducible across SIMD paths and hosts -- and
/// `shuffle_raw` gathers through the same cipher in O(chunk) index
/// memory (one staged payload copy, like the in-RAM gather fallbacks, but
/// never a materialized index vector).  The full power of the backend is
/// the library surface on top: cipher::pi / pi_inverse point lookups and
/// prp::shard_view lazy slices, where nothing of size n ever exists.
///
/// Law caveat: the output law is a keyed PRP family -- chi-square-uniform
/// (tests/test_prp.cpp) but not the exact-uniform law of the
/// materializing engines -- which is why the planner only offers this
/// backend to workloads declaring sparse access.
class prp_executor final : public executor {
 public:
  explicit prp_executor(prp::cipher_options opt) : opt_(opt) {}

  [[nodiscard]] backend kind() const noexcept override { return backend::prp; }

  void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                   std::uint64_t seed) override {
    if (n < 2) return;
    const obs::span sp("cipher-gather", "exec");
    const prp::cipher c(seed, n, opt_);
    // data[i] <- tmp[pi(i)], pi evaluated in O(chunk) batches: shuffling
    // an iota span therefore reproduces fill_random_permutation exactly.
    auto* base = static_cast<unsigned char*>(data);
    const std::vector<unsigned char> tmp(base, base + n * elem_bytes);
    std::array<std::uint64_t, 4096> idx;
    for (std::uint64_t at = 0; at < n; at += idx.size()) {
      const std::uint64_t take = std::min<std::uint64_t>(idx.size(), n - at);
      c.eval_range(at, std::span<std::uint64_t>(idx.data(), take));
      for (std::uint64_t j = 0; j < take; ++j) {
        std::memcpy(base + (at + j) * elem_bytes, tmp.data() + idx[j] * elem_bytes,
                    elem_bytes);
      }
    }
  }

  void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) override {
    if (out.empty()) return;
    const obs::span sp("cipher-eval", "exec");
    const prp::cipher c(seed, out.size(), opt_);
    c.eval_range(0, out);
  }

 private:
  prp::cipher_options opt_;
};

/// The resolved em execution configuration: plan geometry with
/// per-option fallbacks, plus the compute pool.  The single source of
/// truth shared by make_executor's em branch and the service layer's
/// device-backed streams (svc/server.cpp) -- resolving through one
/// function is what keeps a streamed job's device content bit-identical
/// to what fill_random_permutation would read back.
struct em_exec_config {
  em::async_options aopt{};
  std::uint32_t block_items = 0;
  smp::thread_pool* pool = nullptr;
};

[[nodiscard]] inline em_exec_config resolve_em_config(const permutation_plan& plan,
                                                      const backend_options& opt) {
  em_exec_config cfg;
  cfg.aopt = opt.em_engine;
  cfg.aopt.memory_items =
      plan.em_memory_items != 0 ? plan.em_memory_items : opt.em_engine.memory_items;
  cfg.block_items = plan.em_block_items != 0 ? plan.em_block_items : opt.em_block_items;
  cfg.pool = opt.engine != nullptr ? &opt.engine->pool() : &shared_pool(plan.threads);
  return cfg;
}

/// A fresh device holding a uniform permutation of {0..n-1}: the
/// identity streamed on, shuffled in place by the async em engine -- the
/// em executor's native fill mode up to (but not including) its final
/// bulk readback.  `rep_out`, if given, receives the engine report with
/// the identity-fill transfers folded in (the readback, if any, is the
/// caller's to count).
[[nodiscard]] inline std::unique_ptr<em::block_device> em_shuffled_identity_device(
    std::uint64_t n, std::uint64_t seed, const em_exec_config& cfg,
    em::async_report* rep_out = nullptr) {
  auto dev = std::make_unique<em::block_device>(n, cfg.block_items);
  const std::uint64_t t0 = dev->stats().transfers();
  {
    const obs::span sp("fill", "exec");
    fill_iota_streamed(*dev, n, cfg.aopt.memory_items);
  }
  const std::uint64_t t1 = dev->stats().transfers();
  em::async_report rep;
  {
    const obs::span sp("shuffle", "exec");
    rep = em::async_em_shuffle(*dev, n, seed, *cfg.pool, cfg.aopt);
  }
  rep.block_transfers += t1 - t0;
  if (rep_out != nullptr) *rep_out = rep;
  return dev;
}

/// The out-of-core engine behind a streaming apply layer (core/apply.hpp):
/// payloads of <= 8 bytes stream onto the device packed one-per-word and
/// are shuffled there directly; larger records gather through an on-device
/// index permutation streamed in O(M) chunks.  Either way no full-n index
/// vector ever exists in RAM, and every transfer goes through the
/// accounted bulk item-range calls.
class em_executor final : public executor {
 public:
  em_executor(em::async_options aopt, std::uint32_t block_items, smp::thread_pool& pool,
              em::async_report* report_out)
      : aopt_(aopt), block_items_(block_items), pool_(pool), report_out_(report_out) {}

  [[nodiscard]] backend kind() const noexcept override { return backend::em; }

  void shuffle_raw(void* data, std::uint64_t n, std::uint32_t elem_bytes,
                   std::uint64_t seed) override {
    if (n < 2) return;
    detail::with_word_record_span(
        data, n, elem_bytes,
        [&](auto span) {
          using R = typename decltype(span)::value_type;
          em::block_device dev(n, block_items_);
          const std::uint64_t t0 = dev.stats().transfers();
          {
            const obs::span sp("fill", "exec");
            write_packed_streamed(dev, std::span<const R>(span), aopt_.memory_items);
          }
          const std::uint64_t t1 = dev.stats().transfers();
          em::async_report rep;
          {
            const obs::span sp("shuffle", "exec");
            rep = em::async_em_shuffle(dev, n, seed, pool_, aopt_);
          }
          const std::uint64_t t2 = dev.stats().transfers();
          {
            const obs::span sp("readback", "exec");
            read_packed_streamed(dev, span, aopt_.memory_items);
          }
          rep.block_transfers += (t1 - t0) + (dev.stats().transfers() - t2);
          if (report_out_ != nullptr) *report_out_ = rep;
        },
        [&] {
          // Records wider than a device word: the payload streams onto
          // its own device (whole words per record), the index
          // permutation is built out of core, and the gather reads each
          // source record back off the payload device -- O(M) resident
          // staging end to end, no full-n pi vector and no RAM payload
          // copy, at the price of Theta(n) random-read transfers for the
          // gather (see core/apply.hpp).
          auto* base = static_cast<unsigned char*>(data);
          const std::uint64_t wpr = words_per_record(elem_bytes);
          em::block_device payload_dev(n * wpr, block_items_);
          em::block_device pi_dev(n, block_items_);
          const std::uint64_t t0 = pi_dev.stats().transfers();
          {
            const obs::span sp("fill", "exec");
            write_records_streamed(payload_dev, base, n, elem_bytes, aopt_.memory_items);
            fill_iota_streamed(pi_dev, n, aopt_.memory_items);
          }
          const std::uint64_t t1 = pi_dev.stats().transfers();
          em::async_report rep;
          {
            const obs::span sp("shuffle", "exec");
            rep = em::async_em_shuffle(pi_dev, n, seed, pool_, aopt_);
          }
          const std::uint64_t t2 = pi_dev.stats().transfers();
          {
            const obs::span sp("readback", "exec");
            gather_records_streamed(pi_dev, payload_dev, base, n, elem_bytes,
                                    aopt_.memory_items);
          }
          rep.block_transfers += (t1 - t0) + (pi_dev.stats().transfers() - t2) +
                                 payload_dev.stats().transfers();
          if (report_out_ != nullptr) *report_out_ = rep;
        });
  }

  void fill_random_permutation(std::span<std::uint64_t> out, std::uint64_t seed) override {
    const std::uint64_t n = out.size();
    em::async_report rep;
    const auto dev = em_shuffled_identity_device(n, seed, {aopt_, block_items_, &pool_}, &rep);
    const std::uint64_t t = dev->stats().transfers();
    {
      const obs::span sp("readback", "exec");
      dev->read_items(0, out);  // one bulk call, straight into caller memory
    }
    rep.block_transfers += dev->stats().transfers() - t;
    if (report_out_ != nullptr) *report_out_ = rep;
  }

 private:
  em::async_options aopt_;
  std::uint32_t block_items_;
  smp::thread_pool& pool_;
  em::async_report* report_out_;
};

/// Resolve the plan for a request: explicit backends get a trivial plan
/// mirroring their options (so plan_out is always populated and the em
/// geometry is always visible); `automatic` runs the cost-model planner.
[[nodiscard]] inline permutation_plan resolve_plan(std::uint64_t n, std::uint32_t elem_bytes,
                                                   const backend_options& opt) {
  if (opt.which == backend::automatic) {
    workload w;
    w.n = n;
    w.element_bytes = elem_bytes;
    w.memory_budget_bytes = opt.memory_budget_bytes;
    w.repetitions = opt.repetitions;
    w.accessed_fraction = opt.accessed_fraction;
    return plan_permutation(w, opt.profile != nullptr ? *opt.profile
                                                      : machine_profile::detect());
  }
  // Normalize 0 (= "default") to the count the executor will actually
  // run with, so plan_out reports real worker counts for explicit
  // backends too.
  const auto hw_threads = [](std::uint32_t t) {
    if (t != 0) return t;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
  };
  permutation_plan plan;
  plan.chosen = opt.which;
  switch (opt.which) {
    case backend::cgm_simulator:
      plan.threads = opt.parallelism == 0 ? 4 : opt.parallelism;
      break;
    case backend::cgm:
      // The transport decides the rank count; without one, parallelism
      // (default 1: the loopback transport, where cgm == sequential).
      plan.threads = opt.transport != nullptr ? opt.transport->size()
                     : opt.parallelism != 0   ? opt.parallelism
                                              : 1;
      break;
    case backend::smp:
      plan.threads = opt.engine != nullptr
                         ? opt.engine->threads()
                         : hw_threads(opt.parallelism != 0 ? opt.parallelism
                                                           : opt.smp_engine.threads);
      break;
    case backend::em:
      plan.threads = opt.engine != nullptr ? opt.engine->threads() : hw_threads(opt.parallelism);
      plan.em_memory_items = opt.em_engine.memory_items;
      plan.em_block_items = opt.em_block_items;
      break;
    case backend::prp:
      plan.threads = 1;
      plan.accessed_fraction = opt.accessed_fraction;
      break;
    default:
      plan.threads = 1;
      break;
  }
  return plan;
}

/// Build the executor that realizes `plan` under the per-call options.
[[nodiscard]] inline std::unique_ptr<executor> make_executor(const permutation_plan& plan,
                                                             const backend_options& opt) {
  switch (plan.chosen) {
    case backend::sequential:
      return std::make_unique<sequential_executor>();
    case backend::smp: {
      if (opt.engine != nullptr) return std::make_unique<smp_executor>(*opt.engine);
      smp::engine_options eopt = opt.smp_engine;
      if (opt.which == backend::automatic) {
        eopt.threads = plan.threads;
      } else if (opt.parallelism != 0) {
        eopt.threads = opt.parallelism;
      }
      return std::make_unique<smp_executor>(shared_engine(eopt));
    }
    case backend::cgm_simulator:
      return std::make_unique<cgm_simulator_executor>(plan.threads, opt.cgm, opt.stats_out);
    case backend::cgm: {
      comm::transport& tr =
          opt.transport != nullptr ? *opt.transport : shared_transport(plan.threads);
      return std::make_unique<cgm_executor>(tr, opt.cgm_engine);
    }
    case backend::em: {
      const em_exec_config cfg = resolve_em_config(plan, opt);
      return std::make_unique<em_executor>(cfg.aopt, cfg.block_items, *cfg.pool,
                                           opt.em_report_out);
    }
    case backend::prp:
      return std::make_unique<prp_executor>(opt.prp_engine);
    case backend::automatic:
    default:
      CGP_ASSERT(false && "resolve_plan never leaves backend::automatic in a plan");
      return std::make_unique<sequential_executor>();
  }
}

}  // namespace cgp::core
