// core/sort_permute.hpp
//
// The sorting-based parallel random permutation of Goodrich [1997], the
// related-work baseline of the paper's Section 1: "this algorithm has a
// superlinear total cost (log n per item) and is not work-optimal".
//
// Tag every item with a random 128-bit key and sort by key with the
// coarse-grained sample sort; the value order of the sorted sequence is a
// uniform permutation conditional on key distinctness (collision
// probability < n^2 / 2^129 -- astronomically below every statistical test
// this library can run, but not *exactly* zero, which is itself an
// interesting contrast with Algorithm 1's exact uniformity).
//
// Its purpose here is quantitative: bench e11 measures its Theta(log n)
// work overhead and its transient 2x imbalance against Algorithm 1.
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/machine.hpp"
#include "cgm/sample_sort.hpp"
#include "util/assert.hpp"

namespace cgp::core {

namespace detail {

template <typename T>
struct keyed_item {
  std::uint64_t k0;
  std::uint64_t k1;
  T value;

  friend bool operator<(const keyed_item& a, const keyed_item& b) noexcept {
    if (a.k0 != b.k0) return a.k0 < b.k0;
    return a.k1 < b.k1;
  }
};

}  // namespace detail

/// Permute the distributed vector by sorting random 128-bit keys (SPMD
/// body; collective).  Returns a block of the same size as the input.
template <typename T>
[[nodiscard]] std::vector<T> parallel_sort_permutation(cgm::context& ctx, std::vector<T> local) {
  static_assert(std::is_trivially_copyable_v<T>);
  using item = detail::keyed_item<T>;

  std::vector<item> keyed(local.size());
  for (std::size_t i = 0; i < local.size(); ++i)
    keyed[i] = item{ctx.rng()(), ctx.rng()(), local[i]};
  ctx.charge(local.size());
  const std::uint64_t m = local.size();
  local.clear();
  local.shrink_to_fit();

  const auto sorted = cgm::sample_sort_balanced(ctx, std::move(keyed), m);

  std::vector<T> out;
  out.reserve(sorted.size());
  for (const auto& it : sorted) out.push_back(it.value);
  ctx.charge(out.size());
  return out;
}

}  // namespace cgp::core
