#include "core/registry.hpp"

#include <array>
#include <bit>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cgp::core {

namespace {

// Two configurations share an engine iff every knob that can change the
// engine's OUTPUT or its pool agrees.  threads is normalized first so the
// "default" and "explicitly hardware concurrency" spellings coincide.
bool same_config(const smp::engine_options& a, const smp::engine_options& b) {
  return a.threads == b.threads && a.fan_out == b.fan_out && a.cache_items == b.cache_items &&
         a.sampling.pol.how == b.sampling.pol.how &&
         a.sampling.pol.hin_sd_threshold == b.sampling.pol.hin_sd_threshold &&
         a.sampling.split == b.sampling.split &&
         a.sampling.recursive_rows == b.sampling.recursive_rows;
}

smp::engine_options normalized(smp::engine_options opt) {
  if (opt.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt.threads = hw == 0 ? 1 : hw;
  }
  return opt;
}

// One registry entry: the key is fixed at insertion (under the registry
// mutex), the payload is built exactly once OUTSIDE it via the per-node
// once_flag.  Concurrent first-touch calls for one configuration all rally
// on the same flag -- exactly one constructs, the rest block only on that
// construction -- while a slow construction (an engine spins up a whole
// thread pool) never holds the registry mutex, so lookups of other
// configurations proceed.  std::list keeps node addresses stable as later
// registrations grow the registry.
struct engine_node {
  explicit engine_node(smp::engine_options k) : key(k) {}
  smp::engine_options key;
  std::once_flag once;
  std::unique_ptr<smp::engine> engine;
};

struct transport_node {
  explicit transport_node(std::uint32_t r) : ranks(r) {}
  std::uint32_t ranks;
  std::once_flag once;
  std::unique_ptr<comm::transport> transport;
};

// Plan-cache key: the workload fields that enter plan_permutation plus the
// profile fingerprint (recalibration re-keys every entry).
using plan_key = std::array<std::uint64_t, 6>;

struct registry {
  std::mutex mutex;
  std::list<engine_node> engines;
  std::size_t engines_ready = 0;  // nodes whose construction completed
  std::list<transport_node> transports;

  // Process-wide machine profile (detect() on first touch).
  std::mutex profile_mutex;
  std::optional<machine_profile> profile;

  // Plan cache.  Bounded: a multi-tenant server can see arbitrarily many
  // distinct (n, elem) shapes, so on overflow the cache is cleared rather
  // than grown without limit -- correctness never depends on a hit.
  std::mutex plan_mutex;
  std::map<plan_key, permutation_plan> plans;
  std::size_t plan_lookups = 0;
  std::size_t plan_hits = 0;
};

constexpr std::size_t kPlanCacheCapacity = 4096;

registry& instance() {
  static registry reg;
  return reg;
}

}  // namespace

smp::engine& shared_engine(const smp::engine_options& opt) {
  const smp::engine_options key = normalized(opt);
  registry& reg = instance();
  engine_node* node = nullptr;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& n : reg.engines) {
      if (same_config(n.key, key)) {
        node = &n;
        break;
      }
    }
    if (node == nullptr) node = &reg.engines.emplace_back(key);
  }
  std::call_once(node->once, [&] {
    node->engine = std::make_unique<smp::engine>(key);
    const std::lock_guard<std::mutex> lock(reg.mutex);
    ++reg.engines_ready;
  });
  return *node->engine;
}

smp::thread_pool& shared_pool(std::uint32_t threads) {
  smp::engine_options opt;
  opt.threads = threads;
  return shared_engine(opt).pool();
}

comm::transport& shared_transport(std::uint32_t ranks) {
  if (ranks == 0) ranks = 1;
  registry& reg = instance();
  transport_node* node = nullptr;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& n : reg.transports) {
      if (n.ranks == ranks) {
        node = &n;
        break;
      }
    }
    if (node == nullptr) node = &reg.transports.emplace_back(ranks);
  }
  std::call_once(node->once, [&] {
    if (ranks == 1) {
      node->transport = std::make_unique<comm::loopback_transport>();
    } else {
      node->transport = std::make_unique<comm::threaded_transport>(ranks);
    }
  });
  return *node->transport;
}

std::size_t registered_engine_count() {
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.engines_ready;
}

machine_profile shared_profile() {
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.profile_mutex);
  if (!reg.profile.has_value()) reg.profile = machine_profile::detect();
  return *reg.profile;
}

machine_profile recalibrate_shared_profile() {
  // Calibration runs OUTSIDE the profile mutex (it takes milliseconds and
  // itself touches the engine registry); the swap at the end is atomic
  // under the lock.  Concurrent recalibrations race benignly: each
  // installs a complete measured profile.
  machine_profile measured;
  {
    const obs::span sp("calibrate", "plan");
    measured = machine_profile::calibrate();
  }
  obs::get_counter("core.profile.calibrations").add();
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.profile_mutex);
  reg.profile = measured;
  return measured;
}

permutation_plan cached_plan(const workload& w, const machine_profile& prof) {
  const plan_key key = {w.n, w.element_bytes, w.memory_budget_bytes, w.repetitions,
                        std::bit_cast<std::uint64_t>(w.accessed_fraction),
                        prof.fingerprint()};
  registry& reg = instance();
  static obs::counter& lookups = obs::get_counter("core.plan_cache.lookups");
  static obs::counter& hits = obs::get_counter("core.plan_cache.hits");
  lookups.add();
  {
    const std::lock_guard<std::mutex> lock(reg.plan_mutex);
    ++reg.plan_lookups;
    const auto it = reg.plans.find(key);
    if (it != reg.plans.end()) {
      ++reg.plan_hits;
      hits.add();
      return it->second;
    }
  }
  // Plan outside the lock: plan_permutation is pure arithmetic, but there
  // is no reason to serialize concurrent misses on distinct shapes.  Two
  // concurrent misses on one shape insert the identical plan.
  permutation_plan plan;
  {
    const obs::span sp("resolve", "plan");
    plan = plan_permutation(w, prof);
  }
  {
    const std::lock_guard<std::mutex> lock(reg.plan_mutex);
    if (reg.plans.size() >= kPlanCacheCapacity) reg.plans.clear();
    reg.plans.emplace(key, plan);
  }
  return plan;
}

std::size_t plan_cache_lookups() {
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.plan_mutex);
  return reg.plan_lookups;
}

std::size_t plan_cache_hits() {
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.plan_mutex);
  return reg.plan_hits;
}

}  // namespace cgp::core
