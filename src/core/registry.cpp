#include "core/registry.hpp"

#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

namespace cgp::core {

namespace {

// Two configurations share an engine iff every knob that can change the
// engine's OUTPUT or its pool agrees.  threads is normalized first so the
// "default" and "explicitly hardware concurrency" spellings coincide.
bool same_config(const smp::engine_options& a, const smp::engine_options& b) {
  return a.threads == b.threads && a.fan_out == b.fan_out && a.cache_items == b.cache_items &&
         a.sampling.pol.how == b.sampling.pol.how &&
         a.sampling.pol.hin_sd_threshold == b.sampling.pol.hin_sd_threshold &&
         a.sampling.split == b.sampling.split &&
         a.sampling.recursive_rows == b.sampling.recursive_rows;
}

smp::engine_options normalized(smp::engine_options opt) {
  if (opt.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opt.threads = hw == 0 ? 1 : hw;
  }
  return opt;
}

struct registry {
  std::mutex mutex;
  // std::list: node stability -- references handed out stay valid while
  // later registrations grow the registry.
  std::list<std::pair<smp::engine_options, smp::engine>> engines;
  std::list<std::pair<std::uint32_t, std::unique_ptr<comm::transport>>> transports;
};

registry& instance() {
  static registry reg;
  return reg;
}

}  // namespace

smp::engine& shared_engine(const smp::engine_options& opt) {
  const smp::engine_options key = normalized(opt);
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [cfg, eng] : reg.engines) {
    if (same_config(cfg, key)) return eng;
  }
  // Piecewise: smp::engine owns a thread_pool and is neither copyable nor
  // movable, so it must be constructed in place.
  reg.engines.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                           std::forward_as_tuple(key));
  return reg.engines.back().second;
}

smp::thread_pool& shared_pool(std::uint32_t threads) {
  smp::engine_options opt;
  opt.threads = threads;
  return shared_engine(opt).pool();
}

comm::transport& shared_transport(std::uint32_t ranks) {
  if (ranks == 0) ranks = 1;
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [count, tr] : reg.transports) {
    if (count == ranks) return *tr;
  }
  std::unique_ptr<comm::transport> made;
  if (ranks == 1) {
    made = std::make_unique<comm::loopback_transport>();
  } else {
    made = std::make_unique<comm::threaded_transport>(ranks);
  }
  reg.transports.emplace_back(ranks, std::move(made));
  return *reg.transports.back().second;
}

std::size_t registered_engine_count() {
  registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.engines.size();
}

}  // namespace cgp::core
