#include "core/parallel_matrix.hpp"

#include <array>

#include "hyp/multivariate.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::core {

namespace {

// Message tags private to this translation unit.
constexpr std::uint32_t kTagBeta = 0x0A15'0001;   // Algorithm 5 hand-off
constexpr std::uint32_t kTagHand = 0x0A16'0001;   // Algorithm 6: delta-dim quotas
constexpr std::uint32_t kTagSplit = 0x0A16'0002;  // Algorithm 6: nabla-dim split
constexpr std::uint32_t kTagRow = 0x0A16'0003;    // Algorithm 6: row redistribution

std::uint32_t levels_for(std::uint32_t p) noexcept {
  std::uint32_t levels = 0;
  while ((std::uint64_t{1} << levels) < p) ++levels;
  return levels;
}

// One multivariate hypergeometric draw on the processor's own stream, with
// the cost accounting Theorem 2 tracks (ops linear in the class count, one
// univariate h(.,.) call per internal node of the splitting tree).
void draw_group(cgm::context& ctx, std::span<const std::uint64_t> classes, std::uint64_t marks,
                std::span<std::uint64_t> out, const matrix_options& opt) {
  if (opt.recursive_rows) {
    hyp::sample_multivariate_recursive(ctx.rng(), classes, marks, out, opt.pol);
  } else {
    hyp::sample_multivariate_chain(ctx.rng(), classes, marks, out, opt.pol);
  }
  ctx.charge(classes.size());
  ctx.charge_hyp_call(classes.size() - 1);
}

}  // namespace

std::vector<std::uint64_t> sample_matrix_logp(cgm::context& ctx, std::uint64_t block,
                                              const matrix_options& opt) {
  const std::uint32_t p = ctx.nprocs();
  const std::uint32_t id = ctx.id();

  // `beta` = column quotas of this head's current row range [r, s); only
  // range heads hold a non-empty beta.
  std::vector<std::uint64_t> beta;
  if (id == 0) beta.assign(p, block);
  std::uint32_t r = 0;
  std::uint32_t s = p;

  // Fixed level count keeps every processor in barrier lockstep even when
  // odd range sizes make some ranges bottom out a level early.
  const std::uint32_t levels = levels_for(p);
  for (std::uint32_t level = 0; level < levels; ++level) {
    if (s - r > 1) {
      const std::uint32_t q = r + (s - r) / 2;
      if (id == r) {
        // The upper half [q, s) holds (s-q)*M items; draw how much of every
        // column's quota it takes (Proposition 6) and hand that to the new
        // head P_q.
        const std::uint64_t upper_total = static_cast<std::uint64_t>(s - q) * block;
        std::vector<std::uint64_t> to_upper(beta.size());
        draw_group(ctx, beta, upper_total, to_upper, opt);
        ctx.send(q, kTagBeta, std::span<const std::uint64_t>(to_upper));
        for (std::size_t j = 0; j < beta.size(); ++j) beta[j] -= to_upper[j];
        ctx.charge(beta.size());
      }
      ctx.sync();
      if (id == q) {
        auto msg = ctx.take(r, kTagBeta);
        CGP_ASSERT(msg.has_value());
        beta = msg->as<std::uint64_t>();
      }
      if (id >= q) {
        r = q;
      } else {
        s = q;
      }
    } else {
      ctx.sync();  // idle superstep: stay in lockstep
    }
  }

  CGP_ENSURES(beta.size() == p);
  CGP_ENSURES(span_sum(beta) == block);
  ctx.note_memory(beta.size() * sizeof(std::uint64_t));
  return beta;
}

std::vector<std::uint64_t> sample_matrix_optimal(cgm::context& ctx, std::uint64_t block,
                                                 const matrix_options& opt) {
  const std::uint32_t p = ctx.nprocs();
  const std::uint32_t id = ctx.id();

  // beta[d] holds dimension d's quotas over the index range [rd[d], sd[d])
  // of this processor's current block (d = 0: rows, d = 1: columns); only
  // range heads hold non-empty vectors.
  std::array<std::vector<std::uint64_t>, 2> beta;
  if (id == 0) {
    beta[0].assign(p, block);
    beta[1].assign(p, block);
  }
  std::uint32_t r = 0;
  std::uint32_t s = p;
  std::array<std::uint32_t, 2> rd{0, 0};
  std::array<std::uint32_t, 2> sd{p, p};
  std::uint32_t delta = 0;  // dimension split this level; the other is nabla

  const std::uint32_t levels = levels_for(p);
  for (std::uint32_t level = 0; level < levels; ++level) {
    if (s - r > 1) {
      const std::uint32_t nabla = 1 - delta;
      const std::uint32_t q = r + (s - r) / 2;
      const std::uint32_t qd = rd[delta] + (sd[delta] - rd[delta]) / 2;
      if (id == r) {
        // Hand the upper part [qd, sd) of dimension delta to P_q ...
        const std::size_t keep = qd - rd[delta];
        const std::span<const std::uint64_t> hand =
            std::span<const std::uint64_t>(beta[delta]).subspan(keep);
        const std::uint64_t handed_total = span_sum(hand);
        ctx.send(q, kTagHand, hand);
        // ... together with the conditional split of the other dimension's
        // quotas between the kept and the handed part (Proposition 6).
        std::vector<std::uint64_t> to_upper(beta[nabla].size());
        draw_group(ctx, beta[nabla], handed_total, to_upper, opt);
        ctx.send(q, kTagSplit, std::span<const std::uint64_t>(to_upper));
        for (std::size_t j = 0; j < beta[nabla].size(); ++j) beta[nabla][j] -= to_upper[j];
        beta[delta].resize(keep);
        ctx.charge(beta[nabla].size());
      }
      ctx.sync();
      if (id == q) {
        auto hand_msg = ctx.take(r, kTagHand);
        auto split_msg = ctx.take(r, kTagSplit);
        CGP_ASSERT(hand_msg.has_value() && split_msg.has_value());
        beta[delta] = hand_msg->as<std::uint64_t>();
        beta[nabla] = split_msg->as<std::uint64_t>();
      }
      if (id >= q) {
        r = q;
        rd[delta] = qd;
      } else {
        s = q;
        sd[delta] = qd;
      }
      delta = nabla;
    } else {
      ctx.sync();
    }
  }

  // Every processor now owns the margins of the submatrix
  // [rd[0], sd[0]) x [rd[1], sd[1]) (both extents O(sqrt p), eq. (9));
  // sample it sequentially (Section 4 machinery).
  CGP_ASSERT(beta[0].size() == sd[0] - rd[0]);
  CGP_ASSERT(beta[1].size() == sd[1] - rd[1]);
  CGP_ASSERT(span_sum(beta[0]) == span_sum(beta[1]));
  const comm_matrix sub = sample_matrix_recursive(ctx.rng(), beta[0], beta[1], opt);
  ctx.charge(static_cast<std::uint64_t>(sub.rows()) * sub.cols());
  if (sub.rows() > 1 && sub.cols() > 1)
    ctx.charge_hyp_call(matrix_hyp_call_count(sub.rows(), sub.cols()));
  ctx.note_memory((beta[0].size() + beta[1].size() +
                   static_cast<std::uint64_t>(sub.rows()) * sub.cols()) *
                  sizeof(std::uint64_t));

  // Redistribute: the owner of global row i is processor i; prepend the
  // column offset so the receiver can place each segment.
  for (std::uint32_t i = 0; i < sub.rows(); ++i) {
    std::vector<std::uint64_t> seg;
    seg.reserve(sub.cols() + 1);
    seg.push_back(rd[1]);
    const auto row = sub.row(i);
    seg.insert(seg.end(), row.begin(), row.end());
    ctx.send(rd[0] + i, kTagRow, std::span<const std::uint64_t>(seg));
  }
  ctx.sync();

  std::vector<std::uint64_t> my_row(p, 0);
  for (const auto& msg : ctx.take_all(kTagRow)) {
    const auto seg = msg.as<std::uint64_t>();
    CGP_ASSERT(!seg.empty());
    const auto off = static_cast<std::size_t>(seg[0]);
    CGP_ASSERT(off + (seg.size() - 1) <= p);
    for (std::size_t j = 1; j < seg.size(); ++j) my_row[off + j - 1] = seg[j];
  }
  ctx.charge(p);

  CGP_ENSURES(span_sum(my_row) == block);
  return my_row;
}

std::vector<std::uint64_t> sample_matrix_replicated(cgm::context& ctx,
                                                    std::span<const std::uint64_t> row_margins,
                                                    std::span<const std::uint64_t> col_margins,
                                                    const matrix_options& opt) {
  CGP_EXPECTS(row_margins.size() == ctx.nprocs());
  // Every processor draws the *same* matrix from a shared stream: zero
  // communication, Theta(p p') local work each.
  rng::counting_engine<rng::philox4x64> shared(
      rng::phase_stream(ctx.shared_seed(), 0xFFFF'FFFF, 0x5EED));
  const comm_matrix a = sample_matrix_recursive(shared, row_margins, col_margins, opt);
  ctx.charge(static_cast<std::uint64_t>(a.rows()) * a.cols());
  ctx.charge_rng_draws(shared.count());
  if (a.rows() > 1 && a.cols() > 1) ctx.charge_hyp_call(matrix_hyp_call_count(a.rows(), a.cols()));
  const auto row = a.row(ctx.id());
  return {row.begin(), row.end()};
}

}  // namespace cgp::core
