// core/backend.hpp
//
// Pluggable execution backends for the whole-vector permutation entry
// points.  The library now has four ways to realize a uniform random
// permutation:
//
//   * `cgm_simulator` -- Algorithm 1 on the virtual coarse-grained machine
//     (core/driver.hpp): every model quantity of Theorems 1/2 is counted
//     exactly, at the price of simulated message copies.  The
//     model-faithful path for experiments.
//   * `smp` -- the native shared-memory engine (smp/engine.hpp): the same
//     recursive hypergeometric split executed by real threads, no
//     accounting.  The fast path for RAM-resident production workloads.
//   * `em` -- the out-of-core engine (em/async_shuffle.hpp): the
//     coarse-grained bucket distribution run against a block device with
//     asynchronous, double-buffered I/O, for the n >> M regime.  Measured
//     in block transfers (Aggarwal-Vitter I/O model).
//   * `sequential` -- the reference seq::fisher_yates baseline.
//
// All four are exactly uniform; they draw from differently keyed Philox
// streams, so equal seeds do *not* imply equal permutations across
// backends (each backend is individually bit-reproducible in its seed).
// One designed exception: `em` with memory >= n degenerates to a single
// in-memory Fisher-Yates from the very stream `sequential` uses, so the
// two agree bit for bit in that regime (tests/test_em_async.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/machine.hpp"
#include "core/driver.hpp"
#include "em/async_shuffle.hpp"
#include "em/block_device.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/engine.hpp"

namespace cgp::core {

/// Which engine executes the permutation.
enum class backend : std::uint8_t {
  cgm_simulator,  ///< model-faithful virtual machine (counts resources)
  smp,            ///< native shared-memory thread engine
  em,             ///< out-of-core engine (async block-device scatter)
  sequential,     ///< seq::fisher_yates reference
};

[[nodiscard]] constexpr const char* backend_name(backend b) noexcept {
  switch (b) {
    case backend::cgm_simulator: return "cgm";
    case backend::smp: return "smp";
    case backend::em: return "em";
    case backend::sequential: return "seq";
  }
  return "?";
}

/// Options for the backend-dispatched entry points.
struct backend_options {
  backend which = backend::smp;
  /// Degree of parallelism: virtual processors (cgm_simulator) or worker
  /// threads (smp, em); 0 picks a default (4 virtual processors / hardware
  /// concurrency).  Ignored by `sequential`.
  std::uint32_t parallelism = 0;
  std::uint64_t seed = 0xC0A2537E5EEDull;  ///< same default as cgm::machine
  permute_options cgm{};                   ///< CGM pipeline knobs
  smp::engine_options smp_engine{};        ///< SMP engine knobs (threads is
                                           ///< overridden by `parallelism`)
  /// Reuse an existing SMP engine (and its thread pool) instead of
  /// constructing one per call; when set, `parallelism` and `smp_engine`
  /// are ignored for the smp backend, and the em backend runs its
  /// computation on the engine's pool.
  smp::engine* engine = nullptr;
  /// Resource accounting of the run (cgm_simulator only).
  cgm::run_stats* stats_out = nullptr;
  /// Out-of-core engine knobs (em only): M, buffer depth, spill policy.
  em::async_options em_engine{};
  /// Items per simulated device block, the B of the I/O model (em only).
  /// em_engine.memory_items must stay >= 4 * em_block_items.
  std::uint32_t em_block_items = 4096;
  /// Transfer accounting of the run (em only).
  em::async_report* em_report_out = nullptr;
};

namespace detail {

/// Run the async out-of-core engine over the index identity and return the
/// resulting permutation pi (pi[i] = image of i) read back off the device.
[[nodiscard]] inline std::vector<std::uint64_t> em_permutation(std::uint64_t n,
                                                               const backend_options& opt) {
  em::block_device dev(n, opt.em_block_items);
  for (std::uint64_t i = 0; i < n; ++i) dev.poke(i, i);
  em::async_report report;
  if (opt.engine != nullptr) {
    report = em::async_em_shuffle(dev, n, opt.seed, opt.engine->pool(), opt.em_engine);
  } else {
    smp::thread_pool pool(opt.parallelism);
    report = em::async_em_shuffle(dev, n, opt.seed, pool, opt.em_engine);
  }
  if (opt.em_report_out != nullptr) *opt.em_report_out = report;
  std::vector<std::uint64_t> pi(n);
  for (std::uint64_t i = 0; i < n; ++i) pi[i] = dev.peek(i);
  return pi;
}

}  // namespace detail

/// Return `data` permuted uniformly at random by the selected backend.
template <typename T>
[[nodiscard]] std::vector<T> permute(std::vector<T> data, const backend_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  switch (opt.which) {
    case backend::cgm_simulator: {
      const std::uint32_t p = opt.parallelism == 0 ? 4 : opt.parallelism;
      cgm::machine mach(p, opt.seed);
      return permute_global(mach, data, opt.cgm, opt.stats_out);
    }
    case backend::smp: {
      if (opt.engine != nullptr) return opt.engine->permute(std::move(data), opt.seed);
      smp::engine_options eopt = opt.smp_engine;
      if (opt.parallelism != 0) eopt.threads = opt.parallelism;
      smp::engine eng(eopt);
      return eng.permute(std::move(data), opt.seed);
    }
    case backend::em: {
      if (data.size() < 2) return data;
      // Shuffle the index identity out of core, then gather: the gather of
      // any payload type through a uniform index permutation is the same
      // permutation the engine would apply to the payload itself.
      const std::vector<std::uint64_t> pi = detail::em_permutation(data.size(), opt);
      std::vector<T> out(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        out[i] = data[static_cast<std::size_t>(pi[i])];
      }
      return out;
    }
    case backend::sequential:
    default: {
      rng::philox4x64 e(opt.seed, 0);
      seq::fisher_yates(e, std::span<T>(data));
      return data;
    }
  }
}

/// Sample pi uniform over S_n with the selected backend (pi[i] = image of i).
[[nodiscard]] inline std::vector<std::uint64_t> random_permutation(
    std::uint64_t n, const backend_options& opt = {}) {
  if (opt.which == backend::em) return detail::em_permutation(n, opt);
  std::vector<std::uint64_t> iota(n);
  for (std::uint64_t i = 0; i < n; ++i) iota[i] = i;
  return permute(std::move(iota), opt);
}

}  // namespace cgp::core
