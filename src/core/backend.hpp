// core/backend.hpp
//
// Backend-dispatched whole-vector entry points, a thin shell over the
// plan/executor core:
//
//   request --> resolve_plan (core/plan.hpp)  --> permutation_plan
//           --> make_executor (core/executor.hpp) --> runs it
//
// DEPRECATED SURFACE: these free functions remain for compatibility (and
// are what the facade itself runs on), but new code should go through
// `cgp::context` (core/context.hpp), which additionally owns the machine
// profile, the transport, and the seed discipline.
//
// The library has five engines plus a planner that picks among them:
//
//   * `cgm_simulator` -- Algorithm 1 on the virtual coarse-grained machine
//     (core/driver.hpp): every model quantity of Theorems 1/2 is counted
//     exactly.  The model-faithful path for experiments.
//   * `smp` -- the native shared-memory engine (smp/engine.hpp) on the
//     process-wide shared pool (core/registry.hpp).  The fast path for
//     RAM-resident production workloads.
//   * `em` -- the out-of-core engine (em/async_shuffle.hpp) behind the
//     streaming apply layer (core/apply.hpp), for the n >> M regime.
//   * `cgm` -- the distributed engine (cgm/distributed.hpp) over a
//     pluggable comm::transport: the real coarse-grained backend.  Output
//     is independent of the rank count and transport; at or below the
//     cache cutoff it bit-matches `sequential` (one leaf on
//     philox(seed, 0)), and above it it bit-matches `smp` under the same
//     engine options.
//   * `sequential` -- the seq::fisher_yates reference.
//   * `automatic` -- the cost-model planner picks seq / smp / em / cgm
//     from the workload (n, element size, memory budget, repetitions) and
//     the machine profile; the resolved plan is observable via
//     backend_options::plan_out.  The cgm candidate is considered only
//     when the profile describes a scale-out deployment (comm_ranks >= 2).
//
// All engines are exactly uniform; they draw from differently keyed Philox
// streams, so equal seeds do *not* imply equal permutations across
// backends (each backend is individually bit-reproducible in its seed).
// One designed exception: `em` with memory >= n degenerates to a single
// in-memory Fisher-Yates from the very stream `sequential` uses, so the
// two agree bit for bit in that regime (tests/test_em_async.cpp).  And by
// construction `automatic` agrees bit for bit with whichever backend the
// plan names (tests/test_plan.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/plan_feedback.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace cgp::core {

/// RAII scope around one executed job: wall-clocks the run, collects the
/// per-phase times the executors' obs::spans report on this thread, and
/// on destruction files an obs::plan_feedback_record (prediction next to
/// measurement) -- the raw material of plan::explain()'s
/// predicted-vs-measured section.  Inert when obs is disabled
/// (CGP_OBS_OFF): no collector, no clock, no record.  Used by the
/// backend-dispatched entry points below and by the service layer's job
/// runners (svc/server.cpp), which drive executors directly.
class feedback_scope {
 public:
  feedback_scope(const permutation_plan& plan, std::uint64_t n, std::uint32_t elem_bytes) {
    if (!obs::enabled()) return;
    active_ = true;
    rec_.backend = backend_name(plan.chosen);
    rec_.n = n;
    rec_.elem_bytes = elem_bytes;
    rec_.predicted_seconds = plan.predicted_seconds;
    rec_.predicted_phases.reserve(plan.phases.size());
    for (const auto& ph : plan.phases) rec_.predicted_phases.push_back({ph.label, ph.seconds});
    obs::get_counter(std::string("core.exec.") + rec_.backend).add();
    collector_.emplace();
    span_.emplace("execute", "exec");
    sw_.reset();
  }
  feedback_scope(const feedback_scope&) = delete;
  feedback_scope& operator=(const feedback_scope&) = delete;
  ~feedback_scope() {
    if (!active_) return;
    rec_.measured_seconds = sw_.seconds();
    span_.reset();  // flush the overall "execute" phase into the collector
    rec_.measured_phases = collector_->phases();
    collector_.reset();
    obs::record_plan_feedback(std::move(rec_));
  }

 private:
  bool active_ = false;
  obs::plan_feedback_record rec_;
  std::optional<obs::phase_collector> collector_;
  std::optional<obs::span> span_;
  stopwatch sw_;
};

/// Uniformly permute `data` in place with the selected (or planned)
/// backend -- the zero-copy span entry point.  Returns the plan that ran.
template <typename T>
permutation_plan shuffle(std::span<T> data, const backend_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  const permutation_plan plan = resolve_plan(data.size(), sizeof(T), opt);
  if (opt.plan_out != nullptr) *opt.plan_out = plan;
  const feedback_scope fb(plan, data.size(), sizeof(T));
  make_executor(plan, opt)->shuffle(data, opt.seed);
  return plan;
}

/// Return `data` permuted uniformly at random by the selected backend
/// (vector convenience over `shuffle`).
template <typename T>
[[nodiscard]] std::vector<T> permute(std::vector<T> data, const backend_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() < 2) {
    if (opt.plan_out != nullptr) *opt.plan_out = resolve_plan(data.size(), sizeof(T), opt);
    return data;
  }
  (void)shuffle(std::span<T>(data), opt);
  return data;
}

/// Sample pi uniform over S_n with the selected backend (pi[i] = image of
/// i).  The permutation is filled in place inside the executor -- iota +
/// in-place shuffle for the RAM backends, a bulk device read for em -- so
/// there is no copy-in/copy-out round trip.
[[nodiscard]] inline std::vector<std::uint64_t> random_permutation(
    std::uint64_t n, const backend_options& opt = {}) {
  const permutation_plan plan = resolve_plan(n, sizeof(std::uint64_t), opt);
  if (opt.plan_out != nullptr) *opt.plan_out = plan;
  std::vector<std::uint64_t> pi(n);
  const feedback_scope fb(plan, n, sizeof(std::uint64_t));
  make_executor(plan, opt)->fill_random_permutation(std::span<std::uint64_t>(pi), opt.seed);
  return pi;
}

}  // namespace cgp::core
