// core/backend.hpp
//
// Backend-dispatched whole-vector entry points, a thin shell over the
// plan/executor core:
//
//   request --> resolve_plan (core/plan.hpp)  --> permutation_plan
//           --> make_executor (core/executor.hpp) --> runs it
//
// DEPRECATED SURFACE: these free functions remain for compatibility (and
// are what the facade itself runs on), but new code should go through
// `cgp::context` (core/context.hpp), which additionally owns the machine
// profile, the transport, and the seed discipline.
//
// The library has five engines plus a planner that picks among them:
//
//   * `cgm_simulator` -- Algorithm 1 on the virtual coarse-grained machine
//     (core/driver.hpp): every model quantity of Theorems 1/2 is counted
//     exactly.  The model-faithful path for experiments.
//   * `smp` -- the native shared-memory engine (smp/engine.hpp) on the
//     process-wide shared pool (core/registry.hpp).  The fast path for
//     RAM-resident production workloads.
//   * `em` -- the out-of-core engine (em/async_shuffle.hpp) behind the
//     streaming apply layer (core/apply.hpp), for the n >> M regime.
//   * `cgm` -- the distributed engine (cgm/distributed.hpp) over a
//     pluggable comm::transport: the real coarse-grained backend.  Output
//     is independent of the rank count and transport; at or below the
//     cache cutoff it bit-matches `sequential` (one leaf on
//     philox(seed, 0)), and above it it bit-matches `smp` under the same
//     engine options.
//   * `sequential` -- the seq::fisher_yates reference.
//   * `automatic` -- the cost-model planner picks seq / smp / em / cgm
//     from the workload (n, element size, memory budget, repetitions) and
//     the machine profile; the resolved plan is observable via
//     backend_options::plan_out.  The cgm candidate is considered only
//     when the profile describes a scale-out deployment (comm_ranks >= 2).
//
// All engines are exactly uniform; they draw from differently keyed Philox
// streams, so equal seeds do *not* imply equal permutations across
// backends (each backend is individually bit-reproducible in its seed).
// One designed exception: `em` with memory >= n degenerates to a single
// in-memory Fisher-Yates from the very stream `sequential` uses, so the
// two agree bit for bit in that regime (tests/test_em_async.cpp).  And by
// construction `automatic` agrees bit for bit with whichever backend the
// plan names (tests/test_plan.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/executor.hpp"
#include "core/plan.hpp"

namespace cgp::core {

/// Uniformly permute `data` in place with the selected (or planned)
/// backend -- the zero-copy span entry point.  Returns the plan that ran.
template <typename T>
permutation_plan shuffle(std::span<T> data, const backend_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  const permutation_plan plan = resolve_plan(data.size(), sizeof(T), opt);
  if (opt.plan_out != nullptr) *opt.plan_out = plan;
  make_executor(plan, opt)->shuffle(data, opt.seed);
  return plan;
}

/// Return `data` permuted uniformly at random by the selected backend
/// (vector convenience over `shuffle`).
template <typename T>
[[nodiscard]] std::vector<T> permute(std::vector<T> data, const backend_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() < 2) {
    if (opt.plan_out != nullptr) *opt.plan_out = resolve_plan(data.size(), sizeof(T), opt);
    return data;
  }
  (void)shuffle(std::span<T>(data), opt);
  return data;
}

/// Sample pi uniform over S_n with the selected backend (pi[i] = image of
/// i).  The permutation is filled in place inside the executor -- iota +
/// in-place shuffle for the RAM backends, a bulk device read for em -- so
/// there is no copy-in/copy-out round trip.
[[nodiscard]] inline std::vector<std::uint64_t> random_permutation(
    std::uint64_t n, const backend_options& opt = {}) {
  const permutation_plan plan = resolve_plan(n, sizeof(std::uint64_t), opt);
  if (opt.plan_out != nullptr) *opt.plan_out = plan;
  std::vector<std::uint64_t> pi(n);
  make_executor(plan, opt)->fill_random_permutation(std::span<std::uint64_t>(pi), opt.seed);
  return pi;
}

}  // namespace cgp::core
