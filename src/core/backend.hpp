// core/backend.hpp
//
// Pluggable execution backends for the whole-vector permutation entry
// points.  The library now has three ways to realize a uniform random
// permutation:
//
//   * `cgm_simulator` -- Algorithm 1 on the virtual coarse-grained machine
//     (core/driver.hpp): every model quantity of Theorems 1/2 is counted
//     exactly, at the price of simulated message copies.  The
//     model-faithful path for experiments.
//   * `smp` -- the native shared-memory engine (smp/engine.hpp): the same
//     recursive hypergeometric split executed by real threads, no
//     accounting.  The fast path for production workloads.
//   * `sequential` -- the reference seq::fisher_yates baseline.
//
// All three are exactly uniform; they draw from differently keyed Philox
// streams, so equal seeds do *not* imply equal permutations across
// backends (each backend is individually bit-reproducible in its seed).
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/machine.hpp"
#include "core/driver.hpp"
#include "rng/philox.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/engine.hpp"

namespace cgp::core {

/// Which engine executes the permutation.
enum class backend : std::uint8_t {
  cgm_simulator,  ///< model-faithful virtual machine (counts resources)
  smp,            ///< native shared-memory thread engine
  sequential,     ///< seq::fisher_yates reference
};

[[nodiscard]] constexpr const char* backend_name(backend b) noexcept {
  switch (b) {
    case backend::cgm_simulator: return "cgm";
    case backend::smp: return "smp";
    case backend::sequential: return "seq";
  }
  return "?";
}

/// Options for the backend-dispatched entry points.
struct backend_options {
  backend which = backend::smp;
  /// Degree of parallelism: virtual processors (cgm_simulator) or worker
  /// threads (smp); 0 picks a default (4 virtual processors / hardware
  /// concurrency).  Ignored by `sequential`.
  std::uint32_t parallelism = 0;
  std::uint64_t seed = 0xC0A2537E5EEDull;  ///< same default as cgm::machine
  permute_options cgm{};                   ///< CGM pipeline knobs
  smp::engine_options smp_engine{};        ///< SMP engine knobs (threads is
                                           ///< overridden by `parallelism`)
  /// Reuse an existing SMP engine (and its thread pool) instead of
  /// constructing one per call; when set, `parallelism` and `smp_engine`
  /// are ignored for the smp backend.
  smp::engine* engine = nullptr;
  /// Resource accounting of the run (cgm_simulator only).
  cgm::run_stats* stats_out = nullptr;
};

/// Return `data` permuted uniformly at random by the selected backend.
template <typename T>
[[nodiscard]] std::vector<T> permute(std::vector<T> data, const backend_options& opt = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  switch (opt.which) {
    case backend::cgm_simulator: {
      const std::uint32_t p = opt.parallelism == 0 ? 4 : opt.parallelism;
      cgm::machine mach(p, opt.seed);
      return permute_global(mach, data, opt.cgm, opt.stats_out);
    }
    case backend::smp: {
      if (opt.engine != nullptr) return opt.engine->permute(std::move(data), opt.seed);
      smp::engine_options eopt = opt.smp_engine;
      if (opt.parallelism != 0) eopt.threads = opt.parallelism;
      smp::engine eng(eopt);
      return eng.permute(std::move(data), opt.seed);
    }
    case backend::sequential:
    default: {
      rng::philox4x64 e(opt.seed, 0);
      seq::fisher_yates(e, std::span<T>(data));
      return data;
    }
  }
}

/// Sample pi uniform over S_n with the selected backend (pi[i] = image of i).
[[nodiscard]] inline std::vector<std::uint64_t> random_permutation(
    std::uint64_t n, const backend_options& opt = {}) {
  std::vector<std::uint64_t> iota(n);
  for (std::uint64_t i = 0; i < n; ++i) iota[i] = i;
  return permute(std::move(iota), opt);
}

}  // namespace cgp::core
