// core/registry.hpp
//
// Process-wide engine/pool registry.  Thread pools are expensive to spin
// up and tear down; before this registry every `core::permute` call that
// did not hand in an explicit `smp::engine*` constructed a fresh pool and
// joined it on return -- pure overhead for servers that draw permutations
// in a loop (core/repeat.hpp, the benches, the examples).  The registry
// keeps ONE engine per distinct configuration for the lifetime of the
// process; every caller that asks for the same configuration shares the
// same warm pool.
//
// Lifetime rules (also documented in DESIGN.md):
//   * engines are created on first use and never destroyed until process
//     exit (static-duration registry; pools join their workers in the
//     registry's destructor);
//   * references returned by shared_engine()/shared_pool() therefore stay
//     valid for the remainder of the process -- callers may cache them;
//   * the registry is fully thread-safe; each entry is constructed exactly
//     once (per-entry std::call_once: concurrent first-touch calls for the
//     SAME configuration race into one construction, and a slow first
//     construction -- an engine spins up a whole thread pool -- no longer
//     blocks lookups of OTHER configurations behind the registry mutex);
//     use of a returned engine is as thread-safe as the engine itself
//     (smp::engine::shuffle is safe for concurrent calls on disjoint data).
//
// The registry also owns the two process-wide caches the service layer
// (src/svc/) leans on: the detected machine profile (so every context /
// server construction stops re-running machine_profile::detect(), with
// explicit invalidation via recalibrate_shared_profile()) and the plan
// cache (so repeated request shapes skip core::plan_permutation, keyed by
// workload + profile fingerprint).
#pragma once

#include <cstddef>

#include "comm/transport.hpp"
#include "core/plan.hpp"
#include "smp/engine.hpp"

namespace cgp::core {

/// The shared engine for `opt` (one per distinct configuration, created on
/// first use, alive until process exit).  opt.threads == 0 normalizes to
/// hardware concurrency, so explicit-0 and explicit-hw callers share.
[[nodiscard]] smp::engine& shared_engine(const smp::engine_options& opt = {});

/// The shared thread pool with `threads` workers (0 = hardware
/// concurrency).  This is the pool of the shared engine with otherwise
/// default options -- em executors run their computation here when the
/// caller did not provide an engine.
[[nodiscard]] smp::thread_pool& shared_pool(std::uint32_t threads = 0);

/// The shared transport for `ranks` ranks (0 normalizes to 1): the
/// loopback transport at one rank, a threaded mailbox transport (with its
/// own dedicated pool of `ranks` workers -- transport ranks block at
/// barriers and must not starve the compute pool) otherwise.  One per
/// distinct rank count, created on first use, alive until process exit --
/// the same lifetime rules as the engines above.
[[nodiscard]] comm::transport& shared_transport(std::uint32_t ranks);

/// Number of distinct engine configurations currently registered (test /
/// introspection hook).
[[nodiscard]] std::size_t registered_engine_count();

/// The process-wide cached machine profile: machine_profile::detect() run
/// once on first touch and reused by every cgp::context and svc::server
/// constructed afterwards.  Returned by value -- the cached object may be
/// swapped by recalibrate_shared_profile() at any time, so no reference to
/// registry-internal storage escapes.
[[nodiscard]] machine_profile shared_profile();

/// Re-measure the shared profile with in-process probes
/// (machine_profile::calibrate()) and install the result as the new
/// process-wide profile; returns the freshly measured profile.  The new
/// fingerprint implicitly invalidates every cached plan keyed under the
/// old one.
machine_profile recalibrate_shared_profile();

/// The plan for workload `w` on `prof`, cached under the key
/// (n, element_bytes, memory_budget, repetitions, prof.fingerprint()).
/// Bit-identical to plan_permutation(w, prof) -- the cache only skips the
/// recomputation, never changes the answer -- which is what lets the
/// service layer substitute it on the context::shuffle dispatch path
/// without perturbing any output.
[[nodiscard]] permutation_plan cached_plan(const workload& w, const machine_profile& prof);

/// Plan-cache traffic counters (monotone, process-wide): how many
/// cached_plan calls were made, and how many were answered from the cache.
[[nodiscard]] std::size_t plan_cache_lookups();
[[nodiscard]] std::size_t plan_cache_hits();

}  // namespace cgp::core
