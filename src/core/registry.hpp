// core/registry.hpp
//
// Process-wide engine/pool registry.  Thread pools are expensive to spin
// up and tear down; before this registry every `core::permute` call that
// did not hand in an explicit `smp::engine*` constructed a fresh pool and
// joined it on return -- pure overhead for servers that draw permutations
// in a loop (core/repeat.hpp, the benches, the examples).  The registry
// keeps ONE engine per distinct configuration for the lifetime of the
// process; every caller that asks for the same configuration shares the
// same warm pool.
//
// Lifetime rules (also documented in DESIGN.md):
//   * engines are created on first use and never destroyed until process
//     exit (static-duration registry; pools join their workers in the
//     registry's destructor);
//   * references returned by shared_engine()/shared_pool() therefore stay
//     valid for the remainder of the process -- callers may cache them;
//   * the registry is fully thread-safe; engine construction is serialized,
//     use of a returned engine is as thread-safe as the engine itself
//     (smp::engine::shuffle is safe for concurrent calls on disjoint data).
#pragma once

#include "comm/transport.hpp"
#include "smp/engine.hpp"

namespace cgp::core {

/// The shared engine for `opt` (one per distinct configuration, created on
/// first use, alive until process exit).  opt.threads == 0 normalizes to
/// hardware concurrency, so explicit-0 and explicit-hw callers share.
[[nodiscard]] smp::engine& shared_engine(const smp::engine_options& opt = {});

/// The shared thread pool with `threads` workers (0 = hardware
/// concurrency).  This is the pool of the shared engine with otherwise
/// default options -- em executors run their computation here when the
/// caller did not provide an engine.
[[nodiscard]] smp::thread_pool& shared_pool(std::uint32_t threads = 0);

/// The shared transport for `ranks` ranks (0 normalizes to 1): the
/// loopback transport at one rank, a threaded mailbox transport (with its
/// own dedicated pool of `ranks` workers -- transport ranks block at
/// barriers and must not starve the compute pool) otherwise.  One per
/// distinct rank count, created on first use, alive until process exit --
/// the same lifetime rules as the engines above.
[[nodiscard]] comm::transport& shared_transport(std::uint32_t ranks);

/// Number of distinct engine configurations currently registered (test /
/// introspection hook).
[[nodiscard]] std::size_t registered_engine_count();

}  // namespace cgp::core
