// core/context.hpp
//
// The curated facade of cgmperm: ONE object that owns everything a caller
// used to wire together by hand -- the machine profile the planner reads,
// the transport the distributed backend runs on, the process-wide
// engine/pool registry behind the executors, and the seed discipline --
// with ONE entry point:
//
//   cgp::context ctx;                      // planner-driven defaults
//   ctx.shuffle(std::span<T>(records));    // permute in place, get the plan
//
//   cgp::context_options copt;
//   copt.which = cgp::core::backend::cgm;  // explicit backend...
//   copt.parallelism = 8;                  // ...8 transport ranks
//   cgp::context dist(copt);
//   dist.shuffle(std::span<T>(records));
//
// Seed discipline: a context draws are *independent and reproducible* --
// call k of `shuffle()` uses a seed derived from (base seed, k), so
// repeated draws on one context never replay each other, while two
// contexts with the same base seed replay each other call for call.  Pass
// an explicit seed to pin a single call instead.
//
// Thread safety: ONE context may be shared across worker threads.  The
// explicit-seed entry points are `const` and touch no mutable state, so a
// service (src/svc/) hands every scheduler worker a `const context&` and
// keys each job's seed itself; the draw-sequence entry points reserve
// their call index atomically, so concurrent sequence draws each get a
// distinct seed (which draw gets which index is scheduling-dependent --
// callers that need a deterministic (caller, index) -> seed map should key
// explicit seeds, as the service layer does).  `reseed` / `recalibrate` /
// `set_transport` are exclusive: do not run them concurrently with draws.
//
// The old free functions (core::shuffle / core::permute /
// core::random_permutation in core/backend.hpp, core::permute_global in
// core/driver.hpp) remain as thin compatibility shims over the same
// plan/executor core; new code should construct a context.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/backend.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/registry.hpp"
#include "rng/splitmix64.hpp"

namespace cgp {

/// What the caller curates; everything else is planned or defaulted.
struct context_options {
  /// Backend; `automatic` lets the cost model pick per call.
  core::backend which = core::backend::automatic;
  /// Transport ranks (cgm) or worker threads (smp/em); 0 = default.
  std::uint32_t parallelism = 0;
  /// RAM the permutation may use, in bytes; 0 = unconstrained.
  std::uint64_t memory_budget_bytes = 0;
  /// Expected draws of one shape (amortizes dispatch in the planner).
  std::uint64_t repetitions = 1;
  /// Base seed of the context's draw sequence.
  std::uint64_t seed = 0xC0A2537E5EEDull;
  /// Measure the machine profile at construction (a few ms of probes)
  /// instead of using detected defaults -- what servers should do once.
  bool calibrate = false;
  /// Expert escape hatch: engine knobs (em geometry, smp/cgm engine
  /// options, simulator pipeline) forwarded verbatim.  The curated fields
  /// above override their counterparts in here.
  core::backend_options engine{};
};

class context {
 public:
  explicit context(context_options opt = {})
      : opt_(opt),
        profile_(opt.calibrate ? core::machine_profile::calibrate()
                               : core::shared_profile()),
        seed_(opt.seed) {}

  context(const context&) = delete;
  context& operator=(const context&) = delete;

  /// THE entry point: uniformly permute `data` in place on the context's
  /// backend (or the planner's choice) and return the plan that ran.
  /// Uses the next seed of the context's draw sequence.
  template <typename T>
  core::permutation_plan shuffle(std::span<T> data) {
    return core::shuffle(data, execution_options(next_seed()));
  }

  /// Same, under an explicit seed (does not advance the draw sequence).
  /// `const`: safe to call concurrently on one shared context.
  template <typename T>
  core::permutation_plan shuffle(std::span<T> data, std::uint64_t seed) const {
    return core::shuffle(data, execution_options(seed));
  }

  /// Sample pi uniform over S_n (pi[i] = image of i), in the executor's
  /// native fill mode.
  [[nodiscard]] std::vector<std::uint64_t> random_permutation(std::uint64_t n) {
    return core::random_permutation(n, execution_options(next_seed()));
  }
  [[nodiscard]] std::vector<std::uint64_t> random_permutation(std::uint64_t n,
                                                              std::uint64_t seed) const {
    return core::random_permutation(n, execution_options(seed));
  }

  /// The plan a shuffle of `n` records of `elem_bytes` would run, without
  /// running it (inspect plan.explain() for the evidence).
  [[nodiscard]] core::permutation_plan plan_for(std::uint64_t n,
                                               std::uint32_t elem_bytes) const {
    return core::resolve_plan(n, elem_bytes, execution_options(seed_.load(std::memory_order_relaxed)));
  }

  /// The exact per-call options a draw under `seed` executes with: the
  /// curated fields projected onto the expert engine options, plus the
  /// context's profile.  Public so a layer that schedules its own
  /// execution (svc::server) can run jobs through the identical
  /// plan/executor path -- `core::shuffle(data, ctx.execution_options(s))`
  /// is bit-for-bit `ctx.shuffle(data, s)` by construction.  The returned
  /// options point at this context's profile; they must not outlive it.
  [[nodiscard]] core::backend_options execution_options(std::uint64_t seed) const {
    core::backend_options o = opt_.engine;
    o.which = opt_.which;
    if (opt_.parallelism != 0) o.parallelism = opt_.parallelism;
    if (opt_.memory_budget_bytes != 0) o.memory_budget_bytes = opt_.memory_budget_bytes;
    o.repetitions = opt_.repetitions;
    o.seed = seed;
    o.profile = &profile_;
    return o;
  }

  /// The profile the planner reads.
  [[nodiscard]] const core::machine_profile& profile() const noexcept { return profile_; }

  /// Re-measure the profile with in-process probes.  Also installs the
  /// measurement as the process-wide shared profile (the cache behind
  /// core::shared_profile()), so later contexts and servers see it too.
  void recalibrate() { profile_ = core::recalibrate_shared_profile(); }

  /// The transport the distributed cgm backend runs on: the injected one,
  /// else the registry's shared transport for the context's rank count.
  [[nodiscard]] comm::transport& transport() {
    if (opt_.engine.transport != nullptr) return *opt_.engine.transport;
    return core::shared_transport(opt_.parallelism != 0 ? opt_.parallelism : 1);
  }

  /// Run over `t` (not owned; must outlive the context).
  void set_transport(comm::transport* t) noexcept { opt_.engine.transport = t; }

  /// Restart the draw sequence at `seed`.  Exclusive: not safe to run
  /// concurrently with draw-sequence calls (the pair of stores is not one
  /// atomic transaction).
  void reseed(std::uint64_t seed) noexcept {
    seed_.store(seed, std::memory_order_relaxed);
    draws_.store(0, std::memory_order_relaxed);
  }

  /// Calls consumed from the draw sequence so far.
  [[nodiscard]] std::uint64_t draws() const noexcept {
    return draws_.load(std::memory_order_relaxed);
  }

 private:
  /// Seed of draw k: the base seed verbatim first (so a context replays
  /// the corresponding free-function call), then streams derived like
  /// core/repeat.hpp's permutation_stream -- mixing k through its own
  /// mix64 before xoring keeps contexts with ADJACENT base seeds on
  /// disjoint sequences (mix64(seed + k) would make seed 101's draw k
  /// collide with seed 100's draw k+1).  The fetch_add reserves the call
  /// index, so concurrent sequence draws never reuse a seed.
  [[nodiscard]] std::uint64_t next_seed() noexcept {
    const std::uint64_t k = draws_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t s = seed_.load(std::memory_order_relaxed);
    return k == 0 ? s : rng::mix64(s ^ rng::mix64(k + 0x9E3779B97F4A7C15ull));
  }

  context_options opt_;
  core::machine_profile profile_;
  std::atomic<std::uint64_t> seed_ = 0;
  std::atomic<std::uint64_t> draws_ = 0;
};

}  // namespace cgp
