// core/apply.hpp
//
// The streaming apply layer: move arbitrary trivially-copyable records
// between RAM spans and a block device in O(chunk)-resident slices, using
// ONLY the device's bulk item-range transfers (read_items/write_items --
// every word moved here is visible to the device's I/O accounting, unlike
// the poke/peek test hooks the old dispatch path abused).
//
// This is what lets the out-of-core backend hold at most O(M) staging in
// RAM:
//
//   * records of <= 8 bytes pack one-per-device-word, so the payload
//     itself streams onto the device, is shuffled there by the async
//     engine, and streams back -- no index permutation exists at all;
//   * larger records go through an on-device index permutation that is
//     *streamed* through `for_each_pi_chunk` in O(chunk) slices -- the
//     full-n pi vector never materializes in RAM.
//
// Shuffle-vs-gather equivalence (why the packed path is exact): the async
// engine's data movement is value-independent -- labels are keyed by
// (seed, level, bucket, index) and leaves swap positions by RNG draws --
// so shuffling the payload in place lands record k exactly where
// shuffling the identity would send index k.  shuffle(data) ==
// gather(data, shuffle(iota)), bit for bit, for the same seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "em/block_device.hpp"
#include "util/assert.hpp"

namespace cgp::core {

/// True iff T streams through the packed (one record per device word)
/// fast path.
template <typename T>
inline constexpr bool packs_into_word_v = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

/// Write the identity 0..n-1 onto the device in `chunk_items`-resident
/// slices of bulk write_items calls (one blind write per covered block;
/// at most two boundary RMWs per slice).
inline void fill_iota_streamed(em::block_device& dev, std::uint64_t n,
                               std::uint64_t chunk_items) {
  CGP_EXPECTS(n <= dev.item_capacity());
  chunk_items = std::max<std::uint64_t>(chunk_items, dev.block_items());
  std::vector<std::uint64_t> stage;
  for (std::uint64_t lo = 0; lo < n; lo += chunk_items) {
    const std::uint64_t hi = std::min(n, lo + chunk_items);
    stage.resize(static_cast<std::size_t>(hi - lo));
    for (std::uint64_t i = lo; i < hi; ++i) stage[static_cast<std::size_t>(i - lo)] = i;
    dev.write_items(lo, stage);
  }
}

/// Stream `src` onto the device, one record per device word (records are
/// zero-extended into the low bytes).  O(chunk_items) resident staging.
template <typename T>
void write_packed_streamed(em::block_device& dev, std::span<const T> src,
                           std::uint64_t chunk_items) {
  static_assert(packs_into_word_v<T>);
  CGP_EXPECTS(src.size() <= dev.item_capacity());
  chunk_items = std::max<std::uint64_t>(chunk_items, dev.block_items());
  std::vector<std::uint64_t> stage;
  for (std::uint64_t lo = 0; lo < src.size(); lo += chunk_items) {
    const std::uint64_t hi = std::min<std::uint64_t>(src.size(), lo + chunk_items);
    stage.assign(static_cast<std::size_t>(hi - lo), 0);
    for (std::uint64_t i = lo; i < hi; ++i) {
      std::memcpy(&stage[static_cast<std::size_t>(i - lo)], &src[static_cast<std::size_t>(i)],
                  sizeof(T));
    }
    dev.write_items(lo, stage);
  }
}

/// Stream the first dst.size() device words back into records.
template <typename T>
void read_packed_streamed(em::block_device& dev, std::span<T> dst, std::uint64_t chunk_items) {
  static_assert(packs_into_word_v<T>);
  CGP_EXPECTS(dst.size() <= dev.item_capacity());
  chunk_items = std::max<std::uint64_t>(chunk_items, dev.block_items());
  std::vector<std::uint64_t> stage;
  for (std::uint64_t lo = 0; lo < dst.size(); lo += chunk_items) {
    const std::uint64_t hi = std::min<std::uint64_t>(dst.size(), lo + chunk_items);
    stage.resize(static_cast<std::size_t>(hi - lo));
    dev.read_items(lo, stage);
    for (std::uint64_t i = lo; i < hi; ++i) {
      std::memcpy(&dst[static_cast<std::size_t>(i)], &stage[static_cast<std::size_t>(i - lo)],
                  sizeof(T));
    }
  }
}

/// Stream the index permutation held by `pi_dev` (pi[i] at device item i)
/// through `body(i, pi_i)` in O(chunk_items)-resident slices -- the pi
/// vector never exists whole in RAM.
template <typename Body>
void for_each_pi_chunk(em::block_device& pi_dev, std::uint64_t n, std::uint64_t chunk_items,
                       Body&& body) {
  CGP_EXPECTS(n <= pi_dev.item_capacity());
  chunk_items = std::max<std::uint64_t>(chunk_items, pi_dev.block_items());
  std::vector<std::uint64_t> stage;
  for (std::uint64_t lo = 0; lo < n; lo += chunk_items) {
    const std::uint64_t hi = std::min(n, lo + chunk_items);
    stage.resize(static_cast<std::size_t>(hi - lo));
    pi_dev.read_items(lo, stage);
    for (std::uint64_t i = lo; i < hi; ++i) {
      body(i, stage[static_cast<std::size_t>(i - lo)]);
    }
  }
}

/// dst[i] = src[pi[i]] with pi streamed off the device in O(chunk_items)
/// slices.  src and dst must not alias.
template <typename T>
void gather_streamed(em::block_device& pi_dev, std::span<const T> src, std::span<T> dst,
                     std::uint64_t chunk_items) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(src.size() == dst.size());
  for_each_pi_chunk(pi_dev, dst.size(), chunk_items, [&](std::uint64_t i, std::uint64_t pi_i) {
    CGP_ASSERT(pi_i < src.size());
    dst[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(pi_i)];
  });
}

/// Device words per record of `elem_bytes` (records wider than a word
/// occupy consecutive whole words, zero-padded).
[[nodiscard]] constexpr std::uint64_t words_per_record(std::uint32_t elem_bytes) noexcept {
  return (std::uint64_t{elem_bytes} + 7) / 8;
}

/// Stream `n` raw records of `elem_bytes` each onto the device at
/// words_per_record words apiece, in O(chunk_items)-resident slices of
/// bulk write_items calls.
/// AUDIT NOTE (record sizes that do not divide the block): when wpr does
/// not divide dev.block_items() (e.g. 24-byte records, wpr = 3, on
/// B = 4096), records straddle block boundaries and every streamed slice
/// below starts and ends mid-block.  That is correct by construction:
/// write_items merge-writes the at-most-two partial boundary blocks of a
/// slice atomically (read + patch + write under the device lock), and
/// read_items assembles straddling ranges from whole-block reads.  The
/// regression tests in tests/test_em_async.cpp (BackendEmApply.*) pin
/// this for B = 4096.
inline void write_records_streamed(em::block_device& dev, const unsigned char* src,
                                   std::uint64_t n, std::uint32_t elem_bytes,
                                   std::uint64_t chunk_items) {
  CGP_EXPECTS(elem_bytes >= 1);
  const std::uint64_t wpr = words_per_record(elem_bytes);
  CGP_EXPECTS(n * wpr <= dev.item_capacity());
  const std::uint64_t chunk_records =
      std::max<std::uint64_t>(1, std::max(chunk_items, std::uint64_t{dev.block_items()}) / wpr);
  std::vector<std::uint64_t> stage;
  for (std::uint64_t lo = 0; lo < n; lo += chunk_records) {
    const std::uint64_t hi = std::min(n, lo + chunk_records);
    stage.assign(static_cast<std::size_t>((hi - lo) * wpr), 0);
    for (std::uint64_t i = lo; i < hi; ++i) {
      std::memcpy(stage.data() + (i - lo) * wpr, src + i * elem_bytes, elem_bytes);
    }
    dev.write_items(lo * wpr, stage);
  }
}

/// dst[i] = payload[pi[i]] over raw records, with pi streamed off its
/// device in bulk chunks and each source record read from the payload
/// device on demand.  O(chunk_items + words_per_record) resident -- the
/// memory-bounded wide-record apply.  The per-record reads are random
/// access, so this pays Theta(n) transfers; a transfer-optimal record
/// apply would bucket-distribute the records themselves (future work,
/// see DESIGN.md section 5).
inline void gather_records_streamed(em::block_device& pi_dev, em::block_device& payload_dev,
                                    unsigned char* dst, std::uint64_t n,
                                    std::uint32_t elem_bytes, std::uint64_t chunk_items) {
  CGP_EXPECTS(elem_bytes >= 1);
  const std::uint64_t wpr = words_per_record(elem_bytes);
  CGP_EXPECTS(n * wpr <= payload_dev.item_capacity());
  std::vector<std::uint64_t> rec(static_cast<std::size_t>(wpr));
  for_each_pi_chunk(pi_dev, n, chunk_items, [&](std::uint64_t i, std::uint64_t pi_i) {
    CGP_ASSERT(pi_i < n);
    payload_dev.read_items(pi_i * wpr, rec);
    std::memcpy(dst + i * elem_bytes, rec.data(), elem_bytes);
  });
}

}  // namespace cgp::core
