#include "core/comm_matrix.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::core {

std::uint64_t comm_matrix::total() const noexcept {
  std::uint64_t t = 0;
  for (const std::uint64_t v : a_) t += v;
  return t;
}

std::vector<std::uint64_t> comm_matrix::row_sums() const {
  std::vector<std::uint64_t> sums(rows_, 0);
  for (std::uint32_t i = 0; i < rows_; ++i)
    for (std::uint32_t j = 0; j < cols_; ++j) sums[i] += (*this)(i, j);
  return sums;
}

std::vector<std::uint64_t> comm_matrix::col_sums() const {
  std::vector<std::uint64_t> sums(cols_, 0);
  for (std::uint32_t i = 0; i < rows_; ++i)
    for (std::uint32_t j = 0; j < cols_; ++j) sums[j] += (*this)(i, j);
  return sums;
}

bool comm_matrix::satisfies_margins(std::span<const std::uint64_t> row_margins,
                                    std::span<const std::uint64_t> col_margins) const {
  if (row_margins.size() != rows_ || col_margins.size() != cols_) return false;
  const auto rs = row_sums();
  const auto cs = col_sums();
  for (std::uint32_t i = 0; i < rows_; ++i)
    if (rs[i] != row_margins[i]) return false;
  for (std::uint32_t j = 0; j < cols_; ++j)
    if (cs[j] != col_margins[j]) return false;
  return true;
}

double comm_matrix::log_probability() const {
  const auto lfact = [](std::uint64_t k) { return std::lgamma(static_cast<double>(k) + 1.0); };
  double acc = 0.0;
  for (const std::uint64_t m : row_sums()) acc += lfact(m);
  for (const std::uint64_t m : col_sums()) acc += lfact(m);
  acc -= lfact(total());
  for (std::uint32_t i = 0; i < rows_; ++i)
    for (std::uint32_t j = 0; j < cols_; ++j) acc -= lfact((*this)(i, j));
  return acc;
}

comm_matrix comm_matrix::merge(std::span<const std::uint32_t> row_bounds,
                               std::span<const std::uint32_t> col_bounds) const {
  CGP_EXPECTS(row_bounds.size() >= 2 && col_bounds.size() >= 2);
  CGP_EXPECTS(row_bounds.front() == 0 && row_bounds.back() == rows_);
  CGP_EXPECTS(col_bounds.front() == 0 && col_bounds.back() == cols_);
  const auto q = static_cast<std::uint32_t>(row_bounds.size() - 1);
  const auto qc = static_cast<std::uint32_t>(col_bounds.size() - 1);
  comm_matrix out(q, qc);
  for (std::uint32_t r = 0; r < q; ++r) {
    CGP_EXPECTS(row_bounds[r] < row_bounds[r + 1]);
    for (std::uint32_t s = 0; s < qc; ++s) {
      CGP_EXPECTS(col_bounds[s] < col_bounds[s + 1]);
      std::uint64_t acc = 0;
      for (std::uint32_t i = row_bounds[r]; i < row_bounds[r + 1]; ++i)
        for (std::uint32_t j = col_bounds[s]; j < col_bounds[s + 1]; ++j) acc += (*this)(i, j);
      out(r, s) = acc;
    }
  }
  return out;
}

comm_matrix matrix_of_permutation(std::span<const std::uint64_t> perm,
                                  std::span<const std::uint64_t> row_margins,
                                  std::span<const std::uint64_t> col_margins) {
  const auto p = static_cast<std::uint32_t>(row_margins.size());
  const auto pc = static_cast<std::uint32_t>(col_margins.size());
  CGP_EXPECTS(span_sum(row_margins) == perm.size());
  CGP_EXPECTS(span_sum(col_margins) == perm.size());

  // Block boundaries as cumulative offsets.
  std::vector<std::uint64_t> row_off(p);
  std::vector<std::uint64_t> col_off(pc);
  exclusive_prefix_sum(row_margins, row_off);
  exclusive_prefix_sum(col_margins, col_off);

  const auto owner = [](std::span<const std::uint64_t> offsets, std::uint64_t pos) {
    // Largest index with offset <= pos (offsets ascending).
    std::uint32_t lo = 0;
    auto hi = static_cast<std::uint32_t>(offsets.size());
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (offsets[mid] <= pos) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  comm_matrix a(p, pc);
  for (std::uint64_t g = 0; g < perm.size(); ++g) {
    const std::uint32_t i = owner(row_off, g);
    const std::uint32_t j = owner(col_off, perm[g]);
    CGP_ASSERT_DBG(perm[g] < perm.size());
    ++a(i, j);
  }
  CGP_ENSURES(a.satisfies_margins(row_margins, col_margins));
  return a;
}

}  // namespace cgp::core
