// core/sample_matrix.hpp
//
// Sequential sampling of a random communication matrix with the exact
// distribution induced by uniform permutations (the paper's Problem 2):
//
//  * `sample_matrix_rowwise`   -- Algorithm 3: peel off one row at a time,
//    drawing it as a multivariate hypergeometric split of the remaining
//    column quotas (Proposition 6 with i1 = p-1).  O(p p') operations and
//    O(p p') calls to the univariate sampler (Proposition 7).
//  * `sample_matrix_recursive` -- Algorithm 4 (RecMat): split the row range
//    at q, draw how much of each column quota goes to the upper half, and
//    recurse.  Same distribution and asymptotics; with balanced splits the
//    parameters of the hypergeometric calls shrink geometrically, which is
//    the stepping stone to the parallel Algorithms 5/6.
//
// Both are engine-generic templates; both return matrices that *provably*
// satisfy the conservation laws (checked by postcondition).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/comm_matrix.hpp"
#include "hyp/multivariate.hpp"
#include "hyp/sample.hpp"
#include "rng/engine.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::core {

/// How RecMat picks its split point q.
enum class split_rule : std::uint8_t {
  balanced,  ///< q = p/2: balanced divide and conquer (the parallel shape)
  chain,     ///< q = p-1: degenerates to Algorithm 3's row peeling
};

/// Options for the sequential matrix samplers.
struct matrix_options {
  hyp::policy pol{};                     ///< univariate sampler policy
  split_rule split = split_rule::balanced;  ///< RecMat split choice
  bool recursive_rows = true;  ///< sample each row split with the balanced
                               ///< recursive MVH (vs. Algorithm 2's chain)
};

namespace detail {

/// Draw one row-range split: of the column quotas `cols`, how much goes to
/// a row group holding `group_total` items.  This is exactly one
/// multivariate hypergeometric sample (Proposition 6).
template <rng::random_engine64 Engine>
void sample_row_group(Engine& engine, std::span<const std::uint64_t> cols,
                      std::uint64_t group_total, std::span<std::uint64_t> out,
                      const matrix_options& opt) {
  if (opt.recursive_rows) {
    hyp::sample_multivariate_recursive(engine, cols, group_total, out, opt.pol);
  } else {
    hyp::sample_multivariate_chain(engine, cols, group_total, out, opt.pol);
  }
}

template <rng::random_engine64 Engine>
void recmat(Engine& engine, std::span<const std::uint64_t> row_margins,
            std::vector<std::uint64_t> col_quota, comm_matrix& out, std::uint32_t row_lo,
            const matrix_options& opt) {
  const auto p = static_cast<std::uint32_t>(row_margins.size());
  CGP_ASSERT_DBG(p >= 1);
  if (p == 1) {
    // Base case: a single row *is* its remaining column quota.
    auto row = out.row(row_lo);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = col_quota[j];
    return;
  }
  // Choose the split index 0 < q < p.
  const std::uint32_t q = (opt.split == split_rule::balanced) ? p / 2 : p - 1;

  // Total items in the upper row group [q, p).
  std::uint64_t upper_total = 0;
  for (std::uint32_t i = q; i < p; ++i) upper_total += row_margins[i];

  // Split each column quota between the two halves.
  std::vector<std::uint64_t> to_upper(col_quota.size());
  sample_row_group(engine, col_quota, upper_total, to_upper, opt);

  std::vector<std::uint64_t> to_lower(col_quota.size());
  for (std::size_t j = 0; j < col_quota.size(); ++j) to_lower[j] = col_quota[j] - to_upper[j];

  recmat(engine, row_margins.first(q), std::move(to_lower), out, row_lo, opt);
  recmat(engine, row_margins.subspan(q), std::move(to_upper), out, row_lo + q, opt);
}

}  // namespace detail

/// Algorithm 3: sequential row-peeling sampler.
template <rng::random_engine64 Engine>
[[nodiscard]] comm_matrix sample_matrix_rowwise(Engine& engine,
                                                std::span<const std::uint64_t> row_margins,
                                                std::span<const std::uint64_t> col_margins,
                                                const matrix_options& opt = {}) {
  CGP_EXPECTS(!row_margins.empty() && !col_margins.empty());
  CGP_EXPECTS(span_sum(row_margins) == span_sum(col_margins));
  const auto p = static_cast<std::uint32_t>(row_margins.size());
  const auto pc = static_cast<std::uint32_t>(col_margins.size());

  comm_matrix a(p, pc);
  std::vector<std::uint64_t> quota(col_margins.begin(), col_margins.end());
  // Peel rows p-1 .. 1; row 0 receives the leftover quotas (the paper loops
  // i = p-1, ..., 0 with the final iteration forced).
  for (std::uint32_t i = p; i-- > 1;) {
    detail::sample_row_group(engine, quota, row_margins[i], a.row(i), opt);
    for (std::uint32_t j = 0; j < pc; ++j) quota[j] -= a(i, j);
  }
  auto row0 = a.row(0);
  for (std::uint32_t j = 0; j < pc; ++j) row0[j] = quota[j];

  CGP_ENSURES(a.satisfies_margins(row_margins, col_margins));
  return a;
}

/// Algorithm 4 (RecMat): recursive divide-and-conquer sampler.
template <rng::random_engine64 Engine>
[[nodiscard]] comm_matrix sample_matrix_recursive(Engine& engine,
                                                  std::span<const std::uint64_t> row_margins,
                                                  std::span<const std::uint64_t> col_margins,
                                                  const matrix_options& opt = {}) {
  CGP_EXPECTS(!row_margins.empty() && !col_margins.empty());
  CGP_EXPECTS(span_sum(row_margins) == span_sum(col_margins));
  const auto p = static_cast<std::uint32_t>(row_margins.size());
  const auto pc = static_cast<std::uint32_t>(col_margins.size());

  comm_matrix a(p, pc);
  std::vector<std::uint64_t> quota(col_margins.begin(), col_margins.end());
  detail::recmat(engine, row_margins, std::move(quota), a, 0, opt);

  CGP_ENSURES(a.satisfies_margins(row_margins, col_margins));
  return a;
}

/// Number of univariate h(.,.) calls the samplers make for a p x p' matrix:
/// every row split of a k-column quota costs k-1 univariate calls and there
/// are p-1 splits, independent of the recursion shape.
[[nodiscard]] constexpr std::uint64_t matrix_hyp_call_count(std::uint32_t p,
                                                            std::uint32_t p_cols) noexcept {
  return static_cast<std::uint64_t>(p - 1) * (p_cols - 1);
}

}  // namespace cgp::core
