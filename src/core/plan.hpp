// core/plan.hpp
//
// The planner of the plan/executor core: turn a *workload descriptor*
// (how many records, how big, how much memory, how often) plus a *machine
// profile* (threads, cache geometry, calibrated per-item costs) into an
// executable `permutation_plan` -- which backend runs, with how many
// threads, and (for the out-of-core engine) with what (M, B) geometry and
// fan-out -- together with an explainable per-phase cost estimate.
//
// This is the paper's Section 6 message made operational: "the best
// algorithm depends on the regime".  Matrix sampling / fixed overheads
// dominate small n, memory traffic dominates large RAM-resident n, and
// the out-of-core variant is the only feasible choice once the input
// exceeds the memory budget.  The cost formulas mirror the calibrated
// BSP model of cgm/cost.hpp -- T = sum of (c * work + g * traffic + L)
// over phases -- with the (c, g, L) roles played by the profile's
// per-item costs, per-level streaming costs, and per-level overheads:
//
//   T_seq(n)    = n * c_seq(n)                 c_seq ramps from the
//                                              cache-hit to the cache-miss
//                                              rate as n * elem grows past
//                                              the cache (the paper's
//                                              memory-bound Fisher-Yates)
//   T_smp(n, p) = D/r + L_s * (n * c_split / p + O_level)
//                 + n * c_hit / p              L_s = ceil(log_K(n / leaf)),
//                                              D = dispatch overhead,
//                                              amortized over r repetitions
//   T_em(n)     = (L_e + 1) * n * c_em         L_e = ceil(log_K(n / M)),
//                                              one streaming pass per
//                                              distribution level + leaves
//   T_cgm(n, p) = L_d * (b * c_split + 2 * b * w * g + 3 * L)
//                 + L_l * b * c_split + b * c_hit
//                                              b = n/p items per rank,
//                                              w = words per item; L_d
//                                              distributed levels pay the
//                                              BSP (g, L) terms, L_l local
//                                              levels run rank-parallel
//                                              (the paper's Theorem 1 cost
//                                              made a planner candidate;
//                                              feasible only when the
//                                              profile describes >= 2
//                                              transport ranks)
//
// The cgm_simulator backend is never chosen automatically: it is the
// model-faithful measurement instrument, not a production path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cgp::core {

/// Which engine executes the permutation.
enum class backend : std::uint8_t {
  cgm_simulator,  ///< model-faithful virtual machine (counts resources)
  smp,            ///< native shared-memory thread engine
  em,             ///< out-of-core engine (async block-device scatter)
  cgm,            ///< distributed engine over a comm::transport
  sequential,     ///< seq::fisher_yates reference
  prp,            ///< O(1)-memory cipher PRP (src/prp/): pi evaluated, never stored
  automatic,      ///< planner-chosen: cost model picks seq / smp / em / cgm / prp
};

[[nodiscard]] constexpr const char* backend_name(backend b) noexcept {
  switch (b) {
    case backend::cgm_simulator: return "cgm_sim";
    case backend::smp: return "smp";
    case backend::em: return "em";
    case backend::cgm: return "cgm";
    case backend::sequential: return "seq";
    case backend::prp: return "prp";
    case backend::automatic: return "auto";
  }
  return "?";
}

/// What the caller wants permuted.
struct workload {
  std::uint64_t n = 0;                    ///< number of records
  std::uint32_t element_bytes = 8;        ///< size of one record
  /// RAM the permutation may use, in bytes; 0 = unconstrained.  A budget
  /// below n * element_bytes makes the RAM-resident backends infeasible
  /// and forces the out-of-core engine.
  std::uint64_t memory_budget_bytes = 0;
  /// How many permutations of this shape the caller will draw (repeated
  /// generation amortizes fixed dispatch overhead, favouring smp earlier).
  std::uint64_t repetitions = 1;
  /// Fraction of pi's positions the caller will actually read, in (0, 1].
  /// 1.0 (the default) declares dense consumption -- every materializing
  /// backend competes as before and the prp candidate stays out of the
  /// race (its permutation law is a keyed cipher family, statistically
  /// uniform but not the exact-uniform law of the materializing engines,
  /// so `automatic` only offers it to workloads that DECLARE sparse
  /// access).  Below 1.0 the prp backend's cost scales with the accessed
  /// fraction while every other backend still pays for all n, which is
  /// what makes point lookups and shard reads of huge domains planable.
  double accessed_fraction = 1.0;
};

/// Probed / calibrated machine description.  `detect()` fills conservative
/// defaults from the hardware; `calibrate()` measures the per-item rates
/// with short in-process probes (a few milliseconds) -- what bench e15
/// uses, and what servers should run once at startup.
struct machine_profile {
  std::uint32_t threads = 0;            ///< worker threads (0 = hardware)
  std::uint64_t cache_items = 65536;    ///< smp leaf cutoff (items) -- must
                                        ///< match smp::engine_options
  std::uint64_t hit_bytes = 1ull << 18;   ///< working sets <= this run at seq_ns_hit
  std::uint64_t miss_bytes = 1ull << 25;  ///< seq_ns_miss is reached here
  /// Optional third calibration point: Fisher-Yates keeps degrading past
  /// the last cache level (TLB reach, DRAM page locality), so the seq
  /// cost ramps on from (miss_bytes, seq_ns_miss) to (far_bytes,
  /// seq_ns_far) and extrapolates that slope beyond, capped at 2x
  /// seq_ns_far.  far_bytes == 0 disables the segment (flat past miss).
  std::uint64_t far_bytes = 0;
  double seq_ns_hit = 2.5;    ///< Fisher-Yates ns/item, cache-resident
  double seq_ns_miss = 10.0;  ///< Fisher-Yates ns/item, memory-bound
  double seq_ns_far = 0.0;    ///< ns/item at far_bytes (0 = seq_ns_miss)
  // Default per-item rates assume the batched (SIMD-dispatched) label
  // draws of rng/philox_batch.hpp: the split and em passes spend less of
  // their per-item budget on keystream arithmetic than the original
  // scalar-engine estimates did.  `calibrate()` still overwrites split_ns
  // with a measured value; these are the uncalibrated priors.
  double split_ns = 2.4;      ///< smp streaming split, ns/item/level (per thread)
  double level_overhead_ns = 3.0e4;     ///< matrix sampling + barrier per split level
  double dispatch_overhead_ns = 5.0e4;  ///< per-call engine lookup/dispatch
  double em_ns_per_item_pass = 19.0;    ///< em engine ns/item per streaming pass

  // --- BSP communication terms of the distributed cgm backend -----------
  // The classic (p, g, L) triple: p ranks, a per-word streaming cost g
  // through the transport, and a per-superstep latency L.  `detect()`
  // leaves comm_ranks at 1, which marks the cgm candidate infeasible --
  // on a single host the threaded transport shares the same cores as the
  // smp engine and can only add overhead, so `automatic` considers the
  // distributed path only when a profile explicitly describes a scale-out
  // deployment (ranks with their OWN memory and cores: the memory budget
  // is interpreted per rank for the cgm candidate).
  std::uint32_t comm_ranks = 1;      ///< p: transport ranks (1 = no cluster)
  double comm_g_ns_per_word = 5.0;   ///< g: ns per 8-byte word through the transport
  double comm_l_ns = 2.0e4;          ///< L: per-superstep barrier/latency, ns

  /// One batched prp::cipher evaluation (pi of one index, amortized over
  /// an eval_range chunk): kDefaultRounds swap-or-not rounds plus the
  /// expected cycle-walk retry.  Pure ALU work -- no memory traffic, so
  /// unlike every *_ns above it does not ramp with n.  `calibrate()`
  /// overwrites it with a measured rate.
  double prp_eval_ns = 55.0;

  [[nodiscard]] static machine_profile detect();
  [[nodiscard]] static machine_profile calibrate(std::uint64_t small_n = 1ull << 15,
                                                 std::uint64_t large_n = 1ull << 22);

  /// Stable 64-bit fingerprint over every field that can change a plan.
  /// This is the profile component of the plan-cache key (core::cached_plan
  /// in core/registry.hpp): two profiles with equal fingerprints plan every
  /// workload identically, and recalibration changes the fingerprint, so
  /// stale cached plans can never be served for a re-measured machine.
  /// The HOST's active SIMD path (rng::active_simd_path()) is mixed in as
  /// well -- it is deliberately not a stored field, so a profile serialized
  /// on an AVX2 host and loaded on a scalar-only one re-keys automatically:
  /// the calibrated rates embody the vector kernels' speed and must not be
  /// served to a machine running the scalar path (and vice versa).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// One line of the plan's cost breakdown.
struct phase_estimate {
  std::string label;
  double seconds = 0.0;
};

/// Predicted cost of one candidate backend (feasible or not).
struct backend_estimate {
  backend which = backend::sequential;
  bool feasible = true;
  double seconds = 0.0;  ///< predicted seconds per draw (infinite if infeasible)
};

/// The planner's output: everything an executor needs, plus the evidence.
struct permutation_plan {
  backend chosen = backend::sequential;
  std::uint32_t threads = 1;      ///< worker threads (smp/em) or virtual procs (cgm)
  std::uint32_t split_levels = 0; ///< predicted smp recursion depth

  // Out-of-core geometry (meaningful when chosen == backend::em).
  std::uint64_t em_memory_items = 0;  ///< M, in device items
  std::uint32_t em_block_items = 0;   ///< B, items per device block
  std::uint32_t em_fan_out = 0;       ///< K = pow2-floor(M/B - 2), clamped to [2, 256]
  std::uint32_t em_levels = 0;        ///< predicted distribution depth ceil(log_K(n/M))

  /// Echo of workload::accessed_fraction (the prp candidate's cost and
  /// explain()'s win-condition line depend on it).
  double accessed_fraction = 1.0;

  double predicted_seconds = 0.0;        ///< per draw, for the chosen backend
  std::vector<phase_estimate> phases;    ///< per-phase breakdown of the choice
  std::vector<backend_estimate> candidates;  ///< every candidate's prediction

  /// Human-readable account of the decision: the workload, every
  /// candidate's predicted cost, the choice, and its phase breakdown.
  [[nodiscard]] std::string explain() const;
};

/// Plan a permutation of `w` on `prof`.  Deterministic: same inputs, same
/// plan.  The chosen backend is always feasible under the budget.
[[nodiscard]] permutation_plan plan_permutation(const workload& w,
                                                const machine_profile& prof = machine_profile::detect());

}  // namespace cgp::core
