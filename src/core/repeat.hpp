// core/repeat.hpp
//
// Repeated generation -- the use case the paper closes on: "in situations
// where medium sized permutations are needed repeatedly a parallel
// implementation of the matrix sampling will be helpful."
//
// `permutation_stream` owns a machine and produces a sequence of
// independent uniform permutations of a fixed size; successive draws use
// key-separated Philox streams (seed, draw-counter), so the sequence is
// deterministic under the stream's seed, every element is exactly uniform,
// and distinct elements are independent.  The matrix algorithm defaults to
// the cost-optimal parallel sampler (Algorithm 6), which is precisely the
// right choice in the repeated-medium-size regime (see bench e6).
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/machine.hpp"
#include "core/driver.hpp"
#include "rng/splitmix64.hpp"

namespace cgp::core {

class permutation_stream {
 public:
  /// A stream of uniform permutations of {0..n-1} on `nprocs` virtual
  /// processors.
  permutation_stream(std::uint32_t nprocs, std::uint64_t n, std::uint64_t seed,
                     permute_options opt = {})
      : mach_(nprocs, seed), n_(n), seed_(seed), opt_(opt) {}

  /// The next permutation of the sequence.  `stats_out`, if given,
  /// receives the run's accounting.
  [[nodiscard]] std::vector<std::uint64_t> next(cgm::run_stats* stats_out = nullptr) {
    // Key separation per draw: deterministic, independent of how many
    // draws preceded on other stream objects with different seeds.
    mach_.reseed(rng::mix64(seed_ ^ rng::mix64(counter_ + 0x9E3779B97F4A7C15ull)));
    ++counter_;
    return random_permutation_global(mach_, n_, opt_, stats_out);
  }

  /// Draws made so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return counter_; }

  /// Jump the stream to an absolute draw index (for replay/parallel
  /// consumers: element k is a pure function of (seed, k)).
  void seek(std::uint64_t draw_index) noexcept { counter_ = draw_index; }

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t nprocs() const noexcept { return mach_.nprocs(); }

 private:
  cgm::machine mach_;
  std::uint64_t n_;
  std::uint64_t seed_;
  permute_options opt_;
  std::uint64_t counter_ = 0;
};

}  // namespace cgp::core
