// core/repeat.hpp
//
// Repeated generation -- the use case the paper closes on: "in situations
// where medium sized permutations are needed repeatedly a parallel
// implementation of the matrix sampling will be helpful."
//
// `permutation_stream` produces a sequence of independent uniform
// permutations of a fixed size; successive draws use key-separated Philox
// streams (seed, draw-counter), so the sequence is deterministic under the
// stream's seed, every element is exactly uniform, and distinct elements
// are independent.
//
// Two modes:
//   * the classic CGM mode (nprocs, n, seed): every draw runs Algorithm 1
//     on an owned virtual machine with full resource accounting;
//   * the native mode (backend_options, n): every draw goes through the
//     plan/executor core -- including `backend::automatic` -- and reuses
//     the process-wide engine registry, so a stream drawing thousands of
//     permutations shares one warm thread pool instead of constructing
//     one per call.  Set base.repetitions to the expected draw count so
//     the planner amortizes dispatch overhead correctly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cgm/machine.hpp"
#include "core/backend.hpp"
#include "core/driver.hpp"
#include "rng/splitmix64.hpp"

namespace cgp::core {

class permutation_stream {
 public:
  /// CGM mode: a stream of uniform permutations of {0..n-1} on `nprocs`
  /// virtual processors.
  permutation_stream(std::uint32_t nprocs, std::uint64_t n, std::uint64_t seed,
                     permute_options opt = {})
      : mach_(std::in_place, nprocs, seed), n_(n), seed_(seed), opt_(opt) {}

  /// Native mode: a stream of uniform permutations of {0..n-1} drawn
  /// through the plan/executor core; `base.seed` seeds the sequence, the
  /// remaining fields select and tune the backend (`backend::automatic`
  /// lets the planner choose once per draw).
  permutation_stream(const backend_options& base, std::uint64_t n)
      : n_(n), seed_(base.seed), base_(base) {}

  /// The next permutation of the sequence.  `stats_out`, if given,
  /// receives the run's accounting (CGM mode only).
  [[nodiscard]] std::vector<std::uint64_t> next(cgm::run_stats* stats_out = nullptr) {
    // Key separation per draw: deterministic, independent of how many
    // draws preceded on other stream objects with different seeds.
    const std::uint64_t draw_seed =
        rng::mix64(seed_ ^ rng::mix64(counter_ + 0x9E3779B97F4A7C15ull));
    ++counter_;
    if (base_.has_value()) {
      backend_options opt = *base_;
      opt.seed = draw_seed;
      return random_permutation(n_, opt);
    }
    mach_->reseed(draw_seed);
    return random_permutation_global(*mach_, n_, opt_, stats_out);
  }

  /// Draws made so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return counter_; }

  /// Jump the stream to an absolute draw index (for replay/parallel
  /// consumers: element k is a pure function of (seed, k)).
  void seek(std::uint64_t draw_index) noexcept { counter_ = draw_index; }

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t nprocs() const noexcept {
    return mach_.has_value() ? mach_->nprocs() : 0;
  }

 private:
  std::optional<cgm::machine> mach_;  // engaged in CGM mode only
  std::uint64_t n_;
  std::uint64_t seed_;
  permute_options opt_{};
  std::optional<backend_options> base_;  // engaged in native mode only
  std::uint64_t counter_ = 0;
};

}  // namespace cgp::core
