#include "core/plan.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "obs/plan_feedback.hpp"
#include "prp/cipher.hpp"
#include "rng/philox.hpp"
#include "rng/philox_batch.hpp"
#include "rng/splitmix64.hpp"
#include "seq/fisher_yates.hpp"
#include "util/stopwatch.hpp"

namespace cgp::core {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

std::uint32_t normalized_threads(std::uint32_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// smp recursion depth: split until a bucket is at or below the leaf
/// cutoff, fan-out 16 per level (smp::engine_options defaults).
std::uint32_t smp_levels(std::uint64_t n, std::uint64_t leaf_items) {
  if (n <= leaf_items || leaf_items == 0) return 0;
  const double ratio = static_cast<double>(n) / static_cast<double>(leaf_items);
  return static_cast<std::uint32_t>(std::ceil(std::log2(ratio) / 4.0));  // log_16
}

/// Fisher-Yates ns/item as a function of the working set: the hit rate up
/// to hit_bytes, ramping (log-interpolated) to the miss rate at
/// miss_bytes, then -- when a far calibration point exists -- ramping on
/// to seq_ns_far at far_bytes and extrapolating that slope beyond it
/// (capped at 2x seq_ns_far).  The random-access pattern degrades
/// gradually as the set outgrows each cache level and then the TLB reach.
double seq_ns_per_item(const machine_profile& prof, std::uint64_t bytes) {
  const auto log_interp = [](double lo_ns, double hi_ns, std::uint64_t lo_b, std::uint64_t hi_b,
                             std::uint64_t at_b) {
    const double span = std::log2(static_cast<double>(hi_b) / static_cast<double>(lo_b));
    const double at = std::log2(static_cast<double>(at_b) / static_cast<double>(lo_b));
    return lo_ns + (hi_ns - lo_ns) * (at / span);
  };
  if (bytes <= prof.hit_bytes) return prof.seq_ns_hit;
  if (bytes < prof.miss_bytes) {
    return log_interp(prof.seq_ns_hit, prof.seq_ns_miss, prof.hit_bytes, prof.miss_bytes, bytes);
  }
  const bool has_far = prof.far_bytes > prof.miss_bytes && prof.seq_ns_far > 0.0;
  if (!has_far) return prof.seq_ns_miss;
  const double ns =
      log_interp(prof.seq_ns_miss, prof.seq_ns_far, prof.miss_bytes, prof.far_bytes, bytes);
  return std::clamp(ns, std::min(prof.seq_ns_miss, prof.seq_ns_far), 2.0 * prof.seq_ns_far);
}

/// The adaptive fan-out the async em engine derives from (M, B):
/// pow2-floor(M/B - 2), clamped to [2, 256].  Must match
/// em::detail_async::engine_state exactly so the plan's geometry predicts
/// the engine's actual tree.
std::uint32_t adaptive_fan_out(std::uint64_t memory_items, std::uint32_t block_items) {
  const std::uint64_t ratio = memory_items / block_items;
  const std::uint64_t k_raw = std::max<std::uint64_t>(2, ratio > 2 ? ratio - 2 : 2);
  std::uint32_t fan = 2;
  while (2ull * fan <= k_raw && fan < 256) fan *= 2;
  return fan;
}

/// Pick the (M, B) device geometry from the byte budget.  Device items
/// are u64 words; B defaults to the dispatch layer's 4096 and shrinks
/// (power-of-two) under tight budgets to respect the engine's M >= 4B
/// contract.
void fill_em_geometry(permutation_plan& plan, std::uint64_t n, std::uint64_t budget_bytes) {
  std::uint64_t m = budget_bytes == 0 ? (std::uint64_t{1} << 16) : budget_bytes / 8;
  std::uint32_t b = 4096;
  while (b > 16 && m < 4ull * b) b /= 2;
  m = std::max<std::uint64_t>(m, 4ull * b);
  plan.em_memory_items = m;
  plan.em_block_items = b;
  plan.em_fan_out = adaptive_fan_out(m, b);
  if (n <= m) {
    plan.em_levels = 0;
  } else {
    const double ratio = static_cast<double>(n) / static_cast<double>(m);
    plan.em_levels = static_cast<std::uint32_t>(
        std::ceil(std::log2(ratio) / std::log2(static_cast<double>(plan.em_fan_out))));
  }
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  if (s >= 1.0) {
    os.precision(3);
    os << s << " s";
  } else if (s >= 1e-3) {
    os.precision(3);
    os << s * 1e3 << " ms";
  } else {
    os.precision(3);
    os << s * 1e6 << " us";
  }
  return os.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << r;
  return os.str();
}

}  // namespace

machine_profile machine_profile::detect() {
  machine_profile prof;
  prof.threads = normalized_threads(0);
  return prof;
}

machine_profile machine_profile::calibrate(std::uint64_t small_n, std::uint64_t large_n) {
  machine_profile prof = detect();
  small_n = std::max<std::uint64_t>(small_n, 1024);
  large_n = std::max(large_n, small_n * 4);

  // Sequential Fisher-Yates at a cache-resident size, a memory-bound
  // size, and a far (4x) size: the third point captures how the
  // random-access cost keeps growing past the last cache level, which the
  // planner extrapolates for still-larger inputs.
  const auto time_fy = [](std::uint64_t n, std::uint64_t seed, int reps) {
    std::vector<std::uint64_t> v(n);
    std::iota(v.begin(), v.end(), 0);
    double best = kInfeasible;
    for (int r = 0; r < reps; ++r) {
      rng::philox4x64 e(seed, static_cast<std::uint64_t>(r));
      stopwatch sw;
      seq::fisher_yates(e, std::span<std::uint64_t>(v));
      best = std::min(best, sw.seconds());
    }
    return best;
  };
  const std::uint64_t far_n = large_n * 4;
  const double t_small = time_fy(small_n, 0xCA71B0, 3);
  const double t_large = time_fy(large_n, 0xCA71B1, 3);
  const double t_far = time_fy(far_n, 0xCA71B3, 2);
  prof.seq_ns_hit = t_small * 1e9 / static_cast<double>(small_n);
  prof.seq_ns_miss =
      std::max(prof.seq_ns_hit, t_large * 1e9 / static_cast<double>(large_n));
  prof.hit_bytes = small_n * 8;
  prof.miss_bytes = std::max(large_n * 8, prof.hit_bytes * 2);
  prof.far_bytes = std::max(far_n * 8, prof.miss_bytes * 2);
  prof.seq_ns_far = std::max(prof.seq_ns_miss, t_far * 1e9 / static_cast<double>(far_n));

  // The smp engine at the memory-bound size, through the shared registry
  // engine (a warm pool, exactly what production dispatch uses).  Invert
  // the T_smp model for the per-level streaming cost; the inversion
  // reproduces the measured ordering of seq vs smp at this size by
  // construction (clamped below only when smp is far ahead, where the
  // clamp cannot flip the ordering).
  smp::engine_options eopt;
  eopt.threads = prof.threads;
  smp::engine& eng = shared_engine(eopt);
  {
    std::vector<std::uint64_t> v(large_n);
    std::iota(v.begin(), v.end(), 0);
    double best = kInfeasible;
    for (int r = 0; r < 3; ++r) {
      stopwatch sw;
      eng.shuffle(std::span<std::uint64_t>(v), 0xCA71B2 + static_cast<std::uint64_t>(r));
      best = std::min(best, sw.seconds());
    }
    const double p = static_cast<double>(eng.threads());
    const auto levels = std::max<std::uint32_t>(1, smp_levels(large_n, prof.cache_items));
    const double fixed = prof.dispatch_overhead_ns * 1e-9 +
                         static_cast<double>(levels) * prof.level_overhead_ns * 1e-9 +
                         static_cast<double>(large_n) * prof.seq_ns_hit * 1e-9 / p;
    const double per_level_item =
        (best - fixed) * 1e9 * p / (static_cast<double>(levels) * static_cast<double>(large_n));
    prof.split_ns = std::max(0.05, per_level_item);
  }

  // One batched cipher evaluation (the prp candidate's only per-item
  // term).  Pure ALU work, so a short probe at any domain size measures
  // the production rate; 1<<16 evals take well under a millisecond.
  {
    const std::uint64_t probe_n = std::uint64_t{1} << 30;
    const prp::cipher c(0xCA71B4, probe_n);
    std::vector<std::uint64_t> out(std::uint64_t{1} << 16);
    double best = kInfeasible;
    for (int r = 0; r < 3; ++r) {
      stopwatch sw;
      c.eval_range(static_cast<std::uint64_t>(r) * out.size(), out, nullptr);
      best = std::min(best, sw.seconds());
    }
    prof.prp_eval_ns = std::max(1.0, best * 1e9 / static_cast<double>(out.size()));
  }
  return prof;
}

std::uint64_t machine_profile::fingerprint() const noexcept {
  // Chain every plan-relevant field through the same mix discipline the
  // seed derivations use; doubles enter as their bit patterns, so any
  // recalibration that moves a rate by one ulp already re-keys the cache.
  const auto mix_in = [](std::uint64_t h, std::uint64_t v) {
    return rng::mix64(h ^ rng::mix64(v + 0x9E3779B97F4A7C15ull));
  };
  const auto bits = [](double d) { return std::bit_cast<std::uint64_t>(d); };
  std::uint64_t h = 0x50524F46ull;  // 'PROF'
  h = mix_in(h, threads);
  h = mix_in(h, cache_items);
  h = mix_in(h, hit_bytes);
  h = mix_in(h, miss_bytes);
  h = mix_in(h, far_bytes);
  h = mix_in(h, bits(seq_ns_hit));
  h = mix_in(h, bits(seq_ns_miss));
  h = mix_in(h, bits(seq_ns_far));
  h = mix_in(h, bits(split_ns));
  h = mix_in(h, bits(level_overhead_ns));
  h = mix_in(h, bits(dispatch_overhead_ns));
  h = mix_in(h, bits(em_ns_per_item_pass));
  h = mix_in(h, comm_ranks);
  h = mix_in(h, bits(comm_g_ns_per_word));
  h = mix_in(h, bits(comm_l_ns));
  h = mix_in(h, bits(prp_eval_ns));
  // The build's cipher depth, not a field: a binary compiled with a
  // different kDefaultRounds prices the prp candidate differently (and
  // produces different permutations), so its cached plans must re-key.
  h = mix_in(h, prp::cipher::kDefaultRounds);
  // Runtime, not a field: re-keys cached plans whenever the profile moves
  // to a host with a different ISA (or CGP_SIMD flips the path).
  h = mix_in(h, static_cast<std::uint64_t>(rng::active_simd_path()));
  return h;
}

permutation_plan plan_permutation(const workload& w, const machine_profile& prof) {
  permutation_plan plan;
  const std::uint64_t n = std::max<std::uint64_t>(w.n, 1);
  const std::uint64_t bytes = n * w.element_bytes;
  const std::uint32_t p = normalized_threads(prof.threads);
  const double reps = static_cast<double>(std::max<std::uint64_t>(w.repetitions, 1));
  const bool ram_feasible = w.memory_budget_bytes == 0 || w.memory_budget_bytes >= bytes;
  // Declared consumption density, clamped into (0, 1]; non-positive or
  // unset values mean "all of it".
  const double frac = (w.accessed_fraction > 0.0 && w.accessed_fraction <= 1.0)
                          ? w.accessed_fraction
                          : 1.0;
  plan.accessed_fraction = frac;

  // --- candidate costs (seconds per draw) -----------------------------
  const double t_seq =
      ram_feasible ? static_cast<double>(n) * seq_ns_per_item(prof, bytes) * 1e-9 : kInfeasible;

  const std::uint32_t levels_smp = smp_levels(n, prof.cache_items);
  double t_smp = kInfeasible;
  if (ram_feasible) {
    if (levels_smp == 0) {
      // At or below the leaf cutoff the engine IS a Fisher-Yates; the
      // epsilon keeps the planner on the simpler sequential path at ties.
      t_smp = t_seq + 1e-6;
    } else {
      t_smp = prof.dispatch_overhead_ns * 1e-9 / reps +
              static_cast<double>(levels_smp) *
                  (static_cast<double>(n) * prof.split_ns * 1e-9 / p +
                   prof.level_overhead_ns * 1e-9) +
              static_cast<double>(n) * prof.seq_ns_hit * 1e-9 / p;
    }
  }

  fill_em_geometry(plan, n, w.memory_budget_bytes);
  const double em_passes = static_cast<double>(plan.em_levels) + 1.0;
  const double t_em = em_passes * static_cast<double>(n) * prof.em_ns_per_item_pass * 1e-9;

  // The distributed cgm backend: Theorem 1's cost with the profile's BSP
  // (p, g, L) terms.  Feasible only for a scale-out profile (>= 2 ranks,
  // each bringing its own memory: the budget is per rank, and a rank must
  // hold its block plus scratch plus message staging, ~3 blocks).
  const std::uint32_t ranks = std::max(1u, prof.comm_ranks);
  const std::uint64_t rank_block = (n + ranks - 1) / ranks;
  const bool cgm_feasible =
      ranks >= 2 && (w.memory_budget_bytes == 0 ||
                     3 * rank_block * w.element_bytes <= w.memory_budget_bytes);
  // Per-phase cost terms, shared between t_cgm and the phase breakdown
  // below (one source of truth so explain() cannot drift from
  // predicted_seconds).
  double t_cgm = kInfeasible;
  double cgm_dist_s = 0.0;   // distributed levels: split + h-relation + barriers
  double cgm_local_s = 0.0;  // local levels, rank-parallel
  double cgm_leaf_s = 0.0;   // leaf fisher-yates per rank
  if (cgm_feasible) {
    // Distributed split levels: the range localizes once buckets fall
    // under a block, i.e. after ceil(log_K p) levels (K = 16, the smp
    // fan-out).  The remaining depth of the smp recursion runs locally
    // and rank-parallel.
    const std::uint32_t levels_total = smp_levels(n, prof.cache_items);
    std::uint32_t dist_levels = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::ceil(std::log2(static_cast<double>(ranks)) / 4.0)));
    dist_levels = std::min(dist_levels, std::max(1u, levels_total));
    const std::uint32_t local_levels =
        levels_total > dist_levels ? levels_total - dist_levels : 0;
    const double b = static_cast<double>(rank_block);
    const double words_per_item =
        static_cast<double>((std::uint64_t{w.element_bytes} + 7) / 8);
    // Each distributed level moves every item off its rank and back in
    // (pos + payload words, both directions counted once as g per word),
    // plus three barriers (move, gather, scatter supersteps).
    const double level_comm_s =
        b * (1.0 + words_per_item) * 2.0 * prof.comm_g_ns_per_word * 1e-9 +
        3.0 * prof.comm_l_ns * 1e-9;
    cgm_dist_s =
        static_cast<double>(dist_levels) * (b * prof.split_ns * 1e-9 + level_comm_s);
    cgm_local_s = static_cast<double>(local_levels) * b * prof.split_ns * 1e-9;
    cgm_leaf_s = b * prof.seq_ns_hit * 1e-9;
    t_cgm = prof.dispatch_overhead_ns * 1e-9 / reps + cgm_dist_s + cgm_local_s + cgm_leaf_s;
  }

  // The prp candidate: evaluate pi pointwise with the cipher instead of
  // materializing it.  Pays only for the positions actually read -- frac *
  // n evaluations at the calibrated ALU rate -- while every materializing
  // candidate above pays for all n (and for a repeated workload pays it
  // EVERY draw, where prp re-keys for free: a new draw is a new (seed, n),
  // zero work until positions are read).  Offered only when the workload
  // declares sparse access (frac < 1): the cipher's law is a keyed PRP
  // family -- statistically uniform (chi-square-pinned) but not the exact
  // uniform law of the materializing engines -- so dense default workloads
  // keep their previous plans bit-for-bit.
  const bool prp_feasible = frac < 1.0;
  const double t_prp =
      prp_feasible
          ? prof.dispatch_overhead_ns * 1e-9 / reps +
                frac * static_cast<double>(n) * prof.prp_eval_ns * 1e-9
          : kInfeasible;

  plan.candidates = {
      {backend::sequential, ram_feasible, t_seq},
      {backend::smp, ram_feasible, t_smp},
      {backend::em, true, t_em},
      {backend::cgm, cgm_feasible, t_cgm},
      {backend::prp, prp_feasible, t_prp},
  };

  // --- choose ----------------------------------------------------------
  const backend_estimate* best = &plan.candidates[0];
  for (const auto& c : plan.candidates) {
    if (c.feasible && c.seconds < best->seconds) best = &c;
  }
  if (!best->feasible) best = &plan.candidates[2];  // em is always feasible
  plan.chosen = best->which;
  plan.predicted_seconds = best->seconds;
  plan.split_levels = levels_smp;
  plan.threads = plan.chosen == backend::sequential ? 1
                 : plan.chosen == backend::prp      ? 1
                 : plan.chosen == backend::cgm      ? ranks
                                                    : p;

  // --- phase breakdown of the choice -----------------------------------
  switch (plan.chosen) {
    case backend::sequential:
      plan.phases = {{"fisher-yates", t_seq}};
      break;
    case backend::prp:
      plan.phases = {
          {"dispatch (amortized over repetitions)", prof.dispatch_overhead_ns * 1e-9 / reps},
          {"cipher evaluations (accessed fraction of n)",
           frac * static_cast<double>(n) * prof.prp_eval_ns * 1e-9},
      };
      break;
    case backend::cgm:
      plan.phases = {
          {"dispatch (amortized over repetitions)", prof.dispatch_overhead_ns * 1e-9 / reps},
          {"distributed split levels (h-relation + barriers)", cgm_dist_s},
          {"local split levels (rank-parallel)", cgm_local_s},
          {"leaf fisher-yates", cgm_leaf_s},
      };
      break;
    case backend::smp:
      if (levels_smp == 0) {
        plan.phases = {{"leaf fisher-yates (fits cache cutoff)", t_smp}};
      } else {
        plan.phases = {
            {"dispatch (amortized over repetitions)", prof.dispatch_overhead_ns * 1e-9 / reps},
            {"split levels (stream + matrix)",
             static_cast<double>(levels_smp) *
                 (static_cast<double>(n) * prof.split_ns * 1e-9 / p +
                  prof.level_overhead_ns * 1e-9)},
            {"leaf fisher-yates", static_cast<double>(n) * prof.seq_ns_hit * 1e-9 / p},
        };
      }
      break;
    default:
      plan.phases = {
          {"distribution levels", static_cast<double>(plan.em_levels) * static_cast<double>(n) *
                                      prof.em_ns_per_item_pass * 1e-9},
          {"leaf pass", static_cast<double>(n) * prof.em_ns_per_item_pass * 1e-9},
      };
      break;
  }
  return plan;
}

std::string permutation_plan::explain() const {
  std::ostringstream os;
  os << "plan: backend=" << backend_name(chosen) << " threads=" << threads;
  if (chosen == backend::smp) os << " split_levels=" << split_levels;
  if (chosen == backend::cgm) os << " ranks=" << threads;
  if (chosen == backend::em) {
    os << " M=" << em_memory_items << " B=" << em_block_items << " K=" << em_fan_out
       << " levels=" << em_levels;
  }
  if (accessed_fraction < 1.0) os << " accessed_fraction=" << accessed_fraction;
  os << " rng.simd_path=" << rng::simd_path_name(rng::active_simd_path());
  os << " predicted=" << fmt_seconds(predicted_seconds) << "\n";
  os << "candidates:\n";
  for (const auto& c : candidates) {
    os << "  " << backend_name(c.which) << ": ";
    if (!c.feasible) {
      os << (c.which == backend::prp
                 ? "infeasible (dense access: workload reads all of pi, and the "
                   "cipher's law is pseudorandom, not the exact-uniform law)"
                 : "infeasible (exceeds memory budget)");
    } else {
      os << fmt_seconds(c.seconds);
    }
    if (c.which == chosen) os << "  <- chosen";
    os << "\n";
  }
  // The prp candidate's win conditions, stated whether or not it won: it
  // pays per position READ while everyone else pays per position STORED.
  os << "prp wins when: accessed_fraction << 1 (declared sparse lookups / shard"
        " reads; currently "
     << (accessed_fraction < 1.0 ? "declared" : "NOT declared -- prp sits out")
     << "), repetitions >> 1 (each draw is a free re-key, no rebuild), or n"
        " beyond the memory budget (O(1) state vs em's on-device pi)\n";
  os << "phases:\n";
  for (const auto& ph : phases) {
    os << "  " << ph.label << ": " << fmt_seconds(ph.seconds) << "\n";
  }

  // --- predicted vs measured (ROADMAP-5 feedback loop) -------------------
  // The obs layer logs (plan, measured phase times) for every executed job
  // (core::feedback_scope); aggregate what it has seen for this backend.
  const obs::backend_feedback fb = obs::plan_feedback_for(backend_name(chosen));
  if (fb.jobs == 0) {
    os << "feedback: no executed jobs recorded for backend=" << backend_name(chosen) << "\n";
    return os.str();
  }
  const double jobs = static_cast<double>(fb.jobs);
  const double pred_avg = fb.predicted_seconds / jobs;
  const double meas_avg = fb.measured_seconds / jobs;
  const auto flag = [](double predicted, double measured) {
    if (predicted <= 0.0 || measured <= 0.0) return "";
    const double ratio = measured / predicted;
    return (ratio > 2.0 || ratio < 0.5) ? "  <- MISPREDICT (>2x off)" : "";
  };
  os << "feedback (" << fb.jobs << " executed job" << (fb.jobs == 1 ? "" : "s")
     << ", backend=" << backend_name(chosen) << ", per-job averages):\n";
  os << "  total: predicted=" << fmt_seconds(pred_avg) << " measured=" << fmt_seconds(meas_avg);
  if (pred_avg > 0.0 && meas_avg > 0.0) {
    os << " (x" << fmt_ratio(meas_avg / pred_avg) << ")";
  }
  os << flag(pred_avg, meas_avg) << "\n";
  for (const auto& m : fb.measured_phases) {
    os << "  " << m.label << ": measured=" << fmt_seconds(m.seconds / jobs);
    for (const auto& p : fb.predicted_phases) {
      if (p.label != m.label) continue;
      os << " predicted=" << fmt_seconds(p.seconds / jobs);
      if (p.seconds > 0.0 && m.seconds > 0.0) {
        os << " (x" << fmt_ratio(m.seconds / p.seconds) << ")";
      }
      os << flag(p.seconds / jobs, m.seconds / jobs);
      break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cgp::core
