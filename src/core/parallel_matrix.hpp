// core/parallel_matrix.hpp
//
// Parallel sampling of the communication matrix on the coarse-grained
// machine, for the symmetric case the paper focuses on (p' = p processors,
// every block of size M):
//
//  * `sample_matrix_logp`    -- Algorithm 5: the processor range is halved
//    repeatedly; the head of each range holds the column quotas of its row
//    range and splits them with one multivariate hypergeometric sample per
//    level, handing the upper half to a new head.  Theta(p log p) time,
//    communication and h(.,.) calls per processor (Proposition 8).
//  * `sample_matrix_optimal` -- Algorithm 6: the same halving, but applied
//    to the *matrix dimensions alternately* (row ranges and column ranges
//    swap roles each level), so the vectors a head handles shrink
//    geometrically; every processor finishes with the row/column margins of
//    an O(sqrt p) x O(sqrt p) submatrix, samples it sequentially, and one
//    final superstep redistributes rows.  Theta(p) per processor --
//    cost-optimal (Proposition 9, Theorem 2).
//  * `sample_matrix_replicated` -- every processor samples the whole matrix
//    from a *shared* stream (Theta(p^2) work each, zero communication);
//    the simplest correct baseline, useful when p is tiny and as a
//    differential-testing oracle for the other two.
//
// Each returns this processor's row a_{id,*} of the sampled matrix.  All
// three draw from the same exact distribution (Problem 2); the tests verify
// that by chi-squaring each against the closed-form law.
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/machine.hpp"
#include "core/sample_matrix.hpp"
#include "hyp/sample.hpp"

namespace cgp::core {

/// Algorithm 5.  `block` is M, the per-processor block size.
[[nodiscard]] std::vector<std::uint64_t> sample_matrix_logp(cgm::context& ctx,
                                                            std::uint64_t block,
                                                            const matrix_options& opt = {});

/// Algorithm 6.  `block` is M, the per-processor block size.
[[nodiscard]] std::vector<std::uint64_t> sample_matrix_optimal(cgm::context& ctx,
                                                               std::uint64_t block,
                                                               const matrix_options& opt = {});

/// Replicated sequential sampling from a shared stream (general margins
/// are supported: every processor passes the same two margin vectors).
[[nodiscard]] std::vector<std::uint64_t> sample_matrix_replicated(
    cgm::context& ctx, std::span<const std::uint64_t> row_margins,
    std::span<const std::uint64_t> col_margins, const matrix_options& opt = {});

}  // namespace cgp::core
