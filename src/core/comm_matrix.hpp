// core/comm_matrix.hpp
//
// The communication matrix A = (a_ij) of the paper's Section 2: a_ij is the
// number of items source block B_i sends to target block B'_j.  Legal
// matrices satisfy the conservation laws (paper eqs. (2), (3))
//
//     sum_j a_ij = m_i      (row sums: everything B_i holds is sent)
//     sum_i a_ij = m'_j     (column sums: B'_j is filled exactly)
//
// and under a uniform random permutation A is distributed with
//
//     P(A) = (prod_i m_i!) (prod_j m'_j!) / ( n!  prod_ij a_ij! )
//
// (the number of permutations realizing A over n!) -- the "generalization
// of the multivariate hypergeometric distribution" of Section 3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/span2d.hpp"

namespace cgp::core {

class comm_matrix {
 public:
  comm_matrix() = default;
  comm_matrix(std::uint32_t rows, std::uint32_t cols)
      : rows_(rows), cols_(cols), a_(static_cast<std::size_t>(rows) * cols, 0) {}

  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::uint64_t& operator()(std::uint32_t i, std::uint32_t j) noexcept {
    return a_[static_cast<std::size_t>(i) * cols_ + j];
  }
  [[nodiscard]] std::uint64_t operator()(std::uint32_t i, std::uint32_t j) const noexcept {
    return a_[static_cast<std::size_t>(i) * cols_ + j];
  }

  [[nodiscard]] std::span<std::uint64_t> row(std::uint32_t i) noexcept {
    return {a_.data() + static_cast<std::size_t>(i) * cols_, cols_};
  }
  [[nodiscard]] std::span<const std::uint64_t> row(std::uint32_t i) const noexcept {
    return {a_.data() + static_cast<std::size_t>(i) * cols_, cols_};
  }

  [[nodiscard]] span2d<std::uint64_t> view() noexcept { return {a_.data(), rows_, cols_}; }
  [[nodiscard]] span2d<const std::uint64_t> view() const noexcept {
    return {a_.data(), rows_, cols_};
  }

  /// Total items n = sum of all entries.
  [[nodiscard]] std::uint64_t total() const noexcept;

  [[nodiscard]] std::vector<std::uint64_t> row_sums() const;
  [[nodiscard]] std::vector<std::uint64_t> col_sums() const;

  /// Check the conservation laws (2) and (3) against the given margins.
  [[nodiscard]] bool satisfies_margins(std::span<const std::uint64_t> row_margins,
                                       std::span<const std::uint64_t> col_margins) const;

  /// log P(A) under the uniform-permutation-induced distribution (the
  /// margins are read off the matrix itself).
  [[nodiscard]] double log_probability() const;

  /// Proposition 4 (self-similarity): merge consecutive row groups and
  /// column groups given by boundary indices (0 = i_0 < i_1 < ... < i_q =
  /// rows, same for columns); the result is distributed as the coarser
  /// problem's communication matrix.
  [[nodiscard]] comm_matrix merge(std::span<const std::uint32_t> row_bounds,
                                  std::span<const std::uint32_t> col_bounds) const;

  friend bool operator==(const comm_matrix&, const comm_matrix&) = default;

 private:
  std::uint32_t rows_ = 0;
  std::uint32_t cols_ = 0;
  std::vector<std::uint64_t> a_;
};

/// Build the communication matrix a permutation *realizes*: item at global
/// source position g moves to global target position perm[g]; positions are
/// blocked by the given margins.  This is the "a posteriori" matrix of
/// Problem 2 and the reference against which sampled matrices are tested.
[[nodiscard]] comm_matrix matrix_of_permutation(std::span<const std::uint64_t> perm,
                                                std::span<const std::uint64_t> row_margins,
                                                std::span<const std::uint64_t> col_margins);

}  // namespace cgp::core
