// core/routing.hpp
//
// Permutation ROUTING -- deliberately separate from permutation
// GENERATION.  The paper's Section 1 warns that its problem is "not to be
// confounded with the permutation routing problem" (Kruskal/Rudolph/Snir
// and the BSP h-relation literature): routing moves data along a *given*
// permutation; the paper's contribution is sampling the permutation
// itself.  This module provides the routing side so the two can be
// composed: generate pi with Algorithm 1's machinery, then route payloads
// by pi, or invert pi, all in one balanced h-relation each.
//
// Layout convention: a "distributed permutation" pi is a vector of n
// distinct global indices stored blockwise (processor i holds
// pi[off_i .. off_i + m_i)), like every other distributed vector here.
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/collectives.hpp"
#include "cgm/machine.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::core {

namespace detail {

/// Gather the blockwise layout of a distributed vector: every processor
/// announces its local size; returns the global offsets (size p+1).
inline std::vector<std::uint64_t> layout_offsets(cgm::context& ctx, std::uint64_t local_size) {
  const std::uint64_t mine[1] = {local_size};
  const auto all = cgm::all_gather(ctx, std::span<const std::uint64_t>(mine, 1));
  std::vector<std::uint64_t> off(ctx.nprocs() + 1, 0);
  for (std::uint32_t i = 0; i < ctx.nprocs(); ++i) off[i + 1] = off[i] + all[i][0];
  ctx.charge(ctx.nprocs());
  return off;
}

inline std::uint32_t owner_of(const std::vector<std::uint64_t>& off, std::uint64_t g) noexcept {
  std::uint32_t lo = 0;
  auto hi = static_cast<std::uint32_t>(off.size() - 1);
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (off[mid] <= g) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace detail

/// Route `local_data` along the distributed permutation `local_pi`
/// (same local length): the item at global position g moves to global
/// position pi[g].  Returns this processor's block of the routed vector.
/// One all-to-all superstep; the h-relation is exactly the communication
/// matrix pi realizes (Section 2's a_ij, a posteriori).
template <typename T>
[[nodiscard]] std::vector<T> route_by_permutation(cgm::context& ctx,
                                                  const std::vector<T>& local_data,
                                                  const std::vector<std::uint64_t>& local_pi) {
  static_assert(std::is_trivially_copyable_v<T>);
  CGP_EXPECTS(local_data.size() == local_pi.size());
  constexpr std::uint32_t kTagRoute = 0x4009'0001;
  const std::uint32_t p = ctx.nprocs();

  const auto off = detail::layout_offsets(ctx, local_pi.size());
  const std::uint64_t my_off = off[ctx.id()];
  const std::uint64_t n = off[p];

  // Stage (destination, value) pairs per owner.
  struct slot {
    std::uint64_t pos;
    T value;
  };
  std::vector<std::vector<slot>> outgoing(p);
  for (std::size_t i = 0; i < local_pi.size(); ++i) {
    const std::uint64_t dest = local_pi[i];
    CGP_EXPECTS(dest < n);
    outgoing[detail::owner_of(off, dest)].push_back(slot{dest, local_data[i]});
    (void)my_off;
  }
  ctx.charge(local_pi.size());
  for (std::uint32_t d = 0; d < p; ++d)
    ctx.send(d, kTagRoute, std::span<const slot>(outgoing[d]));
  ctx.sync();

  std::vector<T> out(local_pi.size());
  std::uint64_t received = 0;
  for (const auto& msg : ctx.take_all(kTagRoute)) {
    for (const auto& s : msg.template as<slot>()) {
      const std::uint64_t local_pos = s.pos - off[ctx.id()];
      CGP_ASSERT(local_pos < out.size());
      out[static_cast<std::size_t>(local_pos)] = s.value;
      ++received;
    }
  }
  ctx.charge(received);
  CGP_ENSURES(received == out.size());
  return out;
}

/// Invert a distributed permutation: returns this processor's block of
/// pi^-1 (same layout).  One all-to-all superstep: the pair (g -> pi[g])
/// is sent to the owner of position pi[g], which records pi^-1[pi[g]] = g.
[[nodiscard]] inline std::vector<std::uint64_t> invert_permutation(
    cgm::context& ctx, const std::vector<std::uint64_t>& local_pi) {
  constexpr std::uint32_t kTagInv = 0x4009'0002;
  const std::uint32_t p = ctx.nprocs();
  const auto off = detail::layout_offsets(ctx, local_pi.size());
  const std::uint64_t my_off = off[ctx.id()];
  const std::uint64_t n = off[p];

  struct pair64 {
    std::uint64_t image;   // pi[g]
    std::uint64_t source;  // g
  };
  std::vector<std::vector<pair64>> outgoing(p);
  for (std::size_t i = 0; i < local_pi.size(); ++i) {
    const std::uint64_t image = local_pi[i];
    CGP_EXPECTS(image < n);
    outgoing[detail::owner_of(off, image)].push_back(pair64{image, my_off + i});
  }
  ctx.charge(local_pi.size());
  for (std::uint32_t d = 0; d < p; ++d)
    ctx.send(d, kTagInv, std::span<const pair64>(outgoing[d]));
  ctx.sync();

  std::vector<std::uint64_t> inv(local_pi.size());
  std::uint64_t received = 0;
  for (const auto& msg : ctx.take_all(kTagInv)) {
    for (const auto& pr : msg.as<pair64>()) {
      const std::uint64_t local_pos = pr.image - off[ctx.id()];
      CGP_ASSERT(local_pos < inv.size());
      inv[static_cast<std::size_t>(local_pos)] = pr.source;
      ++received;
    }
  }
  ctx.charge(received);
  CGP_ENSURES(received == inv.size());
  return inv;
}

/// Compose two distributed permutations blockwise: returns sigma o pi
/// (i.e. (sigma o pi)[g] = sigma[pi[g]]), same layout.  Implemented as a
/// route of sigma's values along pi^-1... equivalently: fetch sigma at
/// positions pi[g].  One request + one reply superstep.
[[nodiscard]] inline std::vector<std::uint64_t> compose_permutations(
    cgm::context& ctx, const std::vector<std::uint64_t>& local_pi,
    const std::vector<std::uint64_t>& local_sigma) {
  constexpr std::uint32_t kTagReq = 0x4009'0003;
  constexpr std::uint32_t kTagRep = 0x4009'0004;
  CGP_EXPECTS(local_pi.size() == local_sigma.size());
  const std::uint32_t p = ctx.nprocs();
  const auto off = detail::layout_offsets(ctx, local_pi.size());
  const std::uint64_t my_off = off[ctx.id()];

  struct req {
    std::uint64_t at;    // global index into sigma
    std::uint64_t from;  // requesting global position
  };
  std::vector<std::vector<req>> requests(p);
  for (std::size_t i = 0; i < local_pi.size(); ++i)
    requests[detail::owner_of(off, local_pi[i])].push_back(req{local_pi[i], my_off + i});
  ctx.charge(local_pi.size());
  for (std::uint32_t d = 0; d < p; ++d)
    ctx.send(d, kTagReq, std::span<const req>(requests[d]));
  ctx.sync();

  struct rep {
    std::uint64_t from;   // requesting global position
    std::uint64_t value;  // sigma[at]
  };
  std::vector<std::vector<rep>> replies(p);
  for (const auto& msg : ctx.take_all(kTagReq)) {
    for (const auto& r : msg.as<req>()) {
      const std::uint64_t local_pos = r.at - my_off;
      CGP_ASSERT(local_pos < local_sigma.size());
      replies[detail::owner_of(off, r.from)].push_back(
          rep{r.from, local_sigma[static_cast<std::size_t>(local_pos)]});
    }
  }
  for (std::uint32_t d = 0; d < p; ++d)
    ctx.send(d, kTagRep, std::span<const rep>(replies[d]));
  ctx.sync();

  std::vector<std::uint64_t> out(local_pi.size());
  for (const auto& msg : ctx.take_all(kTagRep)) {
    for (const auto& r : msg.as<rep>())
      out[static_cast<std::size_t>(r.from - my_off)] = r.value;
  }
  ctx.charge(out.size());
  return out;
}

}  // namespace cgp::core
