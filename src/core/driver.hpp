// core/driver.hpp
//
// Whole-vector convenience drivers: scatter a global vector over the
// machine's processors, run Algorithm 1, gather the permuted vector back.
//
// DEPRECATED SURFACE: `permute_global` remains as a thin shim kept for
// the model-counting experiments and existing tests -- the machine it
// drives is itself an adapter over the transport layer now.  Production
// code should call `cgp::context::shuffle` (core/context.hpp), which
// dispatches to the distributed `backend::cgm` engine over the same
// transports; SPMD code on already-distributed data should call
// `parallel_random_permutation` (simulator, counted) or
// `cgm::distributed_shuffle` (native, over any comm::endpoint) directly.
#pragma once

#include <cstdint>
#include <vector>

#include "cgm/machine.hpp"
#include "core/permute.hpp"
#include "util/assert.hpp"
#include "util/prefix.hpp"

namespace cgp::core {

/// Permute `data` uniformly at random using machine `mach` (p virtual
/// processors; data is dealt into balanced blocks).  Returns the permuted
/// vector; `stats_out`, if given, receives the run's resource accounting.
template <typename T>
[[nodiscard]] std::vector<T> permute_global(cgm::machine& mach, const std::vector<T>& data,
                                            const permute_options& opt = {},
                                            cgm::run_stats* stats_out = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint32_t p = mach.nprocs();
  const std::uint64_t n = data.size();
  std::vector<T> result(data.size());

  // Equal blocks let the parallel matrix samplers (Algorithms 5/6) run --
  // they cover the symmetric case m_i = m'_j = n/p the paper focuses on.
  // When p does not divide n the balanced blocks differ by one item, so we
  // fall back to the general-margins pipeline (Problem 1), which samples the
  // matrix with the replicated sequential algorithm instead.
  const bool equal = (n % p == 0);

  // The "scatter" of the driver: deal the global vector into per-processor
  // blocks *before* entering the SPMD region.  The SPMD body then only
  // moves its own O(n/p) block instead of holding a reference to the whole
  // global vector -- on a real distributed machine the body could not see
  // `data` at all, so the simulated body must not depend on it either (and
  // the deal-out now happens outside the simulated/timed region).
  std::vector<std::vector<T>> blocks(p);
  for (std::uint32_t i = 0; i < p; ++i) {
    const std::uint64_t off = balanced_block_offset(n, p, i);
    const std::uint64_t len = balanced_block_size(n, p, i);
    blocks[i].assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                     data.begin() + static_cast<std::ptrdiff_t>(off + len));
  }

  auto stats = mach.run([&](cgm::context& ctx) {
    const std::uint64_t off = balanced_block_offset(n, p, ctx.id());
    const std::uint64_t len = balanced_block_size(n, p, ctx.id());
    std::vector<T> local = std::move(blocks[ctx.id()]);
    CGP_ASSERT(local.size() == len);

    std::vector<T> permuted =
        equal ? parallel_random_permutation(ctx, std::move(local), opt)
              : parallel_random_permutation_general(ctx, std::move(local), len, opt.sampling);

    // Blocks are disjoint slices of `result`, so direct writes are
    // race-free (this is the "gather" of the driver, free of charge).
    std::copy(permuted.begin(), permuted.end(),
              result.begin() + static_cast<std::ptrdiff_t>(off));
  });
  if (stats_out != nullptr) *stats_out = std::move(stats);
  return result;
}

/// Sample a uniform random permutation pi of {0..n-1} with the parallel
/// pipeline; returns pi as a vector (pi[i] = image of i).
[[nodiscard]] inline std::vector<std::uint64_t> random_permutation_global(
    cgm::machine& mach, std::uint64_t n, const permute_options& opt = {},
    cgm::run_stats* stats_out = nullptr) {
  std::vector<std::uint64_t> iota(n);
  for (std::uint64_t i = 0; i < n; ++i) iota[i] = i;
  return permute_global(mach, iota, opt, stats_out);
}

}  // namespace cgp::core
