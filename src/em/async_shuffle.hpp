// em/async_shuffle.hpp
//
// The out-of-core permutation engine: em/shuffle.hpp's coarse-grained
// scatter decomposition, re-engineered so block I/O overlaps computation
// instead of stalling on every transfer.  Three ideas carry the design:
//
//  1. *Index-keyed labels.*  Every bucket label is drawn from a Philox
//     stream keyed (seed, level, bucket) at counter position `index`, so
//     the label of item i is a pure function of (seed, level, bucket, i).
//     Consequences: the counting pass needs NO I/O at all (labels are
//     recomputed, never stored -- the synchronous engine's entire label
//     device and its two extra scan passes disappear), and any worker can
//     jump to any index range of the stream in O(1)
//     (rng::stream_engine_at), so label generation parallelizes without
//     hand-off.
//  2. *Double-buffered asynchronous scatter.*  Data blocks are streamed
//     through a depth-bounded async_io_queue (em/block_device.hpp): each
//     worker keeps `buffer_depth` reads in flight ahead of the block it is
//     scattering, and bucket output is staged in block-aligned buffers
//     that are flushed through a second queue as fire-and-forget writes.
//     Compute (label regeneration + scatter staging + leaf Fisher-Yates)
//     runs on an smp::thread_pool; transfers run on the queues' I/O
//     threads; neither waits for the other except at level barriers.
//  3. *Deterministic parallel decomposition.*  The scatter is organized
//     like smp/parallel_split.hpp: per-chunk label histograms and
//     column-prefix offsets let every chunk write its slice of every
//     bucket at a precomputed position, so the output is the one the
//     sequential scan would produce -- bit-identical for ANY buffer depth,
//     worker count, and chunking.  Partial boundary blocks are
//     merge-written atomically by the device (write_items), so concurrent
//     cursors sharing an edge block compose instead of clobbering.
//
// Spill policy: `adaptive` picks the fan-out from the device geometry
// (K = M/B - 2, rounded down to a power of two -- the classical
// external-distribution choice, fastest for a given machine), which makes
// the recursion shape and hence the permutation a function of (M, B).
// `fixed_fan_out` pins fan-out AND leaf cutoff in the options, so the
// permutation depends only on (seed, n, fan_out, leaf_items): the same
// seed reproduces the same permutation on machines with different memory
// and block sizes, at the price of a possibly geometry-suboptimal tree.
//
// Backend-agreement contract: an input that fits in memory (n <= leaf
// cutoff) is a single Fisher-Yates from the stream philox(seed, 0) --
// exactly the engine core::backend::sequential uses -- so backend::em
// with M >= n reproduces backend::sequential bit for bit.
//
// Memory budget (simulated, not enforced): one worker's scatter working
// set is ~fan * B staged items + buffer_depth * B in-flight reads, which
// the adaptive K = M/B - 2 keeps within M; with p pool workers the
// aggregate is ~p * M (the I/O model's M is per scan process).  Leaves
// materialize at most leaf_cut <= M items each.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <utility>
#include <vector>

#include "em/block_device.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/counting.hpp"
#include "rng/philox.hpp"
#include "rng/philox_batch.hpp"
#include "rng/stream.hpp"
#include "seq/fisher_yates.hpp"
#include "smp/thread_pool.hpp"
#include "util/assert.hpp"

namespace cgp::em {

/// How the distribution fan-out is chosen.
enum class spill_policy : std::uint8_t {
  adaptive,       ///< K = M/B - 2 (pow2-floored): geometry-tuned, output depends on (M, B)
  fixed_fan_out,  ///< K = fan_out, leaf = leaf_items: output independent of (M, B)
};

/// Tuning for the async out-of-core engine.
struct async_options {
  std::uint64_t memory_items = std::uint64_t{1} << 16;  ///< M, in items
  std::uint32_t buffer_depth = 2;  ///< in-flight reads per worker (2 = double buffering)
  spill_policy policy = spill_policy::adaptive;
  std::uint32_t fan_out = 16;      ///< K under fixed_fan_out; power of two in [2, 256]
  std::uint64_t leaf_items = 0;    ///< leaf cutoff; 0 = memory_items (must be <= M)
};

/// Outcome of an async external shuffle.
struct async_report {
  std::uint64_t block_transfers = 0;  ///< device reads + writes (data + scratch)
  std::uint32_t levels = 0;           ///< deepest distribution level used
  std::uint64_t rng_words = 0;        ///< random words consumed
  std::uint64_t async_reads = 0;      ///< operations that went through the read queues
  std::uint64_t async_writes = 0;     ///< operations that went through the write queues
  std::uint32_t max_in_flight = 0;    ///< peak queue occupancy across all levels
};

namespace detail_async {

inline constexpr std::uint64_t kLabelSalt = 0x6C61'6265'6Cull;  // 'label'
inline constexpr std::uint64_t kLeafSalt = 0x6C65'6166ull;      // 'leaf' (same as smp)

/// Block-aligned staging cursor over an async write queue: buffers pushed
/// items and emits the head partial slice once, then only whole aligned
/// blocks (blind writes on the device), leaving at most one partial tail
/// for finish().  At most two RMW boundary transfers per cursor, and at
/// most ~one block of items staged at a time (the emit threshold is one
/// block, so a worker's fan_ cursors together hold ~fan * B items --
/// within the K = M/B - 2 frame budget of the adaptive policy).
class item_writer {
 public:
  item_writer(async_io_queue& q, std::uint64_t pos, std::uint32_t block_items)
      : q_(q), pos_(pos), b_(block_items) {}

  void push(std::uint64_t v) {
    buf_.push_back(v);
    if (buf_.size() >= b_) emit(false);
  }

  void finish() {
    if (!buf_.empty()) emit(true);
  }

 private:
  void emit(bool final) {
    std::uint64_t take;
    if (final) {
      take = buf_.size();
    } else {
      // Head slice up to the next block boundary, then whole blocks only.
      const std::uint64_t head = (b_ - pos_ % b_) % b_;
      if (buf_.size() < head) return;
      take = head + (buf_.size() - head) / b_ * b_;
      if (take == 0) return;
    }
    q_.write_items(pos_, std::vector<std::uint64_t>(
                             buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(take)));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(take));
    pos_ += take;
  }

  async_io_queue& q_;
  std::uint64_t pos_;
  std::uint32_t b_;
  std::vector<std::uint64_t> buf_;
};

class engine_state {
 public:
  engine_state(block_device& main, block_device& scratch, smp::thread_pool& pool,
               std::uint64_t seed, const async_options& opt)
      : main_(main), scratch_(scratch), pool_(pool), seed_(seed), opt_(opt) {
    const std::uint32_t b = main.block_items();
    CGP_EXPECTS(opt.memory_items >= 4ull * b);
    if (opt_.policy == spill_policy::adaptive) {
      const std::uint64_t k_raw =
          std::max<std::uint64_t>(2, opt.memory_items / b > 2 ? opt.memory_items / b - 2 : 2);
      fan_ = 2;
      while (2ull * fan_ <= k_raw && fan_ < 256) fan_ *= 2;
      leaf_cut_ = opt.memory_items;
    } else {
      CGP_EXPECTS(opt.fan_out >= 2 && opt.fan_out <= 256);
      CGP_EXPECTS((opt.fan_out & (opt.fan_out - 1)) == 0);  // power of two
      fan_ = opt.fan_out;
      leaf_cut_ = opt.leaf_items == 0 ? opt.memory_items : opt.leaf_items;
      CGP_EXPECTS(leaf_cut_ <= opt.memory_items);
    }
    leaf_cut_ = std::max<std::uint64_t>(leaf_cut_, 2);
  }

  void run(std::uint64_t n) { shuffle_range(main_, scratch_, 0, n, 0, 0); }

  [[nodiscard]] async_report take_report() {
    async_report r = report_;
    r.rng_words = rng_words_.load();
    return r;
  }

 private:
  /// Fisher-Yates a range in memory; results always land on the MAIN
  /// device.  Thread-safe (device ops serialize); keyed only by the tree
  /// address, so leaf tasks may run concurrently in any order.
  void leaf(block_device& cur, std::uint64_t lo, std::uint64_t hi, std::uint32_t level,
            std::uint64_t ordinal) {
    const std::uint64_t size = hi - lo;
    if (size == 0) return;
    std::vector<std::uint64_t> mem(size);
    cur.read_items(lo, mem);
    // Level 0 means the whole input fit in memory: use the stream the
    // sequential backend uses, which gives backend::em == backend::sequential
    // whenever M >= n.
    auto base = level == 0
                    ? rng::philox4x64(seed_, 0)
                    : rng::philox4x64(seed_, rng::nested_stream(level, ordinal, kLeafSalt));
    rng::counting_engine<rng::philox4x64> e(base);
    seq::fisher_yates(e, std::span<std::uint64_t>(mem));
    rng_words_.fetch_add(e.count(), std::memory_order_relaxed);
    main_.write_items(lo, mem);
  }

  void shuffle_range(block_device& cur, block_device& other, std::uint64_t lo, std::uint64_t hi,
                     std::uint32_t level, std::uint64_t ordinal) {
    const std::uint64_t size = hi - lo;
    report_.levels = std::max(report_.levels, level);
    if (size <= leaf_cut_) {
      leaf(cur, lo, hi, level, ordinal);
      return;
    }

    const std::uint32_t b = cur.block_items();
    const std::uint64_t label_stream = rng::nested_stream(level, ordinal, kLabelSalt);

    // Chunking: a block-aligned partition of the range, a few chunks per
    // worker.  The chunking CANNOT affect the output -- item i of label j
    // always lands at bucket_lo[j] + |{i' < i : label(i') = j}| -- it only
    // spreads the two passes over the pool.  Each extra chunk pays up to
    // two boundary RMWs per bucket, so a chunk must own enough blocks for
    // streaming to dominate: ranges too small to amortize get fewer chunks
    // (and the least parallelism, which is also where it matters least).
    const std::uint64_t first_blk = lo / b;
    const std::uint64_t end_blk = (hi + b - 1) / b;
    const std::uint64_t nblocks = end_blk - first_blk;
    const std::uint64_t min_chunk_blocks = 8ull * fan_;
    const auto nchunks = static_cast<std::size_t>(std::clamp<std::uint64_t>(
        nblocks / min_chunk_blocks, 1, std::uint64_t{pool_.size()} * 2));
    const auto chunk_bounds = [&](std::size_t c) {
      const std::uint64_t cb_lo = first_blk + nblocks * c / nchunks;
      const std::uint64_t cb_hi = first_blk + nblocks * (c + 1) / nchunks;
      const std::uint64_t i_lo = std::max<std::uint64_t>(lo, cb_lo * b);
      const std::uint64_t i_hi = std::min<std::uint64_t>(hi, cb_hi * b);
      return std::pair{std::pair{cb_lo, cb_hi}, std::pair{i_lo, i_hi}};
    };

    // --- counting pass: pure computation, zero I/O ---------------------
    std::vector<std::vector<std::uint64_t>> counts(nchunks,
                                                   std::vector<std::uint64_t>(fan_, 0));
    pool_.parallel_for(0, nchunks, [&](std::size_t c_lo, std::size_t c_hi) {
      for (std::size_t c = c_lo; c < c_hi; ++c) {
        const auto [blks, items] = chunk_bounds(c);
        // Batched replay of the index-keyed label stream: bit-identical to
        // rng::stream_engine_at(seed_, label_stream, items.first - lo), but
        // the keystream is generated kBatchBlocks at a time through the
        // SIMD kernels -- this pass is pure keystream + histogram, so it is
        // where the vector win shows up undiluted.
        rng::batched_philox e(seed_, label_stream, items.first - lo);
        for (std::uint64_t i = items.first; i < items.second; ++i) {
          ++counts[c][e() & (fan_ - 1)];
        }
        rng_words_.fetch_add(items.second - items.first, std::memory_order_relaxed);
      }
    });

    // Bucket extents and per-(chunk, bucket) scatter offsets (column
    // prefixes, as in smp/parallel_split.hpp), in device coordinates.
    std::vector<std::uint64_t> bucket_lo(fan_ + 1, lo);
    for (std::uint32_t j = 0; j < fan_; ++j) {
      std::uint64_t total = 0;
      for (std::size_t c = 0; c < nchunks; ++c) total += counts[c][j];
      bucket_lo[j + 1] = bucket_lo[j] + total;
    }
    CGP_ASSERT(bucket_lo[fan_] == hi);
    std::vector<std::uint64_t> dest(nchunks * fan_);
    for (std::uint32_t j = 0; j < fan_; ++j) {
      std::uint64_t at = bucket_lo[j];
      for (std::size_t c = 0; c < nchunks; ++c) {
        dest[c * fan_ + j] = at;
        at += counts[c][j];
      }
      CGP_ASSERT(at == bucket_lo[j + 1]);
    }

    // --- scatter pass: prefetched reads, staged async writes -----------
    {
      const obs::span sp("scatter-level", "scatter");
      async_io_queue read_q(cur, opt_.buffer_depth * pool_.size());
      async_io_queue write_q(other, opt_.buffer_depth * pool_.size());
      pool_.parallel_for(0, nchunks, [&](std::size_t c_lo, std::size_t c_hi) {
        for (std::size_t c = c_lo; c < c_hi; ++c) {
          const auto [blks, items] = chunk_bounds(c);
          rng::batched_philox e(seed_, label_stream, items.first - lo);
          std::vector<item_writer> out;
          out.reserve(fan_);
          for (std::uint32_t j = 0; j < fan_; ++j) out.emplace_back(write_q, dest[c * fan_ + j], b);
          // Keep up to buffer_depth reads in flight ahead of the block
          // currently being scattered.
          std::deque<std::future<std::vector<std::uint64_t>>> window;
          std::uint64_t next_blk = blks.first;
          for (std::uint64_t blk = blks.first; blk < blks.second; ++blk) {
            while (next_blk < blks.second && window.size() < opt_.buffer_depth) {
              window.push_back(read_q.read_block(next_blk));
              ++next_blk;
            }
            const std::vector<std::uint64_t> buf = window.front().get();
            window.pop_front();
            const std::uint64_t first = blk * b;
            const std::uint64_t i_lo = std::max<std::uint64_t>(first, items.first);
            const std::uint64_t i_hi = std::min<std::uint64_t>(first + b, items.second);
            for (std::uint64_t i = i_lo; i < i_hi; ++i) {
              out[e() & (fan_ - 1)].push(buf[static_cast<std::size_t>(i - first)]);
            }
          }
          for (auto& w : out) w.finish();
          rng_words_.fetch_add(items.second - items.first, std::memory_order_relaxed);
        }
      });
      read_q.drain();
      write_q.drain();
      const async_stats rs = read_q.stats();
      const async_stats ws = write_q.stats();
      report_.async_reads += rs.reads_enqueued;
      report_.async_writes += ws.writes_enqueued;
      report_.max_in_flight = std::max({report_.max_in_flight, rs.max_in_flight, ws.max_in_flight});
    }

    // --- recurse: big buckets sequentially (each internally parallel),
    // leaf buckets batched over the pool ---------------------------------
    std::vector<std::uint32_t> leaves;
    for (std::uint32_t j = 0; j < fan_; ++j) {
      const std::uint64_t c_lo = bucket_lo[j];
      const std::uint64_t c_hi = bucket_lo[j + 1];
      if (c_hi - c_lo <= leaf_cut_) {
        if (c_hi > c_lo) leaves.push_back(j);
      } else {
        shuffle_range(other, cur, c_lo, c_hi, level + 1, ordinal * fan_ + j);
      }
    }
    if (!leaves.empty()) {
      report_.levels = std::max(report_.levels, level + 1);
      pool_.parallel_for(0, leaves.size(), [&](std::size_t l_lo, std::size_t l_hi) {
        for (std::size_t l = l_lo; l < l_hi; ++l) {
          const std::uint32_t j = leaves[l];
          leaf(other, bucket_lo[j], bucket_lo[j + 1], level + 1, ordinal * fan_ + j);
        }
      });
    }
  }

  block_device& main_;
  block_device& scratch_;
  smp::thread_pool& pool_;
  std::uint64_t seed_;
  async_options opt_;
  std::uint32_t fan_ = 2;
  std::uint64_t leaf_cut_ = 2;
  async_report report_;
  std::atomic<std::uint64_t> rng_words_{0};
};

}  // namespace detail_async

/// Uniformly shuffle the first `n` items of `dev` out of core, overlapping
/// block transfers with computation on `pool`.  Allocates one scratch
/// device of the same geometry (the ping-pong scatter target), whose
/// transfers are included in the report.  Deterministic in (seed, n,
/// options-derived tree): independent of the pool size and of
/// `buffer_depth`; under spill_policy::fixed_fan_out also independent of
/// the device geometry (M, B).
[[nodiscard]] inline async_report async_em_shuffle(block_device& dev, std::uint64_t n,
                                                   std::uint64_t seed, smp::thread_pool& pool,
                                                   const async_options& opt = {}) {
  CGP_EXPECTS(n <= dev.item_capacity());
  CGP_EXPECTS(opt.buffer_depth >= 1);
  // The ping-pong scratch inherits the main device's hugepage placement:
  // both sides of every scatter level should sit on the same page size.
  block_device scratch(dev.item_capacity(), dev.block_items(), dev.hugepage_backed());
  const std::uint64_t before = dev.stats().transfers() + scratch.stats().transfers();
  detail_async::engine_state state(dev, scratch, pool, seed, opt);
  state.run(n);
  async_report report = state.take_report();
  report.block_transfers = dev.stats().transfers() + scratch.stats().transfers() - before;
  // Fold the run's transfer accounting into the process-wide metrics
  // (obs/metrics.hpp): monotone totals across every em shuffle.
  if (obs::enabled()) {
    obs::get_counter("em.shuffles").add();
    obs::get_counter("em.block_transfers").add(report.block_transfers);
    obs::get_counter("em.async_reads").add(report.async_reads);
    obs::get_counter("em.async_writes").add(report.async_writes);
    obs::get_counter("em.rng_words").add(report.rng_words);
    obs::get_gauge("em.io.in_flight").note_peak(report.max_in_flight);
  }
  return report;
}

}  // namespace cgp::em
