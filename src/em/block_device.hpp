// em/block_device.hpp
//
// The external-memory substrate for the paper's Section 6 outlook: "In
// view of the idea to use efficient coarse grained algorithms also for the
// context of external memory, see Cormen and Goodrich [1996], Dehne et al.
// [1997] ..." -- coarse-grained supersteps map onto scan passes of a disk,
// with the I/O count playing the role of communication volume.
//
// `block_device` simulates a disk of fixed-size blocks with exact I/O
// accounting; `buffer_pool` puts an LRU cache of `frames` blocks in front
// of it (the "M" of the I/O model, in blocks); `async_io_queue` puts a
// depth-bounded asynchronous request queue in front of it, which is what
// the out-of-core engine (em/async_shuffle.hpp) uses to overlap block
// transfers with computation.  Algorithms built on top are measured in
// *block transfers*, the currency of the Aggarwal-Vitter I/O model.
//
// Thread safety: `read_block` / `write_block` / `read_items` /
// `write_items` serialize on an internal mutex, and the partial-block
// read-modify-write of `write_items` holds the lock for the whole RMW
// cycle -- so concurrent writers patching disjoint item slices of the same
// boundary block can never lose each other's update, which the parallel
// scatter of the async engine depends on.  `buffer_pool` itself is
// single-caller, like before.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace cgp::em {

/// I/O statistics of a device or pool.
struct io_stats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t cache_hits = 0;

  [[nodiscard]] std::uint64_t transfers() const noexcept { return block_reads + block_writes; }
};

namespace detail {

/// Flat zero-initialized u64 buffer with an optional hugepage-backed
/// allocation mode: when requested (and on Linux), the storage is an
/// anonymous mmap with MADV_HUGEPAGE, so the kernel backs the simulated
/// disk with 2 MiB pages -- fewer TLB entries for the scatter passes that
/// stream through the whole device every level.  Any failure (no mmap, no
/// madvise, non-Linux) falls back silently to ordinary vector storage;
/// `hugepage_backed()` reports what actually happened.  Content and layout
/// are identical either way -- this is purely a placement knob.
class device_buffer {
 public:
  device_buffer(std::uint64_t words, bool hugepages);
  ~device_buffer();

  device_buffer(const device_buffer&) = delete;
  device_buffer& operator=(const device_buffer&) = delete;

  [[nodiscard]] std::uint64_t* data() noexcept { return ptr_; }
  [[nodiscard]] const std::uint64_t* data() const noexcept { return ptr_; }
  [[nodiscard]] bool hugepage_backed() const noexcept { return huge_; }

 private:
  std::uint64_t* ptr_ = nullptr;
  std::size_t mapped_bytes_ = 0;  // nonzero iff ptr_ is an mmap
  bool huge_ = false;
  std::vector<std::uint64_t> fallback_;
};

}  // namespace detail

/// A simulated disk of `u64` items grouped into blocks of `block_items`.
/// All access is whole-block; partial blocks at the end are materialized
/// at full size (standard device behaviour).
class block_device {
 public:
  /// `hugepages` requests hugepage-backed storage (see detail::device_buffer);
  /// the default comes from the CGP_EM_HUGEPAGES environment variable
  /// ("1" / "on" / "true" to enable), read once per process.
  block_device(std::uint64_t item_capacity, std::uint32_t block_items);
  block_device(std::uint64_t item_capacity, std::uint32_t block_items, bool hugepages);

  /// What CGP_EM_HUGEPAGES resolves to (the two-argument constructor's
  /// default).
  [[nodiscard]] static bool default_hugepages() noexcept;

  /// Whether this device's storage actually got hugepage placement.
  [[nodiscard]] bool hugepage_backed() const noexcept { return data_.hugepage_backed(); }

  [[nodiscard]] std::uint32_t block_items() const noexcept { return block_items_; }
  [[nodiscard]] std::uint64_t item_capacity() const noexcept { return item_capacity_; }
  [[nodiscard]] std::uint64_t block_count() const noexcept { return blocks_; }
  [[nodiscard]] io_stats stats() const;
  void reset_stats();

  /// Read block `b` into `out` (size == block_items).  Counts one read.
  void read_block(std::uint64_t b, std::span<std::uint64_t> out);

  /// Write block `b` from `in` (size == block_items).  Counts one write.
  void write_block(std::uint64_t b, std::span<const std::uint64_t> in);

  /// Read the item range [item_lo, item_lo + out.size()) through whole-block
  /// transfers: one read per covered block.
  void read_items(std::uint64_t item_lo, std::span<std::uint64_t> out);

  /// Write the item range [item_lo, item_lo + in.size()): fully covered
  /// blocks are written blind (one write); the at-most-two partial boundary
  /// blocks are merge-written (read + patch + write) ATOMICALLY per block,
  /// so concurrent writers of disjoint item ranges compose correctly.
  void write_items(std::uint64_t item_lo, std::span<const std::uint64_t> in);

  /// Test helpers: bulk item access WITHOUT I/O accounting (used by tests
  /// to load/verify content, never by algorithms).
  void poke(std::uint64_t item, std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t peek(std::uint64_t item) const noexcept;

 private:
  std::uint64_t item_capacity_;
  std::uint32_t block_items_;
  std::uint64_t blocks_;
  detail::device_buffer data_;
  io_stats stats_;
  mutable std::mutex mutex_;
};

/// LRU buffer pool over a device: `frames` cached blocks ("M/B" of the I/O
/// model).  Item-granular access; dirty blocks write back on eviction and
/// flush().  Cache hits are counted separately from device transfers (the
/// device's own stats see only the misses).
class buffer_pool {
 public:
  buffer_pool(block_device& dev, std::uint32_t frames);
  ~buffer_pool();

  buffer_pool(const buffer_pool&) = delete;
  buffer_pool& operator=(const buffer_pool&) = delete;

  [[nodiscard]] std::uint64_t read_item(std::uint64_t item);
  void write_item(std::uint64_t item, std::uint64_t value);

  /// Write back every dirty frame.
  void flush();

  [[nodiscard]] std::uint32_t frames() const noexcept { return frames_; }
  [[nodiscard]] const io_stats& stats() const noexcept { return stats_; }

 private:
  struct frame {
    std::uint64_t block = 0;
    bool dirty = false;
    std::vector<std::uint64_t> data;
  };

  /// Pin the frame holding `block`, loading/evicting as needed; returns
  /// its index and bumps it to most-recently-used.
  std::size_t touch(std::uint64_t block);

  block_device& dev_;
  std::uint32_t frames_;
  std::vector<frame> pool_;
  std::list<std::size_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::size_t>::iterator> where_;
  io_stats stats_;
};

/// Behavioural statistics of an async queue (the device's own io_stats
/// still count the transfers themselves).
struct async_stats {
  std::uint64_t reads_enqueued = 0;
  std::uint64_t writes_enqueued = 0;
  std::uint32_t max_in_flight = 0;  ///< peak queue occupancy observed
};

/// A depth-bounded asynchronous request queue in front of a device,
/// served in FIFO order by a dedicated I/O thread.  `depth` bounds the
/// number of in-flight operations: enqueueing past it blocks the caller
/// (bounded-buffer backpressure -- depth = 2 is classic double buffering,
/// deeper queues prefetch further ahead).
///
/// The server is a dedicated thread rather than an smp::thread_pool task
/// on purpose: the out-of-core engine keeps every pool worker busy with
/// computation (label generation, scatter staging, leaf shuffles), and a
/// worker blocking on queue backpressure while the queue's own service
/// task waits behind it in the same pool would deadlock at small pool
/// sizes.  One server thread per device also serializes that device's
/// transfers, which is exactly how a single disk behaves.
class async_io_queue {
 public:
  async_io_queue(block_device& dev, std::uint32_t depth);
  ~async_io_queue();

  async_io_queue(const async_io_queue&) = delete;
  async_io_queue& operator=(const async_io_queue&) = delete;

  /// Enqueue a read of block `b`; the future resolves with the block's
  /// contents once the I/O thread has performed the transfer.
  [[nodiscard]] std::future<std::vector<std::uint64_t>> read_block(std::uint64_t b);

  /// Enqueue an item-range write (takes ownership of the buffer; partial
  /// boundary blocks are merge-written atomically, see
  /// block_device::write_items).
  void write_items(std::uint64_t item_lo, std::vector<std::uint64_t> items);

  /// Block until every operation enqueued so far has completed.
  void drain();

  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] async_stats stats() const;

 private:
  struct request {
    bool is_read = false;
    std::uint64_t block = 0;                      // read target
    std::promise<std::vector<std::uint64_t>> out; // read result
    std::uint64_t item_lo = 0;                    // write target
    std::vector<std::uint64_t> items;             // write payload
  };

  void serve();
  void enqueue(request req);

  block_device& dev_;
  std::uint32_t depth_;
  mutable std::mutex mutex_;
  std::condition_variable space_;   // signalled when an op completes
  std::condition_variable pending_; // signalled when an op is enqueued
  std::deque<request> queue_;
  std::uint32_t in_flight_ = 0;  // queued + currently being served
  bool stop_ = false;
  async_stats stats_;
  std::thread server_;
};

}  // namespace cgp::em
