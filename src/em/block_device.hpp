// em/block_device.hpp
//
// The external-memory substrate for the paper's Section 6 outlook: "In
// view of the idea to use efficient coarse grained algorithms also for the
// context of external memory, see Cormen and Goodrich [1996], Dehne et al.
// [1997] ..." -- coarse-grained supersteps map onto scan passes of a disk,
// with the I/O count playing the role of communication volume.
//
// `block_device` simulates a disk of fixed-size blocks with exact I/O
// accounting; `buffer_pool` puts an LRU cache of `frames` blocks in front
// of it (the "M" of the I/O model, in blocks).  Algorithms built on top
// are measured in *block transfers*, the currency of the
// Aggarwal-Vitter I/O model.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"

namespace cgp::em {

/// I/O statistics of a device or pool.
struct io_stats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t cache_hits = 0;

  [[nodiscard]] std::uint64_t transfers() const noexcept { return block_reads + block_writes; }
};

/// A simulated disk of `u64` items grouped into blocks of `block_items`.
/// All access is whole-block; partial blocks at the end are materialized
/// at full size (standard device behaviour).
class block_device {
 public:
  block_device(std::uint64_t item_capacity, std::uint32_t block_items);

  [[nodiscard]] std::uint32_t block_items() const noexcept { return block_items_; }
  [[nodiscard]] std::uint64_t item_capacity() const noexcept { return item_capacity_; }
  [[nodiscard]] std::uint64_t block_count() const noexcept { return blocks_; }
  [[nodiscard]] const io_stats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = io_stats{}; }

  /// Read block `b` into `out` (size == block_items).  Counts one read.
  void read_block(std::uint64_t b, std::span<std::uint64_t> out);

  /// Write block `b` from `in` (size == block_items).  Counts one write.
  void write_block(std::uint64_t b, std::span<const std::uint64_t> in);

  /// Test helpers: bulk item access WITHOUT I/O accounting (used by tests
  /// to load/verify content, never by algorithms).
  void poke(std::uint64_t item, std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t peek(std::uint64_t item) const noexcept;

 private:
  std::uint64_t item_capacity_;
  std::uint32_t block_items_;
  std::uint64_t blocks_;
  std::vector<std::uint64_t> data_;
  io_stats stats_;
};

/// LRU buffer pool over a device: `frames` cached blocks ("M/B" of the I/O
/// model).  Item-granular access; dirty blocks write back on eviction and
/// flush().  Cache hits are counted separately from device transfers (the
/// device's own stats see only the misses).
class buffer_pool {
 public:
  buffer_pool(block_device& dev, std::uint32_t frames);
  ~buffer_pool();

  buffer_pool(const buffer_pool&) = delete;
  buffer_pool& operator=(const buffer_pool&) = delete;

  [[nodiscard]] std::uint64_t read_item(std::uint64_t item);
  void write_item(std::uint64_t item, std::uint64_t value);

  /// Write back every dirty frame.
  void flush();

  [[nodiscard]] std::uint32_t frames() const noexcept { return frames_; }
  [[nodiscard]] const io_stats& stats() const noexcept { return stats_; }

 private:
  struct frame {
    std::uint64_t block = 0;
    bool dirty = false;
    std::vector<std::uint64_t> data;
  };

  /// Pin the frame holding `block`, loading/evicting as needed; returns
  /// its index and bumps it to most-recently-used.
  std::size_t touch(std::uint64_t block);

  block_device& dev_;
  std::uint32_t frames_;
  std::vector<frame> pool_;
  std::list<std::size_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::size_t>::iterator> where_;
  io_stats stats_;
};

}  // namespace cgp::em
