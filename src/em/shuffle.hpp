// em/shuffle.hpp
//
// External-memory uniform shuffling -- the paper's Section 6 outlook made
// concrete in the Aggarwal-Vitter I/O model (n items, M items of memory,
// B items per block):
//
//  * `em_shuffle`         -- the coarse-grained decomposition run as scan
//    passes: each level streams the data once, scattering items into
//    K = M/B - 2 buckets (independent uniform choice, the Rao-Sandelius
//    argument gives exact uniformity), recursing until a bucket fits in
//    memory and is Fisher-Yates'd there.  O((n/B) log_K (n/M)) block
//    transfers -- the external-sorting bound, with NO comparison sort.
//  * `naive_em_fisher_yates` -- the baseline the outlook warns about: the
//    textbook shuffle run through an LRU buffer pool.  Once n >> M almost
//    every swap touches a cold block: Theta(n) transfers, i.e. a factor
//    ~B/log worse.
//
// Bench e12 tabulates the two across (n, M, B); tests verify exact
// uniformity (exhaustive S5 on a tiny device) and the I/O bounds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "em/block_device.hpp"
#include "rng/engine.hpp"
#include "rng/uniform.hpp"
#include "seq/fisher_yates.hpp"
#include "util/assert.hpp"

namespace cgp::em {

/// Outcome of an external shuffle.
struct em_report {
  std::uint64_t block_transfers = 0;  ///< total device reads + writes
  std::uint32_t levels = 0;           ///< deepest distribution level used
  std::uint64_t rng_words = 0;        ///< random words consumed (if counted)
};

namespace detail {

/// Stream-read items [lo, hi) of a device (whole blocks) into `out`.
inline void read_range(block_device& dev, std::uint64_t lo, std::uint64_t hi,
                       std::vector<std::uint64_t>& out) {
  const std::uint32_t b = dev.block_items();
  out.clear();
  out.reserve(static_cast<std::size_t>(hi - lo));
  std::vector<std::uint64_t> buf(b);
  for (std::uint64_t blk = lo / b; blk * b < hi; ++blk) {
    dev.read_block(blk, buf);
    const std::uint64_t first = blk * b;
    for (std::uint32_t i = 0; i < b; ++i) {
      const std::uint64_t pos = first + i;
      if (pos >= lo && pos < hi) out.push_back(buf[i]);
    }
  }
}

/// Stream-write `in` to items [lo, lo + in.size()) (read-modify-write on
/// the partial edge blocks).
inline void write_range(block_device& dev, std::uint64_t lo,
                        const std::vector<std::uint64_t>& in) {
  const std::uint32_t b = dev.block_items();
  const std::uint64_t hi = lo + in.size();
  std::vector<std::uint64_t> buf(b);
  for (std::uint64_t blk = lo / b; blk * b < hi; ++blk) {
    const std::uint64_t first = blk * b;
    const bool partial = first < lo || first + b > hi;
    if (partial) dev.read_block(blk, buf);
    for (std::uint32_t i = 0; i < b; ++i) {
      const std::uint64_t pos = first + i;
      if (pos >= lo && pos < hi) buf[i] = in[static_cast<std::size_t>(pos - lo)];
    }
    dev.write_block(blk, buf);
  }
}

/// A block-granular append cursor.  Interior blocks a cursor fully owns
/// are written blind (one transfer); the at-most-two partial boundary
/// blocks of its extent are merge-written (read fresh, patch the owned
/// slice, write) so that neighbouring cursors sharing a boundary block
/// never clobber each other: each one only ever rewrites its own item
/// range, and all merges read the device state at merge time.
class append_cursor {
 public:
  append_cursor(block_device& dev, std::uint64_t start) : dev_(dev), pos_(start) {
    buf_.reserve(dev.block_items());
  }

  void push(std::uint64_t v) {
    if (buf_.empty()) first_off_ = pos_ % dev_.block_items();
    buf_.push_back(v);
    ++pos_;
    if (pos_ % dev_.block_items() == 0) emit();
  }

  void flush() {
    if (!buf_.empty()) emit();
  }

 private:
  void emit() {
    const std::uint32_t b = dev_.block_items();
    const std::uint64_t blk = (pos_ - 1) / b;  // block the buffered items live in
    if (first_off_ == 0 && buf_.size() == b) {
      dev_.write_block(blk, buf_);  // fully owned: blind write
    } else {
      // Boundary block: merge into the freshest device contents.
      std::vector<std::uint64_t> tmp(b);
      dev_.read_block(blk, tmp);
      std::copy(buf_.begin(), buf_.end(), tmp.begin() + static_cast<std::ptrdiff_t>(first_off_));
      dev_.write_block(blk, tmp);
    }
    buf_.clear();
  }

  block_device& dev_;
  std::uint64_t pos_;
  std::uint64_t first_off_ = 0;
  std::vector<std::uint64_t> buf_;
};

template <rng::random_engine64 Engine>
void em_shuffle_level(Engine& engine, block_device& cur, block_device& main_dev,
                      block_device& other, block_device& labels, std::uint64_t lo,
                      std::uint64_t hi, std::uint64_t memory_items, std::uint32_t level,
                      em_report& report) {
  const std::uint64_t size = hi - lo;
  report.levels = std::max(report.levels, level);
  if (size == 0) return;

  // Base: the range fits in memory -- load, Fisher-Yates, write to the
  // MAIN device (the caller's contract: results always land there).
  if (size <= memory_items) {
    std::vector<std::uint64_t> mem;
    read_range(cur, lo, hi, mem);
    seq::fisher_yates(engine, std::span<std::uint64_t>(mem));
    write_range(main_dev, lo, mem);
    return;
  }

  const std::uint32_t b = cur.block_items();
  const auto k = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(2, memory_items / b > 2 ? memory_items / b - 2 : 2));
  const unsigned bits = [&] {
    unsigned width = 1;
    while ((1u << (width + 1)) <= k) ++width;
    return width;
  }();
  const std::uint32_t fan = 1u << bits;  // power-of-two fan-out <= K

  // Pass 1: stream the range, draw independent uniform bucket labels
  // (batched from 64-bit words), stream them to the label device, count.
  std::vector<std::uint64_t> counts(fan, 0);
  {
    std::vector<std::uint64_t> in_buf(b);
    append_cursor label_out(labels, lo);
    std::uint64_t word = 0;
    unsigned left = 0;
    for (std::uint64_t blk = lo / b; blk * b < hi; ++blk) {
      cur.read_block(blk, in_buf);
      const std::uint64_t first = blk * b;
      for (std::uint32_t i = 0; i < b; ++i) {
        const std::uint64_t pos = first + i;
        if (pos < lo || pos >= hi) continue;
        if (left == 0) {
          word = engine();
          left = 64 / bits;
          ++report.rng_words;
        }
        const std::uint64_t lab = word & (fan - 1);
        word >>= bits;
        --left;
        label_out.push(lab);
        ++counts[static_cast<std::size_t>(lab)];
      }
    }
    label_out.flush();
  }

  // Bucket extents within [lo, hi) of the destination device.
  std::vector<std::uint64_t> bucket_lo(fan + 1, lo);
  for (std::uint32_t j = 0; j < fan; ++j) bucket_lo[j + 1] = bucket_lo[j] + counts[j];
  CGP_ASSERT(bucket_lo[fan] == hi);

  // Pass 2: stream data + labels, scatter through one append cursor per
  // bucket (fan + 2 blocks of memory -- within M by construction).
  {
    std::vector<std::uint64_t> in_buf(b);
    std::vector<std::uint64_t> lab_buf(b);
    std::vector<append_cursor> out;
    out.reserve(fan);
    for (std::uint32_t j = 0; j < fan; ++j) out.emplace_back(other, bucket_lo[j]);
    for (std::uint64_t blk = lo / b; blk * b < hi; ++blk) {
      cur.read_block(blk, in_buf);
      labels.read_block(blk, lab_buf);
      const std::uint64_t first = blk * b;
      for (std::uint32_t i = 0; i < b; ++i) {
        const std::uint64_t pos = first + i;
        if (pos < lo || pos >= hi) continue;
        out[static_cast<std::size_t>(lab_buf[i])].push(in_buf[i]);
      }
    }
    for (auto& cursorj : out) cursorj.flush();
  }

  // Recurse per bucket, roles swapped (the scattered data lives in
  // `other`).
  for (std::uint32_t j = 0; j < fan; ++j) {
    em_shuffle_level(engine, other, main_dev, cur, labels, bucket_lo[j], bucket_lo[j + 1],
                     memory_items, level + 1, report);
  }
}

}  // namespace detail

/// Uniformly shuffle the first `n` items of `dev` using at most
/// ~`memory_items` items of in-memory working space.  Allocates two
/// scratch devices of the same geometry (the ping-pong target and the
/// label store), whose transfers are included in the report.
template <rng::random_engine64 Engine>
[[nodiscard]] em_report em_shuffle(Engine& engine, block_device& dev, std::uint64_t n,
                                   std::uint64_t memory_items) {
  CGP_EXPECTS(n <= dev.item_capacity());
  CGP_EXPECTS(memory_items >= 4u * dev.block_items());
  block_device scratch(dev.item_capacity(), dev.block_items());
  block_device labels(dev.item_capacity(), dev.block_items());

  em_report report;
  const std::uint64_t before =
      dev.stats().transfers() + scratch.stats().transfers() + labels.stats().transfers();
  detail::em_shuffle_level(engine, dev, dev, scratch, labels, 0, n, memory_items, 0, report);
  report.block_transfers = dev.stats().transfers() + scratch.stats().transfers() +
                           labels.stats().transfers() - before;
  return report;
}

/// The baseline: textbook Fisher-Yates through an LRU buffer pool of
/// `frames` blocks.  Theta(n) transfers once n >> frames * B.
template <rng::random_engine64 Engine>
[[nodiscard]] em_report naive_em_fisher_yates(Engine& engine, block_device& dev, std::uint64_t n,
                                              std::uint32_t frames) {
  CGP_EXPECTS(n <= dev.item_capacity());
  em_report report;
  const std::uint64_t before = dev.stats().transfers();
  {
    buffer_pool pool(dev, frames);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = rng::uniform_below(engine, i);
      ++report.rng_words;
      const std::uint64_t a = pool.read_item(i - 1);
      const std::uint64_t bv = pool.read_item(j);
      pool.write_item(i - 1, bv);
      pool.write_item(j, a);
    }
    // pool flushes on destruction
  }
  report.block_transfers = dev.stats().transfers() - before;
  return report;
}

}  // namespace cgp::em
