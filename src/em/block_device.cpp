#include "em/block_device.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/metrics.hpp"

namespace cgp::em {

namespace detail {

device_buffer::device_buffer(std::uint64_t words, bool hugepages) {
  const std::size_t bytes = static_cast<std::size_t>(words) * sizeof(std::uint64_t);
#if defined(__linux__)
  if (hugepages && bytes > 0) {
    // Round the mapping up to the 2 MiB hugepage granularity so MADV_HUGEPAGE
    // can cover the whole buffer; anonymous mappings are zero-filled, which
    // is the same initial content the vector path provides.
    constexpr std::size_t kHugeSize = 2ull << 20;
    const std::size_t mapped = (bytes + kHugeSize - 1) / kHugeSize * kHugeSize;
    void* p = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      ptr_ = static_cast<std::uint64_t*>(p);
      mapped_bytes_ = mapped;
      // Advisory only: if the kernel has THP disabled the mapping still
      // works on base pages, so a madvise failure downgrades the report,
      // not the device.
      huge_ = ::madvise(p, mapped, MADV_HUGEPAGE) == 0;
      return;
    }
  }
#else
  (void)hugepages;
#endif
  fallback_.assign(static_cast<std::size_t>(words), 0);
  ptr_ = fallback_.data();
}

device_buffer::~device_buffer() {
#if defined(__linux__)
  if (mapped_bytes_ != 0) ::munmap(ptr_, mapped_bytes_);
#endif
}

}  // namespace detail

namespace {

bool env_hugepages() {
  const char* env = std::getenv("CGP_EM_HUGEPAGES");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "1" || v == "on" || v == "true";
}

// Process-wide I/O metrics, shared across every simulated device and
// queue (per-run accounting stays in io_stats / async_stats).  References
// are resolved once; mutations are relaxed atomic adds.
obs::counter& io_reads_counter() {
  static obs::counter& c = obs::get_counter("em.io.reads");
  return c;
}
obs::counter& io_writes_counter() {
  static obs::counter& c = obs::get_counter("em.io.writes");
  return c;
}
obs::gauge& io_queue_gauge() {
  static obs::gauge& g = obs::get_gauge("em.io.queue_depth");
  return g;
}

}  // namespace

block_device::block_device(std::uint64_t item_capacity, std::uint32_t block_items)
    : block_device(item_capacity, block_items, default_hugepages()) {}

block_device::block_device(std::uint64_t item_capacity, std::uint32_t block_items, bool hugepages)
    : item_capacity_(item_capacity),
      block_items_(block_items),
      blocks_((item_capacity + block_items - 1) / block_items),
      data_((item_capacity + block_items - 1) / block_items * block_items, hugepages) {
  CGP_EXPECTS(block_items >= 1);
}

bool block_device::default_hugepages() noexcept {
  static const bool v = env_hugepages();
  return v;
}

io_stats block_device::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void block_device::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = io_stats{};
}

void block_device::read_block(std::uint64_t b, std::span<std::uint64_t> out) {
  CGP_EXPECTS(b < blocks_);
  CGP_EXPECTS(out.size() == block_items_);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto* src = data_.data() + b * block_items_;
  std::copy(src, src + block_items_, out.begin());
  ++stats_.block_reads;
  io_reads_counter().add();
}

void block_device::write_block(std::uint64_t b, std::span<const std::uint64_t> in) {
  CGP_EXPECTS(b < blocks_);
  CGP_EXPECTS(in.size() == block_items_);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::copy(in.begin(), in.end(), data_.data() + b * block_items_);
  ++stats_.block_writes;
  io_writes_counter().add();
}

void block_device::read_items(std::uint64_t item_lo, std::span<std::uint64_t> out) {
  if (out.empty()) return;  // no phantom transfers on empty ranges
  const std::uint64_t hi = item_lo + out.size();
  CGP_EXPECTS(hi <= blocks_ * block_items_);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t blk = item_lo / block_items_; blk * block_items_ < hi; ++blk) {
    const std::uint64_t first = blk * block_items_;
    const std::uint64_t lo = std::max<std::uint64_t>(first, item_lo);
    const std::uint64_t up = std::min<std::uint64_t>(first + block_items_, hi);
    std::copy(data_.data() + lo, data_.data() + up,
              out.begin() + static_cast<std::ptrdiff_t>(lo - item_lo));
    ++stats_.block_reads;
  }
  io_reads_counter().add((hi - 1) / block_items_ - item_lo / block_items_ + 1);
}

void block_device::write_items(std::uint64_t item_lo, std::span<const std::uint64_t> in) {
  if (in.empty()) return;  // no phantom transfers on empty ranges
  const std::uint64_t hi = item_lo + in.size();
  CGP_EXPECTS(hi <= blocks_ * block_items_);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t blk = item_lo / block_items_; blk * block_items_ < hi; ++blk) {
    const std::uint64_t first = blk * block_items_;
    const std::uint64_t lo = std::max<std::uint64_t>(first, item_lo);
    const std::uint64_t up = std::min<std::uint64_t>(first + block_items_, hi);
    const bool partial = lo != first || up != first + block_items_;
    // A partial boundary block is a read-modify-write (one extra read);
    // holding the lock across the whole cycle makes the patch atomic.
    if (partial) {
      ++stats_.block_reads;
      io_reads_counter().add();
    }
    std::copy(in.begin() + static_cast<std::ptrdiff_t>(lo - item_lo),
              in.begin() + static_cast<std::ptrdiff_t>(up - item_lo), data_.data() + lo);
    ++stats_.block_writes;
  }
  io_writes_counter().add((hi - 1) / block_items_ - item_lo / block_items_ + 1);
}

void block_device::poke(std::uint64_t item, std::uint64_t value) noexcept {
  CGP_ASSERT(item < item_capacity_);
  data_.data()[item] = value;
}

std::uint64_t block_device::peek(std::uint64_t item) const noexcept {
  CGP_ASSERT(item < item_capacity_);
  return data_.data()[item];
}

buffer_pool::buffer_pool(block_device& dev, std::uint32_t frames) : dev_(dev), frames_(frames) {
  CGP_EXPECTS(frames >= 1);
  pool_.reserve(frames);
}

buffer_pool::~buffer_pool() { flush(); }

std::size_t buffer_pool::touch(std::uint64_t block) {
  if (const auto it = where_.find(block); it != where_.end()) {
    ++stats_.cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    return *it->second;
  }

  std::size_t idx;
  if (pool_.size() < frames_) {
    idx = pool_.size();
    pool_.emplace_back();
    pool_[idx].data.assign(dev_.block_items(), 0);
  } else {
    // Evict the least recently used frame.
    idx = lru_.back();
    lru_.pop_back();
    frame& victim = pool_[idx];
    where_.erase(victim.block);
    if (victim.dirty) {
      dev_.write_block(victim.block, victim.data);
      ++stats_.block_writes;
      victim.dirty = false;
    }
  }

  frame& f = pool_[idx];
  f.block = block;
  dev_.read_block(block, f.data);
  ++stats_.block_reads;
  lru_.push_front(idx);
  where_[block] = lru_.begin();
  return idx;
}

std::uint64_t buffer_pool::read_item(std::uint64_t item) {
  const std::uint64_t block = item / dev_.block_items();
  const std::size_t idx = touch(block);
  return pool_[idx].data[item % dev_.block_items()];
}

void buffer_pool::write_item(std::uint64_t item, std::uint64_t value) {
  const std::uint64_t block = item / dev_.block_items();
  const std::size_t idx = touch(block);
  pool_[idx].data[item % dev_.block_items()] = value;
  pool_[idx].dirty = true;
}

void buffer_pool::flush() {
  for (auto& f : pool_) {
    if (f.dirty) {
      dev_.write_block(f.block, f.data);
      ++stats_.block_writes;
      f.dirty = false;
    }
  }
}

async_io_queue::async_io_queue(block_device& dev, std::uint32_t depth)
    : dev_(dev), depth_(depth) {
  CGP_EXPECTS(depth >= 1);
  server_ = std::thread([this] { serve(); });
}

async_io_queue::~async_io_queue() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  pending_.notify_all();
  server_.join();
}

void async_io_queue::enqueue(request req) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_.wait(lock, [this] { return in_flight_ < depth_; });
    ++in_flight_;
    stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
    io_queue_gauge().add(1);
    io_queue_gauge().note_peak(in_flight_);
    if (req.is_read) {
      ++stats_.reads_enqueued;
    } else {
      ++stats_.writes_enqueued;
    }
    queue_.push_back(std::move(req));
  }
  pending_.notify_one();
}

std::future<std::vector<std::uint64_t>> async_io_queue::read_block(std::uint64_t b) {
  request req;
  req.is_read = true;
  req.block = b;
  auto fut = req.out.get_future();
  enqueue(std::move(req));
  return fut;
}

void async_io_queue::write_items(std::uint64_t item_lo, std::vector<std::uint64_t> items) {
  request req;
  req.is_read = false;
  req.item_lo = item_lo;
  req.items = std::move(items);
  enqueue(std::move(req));
}

void async_io_queue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  space_.wait(lock, [this] { return in_flight_ == 0; });
}

async_stats async_io_queue::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void async_io_queue::serve() {
  for (;;) {
    request req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to serve
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    if (req.is_read) {
      std::vector<std::uint64_t> buf(dev_.block_items());
      dev_.read_block(req.block, buf);
      req.out.set_value(std::move(buf));
    } else {
      dev_.write_items(req.item_lo, req.items);
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    io_queue_gauge().sub(1);
    space_.notify_all();
  }
}

}  // namespace cgp::em
