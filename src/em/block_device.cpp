#include "em/block_device.hpp"

#include <algorithm>

namespace cgp::em {

block_device::block_device(std::uint64_t item_capacity, std::uint32_t block_items)
    : item_capacity_(item_capacity),
      block_items_(block_items),
      blocks_((item_capacity + block_items - 1) / block_items) {
  CGP_EXPECTS(block_items >= 1);
  data_.assign(blocks_ * block_items_, 0);
}

void block_device::read_block(std::uint64_t b, std::span<std::uint64_t> out) {
  CGP_EXPECTS(b < blocks_);
  CGP_EXPECTS(out.size() == block_items_);
  const auto* src = data_.data() + b * block_items_;
  std::copy(src, src + block_items_, out.begin());
  ++stats_.block_reads;
}

void block_device::write_block(std::uint64_t b, std::span<const std::uint64_t> in) {
  CGP_EXPECTS(b < blocks_);
  CGP_EXPECTS(in.size() == block_items_);
  std::copy(in.begin(), in.end(), data_.begin() + static_cast<std::ptrdiff_t>(b * block_items_));
  ++stats_.block_writes;
}

void block_device::poke(std::uint64_t item, std::uint64_t value) noexcept {
  CGP_ASSERT(item < item_capacity_);
  data_[item] = value;
}

std::uint64_t block_device::peek(std::uint64_t item) const noexcept {
  CGP_ASSERT(item < item_capacity_);
  return data_[item];
}

buffer_pool::buffer_pool(block_device& dev, std::uint32_t frames) : dev_(dev), frames_(frames) {
  CGP_EXPECTS(frames >= 1);
  pool_.reserve(frames);
}

buffer_pool::~buffer_pool() { flush(); }

std::size_t buffer_pool::touch(std::uint64_t block) {
  if (const auto it = where_.find(block); it != where_.end()) {
    ++stats_.cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    return *it->second;
  }

  std::size_t idx;
  if (pool_.size() < frames_) {
    idx = pool_.size();
    pool_.emplace_back();
    pool_[idx].data.assign(dev_.block_items(), 0);
  } else {
    // Evict the least recently used frame.
    idx = lru_.back();
    lru_.pop_back();
    frame& victim = pool_[idx];
    where_.erase(victim.block);
    if (victim.dirty) {
      dev_.write_block(victim.block, victim.data);
      ++stats_.block_writes;
      victim.dirty = false;
    }
  }

  frame& f = pool_[idx];
  f.block = block;
  dev_.read_block(block, f.data);
  ++stats_.block_reads;
  lru_.push_front(idx);
  where_[block] = lru_.begin();
  return idx;
}

std::uint64_t buffer_pool::read_item(std::uint64_t item) {
  const std::uint64_t block = item / dev_.block_items();
  const std::size_t idx = touch(block);
  return pool_[idx].data[item % dev_.block_items()];
}

void buffer_pool::write_item(std::uint64_t item, std::uint64_t value) {
  const std::uint64_t block = item / dev_.block_items();
  const std::size_t idx = touch(block);
  pool_[idx].data[item % dev_.block_items()] = value;
  pool_[idx].dirty = true;
}

void buffer_pool::flush() {
  for (auto& f : pool_) {
    if (f.dirty) {
      dev_.write_block(f.block, f.data);
      ++stats_.block_writes;
      f.dirty = false;
    }
  }
}

}  // namespace cgp::em
