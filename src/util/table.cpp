#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace cgp {

table::table(std::vector<std::string> header) : header_(std::move(header)) {
  CGP_EXPECTS(!header_.empty());
}

void table::add_row(std::vector<std::string> cells) {
  CGP_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Right-align everything; numbers dominate and headers read fine.
      const std::size_t pad = width[c] - row[c].size();
      for (std::size_t k = 0; k < pad; ++k) os << ' ';
      os << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  for (std::size_t k = 0; k < total; ++k) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int prec) {
  char buf[64];
  if (std::isnan(v)) return "nan";
  if (std::fabs(v) >= 1e6 || (v != 0.0 && std::fabs(v) < 1e-4)) {
    std::snprintf(buf, sizeof buf, "%.*e", prec, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  }
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

}  // namespace cgp
