// util/json.hpp
//
// A minimal flat-record JSON writer for the benchmark harness: every bench
// emits, next to its human-readable table, a machine-readable
// `BENCH_<name>.json` file (an array of flat objects) so the performance
// trajectory can be tracked across commits by tooling instead of eyeballs.
// Writing only -- the library never parses JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cgp {

/// Escape `s` for use inside a JSON string literal: `"`, `\`, and every
/// control character U+0000..U+001F become escape sequences (the common
/// ones as two-character escapes, the rest as \u00XX), so arbitrary metric
/// or span names can never emit invalid JSON.
[[nodiscard]] std::string json_escape(std::string_view s);

/// json_escape() wrapped in double quotes: a complete JSON string token.
[[nodiscard]] std::string json_escape_quoted(std::string_view s);

/// One flat JSON object with ordered, typed fields.
class json_record {
 public:
  json_record& add(std::string key, std::string value);        ///< string field
  json_record& add(std::string key, const char* value);        ///< string field
  json_record& add(std::string key, double value);             ///< number field
  json_record& add(std::string key, std::uint64_t value);      ///< number field
  json_record& add(std::string key, std::int64_t value);       ///< number field
  json_record& add(std::string key, std::uint32_t value);      ///< number field
  json_record& add(std::string key, int value);                ///< number field
  json_record& add(std::string key, bool value);               ///< boolean field

  /// Field whose value is `rendered` verbatim -- already-valid JSON (a
  /// nested object or array).  The caller vouches for validity.
  json_record& add_raw_json(std::string key, std::string rendered);

  /// Render as a single-line JSON object.
  [[nodiscard]] std::string to_string() const;

 private:
  json_record& add_raw(std::string key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> rendered
};

/// Write `records` as a pretty-printed JSON array (one object per line) to
/// `path`; returns false (and prints to stderr) on I/O failure.
bool write_json_records(const std::string& path, const std::vector<json_record>& records);

}  // namespace cgp
