// util/assert.hpp
//
// Contract-checking macros in the style of the C++ Core Guidelines' GSL
// `Expects`/`Ensures`.  Violations abort with a source location; checks stay
// enabled in release builds because every caller of this library feeds sizes
// that must satisfy conservation laws (row/column sums) whose violation
// would silently produce *non-uniform* permutations -- a statistical bug far
// worse than an abort.
//
// `CGP_ASSERT_DBG` is the cheap variant compiled out in NDEBUG builds; use
// it inside per-item inner loops only.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cgp::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) noexcept {
  std::fprintf(stderr, "cgmperm: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace cgp::detail

#define CGP_EXPECTS(cond)                                                          \
  do {                                                                             \
    if (!(cond)) ::cgp::detail::contract_violation("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define CGP_ENSURES(cond)                                                          \
  do {                                                                             \
    if (!(cond)) ::cgp::detail::contract_violation("postcondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define CGP_ASSERT(cond)                                                           \
  do {                                                                             \
    if (!(cond)) ::cgp::detail::contract_violation("invariant", #cond, __FILE__, __LINE__); \
  } while (0)

#if defined(NDEBUG)
#define CGP_ASSERT_DBG(cond) ((void)0)
#else
#define CGP_ASSERT_DBG(cond) CGP_ASSERT(cond)
#endif
