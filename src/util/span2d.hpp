// util/span2d.hpp
//
// A minimal non-owning row-major 2-D view over contiguous storage, used for
// communication matrices (p x p' entries).  `std::mdspan` is C++23; this is
// the small subset we need, with bounds checking under CGP_ASSERT_DBG.
#pragma once

#include <cstddef>
#include <span>

#include "util/assert.hpp"

namespace cgp {

/// Non-owning row-major 2-D view: `v(i, j)` addresses `data[i*cols + j]`.
template <typename T>
class span2d {
 public:
  constexpr span2d() noexcept = default;

  constexpr span2d(T* data, std::size_t rows, std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}

  constexpr span2d(std::span<T> flat, std::size_t rows, std::size_t cols) noexcept
      : data_(flat.data()), rows_(rows), cols_(cols) {
    CGP_ASSERT_DBG(flat.size() == rows * cols);
  }

  [[nodiscard]] constexpr std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] constexpr T* data() const noexcept { return data_; }

  [[nodiscard]] constexpr T& operator()(std::size_t i, std::size_t j) const noexcept {
    CGP_ASSERT_DBG(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// View of one full row.
  [[nodiscard]] constexpr std::span<T> row(std::size_t i) const noexcept {
    CGP_ASSERT_DBG(i < rows_);
    return {data_ + i * cols_, cols_};
  }

  /// The whole matrix as a flat span (row-major).
  [[nodiscard]] constexpr std::span<T> flat() const noexcept { return {data_, size()}; }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace cgp
