#include "util/prefix.hpp"

#include "util/assert.hpp"

namespace cgp {

std::uint64_t exclusive_prefix_sum(std::span<const std::uint64_t> in,
                                   std::span<std::uint64_t> out) {
  CGP_EXPECTS(in.size() == out.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::uint64_t v = in[i];
    out[i] = acc;
    acc += v;
  }
  return acc;
}

std::uint64_t inclusive_prefix_sum(std::span<const std::uint64_t> in,
                                   std::span<std::uint64_t> out) {
  CGP_EXPECTS(in.size() == out.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
  return acc;
}

std::uint64_t span_sum(std::span<const std::uint64_t> in) noexcept {
  std::uint64_t acc = 0;
  for (const std::uint64_t v : in) acc += v;
  return acc;
}

std::vector<std::uint64_t> balanced_blocks(std::uint64_t n, std::uint32_t parts) {
  CGP_EXPECTS(parts > 0);
  std::vector<std::uint64_t> sizes(parts);
  const std::uint64_t base = n / parts;
  const std::uint64_t rem = n % parts;
  for (std::uint32_t i = 0; i < parts; ++i) sizes[i] = base + (i < rem ? 1u : 0u);
  return sizes;
}

std::uint64_t balanced_block_offset(std::uint64_t n, std::uint32_t parts,
                                    std::uint32_t i) noexcept {
  const std::uint64_t base = n / parts;
  const std::uint64_t rem = n % parts;
  // First `rem` blocks carry one extra item each.
  return base * i + (i < rem ? i : rem);
}

std::uint64_t balanced_block_size(std::uint64_t n, std::uint32_t parts,
                                  std::uint32_t i) noexcept {
  const std::uint64_t base = n / parts;
  const std::uint64_t rem = n % parts;
  return base + (i < rem ? 1u : 0u);
}

std::uint32_t balanced_block_owner(std::uint64_t n, std::uint32_t parts,
                                   std::uint64_t g) noexcept {
  const std::uint64_t base = n / parts;
  const std::uint64_t rem = n % parts;
  const std::uint64_t fat = (base + 1) * rem;  // items held by the `rem` fat blocks
  if (g < fat) return static_cast<std::uint32_t>(g / (base + 1));
  return static_cast<std::uint32_t>(rem + (g - fat) / base);
}

}  // namespace cgp
