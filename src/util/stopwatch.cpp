#include "util/stopwatch.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define CGP_HAVE_RDTSC 1
#endif

namespace cgp {

namespace {

#if defined(CGP_HAVE_RDTSC)

// Measure the TSC rate against the steady clock.  On every x86 of the last
// 15 years the TSC is invariant and ticks at (or very near) the nominal
// core frequency, which is the unit the paper's "60..100 clock cycles per
// item" figure is stated in.
double measure_hz() noexcept {
  const stopwatch sw;
  const std::uint64_t t0 = __rdtsc();
  double elapsed = 0.0;
  // ~20 ms window: plenty for 0.1% accuracy, cheap enough to run once.
  while ((elapsed = sw.seconds()) < 0.02) {
  }
  const std::uint64_t t1 = __rdtsc();
  return static_cast<double>(t1 - t0) / elapsed;
}

#else

// Portable fallback: time a dependent-ALU chain.  The loop body is ~3
// dependent ALU ops; dividing by 3 approximates one-op latency.
[[gnu::noinline]] std::uint64_t dependent_add_chain(std::uint64_t iters) noexcept {
  std::uint64_t x = 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x += (x >> 63) ^ 1;
  }
  return x;
}

double measure_hz() noexcept {
  constexpr std::uint64_t iters = 50'000'000;
  volatile std::uint64_t sink = dependent_add_chain(iters / 10);  // warm-up
  stopwatch sw;
  sink = dependent_add_chain(iters);
  const double secs = sw.seconds();
  (void)sink;
  if (secs <= 0.0) return 1e9;
  return 3.0 * static_cast<double>(iters) / secs;
}

#endif

}  // namespace

double estimated_cpu_hz() noexcept {
  static const double hz = measure_hz();
  return hz;
}

}  // namespace cgp
