// util/json.cpp
#include "util/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace cgp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_escape_quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  out += json_escape(s);
  out.push_back('"');
  return out;
}

namespace {

std::string quote(const std::string& s) { return json_escape_quoted(s); }

std::string render_double(double v) {
  // JSON has no NaN/Inf; encode them as null.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

json_record& json_record::add_raw(std::string key, std::string rendered) {
  fields_.emplace_back(std::move(key), std::move(rendered));
  return *this;
}

json_record& json_record::add(std::string key, std::string value) {
  return add_raw(std::move(key), quote(value));
}
json_record& json_record::add(std::string key, const char* value) {
  return add_raw(std::move(key), quote(value));
}
json_record& json_record::add(std::string key, double value) {
  return add_raw(std::move(key), render_double(value));
}
json_record& json_record::add(std::string key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  return add_raw(std::move(key), buf);
}
json_record& json_record::add(std::string key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  return add_raw(std::move(key), buf);
}
json_record& json_record::add(std::string key, std::uint32_t value) {
  return add(std::move(key), static_cast<std::uint64_t>(value));
}
json_record& json_record::add(std::string key, int value) {
  return add(std::move(key), static_cast<std::int64_t>(value));
}
json_record& json_record::add(std::string key, bool value) {
  return add_raw(std::move(key), value ? "true" : "false");
}
json_record& json_record::add_raw_json(std::string key, std::string rendered) {
  return add_raw(std::move(key), std::move(rendered));
}

std::string json_record::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += quote(fields_[i].first);
    out += ": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

bool write_json_records(const std::string& path, const std::vector<json_record>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cgmperm: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f, "  %s%s\n", records[i].to_string().c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fputs("]\n", f);
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "cgmperm: error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace cgp
