// util/stopwatch.hpp
//
// Wall-clock timing and a rough cycles-per-second calibration so benches can
// report costs in "clock cycles per item" -- the unit the paper's
// introduction uses (60..100 cycles/item on a 300 MHz Sparc / 800 MHz P-III).
#pragma once

#include <chrono>
#include <cstdint>

namespace cgp {

/// Simple steady-clock stopwatch.
class stopwatch {
 public:
  stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double nanos() const noexcept { return seconds() * 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Estimated CPU frequency in Hz, measured once (first call) by timing a
/// dependent-add loop.  Used only to convert ns/item to cycles/item in bench
/// output; precision of a few percent is plenty for reproducing the paper's
/// "60..100 cycles" band.
[[nodiscard]] double estimated_cpu_hz() noexcept;

/// Run `fn(rep)` `reps` times and return the fastest wall time in seconds
/// -- the benches' shared measurement discipline (best-of-N suppresses
/// scheduler noise better than averaging on a busy CI box).  `reps` < 1 is
/// treated as 1.
template <typename F>
[[nodiscard]] double best_of(int reps, F&& fn) {
  double best = -1.0;
  for (int rep = 0; rep < (reps < 1 ? 1 : reps); ++rep) {
    const stopwatch sw;
    fn(rep);
    const double s = sw.seconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

}  // namespace cgp
