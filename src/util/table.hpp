// util/table.hpp
//
// Fixed-width ASCII table printer used by the benchmark harness so every
// bench binary emits the same row/column layout as the corresponding table
// in the paper (EXPERIMENTS.md pairs each bench's output with the paper's
// reported numbers).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cgp {

/// Column-aligned table.  Usage:
///   table t({"p", "T_model [s]", "T_paper [s]"});
///   t.add_row({"3", "205.1", "210"});
///   t.print(std::cout);
class table {
 public:
  explicit table(std::vector<std::string> header);

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with 2-space gutters and a rule under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant decimal digits (fixed notation
/// below 1e6, scientific above).
[[nodiscard]] std::string fmt(double v, int prec = 3);

/// Format an integer with thousands separators ("4,194,304").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

}  // namespace cgp
