// util/prefix.hpp
//
// Prefix-sum helpers used throughout the library: exclusive scans drive the
// displacement arrays of the all-to-all exchange (Algorithm 1) and the block
// decomposition of vectors onto processors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cgp {

/// Exclusive prefix sum: `out[i] = sum_{k<i} in[k]`; returns the grand total.
/// `out` may alias `in`.  Sizes must match.
std::uint64_t exclusive_prefix_sum(std::span<const std::uint64_t> in,
                                   std::span<std::uint64_t> out);

/// Inclusive prefix sum: `out[i] = sum_{k<=i} in[k]`; returns the grand total.
std::uint64_t inclusive_prefix_sum(std::span<const std::uint64_t> in,
                                   std::span<std::uint64_t> out);

/// Sum of a span (u64, no overflow checking beyond debug asserts).
[[nodiscard]] std::uint64_t span_sum(std::span<const std::uint64_t> in) noexcept;

/// Split `n` items into `parts` nearly equal blocks: the first `n % parts`
/// blocks get `ceil(n/parts)` items, the rest `floor(n/parts)`.  This is the
/// canonical balanced block distribution of the PRO model (m_i = n/p +- 1).
[[nodiscard]] std::vector<std::uint64_t> balanced_blocks(std::uint64_t n, std::uint32_t parts);

/// Offset of block `i` under `balanced_blocks(n, parts)` without
/// materializing the vector.
[[nodiscard]] std::uint64_t balanced_block_offset(std::uint64_t n, std::uint32_t parts,
                                                  std::uint32_t i) noexcept;

/// Size of block `i` under `balanced_blocks(n, parts)`.
[[nodiscard]] std::uint64_t balanced_block_size(std::uint64_t n, std::uint32_t parts,
                                                std::uint32_t i) noexcept;

/// Which block owns global index `g` under `balanced_blocks(n, parts)`.
[[nodiscard]] std::uint32_t balanced_block_owner(std::uint64_t n, std::uint32_t parts,
                                                 std::uint64_t g) noexcept;

}  // namespace cgp
