#include "svc/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace cgp::svc {

namespace {

// Process-wide scheduler metrics (per-instance accounting stays in
// scheduler_stats).  queue_depth is a live level with a peak high-water
// mark; batch sizes go to a histogram so the snapshot exposes p50/p99.
obs::gauge& queue_gauge() {
  static obs::gauge& g = obs::get_gauge("svc.queue_depth");
  return g;
}
obs::histogram& batch_histogram() {
  static obs::histogram& h = obs::get_histogram("svc.batch_size");
  return h;
}

}  // namespace

scheduler::scheduler(smp::thread_pool& batch_pool, scheduler_options opt)
    : pool_(batch_pool), opt_(opt) {
  CGP_EXPECTS(opt_.queue_capacity >= 1);
  CGP_EXPECTS(opt_.batch_max_jobs >= 1);
  if (opt_.workers == 0) opt_.workers = 1;
  workers_.reserve(opt_.workers);
  for (std::uint32_t w = 0; w < opt_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

scheduler::~scheduler() { close(); }

bool scheduler::submit(task t) {
  static obs::counter& submitted = obs::get_counter("svc.jobs.submitted");
  static obs::counter& rejected = obs::get_counter("svc.jobs.rejected");
  std::unique_lock<std::mutex> lock(m_);
  if (closed_) {
    ++stats_.rejected;
    rejected.add();
    return false;
  }
  if (q_.size() >= opt_.queue_capacity) {
    if (opt_.policy == admission::reject) {
      ++stats_.rejected;
      rejected.add();
      return false;
    }
    // block: the client waits -- backpressure propagates to the submitter
    // instead of growing the queue.
    space_.wait(lock, [&] { return closed_ || q_.size() < opt_.queue_capacity; });
    if (closed_) {
      ++stats_.rejected;
      rejected.add();
      return false;
    }
  }
  q_.push_back(std::move(t));
  ++stats_.submitted;
  stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth, q_.size());
  submitted.add();
  queue_gauge().set(static_cast<std::int64_t>(q_.size()));
  queue_gauge().note_peak(static_cast<std::int64_t>(q_.size()));
  lock.unlock();
  nonempty_.notify_one();
  return true;
}

void scheduler::close() {
  // Claim the worker handles under the lock so concurrent closers join
  // disjoint (at most one non-empty) sets.
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
    to_join.swap(workers_);
  }
  nonempty_.notify_all();
  space_.notify_all();
  for (auto& w : to_join) {
    if (w.joinable()) w.join();
  }
}

bool scheduler::closed() const {
  const std::lock_guard<std::mutex> lock(m_);
  return closed_;
}

scheduler_stats scheduler::stats() const {
  const std::lock_guard<std::mutex> lock(m_);
  return stats_;
}

std::size_t scheduler::queue_depth() const {
  const std::lock_guard<std::mutex> lock(m_);
  return q_.size();
}

void scheduler::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(m_);
    nonempty_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return;  // closed and fully drained

    // One scheduling tick: if the task at the HEAD is small, gather a
    // batch of small tasks behind it (submission order preserved);
    // otherwise run the head singly.  Always servicing the head is the
    // fairness bound: a large job reaches the front in FIFO order and
    // runs on that tick, so a sustained stream of small jobs can never
    // starve it.
    std::vector<task> batch;
    if (opt_.batching && q_.front().small) {
      for (auto it = q_.begin(); it != q_.end() && batch.size() < opt_.batch_max_jobs;) {
        if (it->small) {
          batch.push_back(std::move(*it));
          it = q_.erase(it);
        } else {
          ++it;
        }
      }
    }
    task single;
    bool have_single = false;
    if (batch.empty()) {
      single = std::move(q_.front());
      q_.pop_front();
      have_single = true;
      ++stats_.singles;
    } else if (batch.size() == 1) {
      // A lone small task gains nothing from a pool round trip.
      single = std::move(batch.front());
      batch.clear();
      have_single = true;
      ++stats_.singles;
    } else {
      ++stats_.batches;
      stats_.batched_jobs += batch.size();
      static obs::counter& batches = obs::get_counter("svc.batches");
      batches.add();
      batch_histogram().record(batch.size());
      batch_hist_.record(batch.size());
    }
    if (have_single) {
      static obs::counter& singles = obs::get_counter("svc.singles");
      singles.add();
      batch_histogram().record(1);
      batch_hist_.record(1);
    }
    queue_gauge().set(static_cast<std::int64_t>(q_.size()));
    lock.unlock();
    space_.notify_all();

    if (have_single) {
      const obs::trace_scope scope(single.trace);
      const obs::span sp("job", "batch");
      single.run();
    } else {
      // ONE pool dispatch amortized across the whole batch; each task's
      // output is keyed by its job seed, so the worker->task assignment
      // the partition makes is invisible in the results.
      const obs::span sp("batch", "batch");
      pool_.parallel_for(0, batch.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) batch[j].run();
      });
    }
  }
}

}  // namespace cgp::svc
