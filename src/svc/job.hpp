// svc/job.hpp
//
// The job model of the permutation service (src/svc/): what one tenant
// request becomes inside the server, and the completion handles a client
// holds while it runs.
//
// Seed discipline -- the service's determinism contract.  Every job's
// random stream is keyed
//
//   job_seed(server_seed, client_id, ordinal)
//
// where `ordinal` counts the client's own submissions (0, 1, 2, ...).
// The seed is a pure function of that triple: it never mentions the
// scheduler worker that ran the job, the batch it rode in, the queue
// depth, or any other job -- so a job's output is bit-identical across
// scheduler worker counts, submission interleavings, and batching on/off,
// and equals a direct `context::shuffle(data, job_seed(...))` on an
// identically configured context (tests/test_svc.cpp pins both).
//
// Completion handles: `future<permutation>` (whole-result delivery of a
// sampled permutation), `future<void>` (in-place shuffle of client-owned
// records), and svc::stream (svc/stream.hpp, chunked pull delivery).  All
// are thin shared_ptr views over one detail::job_state; the server and
// any number of waiters may hold them concurrently.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/plan.hpp"
#include "em/block_device.hpp"
#include "obs/trace.hpp"
#include "prp/cipher.hpp"
#include "rng/splitmix64.hpp"
#include "rng/stream.hpp"
#include "util/assert.hpp"

namespace cgp::svc {

/// The service's result type for sampled permutations (pi[i] = image of i).
using permutation = std::vector<std::uint64_t>;

/// Life cycle of a job.  `rejected` is terminal at admission (bounded
/// queue full under the reject policy, or server closed); `failed` carries
/// the executing backend's exception.
enum class job_status : std::uint8_t { queued, running, done, rejected, failed };

[[nodiscard]] constexpr const char* job_status_name(job_status s) noexcept {
  switch (s) {
    case job_status::queued: return "queued";
    case job_status::running: return "running";
    case job_status::done: return "done";
    case job_status::rejected: return "rejected";
    case job_status::failed: return "failed";
  }
  return "?";
}

/// Seed of the job (client_id, ordinal) on a server seeded `server_seed`:
/// the server seed folded with the (client, ordinal) address through the
/// library's nested-stream keying (rng/stream.hpp).  Pure in the triple,
/// and scrambled enough that adjacent clients / ordinals / server seeds
/// land on unrelated Philox streams.
[[nodiscard]] inline std::uint64_t job_seed(std::uint64_t server_seed, std::uint64_t client_id,
                                            std::uint64_t ordinal) noexcept {
  return rng::mix64(server_seed ^ rng::nested_stream(client_id, ordinal, 0x737663ull /*'svc'*/));
}

namespace detail {

/// Shared completion state of one job.  The server writes it (status
/// transitions + result storage), handles read it; everything after the
/// terminal transition is immutable, so `get`/`read` touch results without
/// the mutex once `wait` returned.
struct job_state {
  // --- identity (fixed at submission) ---------------------------------
  std::uint64_t client = 0;
  std::uint64_t ordinal = 0;
  std::uint64_t seed = 0;
  std::uint64_t n = 0;
  /// Admission timestamp; end-to-end latency (queue wait + execution) is
  /// measured against it when the job reaches `done` and recorded into
  /// the `svc.job_latency_ns` histogram (observability only -- nothing
  /// downstream of the clock can touch the job's randomness).
  std::chrono::steady_clock::time_point submitted_at{};
  /// The submitter's trace context at admission ({0,0} when untraced).
  /// Scheduler workers and batch pool threads re-install it around
  /// execution, so the executor's spans stitch under the submitting
  /// client's trace even across the wire.  Observability only: nothing
  /// seeds from it.
  obs::trace_context trace{};

  // --- completion ------------------------------------------------------
  mutable std::mutex m;
  mutable std::condition_variable cv;
  job_status st = job_status::queued;
  std::exception_ptr error;
  core::permutation_plan plan;  ///< the plan that ran (valid once terminal)

  // --- result storage (exactly one engaged, by job kind) ---------------
  /// Sampled permutation (permutation / RAM-planned stream jobs).
  permutation pi;
  /// Device-resident permutation (stream jobs whose plan chose the
  /// out-of-core backend): chunks are read off the device on demand, so
  /// no full-n vector ever materializes for the stream.
  std::unique_ptr<em::block_device> dev;
  /// Cipher-backed permutation (prp-planned stream jobs and shard jobs):
  /// nothing is stored AT ALL -- every pull evaluates
  /// pi(shard_base + cursor ..) on demand, O(chunk) memory, O(1) state.
  /// The cipher's domain may exceed st.n: a shard job's stream serves the
  /// st.n-item window of the full-domain permutation starting at
  /// shard_base (whole-permutation prp streams have shard_base = 0 and
  /// domain == n).
  std::unique_ptr<prp::cipher> cipher;
  std::uint64_t shard_base = 0;

  // Transitions are guarded: queued -> running -> {done, failed}, or
  // queued -> rejected at admission.  A job that reached a terminal
  // status can never transition again -- a double finish() would have a
  // waiter observe one outcome while the counters record another, which
  // is exactly the class of reconciliation drift tests/test_svc.cpp's
  // invariant (submitted == done + failed, latency count == done) exists
  // to catch.

  void set_running() {
    const std::lock_guard<std::mutex> lock(m);
    CGP_ASSERT(st == job_status::queued && "job must be queued to start running");
    st = job_status::running;
  }

  void finish(job_status terminal_status) {
    {
      const std::lock_guard<std::mutex> lock(m);
      CGP_ASSERT(terminal(terminal_status));
      CGP_ASSERT(!terminal(st) && "job already reached a terminal status");
      st = terminal_status;
    }
    cv.notify_all();
  }

  void fail(std::exception_ptr e) {
    {
      const std::lock_guard<std::mutex> lock(m);
      CGP_ASSERT(!terminal(st) && "job already reached a terminal status");
      error = std::move(e);
      st = job_status::failed;
    }
    cv.notify_all();
  }

  [[nodiscard]] static bool terminal(job_status s) noexcept {
    return s == job_status::done || s == job_status::rejected || s == job_status::failed;
  }

  [[nodiscard]] job_status status() const {
    const std::lock_guard<std::mutex> lock(m);
    return st;
  }

  /// Block until the job reaches a terminal status; returns it.
  job_status wait() const {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return terminal(st); });
    return st;
  }

  /// wait(), then throw for the non-`done` terminals (rethrowing the
  /// backend's exception for `failed`).
  void wait_done() const {
    const job_status s = wait();
    if (s == job_status::done) return;
    if (s == job_status::failed && error != nullptr) std::rethrow_exception(error);
    throw std::runtime_error(std::string("svc job ") + job_status_name(s));
  }
};

}  // namespace detail

/// Shared behaviour of every completion handle: status queries and
/// blocking waits over the job's shared state.
class job_handle {
 public:
  job_handle() = default;

  /// False for a default-constructed handle.
  [[nodiscard]] bool valid() const noexcept { return s_ != nullptr; }

  [[nodiscard]] job_status status() const { return s_->status(); }

  /// Block until the job is done / rejected / failed; returns the status.
  job_status wait() const { return s_->wait(); }

  /// The job's seed keying, for replay against a bare context.
  [[nodiscard]] std::uint64_t client() const noexcept { return s_->client; }
  [[nodiscard]] std::uint64_t ordinal() const noexcept { return s_->ordinal; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return s_->seed; }

  /// The plan the job ran (valid once the status is terminal).
  [[nodiscard]] const core::permutation_plan& plan() const { return s_->plan; }

 protected:
  explicit job_handle(std::shared_ptr<detail::job_state> s) : s_(std::move(s)) {}
  std::shared_ptr<detail::job_state> s_;
};

template <typename T>
class future;  // only the two service result shapes below exist

/// Completion of an in-place shuffle job: the client's buffer holds the
/// permuted records once get() returns.
template <>
class future<void> : public job_handle {
 public:
  future() = default;

  /// Wait for completion; throws on rejection / failure.
  void get() const { s_->wait_done(); }

 private:
  friend class server;
  using job_handle::job_handle;
};

/// Whole-result delivery of a sampled permutation.
template <>
class future<permutation> : public job_handle {
 public:
  future() = default;

  /// Wait for completion and move the permutation out (one-shot); throws
  /// on rejection / failure.
  [[nodiscard]] permutation get() {
    s_->wait_done();
    return std::move(s_->pi);
  }

 private:
  friend class server;
  using job_handle::job_handle;
};

}  // namespace cgp::svc
