// svc/wire.hpp
//
// The binary RPC front end of the permutation service: `wire_server`
// exposes one svc::server over TCP, `wire_client` is the matching remote
// handle, so a client in another process (or, with a routable address, on
// another host) can submit jobs, pull stream chunks, and poll metrics
// over the wire.
//
// Protocol (length-prefixed request/response; all integers host byte
// order -- same rationale as the transport framing, comm/socket_transport.cpp):
//
//   request:   u32 magic 'CGPR' | u32 opcode | u64 a | u64 b
//              u32 c | u32 flags | u64 body_bytes | [trace ext] | body
//   response:  u32 magic 'CGPA' | u32 status | u64 a | u64 body_bytes | body
//
//   flags bit 0 (0x1): a 24-byte TRACE EXTENSION sits between the header
//   and the body: u64 trace_id | u64 span_id | u64 reserved(0).  It
//   carries the client's obs::trace_context, so the server's handling
//   spans (and the job's executor spans) stitch under the caller's trace
//   across the process boundary.  The flag is only set while the client
//   is tracing; a server that predates it never sees it (old clients send
//   flags = 0), and the extension is pure observability -- it can never
//   change a job's output.
//
//   opcode 1 submit_permutation  a=client_id  b=n
//            -> a=ordinal, body = n u64 items
//   opcode 2 submit_shuffle_raw  a=client_id  b=n  c=elem_bytes
//            body = n*elem_bytes record bytes -> a=ordinal, body = shuffled
//   opcode 3 stream_open         a=client_id  b=n
//            -> a=stream id, body = u64 ordinal
//   opcode 4 stream_pull         a=stream id  b=max_items
//            -> a=items returned (0 = exhausted), body = items u64s
//   opcode 5 metrics_snapshot    -> body = the snapshot JSON document
//   opcode 6 stream_close        a=stream id
//   opcode 7 shard_open          a=client_id  b=n  body = u64 shard | u64 num_shards
//            -> a=stream id, body = u64 ordinal  (pull/close via opcodes 4/6;
//            the stream serves shard `shard` of a cipher-backed permutation
//            of [0, n) -- nothing materialized server-side, O(chunk) pulls)
//   opcode 8 telemetry           a=form: 0 = Prometheus text exposition,
//            1 = the time-series sampler's JSON ring (obs/timeseries.hpp)
//            -> body = the document
//
//   status: 0 ok | 1 rejected (admission) | 2 failed (backend threw)
//           3 bad request (malformed header/body)
//
// Determinism carries over the wire for free: the server executes every
// request through svc::server, so a remote job's output is the same pure
// function of (server_seed, client_id, ordinal) a local submission gets --
// the response's `ordinal` is exactly what a client needs to replay the
// result against a bare context (tests/test_wire.cpp pins this).
//
// Threading: the server runs one acceptor thread plus one handler thread
// per connection (requests on one connection execute in order; concurrency
// comes from concurrent connections feeding the shared scheduler).  A
// wire_client is NOT thread-safe -- one in-flight request per client; open
// one client per thread.  Streams opened on a connection die with it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "comm/net.hpp"
#include "obs/timeseries.hpp"
#include "svc/server.hpp"

namespace cgp::svc {

namespace net = cgp::comm::net;  // the shared TCP substrate (comm/net.hpp)

struct wire_server_options {
  server_options svc{};                ///< the wrapped server's options
  const char* address = "127.0.0.1";   ///< bind address (IPv4 dotted quad)
  std::uint16_t port = 0;              ///< 0 = ephemeral; see port()
  /// Period of the owned obs::sampler feeding `telemetry` form 1 (the
  /// JSON ring of registry deltas + rates).  0 disables the sampler;
  /// form 1 then serves an empty ring.
  std::uint32_t telemetry_period_ms = 200;
  std::size_t telemetry_slots = 120;   ///< ring depth (history = period * slots)
};

/// One svc::server behind a TCP listener.  Starts serving on
/// construction; stop() (idempotent, also run by the destructor) shuts
/// down the listener and every live connection, then closes the service.
class wire_server {
 public:
  explicit wire_server(wire_server_options opt = {});
  ~wire_server();

  wire_server(const wire_server&) = delete;
  wire_server& operator=(const wire_server&) = delete;

  /// The port actually bound (the useful part of an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The wrapped service (e.g. for local submissions or close()).
  [[nodiscard]] server& service() noexcept { return srv_; }

  /// Live connections right now (diagnostics; racy by nature).
  [[nodiscard]] std::size_t connections() const;

  /// The owned time-series sampler (nullptr when telemetry_period_ms = 0).
  [[nodiscard]] obs::sampler* telemetry_sampler() noexcept { return sampler_.get(); }

  void stop();

 private:
  void accept_loop();
  void serve(std::uint64_t conn_id, net::socket_fd fd);

  server srv_;
  net::listener listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<obs::sampler> sampler_;  ///< feeds telemetry form 1

  mutable std::mutex m_;
  bool stopping_ = false;
  std::uint64_t next_conn_ = 1;
  std::unordered_map<std::uint64_t, int> live_;  ///< conn id -> raw fd (for stop)
  std::vector<std::thread> conns_;
  std::thread acceptor_;
};

class wire_client;

/// Remote pull-mode stream: the wire twin of svc::stream.  Chunks arrive
/// via stream_pull round trips; close() releases the server-side stream
/// (otherwise it is released when the client disconnects).
class remote_stream {
 public:
  /// Pull up to out.size() items; returns items written (0 = exhausted).
  std::size_t read(std::span<std::uint64_t> out);

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t ordinal() const noexcept { return ordinal_; }

  /// Release the server-side stream (idempotent).
  void close();

 private:
  friend class wire_client;
  remote_stream(wire_client* c, std::uint64_t id, std::uint64_t n, std::uint64_t ordinal)
      : c_(c), id_(id), n_(n), ordinal_(ordinal) {}

  wire_client* c_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t n_ = 0;
  std::uint64_t ordinal_ = 0;
  bool closed_ = false;
};

/// Blocking remote handle to a wire_server.  Every method is one
/// request/response round trip; rejected / failed / malformed outcomes
/// surface as std::runtime_error.  Not thread-safe.
class wire_client {
 public:
  wire_client(const std::string& host, std::uint16_t port);

  /// Sample a permutation of {0..n-1} on the server.  The job's ordinal
  /// (for replay against a bare context) lands in *ordinal_out if given.
  [[nodiscard]] permutation fetch_permutation(std::uint64_t client_id, std::uint64_t n,
                                              std::uint64_t* ordinal_out = nullptr);

  /// Shuffle n records of elem_bytes in place (records travel both ways).
  void shuffle_raw(std::uint64_t client_id, void* data, std::uint64_t n,
                   std::uint32_t elem_bytes, std::uint64_t* ordinal_out = nullptr);

  template <typename T>
  void shuffle(std::uint64_t client_id, std::span<T> data,
               std::uint64_t* ordinal_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    shuffle_raw(client_id, data.data(), data.size(), static_cast<std::uint32_t>(sizeof(T)),
                ordinal_out);
  }

  /// Open a server-side stream job of n items for chunked pulls.
  [[nodiscard]] remote_stream open_stream(std::uint64_t client_id, std::uint64_t n);

  /// Open shard `shard` of `num_shards` of a fresh cipher-backed
  /// permutation of [0, n) (server::submit_shard over the wire): pulls
  /// deliver the window pi[lo..hi) with nothing materialized server-side.
  /// The returned stream's size() is the shard length (prp::shard_bounds
  /// geometry, computed client-side -- both ends share the constexpr
  /// helper); replay locally as prp::cipher(job_seed(seed, client_id,
  /// ordinal()), n).shard(shard, num_shards).
  [[nodiscard]] remote_stream open_shard(std::uint64_t client_id, std::uint64_t n,
                                         std::uint64_t shard, std::uint64_t num_shards);

  /// The server's metrics_snapshot() JSON document.
  [[nodiscard]] std::string metrics_snapshot();

  /// Which document `telemetry()` fetches.
  enum class telemetry_form : std::uint32_t {
    prometheus = 0,  ///< Prometheus text exposition (obs/exposition.hpp)
    json_ring = 1,   ///< the sampler's JSON ring (obs/timeseries.hpp)
  };

  /// The server process's telemetry document (opcode 8): the whole
  /// registry -- every server, transport, and engine in that process --
  /// not just the wrapped svc::server.
  [[nodiscard]] std::string telemetry(telemetry_form form = telemetry_form::prometheus);

 private:
  friend class remote_stream;

  struct reply {
    std::uint32_t status = 0;
    std::uint64_t a = 0;
    std::vector<std::byte> body;
  };
  /// One round trip; throws on transport failure or non-ok status.
  reply call(std::uint32_t opcode, std::uint64_t a, std::uint64_t b, std::uint32_t c,
             std::span<const std::byte> body);

  net::socket_fd fd_;
};

}  // namespace cgp::svc
