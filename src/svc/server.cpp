#include "svc/server.hpp"

#include <chrono>
#include <map>
#include <utility>

#include "core/backend.hpp"
#include "core/executor.hpp"
#include "core/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace cgp::svc {

namespace {

cgp::context_options context_options_of(const server_options& opt) {
  cgp::context_options co;
  co.which = opt.which;
  co.parallelism = opt.parallelism;
  co.memory_budget_bytes = opt.memory_budget_bytes;
  co.repetitions = opt.repetitions;
  co.seed = opt.seed;
  co.calibrate = opt.calibrate;
  co.engine = opt.engine;
  return co;
}

scheduler_options scheduler_options_of(const server_options& opt) {
  scheduler_options so;
  so.workers = opt.scheduler_workers;
  so.queue_capacity = opt.queue_capacity;
  so.policy = opt.policy;
  so.batching = opt.batching;
  so.batch_max_jobs = opt.batch_max_jobs;
  return so;
}

/// A job's execution options: the context's projection under the job
/// seed, with the per-call OUTPUT pointers nulled -- expert engine knobs
/// forward verbatim, but plan_out / stats_out / em_report_out name one
/// caller-owned object, and concurrent jobs writing it from scheduler
/// workers would race.  A job's resolved plan is delivered through its
/// handle (job_handle::plan()) instead.
core::backend_options job_options(const cgp::context& ctx, std::uint64_t seed) {
  core::backend_options o = ctx.execution_options(seed);
  o.plan_out = nullptr;
  o.stats_out = nullptr;
  o.em_report_out = nullptr;
  return o;
}

/// The plan of a job: the plan cache for planner-driven servers (keyed
/// (n, elem, budget, reps, profile fingerprint) -- repeated request
/// shapes skip core::plan_permutation), the trivial resolve for explicit
/// backends.  Bit-identical to what core::resolve_plan inside a direct
/// context::shuffle would produce, by cached_plan's contract.
core::permutation_plan plan_for_job(std::uint64_t n, std::uint32_t elem_bytes,
                                    const core::backend_options& o) {
  if (o.which == core::backend::automatic) {
    core::workload w;
    w.n = n;
    w.element_bytes = elem_bytes;
    w.memory_budget_bytes = o.memory_budget_bytes;
    w.repetitions = o.repetitions;
    w.accessed_fraction = o.accessed_fraction;
    return core::cached_plan(w, *o.profile);
  }
  return core::resolve_plan(n, elem_bytes, o);
}

}  // namespace

server::server(server_options opt)
    : opt_(opt),
      ctx_(context_options_of(opt)),
      sched_(core::shared_pool(opt.parallelism), scheduler_options_of(opt)) {}

server::~server() { close(); }

void server::close() { sched_.close(); }

/// End-to-end job latency (admission to `done`), in ns.  Recorded into
/// the process-wide `svc.job_latency_ns` registry histogram (the obs
/// layer's cross-server aggregate), the registry's *.by_client families,
/// and this server's per-instance histogram + tenant family -- what
/// metrics_snapshot() reads, so two servers in one process never pollute
/// each other's percentiles.  The job's trace_id (when the submission was
/// traced) rides along as the latency bucket's exemplar.
void server::note_done(const detail::job_state& st) {
  static obs::counter& done = obs::get_counter("svc.jobs.done");
  static obs::counter_family& done_by = obs::get_counter_family("svc.jobs.done.by_client");
  static obs::histogram& lat = obs::get_histogram("svc.job_latency_ns");
  static obs::histogram_family& lat_by =
      obs::get_histogram_family("svc.job_latency_ns.by_client");
  done.add();
  done_by.with(st.client).add();
  const auto dt = std::chrono::steady_clock::now() - st.submitted_at;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
  const auto v = ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  const std::uint64_t trace_id = st.trace.trace_id;
  lat.record(v, trace_id);
  lat_by.with(st.client).record(v, trace_id);
  latency_hist_.record(v, trace_id);
  tenant_done_.with(st.client).add();
  tenant_latency_.with(st.client).record(v, trace_id);
}

void server::note_failed(const detail::job_state& st) {
  static obs::counter& failed = obs::get_counter("svc.jobs.failed");
  static obs::counter_family& failed_by =
      obs::get_counter_family("svc.jobs.failed.by_client");
  failed.add();
  failed_by.with(st.client).add();
  tenant_failed_.with(st.client).add();
}

std::shared_ptr<detail::job_state> server::make_state(std::uint64_t client_id, std::uint64_t n) {
  auto st = std::make_shared<detail::job_state>();
  st->client = client_id;
  st->n = n;
  {
    // The ordinal counts the client's submissions in THEIR order --
    // assigned at admission, consumed even by rejected submissions, so
    // the (client, ordinal) -> seed map never depends on what the
    // scheduler or other tenants are doing.
    const std::lock_guard<std::mutex> lock(clients_m_);
    st->ordinal = ordinals_[client_id]++;
  }
  st->seed = job_seed(opt_.seed, client_id, st->ordinal);
  st->submitted_at = std::chrono::steady_clock::now();
  // Capture the submitter's trace context (a wire handler installs the
  // remote client's before calling submit_*), so the job's execution
  // spans stitch under it wherever they end up running.
  st->trace = obs::current_trace();
  return st;
}

void server::enqueue(bool small, std::function<void()> run,
                     const std::shared_ptr<detail::job_state>& st) {
  static obs::counter_family& submitted_by =
      obs::get_counter_family("svc.jobs.submitted.by_client");
  static obs::counter_family& rejected_by =
      obs::get_counter_family("svc.jobs.rejected.by_client");
  // A refused submission is counted once globally, by the scheduler (its
  // stats are the single source of truth for admission outcomes); the
  // per-tenant attribution happens here, where the client is known.
  if (!sched_.submit({small, std::move(run), st->trace})) {
    rejected_by.with(st->client).add();
    tenant_rejected_.with(st->client).add();
    st->finish(job_status::rejected);
    return;
  }
  submitted_by.with(st->client).add();
  tenant_submitted_.with(st->client).add();
}

future<permutation> server::submit_permutation(std::uint64_t client_id, std::uint64_t n) {
  auto st = make_state(client_id, n);
  enqueue(n <= opt_.small_job_items, [this, st] { run_fill(*st, /*streamed=*/false); }, st);
  return future<permutation>(st);
}

stream server::submit_stream(std::uint64_t client_id, std::uint64_t n) {
  auto st = make_state(client_id, n);
  enqueue(n <= opt_.small_job_items, [this, st] { run_fill(*st, /*streamed=*/true); }, st);
  return stream(st, opt_.stream_chunk_items);
}

stream server::submit_shard(std::uint64_t client_id, std::uint64_t n, std::uint64_t shard,
                            std::uint64_t num_shards) {
  CGP_EXPECTS(num_shards > 0 && shard < num_shards);
  auto st = make_state(client_id, n);
  // The stream serves the shard's window: st->n is the WINDOW length (what
  // size()/read() run against), shard_base its offset into the full
  // domain; the cipher keeps the domain itself.
  const prp::shard_range r = prp::shard_bounds(n, shard, num_shards);
  st->shard_base = r.lo;
  st->n = r.size();
  // Always a small job: opening a shard is O(rounds) key-schedule work
  // regardless of n -- the whole point of the backend.
  enqueue(true, [this, st, n] { run_shard(*st, n); }, st);
  return stream(st, opt_.stream_chunk_items);
}

future<void> server::submit_shuffle_raw(std::uint64_t client_id, void* data, std::uint64_t n,
                                        std::uint32_t elem_bytes) {
  auto st = make_state(client_id, n);
  enqueue(
      n <= opt_.small_job_items,
      [this, st, data, elem_bytes] { run_shuffle(*st, data, elem_bytes); }, st);
  return future<void>(st);
}

void server::run_shuffle(detail::job_state& st, void* data, std::uint32_t elem_bytes) {
  st.set_running();
  // Execute under the submitter's trace (a batched job runs on a pool
  // thread whose thread-local context is empty -- the scope, not the
  // scheduler, is what carries the context there).  An untraced
  // submission gets a fresh trace id while tracing is on, so its latency
  // exemplar still points at a real trace.
  if (st.trace.trace_id == 0 && obs::tracing()) st.trace.trace_id = obs::new_trace_id();
  const obs::trace_scope trace_guard(st.trace);
  const obs::span sp("svc.job", "svc");
  try {
    const core::backend_options o = job_options(ctx_, st.seed);
    st.plan = plan_for_job(st.n, elem_bytes, o);
    {
      // Same measured-phase collection a direct core::shuffle gets: the
      // service path bypasses core::shuffle (it resolves plans through
      // the cache), so it installs its own feedback scope.
      const core::feedback_scope fb(st.plan, st.n, elem_bytes);
      core::make_executor(st.plan, o)->shuffle_raw(data, st.n, elem_bytes, st.seed);
    }
    done_.fetch_add(1, std::memory_order_relaxed);
    note_done(st);
    st.finish(job_status::done);
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    note_failed(st);
    st.fail(std::current_exception());
  }
}

void server::run_fill(detail::job_state& st, bool streamed) {
  st.set_running();
  if (st.trace.trace_id == 0 && obs::tracing()) st.trace.trace_id = obs::new_trace_id();
  const obs::trace_scope trace_guard(st.trace);
  const obs::span sp("svc.job", "svc");
  try {
    const core::backend_options o = job_options(ctx_, st.seed);
    st.plan = plan_for_job(st.n, sizeof(std::uint64_t), o);
    if (st.n == 0) {
      done_.fetch_add(1, std::memory_order_relaxed);
      note_done(st);
      st.finish(job_status::done);
      return;
    }
    {
      const core::feedback_scope fb(st.plan, st.n, sizeof(std::uint64_t));
      if (streamed && st.plan.chosen == core::backend::prp) {
        // Cipher-backed stream: nothing is materialized -- the stream
        // evaluates pi on demand through the same (seed, n, options)
        // cipher the prp executor would fill from, so chunk content is
        // bit-identical to a whole-delivery prp job.
        st.cipher = std::make_unique<prp::cipher>(st.seed, st.n, o.prp_engine);
      } else if (streamed && st.plan.chosen == core::backend::em) {
        // The em executor's native fill mode minus its final bulk readback:
        // identity onto the device, shuffle there, KEEP the device -- the
        // stream pulls chunks off it via accounted range reads, so no
        // full-n vector ever materializes for this job.  Geometry, pool,
        // and fill all resolve through the shared helpers make_executor's
        // em branch uses, so the device content is bit-identical to what
        // fill_random_permutation would have read back.
        st.dev = core::em_shuffled_identity_device(st.n, st.seed,
                                                   core::resolve_em_config(st.plan, o));
      } else {
        st.pi.resize(static_cast<std::size_t>(st.n));
        core::make_executor(st.plan, o)->fill_random_permutation(
            std::span<std::uint64_t>(st.pi), st.seed);
      }
    }
    done_.fetch_add(1, std::memory_order_relaxed);
    note_done(st);
    st.finish(job_status::done);
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    note_failed(st);
    st.fail(std::current_exception());
  }
}

void server::run_shard(detail::job_state& st, std::uint64_t domain_n) {
  st.set_running();
  if (st.trace.trace_id == 0 && obs::tracing()) st.trace.trace_id = obs::new_trace_id();
  const obs::trace_scope trace_guard(st.trace);
  const obs::span sp("svc.job", "svc");
  try {
    const core::backend_options o = job_options(ctx_, st.seed);
    // A shard job IS the prp backend: record an honest plan (the window's
    // share of the domain as the accessed fraction) rather than running
    // the planner -- no other backend can serve a lazy window of a
    // permutation it never built.
    st.plan = core::permutation_plan{};
    st.plan.chosen = core::backend::prp;
    st.plan.threads = 1;
    st.plan.accessed_fraction =
        domain_n == 0 ? 1.0
                      : static_cast<double>(st.n) / static_cast<double>(domain_n);
    if (st.n != 0) {
      st.cipher = std::make_unique<prp::cipher>(st.seed, domain_n, o.prp_engine);
    }
    done_.fetch_add(1, std::memory_order_relaxed);
    note_done(st);
    st.finish(job_status::done);
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    note_failed(st);
    st.fail(std::current_exception());
  }
}

server_stats server::stats() const {
  server_stats s;
  s.sched = sched_.stats();
  s.done = done_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = s.sched.rejected;
  return s;
}

std::string server::metrics_snapshot() const {
  const server_stats s = stats();
  // Per-instance histograms: this server's jobs and ticks only.  The
  // process-wide aggregates remain visible under "metrics".
  const obs::histogram& lat = latency_hist_;
  const obs::histogram& bat = sched_.batch_size_histogram();

  json_record lat_rec;
  lat_rec.add("count", lat.count())
      .add("p50_ns", lat.p50())
      .add("p90_ns", lat.quantile(0.90))
      .add("p99_ns", lat.p99())
      .add("max_ns", lat.max())
      .add("p99_exemplar_trace_id", std::to_string(lat.quantile_exemplar(0.99)));

  json_record bat_rec;
  bat_rec.add("count", bat.count())
      .add("p50", bat.p50())
      .add("p99", bat.p99())
      .add("max", bat.max());

  // The plan cache is process-wide by design (every server benefits from
  // every server's planning), so its counters cannot be attributed to one
  // server; the scope marker says so explicitly.
  const auto lookups = static_cast<std::uint64_t>(core::plan_cache_lookups());
  const auto hits = static_cast<std::uint64_t>(core::plan_cache_hits());
  json_record cache_rec;
  cache_rec.add("scope", "process")
      .add("lookups", lookups)
      .add("hits", hits)
      .add("hit_rate",
           lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups));

  // Per-tenant section: union the labels across the per-instance families
  // (a tenant that only ever got rejected still shows up), then render one
  // object per client_id.
  struct tenant_row {
    std::uint64_t submitted = 0, done = 0, failed = 0, rejected = 0;
    const obs::histogram* latency = nullptr;
  };
  std::map<std::uint64_t, tenant_row> tenants;
  for (const auto& [label, v] : tenant_submitted_.values()) tenants[label].submitted = v;
  for (const auto& [label, v] : tenant_done_.values()) tenants[label].done = v;
  for (const auto& [label, v] : tenant_failed_.values()) tenants[label].failed = v;
  for (const auto& [label, v] : tenant_rejected_.values()) tenants[label].rejected = v;
  for (const auto& [label, h] : tenant_latency_.entries()) tenants[label].latency = h;
  std::string tenants_json = "{";
  for (const auto& [label, row] : tenants) {
    json_record t;
    t.add("submitted", row.submitted)
        .add("done", row.done)
        .add("failed", row.failed)
        .add("rejected", row.rejected);
    if (row.latency != nullptr) {
      json_record l;
      l.add("count", row.latency->count())
          .add("p50_ns", row.latency->p50())
          .add("p90_ns", row.latency->quantile(0.90))
          .add("p99_ns", row.latency->p99())
          .add("max_ns", row.latency->max())
          .add("p99_exemplar_trace_id",
               std::to_string(row.latency->quantile_exemplar(0.99)));
      t.add_raw_json("latency", l.to_string());
    }
    if (tenants_json.size() > 1) tenants_json += ", ";
    tenants_json += "\"" + std::to_string(label) + "\": " + t.to_string();
  }
  tenants_json += "}";

  json_record trace_rec;
  trace_rec.add("dropped_spans", obs::get_counter("obs.trace.dropped_spans").value())
      .add("tracing", obs::tracing());

  json_record rec;
  rec.add("queue_depth", static_cast<std::uint64_t>(sched_.queue_depth()))
      .add("max_queue_depth", s.sched.max_queue_depth)
      .add("submitted", s.sched.submitted)
      .add("done", s.done)
      .add("failed", s.failed)
      .add("rejected", s.rejected)
      .add("singles", s.sched.singles)
      .add("batches", s.sched.batches)
      .add("batched_jobs", s.sched.batched_jobs)
      .add_raw_json("plan_cache", cache_rec.to_string())
      .add_raw_json("job_latency", lat_rec.to_string())
      .add_raw_json("batch_size", bat_rec.to_string())
      .add_raw_json("tenants", tenants_json)
      .add_raw_json("trace", trace_rec.to_string())
      // The full process-wide registry, for anything the curated fields
      // above don't surface (em I/O, comm bytes, per-backend exec counts).
      .add_raw_json("metrics", obs::snapshot_json());
  return rec.to_string();
}

}  // namespace cgp::svc
