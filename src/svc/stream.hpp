// svc/stream.hpp
//
// Chunked pull delivery: the third completion shape of the permutation
// service.  A client that asked for a 10^9-element permutation does not
// want 8 GB handed over in one vector; `svc::stream` lets it pull the
// result as consecutive fixed-size chunks, consuming the whole
// permutation in O(chunk) client memory:
//
//   svc::stream s = server.submit_stream(client_id, n);
//   std::vector<std::uint64_t> chunk(s.chunk_items());
//   while (std::size_t got = s.read(std::span<std::uint64_t>(chunk))) {
//     consume(chunk.data(), got);     // chunk k holds pi[k*C .. k*C+got)
//   }
//
// Server-side storage follows the job's plan: RAM-planned jobs keep the
// permutation in one server-owned vector and chunks are copied out of it;
// jobs the planner sent out of core keep the permutation ON the block
// device the em engine shuffled (the executor's native fill mode, minus
// its final bulk readback), and every pull is an accounted
// `read_items` range read -- no full-n vector ever materializes, the
// resident footprint stays O(M).  Cipher-planned (prp) jobs -- including
// server::submit_shard windows -- store NOTHING: every pull evaluates
// pi(shard_base + cursor ..) through the O(1)-state prp::cipher.
//
// Determinism: the chunk boundary never enters any seed -- the stream
// serves exactly the permutation `future<permutation>` would have
// delivered whole, chunked; reading it in pieces of 1 or 10^6 items gives
// the same bytes in the same order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "svc/job.hpp"
#include "util/assert.hpp"

namespace cgp::svc {

/// Pull-mode view over one stream job's result.  Not thread-safe: one
/// consumer per stream object (the underlying job state may be shared).
class stream : public job_handle {
 public:
  stream() = default;

  /// Pull up to out.size() items at the stream cursor.  Blocks until the
  /// job completes; throws on rejection / failure.  Returns the number of
  /// items written (0 = stream exhausted).
  std::size_t read(std::span<std::uint64_t> out) {
    CGP_EXPECTS(valid());
    s_->wait_done();
    const std::uint64_t remaining = s_->n - cursor_;
    const std::size_t got = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, out.size()));
    if (got == 0) return 0;
    if (s_->cipher != nullptr) {
      // Cipher-backed (prp) stream: evaluate the window on demand.
      s_->cipher->eval_range(s_->shard_base + cursor_, out.first(got));
    } else if (s_->dev != nullptr) {
      s_->dev->read_items(cursor_, out.first(got));
    } else {
      std::copy_n(s_->pi.begin() + static_cast<std::ptrdiff_t>(cursor_), got, out.begin());
    }
    cursor_ += got;
    return got;
  }

  /// Convenience: pull the next chunk of `chunk_items()` (the last one may
  /// be shorter); nullopt once exhausted.
  [[nodiscard]] std::optional<permutation> next_chunk() {
    CGP_EXPECTS(valid());
    permutation buf(static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_, s_->n - std::min(cursor_, s_->n))));
    if (buf.empty()) return std::nullopt;
    const std::size_t got = read(std::span<std::uint64_t>(buf));
    if (got == 0) return std::nullopt;
    buf.resize(got);
    return buf;
  }

  /// Total items of the permutation / items already pulled / chunk size.
  [[nodiscard]] std::uint64_t size() const noexcept {
    CGP_EXPECTS(valid());
    return s_->n;
  }
  [[nodiscard]] std::uint64_t consumed() const noexcept { return cursor_; }
  [[nodiscard]] std::uint64_t chunk_items() const noexcept { return chunk_; }

  /// Rewind to an absolute item offset (results are immutable once done,
  /// so re-reading is exact).
  void seek(std::uint64_t item_offset) noexcept {
    CGP_EXPECTS(valid());
    cursor_ = std::min(item_offset, s_->n);
  }

 private:
  friend class server;
  stream(std::shared_ptr<detail::job_state> s, std::uint64_t chunk)
      : job_handle(std::move(s)), chunk_(chunk) {}

  std::uint64_t cursor_ = 0;
  std::uint64_t chunk_ = 0;
};

}  // namespace cgp::svc
