// svc/scheduler.hpp
//
// The deterministic job scheduler of the permutation service: a bounded
// task queue with admission control, N scheduler workers, and per-tick
// batching of small jobs.
//
//   * Admission: the queue holds at most `queue_capacity` tasks.  A full
//     queue either REJECTS the submission (submit returns false
//     immediately -- the caller surfaces `job_status::rejected`) or
//     BLOCKS the submitting client until space frees, per
//     `admission` policy.  Either way server memory stays bounded by the
//     queue capacity; load never turns into unbounded buffering.
//
//   * Scheduling tick: a worker that wakes always services the task at
//     the HEAD of the queue -- the fairness bound that keeps a sustained
//     small-job stream from starving a large job.  With batching on and
//     a small task at the head, the tick drains up to `batch_max_jobs`
//     SMALL tasks (in submission order) and executes them as ONE pool
//     dispatch -- `thread_pool::parallel_for` over the batch -- so k
//     queued small jobs cost one dispatch instead of k.  A large task at
//     the head (and everything, with batching off) runs singly on the
//     scheduler worker; the heavy backends fan out over the shared pool
//     internally.
//
//   * Determinism: the scheduler never touches a job's randomness.  Tasks
//     carry self-contained closures whose output is keyed by the job seed
//     alone (svc/job.hpp), so which worker runs a task, which batch it
//     rides in, and in what order ticks happen are all invisible in the
//     results.
//
// The scheduler is job-agnostic (a task is a bool + a closure): the
// server (svc/server.hpp) builds the closures; tests drive the scheduler
// directly with synthetic tasks to pin the admission policies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smp/thread_pool.hpp"

namespace cgp::svc {

/// What a full queue does to the next submission.
enum class admission : std::uint8_t {
  reject,  ///< submit returns false immediately
  block,   ///< submit blocks the client until space frees (or close)
};

[[nodiscard]] constexpr const char* admission_name(admission a) noexcept {
  return a == admission::reject ? "reject" : "block";
}

struct scheduler_options {
  std::uint32_t workers = 1;          ///< scheduler worker threads (>= 1)
  std::size_t queue_capacity = 1024;  ///< bounded queue: admission beyond this
  admission policy = admission::reject;
  bool batching = true;               ///< batch small tasks per tick
  std::size_t batch_max_jobs = 64;    ///< cap on one tick's batch
};

/// Monotone counters (snapshot via stats()).
struct scheduler_stats {
  std::uint64_t submitted = 0;     ///< tasks accepted into the queue
  std::uint64_t rejected = 0;      ///< submissions refused (full queue / closed)
  std::uint64_t singles = 0;       ///< tasks executed singly
  std::uint64_t batches = 0;       ///< batch dispatches
  std::uint64_t batched_jobs = 0;  ///< tasks executed inside batches
  std::uint64_t max_queue_depth = 0;
};

class scheduler {
 public:
  /// One unit of work.  `run` must be self-contained and must not throw
  /// (the server wraps job execution in its own catch); `small` marks the
  /// task batchable.  `trace` is the submitter's trace context: a worker
  /// executing the task singly installs it so the task's spans stitch
  /// under the submitter (batched tasks run on pool threads, where the
  /// server-side closure installs the job's own context instead).
  struct task {
    bool small = false;
    std::function<void()> run;
    obs::trace_context trace{};
  };

  /// Workers start immediately; batches dispatch on `batch_pool`.
  scheduler(smp::thread_pool& batch_pool, scheduler_options opt);

  /// close() and join.
  ~scheduler();

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  /// Enqueue a task.  False = not admitted (queue full under the reject
  /// policy, or scheduler closed) -- the task will never run.
  [[nodiscard]] bool submit(task t);

  /// Stop admission, drain every queued task, join the workers.
  /// Idempotent.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] scheduler_stats stats() const;
  /// Tasks currently queued (a live level -- racy by nature, diagnostics
  /// only; the obs gauge `svc.queue_depth` mirrors it process-wide).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const scheduler_options& options() const noexcept { return opt_; }

  /// Tick sizes of THIS scheduler only (singles record 1).  The process-
  /// wide `svc.batch_size` registry histogram aggregates every scheduler;
  /// this one is what a per-server snapshot must read -- two servers in
  /// one process would otherwise pollute each other's percentiles.
  [[nodiscard]] const obs::histogram& batch_size_histogram() const noexcept {
    return batch_hist_;
  }

 private:
  void worker_loop();

  smp::thread_pool& pool_;
  scheduler_options opt_;

  mutable std::mutex m_;
  std::condition_variable nonempty_;  ///< workers wait for tasks / close
  std::condition_variable space_;     ///< blocked submitters wait for room
  std::deque<task> q_;
  bool closed_ = false;
  scheduler_stats stats_{};
  obs::histogram batch_hist_;  ///< per-instance tick sizes (standalone histogram)

  std::vector<std::thread> workers_;
};

}  // namespace cgp::svc
