// svc/server.hpp
//
// The multi-tenant permutation service: the asynchronous front half of
// cgmperm.  Where `cgp::context` runs ONE blocking shuffle for ONE
// caller, a `svc::server` multiplexes many independent jobs from many
// clients over the shared engines:
//
//   svc::server srv;                                  // planner-driven
//   auto fut = srv.submit_permutation(/*client*/ 7, /*n*/ 1'000'000);
//   svc::permutation pi = fut.get();                  // whole delivery
//
//   std::vector<rec> v = ...;                         // in-place shuffle
//   srv.submit_shuffle(/*client*/ 7, std::span<rec>(v)).get();
//
//   svc::stream s = srv.submit_stream(/*client*/ 7, big_n);
//   while (auto chunk = s.next_chunk()) consume(*chunk);   // O(chunk) RAM
//
// Architecture (DESIGN.md section 7): submissions pass ADMISSION (bounded
// queue; reject or block when full), the SCHEDULER's workers drain the
// queue in ticks -- small jobs batched into one pool dispatch, large jobs
// run singly through the planner -- and every job executes through the
// identical plan/executor path a bare context uses, with two service-side
// shortcuts: the process-wide PLAN CACHE (core::cached_plan, keyed
// (n, elem, budget, reps, profile fingerprint)) skips planner
// recomputation for repeated request shapes, and the machine profile is
// the process-wide cached one (core::shared_profile()).
//
// Determinism: job (client_id, ordinal) runs under
// job_seed(server_seed, client_id, ordinal) -- `ordinal` counting that
// client's submissions (accepted or rejected) -- so every output is a
// pure function of (server seed, client id, ordinal): bit-identical
// across scheduler worker counts, submission interleavings, and batching
// on/off, and equal to ctx.shuffle(data, job_seed(...)) on an identically
// configured context (tests/test_svc.cpp pins all of it).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>

#include "core/context.hpp"
#include "obs/metrics.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/stream.hpp"

namespace cgp::svc {

struct server_options {
  /// Server seed: with the (client_id, ordinal) keying, the whole of the
  /// service's randomness.
  std::uint64_t seed = 0x5E12B1CE5EEDull;

  // --- execution (projected onto the owned cgp::context) ---------------
  core::backend which = core::backend::automatic;
  std::uint32_t parallelism = 0;          ///< compute pool threads; 0 = default
  std::uint64_t memory_budget_bytes = 0;  ///< per-job RAM budget; 0 = unconstrained
  std::uint64_t repetitions = 1;          ///< expected draws per shape (planner hint)
  bool calibrate = false;                 ///< measure the profile at startup
  core::backend_options engine{};         ///< expert engine knobs, forwarded

  // --- scheduling + admission ------------------------------------------
  std::uint32_t scheduler_workers = 1;
  std::size_t queue_capacity = 1024;
  admission policy = admission::reject;
  bool batching = true;
  std::size_t batch_max_jobs = 64;
  /// Jobs with n at or below this are "small": batchable per tick.  The
  /// default matches the engines' cache cutoff -- exactly the jobs whose
  /// per-call dispatch overhead batching exists to amortize.
  std::uint64_t small_job_items = std::uint64_t{1} << 16;
  /// Chunk size handed to svc::stream consumers.
  std::uint64_t stream_chunk_items = std::uint64_t{1} << 16;
};

/// Snapshot of the server's counters.  `rejected` mirrors
/// `sched.rejected` (admission outcomes are counted once, by the
/// scheduler).
struct server_stats {
  scheduler_stats sched;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
};

class server {
 public:
  explicit server(server_options opt = {});

  /// close(): drains queued jobs, then joins the scheduler workers.
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Sample a uniform permutation of {0..n-1}, delivered whole.
  [[nodiscard]] future<permutation> submit_permutation(std::uint64_t client_id, std::uint64_t n);

  /// Sample a uniform permutation of {0..n-1}, delivered as chunks.
  [[nodiscard]] stream submit_stream(std::uint64_t client_id, std::uint64_t n);

  /// Open shard `shard` of `num_shards` of a FRESH cipher-backed
  /// permutation of {0..n-1}: the returned stream serves the contiguous
  /// window pi[lo..hi) (prp::shard_bounds geometry -- the S shards of one
  /// job seed jointly tile its pi exactly once) evaluated on demand
  /// through the O(1)-state prp::cipher.  No pi on disk, no full-n vector
  /// anywhere, O(chunk) memory per pull -- n can exceed every materializing
  /// backend's budget.  Consumes one (client, ordinal) like every submit:
  /// the job is keyed job_seed(server_seed, client_id, ordinal), so the
  /// shard replays locally as prp::cipher(job_seed, n).shard(k, S).
  /// Requires num_shards > 0 and shard < num_shards.
  [[nodiscard]] stream submit_shard(std::uint64_t client_id, std::uint64_t n,
                                    std::uint64_t shard, std::uint64_t num_shards);

  /// Uniformly permute the client's records in place.  `data` must stay
  /// valid (and untouched by the client) until the future completes.
  template <typename T>
  [[nodiscard]] future<void> submit_shuffle(std::uint64_t client_id, std::span<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    return submit_shuffle_raw(client_id, data.data(), data.size(),
                              static_cast<std::uint32_t>(sizeof(T)));
  }

  /// Type-erased in-place shuffle of n records of elem_bytes each.
  [[nodiscard]] future<void> submit_shuffle_raw(std::uint64_t client_id, void* data,
                                                std::uint64_t n, std::uint32_t elem_bytes);

  /// Stop admission, run every already-queued job, join the workers.
  /// Submissions after close() are rejected.  Idempotent.
  void close();
  [[nodiscard]] bool closed() const { return sched_.closed(); }

  [[nodiscard]] server_stats stats() const;

  /// One JSON object describing the service's observable state: live queue
  /// depth, admission counters, batch-size and per-job end-to-end latency
  /// percentiles, plan-cache hit rate, and (under "metrics") the full
  /// process-wide obs registry snapshot.  Always valid JSON; cheap enough
  /// to poll.
  ///
  /// Scoping: the counters and the "job_latency" / "batch_size" /
  /// "tenants" sections describe THIS server only (backed by per-instance
  /// histograms and labeled families -- two servers in one process do not
  /// pollute each other's percentiles); "plan_cache" and "metrics"
  /// describe the whole process and say so with a "scope": "process"
  /// marker (the plan cache is shared by design: every server benefits
  /// from every server's planning).
  ///
  /// "tenants" maps client_id -> {submitted, done, failed, rejected,
  /// latency{count, p50_ns, p90_ns, p99_ns, max_ns,
  /// p99_exemplar_trace_id}}; the exemplar links a tenant's p99 outlier
  /// straight to its distributed trace.  "trace" reports the ring's
  /// dropped-span count so a reader knows how complete a dump would be.
  [[nodiscard]] std::string metrics_snapshot() const;

  /// End-to-end latency (admission to done) of THIS server's jobs.  Its
  /// count() equals stats().done -- the reconciliation invariant
  /// tests/test_svc.cpp pins.
  [[nodiscard]] const obs::histogram& job_latency_histogram() const noexcept {
    return latency_hist_;
  }

  /// Scheduling tick sizes of THIS server's scheduler (singles record 1).
  [[nodiscard]] const obs::histogram& batch_size_histogram() const noexcept {
    return sched_.batch_size_histogram();
  }

  /// Per-tenant end-to-end latency distributions of THIS server's jobs
  /// (one histogram per client_id, bounded by the family's slot count).
  [[nodiscard]] const obs::histogram_family& tenant_latency_histograms() const noexcept {
    return tenant_latency_;
  }

  /// The context the server executes through (profile + option
  /// projection); `ctx().shuffle(data, job_seed(...))` replays any job.
  [[nodiscard]] const cgp::context& ctx() const noexcept { return ctx_; }
  [[nodiscard]] const core::machine_profile& profile() const noexcept { return ctx_.profile(); }
  [[nodiscard]] const server_options& options() const noexcept { return opt_; }

 private:
  [[nodiscard]] std::shared_ptr<detail::job_state> make_state(std::uint64_t client_id,
                                                              std::uint64_t n);
  void enqueue(bool small, std::function<void()> run,
               const std::shared_ptr<detail::job_state>& st);
  void run_shuffle(detail::job_state& st, void* data, std::uint32_t elem_bytes);
  void run_fill(detail::job_state& st, bool streamed);
  void run_shard(detail::job_state& st, std::uint64_t domain_n);
  void note_done(const detail::job_state& st);
  void note_failed(const detail::job_state& st);

  server_options opt_;
  cgp::context ctx_;
  scheduler sched_;

  std::mutex clients_m_;
  std::unordered_map<std::uint64_t, std::uint64_t> ordinals_;

  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> failed_{0};
  obs::histogram latency_hist_;  ///< per-instance job latency (ns)

  // Per-instance per-tenant accounting (the registry's *.by_client
  // families aggregate across servers; these back the "tenants" section
  // of metrics_snapshot()).
  obs::counter_family tenant_submitted_;
  obs::counter_family tenant_done_;
  obs::counter_family tenant_failed_;
  obs::counter_family tenant_rejected_;
  obs::histogram_family tenant_latency_;
};

}  // namespace cgp::svc
